// Optimizer tests: signature extraction (Section 5.3's conjunct
// classification), index-family sharing, and indexed-vs-naive agreement
// at the provider level.
#include <gtest/gtest.h>

#include "game/battle.h"
#include "opt/action_sink.h"
#include "opt/indexed_provider.h"
#include "opt/signature.h"

namespace sgl {
namespace {

Schema TestSchema() { return BattleSchema(); }

Script Compile(const std::string& src) {
  auto script = CompileScript(src, TestSchema());
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  return script.MoveValue();
}

TEST(Signature, ClassifiesRangePartitionAndFilters) {
  Script script = Compile(R"(
    aggregate A(u, r) {
      select count(*) from E e
      where e.player <> u.player          # partition, negated
        and e.unittype = 1                # pure-e: build filter
        and e.posx >= u.posx - r and e.posx <= u.posx + r   # range x
        and e.posy >= u.posy - r and e.posy <= u.posy + r   # range y
        and u.health > 10;                # pure-u: probe filter
    }
    function main(u) { let x = A(u, 5); }
  )");
  auto sig = ExtractSignature(script, 0);
  ASSERT_TRUE(sig.ok()) << sig.status().ToString();
  EXPECT_EQ(IndexKind::kDivisibleRangeTree, sig->kind);
  ASSERT_EQ(2u, sig->ranges.size());
  EXPECT_EQ(script.schema.Find("posx"), sig->ranges[0].attr);
  EXPECT_EQ(script.schema.Find("posy"), sig->ranges[1].attr);
  ASSERT_EQ(1u, sig->partitions.size());
  EXPECT_TRUE(sig->partitions[0].negated);
  EXPECT_EQ(1u, sig->build_filters.size());
  EXPECT_EQ(1u, sig->probe_filters.size());
  EXPECT_FALSE(sig->exclude_self);
}

TEST(Signature, DetectsSelfExclusion) {
  Script script = Compile(R"(
    aggregate A(u) {
      select count(*) from E e where e.key <> u.key and e.player = u.player;
    }
    function main(u) { let x = A(u); }
  )");
  auto sig = ExtractSignature(script, 0);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(sig->exclude_self);
  EXPECT_EQ(IndexKind::kDivisibleRangeTree, sig->kind);
}

TEST(Signature, StrictBoundsAreRanges) {
  Script script = Compile(R"(
    aggregate A(u) {
      select count(*) from E e where e.health < u.health;
    }
    function main(u) { let x = A(u); }
  )");
  auto sig = ExtractSignature(script, 0);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(IndexKind::kDivisibleRangeTree, sig->kind);
  ASSERT_EQ(1u, sig->ranges.size());
  EXPECT_EQ(script.schema.Find("health"), sig->ranges[0].attr);
  EXPECT_TRUE(sig->ranges[0].hi_strict);
  EXPECT_EQ(nullptr, sig->ranges[0].lo);
}

TEST(Signature, MinMaxAndArgmin) {
  Script script = Compile(R"(
    aggregate Weakest(u, r) {
      select argmin(e.health) from E e
      where e.player <> u.player
        and e.posx >= u.posx - r and e.posx <= u.posx + r;
    }
    aggregate MaxHp(u) { select max(e.health) from E e; }
    function main(u) { let a = Weakest(u, 3); let b = MaxHp(u); }
  )");
  auto s0 = ExtractSignature(script, 0);
  auto s1 = ExtractSignature(script, 1);
  ASSERT_TRUE(s0.ok() && s1.ok());
  EXPECT_EQ(IndexKind::kMinMaxTree, s0->kind);
  EXPECT_EQ(IndexKind::kMinMaxTree, s1->kind);
}

TEST(Signature, NearestUsesKdTree) {
  Script script = Compile(R"(
    aggregate N(u) {
      select nearest(*) from E e where e.player <> u.player and e.key <> u.key;
    }
    function main(u) { let a = N(u); }
  )");
  auto sig = ExtractSignature(script, 0);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(IndexKind::kKdNearest, sig->kind);
  EXPECT_TRUE(sig->exclude_self);
}

TEST(Signature, FallbacksAreExplained) {
  Script script = Compile(R"(
    # e.health compared against an expression mixing e and u nonlinearly.
    aggregate Bad1(u) {
      select count(*) from E e where e.health + e.posx > u.health;
    }
    # min with self-exclusion cannot subtract (not divisible).
    aggregate Bad2(u) {
      select min(e.health) from E e where e.key <> u.key;
    }
    # three probe-dependent range attributes exceed the 2-D structures.
    aggregate Bad3(u) {
      select count(*) from E e
      where e.posx <= u.posx and e.posy <= u.posy and e.health <= u.health;
    }
    function main(u) {
      let a = Bad1(u); let b = Bad2(u); let c = Bad3(u);
    }
  )");
  for (int32_t i = 0; i < 3; ++i) {
    auto sig = ExtractSignature(script, i);
    ASSERT_TRUE(sig.ok());
    EXPECT_EQ(IndexKind::kNaive, sig->kind) << "aggregate " << i;
    EXPECT_FALSE(sig->reason.empty());
  }
}

TEST(Signature, FingerprintSharesIdenticalShapes) {
  Script script = Compile(R"(
    aggregate A(u) {
      select count(*) from E e
      where e.player <> u.player and e.posx >= u.posx - 32
        and e.posx <= u.posx + 32;
    }
    aggregate B(u) {
      select count(*) from E e
      where e.player <> u.player and e.posx >= u.posx - 32
        and e.posx <= u.posx + 32;
    }
    aggregate C(u) {
      select count(*) from E e
      where e.player = u.player and e.posx >= u.posx - 32
        and e.posx <= u.posx + 32;
    }
    function main(u) { let a = A(u); let b = B(u); let c = C(u); }
  )");
  auto sa = ExtractSignature(script, 0);
  auto sb = ExtractSignature(script, 1);
  auto sc = ExtractSignature(script, 2);
  ASSERT_TRUE(sa.ok() && sb.ok() && sc.ok());
  EXPECT_EQ(sa->Fingerprint(), sb->Fingerprint());
  EXPECT_NE(sa->Fingerprint(), sc->Fingerprint());  // =/<> differ
}

TEST(Provider, SharesFamiliesAcrossAggregates) {
  Script script = Compile(BattleScriptSource());
  Interpreter interp(script);
  auto provider = IndexedAggregateProvider::Create(script, interp);
  ASSERT_TRUE(provider.ok()) << provider.status().ToString();
  // The battle script's enemy-strength and enemy-count aggregates share a
  // box; there must be strictly fewer families than aggregates.
  EXPECT_LT((*provider)->NumIndexFamilies(),
            static_cast<int32_t>(script.program.aggregates.size()));
}

// Property test: for random worlds and every battle aggregate, the
// indexed provider and the reference scan agree exactly.
class ProviderAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProviderAgreement, AllBattleAggregatesMatchNaive) {
  ScenarioConfig config;
  config.num_units = 150;
  config.density = 0.03;
  config.seed = GetParam();
  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok());
  Script script = Compile(BattleScriptSource());
  Interpreter interp(script);
  auto provider = IndexedAggregateProvider::Create(script, interp);
  ASSERT_TRUE(provider.ok());
  TickRandom rnd(GetParam(), 0);
  ASSERT_TRUE((*provider)->BuildIndexes(*table, rnd).ok());

  for (int32_t agg = 0;
       agg < static_cast<int32_t>(script.program.aggregates.size()); ++agg) {
    const AggregateDecl& decl = script.program.aggregates[agg];
    // Bind any extra scalar parameter to a plausible radius.
    std::vector<Value> args;
    for (size_t p = 1; p < decl.params.size(); ++p) args.push_back(Value(8.0));
    for (RowId u = 0; u < table->NumRows(); u += 7) {
      auto want = interp.EvalAggregate(agg, args, u, *table, rnd);
      auto got = (*provider)->Eval(agg, args, u, *table, rnd);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(*want == *got)
          << decl.name << " unit row " << u << ": naive=" << want->ToString()
          << " indexed=" << got->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProviderAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ActionSink, ClassifiesBattleActions) {
  Script script = Compile(BattleScriptSource());
  Interpreter interp(script);
  auto sink = IndexedActionSink::Create(script, interp);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  std::string plan = (*sink)->DescribePlan();
  // Strike/Fire/Move resolve by key; the healing aura defers to the ⊕
  // index; nothing in the battle script needs the scan fallback.
  EXPECT_NE(std::string::npos, plan.find("direct-key"));
  EXPECT_NE(std::string::npos, plan.find("area-of-effect"));
  EXPECT_EQ(std::string::npos, plan.find("scan("));
}

TEST(ActionSink, VariableExtentAuraFallsBack) {
  Script script = Compile(R"(
    action VariableAura(u, r) {
      update e where e.player = u.player
        and e.posx >= u.posx - r and e.posx <= u.posx + r
        and e.posy >= u.posy - r and e.posy <= u.posy + r
        set inaura max= 3;
    }
    function main(u) { perform VariableAura(u, 4); }
  )");
  Interpreter interp(script);
  auto sink = IndexedActionSink::Create(script, interp);
  ASSERT_TRUE(sink.ok());
  // Per-performer extents break the probe inversion; the sink must refuse.
  EXPECT_NE(std::string::npos, (*sink)->DescribePlan().find("scan("));
}

TEST(ActionSink, EffectValueDependingOnTargetFallsBack) {
  Script script = Compile(R"(
    action Drain(u) {
      update e where e.player = u.player
        and e.posx >= u.posx - 4 and e.posx <= u.posx + 4
        and e.posy >= u.posy - 4 and e.posy <= u.posy + 4
        set damage += e.health / 10;
    }
    function main(u) { perform Drain(u); }
  )");
  Interpreter interp(script);
  auto sink = IndexedActionSink::Create(script, interp);
  ASSERT_TRUE(sink.ok());
  EXPECT_NE(std::string::npos,
            (*sink)->DescribePlan().find("depends on the affected unit"));
}

}  // namespace
}  // namespace sgl
