// Behavioural tests for the battle case study: the Section 3.2 behaviours
// (healing auras, morale flight, close ranks, cooldown discipline) must
// actually emerge from the scripts.
#include <gtest/gtest.h>

#include "game/battle.h"

namespace sgl {
namespace {

// A hand-built world: helpers to place specific units.
class World {
 public:
  World() : table_(BattleSchema()) {}

  int64_t Add(UnitType type, int64_t player, int64_t x, int64_t y,
              double health = -1, double cooldown = 0) {
    double hp, ac, soak;
    switch (type) {
      case UnitType::kKnight:
        hp = D20::kKnightHealth;
        ac = D20::kKnightArmorClass;
        soak = D20::kKnightArmorSoak;
        break;
      case UnitType::kArcher:
        hp = D20::kArcherHealth;
        ac = D20::kArcherArmorClass;
        soak = D20::kArcherArmorSoak;
        break;
      case UnitType::kHealer:
        hp = D20::kHealerHealth;
        ac = D20::kHealerArmorClass;
        soak = D20::kHealerArmorSoak;
        break;
    }
    double start_hp = health < 0 ? hp : health;
    auto key = table_.AddRow({double(player),
                              double(static_cast<int32_t>(type)), double(x),
                              double(y), start_hp, hp, cooldown, ac, soak, 0,
                              0, 0, 0, 0});
    EXPECT_TRUE(key.ok());
    return *key;
  }

  std::unique_ptr<Simulation> MakeEngine(EvaluatorMode mode,
                                         int64_t side = 96) {
    auto script = CompileScript(BattleScriptSource(), BattleSchema());
    EXPECT_TRUE(script.ok()) << script.status().ToString();
    SimulationConfig config;
    config.eval_mode = mode;
    config.seed = 77;
    config.grid_width = side;
    config.grid_height = side;
    config.step_per_tick = D20::kWalkPerTick;
    SimulationBuilder builder;
    builder.SetTable(std::move(table_))
        .SetConfig(config)
        .AddScript("battle", script.MoveValue())
        .SetMechanics(std::make_unique<BattleMechanics>(side, side,
                                                        /*resurrect=*/false));
    auto sim = builder.Build();
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    return sim.MoveValue();
  }

  EnvironmentTable table_;
};

double Attr(const Simulation& e, int64_t key, const char* name) {
  const EnvironmentTable& t = e.table();
  return t.Get(t.RowOf(key), t.schema().Find(name));
}

class Modes : public ::testing::TestWithParam<EvaluatorMode> {};
INSTANTIATE_TEST_SUITE_P(Both, Modes,
                         ::testing::Values(EvaluatorMode::kNaive,
                                           EvaluatorMode::kIndexed));

TEST_P(Modes, KnightKillsAdjacentWoundedArcher) {
  World w;
  int64_t knight = w.Add(UnitType::kKnight, 0, 10, 10);
  int64_t archer = w.Add(UnitType::kArcher, 1, 11, 10, /*health=*/2);
  auto engine = w.MakeEngine(GetParam());
  // Within a few attack attempts (reload 2, ~70% hit chance) the archer,
  // at 2 hp and 0 soak, must die and be removed (no resurrection).
  for (int tick = 0; tick < 12 && engine->table().HasKey(archer); ++tick) {
    ASSERT_TRUE(engine->Tick().ok());
  }
  EXPECT_FALSE(engine->table().HasKey(archer));
  EXPECT_TRUE(engine->table().HasKey(knight));
}

TEST_P(Modes, HealerAuraHealsWoundedNeighborsOnce) {
  World w;
  // Two healers in range of the same wounded knight: the aura is
  // nonstackable, so exactly one HEAL_AMOUNT applies per tick.
  w.Add(UnitType::kHealer, 0, 10, 10);
  w.Add(UnitType::kHealer, 0, 12, 10);
  int64_t hurt = w.Add(UnitType::kKnight, 0, 11, 10,
                       /*health=*/D20::kKnightHealth - 20);
  auto engine = w.MakeEngine(GetParam());
  ASSERT_TRUE(engine->Tick().ok());
  EXPECT_EQ(D20::kKnightHealth - 20 + D20::kHealAmount,
            Attr(*engine, hurt, "health"));
}

TEST_P(Modes, HealingNeverExceedsMaxHealth) {
  World w;
  w.Add(UnitType::kHealer, 0, 10, 10);
  int64_t barely = w.Add(UnitType::kKnight, 0, 11, 10,
                         /*health=*/D20::kKnightHealth - 1);
  auto engine = w.MakeEngine(GetParam());
  ASSERT_TRUE(engine->Tick().ok());
  EXPECT_EQ(D20::kKnightHealth, Attr(*engine, barely, "health"));
  ASSERT_TRUE(engine->Tick().ok());
  EXPECT_EQ(D20::kKnightHealth, Attr(*engine, barely, "health"));
}

TEST_P(Modes, CooldownPreventsConsecutiveAttacks) {
  World w;
  int64_t knight = w.Add(UnitType::kKnight, 0, 10, 10);
  w.Add(UnitType::kKnight, 1, 11, 10);  // sturdy target stays alive
  auto engine = w.MakeEngine(GetParam());
  ASSERT_TRUE(engine->Tick().ok());
  // The knight attacked on tick 1: Example 4.1's post-processing yields
  // cooldown = 0 - 1 + weaponused * RELOAD = RELOAD - 1.
  EXPECT_EQ(D20::kReloadTicks - 1, Attr(*engine, knight, "cooldown"));
  ASSERT_TRUE(engine->Tick().ok());
  // Next tick it may not attack (cooldown > 0); the cooldown decays.
  EXPECT_EQ(D20::kReloadTicks - 2, Attr(*engine, knight, "cooldown"));
}

TEST_P(Modes, OutnumberedArchersFleeEastward) {
  World w;
  // One archer facing a horde: morale (8) broken, enemy strength dwarfs
  // its own; it must run away from the horde centroid, i.e. eastward.
  int64_t archer = w.Add(UnitType::kArcher, 0, 50, 40);
  for (int i = 0; i < 12; ++i) {
    w.Add(UnitType::kKnight, 1, 30 + (i % 4), 38 + (i / 4));
  }
  auto engine = w.MakeEngine(GetParam());
  double x0 = Attr(*engine, archer, "posx");
  for (int tick = 0; tick < 4 && engine->table().HasKey(archer); ++tick) {
    ASSERT_TRUE(engine->Tick().ok());
  }
  ASSERT_TRUE(engine->table().HasKey(archer));
  EXPECT_GT(Attr(*engine, archer, "posx"), x0);
}

TEST_P(Modes, SpreadKnightsCloseRanks) {
  World w;
  // Knights of one army scattered over a wide area, no enemies at all:
  // the close-ranks rule must pull them toward their centroid.
  std::vector<int64_t> keys;
  keys.push_back(w.Add(UnitType::kKnight, 0, 4, 4));
  keys.push_back(w.Add(UnitType::kKnight, 0, 90, 4));
  keys.push_back(w.Add(UnitType::kKnight, 0, 4, 90));
  keys.push_back(w.Add(UnitType::kKnight, 0, 90, 90));
  auto engine = w.MakeEngine(GetParam());
  auto spread = [&]() {
    double cx = 0, cy = 0;
    for (int64_t k : keys) {
      cx += Attr(*engine, k, "posx");
      cy += Attr(*engine, k, "posy");
    }
    cx /= keys.size();
    cy /= keys.size();
    double s = 0;
    for (int64_t k : keys) {
      s += std::abs(Attr(*engine, k, "posx") - cx) +
           std::abs(Attr(*engine, k, "posy") - cy);
    }
    return s;
  };
  double before = spread();
  for (int tick = 0; tick < 8; ++tick) ASSERT_TRUE(engine->Tick().ok());
  EXPECT_LT(spread(), before);
}

TEST_P(Modes, IdleBattlefieldIsStable) {
  World w;
  // A lone full-health knight with no enemies: nothing should change
  // except nothing — no movement intent, no damage, no healing.
  int64_t knight = w.Add(UnitType::kKnight, 0, 20, 20);
  auto engine = w.MakeEngine(GetParam());
  for (int tick = 0; tick < 5; ++tick) ASSERT_TRUE(engine->Tick().ok());
  EXPECT_EQ(20.0, Attr(*engine, knight, "posx"));
  EXPECT_EQ(20.0, Attr(*engine, knight, "posy"));
  EXPECT_EQ(double(D20::kKnightHealth), Attr(*engine, knight, "health"));
}

TEST_P(Modes, CollisionsKeepCellsExclusive) {
  World w;
  // A wall of knights marching toward one enemy: no two units may ever
  // occupy the same cell.
  for (int i = 0; i < 20; ++i) {
    w.Add(UnitType::kKnight, 0, 5 + (i % 5), 5 + (i / 5));
  }
  w.Add(UnitType::kKnight, 1, 40, 7);
  auto engine = w.MakeEngine(GetParam());
  for (int tick = 0; tick < 15; ++tick) {
    ASSERT_TRUE(engine->Tick().ok());
    std::set<std::pair<int64_t, int64_t>> cells;
    const EnvironmentTable& t = engine->table();
    AttrId px = t.schema().Find("posx"), py = t.schema().Find("posy");
    for (RowId r = 0; r < t.NumRows(); ++r) {
      bool fresh = cells
                       .insert({static_cast<int64_t>(t.Get(r, px)),
                                static_cast<int64_t>(t.Get(r, py))})
                       .second;
      ASSERT_TRUE(fresh) << "two units share a cell at tick " << tick;
    }
  }
}

TEST_P(Modes, EmptyBattlefieldTicksFine) {
  World w;
  auto engine = w.MakeEngine(GetParam());
  ASSERT_TRUE(engine->Run(3).ok());
  EXPECT_EQ(0, engine->table().NumRows());
}

TEST_P(Modes, SingleHealerAloneDoesNotHealItself) {
  World w;
  // A healer at full health with no wounded allies must not cast (the
  // wounded-allies count gates the aura), so cooldown stays 0.
  int64_t healer = w.Add(UnitType::kHealer, 0, 10, 10);
  auto engine = w.MakeEngine(GetParam());
  ASSERT_TRUE(engine->Tick().ok());
  EXPECT_EQ(0.0, Attr(*engine, healer, "cooldown"));
}

}  // namespace
}  // namespace sgl
