// Adversarial-distribution sweeps for the Section 5.3 index structures.
//
// The uniform-random worlds of geom_test.cc miss the distributions games
// actually produce: dense combat clusters (the paper's motivating case —
// "if the units are all clustered together, as is often the case in
// combat"), single-file formations (collinear points), duplicate
// positions after collision-free stacking, and huge coordinates. Every
// structure must still agree exactly with brute force.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geom/kd_tree.h"
#include "geom/minmax_tree.h"
#include "geom/range_tree.h"
#include "geom/spatial_hash.h"
#include "geom/sweepline.h"
#include "util/rng.h"

namespace sgl {
namespace {

enum class Distribution {
  kTightCluster,   // everything inside a 6x6 patch
  kTwoArmies,      // two dense blobs far apart
  kCollinearX,     // a single row (y constant)
  kCollinearY,     // a single column (x constant)
  kDuplicates,     // many units stacked on few cells
  kHugeCoords,     // coordinates around 2^40
};

struct World {
  std::vector<PointRef> points;
  std::vector<double> values;
  std::vector<int64_t> keys;
  double lo = 0.0, hi = 0.0;  // probe window
};

World MakeWorld(Distribution dist, int32_t n, uint64_t seed) {
  World w;
  Xoshiro256 rng(seed);
  auto add = [&](double x, double y) {
    int32_t id = static_cast<int32_t>(w.points.size());
    w.points.push_back(PointRef{x, y, id});
    w.values.push_back(static_cast<double>(rng.NextBounded(500)));
    w.keys.push_back(10'000 + id);
  };
  switch (dist) {
    case Distribution::kTightCluster:
      for (int32_t i = 0; i < n; ++i) {
        add(double(rng.NextBounded(6)), double(rng.NextBounded(6)));
      }
      w.lo = -2;
      w.hi = 8;
      break;
    case Distribution::kTwoArmies:
      for (int32_t i = 0; i < n; ++i) {
        double base = i % 2 == 0 ? 0.0 : 1000.0;
        add(base + double(rng.NextBounded(12)),
            base + double(rng.NextBounded(12)));
      }
      w.lo = -5;
      w.hi = 1015;
      break;
    case Distribution::kCollinearX:
      for (int32_t i = 0; i < n; ++i) add(double(i), 7.0);
      w.lo = -1;
      w.hi = n + 1;
      break;
    case Distribution::kCollinearY:
      for (int32_t i = 0; i < n; ++i) add(7.0, double(i));
      w.lo = -1;
      w.hi = n + 1;
      break;
    case Distribution::kDuplicates:
      for (int32_t i = 0; i < n; ++i) {
        add(double(rng.NextBounded(3)), double(rng.NextBounded(3)));
      }
      w.lo = -1;
      w.hi = 4;
      break;
    case Distribution::kHugeCoords: {
      double base = 1099511627776.0;  // 2^40: sums stay exact in doubles
      for (int32_t i = 0; i < n; ++i) {
        add(base + double(rng.NextBounded(50)),
            base + double(rng.NextBounded(50)));
      }
      w.lo = base - 2;
      w.hi = base + 52;
      break;
    }
  }
  return w;
}

Rect RandomRect(const World& w, Xoshiro256* rng) {
  double span = w.hi - w.lo;
  double x1 = w.lo + rng->NextDouble() * span;
  double x2 = w.lo + rng->NextDouble() * span;
  double y1 = w.lo + rng->NextDouble() * span;
  double y2 = w.lo + rng->NextDouble() * span;
  return Rect{std::min(x1, x2), std::max(x1, x2), std::min(y1, y2),
              std::max(y1, y2)};
}

class Distributions
    : public ::testing::TestWithParam<std::tuple<Distribution, int32_t>> {};

TEST_P(Distributions, RangeTreeAggregates) {
  auto [dist, n] = GetParam();
  World w = MakeWorld(dist, n, 17);
  LayeredRangeTree2D tree(w.points, {w.values});
  Xoshiro256 rng(3);
  for (int32_t q = 0; q < 120; ++q) {
    Rect rect = RandomRect(w, &rng);
    AggResult got = tree.Aggregate(rect);
    int64_t want_count = 0;
    double want_sum = 0;
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        ++want_count;
        want_sum += w.values[p.id];
      }
    }
    ASSERT_EQ(want_count, got.count);
    ASSERT_DOUBLE_EQ(want_sum, got.sums[0]);
  }
}

TEST_P(Distributions, MinMaxTree) {
  auto [dist, n] = GetParam();
  World w = MakeWorld(dist, n, 29);
  MinMaxRangeTree2D tree(w.points, w.values, w.keys,
                         MinMaxRangeTree2D::Mode::kMin);
  Xoshiro256 rng(31);
  for (int32_t q = 0; q < 120; ++q) {
    Rect rect = RandomRect(w, &rng);
    Extremum got = tree.Query(rect);
    Extremum want = Extremum::None();
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        want = Extremum::Min(want, Extremum{w.values[p.id], w.keys[p.id]});
      }
    }
    ASSERT_EQ(want.valid(), got.valid());
    if (want.valid()) {
      ASSERT_EQ(want.key, got.key);
      ASSERT_DOUBLE_EQ(want.value, got.value);
    }
  }
}

TEST_P(Distributions, KdNearest) {
  auto [dist, n] = GetParam();
  World w = MakeWorld(dist, n, 41);
  KdTree2D tree(w.points, w.keys);
  Xoshiro256 rng(43);
  for (int32_t q = 0; q < 150; ++q) {
    double span = w.hi - w.lo;
    double qx = w.lo + rng.NextDouble() * span;
    double qy = w.lo + rng.NextDouble() * span;
    int64_t exclude = q % 2 == 0 ? w.keys[rng.NextBounded(n)] : INT64_MIN;
    Neighbor got = tree.Nearest(qx, qy, exclude);
    Neighbor want;
    for (const PointRef& p : w.points) {
      if (w.keys[p.id] == exclude) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < want.dist2 || (d2 == want.dist2 && w.keys[p.id] < want.key)) {
        want.dist2 = d2;
        want.key = w.keys[p.id];
        want.id = p.id;
      }
    }
    ASSERT_EQ(want.found(), got.found());
    if (want.found()) {
      ASSERT_EQ(want.key, got.key);
      ASSERT_DOUBLE_EQ(want.dist2, got.dist2);
    }
  }
}

TEST_P(Distributions, KdNearestInRect) {
  auto [dist, n] = GetParam();
  World w = MakeWorld(dist, n, 53);
  KdTree2D tree(w.points, w.keys);
  Xoshiro256 rng(59);
  for (int32_t q = 0; q < 120; ++q) {
    double span = w.hi - w.lo;
    double qx = w.lo + rng.NextDouble() * span;
    double qy = w.lo + rng.NextDouble() * span;
    Rect rect = RandomRect(w, &rng);
    Neighbor got = tree.NearestInRect(qx, qy, INT64_MIN, rect);
    Neighbor want;
    for (const PointRef& p : w.points) {
      if (!rect.Contains(p.x, p.y)) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < want.dist2 || (d2 == want.dist2 && w.keys[p.id] < want.key)) {
        want.dist2 = d2;
        want.key = w.keys[p.id];
        want.id = p.id;
      }
    }
    ASSERT_EQ(want.found(), got.found());
    if (want.found()) {
      ASSERT_EQ(want.key, got.key);
    }
  }
}

TEST_P(Distributions, SweepLineConstantExtent) {
  auto [dist, n] = GetParam();
  World w = MakeWorld(dist, n, 61);
  SweepLineExtremum sweep(w.points, w.values, w.keys,
                          SweepLineExtremum::Mode::kMax);
  Xoshiro256 rng(67);
  const double ry = (w.hi - w.lo) / 10.0;
  std::vector<SweepProbe> probes;
  const int32_t num_probes = 100;
  for (int32_t i = 0; i < num_probes; ++i) {
    double span = w.hi - w.lo;
    probes.push_back(SweepProbe{w.lo + rng.NextDouble() * span,
                                w.lo + rng.NextDouble() * span,
                                rng.NextDouble() * span / 8.0, i});
  }
  std::vector<Extremum> got(num_probes);
  sweep.Run(probes, ry, &got);
  for (const SweepProbe& pr : probes) {
    Rect rect = Rect::Around(pr.cx, pr.cy, pr.rx, ry);
    bool found = false;
    double best = 0;
    int64_t best_key = 0;
    for (const PointRef& p : w.points) {
      if (!rect.Contains(p.x, p.y)) continue;
      double v = w.values[p.id];
      if (!found || v > best || (v == best && w.keys[p.id] < best_key)) {
        found = true;
        best = v;
        best_key = w.keys[p.id];
      }
    }
    ASSERT_EQ(found, got[pr.id].valid());
    if (found) {
      ASSERT_EQ(best_key, got[pr.id].key);
      ASSERT_DOUBLE_EQ(best, got[pr.id].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Distributions,
    ::testing::Combine(::testing::Values(Distribution::kTightCluster,
                                         Distribution::kTwoArmies,
                                         Distribution::kCollinearX,
                                         Distribution::kCollinearY,
                                         Distribution::kDuplicates,
                                         Distribution::kHugeCoords),
                       ::testing::Values(1, 2, 17, 128, 700)));

}  // namespace
}  // namespace sgl
