// End-to-end coverage for the effect system beyond the battle script:
// set-priority (freeze) effects, min-combined effects, and actions that
// force the indexed engine's scan fallback — all run through full ticks
// in both evaluator modes and compared bit-for-bit.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "sgl/analyzer.h"
#include "util/rng.h"

namespace sgl {
namespace {

Schema FreezeSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("speed", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("mana", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movey", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("setspeed", CombineType::kSet).ok());
  EXPECT_TRUE(s.AddAttribute("slow", CombineType::kMin).ok());
  return s;
}

// Mages freeze the nearest enemy (absolute set, priority = caster mana);
// auras of sluggishness min-combine a speed cap; everyone else walks
// east at their speed.
const char* kFreezeScript = R"(
  aggregate NearestEnemy(u) {
    select nearest(*) from E e where e.player <> u.player;
  }
  action Freeze(u, target) {
    update e where e.key = target set setspeed = 0 priority u.mana;
  }
  action Sluggish(u) {
    update e where e.player <> u.player
      and e.posx >= u.posx - 6 and e.posx <= u.posx + 6
      and e.posy >= u.posy - 6 and e.posy <= u.posy + 6
      set slow min= 1;
  }
  action Walk(u, dx) {
    update e where e.key = u.key set movex += dx;
  }
  function main(u) {
    if u.mana > 0 then {
      let t = NearestEnemy(u);
      if t.found = 1 then perform Freeze(u, t.key);
      perform Sluggish(u);
    }
    else perform Walk(u, u.speed);
  }
)";

/// Mechanics: a set-effect overrides speed this tick; a min-effect caps
/// it. (The engine's movement phase consumes movex.)
class FreezeMechanics : public GameMechanics {
 public:
  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom&) override {
    const Schema& s = table->schema();
    AttrId speed = s.Find("speed"), setspeed = s.Find("setspeed");
    AttrId slow = s.Find("slow"), movex = s.Find("movex");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      double eff = table->Get(r, speed);
      if (buffer.HasSet(r, setspeed)) eff = table->Get(r, setspeed);
      double cap = table->Get(r, slow);
      // slow is min-combined with base 0 (= "no cap" sentinel here).
      if (cap > 0.0) eff = std::min(eff, cap);
      // Clamp the movement intent to the effective speed.
      double mx = table->Get(r, movex);
      if (mx > eff) table->Set(r, movex, eff);
    }
    return Status::OK();
  }
  Status EndTick(EnvironmentTable*, const TickRandom&) override {
    return Status::OK();
  }
};

struct FreezeWorld {
  std::unique_ptr<Simulation> sim;
};

FreezeWorld MakeFreezeWorld(EvaluatorMode mode, int32_t walkers,
                            uint64_t seed) {
  Schema schema = FreezeSchema();
  EnvironmentTable table(schema);
  Xoshiro256 rng(seed);
  // Player 0: mages (mana > 0). Player 1: walkers.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(table
                    .AddRow({0, double(rng.NextBounded(30)),
                             double(rng.NextBounded(30)), 0,
                             double(1 + rng.NextBounded(5)), 0, 0, 0, 0})
                    .ok());
  }
  for (int i = 0; i < walkers; ++i) {
    EXPECT_TRUE(table
                    .AddRow({1, double(rng.NextBounded(30)),
                             double(rng.NextBounded(30)),
                             double(1 + rng.NextBounded(3)), 0, 0, 0, 0, 0})
                    .ok());
  }
  auto script = CompileScript(kFreezeScript, schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  FreezeWorld setup;
  SimulationConfig config;
  config.eval_mode = mode;
  config.seed = seed;
  config.grid_width = 64;
  config.grid_height = 64;
  config.step_per_tick = 4.0;
  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .SetConfig(config)
      .AddScript("freeze", script.MoveValue())
      .SetMechanics(std::make_unique<FreezeMechanics>());
  auto sim = builder.Build();
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  setup.sim = sim.MoveValue();
  return setup;
}

TEST(SetEffects, FrozenWalkerDoesNotMove) {
  FreezeWorld s = MakeFreezeWorld(EvaluatorMode::kIndexed, 1, 3);
  const EnvironmentTable& t = s.sim->table();
  AttrId posx = t.schema().Find("posx");
  RowId walker = 4;  // the single player-1 unit
  double x0 = t.Get(walker, posx);
  ASSERT_TRUE(s.sim->Tick().ok());
  // The walker is the nearest (only) enemy of all four mages: frozen at
  // speed 0 and slowed; it must not have moved.
  EXPECT_EQ(x0, t.Get(walker, posx));
}

class FreezeEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FreezeEquivalence, NaiveAndIndexedAgree) {
  FreezeWorld naive = MakeFreezeWorld(EvaluatorMode::kNaive, 12, GetParam());
  FreezeWorld indexed =
      MakeFreezeWorld(EvaluatorMode::kIndexed, 12, GetParam());
  for (int tick = 0; tick < 8; ++tick) {
    ASSERT_TRUE(naive.sim->Tick().ok());
    ASSERT_TRUE(indexed.sim->Tick().ok());
    ASSERT_TRUE(naive.sim->table().Equals(indexed.sim->table()))
        << "tick " << tick << ": "
        << naive.sim->table().DiffString(indexed.sim->table());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreezeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SetEffects, IndexedSinkFallsBackForSetAOE) {
  // The Freeze script's Sluggish update is AOE with a min-effect — the
  // sink batches min effects; Freeze itself is direct-key with a set
  // effect. Verify classification ran without scan fallback except where
  // documented.
  Schema schema = FreezeSchema();
  auto script = CompileScript(kFreezeScript, schema);
  ASSERT_TRUE(script.ok());
  FreezeWorld s = MakeFreezeWorld(EvaluatorMode::kIndexed, 3, 1);
  std::string plan = s.sim->DescribePlan();
  EXPECT_NE(std::string::npos, plan.find("Freeze: update#0=direct-key"));
  EXPECT_NE(std::string::npos, plan.find("Sluggish: update#0=area-of-effect"));
}

}  // namespace
}  // namespace sgl
