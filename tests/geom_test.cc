// Randomized property tests: every index structure of Section 5.3 must
// agree exactly with a brute-force scan on integer-grid point sets.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geom/fenwick.h"
#include "geom/geom.h"
#include "geom/kd_tree.h"
#include "geom/minmax_tree.h"
#include "geom/partition.h"
#include "geom/range_tree.h"
#include "geom/spatial_hash.h"
#include "geom/sweepline.h"
#include "util/rng.h"

namespace sgl {
namespace {

struct TestWorld {
  std::vector<PointRef> points;
  std::vector<double> values;   // one payload term
  std::vector<double> values2;  // a second payload term
  std::vector<int64_t> keys;
};

TestWorld MakeWorld(int32_t n, int64_t seed, int64_t grid = 200) {
  TestWorld w;
  Xoshiro256 rng(seed);
  for (int32_t i = 0; i < n; ++i) {
    PointRef p;
    p.x = static_cast<double>(rng.NextBounded(grid));
    p.y = static_cast<double>(rng.NextBounded(grid));
    p.id = i;
    w.points.push_back(p);
    w.values.push_back(static_cast<double>(rng.NextBounded(1000)));
    w.values2.push_back(static_cast<double>(rng.NextBounded(50) - 25));
    w.keys.push_back(1000 + i);
  }
  return w;
}

Rect RandomRect(Xoshiro256* rng, int64_t grid = 200) {
  double x1 = static_cast<double>(rng->NextBounded(grid));
  double x2 = static_cast<double>(rng->NextBounded(grid));
  double y1 = static_cast<double>(rng->NextBounded(grid));
  double y2 = static_cast<double>(rng->NextBounded(grid));
  return Rect{std::min(x1, x2), std::max(x1, x2), std::min(y1, y2),
              std::max(y1, y2)};
}

// ---------------------------------------------------------------- Fenwick

TEST(Fenwick, MatchesPrefixScan) {
  Xoshiro256 rng(7);
  const int32_t n = 257;
  Fenwick fw(n);
  std::vector<double> ref(n, 0.0);
  for (int32_t step = 0; step < 2000; ++step) {
    int32_t i = static_cast<int32_t>(rng.NextBounded(n));
    double v = static_cast<double>(rng.NextBounded(100) - 50);
    fw.Add(i, v);
    ref[i] += v;
    int32_t lo = static_cast<int32_t>(rng.NextBounded(n));
    int32_t hi = lo + static_cast<int32_t>(rng.NextBounded(n - lo + 1));
    double want = 0.0;
    for (int32_t j = lo; j < hi; ++j) want += ref[j];
    ASSERT_DOUBLE_EQ(want, fw.RangeSum(lo, hi));
  }
}

TEST(Fenwick, EmptyRange) {
  Fenwick fw(10);
  fw.Add(3, 5.0);
  EXPECT_EQ(0.0, fw.RangeSum(4, 4));
  EXPECT_EQ(0.0, fw.RangeSum(0, 0));
  EXPECT_EQ(5.0, fw.RangeSum(0, 10));
}

// ------------------------------------------------------- LayeredRangeTree

class RangeTreeSizes : public ::testing::TestWithParam<int32_t> {};

TEST_P(RangeTreeSizes, AggregateMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 42 + n);
  LayeredRangeTree2D tree(w.points, {w.values, w.values2});
  Xoshiro256 rng(99);
  for (int32_t q = 0; q < 200; ++q) {
    Rect rect = RandomRect(&rng);
    AggResult got = tree.Aggregate(rect);
    int64_t want_count = 0;
    double want_sum = 0.0, want_sum2 = 0.0;
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        ++want_count;
        want_sum += w.values[p.id];
        want_sum2 += w.values2[p.id];
      }
    }
    ASSERT_EQ(want_count, got.count) << "n=" << n << " q=" << q;
    ASSERT_DOUBLE_EQ(want_sum, got.sums[0]);
    ASSERT_DOUBLE_EQ(want_sum2, got.sums[1]);
  }
}

TEST_P(RangeTreeSizes, EnumerateMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 7 + n);
  LayeredRangeTree2D tree(w.points, {});
  Xoshiro256 rng(5);
  for (int32_t q = 0; q < 100; ++q) {
    Rect rect = RandomRect(&rng);
    std::vector<int32_t> got;
    tree.Enumerate(rect, &got);
    std::vector<int32_t> want;
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) want.push_back(p.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(want, got);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RangeTreeSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 100, 500,
                                           1000));

TEST(RangeTree, EmptyTree) {
  LayeredRangeTree2D tree({}, {});
  AggResult r = tree.Aggregate(Rect{0, 100, 0, 100});
  EXPECT_EQ(0, r.count);
  std::vector<int32_t> ids;
  tree.Enumerate(Rect{0, 100, 0, 100}, &ids);
  EXPECT_TRUE(ids.empty());
}

TEST(RangeTree, DuplicateCoordinates) {
  // Many points stacked on the same few coordinates.
  std::vector<PointRef> pts;
  std::vector<double> vals;
  for (int32_t i = 0; i < 60; ++i) {
    pts.push_back(PointRef{static_cast<double>(i % 3),
                           static_cast<double>(i % 2), i});
    vals.push_back(1.0);
  }
  LayeredRangeTree2D tree(pts, {vals});
  AggResult all = tree.Aggregate(Rect{0, 2, 0, 1});
  EXPECT_EQ(60, all.count);
  EXPECT_DOUBLE_EQ(60.0, all.sums[0]);
  AggResult col = tree.Aggregate(Rect{1, 1, 0, 1});
  EXPECT_EQ(20, col.count);
  AggResult cell = tree.Aggregate(Rect{2, 2, 1, 1});
  EXPECT_EQ(10, cell.count);
}

TEST(RangeTree, DegenerateRects) {
  TestWorld w = MakeWorld(100, 11);
  LayeredRangeTree2D tree(w.points, {w.values});
  // A rect that is a single point must count exactly the stacked points.
  for (const PointRef& p : w.points) {
    AggResult r = tree.Aggregate(Rect{p.x, p.x, p.y, p.y});
    int64_t want = 0;
    for (const PointRef& q : w.points) {
      if (q.x == p.x && q.y == p.y) ++want;
    }
    ASSERT_EQ(want, r.count);
  }
  // Inverted/out-of-range rects are empty.
  EXPECT_EQ(0, tree.Aggregate(Rect{500, 600, 0, 200}).count);
  EXPECT_EQ(0, tree.Aggregate(Rect{10, 5, 0, 200}).count);
}

// --------------------------------------------------------- MinMaxRangeTree

class MinMaxSizes : public ::testing::TestWithParam<int32_t> {};

TEST_P(MinMaxSizes, MinMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 13 + n);
  MinMaxRangeTree2D tree(w.points, w.values, w.keys,
                         MinMaxRangeTree2D::Mode::kMin);
  Xoshiro256 rng(3);
  for (int32_t q = 0; q < 150; ++q) {
    Rect rect = RandomRect(&rng);
    Extremum got = tree.Query(rect);
    Extremum want = Extremum::None();
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        want = Extremum::Min(want, Extremum{w.values[p.id], w.keys[p.id]});
      }
    }
    ASSERT_EQ(want.valid(), got.valid());
    if (want.valid()) {
      ASSERT_DOUBLE_EQ(want.value, got.value);
      ASSERT_EQ(want.key, got.key);
    }
  }
}

TEST_P(MinMaxSizes, MaxMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 29 + n);
  MinMaxRangeTree2D tree(w.points, w.values, w.keys,
                         MinMaxRangeTree2D::Mode::kMax);
  Xoshiro256 rng(31);
  for (int32_t q = 0; q < 150; ++q) {
    Rect rect = RandomRect(&rng);
    Extremum got = tree.Query(rect);
    bool found = false;
    double best = 0.0;
    int64_t best_key = 0;
    for (const PointRef& p : w.points) {
      if (!rect.Contains(p.x, p.y)) continue;
      double v = w.values[p.id];
      // Max with smaller-key tie-break.
      if (!found || v > best || (v == best && w.keys[p.id] < best_key)) {
        found = true;
        best = v;
        best_key = w.keys[p.id];
      }
    }
    ASSERT_EQ(found, got.valid());
    if (found) {
      ASSERT_DOUBLE_EQ(best, got.value);
      ASSERT_EQ(best_key, got.key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinMaxSizes,
                         ::testing::Values(1, 2, 5, 17, 64, 200, 777));

TEST(MinMaxTree, TieBreakIsSmallestKey) {
  std::vector<PointRef> pts = {{1, 1, 0}, {2, 2, 1}, {3, 3, 2}};
  std::vector<double> vals = {5.0, 5.0, 5.0};
  std::vector<int64_t> keys = {30, 10, 20};
  MinMaxRangeTree2D tree(pts, vals, keys, MinMaxRangeTree2D::Mode::kMin);
  Extremum e = tree.Query(Rect{0, 10, 0, 10});
  EXPECT_EQ(10, e.key);
}

// --------------------------------------------------------------- SweepLine

class SweepSizes : public ::testing::TestWithParam<int32_t> {};

TEST_P(SweepSizes, MinMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 17 + n);
  SweepLineExtremum sweep(w.points, w.values, w.keys,
                          SweepLineExtremum::Mode::kMin);
  Xoshiro256 rng(23);
  const double ry = 15.0;
  std::vector<SweepProbe> probes;
  const int32_t num_probes = 120;
  for (int32_t i = 0; i < num_probes; ++i) {
    probes.push_back(SweepProbe{static_cast<double>(rng.NextBounded(200)),
                                static_cast<double>(rng.NextBounded(200)),
                                static_cast<double>(rng.NextBounded(30)), i});
  }
  std::vector<Extremum> got(num_probes);
  sweep.Run(probes, ry, &got);
  for (const SweepProbe& pr : probes) {
    Rect rect = Rect::Around(pr.cx, pr.cy, pr.rx, ry);
    Extremum want = Extremum::None();
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        want = Extremum::Min(want, Extremum{w.values[p.id], w.keys[p.id]});
      }
    }
    ASSERT_EQ(want.valid(), got[pr.id].valid()) << "probe " << pr.id;
    if (want.valid()) {
      ASSERT_DOUBLE_EQ(want.value, got[pr.id].value);
      ASSERT_EQ(want.key, got[pr.id].key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SweepSizes,
                         ::testing::Values(1, 3, 10, 50, 300, 900));

TEST(SweepBatch, MixedExtentsMatchBruteForce) {
  TestWorld w = MakeWorld(400, 67);
  SweepBatch batch(w.points, w.values, w.keys, SweepLineExtremum::Mode::kMax);
  Xoshiro256 rng(41);
  struct Probe {
    double cx, cy, rx, ry;
  };
  std::vector<Probe> probes;
  for (int32_t i = 0; i < 100; ++i) {
    Probe p{static_cast<double>(rng.NextBounded(200)),
            static_cast<double>(rng.NextBounded(200)),
            static_cast<double>(rng.NextBounded(25)),
            static_cast<double>(5 + 10 * rng.NextBounded(3))};  // 3 extents
    probes.push_back(p);
    batch.AddProbe(p.cx, p.cy, p.rx, p.ry, i);
  }
  std::vector<Extremum> got(probes.size());
  batch.Run(&got);
  for (size_t i = 0; i < probes.size(); ++i) {
    Rect rect =
        Rect::Around(probes[i].cx, probes[i].cy, probes[i].rx, probes[i].ry);
    bool found = false;
    double best = 0.0;
    int64_t best_key = 0;
    for (const PointRef& p : w.points) {
      if (!rect.Contains(p.x, p.y)) continue;
      double v = w.values[p.id];
      if (!found || v > best || (v == best && w.keys[p.id] < best_key)) {
        found = true;
        best = v;
        best_key = w.keys[p.id];
      }
    }
    ASSERT_EQ(found, got[i].valid()) << "probe " << i;
    if (found) {
      ASSERT_DOUBLE_EQ(best, got[i].value);
      ASSERT_EQ(best_key, got[i].key);
    }
  }
}

TEST(SweepLine, EmptyPoints) {
  SweepLineExtremum sweep({}, {}, {}, SweepLineExtremum::Mode::kMin);
  std::vector<Extremum> out(1);
  sweep.Run({SweepProbe{0, 0, 10, 0}}, 10.0, &out);
  EXPECT_FALSE(out[0].valid());
}

// ----------------------------------------------------------------- KdTree

class KdSizes : public ::testing::TestWithParam<int32_t> {};

TEST_P(KdSizes, NearestMatchesBruteForce) {
  const int32_t n = GetParam();
  TestWorld w = MakeWorld(n, 3 + n);
  KdTree2D tree(w.points, w.keys);
  Xoshiro256 rng(19);
  for (int32_t q = 0; q < 200; ++q) {
    double qx = static_cast<double>(rng.NextBounded(220) - 10);
    double qy = static_cast<double>(rng.NextBounded(220) - 10);
    int64_t exclude =
        q % 3 == 0 ? w.keys[rng.NextBounded(n)] : INT64_MIN;
    Neighbor got = tree.Nearest(qx, qy, exclude);
    Neighbor want;
    for (const PointRef& p : w.points) {
      if (w.keys[p.id] == exclude) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < want.dist2 || (d2 == want.dist2 && w.keys[p.id] < want.key)) {
        want.dist2 = d2;
        want.key = w.keys[p.id];
        want.id = p.id;
      }
    }
    ASSERT_EQ(want.found(), got.found());
    if (want.found()) {
      ASSERT_DOUBLE_EQ(want.dist2, got.dist2);
      ASSERT_EQ(want.key, got.key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdSizes,
                         ::testing::Values(1, 2, 9, 40, 333, 1000));

TEST(KdTree, NearestWithinRespectsBound) {
  std::vector<PointRef> pts = {{0, 0, 0}, {10, 0, 1}};
  std::vector<int64_t> keys = {100, 101};
  KdTree2D tree(pts, keys);
  // Exactly at distance^2 = 100: inclusive.
  Neighbor n1 = tree.NearestWithin(20, 0, INT64_MIN, 100.0);
  EXPECT_TRUE(n1.found());
  EXPECT_EQ(101, n1.key);
  // Just under: not found.
  Neighbor n2 = tree.NearestWithin(20, 0, INT64_MIN, 99.0);
  EXPECT_FALSE(n2.found());
}

TEST(KdTree, ExcludeOnlyPoint) {
  std::vector<PointRef> pts = {{5, 5, 0}};
  std::vector<int64_t> keys = {7};
  KdTree2D tree(pts, keys);
  EXPECT_FALSE(tree.Nearest(5, 5, 7).found());
  EXPECT_TRUE(tree.Nearest(5, 5, INT64_MIN).found());
}

// --------------------------------------------------------- LayeredKdForest

TEST(LayeredKdForest, ThresholdNearestMatchesBruteForce) {
  const int32_t n = 300;
  TestWorld w = MakeWorld(n, 55);
  std::vector<double> armor(n);
  Xoshiro256 rng(77);
  for (int32_t i = 0; i < n; ++i) {
    armor[i] = static_cast<double>(rng.NextBounded(20));
  }
  LayeredKdForest forest(w.points, w.keys, armor);
  for (int32_t q = 0; q < 150; ++q) {
    double qx = static_cast<double>(rng.NextBounded(200));
    double qy = static_cast<double>(rng.NextBounded(200));
    double threshold = static_cast<double>(rng.NextBounded(22) - 1);
    Neighbor got = forest.NearestWithAttrAtMost(qx, qy, INT64_MIN, threshold);
    Neighbor want;
    for (const PointRef& p : w.points) {
      if (armor[p.id] > threshold) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < want.dist2 || (d2 == want.dist2 && w.keys[p.id] < want.key)) {
        want.dist2 = d2;
        want.key = w.keys[p.id];
        want.id = p.id;
      }
    }
    ASSERT_EQ(want.found(), got.found()) << "q=" << q;
    if (want.found()) {
      ASSERT_DOUBLE_EQ(want.dist2, got.dist2);
      ASSERT_EQ(want.key, got.key);
    }
  }
}

// ------------------------------------------------------------- SpatialHash

class HashSizes : public ::testing::TestWithParam<double> {};

TEST_P(HashSizes, CountMatchesBruteForce) {
  const double cell = GetParam();
  TestWorld w = MakeWorld(500, 91);
  SpatialHashGrid grid(w.points, cell);
  Xoshiro256 rng(15);
  for (int32_t q = 0; q < 150; ++q) {
    Rect rect = RandomRect(&rng);
    int64_t want = 0;
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) ++want;
    }
    ASSERT_EQ(want, grid.CountInRect(rect)) << "cell=" << cell;
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, HashSizes,
                         ::testing::Values(1.0, 4.0, 16.0, 64.0, 500.0));

TEST(SpatialHash, Empty) {
  SpatialHashGrid grid({}, 8.0);
  EXPECT_EQ(0, grid.CountInRect(Rect{0, 100, 0, 100}));
}

// ------------------------------------------------------------- Partitioner

TEST(Partitioner, GroupsAndExcludes) {
  std::vector<int64_t> parts = {1, 2, 1, 3, 2, 1};
  Partitioner pt(parts);
  EXPECT_EQ(3u, pt.NumPartitions());
  ASSERT_NE(nullptr, pt.PointsIn(1));
  EXPECT_EQ((std::vector<int32_t>{0, 2, 5}), *pt.PointsIn(1));
  EXPECT_EQ(nullptr, pt.PointsIn(9));

  PartitionedIndex<int> idx;
  idx.Add(1, 10);
  idx.Add(2, 20);
  idx.Add(3, 30);
  int sum = 0;
  idx.ForEachExcept(2, [&](int64_t, const int& v) { sum += v; });
  EXPECT_EQ(40, sum);
}

TEST(Partitioner, EncodePartitionDistinct) {
  EXPECT_NE(EncodePartition(1, 2), EncodePartition(2, 1));
  EXPECT_NE(EncodePartition(0, 1), EncodePartition(1, 0));
  EXPECT_EQ(EncodePartition(5, 6, 7), EncodePartition(5, 6, 7));
}

}  // namespace
}  // namespace sgl
