// Differential fuzzing of the bytecode VM against the interpreter.
//
// A seeded deterministic generator emits random well-typed SGL scripts —
// nested arithmetic (division and modulus guarded against runtime
// errors), builtins, random(), aggregate probes, and/or/not conditions,
// if/else nesting, let bindings, user-function inlining — then a
// compiled and an interpreted simulation of the same small world run 20
// ticks in lockstep. Any bit divergence in the environment table fails
// with the offending script source and tick. Seeds are fixed, so a
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/simulation.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

constexpr int32_t kSeeds = 24;
constexpr int64_t kTicks = 20;
constexpr int32_t kUnits = 48;

/// SplitMix64: tiny, deterministic, platform-independent (no <random>
/// distributions, whose sequences vary across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  int32_t Below(int32_t n) {
    return static_cast<int32_t>(Next() % static_cast<uint64_t>(n));
  }

 private:
  uint64_t state_;
};

/// Generates one well-typed script. Every emitted expression is a scalar
/// over the fuzz schema (player/posx/posy/hp/score); division and
/// modulus only ever see non-zero constant right-hand sides, and sqrt
/// only non-negative arguments, so generated scripts never raise runtime
/// errors — error-path equivalence is pinned separately in vm_test.cc.
class ScriptGen {
 public:
  explicit ScriptGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream os;
    os << "aggregate Rivals(u, r) {\n"
       << "  select count(*) from E e\n"
       << "  where e.player != u.player\n"
       << "    and e.posx >= u.posx - r and e.posx <= u.posx + r;\n"
       << "}\n"
       << "aggregate Field(u) {\n"
       << "  select avg(e.posx) as x, sum(e.hp) as h from E e\n"
       << "  where e.player != u.player;\n"
       << "}\n"
       << "action Score(u, amount) {\n"
       << "  update e where e.key = u.key set score += amount;\n"
       << "}\n"
       << "action Drain(u, amount) {\n"
       << "  update e where e.player != u.player set score += amount;\n"
       << "}\n"
       << "function helper(u, x) {\n";
    // The helper body reads its scalar parameter, exercising inlined
    // frames and parameter slot assignment.
    locals_ = {"x"};
    in_helper_ = true;
    EmitBlock(os, 1, 2);
    in_helper_ = false;
    os << "}\n"
       << "function main(u) {\n";
    locals_.clear();
    EmitBlock(os, 2 + rng_.Below(3), 3);
    os << "}\n";
    return os.str();
  }

 private:
  /// A scalar expression of at most `depth` further nesting levels.
  std::string Expr(int32_t depth) {
    if (depth <= 0) return Leaf();
    switch (rng_.Below(10)) {
      case 0: return Leaf();
      case 1:
        return "(" + Expr(depth - 1) + " + " + Expr(depth - 1) + ")";
      case 2:
        return "(" + Expr(depth - 1) + " - " + Expr(depth - 1) + ")";
      case 3:
        return "(" + Expr(depth - 1) + " * " + SmallConst() + ")";
      case 4:  // guarded: constant non-zero divisor
        return "(" + Expr(depth - 1) + " / " + SmallConst() + ")";
      case 5:  // guarded: constant non-zero modulus
        return "(" + Expr(depth - 1) + " mod " + SmallConst() + ")";
      case 6:
        return "abs(" + Expr(depth - 1) + ")";
      case 7: {
        const char* fn = rng_.Below(2) == 0 ? "min" : "max";
        return std::string(fn) + "(" + Expr(depth - 1) + ", " +
               Expr(depth - 1) + ")";
      }
      case 8:  // guarded: sqrt of a non-negative argument
        return "sqrt(abs(" + Expr(depth - 1) + "))";
      default:
        return "(random(" + std::to_string(rng_.Below(16)) + ") mod " +
               SmallConst() + ")";
    }
  }

  std::string Leaf() {
    switch (rng_.Below(6)) {
      case 0: return std::to_string(rng_.Below(21) - 10);
      case 1: return "u.posx";
      case 2: return "u.posy";
      case 3: return "u.hp";
      case 4:
        if (!locals_.empty()) {
          return locals_[rng_.Below(static_cast<int32_t>(locals_.size()))];
        }
        return "u.hp";
      default:
        switch (rng_.Below(3)) {
          case 0:
            return "Rivals(u, " + std::to_string(2 + rng_.Below(6)) + ")";
          case 1: return "Field(u).x";
          default: return "Field(u).h";
        }
    }
  }

  std::string SmallConst() { return std::to_string(2 + rng_.Below(8)); }

  std::string Cond(int32_t depth) {
    if (depth <= 0 || rng_.Below(3) == 0) {
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      return Expr(1) + " " + kOps[rng_.Below(6)] + " " + Expr(1);
    }
    switch (rng_.Below(3)) {
      case 0: return Cond(depth - 1) + " and " + Cond(depth - 1);
      case 1: return Cond(depth - 1) + " or " + Cond(depth - 1);
      default: return "not (" + Cond(depth - 1) + ")";
    }
  }

  void Indent(std::ostringstream& os, int32_t level) {
    for (int32_t i = 0; i < level; ++i) os << "  ";
  }

  /// `n` statements at nesting `level`; lets bound here stay visible to
  /// later statements of the same block (and deeper ones).
  void EmitBlock(std::ostringstream& os, int32_t n, int32_t level) {
    const size_t mark = locals_.size();
    for (int32_t i = 0; i < n; ++i) EmitStmt(os, level);
    if (n == 0) {
      Indent(os, level);
      os << "perform Score(u, 1);\n";
    }
    locals_.resize(mark);
  }

  void EmitStmt(std::ostringstream& os, int32_t level) {
    Indent(os, level);
    switch (rng_.Below(5)) {
      case 0: {
        std::string name = "v" + std::to_string(next_local_++);
        os << "let " << name << " = " << Expr(2) << ";\n";
        locals_.push_back(name);
        break;
      }
      case 1:
        os << "perform Score(u, " << Expr(2) << ");\n";
        break;
      case 2:
        os << "perform Drain(u, " << Expr(1) << ");\n";
        break;
      case 3:
        // Inside the helper, performing it again would be recursion (the
        // analyzer rejects perform cycles).
        if (in_helper_) {
          os << "perform Score(u, " << Expr(1) << ");\n";
        } else {
          os << "perform helper(u, " << Expr(1) << ");\n";
        }
        break;
      default: {
        os << "if " << Cond(2) << " then {\n";
        // Lets inside a branch die with it, so no conditionally-bound
        // reads escape (which would make the compiler bail — legal, but
        // then the fuzzer would only be testing the interpreter).
        EmitBlock(os, 1 + rng_.Below(2), level + 1);
        Indent(os, level);
        if (level < 5 && rng_.Below(2) == 0) {
          os << "} else {\n";
          EmitBlock(os, 1 + rng_.Below(2), level + 1);
          Indent(os, level);
        }
        os << "}\n";
        break;
      }
    }
  }

  Rng rng_;
  std::vector<std::string> locals_;
  int32_t next_local_ = 0;
  bool in_helper_ = false;
};

Schema FuzzSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("hp", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("score", CombineType::kSum).ok());
  return s;
}

EnvironmentTable FuzzWorld(const Schema& s, uint64_t seed) {
  Rng rng(seed * 0x51ed2701u + 99);
  EnvironmentTable t(s);
  for (int32_t i = 0; i < kUnits; ++i) {
    EXPECT_TRUE(t.AddRow({static_cast<double>(rng.Below(3)),
                          static_cast<double>(rng.Below(17)),
                          static_cast<double>(rng.Below(17)),
                          static_cast<double>(1 + rng.Below(40)), 0})
                    .ok());
  }
  return t;
}

std::unique_ptr<Simulation> BuildFuzz(const std::string& source, uint64_t seed,
                                      bool compiled, int32_t threads) {
  Schema schema = FuzzSchema();
  auto script = CompileScript(source, schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return nullptr;
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kNaive;
  config.compiled = compiled;
  config.threads = threads;
  config.seed = seed;
  config.move_x_attr = "";  // the fuzz schema has no movement attributes
  auto sim = SimulationBuilder()
                 .SetTable(FuzzWorld(schema, seed))
                 .SetConfig(config)
                 .AddScript("fuzz", script.MoveValue())
                 .Build();
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

TEST(VmFuzzTest, RandomScriptsStayLockstepWithInterpreter) {
  Schema schema = FuzzSchema();
  int32_t compiled_scripts = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ScriptGen gen(seed * 0x9e3779b9u);
    const std::string source = gen.Generate();
    auto parsed = CompileScript(source, schema);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << " generated an invalid "
                             << "script: " << parsed.status().ToString() << "\n"
                             << source;

    // 4 threads on the compiled side doubles as a chunk-boundary test:
    // batches must split exactly where the interpreter's chunks do.
    const int32_t threads = seed % 2 == 0 ? 4 : 1;
    auto compiled = BuildFuzz(source, seed, true, threads);
    auto interpreted = BuildFuzz(source, seed, false, 1);
    ASSERT_NE(compiled, nullptr);
    ASSERT_NE(interpreted, nullptr);
    if (compiled->session(0).compiled != nullptr) ++compiled_scripts;

    for (int64_t tick = 0; tick < kTicks; ++tick) {
      ASSERT_TRUE(compiled->Tick().ok()) << "seed " << seed << "\n" << source;
      ASSERT_TRUE(interpreted->Tick().ok())
          << "seed " << seed << "\n" << source;
      ASSERT_TRUE(compiled->table().Equals(interpreted->table()))
          << "seed " << seed << " diverged at tick " << tick << ":\n"
          << compiled->table().DiffString(interpreted->table()) << "\nscript:\n"
          << source;
    }
  }
  // The generator is tuned so (nearly) every script compiles; if this
  // floor breaks, the fuzzer has stopped testing the VM.
  EXPECT_GE(compiled_scripts, kSeeds - 2)
      << "only " << compiled_scripts << "/" << kSeeds
      << " fuzz scripts compiled to bytecode";
}

}  // namespace
}  // namespace sgl
