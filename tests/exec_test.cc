// Unit tests for the src/exec/ subsystem: the deterministic ThreadPool /
// ParallelFor primitive and the ShardedEffectBuffer whose chunk-order
// replay underpins the engine's bit-exact parallel decision phase.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "exec/sharded_effect_buffer.h"
#include "exec/thread_pool.h"

namespace sgl {
namespace exec {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPool, NumChunksRespectsGrainAndThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(0, pool.NumChunks(0, 1));
  EXPECT_EQ(1, pool.NumChunks(1, 1));
  EXPECT_EQ(1, pool.NumChunks(10, 100));   // grain floors the chunk size
  EXPECT_EQ(2, pool.NumChunks(150, 100));  // ceil(150/100) = 2 < threads
  EXPECT_EQ(4, pool.NumChunks(1000, 7));   // capped at num_threads
}

TEST(ThreadPool, CoversRangeExactlyOnceInContiguousAscendingChunks) {
  ThreadPool pool(4);
  const int64_t n = 1003;
  std::vector<int32_t> hits(n, 0);
  const int32_t chunks = pool.NumChunks(n, 1);
  std::vector<std::pair<int64_t, int64_t>> bounds(chunks, {-1, -1});
  Status st = pool.ParallelFor(n, 1, [&](int32_t c, int64_t lo, int64_t hi) {
    bounds[c] = {lo, hi};
    for (int64_t i = lo; i < hi; ++i) ++hits[i];  // disjoint ranges: no race
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(1, hits[i]) << "index " << i;
  // Chunk c's range starts where chunk c-1 ended; chunk 0 starts at 0.
  int64_t expect_lo = 0;
  for (int32_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(expect_lo, bounds[c].first) << "chunk " << c;
    EXPECT_GT(bounds[c].second, bounds[c].first);
    expect_lo = bounds[c].second;
  }
  EXPECT_EQ(n, expect_lo);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  bool called = false;
  ASSERT_TRUE(pool.ParallelFor(0, 1,
                               [&](int32_t, int64_t, int64_t) {
                                 called = true;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReturnsLowestNumberedChunkError) {
  ThreadPool pool(4);
  std::vector<int32_t> ran(4, 0);
  Status st = pool.ParallelFor(4, 1, [&](int32_t c, int64_t, int64_t) {
    ran[c] = 1;
    if (c == 1) return Status::ExecutionError("chunk one failed");
    if (c == 3) return Status::ExecutionError("chunk three failed");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  // Deterministic error reporting: the lowest failing chunk wins, and no
  // chunk is skipped because another one failed.
  EXPECT_NE(std::string::npos, st.message().find("chunk one failed"));
  for (int32_t c = 0; c < 4; ++c) EXPECT_EQ(1, ran[c]) << "chunk " << c;
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  Status st = pool.ParallelFor(4, 1, [&](int32_t, int64_t, int64_t) {
    int64_t local = 0;
    SGL_RETURN_NOT_OK(
        pool.ParallelFor(100, 10, [&](int32_t, int64_t lo, int64_t hi) {
          local += hi - lo;  // inline on this worker: no race on local
          return Status::OK();
        }));
    total.fetch_add(local);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(400, total.load());
}

TEST(ThreadPool, SingleThreadPoolRunsOnCallerInChunkOrder) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int32_t> order;
  Status st = pool.ParallelFor(10, 2, [&](int32_t c, int64_t, int64_t) {
    EXPECT_EQ(caller, std::this_thread::get_id());
    order.push_back(c);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(1u, order.size());  // one thread, grain 2 -> 1 chunk of 10
  EXPECT_EQ(0, order[0]);
}

TEST(ThreadPool, ParallelStatsReportChunksAndSlowestWorker) {
  ThreadPool pool(3);
  ParallelStats stats;
  Status st = pool.ParallelFor(
      300, 1,
      [&](int32_t, int64_t lo, int64_t hi) {
        volatile double sink = 0.0;
        for (int64_t i = lo * 2000; i < hi * 2000; ++i) {
          sink = sink + static_cast<double>(i);
        }
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(3, stats.workers);
  EXPECT_GT(stats.max_worker_ns, 0);
  // Stats accumulate across calls.
  ASSERT_TRUE(pool.ParallelFor(
                      3, 1,
                      [](int32_t, int64_t, int64_t) { return Status::OK(); },
                      &stats)
                  .ok());
  EXPECT_EQ(3, stats.workers);
}

TEST(ThreadPool, ReusableAcrossManyParallelForCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ASSERT_TRUE(pool.ParallelFor(64, 4,
                                 [&](int32_t, int64_t lo, int64_t hi) {
                                   int64_t s = 0;
                                   for (int64_t i = lo; i < hi; ++i) s += i;
                                   sum.fetch_add(s);
                                   return Status::OK();
                                 })
                    .ok());
    ASSERT_EQ(64 * 63 / 2, sum.load()) << "round " << round;
  }
}

// ----------------------------------------------------- ShardedEffectBuffer

Schema EffectSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("hp", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("dmg", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("aura", CombineType::kMax).ok());
  EXPECT_TRUE(s.AddAttribute("slow", CombineType::kMin).ok());
  EXPECT_TRUE(s.AddAttribute("freeze", CombineType::kSet).ok());
  return s;
}

EnvironmentTable SmallTable(const Schema& s, int32_t rows) {
  EnvironmentTable table(s);
  for (int32_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(table.AddRow({10.0 + r, 0.0, 0.0, 0.0, 0.0}).ok());
  }
  table.ResetEffects();
  return table;
}

struct TestOp {
  RowId row;
  const char* attr;
  bool is_set;
  double value;
  double priority;
};

void Apply(EffectSink* sink, const Schema& s, const TestOp& op) {
  AttrId a = s.Find(op.attr);
  if (op.is_set) {
    sink->AccumulateSet(op.row, a, op.value, op.priority);
  } else {
    sink->Accumulate(op.row, a, op.value);
  }
}

TEST(ShardedEffectBuffer, ChunkOrderReplayIsBitExactVsSequential) {
  Schema s = EffectSchema();
  EnvironmentTable table = SmallTable(s, 4);

  // Deliberately non-dyadic doubles: their sum depends on fold order, so
  // this test fails if the merge ever reassociates kSum contributions
  // instead of replaying the exact sequential call sequence.
  const std::vector<TestOp> ops = {
      {0, "dmg", false, 0.1, 0},    {1, "aura", false, 2.5, 0},
      {0, "dmg", false, 0.2, 0},    {2, "slow", false, 7.0, 0},
      {0, "dmg", false, 0.3, 0},    {3, "freeze", true, 5.0, 1.0},
      {1, "dmg", false, 1.0 / 3},   {0, "dmg", false, 0.7, 0},
      {3, "freeze", true, 9.0, 1.0},{2, "slow", false, 3.0, 0},
      {1, "dmg", false, 2.0 / 3},   {1, "aura", false, 2.4, 0},
      {0, "dmg", false, 1e-9, 0},   {3, "freeze", true, 2.0, 4.0},
      {2, "dmg", false, 0.1, 0},
  };

  // Reference: one buffer, ops applied in global order.
  EffectBuffer reference;
  reference.Begin(table);
  for (const TestOp& op : ops) Apply(&reference, s, op);

  // Sharded: the same sequence split into 3 contiguous chunks.
  ShardedEffectBuffer sharded(3);
  for (size_t i = 0; i < ops.size(); ++i) {
    Apply(sharded.shard(static_cast<int32_t>(i / 5)), s, ops[i]);
  }
  EXPECT_EQ(static_cast<int64_t>(ops.size()), sharded.total_ops());
  EffectBuffer merged;
  merged.Begin(table);
  sharded.MergeInto(&merged);

  for (RowId r = 0; r < table.NumRows(); ++r) {
    for (const char* attr : {"dmg", "aura", "slow", "freeze"}) {
      AttrId a = s.Find(attr);
      EXPECT_EQ(reference.Get(r, a), merged.Get(r, a))
          << attr << " row " << r;
    }
    AttrId freeze = s.Find("freeze");
    EXPECT_EQ(reference.HasSet(r, freeze), merged.HasSet(r, freeze));
  }
  // The freeze ties at priority 1 resolve to the larger value, then the
  // higher priority 4 wins outright — in both implementations.
  EXPECT_EQ(2.0, merged.Get(3, s.Find("freeze")));
}

TEST(ShardedEffectBuffer, SetPriorityTiesAreShardOrderIndependent) {
  Schema s = EffectSchema();
  EnvironmentTable table = SmallTable(s, 1);
  AttrId freeze = s.Find("freeze");

  // The same tied contributions, landing on different shards in the two
  // buffers: max-priority with larger-value tie-break is commutative, so
  // both merges must agree.
  ShardedEffectBuffer forward(2), backward(2);
  forward.shard(0)->AccumulateSet(0, freeze, 3.0, 2.0);
  forward.shard(1)->AccumulateSet(0, freeze, 8.0, 2.0);
  backward.shard(0)->AccumulateSet(0, freeze, 8.0, 2.0);
  backward.shard(1)->AccumulateSet(0, freeze, 3.0, 2.0);

  EffectBuffer a, b;
  a.Begin(table);
  b.Begin(table);
  forward.MergeInto(&a);
  backward.MergeInto(&b);
  EXPECT_EQ(a.Get(0, freeze), b.Get(0, freeze));
  EXPECT_EQ(8.0, a.Get(0, freeze));
}

TEST(EffectShard, ClearEmptiesTheLog) {
  Schema s = EffectSchema();
  EnvironmentTable table = SmallTable(s, 1);
  EffectShard shard;
  shard.Accumulate(0, s.Find("dmg"), 4.0);
  EXPECT_EQ(1, shard.num_ops());
  shard.Clear();
  EXPECT_EQ(0, shard.num_ops());
  EffectBuffer buffer;
  buffer.Begin(table);
  shard.ReplayInto(&buffer);
  EXPECT_EQ(0.0, buffer.Get(0, s.Find("dmg")));
}

}  // namespace
}  // namespace exec
}  // namespace sgl
