// Sharded-execution tests: a shards=N run must be bit-identical to the
// single-table engine for every scenario, evaluator mode, thread count,
// and sharing/compiled toggle (ROADMAP item 3). Also covers the pieces
// the runtime is assembled from: script reach analysis (ghost-margin
// sizing and the replicated fallback), stripe owner/membership math, the
// stripe-vs-replicated partitioning choice surfaced by Explain(), and
// snapshot/restore replay under shards.
//
// The shard counts swept by the scenario matrix come from the
// SHARD_TEST_SHARDS environment variable ("2,4" by default) so the CI
// shard matrix can pin one count per job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "env/partition_map.h"
#include "env/table.h"
#include "opt/reach.h"
#include "scenario/scenario.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

constexpr int64_t kTicks = 50;

std::vector<int32_t> ShardCounts() {
  const char* env = std::getenv("SHARD_TEST_SHARDS");
  std::string spec = env != nullptr ? env : "2,4";
  std::vector<int32_t> counts;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) counts.push_back(std::stoi(item));
  }
  return counts;
}

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 120;
  params.density = 0.02;
  params.seed = 17;
  return params;
}

std::unique_ptr<Simulation> BuildScenarioOrDie(const std::string& name,
                                               const ScenarioParams& params,
                                               EvaluatorMode mode,
                                               bool compiled, int32_t shards,
                                               int32_t threads) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.compiled = compiled;
  config.shards = shards;
  config.threads = threads;
  auto sim = ScenarioRegistry::Global().BuildSimulation(name, params, config);
  EXPECT_TRUE(sim.ok()) << name << " shards=" << shards << ": "
                        << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

// ------------------------------------------------- scenario bit-exactness

// The tentpole matrix: for every registered scenario, every evaluator
// mode, and compiled on/off, a shards=1/threads=1 baseline runs in
// lockstep with every (shard count x thread count) variant; the tables
// must be identical after every tick and the deterministic metric
// snapshots identical at the end.
class ShardScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardScenarioTest, ShardedRunsAreBitIdentical) {
  const std::string& name = GetParam();
  const ScenarioParams params = SmallParams();
  const std::vector<int32_t> shard_counts = ShardCounts();
  ASSERT_FALSE(shard_counts.empty());

  for (EvaluatorMode mode : {EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
                             EvaluatorMode::kAdaptive}) {
    for (bool compiled : {true, false}) {
      auto baseline = BuildScenarioOrDie(name, params, mode, compiled,
                                         /*shards=*/1, /*threads=*/1);
      ASSERT_NE(baseline, nullptr);

      struct Variant {
        int32_t shards;
        int32_t threads;
        std::unique_ptr<Simulation> sim;
      };
      std::vector<Variant> variants;
      for (int32_t shards : shard_counts) {
        for (int32_t threads : {1, 4}) {
          auto sim = BuildScenarioOrDie(name, params, mode, compiled, shards,
                                        threads);
          ASSERT_NE(sim, nullptr);
          variants.push_back({shards, threads, std::move(sim)});
        }
      }

      for (int64_t tick = 0; tick < kTicks; ++tick) {
        ASSERT_TRUE(baseline->Tick().ok());
        for (Variant& v : variants) {
          Status st = v.sim->Tick();
          ASSERT_TRUE(st.ok())
              << name << " mode=" << EvaluatorModeName(mode)
              << " compiled=" << compiled << " shards=" << v.shards
              << " threads=" << v.threads << " tick " << tick << ": "
              << st.ToString();
          ASSERT_TRUE(v.sim->table().Equals(baseline->table()))
              << name << " mode=" << EvaluatorModeName(mode)
              << " compiled=" << compiled << " shards=" << v.shards
              << " threads=" << v.threads << " diverged at tick " << tick
              << ":\n"
              << v.sim->table().DiffString(baseline->table());
        }
      }

      const std::string baseline_metrics =
          baseline->MetricsJson(/*deterministic_only=*/true);
      for (Variant& v : variants) {
        EXPECT_EQ(v.sim->MetricsJson(/*deterministic_only=*/true),
                  baseline_metrics)
            << name << " mode=" << EvaluatorModeName(mode)
            << " compiled=" << compiled << " shards=" << v.shards
            << " threads=" << v.threads
            << ": deterministic metrics diverged from shards=1";
        EXPECT_TRUE(ScenarioRegistry::Global()
                        .CheckInvariants(name, params, *v.sim)
                        .ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ShardScenarioTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().List()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ------------------------------------------------------- reach analysis

// A fully bounded script: one box aggregate and one box AOE action, both
// radius 5, plus a self-targeted move. Stripe partitioning applies.
const char* kHerdScript = R"SGL(
  const R = 5;

  aggregate Neighbors(u) {
    select count(*) from E e
    where e.posx >= u.posx - R and e.posx <= u.posx + R
      and e.posy >= u.posy - R and e.posy <= u.posy + R;
  }

  action Rally(u) {
    update e
    where e.posx >= u.posx - R and e.posx <= u.posx + R
      and e.posy >= u.posy - R and e.posy <= u.posy + R
    set morale += 1;
  }

  action Drift(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    if Neighbors(u) >= 4 then perform Rally(u);
    perform Drift(u, random(1) mod 3 - 1, random(2) mod 3 - 1);
  }
)SGL";

Schema HerdSchema() {
  Schema s;
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("morale", CombineType::kSum);
  (void)s.AddAttribute("movex", CombineType::kSum);
  (void)s.AddAttribute("movey", CombineType::kSum);
  return s;
}

Script CompileOrDie(const std::string& source, const Schema& schema) {
  auto script = CompileScript(source, schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  return std::move(*script);
}

TEST(ScriptReachTest, BoundedBoxesYieldTheMaxRadius) {
  Script script = CompileOrDie(kHerdScript, HerdSchema());
  ScriptReach reach = ComputeScriptReach(script);
  EXPECT_TRUE(reach.supported);
  EXPECT_TRUE(reach.bounded) << reach.note;
  EXPECT_DOUBLE_EQ(reach.radius, 5.0);
  EXPECT_NE(reach.note.find("bounded"), std::string::npos) << reach.note;
}

TEST(ScriptReachTest, NearestNeighbourProbesAreUnbounded) {
  const char* source = R"SGL(
    aggregate Closest(u) {
      select nearest(*) from E e
      where e.key <> u.key;
    }
    action Drift(u, dx) {
      update e where e.key = u.key set movex += dx;
    }
    function main(u) {
      let c = Closest(u);
      if c.found = 1 then perform Drift(u, c.dist2 mod 3 - 1);
    }
  )SGL";
  Script script = CompileOrDie(source, HerdSchema());
  ScriptReach reach = ComputeScriptReach(script);
  EXPECT_TRUE(reach.supported);
  EXPECT_FALSE(reach.bounded);
  EXPECT_NE(reach.note.find("nearest"), std::string::npos) << reach.note;
}

TEST(ScriptReachTest, GlobalAggregatesAreUnbounded) {
  const char* source = R"SGL(
    aggregate Crowd(u) {
      select count(*) from E e;
    }
    action Drift(u, dx) {
      update e where e.key = u.key set movex += dx;
    }
    function main(u) {
      if Crowd(u) > 0 then perform Drift(u, 1);
    }
  )SGL";
  Script script = CompileOrDie(source, HerdSchema());
  ScriptReach reach = ComputeScriptReach(script);
  EXPECT_TRUE(reach.supported);
  EXPECT_FALSE(reach.bounded);
}

TEST(ScriptReachTest, DirectKeyUpdatesAimedAtOthersAreUnbounded) {
  const char* source = R"SGL(
    const R = 4;
    aggregate Near(u) {
      select count(*) from E e
      where e.posx >= u.posx - R and e.posx <= u.posx + R;
    }
    action Poke(u, t) {
      update e where e.key = t set morale += 1;
    }
    function main(u) {
      if Near(u) > 0 then perform Poke(u, u.key + 1);
    }
  )SGL";
  Script script = CompileOrDie(source, HerdSchema());
  ScriptReach reach = ComputeScriptReach(script);
  EXPECT_TRUE(reach.supported);
  EXPECT_FALSE(reach.bounded);
  EXPECT_NE(reach.note.find("direct-key"), std::string::npos) << reach.note;
}

// ------------------------------------------------------ stripe geometry

TEST(StripeMathTest, OwnerSplitsTheWorldIntoEqualStripes) {
  // World width 64, 4 shards: stripes of 16.
  EXPECT_EQ(StripeOwner(0.0, 64.0, 4), 0);
  EXPECT_EQ(StripeOwner(15.9, 64.0, 4), 0);
  EXPECT_EQ(StripeOwner(16.0, 64.0, 4), 1);
  EXPECT_EQ(StripeOwner(47.0, 64.0, 4), 2);
  EXPECT_EQ(StripeOwner(63.9, 64.0, 4), 3);
  // Out-of-range positions clamp to the edge stripes.
  EXPECT_EQ(StripeOwner(-3.0, 64.0, 4), 0);
  EXPECT_EQ(StripeOwner(64.0, 64.0, 4), 3);
  EXPECT_EQ(StripeOwner(900.0, 64.0, 4), 3);
}

TEST(StripeMathTest, MembershipCoversGhostMargins) {
  // Stripe extents with margin 5: stripe w covers [16w - 5, 16(w+1) + 5].
  // posx=14 is owned by stripe 0 and ghosted into stripe 1 ([11, 37]).
  EXPECT_EQ(StripeMembership(14.0, 64.0, 4, 5.0), (1u << 0) | (1u << 1));
  // posx=33 sits in stripe 2 and within margin of stripe 1 only.
  EXPECT_EQ(StripeMembership(33.0, 64.0, 4, 5.0), (1u << 1) | (1u << 2));
  // Mid-stripe positions far from both edges belong to their owner alone.
  EXPECT_EQ(StripeMembership(8.0, 64.0, 4, 5.0), (1u << 0));
  // Zero margin degenerates to the owner bit away from stripe edges;
  // positions exactly on an edge ghost into both closed extents.
  EXPECT_EQ(StripeMembership(17.0, 64.0, 4, 0.0), (1u << 1));
  EXPECT_EQ(StripeMembership(16.0, 64.0, 4, 0.0), (1u << 0) | (1u << 1));
}

// ------------------------------------------------- partitioning choices

EnvironmentTable HerdWorld(int32_t units) {
  EnvironmentTable table(HerdSchema());
  // Deterministic scatter over the 64x64 grid.
  for (int32_t i = 0; i < units; ++i) {
    const double x = (i * 37 + 11) % 64;
    const double y = (i * 53 + 29) % 64;
    EXPECT_TRUE(table.AddRow({x, y, 0.0, 0.0, 0.0}).ok());
  }
  return table;
}

std::unique_ptr<Simulation> BuildHerdOrDie(SimulationConfig config) {
  config.grid_width = 64;
  config.grid_height = 64;
  auto sim = SimulationBuilder()
                 .SetTable(HerdWorld(96))
                 .SetConfig(config)
                 .SetName("herd")
                 .AddScript("herd", CompileOrDie(kHerdScript, HerdSchema()))
                 .Build();
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

TEST(ShardPartitioningTest, BoundedScriptsGetSpatialStripes) {
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.shards = 2;
  auto sim = BuildHerdOrDie(config);
  ASSERT_NE(sim, nullptr);
  const std::string plan = sim->Explain();
  EXPECT_NE(plan.find("spatial stripes"), std::string::npos) << plan;
  EXPECT_NE(plan.find("shards: 2"), std::string::npos) << plan;
}

TEST(ShardPartitioningTest, AdaptiveModeAlwaysReplicates) {
  // Replication keeps every worker-local table identical to the global
  // one, so adaptive cost decisions (and probe tallies) cannot drift.
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kAdaptive;
  config.shards = 2;
  auto sim = BuildHerdOrDie(config);
  ASSERT_NE(sim, nullptr);
  EXPECT_NE(sim->Explain().find("replicated"), std::string::npos)
      << sim->Explain();
}

TEST(ShardPartitioningTest, UnboundedScenarioFallsBackToReplicated) {
  // predator_prey hunts via nearest-neighbour probes: no finite radius.
  auto sim = BuildScenarioOrDie("predator_prey", SmallParams(),
                                EvaluatorMode::kIndexed, /*compiled=*/true,
                                /*shards=*/2, /*threads=*/1);
  ASSERT_NE(sim, nullptr);
  EXPECT_NE(sim->Explain().find("replicated"), std::string::npos)
      << sim->Explain();
}

TEST(ShardPartitioningTest, ShardCountIsValidated) {
  for (int32_t bad : {0, -2, 65}) {
    SimulationConfig config;
    config.shards = bad;
    auto sim = SimulationBuilder()
                   .SetTable(HerdWorld(8))
                   .SetConfig(config)
                   .AddScript("herd", CompileOrDie(kHerdScript, HerdSchema()))
                   .Build();
    ASSERT_FALSE(sim.ok()) << "shards=" << bad << " was accepted";
    EXPECT_NE(sim.status().ToString().find("shards"), std::string::npos);
  }
}

// ------------------------------------------- stripe-mode bit-exactness

// The scenario library's bounded workloads exercise stripes through the
// matrix above only when their reach is bounded; this custom world pins
// the stripe path explicitly (both naive and indexed, sharing on/off).
TEST(ShardStripeTest, StripedRunsMatchTheSingleTableEngine) {
  for (EvaluatorMode mode :
       {EvaluatorMode::kNaive, EvaluatorMode::kIndexed}) {
    for (bool sharing : {true, false}) {
      SimulationConfig config;
      config.eval_mode = mode;
      config.sharing = sharing;
      auto baseline = BuildHerdOrDie(config);
      ASSERT_NE(baseline, nullptr);

      config.shards = 3;
      config.threads = 4;
      auto sharded = BuildHerdOrDie(config);
      ASSERT_NE(sharded, nullptr);
      EXPECT_NE(sharded->Explain().find("spatial stripes"),
                std::string::npos);

      for (int64_t tick = 0; tick < kTicks; ++tick) {
        ASSERT_TRUE(baseline->Tick().ok());
        ASSERT_TRUE(sharded->Tick().ok());
        ASSERT_TRUE(sharded->table().Equals(baseline->table()))
            << "mode=" << EvaluatorModeName(mode) << " sharing=" << sharing
            << " diverged at tick " << tick << ":\n"
            << sharded->table().DiffString(baseline->table());
      }
    }
  }
}

// --------------------------------------------------- snapshot / restore

TEST(ShardSnapshotTest, RestoreReplaysDeterministicallyUnderShards) {
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.shards = 4;
  config.threads = 2;
  auto sim = BuildHerdOrDie(config);
  ASSERT_NE(sim, nullptr);

  ASSERT_TRUE(sim->Run(20).ok());
  const std::string dir = ::testing::TempDir() + "/shard_ckpt";
  ASSERT_TRUE(sim->Checkpoint(dir).ok());

  ASSERT_TRUE(sim->Run(15).ok());
  EnvironmentTable first_run = sim->table();
  const int64_t end_tick = sim->tick_count();

  ASSERT_TRUE(sim->RestoreFrom(dir).ok());
  EXPECT_EQ(sim->tick_count(), 20);
  ASSERT_TRUE(sim->Run(15).ok());
  EXPECT_EQ(sim->tick_count(), end_tick);
  EXPECT_TRUE(sim->table().Equals(first_run))
      << sim->table().DiffString(first_run);
}

}  // namespace
}  // namespace sgl
