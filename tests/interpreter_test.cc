// Reference-interpreter tests: the denotational semantics of Section 4.3
// evaluated against hand-computed worlds.
#include <gtest/gtest.h>

#include "env/effect_buffer.h"
#include "sgl/analyzer.h"
#include "sgl/builtins.h"
#include "sgl/interpreter.h"

namespace sgl {
namespace {

Schema TestSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("health", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movey", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("inaura", CombineType::kMax).ok());
  EXPECT_TRUE(s.AddAttribute("setspeed", CombineType::kSet).ok());
  return s;
}

// World: 2 players; p0 units at (0,0),(2,0); p1 units at (1,1),(10,10).
// Values: (player, posx, posy, health, effects...).
EnvironmentTable TestWorld(const Schema& s) {
  EnvironmentTable t(s);
  EXPECT_TRUE(t.AddRow({0, 0, 0, 100, 0, 0, 0, 0, 0}).ok());   // key 0
  EXPECT_TRUE(t.AddRow({0, 2, 0, 50, 0, 0, 0, 0, 0}).ok());    // key 1
  EXPECT_TRUE(t.AddRow({1, 1, 1, 80, 0, 0, 0, 0, 0}).ok());    // key 2
  EXPECT_TRUE(t.AddRow({1, 10, 10, 30, 0, 0, 0, 0, 0}).ok());  // key 3
  return t;
}

struct Harness {
  Schema schema = TestSchema();
  EnvironmentTable table;
  Script script;
  std::unique_ptr<Interpreter> interp;
  EffectBuffer buffer;
  TickRandom rnd{12345, 0};

  explicit Harness(const char* src) : table(TestWorld(schema)) {
    auto compiled = CompileScript(src, schema);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    script = compiled.MoveValue();
    interp = std::make_unique<Interpreter>(script);
    buffer.Begin(table);
  }

  Status Run() { return interp->Tick(table, rnd, &buffer); }
  double Effect(int64_t key, const char* attr) {
    return buffer.Get(table.RowOf(key), schema.Find(attr));
  }
};

TEST(Interpreter, CountAggregateAndConditional) {
  // Units with at least 2 enemies within distance 3 damage themselves by 1.
  Harness h(R"(
    aggregate Enemies(u, r) {
      select count(*) from E e
      where e.player <> u.player
        and e.posx >= u.posx - r and e.posx <= u.posx + r
        and e.posy >= u.posy - r and e.posy <= u.posy + r;
    }
    action Mark(u) { update e where e.key = u.key set damage += 1; }
    function main(u) {
      let c = Enemies(u, 3);
      if c >= 1 then perform Mark(u);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  // key0 at (0,0): enemy at (1,1) in range -> marked.
  EXPECT_EQ(1.0, h.Effect(0, "damage"));
  EXPECT_EQ(1.0, h.Effect(1, "damage"));
  EXPECT_EQ(1.0, h.Effect(2, "damage"));  // sees both p0 units
  EXPECT_EQ(0.0, h.Effect(3, "damage"));  // isolated at (10,10)
}

TEST(Interpreter, SumAvgStddevAggregates) {
  Harness h(R"(
    aggregate Stats(u) {
      select sum(e.health) as total, avg(e.health) as mean,
             stddev(e.health) as sd, count(*) as n
      from E e where e.player = u.player;
    }
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) {
      let s = Stats(u);
      if u.key = 0 then perform Store(u, s.total);
      if u.key = 1 then perform Store(u, s.mean);
      if u.key = 2 then perform Store(u, s.n);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(150.0, h.Effect(0, "damage"));  // 100 + 50
  EXPECT_EQ(75.0, h.Effect(1, "damage"));   // mean of p0
  EXPECT_EQ(2.0, h.Effect(2, "damage"));    // two p1 units
}

TEST(Interpreter, StddevMatchesClosedForm) {
  Harness h(R"(
    aggregate SD(u) { select stddev(e.health) as sd from E e; }
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) { if u.key = 0 then perform Store(u, SD(u)); }
  )");
  ASSERT_TRUE(h.Run().ok());
  // healths {100, 50, 80, 30}: mean 65, var = (35^2+15^2+15^2+35^2)/4.
  double var = (1225.0 + 225 + 225 + 1225) / 4.0;
  EXPECT_NEAR(std::sqrt(var), h.Effect(0, "damage"), 1e-12);
}

TEST(Interpreter, NearestAggregateReturnsRow) {
  Harness h(R"(
    aggregate NearestEnemy(u) {
      select nearest(*) from E e where e.player <> u.player;
    }
    action Hit(u, k) { update e where e.key = k set damage += 7; }
    function main(u) {
      let t = NearestEnemy(u);
      if t.found = 1 then perform Hit(u, t.key);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  // key0 (0,0) and key1 (2,0) both nearest-enemy key2 (1,1);
  // key2 (1,1) nearest p0 unit is key0 (dist2=2) vs key1 (dist2=2): tie ->
  // smaller key wins -> key0; key3 nearest is key1? (10,10)->(0,0)=200,
  // ->(2,0)=164 -> key1.
  EXPECT_EQ(7.0, h.Effect(0, "damage"));   // hit by key2
  EXPECT_EQ(7.0, h.Effect(1, "damage"));   // hit by key3
  EXPECT_EQ(14.0, h.Effect(2, "damage"));  // hit by key0 and key1
  EXPECT_EQ(0.0, h.Effect(3, "damage"));
}

TEST(Interpreter, ArgminRowExposesAttributes) {
  Harness h(R"(
    aggregate Weakest(u) {
      select argmin(e.health) from E e where e.player <> u.player;
    }
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) {
      let w = Weakest(u);
      if w.found = 1 then perform Store(u, w.health);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(30.0, h.Effect(0, "damage"));  // weakest enemy of p0 is key3
  EXPECT_EQ(50.0, h.Effect(2, "damage"));  // weakest enemy of p1 is key1
}

TEST(Interpreter, CentroidVectorArithmetic) {
  Harness h(R"(
    aggregate Centroid(u) {
      select avg(e.posx) as x, avg(e.posy) as y from E e
      where e.player <> u.player;
    }
    action Move(u, dx, dy) {
      update e where e.key = u.key set movex += dx, movey += dy;
    }
    function main(u) {
      let away = (u.posx, u.posy) - Centroid(u);
      if u.key = 0 then perform Move(u, away.x, away.y);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  // Enemy centroid of p0: ((1+10)/2, (1+10)/2) = (5.5, 5.5); away from
  // (0,0) is (-5.5, -5.5).
  EXPECT_DOUBLE_EQ(-5.5, h.Effect(0, "movex"));
  EXPECT_DOUBLE_EQ(-5.5, h.Effect(0, "movey"));
}

TEST(Interpreter, MaxEffectIsNonstackable) {
  // Two healers cast auras 5 and 9 on everyone; max wins (Section 2.2's
  // healing-ward rule).
  Harness h(R"(
    action Aura(u, amount) { update e set inaura max= amount; }
    function main(u) {
      if u.key = 0 then perform Aura(u, 5);
      if u.key = 1 then perform Aura(u, 9);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  for (int64_t k : {0, 1, 2, 3}) {
    EXPECT_EQ(9.0, h.Effect(k, "inaura")) << "key " << k;
  }
}

TEST(Interpreter, SumEffectsStack) {
  // Everyone hits unit 2.
  Harness h(R"(
    action Hit(u) { update e where e.key = 2 set damage += 3; }
    function main(u) { perform Hit(u); }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(12.0, h.Effect(2, "damage"));  // 4 units x 3
}

TEST(Interpreter, SetEffectHighestPriorityWins) {
  Harness h(R"(
    action Slow(u) { update e where e.key = 2 set setspeed = 5 priority 1; }
    action Freeze(u) { update e where e.key = 2 set setspeed = 0 priority 9; }
    function main(u) {
      if u.key = 0 then perform Slow(u);
      if u.key = 1 then perform Freeze(u);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(0.0, h.Effect(2, "setspeed"));
  EXPECT_TRUE(h.buffer.HasSet(h.table.RowOf(2), h.schema.Find("setspeed")));
  EXPECT_FALSE(h.buffer.HasSet(h.table.RowOf(0), h.schema.Find("setspeed")));
}

TEST(Interpreter, UserFunctionCallAndParams) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function helper(me, bonus) {
      perform Store(me, me.health + bonus);
    }
    function main(u) {
      if u.key = 0 then perform helper(u, 11);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(111.0, h.Effect(0, "damage"));
}

TEST(Interpreter, RandomIsDeterministicWithinTick) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) {
      let a = random(1) mod 100;
      let b = random(1) mod 100;
      perform Store(u, a - b);  # always 0: same draw
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  for (int64_t k : {0, 1, 2, 3}) EXPECT_EQ(0.0, h.Effect(k, "damage"));
}

TEST(Interpreter, RandomVariesAcrossUnits) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) { perform Store(u, random(7) mod 1000); }
  )");
  ASSERT_TRUE(h.Run().ok());
  // Not all four draws should coincide (astronomically unlikely).
  double v0 = h.Effect(0, "damage");
  bool all_same = true;
  for (int64_t k : {1, 2, 3}) {
    all_same = all_same && h.Effect(k, "damage") == v0;
  }
  EXPECT_FALSE(all_same);
}

TEST(Interpreter, BuiltinFunctions) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) {
      if u.key = 0 then perform Store(u, abs(0 - 4) + min(2, 5) + max(2, 5)
                                         + sqrt(16) + floor(2.7) + ceil(2.2)
                                         + clamp(10, 0, 6));
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(4 + 2 + 5 + 4 + 2 + 3 + 6, h.Effect(0, "damage"));
}

TEST(Interpreter, ActionRandomKeyedByAffectedRow) {
  // Figure 5's FireAt uses Random(e, 1): two different performers hitting
  // the same target must see the same draw for that target.
  Harness h(R"(
    action Hit(u) { update e where e.key = 3 set damage += random(1) mod 2; }
    function main(u) { if u.key <= 1 then perform Hit(u); }
  )");
  ASSERT_TRUE(h.Run().ok());
  double d = h.Effect(3, "damage");
  EXPECT_TRUE(d == 0.0 || d == 2.0) << d;  // 2x the same draw, never 1
}

TEST(Interpreter, EmptyAggregateDefaults) {
  Harness h(R"(
    aggregate NoneSuch(u) {
      select count(*) as n, sum(e.health) as s, avg(e.health) as a
      from E e where e.player = 99;
    }
    aggregate NoRow(u) {
      select argmin(e.health) from E e where e.player = 99;
    }
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) {
      let s = NoneSuch(u);
      let w = NoRow(u);
      if u.key = 0 then perform Store(u, s.n + s.s + s.a + w.found);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(0.0, h.Effect(0, "damage"));
}

TEST(Interpreter, DivisionByZeroIsExecutionError) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) { perform Store(u, 1 / (u.posx - u.posx)); }
  )");
  Status st = h.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kExecutionError, st.code());
}

TEST(Interpreter, ModArithmetic) {
  Harness h(R"(
    action Store(u, v) { update e where e.key = u.key set damage += v; }
    function main(u) { if u.key = 0 then perform Store(u, 17 mod 5); }
  )");
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(2.0, h.Effect(0, "damage"));
}

TEST(Interpreter, SkeletonFearScenario) {
  // The paper's running example: units flee when outnumbered (morale).
  Harness h(R"(
    aggregate Skeletons(u, r) {
      select count(*) from E e
      where e.player <> u.player
        and e.posx >= u.posx - r and e.posx <= u.posx + r
        and e.posy >= u.posy - r and e.posy <= u.posy + r;
    }
    aggregate EnemyCentroid(u, r) {
      select avg(e.posx) as x, avg(e.posy) as y from E e
      where e.player <> u.player
        and e.posx >= u.posx - r and e.posx <= u.posx + r
        and e.posy >= u.posy - r and e.posy <= u.posy + r;
    }
    action Move(u, dx, dy) {
      update e where e.key = u.key set movex += dx, movey += dy;
    }
    function main(u) {
      let c = Skeletons(u, 20);
      let away = (u.posx, u.posy) - EnemyCentroid(u, 20);
      if c > 1 then perform Move(u, away.x, away.y);
    }
  )");
  ASSERT_TRUE(h.Run().ok());
  // p0 units see 2 enemies within 20 -> flee; p1 units see 2 enemies too.
  // key0 at (0,0), enemy centroid (5.5,5.5): away = (-5.5,-5.5).
  EXPECT_DOUBLE_EQ(-5.5, h.Effect(0, "movex"));
  // key3 at (10,10), enemy centroid (1,0): away=(9,10).
  EXPECT_DOUBLE_EQ(9.0, h.Effect(3, "movex"));
  EXPECT_DOUBLE_EQ(10.0, h.Effect(3, "movey"));
}

}  // namespace
}  // namespace sgl
