// The non-negotiable contract of the src/exec/ subsystem, enforced here:
// for any seed, script set, evaluator mode and thread count, every tick is
// bit-identical to single-threaded execution. The stress world exercises
// the order-sensitive corners on purpose: kSum effects (fold-order
// sensitive in IEEE arithmetic), kSet effects with deliberate priority
// ties (tie-broken by larger value), kMin area effects batched through the
// deferred index, direct-key updates, scripts calling Random, and
// end-of-tick resurrection mechanics.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "engine/simulation.h"
#include "game/battle.h"
#include "sgl/analyzer.h"
#include "util/rng.h"

namespace sgl {
namespace {

constexpr int64_t kGrid = 40;

// Two factions of spellcasters and brawlers. Every caster freezes its
// nearest foe with the SAME priority (1), so targets picked by several
// casters see genuine priority ties resolved by the larger mana value;
// everyone zaps with Random-rolled damage (kSum) and casters lay a
// min-combined sluggishness aura (deferred area-of-effect batch).
const char* kStormScript = R"SGL(
  const SIGHT = 18;
  const AURA = 5;

  aggregate NearestFoe(u) {
    select nearest(*) from E e
    where e.faction <> u.faction
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  action Zap(u, target, dmg) {
    update e where e.key = target set damage += dmg;
  }
  action Freeze(u, target) {
    update e where e.key = target set freeze = u.mana priority 1;
  }
  action Sluggish(u) {
    update e where e.faction <> u.faction
      and e.posx >= u.posx - AURA and e.posx <= u.posx + AURA
      and e.posy >= u.posy - AURA and e.posy <= u.posy + AURA
      set slow min= 2;
  }
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    let foe = NearestFoe(u);
    if foe.found = 1 then {
      perform Zap(u, foe.key, 1 + random(1) mod 4);
      if u.mana > 0 then {
        perform Freeze(u, foe.key);
        perform Sluggish(u);
      }
      perform Move(u, foe.posx - u.posx, foe.posy - u.posy);
    }
    else
      perform Move(u, random(2) mod 5 - 2, random(3) mod 5 - 2);
  }
)SGL";

Schema StormSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("faction", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("mana", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("health", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("maxhealth", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("slow", CombineType::kMin).ok());
  EXPECT_TRUE(s.AddAttribute("freeze", CombineType::kSet).ok());
  EXPECT_TRUE(s.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movey", CombineType::kSum).ok());
  return s;
}

EnvironmentTable StormTable(int32_t per_faction, uint64_t seed) {
  Schema schema = StormSchema();
  EnvironmentTable table(schema);
  Xoshiro256 rng(seed);
  std::set<std::pair<int64_t, int64_t>> used;
  auto place = [&]() {
    while (true) {
      int64_t x = rng.NextBounded(kGrid), y = rng.NextBounded(kGrid);
      if (used.insert({x, y}).second) return std::make_pair(x, y);
    }
  };
  for (int32_t f = 0; f < 2; ++f) {
    for (int32_t i = 0; i < per_faction; ++i) {
      auto [x, y] = place();
      // Half of each faction are casters; mana in {1..4} so tied-priority
      // freezes carry different values (the tie-break under test).
      double mana = i % 2 == 0 ? double(1 + rng.NextBounded(4)) : 0.0;
      EXPECT_TRUE(table
                      .AddRow({double(f), double(x), double(y), mana, 30, 30,
                               0, 0, 0, 0, 0})
                      .ok());
    }
  }
  return table;
}

Result<std::unique_ptr<Simulation>> MakeStorm(EvaluatorMode mode,
                                              uint64_t seed,
                                              int32_t threads) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.seed = seed;
  config.threads = threads;
  config.grid_width = kGrid;
  config.grid_height = kGrid;
  config.step_per_tick = 2.0;

  SGL_ASSIGN_OR_RETURN(Script script,
                       CompileScript(kStormScript, StormSchema()));
  SimulationBuilder builder;
  builder.SetTable(StormTable(30, seed))
      .SetConfig(config)
      .AddScript("storm", std::move(script));
  builder.OnApplyEffects([](EnvironmentTable* table, const EffectBuffer& buf,
                            const TickRandom&) {
    const Schema& s = table->schema();
    AttrId health = s.Find("health"), damage = s.Find("damage");
    AttrId freeze = s.Find("freeze"), movex = s.Find("movex");
    AttrId movey = s.Find("movey");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      table->Set(r, health, table->Get(r, health) - table->Get(r, damage));
      if (buf.HasSet(r, freeze)) {
        // A frozen unit's movement intent is overridden by the winning
        // freeze value (deliberately consumes the tie-broken result).
        double v = table->Get(r, freeze);
        table->Set(r, movex, v);
        table->Set(r, movey, -v);
      }
    }
    return Status::OK();
  });
  builder.OnEndTick([](EnvironmentTable* table, const TickRandom& rnd) {
    const Schema& s = table->schema();
    AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
    AttrId posx = s.Find("posx"), posy = s.Find("posy");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, health) > 0.0) continue;
      int64_t key = table->KeyAt(r);
      table->Set(r, posx, double(rnd.DrawBounded(key, 901, kGrid)));
      table->Set(r, posy, double(rnd.DrawBounded(key, 902, kGrid)));
      table->Set(r, health, table->Get(r, maxh));
    }
    return Status::OK();
  });
  return builder.Build();
}

/// Advance both simulations in lockstep, demanding bit-equal tables after
/// every tick (divergence diagnostics point at the first bad tick).
void ExpectLockstepEqual(Simulation* reference, Simulation* candidate,
                         int64_t ticks, const std::string& label) {
  for (int64_t tick = 0; tick < ticks; ++tick) {
    ASSERT_TRUE(reference->Tick().ok()) << label << " tick " << tick;
    ASSERT_TRUE(candidate->Tick().ok()) << label << " tick " << tick;
    ASSERT_TRUE(reference->table().Equals(candidate->table()))
        << label << " diverged at tick " << tick << ": "
        << reference->table().DiffString(candidate->table());
  }
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

// The acceptance-criteria matrix: Threads(1) vs Threads(N) for
// N in {2, 4, 8}, both evaluators, >= 100 ticks, multiple seeds.
TEST_P(ParallelDeterminism, StormBitExactAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  for (EvaluatorMode mode : {EvaluatorMode::kNaive, EvaluatorMode::kIndexed}) {
    for (int32_t threads : {2, 4, 8}) {
      auto reference = MakeStorm(mode, seed, 1);
      auto parallel = MakeStorm(mode, seed, threads);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      std::string label =
          (mode == EvaluatorMode::kNaive ? "naive" : "indexed");
      label += " x" + std::to_string(threads);
      ExpectLockstepEqual(reference->get(), parallel->get(), 100, label);
    }
  }
}

// Cross-evaluator, cross-thread-count: sequential naive vs parallel
// indexed — the strongest statement of "the optimizations change nothing".
TEST_P(ParallelDeterminism, NaiveSequentialVsIndexedParallelBitExact) {
  const uint64_t seed = GetParam();
  auto naive = MakeStorm(EvaluatorMode::kNaive, seed, 1);
  auto parallel_indexed = MakeStorm(EvaluatorMode::kIndexed, seed, 4);
  ASSERT_TRUE(naive.ok() && parallel_indexed.ok());
  ExpectLockstepEqual(naive->get(), parallel_indexed->get(), 100,
                      "naive-1t vs indexed-4t");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Values(11, 23, 47));

// The full battle workload (ten aggregates per unit, direct-key attacks,
// deferred healing auras, deaths + resurrection) through the parallel
// pipeline: bit-exact vs single-threaded in both evaluator modes.
TEST(ParallelBattle, BitExactAcrossThreadCounts) {
  ScenarioConfig scenario;
  scenario.num_units = 150;
  scenario.density = 0.03;
  scenario.seed = 5;
  for (int32_t threads : {2, 4}) {
    SimulationConfig reference_config;
    reference_config.threads = 1;
    SimulationConfig parallel_config;
    parallel_config.threads = threads;
    auto reference = MakeBattleSimWithConfig(scenario, reference_config);
    auto parallel = MakeBattleSimWithConfig(scenario, parallel_config);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    for (int64_t tick = 0; tick < 40; ++tick) {
      ASSERT_TRUE(reference->sim->Tick().ok());
      ASSERT_TRUE(parallel->sim->Tick().ok());
      ASSERT_TRUE(reference->sim->table().Equals(parallel->sim->table()))
          << "threads=" << threads << " diverged at tick " << tick << ": "
          << reference->sim->table().DiffString(parallel->sim->table());
    }
    // The parallel run actually fanned out and reported per-worker stats.
    const PhaseStats* decision =
        parallel->sim->stats().Find(phase_names::kDecisionAction);
    ASSERT_NE(nullptr, decision);
    EXPECT_GT(decision->workers(), 1) << "threads=" << threads;
    EXPECT_GT(decision->max_worker_ns(), 0) << "threads=" << threads;
  }
}

// Checkpoint/RestoreFrom replays identically under a multi-threaded
// pipeline.
TEST(ParallelBattle, SnapshotReplayIsDeterministicWithThreads) {
  auto sim = MakeStorm(EvaluatorMode::kIndexed, 99, 4);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE((*sim)->Run(20).ok());
  const std::string dir = ::testing::TempDir() + "/parallel_ckpt";
  ASSERT_TRUE((*sim)->Checkpoint(dir).ok());
  ASSERT_TRUE((*sim)->Run(15).ok());
  EnvironmentTable first = (*sim)->table().Clone();
  ASSERT_TRUE((*sim)->RestoreFrom(dir).ok());
  ASSERT_TRUE((*sim)->Run(15).ok());
  EXPECT_TRUE((*sim)->table().Equals(first))
      << (*sim)->table().DiffString(first);
}

TEST(SimulationBuilderThreads, AutoDetectResolvesToHardware) {
  auto sim = MakeStorm(EvaluatorMode::kIndexed, 3, /*threads=*/0);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_GE((*sim)->threads(), 1);
  EXPECT_EQ((*sim)->config().threads, (*sim)->threads());
  ASSERT_TRUE((*sim)->Run(3).ok());
}

TEST(SimulationBuilderThreads, NegativeThreadCountRejected) {
  auto sim = MakeStorm(EvaluatorMode::kIndexed, 3, /*threads=*/-2);
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, sim.status().code());
}

TEST(SimulationBuilderThreads, ExplainSurfacesThreadCount) {
  auto sim = MakeStorm(EvaluatorMode::kIndexed, 3, 4);
  ASSERT_TRUE(sim.ok());
  std::string explain = (*sim)->Explain();
  EXPECT_NE(std::string::npos, explain.find("execution: 4 threads"));
  auto single = MakeStorm(EvaluatorMode::kIndexed, 3, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_NE(std::string::npos,
            (*single)->Explain().find("execution: 1 thread"));
}

}  // namespace
}  // namespace sgl
