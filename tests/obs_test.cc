// Observability layer tests: registry merge determinism across thread
// counts, histogram bucket edges, tracer span nesting and drop bounding,
// Perfetto-JSON well-formedness, and the flight recorder's ring and
// failure dumps.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/scenario.h"

namespace sgl {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------------- registry

TEST(Metrics, CounterMergesShards) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("test.counter");
  reg.SetNumShards(4);
  c->Add(1, 0);
  c->Add(10, 1);
  c->Add(100, 2);
  c->Add(1000, 3);
  EXPECT_EQ(1111, c->value());
  // Out-of-range shards fold into slot 0 instead of writing past the
  // array (the unsized-standalone fallback).
  c->Add(5, 99);
  EXPECT_EQ(1116, c->value());
}

TEST(Metrics, ReGetReturnsSameHandleAndMergesFlags) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x", obs::kMetricNone);
  obs::Counter* b = reg.GetCounter("x", obs::kMetricExecDependent);
  EXPECT_EQ(a, b);
  EXPECT_EQ(obs::kMetricExecDependent, a->flags());
}

TEST(Metrics, HistogramBucketEdges) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h", {10, 100});
  reg.SetNumShards(2);
  h->Record(5, 0);     // <= 10
  h->Record(10, 1);    // <= 10 (edge is inclusive)
  h->Record(11, 0);    // <= 100
  h->Record(100, 1);   // <= 100
  h->Record(1000, 0);  // unbounded tail
  EXPECT_EQ(5, h->count());
  EXPECT_EQ(5 + 10 + 11 + 100 + 1000, h->sum());
  EXPECT_EQ(2, h->bucket_count(0));
  EXPECT_EQ(2, h->bucket_count(1));
  EXPECT_EQ(1, h->bucket_count(2));
}

TEST(Metrics, DeterministicSnapshotDropsExecDependent) {
  obs::MetricsRegistry reg;
  reg.GetCounter("stable")->Add(7);
  reg.GetCounter("wallclock", obs::kMetricExecDependent)->Add(123);
  const std::string all = reg.ToJson(/*deterministic_only=*/false);
  const std::string det = reg.ToJson(/*deterministic_only=*/true);
  EXPECT_NE(all.find("\"wallclock\""), std::string::npos);
  EXPECT_NE(all.find("\"stable\""), std::string::npos);
  EXPECT_EQ(det.find("\"wallclock\""), std::string::npos);
  EXPECT_NE(det.find("\"stable\""), std::string::npos);
}

// --------------------------------------------------------------- tracer

TEST(Trace, SpansNestAndCollectInOrder) {
  obs::Tracer tracer;
  {
    obs::SpanScope outer(&tracer, "outer", 0, 0);
    tracer.Instant("mark", 0, 0, "{\"k\":1}");
    { obs::SpanScope inner(&tracer, "inner", 0, 0); }
  }
  std::vector<obs::TraceEvent> events = tracer.Collect();
  ASSERT_EQ(3u, events.size());
  // ts ascending, longer spans first at equal ts: the outer span leads.
  EXPECT_EQ("outer", events[0].name);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  const obs::TraceEvent* outer = &events[0];
  for (const obs::TraceEvent& e : events) {
    if (e.name == "inner") {
      EXPECT_GE(e.ts_ns, outer->ts_ns);
      EXPECT_LE(e.ts_ns + e.dur_ns, outer->ts_ns + outer->dur_ns);
    }
    if (e.name == "mark") {
      EXPECT_EQ(-1, e.dur_ns);  // instant
      EXPECT_EQ("{\"k\":1}", e.args_json);
    }
  }
}

TEST(Trace, NullTracerIsANoOp) {
  obs::SpanScope span(nullptr, "nothing", 0, 0);
  span.set_args_json("{\"ignored\":true}");
  // Destruction must not emit or crash; nothing observable to assert
  // beyond reaching the end of scope.
}

TEST(Trace, FullShardDropsAndCounts) {
  obs::Tracer tracer(/*max_events_per_shard=*/4);
  for (int i = 0; i < 10; ++i) tracer.Instant("e", 0, 0);
  EXPECT_EQ(4u, tracer.Collect().size());
  EXPECT_EQ(6, tracer.dropped());
}

TEST(Trace, JsonIsChromeTraceShaped) {
  obs::Tracer tracer;
  { obs::SpanScope span(&tracer, "tick", 0, 0); }
  tracer.Instant("vm.bail", 1, 0, "{\"row_lo\":0,\"rows\":8}");
  const std::string json = tracer.ToJson();
  EXPECT_EQ(0u, json.find("{\"traceEvents\":["));
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"row_lo\":0,\"rows\":8}"),
            std::string::npos);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RingKeepsTheLastNTicks) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("events");
  obs::FlightRecorder recorder(&reg, /*capacity=*/3);
  for (int64_t tick = 0; tick < 5; ++tick) {
    c->Add(10);
    recorder.RecordTick(tick, /*ns=*/1000 + tick, /*rows=*/42);
  }
  EXPECT_EQ(3, recorder.size());
  const std::string json = recorder.ToJson("test");
  // Oldest two ticks rolled out of the ring; the delta survives per tick.
  EXPECT_EQ(json.find("\"tick\":0,"), std::string::npos);
  EXPECT_EQ(json.find("\"tick\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"tick\":2,"), std::string::npos);
  EXPECT_NE(json.find("\"tick\":4,"), std::string::npos);
  EXPECT_NE(json.find("\"events\":10"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"test\""), std::string::npos);
}

TEST(FlightRecorder, DumpOnForcedInvariantFailure) {
  // Clone the battle scenario with an invariant that always trips: the
  // registry's CheckInvariants must dump the flight ring on failure.
  auto battle = ScenarioRegistry::Global().Get("battle");
  ASSERT_TRUE(battle.ok());
  ScenarioDef bad = **battle;
  bad.name = "battle_bad_invariant";
  bad.invariant = [](const ScenarioParams&, const Simulation&) {
    return Status::Invalid("forced invariant failure");
  };
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Register(std::move(bad)).ok());

  const std::string dump_path =
      ::testing::TempDir() + "/obs_invariant_flight.json";
  std::remove(dump_path.c_str());
  ScenarioParams params;
  params.units = 60;
  params.seed = 5;
  SimulationConfig config;
  config.artifacts.flight_recorder_ticks = 4;
  config.artifacts.flight_recorder_path = dump_path;
  auto sim =
      registry.BuildSimulation("battle_bad_invariant", params, config);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(6).ok());

  Status st =
      registry.CheckInvariants("battle_bad_invariant", params, **sim);
  EXPECT_FALSE(st.ok());
  const std::string dump = ReadFile(dump_path);
  ASSERT_FALSE(dump.empty()) << "no flight dump at " << dump_path;
  EXPECT_NE(dump.find("invariant failure"), std::string::npos);
  EXPECT_NE(dump.find("\"ticks\":["), std::string::npos);
  EXPECT_NE(dump.find("\"deltas\":{"), std::string::npos);
}

// ------------------------------------------- end-to-end via simulation

/// Run `scenario` for `ticks` and return the deterministic metrics
/// snapshot (counters bit-identical across thread counts by contract).
std::string DeterministicSnapshot(const std::string& scenario,
                                  int32_t threads, int64_t ticks) {
  ScenarioParams params;
  params.units = 150;
  params.seed = 11;
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kAdaptive;
  config.threads = threads;
  auto sim =
      ScenarioRegistry::Global().BuildSimulation(scenario, params, config);
  EXPECT_TRUE(sim.ok()) << scenario << ": " << sim.status().ToString();
  if (!sim.ok()) return "";
  Status st = (*sim)->Run(ticks);
  EXPECT_TRUE(st.ok()) << scenario << ": " << st.ToString();
  return (*sim)->MetricsJson(/*deterministic_only=*/true);
}

TEST(Metrics, SnapshotsBitIdenticalAcrossThreadCounts) {
  for (const std::string& scenario : ScenarioRegistry::Global().List()) {
    const std::string reference = DeterministicSnapshot(scenario, 1, 8);
    ASSERT_FALSE(reference.empty()) << scenario;
    for (int32_t threads : {4, 8}) {
      EXPECT_EQ(reference, DeterministicSnapshot(scenario, threads, 8))
          << scenario << " diverged with " << threads << " threads";
    }
  }
}

TEST(Trace, SimulationEmitsTickPhaseChunkHierarchy) {
  const std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  std::remove(trace_path.c_str());
  ScenarioParams params;
  params.units = 150;
  params.seed = 11;
  SimulationConfig config;
  config.threads = 4;
  config.artifacts.trace_path = trace_path;
  auto sim =
      ScenarioRegistry::Global().BuildSimulation("battle", params, config);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(10).ok());
  ASSERT_NE(nullptr, (*sim)->tracer());
  ASSERT_TRUE((*sim)->WriteTrace(trace_path).ok());

  const std::string json = ReadFile(trace_path);
  EXPECT_EQ(0u, json.find("{\"traceEvents\":["));
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decision-action\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"index-build\""), std::string::npos);
  // Worker spans land on tid 1 + chunk.
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_EQ(0, (*sim)->tracer()->dropped());
}

TEST(Metrics, SnapshotPerTickJsonLines) {
  const std::string metrics_path =
      ::testing::TempDir() + "/obs_metrics.jsonl";
  std::remove(metrics_path.c_str());
  ScenarioParams params;
  params.units = 60;
  params.seed = 3;
  SimulationConfig config;
  config.artifacts.metrics_path = metrics_path;
  auto sim =
      ScenarioRegistry::Global().BuildSimulation("market", params, config);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(5).ok());

  std::ifstream in(metrics_path);
  std::string line;
  int64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(0u, line.find("{\"tick\":"));
    EXPECT_NE(line.find("\"metrics\":{\"counters\":{"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(5, lines);
}

TEST(FlightRecorder, TickErrorDumpsAutomatically) {
  // A phase that fails mid-run: Tick() must dump the ring on its way out.
  class BoomPhase : public TickPhase {
   public:
    BoomPhase() : TickPhase("boom") {}
    Status Run(TickContext* ctx) override {
      if (ctx->tick >= 3) return Status::Internal("synthetic failure");
      return Status::OK();
    }
  };

  const std::string dump_path =
      ::testing::TempDir() + "/obs_tick_error_flight.json";
  std::remove(dump_path.c_str());
  ScenarioParams params;
  params.units = 60;
  params.seed = 5;
  SimulationConfig config;
  config.artifacts.flight_recorder_ticks = 8;
  config.artifacts.flight_recorder_path = dump_path;

  auto def = ScenarioRegistry::Global().Get("battle");
  ASSERT_TRUE(def.ok());
  auto world = (*def)->world(params);
  ASSERT_TRUE(world.ok());
  config.seed = params.seed;
  SimulationBuilder builder;
  builder.SetTable(world.MoveValue())
      .SetConfig(config)
      .Apply([&](SimulationBuilder& b) {
        return (*def)->configure(params, b);
      })
      .AddPhase(std::make_unique<BoomPhase>());
  auto sim = builder.Build();
  ASSERT_TRUE(sim.ok());

  Status st = (*sim)->Run(10);
  EXPECT_FALSE(st.ok());
  const std::string dump = ReadFile(dump_path);
  ASSERT_FALSE(dump.empty()) << "no flight dump at " << dump_path;
  EXPECT_NE(dump.find("failed in phase"), std::string::npos);
  EXPECT_NE(dump.find("synthetic failure"), std::string::npos);
  EXPECT_NE(dump.find("\"ticks\":["), std::string::npos);
}

}  // namespace
}  // namespace sgl
