// Lexer / parser / analyzer tests for the SGL front-end.
#include <gtest/gtest.h>

#include "sgl/analyzer.h"
#include "sgl/lexer.h"
#include "sgl/parser.h"

namespace sgl {
namespace {

Schema TestSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("unittype", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("health", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("cooldown", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("inaura", CombineType::kMax).ok());
  EXPECT_TRUE(s.AddAttribute("setspeed", CombineType::kSet).ok());
  return s;
}

// ------------------------------------------------------------------ Lexer

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto toks = Lex("if x <= 3 and y <> 4 then perform F(u); // comment\n"
                  "let z = a mod 2;");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(TokenKind::kKwIf, kinds[0]);
  EXPECT_EQ(TokenKind::kIdent, kinds[1]);
  EXPECT_EQ(TokenKind::kLessEq, kinds[2]);
  EXPECT_EQ(TokenKind::kNumber, kinds[3]);
  EXPECT_EQ(TokenKind::kKwAnd, kinds[4]);
  EXPECT_EQ(TokenKind::kNotEq, kinds[6]);
  EXPECT_EQ(TokenKind::kKwMod, kinds[kinds.size() - 4]);
  EXPECT_EQ(TokenKind::kEnd, kinds.back());
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto toks = Lex("SELECT Count(*) FROM E e WHERE e.x >= 1;");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(TokenKind::kKwSelect, (*toks)[0].kind);
  EXPECT_EQ(TokenKind::kKwFrom, (*toks)[5].kind);
  EXPECT_EQ(TokenKind::kKwWhere, (*toks)[8].kind);
}

TEST(Lexer, CompoundAssignments) {
  auto toks = Lex("damage += 1, aura max= 2, slow min= 3");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(TokenKind::kPlusAssign, (*toks)[1].kind);
  EXPECT_EQ(TokenKind::kMaxAssign, (*toks)[5].kind);
  EXPECT_EQ(TokenKind::kMinAssign, (*toks)[9].kind);
}

TEST(Lexer, NumbersAndLineTracking) {
  auto toks = Lex("1 2.5 0.125\nx");
  ASSERT_TRUE(toks.ok());
  EXPECT_DOUBLE_EQ(1.0, (*toks)[0].number);
  EXPECT_DOUBLE_EQ(2.5, (*toks)[1].number);
  EXPECT_DOUBLE_EQ(0.125, (*toks)[2].number);
  EXPECT_EQ(2, (*toks)[3].line);
}

TEST(Lexer, RejectsUnknownCharacter) {
  auto toks = Lex("let x = @;");
  ASSERT_FALSE(toks.ok());
  EXPECT_EQ(StatusCode::kParseError, toks.status().code());
}

TEST(Lexer, HashAndSlashComments) {
  auto toks = Lex("# full line\n1 # trailing\n// other style\n2");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(3u, toks->size());  // 1, 2, EOF
  EXPECT_DOUBLE_EQ(1.0, (*toks)[0].number);
  EXPECT_DOUBLE_EQ(2.0, (*toks)[1].number);
}

// ----------------------------------------------------------------- Parser

TEST(Parser, ParsesPaperStyleScript) {
  // Figure 3, adapted to this repo's declaration syntax.
  const char* src = R"(
    aggregate CountEnemiesInRange(u, range) {
      select count(*) from E e
      where e.posx >= u.posx - range and e.posx <= u.posx + range
        and e.posy >= u.posy - range and e.posy <= u.posy + range
        and e.player <> u.player;
    }
    action MoveInDirection(u, x, y) {
      update e where e.key = u.key set movex += x - e.posx;
    }
    function main(u) {
      (let c = CountEnemiesInRange(u, 5))
      if c > 3 then
        perform MoveInDirection(u, u.posx - 1, u.posy);
    }
  )";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(1u, prog->aggregates.size());
  EXPECT_EQ(1u, prog->actions.size());
  EXPECT_EQ(1u, prog->functions.size());
  EXPECT_EQ("e", prog->aggregates[0].row_var);
  EXPECT_EQ(2u, prog->aggregates[0].params.size());
}

TEST(Parser, LetStatementAndPrefixFormEquivalent) {
  const char* stmt_form = "function main(u) { let x = 1; perform F(u, x); }";
  const char* prefix_form = "function main(u) { (let x = 1) perform F(u, x); }";
  auto a = ParseProgram(stmt_form);
  auto b = ParseProgram(prefix_form);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
}

TEST(Parser, IfElseChain) {
  const char* src = R"(
    function main(u) {
      if u.health > 50 then perform A(u);
      else if u.health > 20 then perform B(u);
      else perform C(u);
    }
  )";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Stmt& body = *prog->functions[0].body;
  ASSERT_EQ(1u, body.body.size());
  const Stmt& outer_if = *body.body[0];
  EXPECT_EQ(StmtKind::kIf, outer_if.kind);
  ASSERT_NE(nullptr, outer_if.else_branch);
  EXPECT_EQ(StmtKind::kIf, outer_if.else_branch->kind);
}

TEST(Parser, MultipleSelectItemsWithAliases) {
  const char* src = R"(
    aggregate Centroid(u, range) {
      select avg(e.posx) as x, avg(e.posy) as y from E e
      where e.player <> u.player;
    }
  )";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(2u, prog->aggregates[0].items.size());
  EXPECT_EQ("x", prog->aggregates[0].items[0].alias);
  EXPECT_EQ(AggFunc::kAvg, prog->aggregates[0].items[0].func);
}

TEST(Parser, ActionWithMultipleUpdatesAndSetPriority) {
  const char* src = R"(
    action Freeze(u, target) {
      update e where e.key = target set setspeed = 0 priority 10;
      update e where e.key = u.key set movex += 0;
    }
  )";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(2u, prog->actions[0].updates.size());
  EXPECT_EQ(SetOp::kSetPriority, prog->actions[0].updates[0].sets[0].op);
  ASSERT_NE(nullptr, prog->actions[0].updates[0].sets[0].priority);
}

TEST(Parser, TupleLiteralAndVectorArithmetic) {
  const char* src = R"(
    function main(u) {
      let away = (u.posx, u.posy) - (0, 0);
      perform F(u, away.x, away.y);
    }
  )";
  auto prog = ParseProgram(src);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto prog = ParseProgram("function main(u) {\n  let = 3;\n}");
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(std::string::npos, prog.status().message().find("line 2"));
}

TEST(Parser, RejectsTopLevelGarbage) {
  auto prog = ParseProgram("banana");
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(StatusCode::kParseError, prog.status().code());
}

TEST(Parser, RejectsEmptyAction) {
  auto prog = ParseProgram("action A(u) { }");
  ASSERT_FALSE(prog.ok());
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto prog = ParseProgram("const C = 1 + 2 * 3;");
  ASSERT_TRUE(prog.ok());
  const Expr& e = *prog->consts[0].value;
  ASSERT_EQ(ExprKind::kBinary, e.kind);
  EXPECT_EQ(BinaryOp::kAdd, e.op);
  EXPECT_EQ(BinaryOp::kMul, e.args[1]->op);
}

// --------------------------------------------------------------- Analyzer

TEST(Analyzer, FoldsConstants) {
  const char* src = R"(
    const BASE = 10;
    const DOUBLE = BASE * 2;
    function main(u) { perform Nop(u, DOUBLE); }
    action Nop(u, v) { update e where e.key = u.key set damage += v - v; }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_DOUBLE_EQ(20.0, script->program.consts[1].folded);
}

TEST(Analyzer, RejectsUnknownAttribute) {
  const char* src = R"(
    function main(u) { if u.mana > 3 then perform A(u); }
    action A(u) { update e where e.key = u.key set damage += 1; }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_EQ(StatusCode::kAnalysisError, script.status().code());
  EXPECT_NE(std::string::npos, script.status().message().find("mana"));
}

TEST(Analyzer, RejectsEffectOnConstAttribute) {
  const char* src = R"(
    action Hack(u) { update e where e.key = u.key set health += 10; }
    function main(u) { perform Hack(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("const state"));
}

TEST(Analyzer, RejectsTagMismatch) {
  const char* src = R"(
    action Bad(u) { update e where e.key = u.key set inaura += 1; }
    function main(u) { perform Bad(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("combine tag"));
}

TEST(Analyzer, RejectsRandomInAggregate) {
  const char* src = R"(
    aggregate Bad(u) { select sum(random(1)) from E e; }
    function main(u) { let x = Bad(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("random"));
}

TEST(Analyzer, RejectsRecursion) {
  const char* src = R"(
    function f(u) { perform g(u); }
    function g(u) { perform f(u); }
    function main(u) { perform f(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("recursive"));
}

TEST(Analyzer, RejectsUnknownPerformTarget) {
  auto script =
      CompileScript("function main(u) { perform Nothing(u); }", TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("Nothing"));
}

TEST(Analyzer, RejectsArityMismatch) {
  const char* src = R"(
    action A(u, x) { update e where e.key = u.key set damage += x; }
    function main(u) { perform A(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("expects"));
}

TEST(Analyzer, RejectsShadowing) {
  const char* src = R"(
    function main(u) { let x = 1; let x = 2; perform A(u); }
    action A(u) { update e where e.key = u.key set damage += 1; }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("shadow"));
}

TEST(Analyzer, RejectsRowFuncMixedWithOthers) {
  const char* src = R"(
    aggregate Bad(u) { select argmin(e.health), count(*) from E e; }
    function main(u) { let x = Bad(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string::npos, script.status().message().find("only select"));
}

TEST(Analyzer, RejectsAggregateOutsideFunctions) {
  const char* src = R"(
    aggregate N(u) { select count(*) from E e; }
    aggregate Bad(u) { select sum(N(u)) from E e; }
    function main(u) { let x = Bad(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_FALSE(script.ok());
}

TEST(Analyzer, NormalizesAggregatesIntoLets) {
  const char* src = R"(
    aggregate N(u, r) {
      select count(*) from E e
      where e.posx >= u.posx - r and e.posx <= u.posx + r;
    }
    action A(u) { update e where e.key = u.key set damage += 1; }
    function main(u) {
      if N(u, 3) > 2 and N(u, 5) > 4 then perform A(u);
    }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  // The condition's two aggregate calls must have been hoisted into lets;
  // after normalization no aggregate call appears outside a let RHS.
  std::function<void(const Stmt&, bool*)> check_no_agg_outside_lets;
  std::function<bool(const Expr&)> has_agg = [&](const Expr& e) {
    if (e.kind == ExprKind::kCall && e.is_aggregate) return true;
    for (const ExprPtr& a : e.args) {
      if (a && has_agg(*a)) return true;
    }
    return false;
  };
  int lets_with_aggs = 0;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (s.kind == StmtKind::kLet) {
      if (s.let_value->kind == ExprKind::kCall && s.let_value->is_aggregate) {
        ++lets_with_aggs;
      } else {
        EXPECT_FALSE(has_agg(*s.let_value));
      }
    }
    if (s.cond) {
      std::function<void(const Cond&)> cw = [&](const Cond& c) {
        if (c.lhs) {
          EXPECT_FALSE(has_agg(*c.lhs));
        }
        if (c.rhs) {
          EXPECT_FALSE(has_agg(*c.rhs));
        }
        if (c.left) cw(*c.left);
        if (c.right) cw(*c.right);
      };
      cw(*s.cond);
    }
    for (const ExprPtr& a : s.args) EXPECT_FALSE(has_agg(*a));
    if (s.then_branch) walk(*s.then_branch);
    if (s.else_branch) walk(*s.else_branch);
    for (const StmtPtr& c : s.body) walk(*c);
  };
  walk(*script->program.functions[0].body);
  EXPECT_EQ(2, lets_with_aggs);
}

TEST(Analyzer, MainMustTakeOneParam) {
  auto script = CompileScript(
      "function main(u, x) { perform main(u, x); }", TestSchema());
  ASSERT_FALSE(script.ok());
}

TEST(Analyzer, AggregateLayoutsExposed) {
  const char* src = R"(
    aggregate C(u) { select avg(e.posx) as x, avg(e.posy) as y from E e; }
    aggregate W(u) { select argmin(e.health) from E e; }
    function main(u) { let a = C(u); let b = W(u); }
  )";
  auto script = CompileScript(src, TestSchema());
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(2u, script->agg_layouts.size());
  EXPECT_EQ((std::vector<std::string>{"x", "y"}),
            script->agg_layouts[0]->fields);
  EXPECT_EQ("found", script->agg_layouts[1]->fields[0]);
  EXPECT_EQ("dist2", script->agg_layouts[1]->fields[1]);
  EXPECT_EQ("key", script->agg_layouts[1]->fields[2]);
}

}  // namespace
}  // namespace sgl
