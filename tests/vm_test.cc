// Compiled-evaluation lockstep: every scenario under every evaluator mode,
// thread count, and sharing setting must evolve bit-identically with
// SimulationConfig::compiled on and off — the batch VM (src/vm/) against
// the interpreter oracle. Also pins down that the scenario scripts
// actually compile (no silent interpreter fallback), that the VM really
// executes (batch counters advance), and that runtime errors surface with
// the interpreter's exact message and effect-log prefix.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/simulation.h"
#include "scenario/scenario.h"
#include "sgl/analyzer.h"
#include "vm/compiler.h"

namespace sgl {
namespace {

constexpr int64_t kTicks = 10;

std::unique_ptr<Simulation> BuildScenario(const std::string& name,
                                          EvaluatorMode mode, int32_t threads,
                                          bool compiled, bool sharing) {
  ScenarioParams params;
  params.units = 60;
  params.density = 0.02;
  params.seed = 31;
  SimulationConfig config;
  config.eval_mode = mode;
  config.threads = threads;
  config.compiled = compiled;
  config.sharing = sharing;
  auto sim = ScenarioRegistry::Global().BuildSimulation(name, params, config);
  EXPECT_TRUE(sim.ok()) << name << ": " << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

using VmCase = std::tuple<std::string, EvaluatorMode, int32_t>;

class VmLockstepTest : public ::testing::TestWithParam<VmCase> {};

TEST_P(VmLockstepTest, CompiledMatchesInterpretedBitExactly) {
  const auto& [name, mode, threads] = GetParam();
  for (bool sharing : {true, false}) {
    auto compiled = BuildScenario(name, mode, threads, true, sharing);
    auto interpreted = BuildScenario(name, mode, threads, false, sharing);
    ASSERT_NE(compiled, nullptr);
    ASSERT_NE(interpreted, nullptr);

    // Every scenario script must lower to bytecode — a conservative-bail
    // regression would silently turn this whole suite into a no-op.
    for (int32_t i = 0; i < compiled->NumScripts(); ++i) {
      EXPECT_NE(compiled->session(i).compiled, nullptr)
          << name << " script '" << compiled->session(i).name
          << "' fell back to the interpreter: "
          << compiled->session(i).compile_note;
      EXPECT_EQ(interpreted->session(i).compiled, nullptr);
    }

    for (int64_t tick = 0; tick < kTicks; ++tick) {
      ASSERT_TRUE(compiled->Tick().ok())
          << name << " compiled tick " << tick << " (sharing "
          << (sharing ? "on" : "off") << ")";
      ASSERT_TRUE(interpreted->Tick().ok())
          << name << " interpreted tick " << tick;
      ASSERT_TRUE(compiled->table().Equals(interpreted->table()))
          << name << " diverged at tick " << tick << " (mode "
          << EvaluatorModeName(mode) << ", " << threads << " threads, sharing "
          << (sharing ? "on" : "off") << "):\n"
          << compiled->table().DiffString(interpreted->table());
    }

    // The VM must actually have run: at least one session dispatched
    // batches, and no batch fell back to the interpreter (scenario
    // scripts are error-free).
    int64_t batches = 0;
    int64_t fallbacks = 0;
    for (int32_t i = 0; i < compiled->NumScripts(); ++i) {
      const auto& prog = *compiled->session(i).compiled;
      batches += prog.batches->value();
      fallbacks += prog.interp_fallbacks->value();
    }
    EXPECT_GT(batches, 0) << name << ": the batch VM never executed";
    EXPECT_EQ(fallbacks, 0) << name << ": unexpected interpreter fallbacks";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, VmLockstepTest,
    ::testing::Combine(
        ::testing::ValuesIn(ScenarioRegistry::Global().List()),
        ::testing::Values(EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
                          EvaluatorMode::kAdaptive),
        ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<VmCase>& info) {
      return std::get<0>(info.param) +
             std::string("_") + EvaluatorModeName(std::get<1>(info.param)) +
             "_" + std::to_string(std::get<2>(info.param)) + "t";
    });

// ------------------------------------------------ custom-script contracts

Schema VmSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("hp", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  return s;
}

EnvironmentTable VmWorld(const Schema& s, int32_t units) {
  EnvironmentTable t(s);
  for (int32_t i = 0; i < units; ++i) {
    // (player, posx, posy, hp, damage); hp == 0 on key 7 only.
    EXPECT_TRUE(
        t.AddRow({static_cast<double>(i % 2), static_cast<double>(i % 13),
                  static_cast<double>(i % 11), i == 7 ? 0.0 : 10.0 + i, 0})
            .ok());
  }
  return t;
}

std::unique_ptr<Simulation> BuildCustom(const char* source, bool compiled,
                                        int32_t units = 40) {
  Schema schema = VmSchema();
  auto script = CompileScript(source, schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kNaive;
  config.compiled = compiled;
  config.sharing = false;  // pure naive: kAgg probes use vectorized scans
  config.move_x_attr = "";  // no movement attrs in this schema
  auto sim = SimulationBuilder()
                 .SetTable(VmWorld(schema, units))
                 .SetConfig(config)
                 .AddScript("vm", script.MoveValue())
                 .Build();
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

// A data-dependent division by zero must abort the tick with the
// interpreter's exact error message, and both engines must have emitted
// the same effect-log prefix (units before the failing one).
TEST(VmErrorTest, RuntimeErrorsAreBitExact) {
  const char* source = R"(
    action Hit(u, amount) { update e where e.player != u.player
                            set damage += amount; }
    function main(u) {
      if u.posx > 1 then perform Hit(u, 100 / u.hp);
    }
  )";
  auto compiled = BuildCustom(source, true);
  auto interpreted = BuildCustom(source, false);
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(interpreted, nullptr);
  ASSERT_NE(compiled->session(0).compiled, nullptr)
      << compiled->session(0).compile_note;

  Status vm_status = compiled->Tick();
  Status interp_status = interpreted->Tick();
  ASSERT_FALSE(vm_status.ok());
  ASSERT_FALSE(interp_status.ok());
  EXPECT_EQ(vm_status.ToString(), interp_status.ToString());
  EXPECT_NE(vm_status.ToString().find("division by zero"), std::string::npos)
      << vm_status.ToString();
}

// A runtime error inside an action's update expressions: the vectorized
// action scan must apply nothing, fall back to the interpreter's
// ExecAction, and surface its exact error.
TEST(VmErrorTest, ActionUpdateErrorsAreBitExact) {
  const char* source = R"(
    action Hit(u, amount) { update e where e.player != u.player
                            set damage += amount / e.hp; }
    function main(u) {
      if u.posx > 1 then perform Hit(u, 100);
    }
  )";
  auto compiled = BuildCustom(source, true);
  auto interpreted = BuildCustom(source, false);
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(interpreted, nullptr);
  ASSERT_NE(compiled->session(0).compiled, nullptr)
      << compiled->session(0).compile_note;
  // The action itself must have lowered to a scan — the error path under
  // test is the scan's buffered-discard, not a compile-time decline.
  ASSERT_EQ(compiled->session(0).compiled->action_scans.size(), 1u);
  ASSERT_NE(compiled->session(0).compiled->action_scans[0], nullptr)
      << compiled->session(0).compiled->action_notes[0];

  Status vm_status = compiled->Tick();
  Status interp_status = interpreted->Tick();
  ASSERT_FALSE(vm_status.ok());
  ASSERT_FALSE(interp_status.ok());
  EXPECT_EQ(vm_status.ToString(), interp_status.ToString());
  EXPECT_NE(vm_status.ToString().find("division by zero"), std::string::npos)
      << vm_status.ToString();
  EXPECT_TRUE(compiled->table().Equals(interpreted->table()))
      << compiled->table().DiffString(interpreted->table());
}

// Row-returning aggregates (nearest/argmin) and the action's update scan
// must vectorize — and stay lockstep with the interpreter, including
// random() draws keyed by the scanned row inside the update.
TEST(VmLockstepTest, RowAggregatesAndActionScansVectorize) {
  const char* source = R"(
    aggregate Foe(u) { select nearest(*) from E e
                       where e.player != u.player; }
    aggregate Weakest(u) { select argmin(e.hp) from E e
                           where e.player != u.player; }
    action Drain(u, cap) { update e where e.player != u.player and
                                          e.hp <= cap
                           set damage += random(3) mod 5 + 1; }
    function main(u) {
      let f = Foe(u);
      let w = Weakest(u);
      if f.found = 1 and f.dist2 <= 64 then perform Drain(u, w.hp + 20);
    }
  )";
  auto compiled = BuildCustom(source, true, 80);
  auto interpreted = BuildCustom(source, false, 80);
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(interpreted, nullptr);
  ASSERT_NE(compiled->session(0).compiled, nullptr)
      << compiled->session(0).compile_note;
  const auto& prog = *compiled->session(0).compiled;
  ASSERT_EQ(prog.agg_scans.size(), 2u);
  EXPECT_NE(prog.agg_scans[0], nullptr) << prog.agg_notes[0];
  EXPECT_NE(prog.agg_scans[1], nullptr) << prog.agg_notes[1];
  ASSERT_EQ(prog.action_scans.size(), 1u);
  EXPECT_NE(prog.action_scans[0], nullptr) << prog.action_notes[0];

  for (int64_t tick = 0; tick < 15; ++tick) {
    ASSERT_TRUE(compiled->Tick().ok()) << "tick " << tick;
    ASSERT_TRUE(interpreted->Tick().ok()) << "tick " << tick;
    ASSERT_TRUE(compiled->table().Equals(interpreted->table()))
        << "diverged at tick " << tick << ":\n"
        << compiled->table().DiffString(interpreted->table());
  }
  EXPECT_GT(prog.agg_scan_probes->value(), 0);
  EXPECT_GT(prog.action_scan_execs->value(), 0);
  const std::string disasm = prog.Disassemble();
  EXPECT_NE(disasm.find("best nearest"), std::string::npos) << disasm;
  EXPECT_NE(disasm.find("vectorized update scan"), std::string::npos)
      << disasm;
}

// Scripts the conservative compiler declines run through the interpreter,
// and Explain says why.
TEST(VmCompileTest, ConditionallyBoundLocalFallsBackToInterpreter) {
  const char* source = R"(
    action Mark(u, amount) { update e where e.player = u.player
                             set damage += amount; }
    function main(u) {
      if u.hp > 50 then let bonus = 2;
      if u.hp > 90 then perform Mark(u, bonus);
    }
  )";
  auto sim = BuildCustom(source, true);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->session(0).compiled, nullptr);
  EXPECT_NE(sim->session(0).compile_note.find("conditionally bound"),
            std::string::npos)
      << sim->session(0).compile_note;
  // The interpreter path still runs the simulation.
  auto interpreted = BuildCustom(source, false);
  ASSERT_NE(interpreted, nullptr);
  ASSERT_TRUE(sim->Run(3).ok());
  ASSERT_TRUE(interpreted->Run(3).ok());
  EXPECT_TRUE(sim->table().Equals(interpreted->table()))
      << sim->table().DiffString(interpreted->table());
}

// random(), function inlining, vectors, aggregates, and nested control
// flow in one script: the VM's scalar opcodes must reproduce the
// interpreter's per-unit draw keys and aggregate results exactly.
TEST(VmLockstepTest, RandomAggregatesAndInliningStayLockstep) {
  const char* source = R"(
    aggregate Center(u) { select avg(e.posx) as cx, avg(e.posy) as cy
                          from E e where e.player != u.player; }
    aggregate Threat(u, r) { select count(*) as n from E e
                             where e.player != u.player and
                                   e.posx <= u.posx + r and
                                   e.posx >= u.posx - r; }
    action Push(u, amount) { update e where e.player != u.player
                             set damage += amount; }
    function strike(u, power) {
      let roll = random(1) mod 7;
      if roll >= power then perform Push(u, roll + power);
    }
    function main(u) {
      let c = Center(u);
      let d = (u.posx, u.posy) - c;
      let t = Threat(u, 3);
      if t > 2 or u.hp mod 2 = 0 then perform strike(u, d.x mod 5);
    }
  )";
  auto compiled = BuildCustom(source, true, 80);
  auto interpreted = BuildCustom(source, false, 80);
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(interpreted, nullptr);
  ASSERT_NE(compiled->session(0).compiled, nullptr)
      << compiled->session(0).compile_note;
  for (int64_t tick = 0; tick < 20; ++tick) {
    ASSERT_TRUE(compiled->Tick().ok()) << "tick " << tick;
    ASSERT_TRUE(interpreted->Tick().ok()) << "tick " << tick;
    ASSERT_TRUE(compiled->table().Equals(interpreted->table()))
        << "diverged at tick " << tick << ":\n"
        << compiled->table().DiffString(interpreted->table());
  }
}

// The compiler's stated compile-time work is visible in the bytecode:
// folded constants land in the hoisted prologue, repeated attribute loads
// CSE to one instruction, and let-aliases cost nothing.
TEST(VmCompileTest, ConstantFoldingHoistingAndLoadCse) {
  const char* source = R"(
    action Tag(u, amount) { update e where e.player = u.player
                            set damage += amount; }
    function main(u) {
      let a = 2 * 3 + 4;
      let b = u.posx + u.posx + u.posx;
      perform Tag(u, a + b);
    }
  )";
  Schema schema = VmSchema();
  auto script = CompileScript(source, schema);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto prog = vm::CompileProgram(*script);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  // 2*3+4 folds to one hoisted constant (10).
  int32_t loads = 0;
  for (const auto& in : (*prog)->code) {
    if (in.op == vm::Op::kLoadAttr) ++loads;
  }
  EXPECT_EQ(loads, 1) << "u.posx should load once:\n" << (*prog)->Disassemble();
  EXPECT_GE((*prog)->num_hoisted, 1);
  bool has_ten = false;
  for (double c : (*prog)->consts) has_ten |= c == 10.0;
  EXPECT_TRUE(has_ten) << "2*3+4 was not folded:\n" << (*prog)->Disassemble();
  const std::string disasm = (*prog)->Disassemble();
  EXPECT_NE(disasm.find("hoisted"), std::string::npos) << disasm;
}

}  // namespace
}  // namespace sgl
