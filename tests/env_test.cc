// Environment substrate tests: schema tags, table operations, and the
// algebraic laws of the combination operator ⊕ (Section 4.2, Eq. (3)).
#include <gtest/gtest.h>

#include "env/delta.h"
#include "env/effect_buffer.h"
#include "env/schema.h"
#include "env/table.h"
#include "env/value.h"
#include "util/rng.h"

namespace sgl {
namespace {

Schema BattleSchema() {
  // The schema of Eq. (1), abridged.
  Schema s;
  EXPECT_TRUE(s.AddAttribute("player", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("health", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("inaura", CombineType::kMax).ok());
  EXPECT_TRUE(s.AddAttribute("setspeed", CombineType::kSet).ok());
  return s;
}

TEST(Schema, KeyIsAlwaysFirstAndConst) {
  Schema s;
  EXPECT_EQ(1, s.NumAttrs());
  EXPECT_EQ("key", s.attr(kKeyAttrId).name);
  EXPECT_EQ(CombineType::kConst, s.attr(kKeyAttrId).combine);
}

TEST(Schema, FindAndDuplicates) {
  Schema s = BattleSchema();
  EXPECT_EQ(5, s.Find("damage"));
  EXPECT_EQ(Schema::kInvalidAttr, s.Find("missing"));
  EXPECT_TRUE(s.Has("inaura"));
  auto dup = s.AddAttribute("damage", CombineType::kSum);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(StatusCode::kAlreadyExists, dup.status().code());
}

TEST(Schema, EffectAndStatePartition) {
  Schema s = BattleSchema();
  std::vector<AttrId> effects = s.EffectAttrs();
  std::vector<AttrId> state = s.StateAttrs();
  EXPECT_EQ(3u, effects.size());
  EXPECT_EQ(5u, state.size());  // key, player, posx, posy, health
  EXPECT_EQ(static_cast<size_t>(s.NumAttrs()), effects.size() + state.size());
}

TEST(Schema, CombineIdentityAndFold) {
  EXPECT_EQ(0.0, CombineIdentity(CombineType::kSum));
  EXPECT_EQ(-std::numeric_limits<double>::infinity(),
            CombineIdentity(CombineType::kMax));
  EXPECT_EQ(std::numeric_limits<double>::infinity(),
            CombineIdentity(CombineType::kMin));
  EXPECT_EQ(7.0, CombineFold(CombineType::kSum, 3.0, 4.0));
  EXPECT_EQ(4.0, CombineFold(CombineType::kMax, 3.0, 4.0));
  EXPECT_EQ(3.0, CombineFold(CombineType::kMin, 3.0, 4.0));
}

TEST(Schema, ToStringShowsTags) {
  Schema s = BattleSchema();
  std::string str = s.ToString();
  EXPECT_NE(std::string::npos, str.find("damage:sum"));
  EXPECT_NE(std::string::npos, str.find("inaura:max"));
  EXPECT_EQ(std::string::npos, str.find("player:"));  // const untagged
}

TEST(Value, ScalarAndVec) {
  Value s(3.5);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(3.5, s.scalar());
  Value v(Vec2{1, 2});
  EXPECT_TRUE(v.is_vec());
  EXPECT_EQ(1.0, v.vec().x);
  EXPECT_FALSE(s == v);
  EXPECT_TRUE(Value(3.5) == s);
  Vec2 sum = Vec2{1, 2} + Vec2{3, 4};
  EXPECT_EQ(Vec2(4, 6), sum);
  EXPECT_EQ(5.0, Vec2(3, 4).Norm());
  EXPECT_EQ(25.0, Vec2(3, 4).SquaredNorm());
}

TEST(Table, AddGetSetRemove) {
  EnvironmentTable t(BattleSchema());
  auto k0 = t.AddRow({0, 10, 20, 100, 0, 0, 0});
  auto k1 = t.AddRow({1, 30, 40, 80, 0, 0, 0});
  ASSERT_TRUE(k0.ok() && k1.ok());
  EXPECT_EQ(2, t.NumRows());
  EXPECT_EQ(0, *k0);
  EXPECT_EQ(1, *k1);
  EXPECT_EQ(10.0, t.Get(t.RowOf(*k0), t.schema().Find("posx")));
  t.Set(t.RowOf(*k1), t.schema().Find("health"), 0.0);
  int32_t removed = t.RemoveIf([&](RowId r) {
    return t.Get(r, t.schema().Find("health")) <= 0.0;
  });
  EXPECT_EQ(1, removed);
  EXPECT_EQ(1, t.NumRows());
  EXPECT_FALSE(t.HasKey(*k1));
  EXPECT_TRUE(t.HasKey(*k0));
  // Keys are never reused after removal.
  auto k2 = t.AddRow({0, 1, 1, 1, 0, 0, 0});
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(2, *k2);
}

TEST(Table, ExplicitKeyAndErrors) {
  EnvironmentTable t(BattleSchema());
  EXPECT_TRUE(t.AddRowWithKey(42, {0, 1, 2, 3, 0, 0, 0}).ok());
  EXPECT_EQ(StatusCode::kAlreadyExists,
            t.AddRowWithKey(42, {0, 1, 2, 3, 0, 0, 0}).code());
  EXPECT_EQ(StatusCode::kInvalidArgument, t.AddRowWithKey(43, {1, 2}).code());
  // Auto keys continue above explicit ones.
  auto k = t.AddRow({0, 1, 1, 1, 0, 0, 0});
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(43, *k);
}

TEST(Table, RemoveCompactsAndRemapsRows) {
  EnvironmentTable t(BattleSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AddRow({0, double(i), 0, 100, 0, 0, 0}).ok());
  }
  t.RemoveIf([&](RowId r) { return t.KeyAt(r) % 2 == 0; });
  EXPECT_EQ(5, t.NumRows());
  for (RowId r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(t.KeyAt(r) % 2, 1);
    EXPECT_EQ(r, t.RowOf(t.KeyAt(r)));
  }
}

TEST(Table, CloneEqualsAndDiff) {
  EnvironmentTable t(BattleSchema());
  ASSERT_TRUE(t.AddRow({0, 1, 2, 100, 0, 0, 0}).ok());
  EnvironmentTable u = t.Clone();
  EXPECT_TRUE(t.Equals(u));
  EXPECT_EQ("", t.DiffString(u));
  u.Set(0, u.schema().Find("health"), 99);
  EXPECT_FALSE(t.Equals(u));
  EXPECT_NE("", t.DiffString(u));
}

TEST(Table, ResetEffectsZeroesEffectColumns) {
  EnvironmentTable t(BattleSchema());
  ASSERT_TRUE(t.AddRow({0, 1, 2, 100, 5, 3, 2}).ok());
  t.ResetEffects();
  EXPECT_EQ(0.0, t.Get(0, t.schema().Find("damage")));
  EXPECT_EQ(0.0, t.Get(0, t.schema().Find("inaura")));
  EXPECT_EQ(0.0, t.Get(0, t.schema().Find("setspeed")));
  EXPECT_EQ(100.0, t.Get(0, t.schema().Find("health")));  // state untouched
}

// ----------------------------------------------------------- EffectBuffer

TEST(EffectBuffer, SumMaxMinSemantics) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("dmg", CombineType::kSum).ok());
  ASSERT_TRUE(s.AddAttribute("aura", CombineType::kMax).ok());
  ASSERT_TRUE(s.AddAttribute("slow", CombineType::kMin).ok());
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0, 0, std::numeric_limits<double>::infinity()}).ok());
  EffectBuffer buf;
  buf.Begin(t);
  AttrId dmg = s.Find("dmg"), aura = s.Find("aura"), slow = s.Find("slow");
  buf.Accumulate(0, dmg, 5);
  buf.Accumulate(0, dmg, 7);
  buf.Accumulate(0, aura, 3);
  buf.Accumulate(0, aura, 9);
  buf.Accumulate(0, aura, 6);
  buf.Accumulate(0, slow, 4);
  buf.Accumulate(0, slow, 2);
  buf.ApplyTo(&t);
  EXPECT_EQ(12.0, t.Get(0, dmg));
  EXPECT_EQ(9.0, t.Get(0, aura));
  EXPECT_EQ(2.0, t.Get(0, slow));
}

TEST(EffectBuffer, BaseContributionIsTableValue) {
  // tick(E) = main⊕(E) ⊕ E: the unit's own row participates in ⊕, so a
  // max-effect never drops below its initialized value.
  Schema s;
  ASSERT_TRUE(s.AddAttribute("aura", CombineType::kMax).ok());
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0}).ok());
  EffectBuffer buf;
  buf.Begin(t);
  buf.Accumulate(0, s.Find("aura"), -5);
  buf.ApplyTo(&t);
  EXPECT_EQ(0.0, t.Get(0, s.Find("aura")));
}

TEST(EffectBuffer, SetEffectPriorityWins) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("setspeed", CombineType::kSet).ok());
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0}).ok());
  AttrId a = s.Find("setspeed");
  EffectBuffer buf;
  buf.Begin(t);
  EXPECT_FALSE(buf.HasSet(0, a));
  buf.AccumulateSet(0, a, 10.0, 1.0);
  buf.AccumulateSet(0, a, 0.0, 5.0);   // higher priority freeze wins
  buf.AccumulateSet(0, a, 99.0, 2.0);  // lower priority ignored
  EXPECT_TRUE(buf.HasSet(0, a));
  EXPECT_EQ(0.0, buf.Get(0, a));
  buf.ApplyTo(&t);
  EXPECT_EQ(0.0, t.Get(0, a));
}

TEST(EffectBuffer, SetEffectTieBreaksByValue) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("sv", CombineType::kSet).ok());
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0}).ok());
  EffectBuffer a, b;
  a.Begin(t);
  b.Begin(t);
  AttrId attr = s.Find("sv");
  // Same contributions in opposite order must agree.
  a.AccumulateSet(0, attr, 3.0, 1.0);
  a.AccumulateSet(0, attr, 7.0, 1.0);
  b.AccumulateSet(0, attr, 7.0, 1.0);
  b.AccumulateSet(0, attr, 3.0, 1.0);
  EXPECT_EQ(a.Get(0, attr), b.Get(0, attr));
  EXPECT_EQ(7.0, a.Get(0, attr));
}

// ----------------------------------------------------- DeltaRelation and ⊕

DeltaRelation RandomDelta(const Schema* s, int32_t rows, int32_t key_space,
                          uint64_t seed,
                          const EnvironmentTable& consts_from) {
  // Const attrs must agree per key, so copy them from a reference table.
  Xoshiro256 rng(seed);
  DeltaRelation d(s);
  for (int32_t i = 0; i < rows; ++i) {
    int64_t key = rng.NextBounded(key_space);
    RowId row = consts_from.RowOf(key);
    std::vector<double> vals(s->NumAttrs() - 1);
    for (AttrId a = 1; a < s->NumAttrs(); ++a) {
      if (s->attr(a).combine == CombineType::kConst) {
        vals[a - 1] = consts_from.Get(row, a);
      } else {
        vals[a - 1] = static_cast<double>(rng.NextBounded(100) - 50);
      }
    }
    d.Add(key, std::move(vals));
  }
  return d;
}

class CombineLaws : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    schema_ = BattleSchema();
    table_ = std::make_unique<EnvironmentTable>(schema_);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          table_->AddRow({double(i % 2), double(i), double(i), 100, 0, 0, 0})
              .ok());
    }
  }
  Schema schema_;
  std::unique_ptr<EnvironmentTable> table_;
};

TEST_P(CombineLaws, Idempotence) {
  // ⊕(⊕(R)) = ⊕(R) — Eq. (3) with E2 = ∅.
  DeltaRelation r = RandomDelta(&schema_, 30, 8, GetParam(), *table_);
  DeltaRelation once = r.Combine();
  DeltaRelation twice = once.Combine();
  EXPECT_TRUE(once.EqualsUnordered(twice));
}

TEST_P(CombineLaws, CommutativityOfUnion) {
  DeltaRelation r1 = RandomDelta(&schema_, 20, 8, GetParam() * 3 + 1, *table_);
  DeltaRelation r2 = RandomDelta(&schema_, 20, 8, GetParam() * 5 + 2, *table_);
  DeltaRelation ab = DeltaRelation::UnionAll(r1, r2).Combine();
  DeltaRelation ba = DeltaRelation::UnionAll(r2, r1).Combine();
  EXPECT_TRUE(ab.EqualsUnordered(ba));
}

TEST_P(CombineLaws, Equation3) {
  // ⊕(E1 ⊎ E2) = ⊕(⊕(E1) ⊎ E2).
  DeltaRelation e1 = RandomDelta(&schema_, 25, 8, GetParam() * 7 + 3, *table_);
  DeltaRelation e2 = RandomDelta(&schema_, 25, 8, GetParam() * 11 + 4, *table_);
  DeltaRelation lhs = DeltaRelation::UnionAll(e1, e2).Combine();
  DeltaRelation rhs = DeltaRelation::UnionAll(e1.Combine(), e2).Combine();
  EXPECT_TRUE(lhs.EqualsUnordered(rhs));
}

TEST_P(CombineLaws, FullDistribution) {
  // ⊕(E1 ⊎ E2) = ⊕(⊕(E1) ⊎ ⊕(E2)) — applying Eq. (3) twice.
  DeltaRelation e1 = RandomDelta(&schema_, 25, 8, GetParam() * 13 + 5, *table_);
  DeltaRelation e2 = RandomDelta(&schema_, 25, 8, GetParam() * 17 + 6, *table_);
  DeltaRelation lhs = DeltaRelation::UnionAll(e1, e2).Combine();
  DeltaRelation rhs =
      DeltaRelation::UnionAll(e1.Combine(), e2.Combine()).Combine();
  EXPECT_TRUE(lhs.EqualsUnordered(rhs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombineLaws,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(DeltaRelation, CombineAggregatesPerTag) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("p", CombineType::kConst).ok());
  ASSERT_TRUE(s.AddAttribute("dmg", CombineType::kSum).ok());
  ASSERT_TRUE(s.AddAttribute("aura", CombineType::kMax).ok());
  DeltaRelation d(&s);
  d.Add(1, {7, 10, 3});
  d.Add(1, {7, 5, 9});
  d.Add(2, {8, 1, 1});
  DeltaRelation c = d.Combine();
  ASSERT_EQ(2, c.NumRows());
  EXPECT_EQ(1, c.rows()[0].key);
  EXPECT_EQ(15.0, c.rows()[0].values[1]);  // sum
  EXPECT_EQ(9.0, c.rows()[0].values[2]);   // max
  EXPECT_EQ(2, c.rows()[1].key);
}

TEST(DeltaRelation, FoldIntoMatchesManualAccumulation) {
  Schema s = BattleSchema();
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0, 1, 1, 100, 0, 0, 0}).ok());
  ASSERT_TRUE(t.AddRow({1, 2, 2, 100, 0, 0, 0}).ok());
  DeltaRelation d(&s);
  d.Add(0, {0, 1, 1, 100, 12, 4, 0});
  d.Add(0, {0, 1, 1, 100, 3, 8, 0});
  d.Add(1, {1, 2, 2, 100, 1, 0, 0});
  d.Add(99, {0, 0, 0, 0, 5, 0, 0});  // dead unit: ignored
  EffectBuffer buf;
  buf.Begin(t);
  d.FoldInto(t, &buf);
  buf.ApplyTo(&t);
  EXPECT_EQ(15.0, t.Get(0, s.Find("damage")));
  EXPECT_EQ(8.0, t.Get(0, s.Find("inaura")));
  EXPECT_EQ(1.0, t.Get(1, s.Find("damage")));
}

TEST(DeltaRelation, FromTableRoundTrip) {
  Schema s = BattleSchema();
  EnvironmentTable t(s);
  ASSERT_TRUE(t.AddRow({0, 5, 6, 90, 0, 0, 0}).ok());
  DeltaRelation d = DeltaRelation::FromTable(t);
  ASSERT_EQ(1, d.NumRows());
  EXPECT_EQ(0, d.rows()[0].key);
  EXPECT_EQ(5.0, d.rows()[0].values[1]);  // posx
  // ⊕ of a keyed relation is itself (R⊕ = R when K is a key).
  EXPECT_TRUE(d.Combine().EqualsUnordered(d));
}

}  // namespace
}  // namespace sgl
