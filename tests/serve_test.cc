// Serving-layer tests (src/serve/): the ISSUE-9 acceptance matrix.
//
//  * Lockstep: K sessions sharing one SessionManager pool must be
//    bit-identical to the same simulations run solo, for every registered
//    scenario x {naive, indexed, adaptive} x shards {1, 2} x pool size
//    {1, 4} threads, with and without injected actions.
//  * Injected-action replay: a live-injection run is reproduced bit for
//    bit by replaying its recorded inlet log into a fresh session.
//  * Admission control: session, row, and queue-depth limits reject with
//    kResourceExhausted and count serve.rejected.
//  * Scheduler fairness: round-robin with a tick budget never lets one
//    session starve another over a 1k-tick run.
//  * The consolidated SimulationConfig::Validate() vocabulary and the
//    SimulationSnapshot byte codec ride along.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "scenario/scenario.h"
#include "serve/session_manager.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

using serve::InjectedAction;
using serve::InletDrainStats;
using serve::InletRecord;
using serve::SessionId;
using serve::SessionManager;
using serve::SessionManagerOptions;

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 100;
  params.density = 0.02;
  params.seed = 23;
  return params;
}

SimulationConfig ServeConfig(EvaluatorMode mode, int32_t shards,
                             int32_t threads) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.shards = shards;
  config.threads = threads;
  return config;
}

/// The deterministic injection schedule both the managed sessions and the
/// solo baseline receive: a handful of posx rewrites per tick. Stale keys
/// (a unit died) drop identically on both sides, so the runs stay in
/// lockstep by construction.
std::vector<InjectedAction> InjectionsForTick(int64_t tick) {
  std::vector<InjectedAction> actions;
  for (int64_t k = 0; k < 3; ++k) {
    InjectedAction action;
    action.unit_key = (tick * 5 + k * 11) % 40;
    action.attr = "posx";
    action.op = InjectedAction::Op::kSet;
    action.value = static_cast<double>((tick * 7 + k * 13) % 32);
    actions.push_back(action);
  }
  return actions;
}

// --------------------------------------------------- lockstep bit-exactness

class ServeScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeScenarioTest, SharedPoolSessionsMatchSoloRuns) {
  const std::string& name = GetParam();
  const ScenarioParams params = SmallParams();
  constexpr int64_t kTicks = 8;
  constexpr int32_t kSessions = 2;

  for (EvaluatorMode mode : {EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
                             EvaluatorMode::kAdaptive}) {
    for (int32_t shards : {1, 2}) {
      for (int32_t threads : {1, 4}) {
        for (bool inject : {false, true}) {
          const SimulationConfig config = ServeConfig(mode, shards, threads);
          const std::string label =
              name + " mode=" + EvaluatorModeName(mode) +
              " shards=" + std::to_string(shards) +
              " threads=" + std::to_string(threads) +
              " inject=" + std::to_string(inject);

          // Solo baseline: its own pool, same resolved size.
          auto solo = ScenarioRegistry::Global().BuildSimulation(name, params,
                                                                config);
          ASSERT_TRUE(solo.ok()) << label << ": " << solo.status().ToString();

          SessionManagerOptions options;
          options.threads = threads;
          auto manager = SessionManager::Create(options);
          ASSERT_TRUE(manager.ok()) << manager.status().ToString();

          std::vector<SessionId> ids;
          for (int32_t s = 0; s < kSessions; ++s) {
            SimulationBuilder builder;
            ASSERT_TRUE(ScenarioRegistry::Global()
                            .PrepareBuilder(name, params, config, &builder)
                            .ok());
            auto id = (*manager)->Open(builder);
            ASSERT_TRUE(id.ok()) << label << ": " << id.status().ToString();
            ids.push_back(*id);
            EXPECT_EQ(threads, (*manager)->session(*id)->threads());
          }

          for (int64_t tick = 0; tick < kTicks; ++tick) {
            if (inject) {
              for (const InjectedAction& action : InjectionsForTick(tick)) {
                (*solo)->inlet()->Push(action);
                for (SessionId id : ids) {
                  ASSERT_TRUE((*manager)->Inject(id, action).ok());
                }
              }
            }
            ASSERT_TRUE((*solo)->Tick().ok()) << label << " tick " << tick;
            for (SessionId id : ids) {
              ASSERT_TRUE((*manager)->ScheduleTicks(id, 1).ok());
            }
            auto executed = (*manager)->RunRound();
            ASSERT_TRUE(executed.ok()) << label << ": "
                                       << executed.status().ToString();
            ASSERT_EQ(kSessions, *executed);
            for (SessionId id : ids) {
              const Simulation* session = (*manager)->session(id);
              ASSERT_NE(session, nullptr);
              ASSERT_TRUE(session->table().Equals((*solo)->table()))
                  << label << " session " << id << " diverged at tick "
                  << tick << ":\n"
                  << session->table().DiffString((*solo)->table());
            }
          }

          // Deterministic metrics: every co-scheduled session matches the
          // solo run exactly, like the shard/thread matrices do.
          const std::string solo_metrics =
              (*solo)->MetricsJson(/*deterministic_only=*/true);
          for (SessionId id : ids) {
            EXPECT_EQ((*manager)->session(id)->MetricsJson(
                          /*deterministic_only=*/true),
                      solo_metrics)
                << label << ": deterministic metrics diverged from solo";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ServeScenarioTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().List()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// --------------------------------------------------------- action replay

TEST(ActionInletTest, RecordedLogReplaysBitIdentically) {
  const ScenarioParams params = SmallParams();
  const SimulationConfig config =
      ServeConfig(EvaluatorMode::kIndexed, 1, 1);

  auto live = ScenarioRegistry::Global().BuildSimulation("battle", params,
                                                         config);
  ASSERT_TRUE(live.ok());
  for (int64_t tick = 0; tick < 10; ++tick) {
    if (tick % 2 == 0) {
      for (const InjectedAction& action : InjectionsForTick(tick)) {
        (*live)->inlet()->Push(action);
      }
    }
    ASSERT_TRUE((*live)->Tick().ok());
  }
  const std::vector<InletRecord> log = (*live)->inlet()->Log();
  ASSERT_FALSE(log.empty());
  for (const InletRecord& record : log) {
    EXPECT_GE(record.tick, 0);  // applied records are tick-stamped
  }

  auto replay = ScenarioRegistry::Global().BuildSimulation("battle", params,
                                                           config);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE((*replay)->inlet()->Replay(log).ok());
  ASSERT_TRUE((*replay)->Run(10).ok());

  EXPECT_TRUE((*replay)->table().Equals((*live)->table()))
      << (*replay)->table().DiffString((*live)->table());
  EXPECT_EQ((*replay)->inlet()->applied(), (*live)->inlet()->applied());
  EXPECT_EQ((*replay)->inlet()->dropped(), (*live)->inlet()->dropped());
}

TEST(ActionInletTest, StaleKeysDropDeterministically) {
  const SimulationConfig config =
      ServeConfig(EvaluatorMode::kIndexed, 1, 1);
  auto sim = ScenarioRegistry::Global().BuildSimulation(
      "battle", SmallParams(), config);
  ASSERT_TRUE(sim.ok());
  InjectedAction bogus;
  bogus.unit_key = 1 << 20;  // never a real unit
  bogus.attr = "posx";
  (*sim)->inlet()->Push(bogus);
  InjectedAction bad_attr;
  bad_attr.unit_key = 0;
  bad_attr.attr = "no_such_attr";
  (*sim)->inlet()->Push(bad_attr);
  InjectedAction key_write;
  key_write.unit_key = 0;
  key_write.attr = "key";  // the key is never writable
  (*sim)->inlet()->Push(key_write);
  ASSERT_TRUE((*sim)->Tick().ok());
  EXPECT_EQ(0, (*sim)->inlet()->applied());
  EXPECT_EQ(3, (*sim)->inlet()->dropped());
}

TEST(ActionInletTest, ReplayValidatesOrderAndPinning) {
  serve::ActionInlet inlet;
  InletRecord unpinned;
  unpinned.seq = 0;
  EXPECT_FALSE(inlet.Replay({unpinned}).ok());

  InletRecord a;
  a.seq = 1;
  a.tick = 5;
  InletRecord b;
  b.seq = 0;
  b.tick = 3;
  EXPECT_FALSE(inlet.Replay({a, b}).ok());  // ticks descend
  EXPECT_TRUE(inlet.Replay({b, a}).ok());
}

TEST(ActionInletTest, SaveRestoreLogRoundTripsAndRequeues) {
  serve::ActionInlet inlet;
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("hp", CombineType::kSet).ok());
  EnvironmentTable table{schema};
  ASSERT_TRUE(table.AddRow({10.0}).ok());
  InjectedAction hit;
  hit.unit_key = 0;
  hit.attr = "hp";
  hit.op = InjectedAction::Op::kAdd;
  hit.value = -2.5;
  inlet.Push(hit);
  InletDrainStats stats;
  ASSERT_TRUE(inlet.DrainInto(&table, /*tick=*/0, &stats).ok());
  hit.value = -1.25;
  inlet.Push(hit);
  ASSERT_TRUE(inlet.DrainInto(&table, /*tick=*/3, &stats).ok());
  ASSERT_EQ(2u, inlet.Log().size());

  const std::string path = ::testing::TempDir() + "/inlet_log.sgl";
  ASSERT_TRUE(inlet.SaveLog(path).ok());

  // Restored to tick 2: the tick-0 record is history, the tick-3 record
  // re-queues pinned, and fresh pushes get post-log sequence numbers.
  serve::ActionInlet restored;
  ASSERT_TRUE(restored.RestoreLog(path, /*tick=*/2).ok());
  EXPECT_EQ(1, restored.QueuedCount());
  ASSERT_EQ(1u, restored.Log().size());
  EXPECT_EQ(0, restored.Log()[0].tick);
  EXPECT_EQ(-2.5, restored.Log()[0].action.value);
  InjectedAction fresh;
  fresh.unit_key = 0;
  fresh.attr = "hp";
  EXPECT_EQ(2, restored.Push(fresh));

  // A missing file restores to an empty inlet; corrupt bytes are refused.
  serve::ActionInlet empty;
  ASSERT_TRUE(
      empty.RestoreLog(::testing::TempDir() + "/no_such_inlet.sgl", 0).ok());
  EXPECT_EQ(0, empty.QueuedCount());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x40;
    const std::string bad = ::testing::TempDir() + "/inlet_bad.sgl";
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out << bytes;
    out.close();
    serve::ActionInlet corrupt;
    EXPECT_EQ(StatusCode::kInvalidArgument,
              corrupt.RestoreLog(bad, 0).code());
  }
}

// ------------------------------------------------------ admission control

TEST(SessionManagerTest, SessionLimitRejectsWithResourceExhausted) {
  SessionManagerOptions options;
  options.max_sessions = 1;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());

  SimulationBuilder first;
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", SmallParams(),
                                  ServeConfig(EvaluatorMode::kIndexed, 1, 1),
                                  &first)
                  .ok());
  ASSERT_TRUE((*manager)->Open(first).ok());

  SimulationBuilder second;
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", SmallParams(),
                                  ServeConfig(EvaluatorMode::kIndexed, 1, 1),
                                  &second)
                  .ok());
  auto rejected = (*manager)->Open(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, rejected.status().code());
  EXPECT_NE((*manager)->MetricsJson().find("\"serve.rejected\":1"),
            std::string::npos)
      << (*manager)->MetricsJson();
}

TEST(SessionManagerTest, RowLimitRejectsWithResourceExhausted) {
  SessionManagerOptions options;
  options.max_total_rows = 150;  // one 100-unit world fits, two do not
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());

  SimulationBuilder first;
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", SmallParams(),
                                  ServeConfig(EvaluatorMode::kIndexed, 1, 1),
                                  &first)
                  .ok());
  ASSERT_TRUE((*manager)->Open(first).ok());
  EXPECT_EQ(100, (*manager)->TotalRows());

  SimulationBuilder second;
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", SmallParams(),
                                  ServeConfig(EvaluatorMode::kIndexed, 1, 1),
                                  &second)
                  .ok());
  auto rejected = (*manager)->Open(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, rejected.status().code());
  EXPECT_EQ(1, (*manager)->NumSessions());
}

TEST(SessionManagerTest, QueueDepthBackpressureRejectsInject) {
  SessionManagerOptions options;
  options.max_queued_actions = 2;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());

  SimulationBuilder builder;
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", SmallParams(),
                                  ServeConfig(EvaluatorMode::kIndexed, 1, 1),
                                  &builder)
                  .ok());
  auto id = (*manager)->Open(builder);
  ASSERT_TRUE(id.ok());

  InjectedAction action;
  action.unit_key = 0;
  action.attr = "posx";
  EXPECT_TRUE((*manager)->Inject(*id, action).ok());
  EXPECT_TRUE((*manager)->Inject(*id, action).ok());
  auto rejected = (*manager)->Inject(*id, action);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, rejected.status().code());

  // Draining the queue (one tick) reopens the inlet.
  ASSERT_TRUE((*manager)->ScheduleTicks(*id, 1).ok());
  ASSERT_TRUE((*manager)->RunUntilIdle().ok());
  EXPECT_TRUE((*manager)->Inject(*id, action).ok());
}

TEST(SessionManagerTest, UnknownSessionsAreNotFound) {
  auto manager = SessionManager::Create(SessionManagerOptions{});
  ASSERT_TRUE(manager.ok());
  EXPECT_EQ(nullptr, (*manager)->session(7));
  EXPECT_EQ(StatusCode::kNotFound,
            (*manager)->ScheduleTicks(7, 1).code());
  EXPECT_EQ(StatusCode::kNotFound,
            (*manager)->Inject(7, InjectedAction{}).status().code());
  EXPECT_EQ(StatusCode::kNotFound, (*manager)->Close(7).status().code());
}

TEST(SessionManagerTest, OptionsAreValidated) {
  for (auto mutate : std::vector<void (*)(SessionManagerOptions&)>{
           [](SessionManagerOptions& o) { o.threads = -1; },
           [](SessionManagerOptions& o) { o.max_sessions = 0; },
           [](SessionManagerOptions& o) { o.max_total_rows = 0; },
           [](SessionManagerOptions& o) { o.tick_budget = 0; },
           [](SessionManagerOptions& o) { o.max_queued_actions = 0; }}) {
    SessionManagerOptions options;
    mutate(options);
    auto manager = SessionManager::Create(options);
    EXPECT_FALSE(manager.ok());
    EXPECT_EQ(StatusCode::kInvalidArgument, manager.status().code());
  }
}

// --------------------------------------------------- scheduling fairness

// A featherweight single-unit world so a 1k-tick fairness run stays fast.
std::unique_ptr<SimulationBuilder> TinyWorldBuilder(uint64_t seed) {
  Schema schema;
  EXPECT_TRUE(schema.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(schema.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(schema.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(schema.AddAttribute("movey", CombineType::kSum).ok());
  EnvironmentTable table(schema);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(table.AddRow({double(8 * i), 8, 0, 0}).ok());
  }
  auto script = CompileScript(R"(
    action Drift(u, dx) {
      update e where e.key = u.key set movex += dx;
    }
    function main(u) {
      perform Drift(u, random(1) mod 3 - 1);
    }
  )",
                              schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  SimulationConfig config;
  config.seed = seed;
  config.grid_width = 64;
  config.grid_height = 64;
  auto builder = std::make_unique<SimulationBuilder>();
  builder->SetTable(std::move(table))
      .SetConfig(config)
      .AddScript("drift", script.MoveValue());
  return builder;
}

TEST(SessionManagerTest, RoundRobinNeverStarvesASession) {
  SessionManagerOptions options;
  options.tick_budget = 16;
  options.max_sessions = 3;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok());

  std::vector<SessionId> ids;
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto builder = TinyWorldBuilder(seed);
    auto id = (*manager)->Open(*builder);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  constexpr int64_t kPerSession = 400;  // 1200 ticks total
  for (SessionId id : ids) {
    ASSERT_TRUE((*manager)->ScheduleTicks(id, kPerSession).ok());
  }

  int64_t total = 0;
  while (true) {
    auto executed = (*manager)->RunRound();
    ASSERT_TRUE(executed.ok());
    if (*executed == 0) break;
    total += *executed;
    // Fairness invariant: after any round, no session is ever more than
    // one budget ahead of any other.
    int64_t lo = kPerSession, hi = 0;
    for (SessionId id : ids) {
      const int64_t ticks = (*manager)->session(id)->tick_count();
      lo = std::min(lo, ticks);
      hi = std::max(hi, ticks);
    }
    EXPECT_LE(hi - lo, options.tick_budget)
        << "session spread exceeded the round budget";
  }
  EXPECT_EQ(3 * kPerSession, total);
  for (SessionId id : ids) {
    EXPECT_EQ(kPerSession, (*manager)->session(id)->tick_count());
  }
}

TEST(SessionManagerTest, CloseDrainsPendingTicksGracefully) {
  auto manager = SessionManager::Create(SessionManagerOptions{});
  ASSERT_TRUE(manager.ok());
  auto builder = TinyWorldBuilder(9);
  auto id = (*manager)->Open(*builder);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*manager)->ScheduleTicks(*id, 37).ok());

  auto sim = (*manager)->Close(*id);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_EQ(37, (*sim)->tick_count());  // scheduled work ran before release
  EXPECT_EQ(0, (*manager)->NumSessions());
  EXPECT_NE((*manager)->MetricsJson().find("\"serve.closed\":1"),
            std::string::npos);
}

// ---------------------------------------------- config validation seam

TEST(SimulationConfigTest, ValidateUsesOneErrorVocabulary) {
  struct Case {
    void (*mutate)(SimulationConfig&);
  };
  for (auto mutate : std::vector<void (*)(SimulationConfig&)>{
           [](SimulationConfig& c) { c.threads = -2; },
           [](SimulationConfig& c) { c.shards = 0; },
           [](SimulationConfig& c) { c.shards = 65; },
           [](SimulationConfig& c) { c.move_y_attr = ""; },
           [](SimulationConfig& c) { c.grid_width = 0; },
           [](SimulationConfig& c) { c.grid_height = -1; },
           [](SimulationConfig& c) { c.step_per_tick = -1.0; },
           [](SimulationConfig& c) { c.artifacts.flight_recorder_ticks = -1; }}) {
    SimulationConfig config;
    mutate(config);
    Status st = config.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
    EXPECT_EQ(0u, st.message().find("SimulationConfig:"))
        << "unexpected vocabulary: " << st.ToString();
  }
  EXPECT_TRUE(SimulationConfig{}.Validate().ok());
  // Movement disabled: grid knobs are irrelevant and not validated.
  SimulationConfig no_movement;
  no_movement.move_x_attr.clear();
  no_movement.grid_width = 0;
  EXPECT_TRUE(no_movement.Validate().ok());
}

TEST(SimulationConfigTest, BuildRejectsWhatValidateRejects) {
  auto builder = TinyWorldBuilder(1);
  builder->config().shards = 77;
  auto sim = builder->Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, sim.status().code());
  EXPECT_NE(sim.status().message().find("SimulationConfig:"),
            std::string::npos);
}

// ------------------------------------------------- executor API seam

TEST(ExecutorSeamTest, SharedExecutorMatchesPrivatePool) {
  const ScenarioParams params = SmallParams();
  SimulationConfig config = ServeConfig(EvaluatorMode::kIndexed, 1, 4);
  auto own_pool = ScenarioRegistry::Global().BuildSimulation("battle", params,
                                                             config);
  ASSERT_TRUE(own_pool.ok());

  auto shared = std::make_shared<exec::ThreadPool>(4);
  SimulationBuilder builder;
  config.threads = 1;  // the executor must win over config.threads
  ASSERT_TRUE(ScenarioRegistry::Global()
                  .PrepareBuilder("battle", params, config, &builder)
                  .ok());
  builder.Executor(shared);
  auto sim = builder.Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_EQ(4, (*sim)->threads());
  EXPECT_EQ(shared.get(), (*sim)->executor().get());

  ASSERT_TRUE((*own_pool)->Run(6).ok());
  ASSERT_TRUE((*sim)->Run(6).ok());
  EXPECT_TRUE((*sim)->table().Equals((*own_pool)->table()))
      << (*sim)->table().DiffString((*own_pool)->table());
}

// ------------------------------------------------- snapshot byte codec

TEST(SnapshotCodecTest, RoundTripsBitExactly) {
  auto sim = ScenarioRegistry::Global().BuildSimulation(
      "battle", SmallParams(), ServeConfig(EvaluatorMode::kIndexed, 1, 1));
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(5).ok());

  const SimulationSnapshot snapshot{(*sim)->table().Clone(),
                                    (*sim)->tick_count()};
  std::string bytes;
  ASSERT_TRUE(snapshot.SerializeTo(&bytes).ok());
  ASSERT_FALSE(bytes.empty());

  auto parsed = SimulationSnapshot::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(5, parsed->tick_count);
  EXPECT_TRUE(parsed->table.Equals(snapshot.table))
      << parsed->table.DiffString(snapshot.table);

  // The encoding is canonical: re-serializing the parse is byte-identical.
  std::string bytes2;
  ASSERT_TRUE(parsed->SerializeTo(&bytes2).ok());
  EXPECT_EQ(bytes, bytes2);

  // And a restored simulation replays deterministically from the same
  // checkpoint through the durability facade.
  const std::string dir = ::testing::TempDir() + "/codec_ckpt";
  ASSERT_TRUE((*sim)->Checkpoint(dir).ok());
  auto twin = ScenarioRegistry::Global().BuildSimulation(
      "battle", SmallParams(), ServeConfig(EvaluatorMode::kIndexed, 1, 1));
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE((*twin)->RestoreFrom(dir).ok());
  EXPECT_EQ(5, (*twin)->tick_count());
  ASSERT_TRUE((*sim)->Run(5).ok());
  ASSERT_TRUE((*twin)->Run(5).ok());
  EXPECT_TRUE((*twin)->table().Equals((*sim)->table()))
      << (*twin)->table().DiffString((*sim)->table());
}

TEST(SnapshotCodecTest, RejectsCorruptBytes) {
  auto sim = ScenarioRegistry::Global().BuildSimulation(
      "battle", SmallParams(), ServeConfig(EvaluatorMode::kIndexed, 1, 1));
  ASSERT_TRUE(sim.ok());
  std::string bytes;
  const SimulationSnapshot snapshot{(*sim)->table().Clone(),
                                    (*sim)->tick_count()};
  ASSERT_TRUE(snapshot.SerializeTo(&bytes).ok());

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(StatusCode::kInvalidArgument,
            SimulationSnapshot::Parse(bad_magic).status().code());
  // Unsupported version.
  std::string bad_version = bytes;
  bad_version[6] = 99;
  EXPECT_EQ(StatusCode::kInvalidArgument,
            SimulationSnapshot::Parse(bad_version).status().code());
  // Truncation anywhere must error, never crash.
  for (size_t cut : {size_t{3}, size_t{9}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_EQ(StatusCode::kInvalidArgument,
              SimulationSnapshot::Parse(bytes.substr(0, cut)).status().code())
        << "cut at " << cut;
  }
  // Trailing garbage.
  EXPECT_EQ(StatusCode::kInvalidArgument,
            SimulationSnapshot::Parse(bytes + "x").status().code());
}

}  // namespace
}  // namespace sgl
