// Durable-world tests (src/storage/): the ISSUE-10 acceptance matrix.
//
//  * Bit-exactness: a storage-backed run is identical to the in-memory
//    run — tables and deterministic metrics — for every registered
//    scenario x {naive, indexed, adaptive} x shards {1, 2} x threads
//    {1, 4}.
//  * Crash recovery: a run hard-killed mid-tick-stream (fork + _exit, no
//    destructors, no final checkpoint) reopens, replays the WAL, and
//    continues bit-identically to a run that was never interrupted.
//  * Corruption: a flipped page byte or a flipped WAL byte is refused
//    with kInvalidArgument; a torn WAL tail (truncation) silently drops
//    the partial tick and recovers to the last committed one.
//  * Out-of-core: a pool capped far below the table size completes a
//    100-tick scenario through eviction, still bit-exact.
//  * Time travel: Materialize/RestoreFrom(dir, tick) rebuilds any
//    logged tick; re-running from it reproduces the original future.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "scenario/scenario.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/wal.h"
#include "storage/world_store.h"

namespace sgl {
namespace {

using storage::BufferPool;
using storage::PageFile;
using storage::WalFile;
using storage::WalRecord;
using storage::WalRecordType;
using storage::WorldStore;

// Wire-format sizes from wal.h's layout comment: 16-byte file header,
// 13-byte record frame (u32 len + u8 type + u64 checksum) before each
// body. Used to aim corruption at known offsets.
constexpr int64_t kWalHeader = 16;
constexpr int64_t kWalFrame = 13;

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 80;
  params.density = 0.02;
  params.seed = 37;
  return params;
}

/// A fresh world directory under the test tmpdir: any files from a
/// previous run of the same test are removed first, so Build() never
/// sees a stale manifest it would refuse to tick over.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  for (const char* f :
       {"pages.sgl", "wal.sgl", "MANIFEST.sgl", "MANIFEST.sgl.tmp",
        "inlet.sgl", "snapshot.sgl", "trace.json", "metrics.json",
        "flight_record.json"}) {
    std::remove((dir + "/" + f).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

SimulationConfig StorageConfigFor(const std::string& dir, EvaluatorMode mode,
                                  int32_t shards, int32_t threads,
                                  int64_t checkpoint_every = 0) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.shards = shards;
  config.threads = threads;
  config.storage.path = dir;
  config.storage.page_size = 512;  // small pages: many of them, real churn
  config.storage.pool_pages = 64;
  config.storage.checkpoint_every = checkpoint_every;
  return config;
}

std::unique_ptr<Simulation> BuildScenario(const std::string& name,
                                          const SimulationConfig& config) {
  auto sim =
      ScenarioRegistry::Global().BuildSimulation(name, SmallParams(), config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

// ------------------------------------------------------ page + pool units

TEST(PageFileTest, RoundTripsAndRejectsCorruption) {
  const std::string dir = FreshDir("pagefile_unit");
  ASSERT_TRUE(storage::MakeDirs(dir).ok());
  const int32_t page_size = 256;
  PageFile file;
  ASSERT_TRUE(file.Open(dir + "/pages.sgl", page_size).ok());

  std::vector<uint8_t> page(page_size, 0);
  for (int i = 0; i < 16; ++i) {
    page[storage::kPageHeaderBytes + i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(file.WriteSlot(3, 0, page.data()).ok());

  std::vector<uint8_t> back(page_size, 0xff);
  ASSERT_TRUE(file.ReadSlot(3, 0, back.data(), false).ok());
  EXPECT_EQ(0, std::memcmp(page.data() + storage::kPageHeaderBytes,
                           back.data() + storage::kPageHeaderBytes, 16));

  // A hole reads as zeroes only when the caller says missing is fine.
  EXPECT_FALSE(file.ReadSlot(9, 0, back.data(), false).ok());
  ASSERT_TRUE(file.ReadSlot(9, 0, back.data(), true).ok());

  // Flip one payload byte on disk: the checksum must catch it.
  {
    std::fstream f(dir + "/pages.sgl",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(3 * 2 * page_size + storage::kPageHeaderBytes + 5);
    char b = 0x55;
    f.write(&b, 1);
  }
  Status st = file.ReadSlot(3, 0, back.data(), false);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
  EXPECT_NE(std::string::npos, st.ToString().find("checksum"));
}

TEST(BufferPoolTest, EvictsThroughTinyPoolAndReadsBack) {
  const std::string dir = FreshDir("pool_unit");
  ASSERT_TRUE(storage::MakeDirs(dir).ok());
  const int32_t page_size = 128;
  PageFile file;
  ASSERT_TRUE(file.Open(dir + "/pages.sgl", page_size).ok());
  BufferPool pool(&file, page_size, /*pool_pages=*/4);

  const int kPages = 12;  // 3x the pool: eviction is mandatory
  for (storage::PageId p = 0; p < kPages; ++p) {
    auto pinned = pool.Pin(p, /*create=*/true);
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    pinned->payload[0] = static_cast<uint8_t>(0xa0 + p);
    pool.Unpin(*pinned, /*dirty=*/true);
  }
  int64_t written = 0;
  ASSERT_TRUE(pool.FlushDirty(&written).ok());
  pool.PromoteScratch();

  for (storage::PageId p = 0; p < kPages; ++p) {
    auto pinned = pool.Pin(p, /*create=*/false);
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    EXPECT_EQ(static_cast<uint8_t>(0xa0 + p), pinned->payload[0])
        << "page " << p;
    pool.Unpin(*pinned, /*dirty=*/false);
  }
}

TEST(WalFileTest, AppendsReadsAndDistinguishesTornFromCorrupt) {
  const std::string dir = FreshDir("wal_unit");
  ASSERT_TRUE(storage::MakeDirs(dir).ok());
  const std::string path = dir + "/wal.sgl";
  WalFile wal;
  ASSERT_TRUE(wal.Open(path).ok());
  EXPECT_EQ(0, wal.checkpoint_tick());

  std::string body;
  storage::WalAppendLE(&body, 42, 8);
  ASSERT_TRUE(wal.Append(WalRecordType::kTickBegin, body, nullptr).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kTickCommit, body, nullptr).ok());

  std::vector<WalRecord> records;
  bool torn = false;
  ASSERT_TRUE(wal.ReadAll(&records, &torn).ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(WalRecordType::kTickBegin, records[0].type);
  EXPECT_EQ(body, records[0].body);

  // Truncation mid-frame is a torn tail — tolerated, partial data gone.
  struct stat sb;
  ASSERT_EQ(0, ::stat(path.c_str(), &sb));
  ASSERT_EQ(0, ::truncate(path.c_str(), sb.st_size - 3));
  records.clear();
  ASSERT_TRUE(wal.ReadAll(&records, &torn).ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(1u, records.size());

  // A flipped byte inside a complete frame is corruption — refused.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(kWalHeader + kWalFrame + 2);
    char b = 0x7f;
    f.write(&b, 1);
  }
  records.clear();
  Status st = wal.ReadAll(&records, &torn);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
  EXPECT_NE(std::string::npos, st.ToString().find("checksum"));
}

// ------------------------------------------------------------- validation

TEST(StorageConfigTest, ValidateRejectsBadValues) {
  SimulationConfig config;
  config.storage.path = "somewhere";
  config.storage.page_size = 32;  // below the floor
  EXPECT_EQ(StatusCode::kInvalidArgument, config.Validate().code());
  config.storage.page_size = 8192;
  config.storage.pool_pages = 2;
  EXPECT_EQ(StatusCode::kInvalidArgument, config.Validate().code());
  config.storage.pool_pages = 64;
  config.storage.checkpoint_every = -1;
  EXPECT_EQ(StatusCode::kInvalidArgument, config.Validate().code());
  config.storage.checkpoint_every = 0;
  EXPECT_TRUE(config.Validate().ok());

  config.artifacts.flight_recorder_ticks = -3;
  Status st = config.Validate();
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
  EXPECT_NE(std::string::npos,
            st.ToString().find("artifacts.flight_recorder_ticks"));
}

// ------------------------------------------------- bit-exactness matrix

TEST(StorageBitExactTest, MatchesInMemoryAcrossTheMatrix) {
  const int64_t kTicks = 25;
  for (const std::string& scenario : ScenarioRegistry::Global().List()) {
    for (EvaluatorMode mode : {EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
                               EvaluatorMode::kAdaptive}) {
      for (int32_t shards : {1, 2}) {
        for (int32_t threads : {1, 4}) {
          SCOPED_TRACE(scenario + " mode=" +
                       std::to_string(static_cast<int>(mode)) +
                       " shards=" + std::to_string(shards) +
                       " threads=" + std::to_string(threads));
          SimulationConfig mem_config;
          mem_config.eval_mode = mode;
          mem_config.shards = shards;
          mem_config.threads = threads;
          auto mem = BuildScenario(scenario, mem_config);
          ASSERT_NE(nullptr, mem);
          ASSERT_TRUE(mem->Run(kTicks).ok());

          const std::string dir = FreshDir("matrix_world");
          auto durable = BuildScenario(
              scenario, StorageConfigFor(dir, mode, shards, threads,
                                         /*checkpoint_every=*/7));
          ASSERT_NE(nullptr, durable);
          ASSERT_TRUE(durable->Run(kTicks).ok());

          EXPECT_TRUE(durable->table().Equals(mem->table()))
              << durable->table().DiffString(mem->table());
          EXPECT_EQ(durable->MetricsJson(/*deterministic_only=*/true),
                    mem->MetricsJson(/*deterministic_only=*/true));

          // And the durable world recovers to exactly the final state.
          auto reopened = BuildScenario(
              scenario, StorageConfigFor(dir, mode, shards, threads));
          ASSERT_NE(nullptr, reopened);
          ASSERT_TRUE(reopened->RestoreFrom(dir).ok());
          EXPECT_EQ(kTicks, reopened->tick_count());
          EXPECT_TRUE(reopened->table().Equals(mem->table()))
              << reopened->table().DiffString(mem->table());
        }
      }
    }
  }
}

// ------------------------------------------------------- crash recovery

TEST(StorageRecoveryTest, KillAndRecoverResumesBitExactly) {
  const int64_t kKillAfter = 13;  // not a checkpoint boundary
  const int64_t kTotal = 30;
  for (EvaluatorMode mode : {EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
                             EvaluatorMode::kAdaptive}) {
    for (int32_t shards : {1, 2}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " shards=" + std::to_string(shards));
      const std::string dir = FreshDir("kill_world");

      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: tick past a checkpoint, then die without destructors —
        // no flush, no final checkpoint, exactly like a crash.
        auto victim = ScenarioRegistry::Global().BuildSimulation(
            "battle", SmallParams(),
            StorageConfigFor(dir, mode, shards, /*threads=*/1,
                             /*checkpoint_every=*/5));
        if (!victim.ok() || !(*victim)->Run(kKillAfter).ok()) _exit(7);
        _exit(0);
      }
      int wstatus = 0;
      ASSERT_EQ(pid, waitpid(pid, &wstatus, 0));
      ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);

      // Survivor: reopen, recover the latest durable tick, run on.
      auto survivor = BuildScenario(
          "battle", StorageConfigFor(dir, mode, shards, /*threads=*/1,
                                     /*checkpoint_every=*/5));
      ASSERT_NE(nullptr, survivor);
      ASSERT_TRUE(survivor->RestoreFrom(dir).ok());
      EXPECT_EQ(kKillAfter, survivor->tick_count());
      ASSERT_TRUE(survivor->Run(kTotal - kKillAfter).ok());

      SimulationConfig mem_config;
      mem_config.eval_mode = mode;
      mem_config.shards = shards;
      auto uninterrupted = BuildScenario("battle", mem_config);
      ASSERT_NE(nullptr, uninterrupted);
      ASSERT_TRUE(uninterrupted->Run(kTotal).ok());
      EXPECT_TRUE(survivor->table().Equals(uninterrupted->table()))
          << survivor->table().DiffString(uninterrupted->table());
    }
  }
}

TEST(StorageRecoveryTest, BuildRefusesToTickOverAnUnrestoredWorld) {
  const std::string dir = FreshDir("unrestored_world");
  {
    auto sim = BuildScenario(
        "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1));
    ASSERT_NE(nullptr, sim);
    ASSERT_TRUE(sim->Run(5).ok());
    ASSERT_TRUE(sim->Checkpoint(dir).ok());
  }
  auto sim = BuildScenario(
      "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1));
  ASSERT_NE(nullptr, sim);
  Status st = sim->Tick();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.ToString().find("RestoreFrom"));
  // Explicitly checkpointing over it re-arms ticking from the new state.
  ASSERT_TRUE(sim->Checkpoint(dir).ok());
  EXPECT_TRUE(sim->Tick().ok());
}

TEST(StorageRecoveryTest, TornWalTailRecoversToLastCommittedTick) {
  const std::string dir = FreshDir("torn_world");
  {
    auto sim = BuildScenario(
        "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1,
                                   /*checkpoint_every=*/5));
    ASSERT_NE(nullptr, sim);
    ASSERT_TRUE(sim->Run(13).ok());
  }
  // Tear the tail: drop the last few bytes of the log mid-frame.
  const std::string wal_path = dir + "/wal.sgl";
  struct stat sb;
  ASSERT_EQ(0, ::stat(wal_path.c_str(), &sb));
  ASSERT_EQ(0, ::truncate(wal_path.c_str(), sb.st_size - 5));

  auto store = WorldStore::Open(
      StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1).storage, nullptr);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto world = (*store)->Recover();
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  EXPECT_EQ(12, world->tick);  // tick 13's record was the torn one

  // A flipped byte inside the log body, by contrast, is corruption.
  {
    std::fstream f(wal_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(kWalHeader + kWalFrame + 3);
    char b = 0x3c;
    f.write(&b, 1);
  }
  Status st = (*store)->Recover().status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
}

TEST(StorageRecoveryTest, CorruptPageIsRefused) {
  const std::string dir = FreshDir("corrupt_world");
  {
    auto sim = BuildScenario(
        "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1));
    ASSERT_NE(nullptr, sim);
    ASSERT_TRUE(sim->Run(8).ok());
    ASSERT_TRUE(sim->Checkpoint(dir).ok());
  }
  // Flip a byte in every physical slot so the committed image is hit no
  // matter which ping-pong side each page committed to.
  const std::string pages_path = dir + "/pages.sgl";
  struct stat sb;
  ASSERT_EQ(0, ::stat(pages_path.c_str(), &sb));
  {
    std::fstream f(pages_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    for (off_t off = storage::kPageHeaderBytes + 1; off < sb.st_size;
         off += 512) {
      f.seekg(off);
      char b = 0;
      f.read(&b, 1);
      b = static_cast<char>(b ^ 0x41);
      f.seekp(off);
      f.write(&b, 1);
    }
  }
  auto store = WorldStore::Open(
      StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1).storage, nullptr);
  ASSERT_TRUE(store.ok());
  Status st = (*store)->Recover().status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
  EXPECT_NE(std::string::npos, st.ToString().find("checksum"));
}

// ---------------------------------------------------------- out of core

TEST(StorageOutOfCoreTest, TinyPoolCompletes100Ticks) {
  SimulationConfig mem_config;
  mem_config.eval_mode = EvaluatorMode::kIndexed;
  auto mem = BuildScenario("battle", mem_config);
  ASSERT_NE(nullptr, mem);
  ASSERT_TRUE(mem->Run(100).ok());

  // 80 units at 128-byte pages is ~7 chunks x (1 + attrs) pages, far
  // beyond 4 frames: every tick faults and evicts.
  const std::string dir = FreshDir("outofcore_world");
  SimulationConfig config =
      StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1,
                       /*checkpoint_every=*/10);
  config.storage.page_size = 128;
  config.storage.pool_pages = 4;
  auto durable = BuildScenario("battle", config);
  ASSERT_NE(nullptr, durable);
  ASSERT_TRUE(durable->Run(100).ok());
  EXPECT_TRUE(durable->table().Equals(mem->table()))
      << durable->table().DiffString(mem->table());

  const std::string json = durable->MetricsJson();
  EXPECT_NE(std::string::npos, json.find("storage.pool.evictions"));
}

// ----------------------------------------------------------- time travel

TEST(StorageTimeTravelTest, MaterializeRebuildsAnyLoggedTick) {
  const std::string dir = FreshDir("timetravel_world");
  std::vector<EnvironmentTable> states;  // state after each tick 0..27
  {
    auto sim = BuildScenario(
        "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1,
                                   /*checkpoint_every=*/10));
    ASSERT_NE(nullptr, sim);
    for (int64_t t = 0; t < 27; ++t) {
      states.push_back(sim->table().Clone());
      ASSERT_TRUE(sim->Tick().ok());
    }
    states.push_back(sim->table().Clone());
  }

  // Read-only queries: every tick from the last checkpoint (20) onward.
  auto store = WorldStore::Open(
      StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1).storage, nullptr);
  ASSERT_TRUE(store.ok());
  for (int64_t t = 20; t <= 27; ++t) {
    auto world = (*store)->Materialize(t);
    ASSERT_TRUE(world.ok()) << "tick " << t << ": "
                            << world.status().ToString();
    EXPECT_EQ(t, world->tick);
    EXPECT_TRUE(world->table.Equals(states[t]))
        << "tick " << t << ": " << world->table.DiffString(states[t]);
  }
  // Before the checkpoint or past the log end: clean errors.
  EXPECT_EQ(StatusCode::kInvalidArgument,
            (*store)->Materialize(19).status().code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            (*store)->Materialize(28).status().code());
  store->reset();  // release the directory before the live sim reopens it

  // Rewind a live simulation to tick 23 and re-run: same future.
  auto sim = BuildScenario(
      "battle", StorageConfigFor(dir, EvaluatorMode::kIndexed, 1, 1));
  ASSERT_NE(nullptr, sim);
  ASSERT_TRUE(sim->RestoreFrom(dir, 23).ok());
  EXPECT_EQ(23, sim->tick_count());
  ASSERT_TRUE(sim->Run(4).ok());
  EXPECT_TRUE(sim->table().Equals(states[27]))
      << sim->table().DiffString(states[27]);
}

// -------------------------------------------------------- artifact dumps

TEST(DumpArtifactsTest, WritesTheConfiguredBundle) {
  const std::string dir = FreshDir("artifacts_bundle");
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.artifacts.trace_path = dir + "/live_trace.json";  // enables tracer
  config.artifacts.flight_recorder_ticks = 8;
  auto sim = BuildScenario("battle", config);
  ASSERT_NE(nullptr, sim);
  ASSERT_TRUE(sim->Run(5).ok());

  ASSERT_TRUE(sim->DumpArtifacts(dir).ok());
  for (const char* f : {"trace.json", "metrics.json", "flight_record.json"}) {
    std::ifstream in(dir + "/" + f);
    EXPECT_TRUE(in.is_open()) << f;
  }
}

}  // namespace
}  // namespace sgl
