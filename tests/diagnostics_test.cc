// Table-driven error-path coverage: every malformed program must fail
// with the right status code and a message pointing at the problem — a
// modder-facing language lives or dies by its diagnostics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "engine/simulation.h"
#include "game/battle.h"
#include "scenario/scenario.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

struct BadCase {
  const char* name;
  const char* source;
  StatusCode code;
  const char* message_fragment;
};

class Diagnostics : public ::testing::TestWithParam<BadCase> {};

TEST_P(Diagnostics, FailsWithUsefulMessage) {
  const BadCase& c = GetParam();
  auto script = CompileScript(c.source, BattleSchema());
  ASSERT_FALSE(script.ok()) << c.name << " unexpectedly compiled";
  EXPECT_EQ(c.code, script.status().code()) << script.status().ToString();
  EXPECT_NE(std::string::npos,
            script.status().message().find(c.message_fragment))
      << "message was: " << script.status().ToString();
}

const BadCase kBadCases[] = {
    // ---- lexer ----
    {"StrayCharacter", "function main(u) { let x = $3; }",
     StatusCode::kParseError, "unexpected character"},
    // ---- parser ----
    {"MissingSemicolon", "const A = 3", StatusCode::kParseError, "';'"},
    {"EmptyParamList", "function main() { }", StatusCode::kParseError,
     "at least the unit tuple"},
    {"UnterminatedBlock", "function main(u) { let x = 1;",
     StatusCode::kParseError, "statement"},
    {"BadAggregateFunction",
     "aggregate A(u) { select median(e.health) from E e; }\n"
     "function main(u) { let x = A(u); }",
     StatusCode::kParseError, "median"},
    {"SelectWithoutFrom",
     "aggregate A(u) { select count(*) where e.posx > 1; }\n"
     "function main(u) { let x = A(u); }",
     StatusCode::kParseError, "'from'"},
    {"UpdateWithoutSet",
     "action A(u) { update e where e.key = u.key; }\n"
     "function main(u) { perform A(u); }",
     StatusCode::kParseError, "'set'"},
    {"PerformWithoutParens", "function main(u) { perform Fire; }",
     StatusCode::kParseError, "'('"},
    {"DanglingElse", "function main(u) { else perform F(u); }",
     StatusCode::kParseError, "statement"},
    // ---- analyzer: names ----
    {"UnknownAttribute",
     "function main(u) { if u.wisdom > 3 then perform A(u); }\n"
     "action A(u) { update e where e.key = u.key set damage += 1; }",
     StatusCode::kAnalysisError, "wisdom"},
    {"UnknownLocal",
     "action A(u, v) { update e where e.key = u.key set damage += v; }\n"
     "function main(u) { perform A(u, ghost); }",
     StatusCode::kAnalysisError, "ghost"},
    {"UnknownAction", "function main(u) { perform Fireball(u); }",
     StatusCode::kAnalysisError, "Fireball"},
    {"UnknownAggregate", "function main(u) { let x = Census(u); }",
     StatusCode::kAnalysisError, "Census"},
    {"DuplicateConst", "const A = 1; const A = 2;\nfunction main(u) { ; }",
     StatusCode::kAnalysisError, "duplicate const"},
    {"DuplicateFunction",
     "function f(u) { ; }\nfunction f(u) { ; }\nfunction main(u) { ; }",
     StatusCode::kAnalysisError, "duplicate function"},
    // ---- analyzer: typing / tags ----
    {"EffectOnConst",
     "action A(u) { update e where e.key = u.key set health += 5; }\n"
     "function main(u) { perform A(u); }",
     StatusCode::kAnalysisError, "const state"},
    {"SumOpOnMaxAttr",
     "action A(u) { update e where e.key = u.key set inaura += 5; }\n"
     "function main(u) { perform A(u); }",
     StatusCode::kAnalysisError, "combine tag"},
    {"MaxOpOnSumAttr",
     "action A(u) { update e where e.key = u.key set damage max= 5; }\n"
     "function main(u) { perform A(u); }",
     StatusCode::kAnalysisError, "combine tag"},
    // ---- analyzer: structure ----
    {"RandomInAggregate",
     "aggregate A(u) { select sum(e.health) from E e "
     "where e.health > random(1) mod 5; }\n"
     "function main(u) { let x = A(u); }",
     StatusCode::kAnalysisError, "random"},
    {"AggregateInAggregateArg",
     "aggregate N(u) { select count(*) from E e; }\n"
     "aggregate M(u, t) { select count(*) from E e where e.health > t; }\n"
     "function main(u) { let x = M(u, N(u)); }",
     StatusCode::kAnalysisError, "aggregate"},
    {"SelfRecursion",
     "function main(u) { perform main(u); }",
     StatusCode::kAnalysisError, "recursive"},
    {"MutualRecursion",
     "function a(u) { perform b(u); }\nfunction b(u) { perform a(u); }\n"
     "function main(u) { perform a(u); }",
     StatusCode::kAnalysisError, "recursive"},
    {"ArityMismatch",
     "aggregate A(u, r) { select count(*) from E e where e.posx <= r; }\n"
     "function main(u) { let x = A(u); }",
     StatusCode::kAnalysisError, "expects"},
    {"TupleAsValue",
     "action A(u, v) { update e where e.key = u.key set damage += v; }\n"
     "function main(u) { perform A(u, u); }",
     StatusCode::kAnalysisError, "unit tuple"},
    {"ShadowedLet",
     "function main(u) { let a = 1; let a = 2; }",
     StatusCode::kAnalysisError, "shadow"},
    {"RowFuncWithSibling",
     "aggregate A(u) { select nearest(*), count(*) from E e; }\n"
     "function main(u) { let x = A(u); }",
     StatusCode::kAnalysisError, "only select item"},
    {"MainWithExtraParams",
     "function main(u, extra) { ; }",
     StatusCode::kAnalysisError, "exactly one parameter"},
};

INSTANTIATE_TEST_SUITE_P(
    Cases, Diagnostics, ::testing::ValuesIn(kBadCases),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

// Error messages carry source line numbers where available.
TEST(Diagnostics, ParseErrorsCarryLines) {
  auto r = CompileScript("function main(u) {\n\n  let = 1;\n}", BattleSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(std::string::npos, r.status().message().find("line 3"));
}

TEST(Diagnostics, AnalysisErrorsNameTheSchema) {
  auto r = CompileScript("function main(u) { if u.mana > 1 then ; }",
                         BattleSchema());
  ASSERT_FALSE(r.ok());
}

// ---- Explain(): the per-script "Bytecode" block ----

std::unique_ptr<Simulation> ExplainSim(bool compiled) {
  SimulationConfig config;
  config.compiled = compiled;
  auto sim = ScenarioRegistry::Global().BuildSimulation(
      "battle", ScenarioParams{80, 0.02, 5}, config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

TEST(Diagnostics, ExplainShowsBytecodeDisassembly) {
  auto sim = ExplainSim(true);
  ASSERT_NE(sim, nullptr);
  const std::string explain = sim->Explain();
  EXPECT_NE(std::string::npos, explain.find("compiled: on"));
  EXPECT_NE(std::string::npos, explain.find("-- Bytecode --"));
  // Static opcode accounting: batch vs scalar split, register budget, and
  // the hoisted-constant prologue annotation in the disassembly.
  EXPECT_NE(std::string::npos, explain.find("hoisted consts"));
  EXPECT_NE(std::string::npos, explain.find("batch"));
  EXPECT_NE(std::string::npos, explain.find("scalar"));
  EXPECT_NE(std::string::npos, explain.find("hoisted (unit-invariant)"));
  // Before any tick runs there is nothing to report under "executed:".
  EXPECT_EQ(std::string::npos, explain.find("executed:"));

  ASSERT_TRUE(sim->Run(2).ok());
  const std::string after = sim->Explain();
  EXPECT_NE(std::string::npos, after.find("executed:"));
  EXPECT_NE(std::string::npos, after.find("batch dispatches"));
}

TEST(Diagnostics, ExplainReportsCompilationOff) {
  auto sim = ExplainSim(false);
  ASSERT_NE(sim, nullptr);
  const std::string explain = sim->Explain();
  EXPECT_NE(std::string::npos, explain.find("compiled: off"));
  EXPECT_NE(std::string::npos, explain.find("disabled by config"));
  EXPECT_EQ(std::string::npos, explain.find("compiled: on"));
}

}  // namespace
}  // namespace sgl
