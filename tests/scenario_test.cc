// Scenario-library tests: every registered workload must run bit-
// exactly under {naive, indexed} evaluators and {1, 4} worker threads,
// satisfy its own invariant checker throughout, and the registry must
// fail lookups of unknown scenarios with a useful message.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "scenario/scenario.h"

namespace sgl {
namespace {

constexpr int64_t kTicks = 50;

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 150;
  params.density = 0.02;
  params.seed = 11;
  return params;
}

std::unique_ptr<Simulation> BuildOrDie(const std::string& name,
                                       const ScenarioParams& params,
                                       EvaluatorMode mode, int32_t threads) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.threads = threads;
  auto sim = ScenarioRegistry::Global().BuildSimulation(name, params, config);
  EXPECT_TRUE(sim.ok()) << name << ": " << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

// --------------------------------------------------------------- registry

TEST(ScenarioRegistryTest, ListsTheBuiltinLibrary) {
  std::vector<std::string> names = ScenarioRegistry::Global().List();
  ASSERT_GE(names.size(), 7u);
  for (const char* expected :
       {"battle", "formation", "epidemic", "predator_prey", "evacuation",
        "market", "ctf"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing scenario " << expected;
  }
}

TEST(ScenarioRegistryTest, UnknownScenarioIsAClearError) {
  auto result = ScenarioRegistry::Global().Get("starcraft");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("unknown scenario 'starcraft'"), std::string::npos)
      << message;
  // The error names the scenarios that do exist.
  EXPECT_NE(message.find("battle"), std::string::npos) << message;
  EXPECT_NE(message.find("epidemic"), std::string::npos) << message;
}

TEST(ScenarioRegistryTest, BuildSimulationOfUnknownScenarioFails) {
  auto sim = ScenarioRegistry::Global().BuildSimulation(
      "starcraft", SmallParams(), SimulationConfig{});
  ASSERT_FALSE(sim.ok());
  EXPECT_NE(sim.status().ToString().find("unknown scenario"),
            std::string::npos);
}

TEST(ScenarioRegistryTest, RegistrationValidatesTheDefinition) {
  ScenarioRegistry registry;
  ScenarioDef incomplete;
  incomplete.name = "half-baked";
  EXPECT_FALSE(registry.Register(std::move(incomplete)).ok());

  ASSERT_TRUE(RegisterBuiltinScenarios(&registry).ok());
  EXPECT_FALSE(RegisterBuiltinScenarios(&registry).ok())
      << "duplicate registration must fail";
}

TEST(ScenarioRegistryTest, SimulationCarriesTheScenarioName) {
  auto sim = BuildOrDie("market", SmallParams(), EvaluatorMode::kIndexed, 1);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->name(), "market");
  EXPECT_NE(sim->Explain().find("simulation: market"), std::string::npos);
}

// ------------------------------------------------- per-scenario contracts

class ScenarioContractTest : public ::testing::TestWithParam<std::string> {};

// The bit-exactness contract: naive 1-thread, indexed 1-thread, and
// indexed 4-thread simulations of the same scenario agree bit for bit
// after every one of kTicks ticks' worth of evolution, and the
// scenario's invariants hold along the way in every mode.
TEST_P(ScenarioContractTest, NaiveIndexedAndThreadedRunsAreBitExact) {
  const std::string name = GetParam();
  const ScenarioParams params = SmallParams();
  auto naive = BuildOrDie(name, params, EvaluatorMode::kNaive, 1);
  auto indexed = BuildOrDie(name, params, EvaluatorMode::kIndexed, 1);
  auto threaded = BuildOrDie(name, params, EvaluatorMode::kIndexed, 4);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(indexed, nullptr);
  ASSERT_NE(threaded, nullptr);

  auto& registry = ScenarioRegistry::Global();
  for (int64_t tick = 0; tick < kTicks; ++tick) {
    ASSERT_TRUE(naive->Tick().ok()) << name << " naive tick " << tick;
    ASSERT_TRUE(indexed->Tick().ok()) << name << " indexed tick " << tick;
    ASSERT_TRUE(threaded->Tick().ok()) << name << " threaded tick " << tick;
    ASSERT_TRUE(naive->table().Equals(indexed->table()))
        << name << " naive vs indexed diverged at tick " << tick << ":\n"
        << naive->table().DiffString(indexed->table());
    ASSERT_TRUE(indexed->table().Equals(threaded->table()))
        << name << " 1 vs 4 threads diverged at tick " << tick << ":\n"
        << indexed->table().DiffString(threaded->table());
    if (tick % 10 == 9) {
      Status st = registry.CheckInvariants(name, params, *indexed);
      ASSERT_TRUE(st.ok()) << name << " invariant broken at tick " << tick
                           << ": " << st.ToString();
    }
  }
  for (Simulation* sim : {naive.get(), indexed.get(), threaded.get()}) {
    Status st = registry.CheckInvariants(name, params, *sim);
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
  }
}

// A second seed and scale: the contract is not an artifact of one world.
TEST_P(ScenarioContractTest, HoldsAtADifferentSeedAndScale) {
  const std::string name = GetParam();
  ScenarioParams params;
  params.units = 80;
  params.density = 0.03;
  params.seed = 977;
  auto naive = BuildOrDie(name, params, EvaluatorMode::kNaive, 1);
  auto threaded = BuildOrDie(name, params, EvaluatorMode::kIndexed, 4);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(threaded, nullptr);
  ASSERT_TRUE(naive->Run(kTicks).ok());
  ASSERT_TRUE(threaded->Run(kTicks).ok());
  EXPECT_TRUE(naive->table().Equals(threaded->table()))
      << naive->table().DiffString(threaded->table());
  EXPECT_TRUE(
      ScenarioRegistry::Global().CheckInvariants(name, params, *naive).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioContractTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().List()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace sgl
