// Engine integration tests: phases, movement, mechanics, determinism.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "game/battle.h"

namespace sgl {
namespace {

TEST(Scenario, GridSideMatchesDensity) {
  ScenarioConfig config;
  config.num_units = 500;
  config.density = 0.01;
  // 500 units at 1% of cells -> 50000 cells -> side ~224.
  EXPECT_EQ(224, config.GridSide());
  config.density = 0.04;
  EXPECT_EQ(112, config.GridSide());
}

TEST(Scenario, BuildsDistinctPositionsAndArmies) {
  ScenarioConfig config;
  config.num_units = 300;
  config.seed = 5;
  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Schema& s = table->schema();
  AttrId posx = s.Find("posx"), posy = s.Find("posy"),
         player = s.Find("player");
  std::set<std::pair<int64_t, int64_t>> cells;
  int32_t players[2] = {0, 0};
  for (RowId r = 0; r < table->NumRows(); ++r) {
    cells.insert({static_cast<int64_t>(table->Get(r, posx)),
                  static_cast<int64_t>(table->Get(r, posy))});
    players[static_cast<int32_t>(table->Get(r, player))]++;
  }
  EXPECT_EQ(300u, cells.size());  // all distinct
  EXPECT_EQ(150, players[0]);
  EXPECT_EQ(150, players[1]);
}

TEST(Scenario, UnitMixFollowsFractions) {
  ScenarioConfig config;
  config.num_units = 2000;
  config.knight_fraction = 0.5;
  config.archer_fraction = 0.3;
  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok());
  AttrId ut = table->schema().Find("unittype");
  int32_t counts[3] = {0, 0, 0};
  for (RowId r = 0; r < table->NumRows(); ++r) {
    counts[static_cast<int32_t>(table->Get(r, ut))]++;
  }
  EXPECT_NEAR(1000, counts[0], 80);
  EXPECT_NEAR(600, counts[1], 80);
  EXPECT_NEAR(400, counts[2], 80);
}

TEST(BattleScript, CompilesAgainstBattleSchema) {
  auto script = CompileScript(BattleScriptSource(), BattleSchema());
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_GE(script->program.aggregates.size(), 10u);
  EXPECT_GE(script->program.actions.size(), 4u);
  EXPECT_GE(script->main_index, 0);
}

TEST(BattleEngine, RunsTicksAndKeepsInvariants) {
  ScenarioConfig config;
  config.num_units = 120;
  config.seed = 11;
  auto setup = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  Engine& engine = *setup->engine;
  ASSERT_TRUE(engine.Run(20).ok());
  EXPECT_EQ(20, engine.tick_count());
  // Resurrection keeps population constant.
  EXPECT_EQ(120, engine.table().NumRows());
  const Schema& s = engine.table().schema();
  AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
  AttrId posx = s.Find("posx"), posy = s.Find("posy");
  int64_t side = config.GridSide();
  for (RowId r = 0; r < engine.table().NumRows(); ++r) {
    double h = engine.table().Get(r, health);
    EXPECT_GT(h, 0.0);                                // dead were resurrected
    EXPECT_LE(h, engine.table().Get(r, maxh));        // heal capped
    EXPECT_GE(engine.table().Get(r, posx), 0.0);      // in bounds
    EXPECT_LT(engine.table().Get(r, posx), side);
    EXPECT_GE(engine.table().Get(r, posy), 0.0);
    EXPECT_LT(engine.table().Get(r, posy), side);
    // Positions stay on the integer grid.
    EXPECT_EQ(engine.table().Get(r, posx),
              std::floor(engine.table().Get(r, posx)));
  }
}

TEST(BattleEngine, CombatActuallyHappens) {
  ScenarioConfig config;
  config.num_units = 200;
  config.density = 0.05;  // tight grid: armies collide quickly
  config.seed = 3;
  auto setup = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->engine->Run(60).ok());
  EXPECT_GT(setup->mechanics->deaths(), 0) << "no unit ever died in 60 ticks";
}

TEST(BattleEngine, RemovalModeShrinksArmies) {
  ScenarioConfig config;
  config.num_units = 150;
  config.density = 0.06;
  config.seed = 9;
  auto setup = MakeBattle(config, EvaluatorMode::kIndexed, /*resurrect=*/false);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->engine->Run(80).ok());
  EXPECT_LT(setup->engine->table().NumRows(), 150);
}

TEST(BattleEngine, DeterministicAcrossRuns) {
  ScenarioConfig config;
  config.num_units = 80;
  config.seed = 21;
  auto a = MakeBattle(config, EvaluatorMode::kIndexed);
  auto b = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->engine->Run(15).ok());
  ASSERT_TRUE(b->engine->Run(15).ok());
  EXPECT_TRUE(a->engine->table().Equals(b->engine->table()))
      << a->engine->table().DiffString(b->engine->table());
}

TEST(BattleEngine, SeedChangesOutcome) {
  ScenarioConfig a_config;
  a_config.num_units = 80;
  a_config.seed = 1;
  ScenarioConfig b_config = a_config;
  b_config.seed = 2;
  auto a = MakeBattle(a_config, EvaluatorMode::kIndexed);
  auto b = MakeBattle(b_config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->engine->Run(5).ok());
  ASSERT_TRUE(b->engine->Run(5).ok());
  EXPECT_FALSE(a->engine->table().Equals(b->engine->table()));
}

TEST(BattleEngine, PhaseTimesAreRecorded) {
  ScenarioConfig config;
  config.num_units = 60;
  auto setup = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(setup->engine->Run(3).ok());
  const PhaseTimes& times = setup->engine->phase_times();
  EXPECT_EQ(3, times.Count("1:index-build"));
  EXPECT_EQ(3, times.Count("2:decision"));
  EXPECT_EQ(3, times.Count("3:index-build-2"));
  EXPECT_EQ(3, times.Count("4:apply"));
  EXPECT_EQ(3, times.Count("5:movement"));
}

TEST(BattleEngine, ExplainDescribesPlan) {
  ScenarioConfig config;
  config.num_units = 40;
  auto setup = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok());
  std::string plan = setup->engine->DescribePlan();
  EXPECT_NE(std::string::npos, plan.find("divisible-range-tree"));
  EXPECT_NE(std::string::npos, plan.find("kd-nearest"));
  EXPECT_NE(std::string::npos, plan.find("minmax-range-tree"));
  EXPECT_NE(std::string::npos, plan.find("direct-key"));
  EXPECT_NE(std::string::npos, plan.find("area-of-effect"));
  // Multi-query sharing: the SIGHT box over enemies is probed by several
  // aggregates; at least one family must be shared.
  EXPECT_NE(std::string::npos, plan.find("[shared by"));
}

TEST(BattleEngine, NaiveModeAlsoRuns) {
  ScenarioConfig config;
  config.num_units = 50;
  auto setup = MakeBattle(config, EvaluatorMode::kNaive);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->engine->Run(5).ok());
  EXPECT_EQ(50, setup->engine->table().NumRows());
}

// The paper's core claim, as a correctness property: the indexed engine
// is an *optimization*, so naive and indexed simulations must agree
// exactly, tick for tick.
class Equivalence : public ::testing::TestWithParam<
                        std::tuple<int32_t, double, uint64_t>> {};

TEST_P(Equivalence, NaiveAndIndexedBitIdentical) {
  auto [units, density, seed] = GetParam();
  ScenarioConfig config;
  config.num_units = units;
  config.density = density;
  config.seed = seed;
  auto naive = MakeBattle(config, EvaluatorMode::kNaive);
  auto indexed = MakeBattle(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  for (int tick = 0; tick < 12; ++tick) {
    ASSERT_TRUE(naive->engine->Tick().ok());
    ASSERT_TRUE(indexed->engine->Tick().ok());
    ASSERT_TRUE(naive->engine->table().Equals(indexed->engine->table()))
        << "diverged at tick " << tick << ": "
        << naive->engine->table().DiffString(indexed->engine->table());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, Equivalence,
    ::testing::Values(std::make_tuple(30, 0.02, 1),
                      std::make_tuple(80, 0.01, 2),
                      std::make_tuple(80, 0.08, 3),    // dense: heavy combat
                      std::make_tuple(150, 0.04, 4),
                      std::make_tuple(250, 0.01, 5),
                      std::make_tuple(250, 0.06, 6)));

}  // namespace
}  // namespace sgl
