// Engine integration tests: phases, movement, mechanics, determinism.
#include <gtest/gtest.h>

#include "engine/phase.h"
#include "game/battle.h"

namespace sgl {
namespace {

TEST(Scenario, GridSideMatchesDensity) {
  ScenarioConfig config;
  config.num_units = 500;
  config.density = 0.01;
  // 500 units at 1% of cells -> 50000 cells -> side ~224.
  EXPECT_EQ(224, config.GridSide());
  config.density = 0.04;
  EXPECT_EQ(112, config.GridSide());
}

TEST(Scenario, BuildsDistinctPositionsAndArmies) {
  ScenarioConfig config;
  config.num_units = 300;
  config.seed = 5;
  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const Schema& s = table->schema();
  AttrId posx = s.Find("posx"), posy = s.Find("posy"),
         player = s.Find("player");
  std::set<std::pair<int64_t, int64_t>> cells;
  int32_t players[2] = {0, 0};
  for (RowId r = 0; r < table->NumRows(); ++r) {
    cells.insert({static_cast<int64_t>(table->Get(r, posx)),
                  static_cast<int64_t>(table->Get(r, posy))});
    players[static_cast<int32_t>(table->Get(r, player))]++;
  }
  EXPECT_EQ(300u, cells.size());  // all distinct
  EXPECT_EQ(150, players[0]);
  EXPECT_EQ(150, players[1]);
}

TEST(Scenario, UnitMixFollowsFractions) {
  ScenarioConfig config;
  config.num_units = 2000;
  config.knight_fraction = 0.5;
  config.archer_fraction = 0.3;
  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok());
  AttrId ut = table->schema().Find("unittype");
  int32_t counts[3] = {0, 0, 0};
  for (RowId r = 0; r < table->NumRows(); ++r) {
    counts[static_cast<int32_t>(table->Get(r, ut))]++;
  }
  EXPECT_NEAR(1000, counts[0], 80);
  EXPECT_NEAR(600, counts[1], 80);
  EXPECT_NEAR(400, counts[2], 80);
}

TEST(BattleScript, CompilesAgainstBattleSchema) {
  auto script = CompileScript(BattleScriptSource(), BattleSchema());
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_GE(script->program.aggregates.size(), 10u);
  EXPECT_GE(script->program.actions.size(), 4u);
  EXPECT_GE(script->main_index, 0);
}

TEST(BattleEngine, RunsTicksAndKeepsInvariants) {
  ScenarioConfig config;
  config.num_units = 120;
  config.seed = 11;
  auto setup = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  Simulation& sim = *setup->sim;
  ASSERT_TRUE(sim.Run(20).ok());
  EXPECT_EQ(20, sim.tick_count());
  // Resurrection keeps population constant.
  EXPECT_EQ(120, sim.table().NumRows());
  const Schema& s = sim.table().schema();
  AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
  AttrId posx = s.Find("posx"), posy = s.Find("posy");
  int64_t side = config.GridSide();
  for (RowId r = 0; r < sim.table().NumRows(); ++r) {
    double h = sim.table().Get(r, health);
    EXPECT_GT(h, 0.0);                           // dead were resurrected
    EXPECT_LE(h, sim.table().Get(r, maxh));      // heal capped
    EXPECT_GE(sim.table().Get(r, posx), 0.0);    // in bounds
    EXPECT_LT(sim.table().Get(r, posx), side);
    EXPECT_GE(sim.table().Get(r, posy), 0.0);
    EXPECT_LT(sim.table().Get(r, posy), side);
    // Positions stay on the integer grid.
    EXPECT_EQ(sim.table().Get(r, posx), std::floor(sim.table().Get(r, posx)));
  }
}

TEST(BattleEngine, CombatActuallyHappens) {
  ScenarioConfig config;
  config.num_units = 200;
  config.density = 0.05;  // tight grid: armies collide quickly
  config.seed = 3;
  auto setup = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->sim->Run(60).ok());
  EXPECT_GT(setup->mechanics->deaths(), 0) << "no unit ever died in 60 ticks";
}

TEST(BattleEngine, RemovalModeShrinksArmies) {
  ScenarioConfig config;
  config.num_units = 150;
  config.density = 0.06;
  config.seed = 9;
  auto setup =
      MakeBattleSim(config, EvaluatorMode::kIndexed, /*resurrect=*/false);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->sim->Run(80).ok());
  EXPECT_LT(setup->sim->table().NumRows(), 150);
}

TEST(BattleEngine, DeterministicAcrossRuns) {
  ScenarioConfig config;
  config.num_units = 80;
  config.seed = 21;
  auto a = MakeBattleSim(config, EvaluatorMode::kIndexed);
  auto b = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->sim->Run(15).ok());
  ASSERT_TRUE(b->sim->Run(15).ok());
  EXPECT_TRUE(a->sim->table().Equals(b->sim->table()))
      << a->sim->table().DiffString(b->sim->table());
}

TEST(BattleEngine, SeedChangesOutcome) {
  ScenarioConfig a_config;
  a_config.num_units = 80;
  a_config.seed = 1;
  ScenarioConfig b_config = a_config;
  b_config.seed = 2;
  auto a = MakeBattleSim(a_config, EvaluatorMode::kIndexed);
  auto b = MakeBattleSim(b_config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->sim->Run(5).ok());
  ASSERT_TRUE(b->sim->Run(5).ok());
  EXPECT_FALSE(a->sim->table().Equals(b->sim->table()));
}

TEST(BattleEngine, PhaseStatsAreRecorded) {
  ScenarioConfig config;
  config.num_units = 60;
  auto setup = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(setup->sim->Run(3).ok());
  const PhaseStatsRegistry& stats = setup->sim->stats();
  for (const char* phase :
       {phase_names::kIndexBuild, phase_names::kDecisionAction,
        phase_names::kDeferredIndex, phase_names::kApply,
        phase_names::kMovement, phase_names::kMechanics}) {
    bool found = false;
    for (const auto& [name, s] : stats.stats()) {
      if (name == phase) {
        EXPECT_EQ(3, s.invocations()) << phase;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no stats slot for phase " << phase;
  }
}

TEST(BattleEngine, ExplainDescribesPlan) {
  ScenarioConfig config;
  config.num_units = 40;
  auto setup = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(setup.ok());
  std::string plan = setup->sim->DescribePlan();
  EXPECT_NE(std::string::npos, plan.find("divisible-range-tree"));
  EXPECT_NE(std::string::npos, plan.find("kd-nearest"));
  EXPECT_NE(std::string::npos, plan.find("minmax-range-tree"));
  EXPECT_NE(std::string::npos, plan.find("direct-key"));
  EXPECT_NE(std::string::npos, plan.find("area-of-effect"));
  // Multi-query sharing: the SIGHT box over enemies is probed by several
  // aggregates; at least one family must be shared.
  EXPECT_NE(std::string::npos, plan.find("[shared by"));
}

TEST(BattleEngine, NaiveModeAlsoRuns) {
  ScenarioConfig config;
  config.num_units = 50;
  auto setup = MakeBattleSim(config, EvaluatorMode::kNaive);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  ASSERT_TRUE(setup->sim->Run(5).ok());
  EXPECT_EQ(50, setup->sim->table().NumRows());
}

// The paper's core claim, as a correctness property: the indexed engine
// is an *optimization*, so naive and indexed simulations must agree
// exactly, tick for tick.
class Equivalence : public ::testing::TestWithParam<
                        std::tuple<int32_t, double, uint64_t>> {};

TEST_P(Equivalence, NaiveAndIndexedBitIdentical) {
  auto [units, density, seed] = GetParam();
  ScenarioConfig config;
  config.num_units = units;
  config.density = density;
  config.seed = seed;
  auto naive = MakeBattleSim(config, EvaluatorMode::kNaive);
  auto indexed = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  for (int tick = 0; tick < 12; ++tick) {
    ASSERT_TRUE(naive->sim->Tick().ok());
    ASSERT_TRUE(indexed->sim->Tick().ok());
    ASSERT_TRUE(naive->sim->table().Equals(indexed->sim->table()))
        << "diverged at tick " << tick << ": "
        << naive->sim->table().DiffString(indexed->sim->table());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, Equivalence,
    ::testing::Values(std::make_tuple(30, 0.02, 1),
                      std::make_tuple(80, 0.01, 2),
                      std::make_tuple(80, 0.08, 3),    // dense: heavy combat
                      std::make_tuple(150, 0.04, 4),
                      std::make_tuple(250, 0.01, 5),
                      std::make_tuple(250, 0.06, 6)));

}  // namespace
}  // namespace sgl

// The retired Engine shim (engine/engine.h) stays one release as a
// [[deprecated]] header-only wrapper. This is its only remaining user:
// a parity check that the shim still drives the exact simulation the
// facade does, so out-of-tree code on the old API keeps exact behavior
// until the header is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "engine/engine.h"

namespace sgl {
namespace {

TEST(EngineShim, DeprecatedEngineMatchesSimulationFacade) {
  ScenarioConfig config;
  config.num_units = 60;
  config.seed = 17;

  auto table = BuildScenario(config);
  ASSERT_TRUE(table.ok());
  auto script = CompileScript(BattleScriptSource(), BattleSchema());
  ASSERT_TRUE(script.ok());
  const int64_t side = config.GridSide();
  BattleMechanics mechanics(side, side, /*resurrect=*/true);
  EngineConfig legacy_config;
  legacy_config.eval_mode = EvaluatorMode::kIndexed;
  legacy_config.seed = config.seed;
  legacy_config.grid_width = side;
  legacy_config.grid_height = side;
  legacy_config.step_per_tick = D20::kWalkPerTick;
  auto engine = Engine::Create(script.MoveValue(), table.MoveValue(),
                               &mechanics, legacy_config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto facade = MakeBattleSim(config, EvaluatorMode::kIndexed);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  ASSERT_TRUE((*engine)->Run(10).ok());
  ASSERT_TRUE(facade->sim->Run(10).ok());
  EXPECT_TRUE((*engine)->table().Equals(facade->sim->table()))
      << (*engine)->table().DiffString(facade->sim->table());

  // The legacy phase_times view still reports the historical keys.
  const PhaseTimes& times = (*engine)->phase_times();
  EXPECT_EQ(10, times.Count("1:index-build"));
  EXPECT_EQ(10, times.Count("2:decision"));
  EXPECT_EQ(10, times.Count("4:apply"));
}

}  // namespace
}  // namespace sgl
#pragma GCC diagnostic pop
