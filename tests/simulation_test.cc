// Simulation facade tests: the composable phase pipeline, multi-script
// sessions, owned/function mechanics, stats, and Snapshot/Restore.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/simulation.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

// ------------------------------------------------------------------------
// A two-species farm: wolves hunt (direct-key bites, kd-tree nearest
// probes), sheep flee and cast a calming area-of-effect aura (deferred
// max-combine action). Two scripts — one per species — dispatched by the
// `species` attribute; all arithmetic integral so naive and indexed modes
// must agree bit for bit.

constexpr double kWolf = 0.0;
constexpr double kSheep = 1.0;

const char* kWolfScript = R"SGL(
  const SHEEP = 1;
  const BITE_RANGE = 2;
  const SIGHT = 24;

  aggregate NearestPrey(u) {
    select nearest(*) from E e
    where e.species = SHEEP
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  action Bite(u, target, dmg) {
    update e where e.key = target set damage += dmg;
  }
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    let prey = NearestPrey(u);
    if prey.found = 1 and prey.dist2 <= BITE_RANGE * BITE_RANGE then
      perform Bite(u, prey.key, 2 + random(1) mod 3);
    else if prey.found = 1 then
      perform Move(u, prey.posx - u.posx, prey.posy - u.posy);
    else
      perform Move(u, random(2) mod 3 - 1, random(3) mod 3 - 1);
  }
)SGL";

const char* kSheepScript = R"SGL(
  const WOLF = 0;
  const SHEEP = 1;
  const SIGHT = 16;
  const AURA = 6;

  aggregate NearestWolf(u) {
    select nearest(*) from E e
    where e.species = WOLF
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }
  aggregate FlockNear(u) {
    select count(*) from E e
    where e.species = SHEEP and e.key <> u.key
      and e.posx >= u.posx - AURA and e.posx <= u.posx + AURA
      and e.posy >= u.posy - AURA and e.posy <= u.posy + AURA;
  }

  action Flee(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }
  action CalmAura(u) {
    update e where e.species = SHEEP
      and e.posx >= u.posx - AURA and e.posx <= u.posx + AURA
      and e.posy >= u.posy - AURA and e.posy <= u.posy + AURA
      set heal max= 1;
  }

  function main(u) {
    let hunter = NearestWolf(u);
    if hunter.found = 1 then {
      let away = (u.posx, u.posy) - (hunter.posx, hunter.posy);
      perform Flee(u, away.x, away.y);
    }
    else if FlockNear(u) >= 2 then
      perform CalmAura(u);
  }
)SGL";

Schema FarmSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("species", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posx", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("posy", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("health", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("maxhealth", CombineType::kConst).ok());
  EXPECT_TRUE(s.AddAttribute("damage", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("heal", CombineType::kMax).ok());
  EXPECT_TRUE(s.AddAttribute("movex", CombineType::kSum).ok());
  EXPECT_TRUE(s.AddAttribute("movey", CombineType::kSum).ok());
  return s;
}

constexpr int64_t kGrid = 48;

EnvironmentTable FarmTable(int32_t wolves, int32_t sheep, uint64_t seed) {
  Schema schema = FarmSchema();
  EnvironmentTable table(schema);
  Xoshiro256 rng(seed);
  std::set<std::pair<int64_t, int64_t>> used;
  auto place = [&]() {
    while (true) {
      int64_t x = rng.NextBounded(kGrid), y = rng.NextBounded(kGrid);
      if (used.insert({x, y}).second) return std::make_pair(x, y);
    }
  };
  for (int32_t i = 0; i < wolves; ++i) {
    auto [x, y] = place();
    //                 species          posx       posy        hp  max d h mx my
    EXPECT_TRUE(table
                    .AddRow({kWolf, double(x), double(y), 20, 20, 0,
                             0, 0, 0})
                    .ok());
  }
  for (int32_t i = 0; i < sheep; ++i) {
    auto [x, y] = place();
    EXPECT_TRUE(table
                    .AddRow({kSheep, double(x), double(y), 8, 8, 0,
                             0, 0, 0})
                    .ok());
  }
  return table;
}

/// Farm mechanics via function hooks: heal/damage resolution, then
/// deterministic resurrection so the hunt never runs out of prey.
void RegisterFarmMechanics(SimulationBuilder* builder) {
  builder->OnApplyEffects([](EnvironmentTable* table, const EffectBuffer&,
                             const TickRandom&) {
    const Schema& s = table->schema();
    AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
    AttrId damage = s.Find("damage"), heal = s.Find("heal");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      double h = table->Get(r, health) - table->Get(r, damage) +
                 table->Get(r, heal);
      table->Set(r, health, std::min(h, table->Get(r, maxh)));
    }
    return Status::OK();
  });
  builder->OnEndTick([](EnvironmentTable* table, const TickRandom& rnd) {
    const Schema& s = table->schema();
    AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
    AttrId posx = s.Find("posx"), posy = s.Find("posy");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, health) > 0.0) continue;
      int64_t key = table->KeyAt(r);
      table->Set(r, posx, double(rnd.DrawBounded(key, 501, kGrid)));
      table->Set(r, posy, double(rnd.DrawBounded(key, 502, kGrid)));
      table->Set(r, health, table->Get(r, maxh));
    }
    return Status::OK();
  });
}

Result<std::unique_ptr<Simulation>> MakeFarm(EvaluatorMode mode, uint64_t seed,
                                             SimulationBuilder* out = nullptr) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.seed = seed;
  config.grid_width = kGrid;
  config.grid_height = kGrid;
  config.step_per_tick = 2.0;

  auto wolf = CompileScript(kWolfScript, FarmSchema());
  auto sheep = CompileScript(kSheepScript, FarmSchema());
  if (!wolf.ok()) return wolf.status();
  if (!sheep.ok()) return sheep.status();

  SimulationBuilder local;
  SimulationBuilder& builder = out != nullptr ? *out : local;
  builder.SetTable(FarmTable(12, 25, seed))
      .SetConfig(config)
      .DispatchBy("species")
      .AddScript("wolves", wolf.MoveValue(), kWolf)
      .AddScript("sheep", sheep.MoveValue(), kSheep);
  RegisterFarmMechanics(&builder);
  return builder.Build();
}

// ------------------------------------------------------------------------

TEST(SchemaRequire, FindsAndFailsLoudly) {
  Schema s = FarmSchema();
  auto ok = s.Require("health");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(s.Find("health"), *ok);
  auto missing = s.Require("mana");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, missing.status().code());
  EXPECT_NE(std::string::npos, missing.status().message().find("mana"));
}

TEST(SimulationBuilder, RejectsMissingMovementAttribute) {
  auto script = CompileScript(kWolfScript, FarmSchema());
  ASSERT_TRUE(script.ok());
  SimulationConfig config;
  config.move_x_attr = "no_such_attr";
  SimulationBuilder builder;
  builder.SetTable(FarmTable(2, 2, 1))
      .SetConfig(config)
      .AddScript("wolves", script.MoveValue());
  auto sim = builder.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, sim.status().code());
  EXPECT_NE(std::string::npos, sim.status().message().find("no_such_attr"));
}

TEST(SimulationBuilder, RejectsMultipleScriptsWithoutDispatch) {
  auto a = CompileScript(kWolfScript, FarmSchema());
  auto b = CompileScript(kSheepScript, FarmSchema());
  ASSERT_TRUE(a.ok() && b.ok());
  SimulationBuilder builder;
  builder.SetTable(FarmTable(2, 2, 1))
      .AddScript("a", a.MoveValue())
      .AddScript("b", b.MoveValue());
  auto sim = builder.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, sim.status().code());
}

TEST(SimulationBuilder, RejectsDuplicateDispatchValues) {
  auto a = CompileScript(kWolfScript, FarmSchema());
  auto b = CompileScript(kSheepScript, FarmSchema());
  ASSERT_TRUE(a.ok() && b.ok());
  SimulationBuilder builder;
  builder.SetTable(FarmTable(2, 2, 1))
      .DispatchBy("species")
      .AddScript("a", a.MoveValue(), 0.0)
      .AddScript("b", b.MoveValue(), 0.0);
  auto sim = builder.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kAlreadyExists, sim.status().code());
}

TEST(SimulationBuilder, RejectsSchemaMismatch) {
  Schema other;
  ASSERT_TRUE(other.AddAttribute("species", CombineType::kConst).ok());
  ASSERT_TRUE(other.AddAttribute("posx", CombineType::kConst).ok());
  ASSERT_TRUE(other.AddAttribute("posy", CombineType::kConst).ok());
  ASSERT_TRUE(other.AddAttribute("movex", CombineType::kSum).ok());
  ASSERT_TRUE(other.AddAttribute("movey", CombineType::kSum).ok());
  const char* tiny = R"SGL(
    action Move(u, dx, dy) {
      update e where e.key = u.key set movex += dx, movey += dy;
    }
    function main(u) { perform Move(u, 1, 0); }
  )SGL";
  auto script = CompileScript(tiny, other);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  SimulationBuilder builder;
  builder.SetTable(FarmTable(2, 2, 1)).AddScript("tiny", script.MoveValue());
  auto sim = builder.Build();
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, sim.status().code());
}

TEST(Simulation, DefaultPipelineOrder) {
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 7);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  std::vector<std::string> expected = {
      phase_names::kIndexBuild, phase_names::kDecisionAction,
      phase_names::kDeferredIndex, phase_names::kApply,
      phase_names::kMovement, phase_names::kMechanics};
  EXPECT_EQ(expected, (*sim)->PhaseNames());
  EXPECT_EQ(2, (*sim)->NumScripts());
}

// The paper's core claim through the new facade: the indexed engine is an
// optimization, so a two-script battle must be bit-identical between the
// naive and indexed evaluators, tick for tick, for 100 ticks.
TEST(Simulation, TwoScriptNaiveAndIndexedBitIdentical100Ticks) {
  auto naive = MakeFarm(EvaluatorMode::kNaive, 2026);
  auto indexed = MakeFarm(EvaluatorMode::kIndexed, 2026);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  for (int tick = 0; tick < 100; ++tick) {
    ASSERT_TRUE((*naive)->Tick().ok());
    ASSERT_TRUE((*indexed)->Tick().ok());
    ASSERT_TRUE((*naive)->table().Equals((*indexed)->table()))
        << "diverged at tick " << tick << ": "
        << (*naive)->table().DiffString((*indexed)->table());
  }
  // Both species actually acted: some sheep took damage (wolf script) and
  // the calming aura fired (sheep script's deferred AOE action).
  const PhaseStats* decision =
      (*indexed)->stats().Find(phase_names::kDecisionAction);
  ASSERT_NE(nullptr, decision);
  EXPECT_EQ(100 * (*indexed)->table().NumRows(), decision->rows_scanned());
  EXPECT_GT(decision->index_probes(), 0);
}

TEST(Simulation, MultiScriptDispatchRunsTheRightScript) {
  // Wolves-only world: the sheep script must never run, so no heal effect
  // ever appears; wolves still wander via their own script.
  auto wolf = CompileScript(kWolfScript, FarmSchema());
  auto sheep = CompileScript(kSheepScript, FarmSchema());
  ASSERT_TRUE(wolf.ok() && sheep.ok());
  SimulationConfig config;
  config.grid_width = kGrid;
  config.grid_height = kGrid;
  SimulationBuilder builder;
  builder.SetTable(FarmTable(6, 0, 3))
      .SetConfig(config)
      .DispatchBy("species")
      .AddScript("wolves", wolf.MoveValue(), kWolf)
      .AddScript("sheep", sheep.MoveValue(), kSheep);
  auto sim = builder.Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE((*sim)->Run(5).ok());
  const EnvironmentTable& t = (*sim)->table();
  AttrId heal = t.schema().Find("heal");
  for (RowId r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(0.0, t.Get(r, heal));
  }
}

TEST(Simulation, UnmatchedDispatchValueFailsWithoutDefault) {
  auto wolf = CompileScript(kWolfScript, FarmSchema());
  ASSERT_TRUE(wolf.ok());
  EnvironmentTable table = FarmTable(1, 1, 5);  // has a kSheep row
  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .DispatchBy("species")
      .AddScript("wolves", wolf.MoveValue(), kWolf);
  auto sim = builder.Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  Status st = (*sim)->Tick();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kExecutionError, st.code());
}

TEST(Simulation, UnmatchedDispatchValueFallsBackToDefault) {
  auto wolf = CompileScript(kWolfScript, FarmSchema());
  auto sheep = CompileScript(kSheepScript, FarmSchema());
  ASSERT_TRUE(wolf.ok() && sheep.ok());
  SimulationBuilder builder;
  builder.SetTable(FarmTable(1, 1, 5))
      .DispatchBy("species")
      .AddScript("wolves", wolf.MoveValue(), kWolf)
      .AddScript("everyone-else", sheep.MoveValue());  // default
  auto sim = builder.Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_TRUE((*sim)->Tick().ok());
}

/// A user phase that watches the world each tick.
class CensusPhase : public TickPhase {
 public:
  explicit CensusPhase(std::vector<int64_t>* ticks_seen,
                       std::vector<int32_t>* rows_seen)
      : TickPhase("census"), ticks_seen_(ticks_seen), rows_seen_(rows_seen) {}

  Status Run(TickContext* ctx) override {
    ticks_seen_->push_back(ctx->tick);
    rows_seen_->push_back(ctx->table->NumRows());
    ctx->stats->AddRowsScanned(ctx->table->NumRows());
    return Status::OK();
  }

 private:
  std::vector<int64_t>* ticks_seen_;
  std::vector<int32_t>* rows_seen_;
};

TEST(Simulation, CustomPhaseObservesEveryTick) {
  std::vector<int64_t> ticks_seen;
  std::vector<int32_t> rows_seen;
  SimulationBuilder builder;
  builder.InsertPhaseAfter(
      phase_names::kApply,
      std::make_unique<CensusPhase>(&ticks_seen, &rows_seen));
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 9, &builder);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  // The custom phase sits right after apply.
  std::vector<std::string> names = (*sim)->PhaseNames();
  auto it = std::find(names.begin(), names.end(), "census");
  ASSERT_NE(names.end(), it);
  EXPECT_EQ(phase_names::kApply, *(it - 1));

  ASSERT_TRUE((*sim)->Run(7).ok());
  ASSERT_EQ(7u, ticks_seen.size());
  for (int64_t t = 0; t < 7; ++t) EXPECT_EQ(t, ticks_seen[t]);
  for (int32_t rows : rows_seen) EXPECT_EQ(37, rows);  // 12 wolves + 25 sheep

  const PhaseStats* census = (*sim)->stats().Find("census");
  ASSERT_NE(nullptr, census);
  EXPECT_EQ(7, census->invocations());
  EXPECT_EQ(7 * 37, census->rows_scanned());
}

TEST(Simulation, CustomPhaseDoesNotPerturbDeterminism) {
  std::vector<int64_t> ticks_seen;
  std::vector<int32_t> rows_seen;
  SimulationBuilder builder;
  builder.AddPhase(std::make_unique<CensusPhase>(&ticks_seen, &rows_seen));
  auto with_phase = MakeFarm(EvaluatorMode::kIndexed, 13, &builder);
  auto without = MakeFarm(EvaluatorMode::kIndexed, 13);
  ASSERT_TRUE(with_phase.ok() && without.ok());
  ASSERT_TRUE((*with_phase)->Run(20).ok());
  ASSERT_TRUE((*without)->Run(20).ok());
  EXPECT_TRUE((*with_phase)->table().Equals((*without)->table()))
      << (*with_phase)->table().DiffString((*without)->table());
}

TEST(Simulation, DisableMovementFreezesPositions) {
  SimulationBuilder builder;
  builder.DisablePhase(phase_names::kMovement);
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 17, &builder);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  const EnvironmentTable before = (*sim)->table().Clone();
  ASSERT_TRUE((*sim)->Run(5).ok());
  const EnvironmentTable& after = (*sim)->table();
  AttrId posx = after.schema().Find("posx"), posy = after.schema().Find("posy");
  bool any_resurrected = false;
  for (RowId r = 0; r < after.NumRows(); ++r) {
    // Positions only change through resurrection (full health afterwards).
    if (after.Get(r, posx) != before.Get(r, posx) ||
        after.Get(r, posy) != before.Get(r, posy)) {
      any_resurrected = true;
    }
  }
  // With nobody moving, wolves rarely reach prey in 5 ticks; whether or
  // not anyone died, the movement phase itself must not have run.
  EXPECT_EQ(nullptr, (*sim)->stats().Find(phase_names::kMovement));
  (void)any_resurrected;
}

TEST(Simulation, SetPhaseOrderReordersPipeline) {
  SimulationBuilder builder;
  builder.SetPhaseOrder({phase_names::kIndexBuild,
                         phase_names::kDecisionAction,
                         phase_names::kDeferredIndex, phase_names::kApply,
                         phase_names::kMechanics, phase_names::kMovement});
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 19, &builder);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  std::vector<std::string> names = (*sim)->PhaseNames();
  EXPECT_EQ(phase_names::kMovement, names.back());
  ASSERT_TRUE((*sim)->Run(3).ok());
}

TEST(Simulation, CheckpointRestoreReplaysDeterministically) {
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 4242);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE((*sim)->Run(30).ok());

  const std::string dir = ::testing::TempDir() + "/sim_ckpt";
  ASSERT_TRUE((*sim)->Checkpoint(dir).ok());
  const EnvironmentTable at_checkpoint = (*sim)->table().Clone();

  ASSERT_TRUE((*sim)->Run(20).ok());
  const EnvironmentTable first_run = (*sim)->table().Clone();
  EXPECT_FALSE(first_run.Equals(at_checkpoint));  // the world moved on

  ASSERT_TRUE((*sim)->RestoreFrom(dir).ok());
  EXPECT_EQ(30, (*sim)->tick_count());
  EXPECT_TRUE((*sim)->table().Equals(at_checkpoint));

  ASSERT_TRUE((*sim)->Run(20).ok());
  EXPECT_EQ(50, (*sim)->tick_count());
  EXPECT_TRUE((*sim)->table().Equals(first_run))
      << "replay diverged: " << (*sim)->table().DiffString(first_run);
}

TEST(Simulation, RestoreRejectsForeignSchema) {
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 23);
  ASSERT_TRUE(sim.ok());
  // Plant a snapshot whose schema names a different world.
  Schema other;
  ASSERT_TRUE(other.AddAttribute("something", CombineType::kConst).ok());
  SimulationSnapshot bogus{EnvironmentTable(other), 0};
  const std::string dir = ::testing::TempDir() + "/foreign_ckpt";
  ASSERT_TRUE((*sim)->Checkpoint(dir).ok());
  std::string bytes;
  ASSERT_TRUE(bogus.SerializeTo(&bytes).ok());
  std::ofstream out(dir + "/snapshot.sgl", std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();
  Status st = (*sim)->RestoreFrom(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());

  // And restoring a missing directory is NotFound, not a crash.
  EXPECT_EQ(StatusCode::kNotFound,
            (*sim)->RestoreFrom(::testing::TempDir() + "/no_such_ckpt").code());
}

TEST(Simulation, DeprecatedSnapshotShimsMatchTheFacade) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 77);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(5).ok());
  SimulationSnapshot snap = (*sim)->Snapshot();
  EXPECT_EQ(5, snap.tick_count);
  ASSERT_TRUE((*sim)->Run(5).ok());
  ASSERT_TRUE((*sim)->Restore(snap).ok());
  EXPECT_EQ(5, (*sim)->tick_count());
  EXPECT_TRUE((*sim)->table().Equals(snap.table));
#pragma GCC diagnostic pop
}

TEST(Simulation, ExplainCoversAllScripts) {
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 29);
  ASSERT_TRUE(sim.ok());
  std::string explain = (*sim)->Explain();
  EXPECT_NE(std::string::npos, explain.find("script 'wolves'"));
  EXPECT_NE(std::string::npos, explain.find("script 'sheep'"));
  EXPECT_NE(std::string::npos, explain.find("kd-nearest"));
  EXPECT_NE(std::string::npos, explain.find("area-of-effect"));
  EXPECT_NE(std::string::npos, explain.find("logical plan"));
}

TEST(Simulation, OwnedMechanicsViaSetMechanics) {
  // The same farm with mechanics as an owned GameMechanics object instead
  // of hooks; results must match the hook-registered build exactly.
  class FarmMechanics : public GameMechanics {
   public:
    Status ApplyEffects(EnvironmentTable* table, const EffectBuffer&,
                        const TickRandom&) override {
      const Schema& s = table->schema();
      AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
      AttrId damage = s.Find("damage"), heal = s.Find("heal");
      for (RowId r = 0; r < table->NumRows(); ++r) {
        double h = table->Get(r, health) - table->Get(r, damage) +
                   table->Get(r, heal);
        table->Set(r, health, std::min(h, table->Get(r, maxh)));
      }
      return Status::OK();
    }
    Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
      const Schema& s = table->schema();
      AttrId health = s.Find("health"), maxh = s.Find("maxhealth");
      AttrId posx = s.Find("posx"), posy = s.Find("posy");
      for (RowId r = 0; r < table->NumRows(); ++r) {
        if (table->Get(r, health) > 0.0) continue;
        int64_t key = table->KeyAt(r);
        table->Set(r, posx, double(rnd.DrawBounded(key, 501, kGrid)));
        table->Set(r, posy, double(rnd.DrawBounded(key, 502, kGrid)));
        table->Set(r, health, table->Get(r, maxh));
      }
      return Status::OK();
    }
  };

  auto wolf = CompileScript(kWolfScript, FarmSchema());
  auto sheep = CompileScript(kSheepScript, FarmSchema());
  ASSERT_TRUE(wolf.ok() && sheep.ok());
  SimulationConfig config;
  config.seed = 2026;
  config.grid_width = kGrid;
  config.grid_height = kGrid;
  config.step_per_tick = 2.0;
  SimulationBuilder builder;
  builder.SetTable(FarmTable(12, 25, 2026))
      .SetConfig(config)
      .DispatchBy("species")
      .AddScript("wolves", wolf.MoveValue(), kWolf)
      .AddScript("sheep", sheep.MoveValue(), kSheep)
      .SetMechanics(std::make_unique<FarmMechanics>());
  auto owned = builder.Build();
  ASSERT_TRUE(owned.ok()) << owned.status().ToString();

  auto hooks = MakeFarm(EvaluatorMode::kIndexed, 2026);
  ASSERT_TRUE(hooks.ok());
  ASSERT_TRUE((*owned)->Run(25).ok());
  ASSERT_TRUE((*hooks)->Run(25).ok());
  EXPECT_TRUE((*owned)->table().Equals((*hooks)->table()))
      << (*owned)->table().DiffString((*hooks)->table());
}

TEST(Simulation, StatsRecordEveryBuiltInPhase) {
  auto sim = MakeFarm(EvaluatorMode::kIndexed, 31);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run(4).ok());
  for (const char* name :
       {phase_names::kIndexBuild, phase_names::kDecisionAction,
        phase_names::kDeferredIndex, phase_names::kApply,
        phase_names::kMovement, phase_names::kMechanics}) {
    const PhaseStats* stats = (*sim)->stats().Find(name);
    ASSERT_NE(nullptr, stats) << name;
    EXPECT_EQ(4, stats->invocations()) << name;
  }
  // The registry renders in pipeline order.
  std::string rendered = (*sim)->stats().ToString();
  EXPECT_LT(rendered.find(phase_names::kIndexBuild),
            rendered.find(phase_names::kMechanics));
}

}  // namespace
}  // namespace sgl
