#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sgl {
namespace {

TEST(Status, OkIsOk) {
  Status st = Status::OK();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ("OK", st.ToString());
}

TEST(Status, ErrorCarriesMessage) {
  Status st = Status::ParseError("unexpected token '", ";", "' at line ", 3);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kParseError, st.code());
  EXPECT_EQ("Parse error: unexpected token ';' at line 3", st.ToString());
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kPlanError,
        StatusCode::kExecutionError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE("Unknown", StatusCodeName(c));
  }
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::Invalid("odd: ", x);
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SGL_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(Result, ValueAndError) {
  Result<int> ok = HalfOf(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(5, *ok);

  Result<int> bad = HalfOf(7);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, bad.status().code());
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(4, out);
  EXPECT_FALSE(UseHalf(9, &out).ok());
}

TEST(TickRandom, DeterministicWithinTick) {
  TickRandom r(12345, 7);
  EXPECT_EQ(r.Draw(1, 0), r.Draw(1, 0));
  EXPECT_EQ(r.DrawBounded(3, 2, 100), r.DrawBounded(3, 2, 100));
}

TEST(TickRandom, VariesAcrossTicksUnitsAndIndexes) {
  TickRandom t0(12345, 0);
  TickRandom t1(12345, 1);
  EXPECT_NE(t0.Draw(1, 0), t1.Draw(1, 0));  // across ticks
  EXPECT_NE(t0.Draw(1, 0), t0.Draw(2, 0));  // across units
  EXPECT_NE(t0.Draw(1, 0), t0.Draw(1, 1));  // across indexes
}

TEST(TickRandom, BoundedIsInRange) {
  TickRandom r(99, 3);
  for (int64_t i = 0; i < 1000; ++i) {
    int64_t v = r.DrawBounded(i, 0, 20);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Xoshiro, ReproducibleAndCoversRange) {
  Xoshiro256 a(42), b(42);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t va = a.NextBounded(10);
    EXPECT_EQ(va, b.NextBounded(10));
    seen.insert(va);
    double d = a.NextDouble();
    b.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(10u, seen.size());
}

TEST(Xoshiro, NextInRangeInclusive) {
  Xoshiro256 r(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.NextInRange(-2, 2));
  EXPECT_EQ(5u, seen.size());
}

TEST(StringUtil, JoinRepeatFormat) {
  EXPECT_EQ("a, b, c", Join({"a", "b", "c"}, ", "));
  EXPECT_EQ("", Join({}, ","));
  EXPECT_EQ("--", Repeat("-", 2));
  EXPECT_EQ("", Repeat("x", 0));
  EXPECT_EQ("1.500", FormatDouble(1.5));
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(PhaseTimes, AccumulatesByName) {
  PhaseTimes pt;
  pt.Add("decision", 0.5);
  pt.Add("decision", 0.25);
  pt.Add("index", 1.0);
  EXPECT_DOUBLE_EQ(0.75, pt.Total("decision"));
  EXPECT_EQ(2, pt.Count("decision"));
  EXPECT_DOUBLE_EQ(0.0, pt.Total("missing"));
  pt.Clear();
  EXPECT_EQ(0, pt.Count("decision"));
}

TEST(PhaseTimes, ScopedTimerAdds) {
  PhaseTimes pt;
  {
    ScopedPhaseTimer t(&pt, "scope");
  }
  EXPECT_EQ(1, pt.Count("scope"));
  EXPECT_GE(pt.Total("scope"), 0.0);
}

}  // namespace
}  // namespace sgl
