// Adaptive-evaluator tests: the cost-based per-family strategy choice
// (src/opt/cost.h, src/opt/adaptive_provider.h) must never change what a
// simulation computes — only how. Every registered scenario runs 50
// ticks in lockstep under adaptive {1, 4}-thread configurations against
// the naive reference; a forced-churn configuration pins every divisible
// family to the incremental range-tree path and must still match; and
// the range-tree delta overlay is checked directly against from-scratch
// rebuilds.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "geom/range_tree.h"
#include "opt/adaptive_provider.h"
#include "opt/cost.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace sgl {
namespace {

constexpr int64_t kTicks = 50;

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 150;
  params.density = 0.02;
  params.seed = 11;
  return params;
}

std::unique_ptr<Simulation> BuildOrDie(const std::string& name,
                                       const ScenarioParams& params,
                                       EvaluatorMode mode, int32_t threads) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.threads = threads;
  auto sim = ScenarioRegistry::Global().BuildSimulation(name, params, config);
  EXPECT_TRUE(sim.ok()) << name << ": " << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

/// Pin every session's adaptive provider to `choice` (nullptr resets).
void ForceChoice(Simulation* sim, const PhysicalChoice* choice) {
  for (auto& session : sim->sessions()) {
    if (session->provider == nullptr) continue;
    static_cast<AdaptiveAggregateProvider*>(session->provider.get())
        ->ForceChoiceForTest(choice);
  }
}

// ------------------------------------------------------------- cost model

TEST(CostModelTest, ColdFamilyWithFewProbesScans) {
  CostModel model;
  FamilyCostInputs in;
  in.rows = 10000;
  in.expected_probes = 2;  // two probes cannot amortize a 10k-row build
  in.build_passes = 3;
  EXPECT_EQ(model.Choose(in).choice, PhysicalChoice::kScan);
}

TEST(CostModelTest, HotFamilyRebuilds) {
  CostModel model;
  FamilyCostInputs in;
  in.rows = 10000;
  in.expected_probes = 10000;  // every unit probes: index pays for itself
  in.build_passes = 3;
  EXPECT_EQ(model.Choose(in).choice, PhysicalChoice::kRebuild);
}

TEST(CostModelTest, LowChurnDivisibleFamilyGoesIncremental) {
  CostModel model;
  FamilyCostInputs in;
  in.rows = 10000;
  in.expected_probes = 10000;
  in.build_passes = 3;
  in.divisible = true;
  in.maintainable = true;
  in.dirty_rows = 5;
  in.overlay = 0;
  CostDecision d = model.Choose(in);
  EXPECT_EQ(d.choice, PhysicalChoice::kIncremental);
  EXPECT_LT(d.est.incremental, d.est.rebuild);
}

TEST(CostModelTest, HighChurnFallsBackToRebuild) {
  CostModel model;
  FamilyCostInputs in;
  in.rows = 10000;
  in.expected_probes = 10000;
  in.build_passes = 3;
  in.divisible = true;
  in.maintainable = true;
  in.dirty_rows = 9500;  // nearly every row changed: rebuild is cheaper
  in.overlay = 0;
  EXPECT_EQ(model.Choose(in).choice, PhysicalChoice::kRebuild);
}

TEST(CostModelTest, AccumulatedOverlayForcesARebuild) {
  CostModel model;
  FamilyCostInputs in;
  in.rows = 10000;
  in.expected_probes = 10000;
  in.build_passes = 3;
  in.divisible = true;
  in.maintainable = true;
  in.dirty_rows = 5;
  in.overlay = 50000;  // every probe would pay a huge linear correction
  EXPECT_EQ(model.Choose(in).choice, PhysicalChoice::kRebuild);
}

TEST(CostModelTest, EwmaTracksDemandDeterministically) {
  CountEwma a, b;
  EXPECT_DOUBLE_EQ(a.Get(42.0), 42.0) << "unseeded estimate uses fallback";
  for (int64_t obs : {100, 100, 0, 0, 0}) {
    a.Observe(obs);
    b.Observe(obs);
  }
  EXPECT_DOUBLE_EQ(a.Get(0.0), b.Get(0.0))
      << "identical observations must give identical estimates";
  EXPECT_LT(a.Get(0.0), 100.0);
  EXPECT_GT(a.Get(0.0), 0.0) << "EWMA decays, it does not forget instantly";
}

// --------------------------------------------------- range-tree delta apply

/// From-scratch oracle: rebuild a tree over `points` and compare every
/// aggregate answer over a probe grid against `maintained`.
void ExpectTreesAgree(const LayeredRangeTree2D& maintained,
                      const std::vector<PointRef>& points,
                      const std::vector<std::vector<double>>& terms) {
  LayeredRangeTree2D fresh(points, terms);
  for (double xlo = -2; xlo <= 10; xlo += 3) {
    for (double ylo = -2; ylo <= 10; ylo += 3) {
      for (double size : {2.0, 5.0, 100.0}) {
        Rect rect{xlo, xlo + size, ylo, ylo + size};
        AggResult want = fresh.Aggregate(rect);
        AggResult got = maintained.Aggregate(rect);
        ASSERT_EQ(want.count, got.count)
            << "count diverged on [" << xlo << "," << xlo + size << "]x["
            << ylo << "," << ylo + size << "]";
        ASSERT_EQ(want.sums, got.sums) << "sums diverged";
      }
    }
  }
}

TEST(RangeTreeDeltaTest, OverlayMatchesFromScratchRebuild) {
  // Integral coordinates and terms: the determinism contract under which
  // overlay arithmetic is exact.
  Xoshiro256 rng(7);
  std::vector<PointRef> points;
  std::vector<std::vector<double>> terms(2);
  const int32_t n = 200;
  for (int32_t i = 0; i < n; ++i) {
    points.push_back(PointRef{static_cast<double>(rng.Next() % 9),
                              static_cast<double>(rng.Next() % 9), i});
    terms[0].push_back(static_cast<double>(rng.Next() % 100));
    terms[1].push_back(static_cast<double>(rng.Next() % 100));
  }
  LayeredRangeTree2D tree(points, terms);

  // Churn 40 of the 200 points through remove+insert (moved position and
  // changed payload), tracking the evolving truth in `points`/`terms`.
  for (int32_t step = 0; step < 40; ++step) {
    int32_t id = static_cast<int32_t>(rng.Next() % n);
    double old_terms[2] = {terms[0][id], terms[1][id]};
    tree.RemovePoint(points[id].x, points[id].y, old_terms);
    points[id].x = static_cast<double>(rng.Next() % 9);
    points[id].y = static_cast<double>(rng.Next() % 9);
    terms[0][id] = static_cast<double>(rng.Next() % 100);
    terms[1][id] = static_cast<double>(rng.Next() % 100);
    double new_terms[2] = {terms[0][id], terms[1][id]};
    tree.InsertPoint(points[id].x, points[id].y, new_terms);
  }
  EXPECT_GT(tree.delta_size(), 0);
  ExpectTreesAgree(tree, points, terms);
}

TEST(RangeTreeDeltaTest, RedundantChurnAnnihilates) {
  std::vector<PointRef> points{{1, 2, 0}, {3, 4, 1}};
  std::vector<std::vector<double>> terms{{10, 20}};
  LayeredRangeTree2D tree(points, terms);
  double t0[1] = {10};
  // Remove and re-insert the identical point: the overlay must not grow.
  tree.RemovePoint(1, 2, t0);
  tree.InsertPoint(1, 2, t0);
  EXPECT_EQ(tree.delta_size(), 0);
  ExpectTreesAgree(tree, points, terms);
}

TEST(RangeTreeDeltaTest, EmptyTreeIsAPureOverlay) {
  std::vector<std::vector<double>> one_term(1);
  LayeredRangeTree2D tree({}, one_term);
  double t[1] = {7};
  tree.InsertPoint(2, 2, t);
  Rect everything{-100, 100, -100, 100};
  AggResult res = tree.Aggregate(everything);
  EXPECT_EQ(res.count, 1);
  EXPECT_EQ(res.sums[0], 7);
}

// -------------------------------------------------- change-tracking basics

TEST(ChangeTrackingTest, RecordsActualChangesOnly) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("hp", CombineType::kConst).ok());
  ASSERT_TRUE(schema.AddAttribute("dmg", CombineType::kSum).ok());
  EnvironmentTable table(schema);
  ASSERT_TRUE(table.AddRow({100, 0}).ok());
  ASSERT_TRUE(table.AddRow({50, 0}).ok());
  table.EnableChangeTracking();
  EXPECT_TRUE(table.changes().structural)
      << "the first window must force a rebuild";
  table.ClearChanges();

  AttrId hp = schema.Find("hp");
  table.Set(0, hp, 100.0);  // no-op write: same value
  EXPECT_TRUE(table.changes().dirty_rows.empty());
  table.Set(1, hp, 49.0);
  ASSERT_EQ(table.changes().dirty_rows.size(), 1u);
  EXPECT_EQ(table.changes().dirty_rows[0], 1);
  EXPECT_NE(table.changes().attr_mask(1) & TableChanges::BitOf(hp), 0u);
  EXPECT_FALSE(table.changes().structural);

  table.ClearChanges();
  EXPECT_TRUE(table.changes().dirty_rows.empty());
  int32_t removed = table.RemoveIf([](RowId r) { return r == 0; });
  EXPECT_EQ(removed, 1);
  EXPECT_TRUE(table.changes().structural);
}

// ------------------------------------------------- per-scenario contracts

class AdaptiveContractTest : public ::testing::TestWithParam<std::string> {};

// The tentpole contract: adaptive mode (1 and 4 threads) is bit-exact
// with the naive reference on every registered scenario, tick by tick,
// while the cost model is free to mix scan/rebuild/incremental per
// family.
TEST_P(AdaptiveContractTest, AdaptiveIsBitExactWithNaive) {
  const std::string name = GetParam();
  const ScenarioParams params = SmallParams();
  auto naive = BuildOrDie(name, params, EvaluatorMode::kNaive, 1);
  auto adaptive = BuildOrDie(name, params, EvaluatorMode::kAdaptive, 1);
  auto threaded = BuildOrDie(name, params, EvaluatorMode::kAdaptive, 4);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(adaptive, nullptr);
  ASSERT_NE(threaded, nullptr);

  for (int64_t tick = 0; tick < kTicks; ++tick) {
    ASSERT_TRUE(naive->Tick().ok()) << name << " naive tick " << tick;
    ASSERT_TRUE(adaptive->Tick().ok()) << name << " adaptive tick " << tick;
    ASSERT_TRUE(threaded->Tick().ok()) << name << " threaded tick " << tick;
    ASSERT_TRUE(naive->table().Equals(adaptive->table()))
        << name << " naive vs adaptive diverged at tick " << tick << ":\n"
        << naive->table().DiffString(adaptive->table());
    ASSERT_TRUE(adaptive->table().Equals(threaded->table()))
        << name << " adaptive 1 vs 4 threads diverged at tick " << tick
        << ":\n"
        << adaptive->table().DiffString(threaded->table());
  }
  Status st =
      ScenarioRegistry::Global().CheckInvariants(name, params, *adaptive);
  EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
}

// Forced churn: pin every divisible family to the incremental range-tree
// path (whenever it is applicable at all) — movement and effect churn
// then flow through RemovePoint/InsertPoint overlays every tick, and the
// result must still match the naive reference bit for bit. This is the
// direct proof that incremental maintenance equals a from-scratch
// rebuild at simulation level.
TEST_P(AdaptiveContractTest, ForcedIncrementalMatchesNaive) {
  const std::string name = GetParam();
  const ScenarioParams params = SmallParams();
  auto naive = BuildOrDie(name, params, EvaluatorMode::kNaive, 1);
  auto forced = BuildOrDie(name, params, EvaluatorMode::kAdaptive, 1);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(forced, nullptr);
  const PhysicalChoice incremental = PhysicalChoice::kIncremental;
  ForceChoice(forced.get(), &incremental);

  for (int64_t tick = 0; tick < kTicks; ++tick) {
    ASSERT_TRUE(naive->Tick().ok());
    ASSERT_TRUE(forced->Tick().ok()) << name << " forced tick " << tick;
    ASSERT_TRUE(naive->table().Equals(forced->table()))
        << name << " forced-incremental diverged at tick " << tick << ":\n"
        << naive->table().DiffString(forced->table());
  }
}

// Forced scan: the other extreme must also stay bit-exact (and is how a
// mispredicting cost model degrades — to the naive evaluator, never to a
// wrong answer).
TEST_P(AdaptiveContractTest, ForcedScanMatchesNaive) {
  const std::string name = GetParam();
  const ScenarioParams params = SmallParams();
  auto naive = BuildOrDie(name, params, EvaluatorMode::kNaive, 1);
  auto forced = BuildOrDie(name, params, EvaluatorMode::kAdaptive, 1);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(forced, nullptr);
  const PhysicalChoice scan = PhysicalChoice::kScan;
  ForceChoice(forced.get(), &scan);
  ASSERT_TRUE(naive->Run(kTicks).ok());
  ASSERT_TRUE(forced->Run(kTicks).ok());
  EXPECT_TRUE(naive->table().Equals(forced->table()))
      << naive->table().DiffString(forced->table());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, AdaptiveContractTest,
    ::testing::ValuesIn(ScenarioRegistry::Global().List()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ------------------------------------------------------------ explain/obs

TEST(AdaptiveExplainTest, ExplainShowsPerFamilyDecisions) {
  auto sim = BuildOrDie("epidemic", SmallParams(), EvaluatorMode::kAdaptive, 1);
  ASSERT_NE(sim, nullptr);
  ASSERT_TRUE(sim->Run(10).ok());
  const std::string explain = sim->Explain();
  EXPECT_NE(explain.find("evaluator: adaptive"), std::string::npos) << explain;
  EXPECT_NE(explain.find("Adaptive decisions"), std::string::npos) << explain;
  EXPECT_NE(explain.find("est{scan="), std::string::npos) << explain;
  EXPECT_NE(explain.find("observed{probes/tick~"), std::string::npos)
      << explain;
  // The logical plan's aggregate operators carry physical annotations.
  EXPECT_NE(explain.find("{physical: "), std::string::npos) << explain;
  EXPECT_NE(explain.find("lifetime decisions:"), std::string::npos) << explain;
}

TEST(AdaptiveExplainTest, SnapshotRestoreStaysBitExact) {
  const ScenarioParams params = SmallParams();
  auto sim = BuildOrDie("battle", params, EvaluatorMode::kAdaptive, 1);
  ASSERT_NE(sim, nullptr);
  ASSERT_TRUE(sim->Run(10).ok());
  const std::string dir = ::testing::TempDir() + "/adaptive_ckpt";
  ASSERT_TRUE(sim->Checkpoint(dir).ok());
  ASSERT_TRUE(sim->Run(15).ok());
  EnvironmentTable after = sim->table().Clone();
  ASSERT_TRUE(sim->RestoreFrom(dir).ok());
  ASSERT_TRUE(sim->Run(15).ok());
  EXPECT_TRUE(sim->table().Equals(after))
      << "replay after restore diverged:\n"
      << sim->table().DiffString(after);
}

}  // namespace
}  // namespace sgl
