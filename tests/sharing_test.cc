// Aggregate-sharing tests: the cross-unit memoization layer
// (src/opt/sharing.h) must never change what a simulation computes —
// only how often the evaluators below it run. Every registered scenario
// runs 50 ticks in lockstep with sharing on vs off across all three
// evaluator modes and {1, 4} worker threads; classification is unit-
// tested per class; structurally identical aggregates in different
// scripts must dedup to one shared memo slot; the publish-once slot is
// hammered from four workers (the TSan CI job runs this suite); and the
// EXPLAIN transcript must name every class and counter.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "opt/sharing.h"
#include "opt/signature.h"
#include "scenario/scenario.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace {

constexpr int64_t kTicks = 50;

ScenarioParams SmallParams() {
  ScenarioParams params;
  params.units = 150;
  params.density = 0.02;
  params.seed = 11;
  return params;
}

std::unique_ptr<Simulation> BuildOrDie(const std::string& name,
                                       const ScenarioParams& params,
                                       EvaluatorMode mode, int32_t threads,
                                       bool sharing) {
  SimulationConfig config;
  config.eval_mode = mode;
  config.threads = threads;
  config.sharing = sharing;
  auto sim = ScenarioRegistry::Global().BuildSimulation(name, params, config);
  EXPECT_TRUE(sim.ok()) << name << ": " << sim.status().ToString();
  return sim.ok() ? std::move(*sim) : nullptr;
}

// ---------------------------------------------------------------- lockstep

// Sharing on vs off must be bit-exact after every tick, for every
// scenario, evaluator mode, and thread count.
TEST(SharingLockstepTest, OnMatchesOffEverywhere) {
  const ScenarioParams params = SmallParams();
  for (const std::string& scenario : ScenarioRegistry::Global().List()) {
    for (EvaluatorMode mode :
         {EvaluatorMode::kNaive, EvaluatorMode::kIndexed,
          EvaluatorMode::kAdaptive}) {
      for (int32_t threads : {1, 4}) {
        SCOPED_TRACE(scenario + " / " + EvaluatorModeName(mode) + " / " +
                     std::to_string(threads) + " threads");
        auto on = BuildOrDie(scenario, params, mode, threads, true);
        auto off = BuildOrDie(scenario, params, mode, threads, false);
        ASSERT_NE(on, nullptr);
        ASSERT_NE(off, nullptr);
        for (int64_t tick = 0; tick < kTicks; ++tick) {
          ASSERT_TRUE(on->Tick().ok());
          ASSERT_TRUE(off->Tick().ok());
          ASSERT_TRUE(on->table().Equals(off->table()))
              << "diverged at tick " << tick << ":\n"
              << on->table().DiffString(off->table());
        }
        ASSERT_TRUE(ScenarioRegistry::Global()
                        .CheckInvariants(scenario, params, *on)
                        .ok());
      }
    }
  }
}

// Published entry counts are pure per-tick key counts — identical for
// any worker-thread count (hit/compute splits may race; entries not).
TEST(SharingLockstepTest, MemoEntriesAreThreadCountInvariant) {
  const ScenarioParams params = SmallParams();
  for (const std::string& scenario : {"market", "epidemic", "ctf"}) {
    auto one = BuildOrDie(scenario, params, EvaluatorMode::kIndexed, 1, true);
    auto four = BuildOrDie(scenario, params, EvaluatorMode::kIndexed, 4, true);
    ASSERT_NE(one, nullptr);
    ASSERT_NE(four, nullptr);
    ASSERT_TRUE(one->Run(20).ok());
    ASSERT_TRUE(four->Run(20).ok());
    EXPECT_EQ(one->memo_entries(), four->memo_entries()) << scenario;
  }
}

// ---------------------------------------------------------- classification

Schema TestSchema() {
  Schema s;
  (void)s.AddAttribute("team", CombineType::kConst);
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("gold", CombineType::kConst);
  (void)s.AddAttribute("hp", CombineType::kConst);
  (void)s.AddAttribute("dmg", CombineType::kSum);
  return s;
}

/// Compile a script whose first aggregate is the declaration under test
/// and return its sharing plan.
SharingPlan PlanOf(const std::string& aggregate_decl) {
  const std::string source =
      aggregate_decl + "\nfunction main(u) { let x = Probe(u" +
      (aggregate_decl.find("Probe(u, p)") != std::string::npos ? ", 1" : "") +
      "); }\n";
  auto script = CompileScript(source, TestSchema());
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return SharingPlan{};
  auto sig = ExtractSignature(*script, 0);
  EXPECT_TRUE(sig.ok()) << sig.status().ToString();
  if (!sig.ok()) return SharingPlan{};
  return ClassifySharing(*script, *sig);
}

TEST(SharingClassifyTest, GlobalSumIsUnitInvariant) {
  SharingPlan plan =
      PlanOf("aggregate Probe(u) { select sum(e.gold) from E e; }");
  EXPECT_EQ(plan.cls, SharingClass::kUnitInvariant);
  EXPECT_TRUE(plan.key_exprs.empty());
  EXPECT_TRUE(plan.key_params.empty());
}

TEST(SharingClassifyTest, BuildFilteredGlobalIsUnitInvariant) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select count(*) from E e where e.hp > 2; }");
  EXPECT_EQ(plan.cls, SharingClass::kUnitInvariant);
}

TEST(SharingClassifyTest, ParamBoundKeysOnScalarArgument) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u, p) { select argmin(e.gold) from E e "
      "where e.hp >= p; }");
  EXPECT_EQ(plan.cls, SharingClass::kPartitionKeyed);
  EXPECT_TRUE(plan.key_exprs.empty());  // raw args beat re-evaluation
  ASSERT_EQ(plan.key_params.size(), 1u);
  EXPECT_EQ(plan.key_params[0], 0);
}

TEST(SharingClassifyTest, UnusedParamDoesNotKey) {
  SharingPlan plan =
      PlanOf("aggregate Probe(u, p) { select sum(e.gold) from E e; }");
  EXPECT_EQ(plan.cls, SharingClass::kUnitInvariant);
}

TEST(SharingClassifyTest, UnitBoxKeysOnEvaluatedBounds) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select count(*) from E e "
      "where e.posx >= u.posx - 5 and e.posx <= u.posx + 5; }");
  EXPECT_EQ(plan.cls, SharingClass::kPartitionKeyed);
  EXPECT_EQ(plan.key_exprs.size(), 2u);  // the two bounds
  EXPECT_TRUE(plan.key_params.empty());
}

TEST(SharingClassifyTest, PartitionValueKeysOnUnitAttribute) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select count(*) from E e "
      "where e.team = u.team; }");
  EXPECT_EQ(plan.cls, SharingClass::kPartitionKeyed);
  EXPECT_EQ(plan.key_exprs.size(), 1u);  // the partition value
}

TEST(SharingClassifyTest, SelfExclusionIsPerUnit) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select count(*) from E e "
      "where e.key <> u.key; }");
  EXPECT_EQ(plan.cls, SharingClass::kPerUnit);
  EXPECT_NE(plan.reason.find("self-excluding"), std::string::npos);
}

TEST(SharingClassifyTest, NearestIsPerUnit) {
  SharingPlan plan =
      PlanOf("aggregate Probe(u) { select nearest(*) from E e; }");
  EXPECT_EQ(plan.cls, SharingClass::kPerUnit);
  EXPECT_NE(plan.reason.find("position"), std::string::npos);
}

TEST(SharingClassifyTest, NonIndexableWithoutUnitSharesToo) {
  // min + sum in one select forces the naive fallback — but the whole
  // declaration references no unit attribute, so the reference scan's
  // result is still unit-invariant and shareable.
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select min(e.gold) as a, sum(e.gold) as b "
      "from E e; }");
  EXPECT_EQ(plan.cls, SharingClass::kUnitInvariant);
}

TEST(SharingClassifyTest, NonIndexableWithUnitIsPerUnit) {
  SharingPlan plan = PlanOf(
      "aggregate Probe(u) { select min(e.gold + u.gold) as a, "
      "sum(e.gold) as b from E e; }");
  EXPECT_EQ(plan.cls, SharingClass::kPerUnit);
}

TEST(SharingClassifyTest, FingerprintKeepsFullLiteralPrecision) {
  // Constants differing only beyond 6 significant digits must not merge
  // into one dedup group (one declaration's memoized value would be
  // served for the other): literals print with round-trip precision.
  auto a = CompileScript(
      "aggregate Probe(u) { select count(*) from E e "
      "where e.posx < 1000000.25; }\n"
      "function main(u) { let x = Probe(u); }",
      TestSchema());
  auto b = CompileScript(
      "aggregate Probe(u) { select count(*) from E e "
      "where e.posx < 1000000.75; }\n"
      "function main(u) { let x = Probe(u); }",
      TestSchema());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(CanonicalAggregateFingerprint(*a, 0),
            CanonicalAggregateFingerprint(*b, 0));
}

TEST(SharingClassifyTest, CanonicalFingerprintIgnoresSpelling) {
  auto a = CompileScript(
      "aggregate TotalGold(u) { select sum(e.gold) from E e; }\n"
      "function main(u) { let g = TotalGold(u); }",
      TestSchema());
  auto b = CompileScript(
      "aggregate Wealth(v) { select sum(w.gold) from E w; }\n"
      "function main(v) { let g = Wealth(v); }",
      TestSchema());
  auto c = CompileScript(
      "aggregate Other(u) { select sum(e.hp) from E e; }\n"
      "function main(u) { let g = Other(u); }",
      TestSchema());
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(CanonicalAggregateFingerprint(*a, 0),
            CanonicalAggregateFingerprint(*b, 0));
  EXPECT_NE(CanonicalAggregateFingerprint(*a, 0),
            CanonicalAggregateFingerprint(*c, 0));
}

// ------------------------------------------------------- cross-script dedup

TEST(SharingDedupTest, IdenticalAggregatesAcrossScriptsShareOneSlot) {
  const char* kScriptA =
      "aggregate TotalGold(u) { select sum(e.gold) from E e; }\n"
      "function main(u) { let g = TotalGold(u); }";
  const char* kScriptB =
      "aggregate Wealth(v) { select sum(w.gold) from E w; }\n"
      "function main(v) { let g = Wealth(v); }";
  Schema schema = TestSchema();
  auto a = CompileScript(kScriptA, schema);
  auto b = CompileScript(kScriptB, schema);
  ASSERT_TRUE(a.ok() && b.ok());

  EnvironmentTable table(schema);
  constexpr int32_t kUnits = 40;
  for (int32_t i = 0; i < kUnits; ++i) {
    ASSERT_TRUE(
        table.AddRow({static_cast<double>(i % 2), static_cast<double>(i), 0,
                      static_cast<double>(1 + i % 5), 10, 0})
            .ok());
  }
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.move_x_attr.clear();
  config.move_y_attr.clear();
  auto sim = SimulationBuilder()
                 .SetTable(std::move(table))
                 .SetConfig(config)
                 .DispatchBy("team")
                 .AddScript("alpha", std::move(*a), 0)
                 .AddScript("beta", std::move(*b), 1)
                 .Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  const SharingContext* ctx = (*sim)->sharing();
  ASSERT_NE(ctx, nullptr);
  ASSERT_EQ(ctx->NumGroups(), 1);  // one dedup group across both scripts
  ASSERT_EQ(ctx->GroupMembers(0).size(), 2u);
  EXPECT_EQ(ctx->GroupMembers(0)[0], "alpha.TotalGold");
  EXPECT_EQ(ctx->GroupMembers(0)[1], "beta.Wealth");

  constexpr int64_t kRunTicks = 20;
  ASSERT_TRUE((*sim)->Run(kRunTicks).ok());
  // One compute per tick serves both scripts: units x ticks calls, one
  // published entry per tick, everything else a hit (single-threaded, so
  // the split is exact).
  EXPECT_EQ((*sim)->memo_entries(), kRunTicks);
  EXPECT_EQ((*sim)->shared_hits(),
            static_cast<int64_t>(kUnits) * kRunTicks - kRunTicks);
}

// ---------------------------------------------------------------- demotion

TEST(SharingDemotionTest, NearUniqueKeysDemoteToPerUnit) {
  // Every unit probes a box around its own distinct position: one key
  // per unit per tick. The first tick's (calls, entries) totals must
  // deterministically demote the group before tick 2.
  const char* kScript =
      "aggregate NearMe(u) { select count(*) from E e "
      "where e.posx >= u.posx - 1 and e.posx <= u.posx + 1; }\n"
      "function main(u) { let c = NearMe(u); }";
  Schema schema = TestSchema();
  auto script = CompileScript(kScript, schema);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EnvironmentTable table(schema);
  for (int32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        table.AddRow({0, static_cast<double>(3 * i), 0, 1, 10, 0}).ok());
  }
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.move_x_attr.clear();
  config.move_y_attr.clear();
  auto sim = SimulationBuilder()
                 .SetTable(std::move(table))
                 .SetConfig(config)
                 .AddScript("solo", std::move(*script))
                 .Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE((*sim)->Run(3).ok());

  const std::string explain = (*sim)->Explain();
  EXPECT_NE(explain.find("demoted: keys nearly unique per probe"),
            std::string::npos)
      << explain;
  // Only tick 1 published entries; the demoted group stops memoizing.
  EXPECT_EQ((*sim)->memo_entries(), 200);
  EXPECT_EQ((*sim)->shared_hits(), 0);
}

// ------------------------------------------------------------ publish-once

TEST(SharingPublishOnceTest, ConcurrentWorkersAgreeOnOneSlot) {
  // A single unit-invariant aggregate probed by every unit from four
  // workers: all shards race to publish the slot on every tick; exactly
  // one entry per tick may win (TSan validates the synchronization).
  const char* kScript =
      "aggregate Total(u) { select sum(e.gold) as g, count(*) as n "
      "from E e; }\n"
      "action Tax(u, g) { update e where e.key = u.key set dmg += g; }\n"
      "function main(u) { let t = Total(u); perform Tax(u, t.g - t.g + 1); }";
  Schema schema = TestSchema();
  auto script = CompileScript(kScript, schema);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EnvironmentTable table(schema);
  for (int32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        table.AddRow({0, static_cast<double>(i), 0, 2, 10, 0}).ok());
  }
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.threads = 4;
  config.move_x_attr.clear();
  config.move_y_attr.clear();
  auto sim = SimulationBuilder()
                 .SetTable(std::move(table))
                 .SetConfig(config)
                 .AddScript("solo", std::move(*script))
                 .Build();
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  constexpr int64_t kRunTicks = 10;
  ASSERT_TRUE((*sim)->Run(kRunTicks).ok());
  EXPECT_EQ((*sim)->memo_entries(), kRunTicks);
}

// ----------------------------------------------------------------- explain

TEST(SharingExplainTest, TranscriptListsClassesAndCounters) {
  auto sim =
      BuildOrDie("market", SmallParams(), EvaluatorMode::kAdaptive, 1, true);
  ASSERT_NE(sim, nullptr);
  ASSERT_TRUE(sim->Run(10).ok());
  const std::string explain = sim->Explain();
  EXPECT_NE(explain.find("sharing: on"), std::string::npos) << explain;
  EXPECT_NE(explain.find("Aggregate sharing ("), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("[unit-invariant] market.Market"),
            std::string::npos)
      << explain;
  EXPECT_NE(explain.find("[partition-keyed] market.PoorestBuyer"),
            std::string::npos)
      << explain;
  EXPECT_NE(explain.find("calls "), std::string::npos) << explain;
  EXPECT_NE(explain.find("hits "), std::string::npos) << explain;
  // Sharing off: the block disappears and the header says so.
  auto off =
      BuildOrDie("market", SmallParams(), EvaluatorMode::kAdaptive, 1, false);
  ASSERT_NE(off, nullptr);
  const std::string off_explain = off->Explain();
  EXPECT_NE(off_explain.find("sharing: off"), std::string::npos)
      << off_explain;
  EXPECT_EQ(off_explain.find("Aggregate sharing ("), std::string::npos)
      << off_explain;
}

TEST(SharingExplainTest, PerUnitAggregatesListTheirReason) {
  auto sim =
      BuildOrDie("battle", SmallParams(), EvaluatorMode::kIndexed, 1, true);
  ASSERT_NE(sim, nullptr);
  ASSERT_TRUE(sim->Run(5).ok());
  const std::string explain = sim->Explain();
  EXPECT_NE(explain.find("[per-unit]"), std::string::npos) << explain;
}

}  // namespace
}  // namespace sgl
