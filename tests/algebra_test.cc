// Logical-plan tests: translation (Figure 6(a)), the push-down/pruning
// rewrite (6(a) -> 6(b)), common-aggregate factoring and the total-action
// rule (6(c) -> 6(d)).
#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "game/battle.h"

namespace sgl {
namespace {

Script Compile(const std::string& src) {
  auto script = CompileScript(src, BattleSchema());
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  return script.MoveValue();
}

// The Figure 3 script, which Example 5.1 walks through Figure 6.
const char* kFigure3 = R"(
  aggregate CountEnemiesInRange(u, range) {
    select count(*) from E e
    where e.posx >= u.posx - range and e.posx <= u.posx + range
      and e.posy >= u.posy - range and e.posy <= u.posy + range
      and e.player <> u.player;
  }
  aggregate CentroidOfEnemyUnits(u, range) {
    select avg(e.posx) as x, avg(e.posy) as y from E e
    where e.posx >= u.posx - range and e.posx <= u.posx + range
      and e.posy >= u.posy - range and e.posy <= u.posy + range
      and e.player <> u.player;
  }
  aggregate getNearestEnemy(u) {
    select nearest(*) from E e where e.player <> u.player;
  }
  action MoveInDirection(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }
  action FireAt(u, target) {
    update e where e.key = target set damage += 1;
    update e where e.key = u.key set weaponused += 1;
  }
  function main(u) {
    (let c = CountEnemiesInRange(u, 10))
    (let away = (u.posx, u.posy) - CentroidOfEnemyUnits(u, 10)) {
      if c > 5 then
        perform MoveInDirection(u, away.x, away.y);
      else if c > 0 and u.cooldown = 0 then {
        let target = getNearestEnemy(u);
        perform FireAt(u, target.key);
      }
    }
  }
)";

TEST(Translate, Figure3ProducesFigure6a) {
  Script script = Compile(kFigure3);
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Two action branches under the root ⊕.
  ASSERT_EQ(2u, plan->root->children.size());
  // Both aggregate extensions are above the branch point (Figure 6(a)):
  // the count and the centroid are evaluated before any selection.
  EXPECT_EQ(3, plan->NumAggregateNodes());  // count, centroid, nearest
  std::string rendered = plan->ToString();
  EXPECT_NE(std::string::npos, rendered.find("Scan(E)"));
  EXPECT_NE(std::string::npos, rendered.find("act⊕ MoveInDirection"));
  EXPECT_NE(std::string::npos, rendered.find("act⊕ FireAt"));
  EXPECT_NE(std::string::npos, rendered.find("shared prefix"));
}

TEST(Optimize, PushesCentroidOutOfFireBranch) {
  // Example 5.1's first optimization: in the FireAt branch the centroid
  // (away vector) is unused, so after the rewrite that branch must not
  // contain the centroid aggregate; the Move branch must still have it.
  Script script = Compile(kFigure3);
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok());
  auto opt = OptimizePlan(*plan);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  // Identify branches by action.
  const PlanPtr* move_leaf = nullptr;
  const PlanPtr* fire_leaf = nullptr;
  for (const PlanPtr& leaf : opt->root->children) {
    const std::string& name =
        script.program.actions[leaf->action_index].name;
    if (name == "MoveInDirection") move_leaf = &leaf;
    if (name == "FireAt") fire_leaf = &leaf;
  }
  ASSERT_NE(nullptr, move_leaf);
  ASSERT_NE(nullptr, fire_leaf);

  auto chain_aggs = [&](const PlanPtr& leaf) {
    std::vector<std::string> cols;
    for (const PlanNode* n = leaf.get(); n != nullptr; n = n->input.get()) {
      if (n->op == PlanOp::kExtendAgg) cols.push_back(n->column);
    }
    return cols;
  };
  std::vector<std::string> move_aggs = chain_aggs(*move_leaf);
  std::vector<std::string> fire_aggs = chain_aggs(*fire_leaf);
  // Move branch: count (gates the σ) + centroid (hoisted as _agg0).
  EXPECT_EQ(2u, move_aggs.size());
  // Fire branch: count + nearest — the centroid is gone (Figure 6(b)).
  EXPECT_EQ(2u, fire_aggs.size());
  for (const std::string& col : fire_aggs) {
    EXPECT_EQ(std::string::npos, col.find("_agg0"))
        << "centroid survived in the FireAt branch";
  }
}

TEST(Optimize, MarksSelfMoveTotalButNotFireAt) {
  Script script = Compile(kFigure3);
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok());
  auto opt = OptimizePlan(*plan);
  ASSERT_TRUE(opt.ok());
  for (const PlanPtr& leaf : opt->root->children) {
    const std::string& name =
        script.program.actions[leaf->action_index].name;
    if (name == "MoveInDirection") {
      EXPECT_TRUE(leaf->action_total) << "rule (10) should apply to Move";
    } else {
      EXPECT_FALSE(leaf->action_total) << "FireAt touches other units";
    }
  }
  EXPECT_NE(std::string::npos, opt->ToString().find("rule (10)"));
}

TEST(Optimize, FactorsCommonAggregates) {
  // Two branches calling the same aggregate with the same arguments must
  // share one signature id even when the calls are textually separate.
  Script script = Compile(R"(
    aggregate N(u, r) {
      select count(*) from E e
      where e.posx >= u.posx - r and e.posx <= u.posx + r;
    }
    action A(u) { update e where e.key = u.key set damage += 1; }
    action B(u) { update e where e.key = u.key set movex += 1; }
    function f(u) { if N(u, 5) > 2 then perform A(u); }
    function g(u) { if N(u, 5) > 7 then perform B(u); }
    function main(u) {
      if u.player = 0 then perform f(u);
      else perform g(u);
    }
  )");
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok());
  auto opt = OptimizePlan(*plan);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(2, opt->NumAggregateNodes());      // one per branch
  EXPECT_EQ(1, opt->NumSharedSignatures());    // but a single signature
}

TEST(Optimize, DropsEntirelyUnusedAggregate) {
  Script script = Compile(R"(
    aggregate N(u) { select count(*) from E e; }
    action A(u) { update e where e.key = u.key set damage += 1; }
    function main(u) {
      let unused = N(u);
      perform A(u);
    }
  )");
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(1, plan->NumAggregateNodes());
  auto opt = OptimizePlan(*plan);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(0, opt->NumAggregateNodes());
}

TEST(Optimize, BattleScriptShrinksAndShares) {
  Script script = Compile(BattleScriptSource());
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto opt = OptimizePlan(*plan);
  ASSERT_TRUE(opt.ok());
  // The battle main fans out into the three per-type AIs; pruning must
  // not grow the plan, and factoring must find shared signatures.
  EXPECT_LE(opt->NumNodes(), plan->NumNodes());
  EXPECT_GT(opt->NumAggregateNodes(), 0);
  EXPECT_LE(opt->NumSharedSignatures(), opt->NumAggregateNodes());
  std::string rendered = opt->ToString();
  EXPECT_NE(std::string::npos, rendered.find("{sig #"));
}

TEST(Translate, InliningBindsParameters) {
  Script script = Compile(R"(
    action A(u, v) { update e where e.key = u.key set damage += v; }
    function helper(me, amount) { perform A(me, amount + 1); }
    function main(u) { perform helper(u, 41); }
  )");
  auto plan = TranslateScript(script);
  ASSERT_TRUE(plan.ok());
  // The helper's `amount` parameter appears as a π extension.
  bool found_bind = false;
  for (const PlanNode* n = plan->root->children[0].get(); n != nullptr;
       n = n->input.get()) {
    if (n->op == PlanOp::kExtend && n->column == "amount") found_bind = true;
  }
  EXPECT_TRUE(found_bind);
}

}  // namespace
}  // namespace sgl
