// Figure 10: total simulation time, naive vs indexed, versus unit count.
//
// The paper's setup (Section 6): the battle simulation with the unit
// count swept and the grid scaled to hold density at 1% of cells
// occupied; dead units resurrect so population is constant; 500 ticks
// per point on a 2 GHz Core Duo. This harness reports the same series —
// per-tick time and the total extrapolated to 500 ticks — plus the
// derived quantities behind the section's prose claims: the crossover
// point, the speedup at 700 units, and the largest army each engine can
// simulate at 10 ticks per second.
//
// Flags: --units overrides the sweep, --ticks the per-point tick count,
// --naive-max the naive cap (env SGL_BENCH_TICKS / SGL_BENCH_NAIVE_MAX
// still honoured as fallbacks), --json tees machine-readable rows.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"

using namespace sgl;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_fig10_scaling",
      "  Figure 10: naive vs indexed total time versus unit count\n");
  const int64_t ticks = args.TicksOr(20);
  const int32_t naive_max = args.NaiveMaxOr(2000);
  const uint64_t seed = args.SeedOr(42);
  JsonLines json(args.json_path);
  const std::vector<int32_t> sizes = args.UnitsOr(
      {250, 500, 700, 1000, 1500, 2000, 3000, 4000, 6000, 8000, 12000, 14000});

  std::printf("=== Figure 10: scalability with the number of units ===\n");
  std::printf("density 1%%, %lld ticks measured per point, "
              "times extrapolated to the paper's 500 ticks\n\n",
              static_cast<long long>(ticks));
  std::printf("%8s %14s %14s %14s %14s %9s\n", "units", "naive s/tick",
              "indexed s/tick", "naive 500t(s)", "indexed 500t(s)", "speedup");

  double speedup_at_700 = 0.0;
  double naive_10tps_units = 0.0, indexed_10tps_units = 0.0;
  double prev_naive_per_tick = 0.0, prev_indexed_per_tick = 0.0;
  int32_t prev_n = 0;

  for (int32_t n : sizes) {
    ScenarioConfig scenario;
    scenario.num_units = n;
    scenario.density = 0.01;
    scenario.seed = seed;

    double indexed = TimeBattle(scenario, EvaluatorMode::kIndexed, ticks);
    double indexed_per_tick = indexed / static_cast<double>(ticks);

    bool ran_naive = n <= naive_max;
    double naive = 0.0, naive_per_tick = 0.0;
    if (ran_naive) {
      naive = TimeBattle(scenario, EvaluatorMode::kNaive, ticks);
      naive_per_tick = naive / static_cast<double>(ticks);
    }

    if (ran_naive) {
      std::printf("%8d %14.5f %14.5f %14.2f %14.2f %8.1fx\n", n,
                  naive_per_tick, indexed_per_tick, naive_per_tick * 500,
                  indexed_per_tick * 500, naive_per_tick / indexed_per_tick);
    } else {
      std::printf("%8d %14s %14.5f %14s %14.2f %9s\n", n, "(skipped)",
                  indexed_per_tick, "-", indexed_per_tick * 500, "-");
    }

    std::ostringstream row;
    row << "{\"bench\": \"fig10_scaling\", \"units\": " << n
        << ", \"ticks\": " << ticks << ", \"naive_s_per_tick\": ";
    if (ran_naive) {
      row << naive_per_tick;
    } else {
      row << "null";  // skipped, not measured-as-zero
    }
    row << ", \"indexed_s_per_tick\": " << indexed_per_tick << "}";
    json.WriteLine(row.str());

    if (n == 700 && ran_naive) {
      speedup_at_700 = naive_per_tick / indexed_per_tick;
    }
    // Interpolate the army size where each engine crosses 0.1 s/tick
    // (10 ticks per second).
    auto crossing = [&](double prev_t, double cur_t, double* out) {
      if (*out != 0.0 || prev_n == 0) return;
      if (prev_t <= 0.1 && cur_t > 0.1 && cur_t > prev_t) {
        double frac = (0.1 - prev_t) / (cur_t - prev_t);
        *out = prev_n + frac * (n - prev_n);
      }
    };
    if (ran_naive) {
      crossing(prev_naive_per_tick, naive_per_tick, &naive_10tps_units);
      prev_naive_per_tick = naive_per_tick;
    }
    crossing(prev_indexed_per_tick, indexed_per_tick, &indexed_10tps_units);
    prev_indexed_per_tick = indexed_per_tick;
    prev_n = n;
  }

  std::printf("\n--- derived claims (paper, Section 6.1) ---\n");
  if (speedup_at_700 > 0.0) {
    std::printf("speedup at 700 units: %.1fx   (paper: ~an order of "
                "magnitude)\n",
                speedup_at_700);
  }
  if (naive_10tps_units > 0.0) {
    std::printf("naive reaches 10 ticks/s up to   ~%.0f units  (paper: "
                "~1100)\n",
                naive_10tps_units);
  } else {
    std::printf("naive stayed above 10 ticks/s for the whole (capped) "
                "sweep\n");
  }
  if (indexed_10tps_units > 0.0) {
    std::printf("indexed reaches 10 ticks/s up to ~%.0f units  (paper: "
                ">12000)\n",
                indexed_10tps_units);
  } else {
    std::printf("indexed stayed above 10 ticks/s for the whole sweep "
                "(paper: >12000)\n");
  }
  return 0;
}
