// Ablation A3: what each optimization contributes.
//
// Four engine configurations over the same battle:
//   naive            — reference scans for aggregates AND actions;
//   +agg indexes     — Section 5.3 aggregate indexes, actions still scan;
//   +action batching — Section 5.4 direct-key/AOE actions, aggregates scan;
//   full             — both (the shipping configuration).
#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace sgl;

namespace {

double TimeConfig(const ScenarioConfig& scenario, bool agg, bool act,
                  int64_t ticks) {
  SimulationConfig config;
  config.eval_mode =
      (agg || act) ? EvaluatorMode::kIndexed : EvaluatorMode::kNaive;
  config.index_aggregates = agg;
  config.index_actions = act;
  auto setup = MakeBattleSimWithConfig(scenario, config);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    std::exit(1);
  }
  Timer timer;
  Status st = setup->sim->Run(ticks);
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return timer.Seconds() / static_cast<double>(ticks);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_optimizer",
      "  ablation A3: contribution of each optimization\n");
  const int64_t ticks = args.TicksOr(20);
  const uint64_t seed = args.SeedOr(42);
  JsonLines json(args.json_path);
  std::printf("=== Optimizer ablation: per-tick seconds by configuration "
              "===\n\n");
  std::printf("%8s %12s %14s %16s %12s\n", "units", "naive", "+agg-index",
              "+action-batch", "full");
  for (int32_t n : args.UnitsOr({500, 1000, 2000})) {
    ScenarioConfig scenario;
    scenario.num_units = n;
    scenario.density = 0.01;
    scenario.seed = seed;
    double naive = TimeConfig(scenario, false, false, ticks);
    double agg_only = TimeConfig(scenario, true, false, ticks);
    double act_only = TimeConfig(scenario, false, true, ticks);
    double full = TimeConfig(scenario, true, true, ticks);
    std::printf("%8d %12.5f %14.5f %16.5f %12.5f\n", n, naive, agg_only,
                act_only, full);
    std::ostringstream row;
    row << "{\"bench\": \"optimizer\", \"units\": " << n
        << ", \"ticks\": " << ticks << ", \"naive_s_per_tick\": " << naive
        << ", \"agg_index_s_per_tick\": " << agg_only
        << ", \"action_batch_s_per_tick\": " << act_only
        << ", \"full_s_per_tick\": " << full << "}";
    json.WriteLine(row.str());
  }
  std::printf("\nAggregate indexing dominates (each unit evaluates ~8 "
              "aggregates but performs one action per tick); action "
              "batching removes the remaining O(n) scans per perform.\n");
  return 0;
}
