// The unified benchmark suite: every registered scenario, swept across
// {naive, indexed, adaptive} evaluators x worker-thread counts x shard
// counts x unit scales x aggregate sharing {on, off} x compiled
// evaluation {on, off} x disk-backed storage {off, on}.
//
// Each (scenario, units) group elects the first completed cell as its
// reference; every other cell's final environment table must be
// bit-identical to it (the PR-2 determinism contract, now enforced
// across the whole scenario library — including sharing on vs off — on
// every benchmark run), and every cell must satisfy its scenario's
// invariant checker.
//
// Results go to a standardized BENCH_scenarios.json: one "meta" line
// followed by one line per cell with ns/tick, rows, rows scanned, index
// probes, sharing counters (shared_hits / memo_entries), and the
// per-phase breakdown from PhaseStatsRegistry — the repo's perf
// trajectory, consumed by tools/bench_compare.py in CI.
//
//   bench_suite --quick --json BENCH_scenarios.json   # the CI smoke run
//   bench_suite --scenarios battle,ctf --units 1000,4000 --threads 1,2,8
//   bench_suite --list
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/simulation.h"
#include "scenario/scenario.h"
#include "serve/session_manager.h"
#include "util/timer.h"

namespace sgl {
namespace {

struct CellResult {
  double seconds = 0.0;
  EnvironmentTable table{Schema()};
  int32_t rows = 0;
  int64_t rows_scanned = 0;
  int64_t index_probes = 0;
  int64_t shared_hits = 0;
  int64_t memo_entries = 0;
  std::vector<std::pair<std::string, double>> phase_seconds;
  std::string metrics_json;  // --metrics: deterministic snapshot
};

// Fresh world directory for a storage=on repetition. Each rep gets its
// own: re-Building over a directory that already holds a committed
// world deliberately refuses to tick (the engine demands an explicit
// RestoreFrom), and the bench wants cold-start cost anyway.
std::string MakeWorldDir() {
  char tmpl[] = "/tmp/sgl_bench_world_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return std::string(tmpl);
}

void RemoveWorldDir(const std::string& dir) {
  for (const char* file : {"pages.sgl", "wal.sgl", "MANIFEST.sgl",
                           "MANIFEST.sgl.tmp", "inlet.sgl"}) {
    std::remove((dir + "/" + file).c_str());
  }
  ::rmdir(dir.c_str());
}

// Runs one (scenario, params, mode, threads, sharing) cell `reps` times
// and keeps the fastest repetition — identical seeds make every
// repetition bit-identical, so repeating only filters scheduler noise
// out of the timing, which matters for the sub-millisecond CI cells the
// regression gate compares across runs.
CellResult RunCell(const std::string& scenario, const ScenarioParams& params,
                   EvaluatorMode mode, int32_t threads, int32_t shards,
                   bool sharing, bool compiled, bool storage, int64_t ticks,
                   int32_t reps, bool want_metrics) {
  CellResult best;
  for (int32_t rep = 0; rep < reps; ++rep) {
    SimulationConfig config;
    config.eval_mode = mode;
    config.threads = threads;
    config.shards = shards;
    config.sharing = sharing;
    config.compiled = compiled;
    std::string world_dir;
    if (storage) {
      world_dir = MakeWorldDir();
      config.storage.path = world_dir;
      config.storage.page_size = 4096;
    }
    auto sim = ScenarioRegistry::Global().BuildSimulation(scenario, params,
                                                          config);
    if (!sim.ok()) {
      std::fprintf(stderr, "%s: setup failed: %s\n", scenario.c_str(),
                   sim.status().ToString().c_str());
      std::exit(1);
    }
    Timer timer;
    Status st = (*sim)->Run(ticks);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: run failed: %s\n", scenario.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    CellResult cell;
    cell.seconds = timer.Seconds();
    // Unlink the world files now (the store's open descriptors survive
    // the unlink); nothing below reads them back.
    if (!world_dir.empty()) RemoveWorldDir(world_dir);
    if (rep > 0 && cell.seconds >= best.seconds) continue;
    cell.table = (*sim)->table().Clone();
    cell.rows = (*sim)->table().NumRows();
    cell.shared_hits = (*sim)->shared_hits();
    cell.memo_entries = (*sim)->memo_entries();
    if (want_metrics) {
      // Deterministic subset only: identical seeds make the snapshot
      // identical across reps and thread-count-independent, so diffs in
      // bench_compare.py reflect code changes, not schedules.
      cell.metrics_json = (*sim)->MetricsJson(/*deterministic_only=*/true);
    }
    for (const auto& [name, stats] : (*sim)->stats().stats()) {
      cell.rows_scanned += stats.rows_scanned();
      cell.index_probes += stats.index_probes();
      cell.phase_seconds.push_back({name, stats.seconds()});
    }
    st = ScenarioRegistry::Global().CheckInvariants(scenario, params, **sim);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: INVARIANT VIOLATION: %s\n", scenario.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    best = std::move(cell);
  }
  return best;
}

// Runs one multi-tenant serving cell: `sessions` same-seed copies of the
// scenario co-scheduled round-robin on one shared pool. ns/tick is per
// session-tick, so a sessions=N row is directly comparable to the solo
// rows — the gap is the cost (or win) of co-scheduling. Same seeds mean
// every session must finish bit-identical to the first; that cross-check
// rides on every benchmark run, like the solo determinism gate.
CellResult RunServeCell(const std::string& scenario,
                        const ScenarioParams& params, int32_t threads,
                        int32_t sessions, int64_t ticks, int32_t reps,
                        bool want_metrics) {
  CellResult best;
  for (int32_t rep = 0; rep < reps; ++rep) {
    serve::SessionManagerOptions options;
    options.threads = threads;
    options.max_sessions = sessions;
    options.max_total_rows = int64_t{1} << 40;  // admission is not the test
    auto manager = serve::SessionManager::Create(options);
    if (!manager.ok()) {
      std::fprintf(stderr, "%s: serve setup failed: %s\n", scenario.c_str(),
                   manager.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<serve::SessionId> ids;
    for (int32_t s = 0; s < sessions; ++s) {
      SimulationConfig config;
      config.eval_mode = EvaluatorMode::kIndexed;
      SimulationBuilder builder;
      Status st = ScenarioRegistry::Global().PrepareBuilder(scenario, params,
                                                            config, &builder);
      if (st.ok()) {
        auto id = (*manager)->Open(builder);
        st = id.status();
        if (id.ok()) ids.push_back(*id);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "%s: serve session open failed: %s\n",
                     scenario.c_str(), st.ToString().c_str());
        std::exit(1);
      }
    }
    Timer timer;
    for (serve::SessionId id : ids) {
      (void)(*manager)->ScheduleTicks(id, ticks);
    }
    Status st = (*manager)->RunUntilIdle();
    if (!st.ok()) {
      std::fprintf(stderr, "%s: serve run failed: %s\n", scenario.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    CellResult cell;
    cell.seconds = timer.Seconds();
    const Simulation& first = *(*manager)->session(ids[0]);
    for (size_t s = 1; s < ids.size(); ++s) {
      const Simulation& other = *(*manager)->session(ids[s]);
      if (!first.table().Equals(other.table())) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s sessions=%d threads=%d: "
                     "same-seed session %zu diverged:\n%s\n",
                     scenario.c_str(), sessions, threads, s,
                     first.table().DiffString(other.table()).c_str());
        std::exit(1);
      }
    }
    if (rep > 0 && cell.seconds >= best.seconds) continue;
    cell.table = first.table().Clone();
    cell.rows = first.table().NumRows();
    cell.shared_hits = first.shared_hits();
    cell.memo_entries = first.memo_entries();
    if (want_metrics) {
      cell.metrics_json = first.MetricsJson(/*deterministic_only=*/true);
    }
    best = std::move(cell);
  }
  return best;
}

std::string CellJson(const std::string& scenario, const char* mode,
                     int32_t units, int32_t threads, int32_t shards,
                     bool sharing, bool compiled, bool storage, int64_t ticks,
                     const CellResult& cell, int32_t sessions = 1) {
  // Per session-tick, so multi-tenant rows compare against solo rows.
  const double ns_per_tick =
      cell.seconds / static_cast<double>(ticks * sessions) * 1e9;
  std::ostringstream os;
  os << "{\"scenario\": \"" << scenario << "\", \"mode\": \"" << mode
     << "\", \"units\": " << units << ", \"threads\": " << threads
     << ", \"shards\": " << shards << ", \"sessions\": " << sessions
     << ", \"sharing\": \"" << (sharing ? "on" : "off") << "\""
     << ", \"compiled\": \"" << (compiled ? "on" : "off") << "\""
     << ", \"storage\": \"" << (storage ? "on" : "off") << "\""
     << ", \"ticks\": " << ticks << ", \"seconds\": " << cell.seconds
     << ", \"ns_per_tick\": " << static_cast<int64_t>(ns_per_tick)
     << ", \"rows\": " << cell.rows
     << ", \"rows_scanned\": " << cell.rows_scanned
     << ", \"index_probes\": " << cell.index_probes
     << ", \"shared_hits\": " << cell.shared_hits
     << ", \"memo_entries\": " << cell.memo_entries
     << ", \"deterministic\": true, \"phases\": [";
  bool first = true;
  for (const auto& [name, seconds] : cell.phase_seconds) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << name << "\", \"ns_per_tick\": "
       << static_cast<int64_t>(seconds / static_cast<double>(ticks) * 1e9)
       << "}";
  }
  os << "]";
  if (!cell.metrics_json.empty()) os << ", \"metrics\": " << cell.metrics_json;
  os << "}";
  return os.str();
}

}  // namespace
}  // namespace sgl

int main(int argc, char** argv) {
  using namespace sgl;
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_suite",
      "  the scenario-library sweep: every cell is cross-checked for\n"
      "  bit-exact determinism against its (scenario, units) reference\n");

  auto& registry = ScenarioRegistry::Global();
  if (args.list) {
    for (const std::string& name : registry.List()) {
      auto def = registry.Get(name);
      std::printf("%-14s %s\n", name.c_str(), (*def)->description.c_str());
    }
    return 0;
  }

  const int64_t ticks = args.ticks > 0 ? args.ticks
                        : args.quick   ? BenchTicks(15)
                                       : BenchTicks(25);
  // The quick CI preset repeats each cell and keeps the fastest run:
  // its cells are sub-millisecond-per-tick and would otherwise be at
  // the mercy of runner noise in the regression gate.
  const int32_t reps = args.quick ? 5 : 1;
  const uint64_t seed = args.SeedOr(7);
  const int32_t naive_max = args.NaiveMaxOr(2000);
  const std::vector<int32_t> unit_counts =
      args.UnitsOr(args.quick ? std::vector<int32_t>{250}
                              : std::vector<int32_t>{500, 2000});
  const std::vector<int32_t> thread_counts =
      args.ThreadsOr(args.quick ? std::vector<int32_t>{1, 2}
                                : std::vector<int32_t>{1, 4});
  // Sharded cells ride in the same file: shards=1 is the classic
  // single-table engine (and the key legacy baselines carry implicitly);
  // shards=2 keeps a perf trajectory on the multi-shard tick pipeline,
  // whose cells are bit-checked against the same group reference.
  const std::vector<int32_t> shard_counts =
      args.ShardsOr(std::vector<int32_t>{1, 2});
  std::vector<std::string> scenarios =
      args.scenarios.empty() ? registry.List() : args.scenarios;
  const std::vector<std::string> modes =
      args.modes.empty()
          ? std::vector<std::string>{"naive", "indexed", "adaptive"}
          : args.modes;
  // Sharing is swept on and off by default: the off rows keep a
  // regression gate on the probe-per-unit path, and on-vs-off in one
  // file documents what the memoization layer buys per scenario.
  const std::vector<std::string> sharing_sweep =
      args.sharing.empty() ? std::vector<std::string>{"on", "off"}
                           : args.sharing;
  // Compiled evaluation is likewise swept both ways by default: the off
  // rows keep the interpreter's perf visible (it is still the semantics
  // oracle), and on-vs-off in one file documents what the bytecode VM
  // buys per scenario.
  const std::vector<std::string> compiled_sweep =
      args.compiled.empty() ? std::vector<std::string>{"on", "off"}
                            : args.compiled;
  // Disk-backed storage is swept both ways by default: the off rows are
  // the classic in-memory engine (legacy baselines carry storage="off"
  // implicitly), and the on rows keep a trajectory on what the page
  // pool + WAL cost per tick. Every storage cell is bit-checked against
  // the same in-memory group reference, so the durability contract
  // rides on every benchmark run too.
  const std::vector<std::string> storage_sweep =
      args.storage.empty() ? std::vector<std::string>{"off", "on"}
                           : args.storage;
  // Multi-tenant serving rows (SessionManager round-robin over a shared
  // pool). The solo sweep's rows carry sessions=1 implicitly; these add
  // a perf trajectory on co-scheduling overhead per session-tick.
  const std::vector<int32_t> session_counts =
      args.SessionsOr(args.quick ? std::vector<int32_t>{2}
                                 : std::vector<int32_t>{2, 4});
  for (const std::string& name : scenarios) {
    auto def = registry.Get(name);
    if (!def.ok()) {
      std::fprintf(stderr, "%s\n", def.status().ToString().c_str());
      return 2;
    }
  }

  JsonLines json(args.json_path.empty() ? std::string("BENCH_scenarios.json")
                                        : args.json_path);
  {
    std::ostringstream meta;
    meta << "{\"bench\": \"scenarios\", \"ticks\": " << ticks
         << ", \"seed\": " << seed << ", \"naive_max\": " << naive_max << "}";
    json.WriteLine(meta.str());
  }

  std::printf("%-14s %-8s %7s %8s %7s %8s %9s %8s %14s %9s\n", "scenario",
              "mode", "units", "threads", "shards", "sharing", "compiled",
              "storage", "ns/tick", "speedup");
  for (const std::string& scenario : scenarios) {
    for (int32_t units : unit_counts) {
      ScenarioParams params;
      params.units = units;
      params.seed = seed;
      bool have_reference = false;
      EnvironmentTable reference{Schema()};
      double base_ns = 0.0;  // the group's first cell, for the speedup column
      for (const std::string& mode_name : modes) {
        auto parsed = ParseEvaluatorMode(mode_name);
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
          return 2;
        }
        EvaluatorMode mode = *parsed;
        if (mode == EvaluatorMode::kNaive && units > naive_max) continue;
        for (int32_t threads : thread_counts) {
          for (int32_t shards : shard_counts) {
            for (const std::string& sharing_name : sharing_sweep) {
              for (const std::string& compiled_name : compiled_sweep) {
                for (const std::string& storage_name : storage_sweep) {
                  const bool sharing = sharing_name == "on";
                  const bool compiled = compiled_name == "on";
                  const bool storage = storage_name == "on";
                  CellResult cell =
                      RunCell(scenario, params, mode, threads, shards, sharing,
                              compiled, storage, ticks, reps, args.metrics);
                  if (!have_reference) {
                    have_reference = true;
                    reference = cell.table.Clone();
                    base_ns = cell.seconds / static_cast<double>(ticks) * 1e9;
                  } else if (!reference.Equals(cell.table)) {
                    std::fprintf(
                        stderr,
                        "DETERMINISM VIOLATION: %s units=%d %s threads=%d "
                        "shards=%d sharing=%s compiled=%s storage=%s diverged "
                        "from the group reference:\n%s\n",
                        scenario.c_str(), units, mode_name.c_str(), threads,
                        shards, sharing_name.c_str(), compiled_name.c_str(),
                        storage_name.c_str(),
                        reference.DiffString(cell.table).c_str());
                    return 1;
                  }
                  const double ns =
                      cell.seconds / static_cast<double>(ticks) * 1e9;
                  std::printf(
                      "%-14s %-8s %7d %8d %7d %8s %9s %8s %14.0f %8.2fx\n",
                      scenario.c_str(), mode_name.c_str(), units, threads,
                      shards, sharing_name.c_str(), compiled_name.c_str(),
                      storage_name.c_str(), ns, ns > 0 ? base_ns / ns : 0.0);
                  std::fflush(stdout);
                  json.WriteLine(CellJson(scenario, mode_name.c_str(), units,
                                          threads, shards, sharing, compiled,
                                          storage, ticks, cell));
                }
              }
            }
          }
        }
      }
    }
  }
  // ------------------------------------------------- multi-tenant sweep
  std::printf("\nmulti-tenant serving (indexed, shards=1, per session-tick "
              "ns):\n");
  for (const std::string& scenario : scenarios) {
    for (int32_t units : unit_counts) {
      ScenarioParams params;
      params.units = units;
      params.seed = seed;
      for (int32_t threads : thread_counts) {
        for (int32_t sessions : session_counts) {
          CellResult cell = RunServeCell(scenario, params, threads, sessions,
                                         ticks, reps, args.metrics);
          const double ns =
              cell.seconds / static_cast<double>(ticks * sessions) * 1e9;
          std::printf("%-14s %-8s %7d %8d %7d %8s %9s %8s %14.0f %9s\n",
                      scenario.c_str(), "serve", units, threads, 1, "on",
                      "on", "off", ns,
                      ("s=" + std::to_string(sessions)).c_str());
          std::fflush(stdout);
          json.WriteLine(CellJson(scenario, "indexed", units, threads,
                                  /*shards=*/1, /*sharing=*/true,
                                  /*compiled=*/true, /*storage=*/false, ticks,
                                  cell, sessions));
        }
      }
    }
  }
  std::printf("\nevery cell bit-identical to its (scenario, units) reference; "
              "all invariants held\n");
  return 0;
}
