// Section 6.1's density experiment: 500 units, density swept from 0.5%
// to 8% of grid cells occupied. The paper reports that neither engine is
// particularly sensitive to this parameter (results elided there for
// space); this harness prints the full table.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace sgl;

int main() {
  const int64_t ticks = BenchTicks(30);
  const std::vector<double> densities = {0.005, 0.01, 0.02, 0.04, 0.06, 0.08};

  std::printf("=== Density sensitivity: 500 units, %lld ticks ===\n\n",
              static_cast<long long>(ticks));
  std::printf("%10s %10s %14s %14s %9s\n", "density", "grid", "naive s/tick",
              "indexed s/tick", "speedup");
  for (double d : densities) {
    ScenarioConfig scenario;
    scenario.num_units = 500;
    scenario.density = d;
    scenario.seed = 42;
    double naive = TimeBattle(scenario, EvaluatorMode::kNaive, ticks) / ticks;
    double indexed =
        TimeBattle(scenario, EvaluatorMode::kIndexed, ticks) / ticks;
    std::printf("%9.1f%% %7lldx%-4lld %14.5f %14.5f %8.1fx\n", d * 100,
                static_cast<long long>(scenario.GridSide()),
                static_cast<long long>(scenario.GridSide()), naive, indexed,
                naive / indexed);
  }
  std::printf("\npaper: \"Neither algorithm is particularly sensitive to "
              "this parameter.\"\n");
  return 0;
}
