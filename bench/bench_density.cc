// Section 6.1's density experiment: 500 units, density swept from 0.5%
// to 8% of grid cells occupied. The paper reports that neither engine is
// particularly sensitive to this parameter (results elided there for
// space); this harness prints the full table.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"

using namespace sgl;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_density",
      "  Section 6.1 density sweep at a fixed unit count\n");
  const int64_t ticks = args.TicksOr(30);
  const uint64_t seed = args.SeedOr(42);
  const int32_t naive_max = args.NaiveMaxOr(2000);
  JsonLines json(args.json_path);
  const std::vector<double> densities = {0.005, 0.01, 0.02, 0.04, 0.06, 0.08};

  for (int32_t units : args.UnitsOr({500})) {
    std::printf("=== Density sensitivity: %d units, %lld ticks ===\n\n",
                units, static_cast<long long>(ticks));
    std::printf("%10s %10s %14s %14s %9s\n", "density", "grid",
                "naive s/tick", "indexed s/tick", "speedup");
    for (double d : densities) {
      ScenarioConfig scenario;
      scenario.num_units = units;
      scenario.density = d;
      scenario.seed = seed;
      const bool run_naive = units <= naive_max;
      double naive =
          run_naive ? TimeBattle(scenario, EvaluatorMode::kNaive, ticks) / ticks
                    : 0.0;
      double indexed =
          TimeBattle(scenario, EvaluatorMode::kIndexed, ticks) / ticks;
      if (run_naive) {
        std::printf("%9.1f%% %7lldx%-4lld %14.5f %14.5f %8.1fx\n", d * 100,
                    static_cast<long long>(scenario.GridSide()),
                    static_cast<long long>(scenario.GridSide()), naive, indexed,
                    naive / indexed);
      } else {
        std::printf("%9.1f%% %7lldx%-4lld %14s %14.5f %9s\n", d * 100,
                    static_cast<long long>(scenario.GridSide()),
                    static_cast<long long>(scenario.GridSide()), "(skipped)",
                    indexed, "-");
      }
      std::ostringstream row;
      row << "{\"bench\": \"density\", \"units\": " << units
          << ", \"density\": " << d << ", \"ticks\": " << ticks
          << ", \"naive_s_per_tick\": ";
      if (run_naive) {
        row << naive;
      } else {
        row << "null";  // skipped, not measured-as-zero
      }
      row << ", \"indexed_s_per_tick\": " << indexed << "}";
      json.WriteLine(row.str());
    }
    std::printf("\n");
  }
  std::printf("paper: \"Neither algorithm is particularly sensitive to "
              "this parameter.\"\n");
  return 0;
}
