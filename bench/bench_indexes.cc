// Ablation A1 (google-benchmark): divisible-aggregate probes.
//
// Compares, at several point-set sizes, the cost of answering a COUNT/SUM
// box probe with (a) the paper's layered range tree with fractional
// cascading and prefix aggregates, (b) a games-industry spatial hash
// grid, and (c) a naive scan — plus the build costs that the paper's
// "rebuild every tick" policy pays (Section 5.3).
#include <cmath>

#include <benchmark/benchmark.h>

#include "geom/range_tree.h"
#include "geom/spatial_hash.h"
#include "util/rng.h"

namespace sgl {
namespace {

struct PointWorld {
  std::vector<PointRef> points;
  std::vector<double> values;
  int64_t grid;
};

PointWorld MakePoints(int64_t n) {
  PointWorld w;
  // 1% density, as in the engine benchmarks.
  w.grid = static_cast<int64_t>(std::sqrt(static_cast<double>(n) / 0.01));
  Xoshiro256 rng(99);
  for (int64_t i = 0; i < n; ++i) {
    w.points.push_back(PointRef{static_cast<double>(rng.NextBounded(w.grid)),
                                static_cast<double>(rng.NextBounded(w.grid)),
                                static_cast<int32_t>(i)});
    w.values.push_back(static_cast<double>(rng.NextBounded(100)));
  }
  return w;
}

Rect RandomProbe(Xoshiro256* rng, int64_t grid, double extent) {
  double cx = static_cast<double>(rng->NextBounded(grid));
  double cy = static_cast<double>(rng->NextBounded(grid));
  return Rect::Around(cx, cy, extent, extent);
}

void BM_RangeTreeBuild(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  for (auto _ : state) {
    LayeredRangeTree2D tree(w.points, {w.values});
    benchmark::DoNotOptimize(tree.num_points());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeTreeBuild)->Arg(1000)->Arg(4000)->Arg(14000);

void BM_RangeTreeProbe(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  LayeredRangeTree2D tree(w.points, {w.values});
  Xoshiro256 rng(7);
  const double extent = 32;  // the battle script's SIGHT box
  for (auto _ : state) {
    AggResult r = tree.Aggregate(RandomProbe(&rng, w.grid, extent));
    benchmark::DoNotOptimize(r.count);
  }
}
BENCHMARK(BM_RangeTreeProbe)->Arg(1000)->Arg(4000)->Arg(14000);

void BM_SpatialHashBuild(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  for (auto _ : state) {
    SpatialHashGrid grid(w.points, 16.0);
    benchmark::DoNotOptimize(&grid);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpatialHashBuild)->Arg(1000)->Arg(4000)->Arg(14000);

void BM_SpatialHashProbe(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  SpatialHashGrid grid(w.points, 16.0);
  Xoshiro256 rng(7);
  const double extent = 32;
  for (auto _ : state) {
    // The grid enumerates candidates: probe cost grows with occupancy.
    double sum = 0;
    int64_t count = 0;
    grid.ForEachInRect(RandomProbe(&rng, w.grid, extent),
                       [&](const PointRef& p) {
                         sum += w.values[p.id];
                         ++count;
                       });
    benchmark::DoNotOptimize(sum + static_cast<double>(count));
  }
}
BENCHMARK(BM_SpatialHashProbe)->Arg(1000)->Arg(4000)->Arg(14000);

void BM_NaiveScanProbe(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  Xoshiro256 rng(7);
  const double extent = 32;
  for (auto _ : state) {
    Rect rect = RandomProbe(&rng, w.grid, extent);
    double sum = 0;
    int64_t count = 0;
    for (const PointRef& p : w.points) {
      if (rect.Contains(p.x, p.y)) {
        sum += w.values[p.id];
        ++count;
      }
    }
    benchmark::DoNotOptimize(sum + static_cast<double>(count));
  }
}
BENCHMARK(BM_NaiveScanProbe)->Arg(1000)->Arg(4000)->Arg(14000);

// The per-tick amortized view the paper argues for: one build plus n
// probes (every unit probes once per aggregate per tick).
void BM_RangeTreeBuildPlusNProbes(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  Xoshiro256 rng(7);
  for (auto _ : state) {
    LayeredRangeTree2D tree(w.points, {w.values});
    double acc = 0;
    for (const PointRef& p : w.points) {
      acc += static_cast<double>(
          tree.Aggregate(Rect::Around(p.x, p.y, 32, 32)).count);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeTreeBuildPlusNProbes)->Arg(1000)->Arg(4000)->Arg(14000);

void BM_NaiveNProbes(benchmark::State& state) {
  PointWorld w = MakePoints(state.range(0));
  for (auto _ : state) {
    double acc = 0;
    for (const PointRef& q : w.points) {
      Rect rect = Rect::Around(q.x, q.y, 32, 32);
      int64_t count = 0;
      for (const PointRef& p : w.points) {
        if (rect.Contains(p.x, p.y)) ++count;
      }
      acc += static_cast<double>(count);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaiveNProbes)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace sgl

BENCHMARK_MAIN();
