// Ablation A2: MIN/MAX aggregate strategies (Section 5.3.1's second half).
//
// min/max are not divisible, so the paper proposes the Figure 9 sweep
// line for constant-extent ranges; the natural alternative is a
// canonical-decomposition range-extremum tree (O(log^2 n) per probe).
// This harness times, for all n units probing once:
//   naive scan           O(n^2)
//   minmax range tree    build + n probes, O(n log^2 n)
//   sweep line           one batch, O(n log n)
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "geom/minmax_tree.h"
#include "geom/sweepline.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace sgl;

namespace {

struct World {
  std::vector<PointRef> points;
  std::vector<double> values;
  std::vector<int64_t> keys;
  int64_t grid;
};

World MakeWorld(int64_t n, uint64_t seed) {
  World w;
  w.grid = static_cast<int64_t>(std::sqrt(static_cast<double>(n) / 0.01));
  Xoshiro256 rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    w.points.push_back(PointRef{static_cast<double>(rng.NextBounded(w.grid)),
                                static_cast<double>(rng.NextBounded(w.grid)),
                                static_cast<int32_t>(i)});
    w.values.push_back(static_cast<double>(rng.NextBounded(1000)));
    w.keys.push_back(i);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_minmax",
      "  ablation A2: MIN/MAX aggregate strategies (scan, tree, sweep)\n");
  const uint64_t seed = args.SeedOr(5);
  JsonLines json(args.json_path);
  const double extent = 24;  // the battle script's BOW_RANGE box
  std::printf("=== MIN aggregate strategies: all n units probe a "
              "constant-extent box ===\n\n");
  std::printf("%8s %12s %14s %14s %12s %12s\n", "n", "naive(s)",
              "mm-tree(s)", "sweep(s)", "mm speedup", "sweep speedup");

  for (int32_t n : args.UnitsOr({500, 1000, 2000, 4000, 8000, 14000})) {
    World w = MakeWorld(n, seed);
    volatile double guard = 0;

    // Naive: every unit scans every unit.
    double naive_s;
    {
      Timer t;
      double acc = 0;
      for (const PointRef& q : w.points) {
        Rect rect = Rect::Around(q.x, q.y, extent, extent);
        Extremum best = Extremum::None();
        for (const PointRef& p : w.points) {
          if (rect.Contains(p.x, p.y)) {
            best = Extremum::Min(best, Extremum{w.values[p.id], w.keys[p.id]});
          }
        }
        acc += best.valid() ? best.value : 0;
      }
      naive_s = t.Seconds();
      guard = guard + acc;
    }

    // Canonical range-extremum tree: build + n probes.
    double mm_s;
    {
      Timer t;
      MinMaxRangeTree2D tree(w.points, w.values, w.keys,
                             MinMaxRangeTree2D::Mode::kMin);
      double acc = 0;
      for (const PointRef& q : w.points) {
        Extremum best = tree.Query(Rect::Around(q.x, q.y, extent, extent));
        acc += best.valid() ? best.value : 0;
      }
      mm_s = t.Seconds();
      guard = guard + acc;
    }

    // Figure 9 sweep line: one batch with shared extents.
    double sweep_s;
    {
      Timer t;
      SweepLineExtremum sweep(w.points, w.values, w.keys,
                              SweepLineExtremum::Mode::kMin);
      std::vector<SweepProbe> probes;
      probes.reserve(w.points.size());
      for (const PointRef& q : w.points) {
        probes.push_back(
            SweepProbe{q.x, q.y, extent, static_cast<int32_t>(q.id)});
      }
      std::vector<Extremum> out(w.points.size());
      sweep.Run(std::move(probes), extent, &out);
      double acc = 0;
      for (const Extremum& e : out) acc += e.valid() ? e.value : 0;
      sweep_s = t.Seconds();
      guard = guard + acc;
    }

    std::printf("%8lld %12.4f %14.4f %14.4f %11.1fx %11.1fx\n",
                static_cast<long long>(n), naive_s, mm_s, sweep_s,
                naive_s / mm_s, naive_s / sweep_s);
    std::ostringstream row;
    row << "{\"bench\": \"minmax\", \"units\": " << n
        << ", \"naive_s\": " << naive_s << ", \"mm_tree_s\": " << mm_s
        << ", \"sweep_s\": " << sweep_s << "}";
    json.WriteLine(row.str());
  }
  std::printf("\npaper: the sweep line computes all MIN probes in "
              "O(n log n) total when extents are constant (Figure 9).\n");
  return 0;
}
