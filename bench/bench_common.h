// Shared helpers for the paper-figure benchmark harnesses.
#ifndef SGL_BENCH_BENCH_COMMON_H_
#define SGL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "game/battle.h"
#include "util/timer.h"

namespace sgl {

/// Ticks per measurement. The paper simulates 500 ticks per data point;
/// that is minutes of naive-engine wall clock, so the default here is
/// smaller and the harness reports per-tick numbers (which the paper's
/// own "proportional to the number of ticks simulated, to within one
/// percent" observation justifies). Set SGL_BENCH_TICKS=500 to reproduce
/// the full-scale run.
inline int64_t BenchTicks(int64_t fallback = 20) {
  const char* env = std::getenv("SGL_BENCH_TICKS");
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Largest unit count the naive engine is asked to simulate (its O(n^2)
/// tick cost makes the full 14000-unit sweep impractical by design —
/// that asymmetry is the experiment). Override with SGL_BENCH_NAIVE_MAX.
inline int32_t NaiveMaxUnits(int32_t fallback = 2000) {
  const char* env = std::getenv("SGL_BENCH_NAIVE_MAX");
  if (env != nullptr) {
    int32_t v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Run one battle configuration and return seconds for `ticks` ticks.
inline double TimeBattle(const ScenarioConfig& scenario, EvaluatorMode mode,
                         int64_t ticks) {
  auto setup = MakeBattleSim(scenario, mode);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    std::exit(1);
  }
  Timer timer;
  Status st = setup->sim->Run(ticks);
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return timer.Seconds();
}

}  // namespace sgl

#endif  // SGL_BENCH_BENCH_COMMON_H_
