// Shared helpers for the benchmark harnesses: the unified CLI flag
// parser every bench uses, environment-variable fallbacks, and the
// battle timing shim the paper-figure benches share.
//
// Flags (unified across all benches; each harness reads the subset it
// needs and documents its defaults in its usage string):
//
//   --units 500,2000      unit-count sweep (comma-separated list)
//   --ticks N             ticks per measurement
//   --threads 1,4         worker-thread sweep
//   --shards 1,2          (bench_suite) shard-worker sweep
//   --seed N              scenario seed
//   --json PATH           also write machine-readable results to PATH
//   --scenarios a,b       (bench_suite) restrict to named scenarios
//   --modes naive,indexed (bench_suite) evaluator modes
//   --compiled on,off     (bench_suite) bytecode-VM sweep
//   --storage off,on      (bench_suite) disk-backed world sweep
//   --naive-max N         largest unit count the naive evaluator runs
//   --quick               small preset for CI smoke runs
//   --list                (bench_suite) list scenarios and exit
//
// Flag > environment variable (SGL_BENCH_TICKS, SGL_BENCH_NAIVE_MAX) >
// built-in default, so existing env-driven invocations keep working.
#ifndef SGL_BENCH_BENCH_COMMON_H_
#define SGL_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "game/battle.h"
#include "util/timer.h"

namespace sgl {

/// Ticks per measurement. The paper simulates 500 ticks per data point;
/// that is minutes of naive-engine wall clock, so the default here is
/// smaller and the harness reports per-tick numbers (which the paper's
/// own "proportional to the number of ticks simulated, to within one
/// percent" observation justifies). Set SGL_BENCH_TICKS=500 to reproduce
/// the full-scale run.
inline int64_t BenchTicks(int64_t fallback = 20) {
  const char* env = std::getenv("SGL_BENCH_TICKS");
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Largest unit count the naive engine is asked to simulate (its O(n^2)
/// tick cost makes the full 14000-unit sweep impractical by design —
/// that asymmetry is the experiment). Override with SGL_BENCH_NAIVE_MAX.
inline int32_t NaiveMaxUnits(int32_t fallback = 2000) {
  const char* env = std::getenv("SGL_BENCH_NAIVE_MAX");
  if (env != nullptr) {
    int32_t v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Parsed unified bench CLI. Zero/empty fields mean "not given"; the
/// *Or accessors layer flag > env > default.
struct BenchArgs {
  std::vector<int32_t> units;
  std::vector<int32_t> threads;
  std::vector<int32_t> shards;  // shard-worker sweep (bench_suite)
  std::vector<int32_t> sessions;  // co-scheduled session sweep (bench_suite)
  std::vector<std::string> scenarios;
  std::vector<std::string> modes;
  std::vector<std::string> sharing;   // "on" / "off" sweep (bench_suite)
  std::vector<std::string> compiled;  // "on" / "off" sweep (bench_suite)
  std::vector<std::string> storage;   // "off" / "on" sweep (bench_suite)
  int64_t ticks = 0;
  uint64_t seed = 0;
  bool seed_set = false;  // --seed 0 is a legitimate seed
  int64_t naive_max = 0;
  std::string json_path;
  bool quick = false;
  bool list = false;
  /// Embed each cell's deterministic metrics snapshot in the JSON output
  /// (bench_suite): informational context for tools/bench_compare.py's
  /// regression reports, never itself a gate.
  bool metrics = false;

  int64_t TicksOr(int64_t fallback) const {
    return ticks > 0 ? ticks : BenchTicks(fallback);
  }
  uint64_t SeedOr(uint64_t fallback) const {
    return seed_set ? seed : fallback;
  }
  int32_t NaiveMaxOr(int32_t fallback) const {
    return naive_max > 0 ? static_cast<int32_t>(naive_max)
                         : NaiveMaxUnits(fallback);
  }
  std::vector<int32_t> UnitsOr(std::vector<int32_t> fallback) const {
    return units.empty() ? fallback : units;
  }
  std::vector<int32_t> ThreadsOr(std::vector<int32_t> fallback) const {
    return threads.empty() ? fallback : threads;
  }
  std::vector<int32_t> ShardsOr(std::vector<int32_t> fallback) const {
    return shards.empty() ? fallback : shards;
  }
  std::vector<int32_t> SessionsOr(std::vector<int32_t> fallback) const {
    return sessions.empty() ? fallback : sessions;
  }
};

namespace bench_internal {

inline std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Strict integer parse: the whole token must be digits (no atoi-style
/// silent truncation of "1e3" to 1). Exits (2) on malformed input.
inline int64_t ParseIntOrExit(const char* flag, const std::string& token) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: '%s' is not an integer\n", flag, token.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

inline int64_t ParsePositiveIntOrExit(const char* flag,
                                      const std::string& token) {
  int64_t v = ParseIntOrExit(flag, token);
  if (v <= 0) {
    std::fprintf(stderr, "%s: '%s' must be positive\n", flag, token.c_str());
    std::exit(2);
  }
  return v;
}

inline std::vector<int32_t> SplitIntList(const char* flag,
                                         const std::string& csv) {
  std::vector<int32_t> out;
  for (const std::string& item : SplitList(csv)) {
    out.push_back(
        static_cast<int32_t>(ParsePositiveIntOrExit(flag, item)));
  }
  return out;
}

}  // namespace bench_internal

/// Print the unified usage block (shared flag vocabulary) plus the
/// bench-specific preamble.
inline void PrintBenchUsage(const char* bench, const char* extra) {
  std::fprintf(stderr,
               "usage: %s [flags]\n"
               "%s"
               "  --units A,B,...     unit-count sweep\n"
               "  --ticks N           ticks per measurement "
               "(env SGL_BENCH_TICKS)\n"
               "  --threads A,B,...   worker-thread sweep\n"
               "  --shards A,B,...    shard-worker sweep (bench_suite)\n"
               "  --sessions A,B,...  co-scheduled session sweep "
               "(bench_suite)\n"
               "  --seed N            workload seed\n"
               "  --json PATH         write machine-readable results to PATH\n"
               "  --scenarios A,B,... restrict to named scenarios\n"
               "  --modes A,B,...     evaluator modes "
               "(naive, indexed, adaptive)\n"
               "  --sharing A,B,...   aggregate-sharing sweep (on, off)\n"
               "  --compiled A,B,...  bytecode-VM sweep (on, off)\n"
               "  --storage A,B,...   disk-backed world sweep (off, on)\n"
               "  --naive-max N       naive-evaluator unit cap "
               "(env SGL_BENCH_NAIVE_MAX)\n"
               "  --quick             small CI smoke preset\n"
               "  --metrics           embed per-cell metrics snapshots in "
               "the JSON\n"
               "  --list              list registered scenarios and exit\n",
               bench, extra);
}

/// Parse argv with the unified flag vocabulary; exits (2) on malformed
/// input, exits (0) after printing usage for --help.
inline BenchArgs ParseBenchArgsOrExit(int argc, char** argv, const char* bench,
                                      const char* extra_usage = "") {
  BenchArgs args;
  auto value_of = [&](int* i, const char* flag) -> std::string {
    const char* arg = argv[*i];
    const char* eq = std::strchr(arg, '=');
    if (eq != nullptr) return std::string(eq + 1);
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    return std::string(argv[++*i]);
  };
  auto is_flag = [](const char* arg, const char* name) {
    size_t n = std::strlen(name);
    return std::strncmp(arg, name, n) == 0 &&
           (arg[n] == '\0' || arg[n] == '=');
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (is_flag(arg, "--units")) {
      args.units =
          bench_internal::SplitIntList("--units", value_of(&i, "--units"));
    } else if (is_flag(arg, "--ticks")) {
      args.ticks = bench_internal::ParsePositiveIntOrExit(
          "--ticks", value_of(&i, "--ticks"));
    } else if (is_flag(arg, "--threads")) {
      args.threads =
          bench_internal::SplitIntList("--threads", value_of(&i, "--threads"));
    } else if (is_flag(arg, "--shards")) {
      args.shards =
          bench_internal::SplitIntList("--shards", value_of(&i, "--shards"));
    } else if (is_flag(arg, "--sessions")) {
      args.sessions = bench_internal::SplitIntList(
          "--sessions", value_of(&i, "--sessions"));
    } else if (is_flag(arg, "--seed")) {
      args.seed = static_cast<uint64_t>(
          bench_internal::ParseIntOrExit("--seed", value_of(&i, "--seed")));
      args.seed_set = true;
    } else if (is_flag(arg, "--json")) {
      args.json_path = value_of(&i, "--json");
    } else if (is_flag(arg, "--scenarios")) {
      args.scenarios = bench_internal::SplitList(value_of(&i, "--scenarios"));
    } else if (is_flag(arg, "--modes")) {
      args.modes = bench_internal::SplitList(value_of(&i, "--modes"));
    } else if (is_flag(arg, "--sharing")) {
      args.sharing = bench_internal::SplitList(value_of(&i, "--sharing"));
      for (const std::string& s : args.sharing) {
        if (s != "on" && s != "off") {
          std::fprintf(stderr, "--sharing: '%s' is not on/off\n", s.c_str());
          std::exit(2);
        }
      }
    } else if (is_flag(arg, "--compiled")) {
      args.compiled = bench_internal::SplitList(value_of(&i, "--compiled"));
      for (const std::string& s : args.compiled) {
        if (s != "on" && s != "off") {
          std::fprintf(stderr, "--compiled: '%s' is not on/off\n", s.c_str());
          std::exit(2);
        }
      }
    } else if (is_flag(arg, "--storage")) {
      args.storage = bench_internal::SplitList(value_of(&i, "--storage"));
      for (const std::string& s : args.storage) {
        if (s != "on" && s != "off") {
          std::fprintf(stderr, "--storage: '%s' is not on/off\n", s.c_str());
          std::exit(2);
        }
      }
    } else if (is_flag(arg, "--naive-max")) {
      args.naive_max = bench_internal::ParsePositiveIntOrExit(
          "--naive-max", value_of(&i, "--naive-max"));
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      args.metrics = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintBenchUsage(bench, extra_usage);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n\n", arg);
      PrintBenchUsage(bench, extra_usage);
      std::exit(2);
    }
  }
  return args;
}

/// Append-mode JSON-lines sink: each bench row becomes one object. A
/// default-constructed (pathless) sink swallows writes, so call sites
/// don't branch on --json.
class JsonLines {
 public:
  JsonLines() = default;
  explicit JsonLines(const std::string& path) {
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      std::exit(2);
    }
  }
  ~JsonLines() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonLines(const JsonLines&) = delete;
  JsonLines& operator=(const JsonLines&) = delete;

  void WriteLine(const std::string& json_object) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n", json_object.c_str());
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
};

/// Run one battle configuration and return seconds for `ticks` ticks.
inline double TimeBattle(const ScenarioConfig& scenario, EvaluatorMode mode,
                         int64_t ticks) {
  auto setup = MakeBattleSim(scenario, mode);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    std::exit(1);
  }
  Timer timer;
  Status st = setup->sim->Run(ticks);
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return timer.Seconds();
}

}  // namespace sgl

#endif  // SGL_BENCH_BENCH_COMMON_H_
