// Ablation A4: the ⊕ area-of-effect optimization (Section 5.4).
//
// A healer-heavy battle maximizes area-of-effect pressure: most units
// cast auras most ticks. The naive engine applies each aura by scanning
// E (O(n) per casting unit, O(n^2) per tick); the indexed engine defers
// all auras, builds one index over the effect centers per action type,
// and lets every unit probe it once (O(n log n) per tick).
#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace sgl;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_combine",
      "  ablation A4: area-of-effect combination, healer-heavy armies\n");
  const int64_t ticks = args.TicksOr(20);
  const uint64_t seed = args.SeedOr(42);
  JsonLines json(args.json_path);
  std::printf("=== Area-of-effect ⊕ combination: healer-heavy armies ===\n");
  std::printf("(10%% knights, 10%% archers, 80%% healers; wounded units "
              "everywhere keep auras firing)\n\n");
  std::printf("%8s %14s %14s %9s\n", "units", "naive s/tick",
              "indexed s/tick", "speedup");
  for (int32_t n : args.UnitsOr({250, 500, 1000, 2000, 4000})) {
    ScenarioConfig scenario;
    scenario.num_units = n;
    scenario.density = 0.04;  // dense: auras overlap heavily
    scenario.knight_fraction = 0.1;
    scenario.archer_fraction = 0.1;
    scenario.seed = seed;
    bool run_naive = n <= args.NaiveMaxOr(2000);
    double naive =
        run_naive ? TimeBattle(scenario, EvaluatorMode::kNaive, ticks) /
                        static_cast<double>(ticks)
                  : 0.0;
    double indexed = TimeBattle(scenario, EvaluatorMode::kIndexed, ticks) /
                     static_cast<double>(ticks);
    if (run_naive) {
      std::printf("%8d %14.5f %14.5f %8.1fx\n", n, naive, indexed,
                  naive / indexed);
    } else {
      std::printf("%8d %14s %14.5f %9s\n", n, "(skipped)", indexed, "-");
    }
    std::ostringstream row;
    row << "{\"bench\": \"combine\", \"units\": " << n
        << ", \"ticks\": " << ticks << ", \"naive_s_per_tick\": ";
    if (run_naive) {
      row << naive;
    } else {
      row << "null";  // skipped, not measured-as-zero
    }
    row << ", \"indexed_s_per_tick\": " << indexed << "}";
    json.WriteLine(row.str());
  }
  std::printf("\npaper: nonstackable effects combine by MAX over an index "
              "of effect centres; stackable ones by SUM (Section 5.4).\n");
  return 0;
}
