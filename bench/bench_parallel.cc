// Units-vs-threads scaling matrix for the deterministic parallel tick
// pipeline (src/exec/): the battle workload at 1k/10k/100k units run with
// 1/2/4/8 worker threads, one JSON line per configuration so BENCH_*.json
// trajectories can track tick throughput and parallel speedup over time.
//
// Flags: --units / --threads override the sweep lists, --ticks the
// per-configuration tick count (env SGL_BENCH_TICKS as fallback),
// --json tees the JSON lines to a file. SGL_BENCH_MAX_UNITS and
// SGL_BENCH_MAX_THREADS still cap the default sweeps.
//
// Every configuration also cross-checks the determinism contract: the
// final table of each multi-threaded run must be bit-identical to the
// single-threaded run of the same scenario.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/simulation.h"
#include "env/table.h"
#include "game/battle.h"
#include "util/timer.h"

namespace sgl {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

struct RunResult {
  double seconds = 0.0;
  EnvironmentTable table{Schema()};
};

RunResult RunConfig(int32_t units, int32_t threads, int64_t ticks,
                    uint64_t seed) {
  ScenarioConfig scenario;
  scenario.num_units = units;
  scenario.seed = seed;
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.threads = threads;
  auto setup = MakeBattleSimWithConfig(scenario, config);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 setup.status().ToString().c_str());
    std::exit(1);
  }
  Timer timer;
  Status st = setup->sim->Run(ticks);
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  RunResult result;
  result.seconds = timer.Seconds();
  result.table = setup->sim->table().Clone();
  return result;
}

}  // namespace
}  // namespace sgl

int main(int argc, char** argv) {
  using namespace sgl;
  BenchArgs args = ParseBenchArgsOrExit(
      argc, argv, "bench_parallel",
      "  units-vs-threads scaling of the deterministic parallel pipeline\n");
  const int64_t ticks = args.TicksOr(5);
  const int64_t max_units = EnvInt("SGL_BENCH_MAX_UNITS", 100000);
  const int64_t max_threads = EnvInt("SGL_BENCH_MAX_THREADS", 8);
  const uint64_t seed = args.SeedOr(7);
  JsonLines json(args.json_path);

  const std::vector<int32_t> unit_counts = args.UnitsOr({1000, 10000, 100000});
  const std::vector<int32_t> thread_counts = args.ThreadsOr({1, 2, 4, 8});

  for (int32_t units : unit_counts) {
    if (units > max_units) continue;
    double base_seconds = 0.0;
    bool have_reference = false;
    int32_t ref_threads = 0;
    RunResult reference;
    for (int32_t threads : thread_counts) {
      if (threads > max_threads) continue;
      RunResult run = RunConfig(units, threads, ticks, seed);
      // The sweep's first configuration (normally 1 thread) is the
      // bit-exactness reference and the speedup baseline.
      if (!have_reference) {
        have_reference = true;
        ref_threads = threads;
        base_seconds = run.seconds;
        reference = std::move(run);
      } else if (!reference.table.Equals(run.table)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at units=%d threads=%d:\n%s\n",
                     units, threads,
                     reference.table.DiffString(run.table).c_str());
        return 1;
      }
      const double seconds = run.seconds > 0.0 ? run.seconds : base_seconds;
      const double ticks_per_sec =
          seconds > 0.0 ? static_cast<double>(ticks) / seconds : 0.0;
      const double speedup = seconds <= 0.0 ? 1.0 : base_seconds / seconds;
      // "speedup_vs_1t" (the trajectory's established key) only when the
      // reference really is the single-threaded run; a custom --threads
      // list without 1 gets an explicitly-labeled reference instead.
      char row[320];
      std::snprintf(
          row, sizeof(row),
          "{\"bench\": \"parallel\", \"units\": %d, \"threads\": %d, "
          "\"ticks\": %lld, \"seconds\": %.6f, \"ticks_per_sec\": %.3f, "
          "\"%s\": %.3f, \"ref_threads\": %d, \"deterministic\": true}",
          units, threads, static_cast<long long>(ticks), seconds,
          ticks_per_sec,
          ref_threads == 1 ? "speedup_vs_1t" : "speedup_vs_ref", speedup,
          ref_threads);
      std::printf("%s\n", row);
      std::fflush(stdout);
      json.WriteLine(row);
    }
  }
  return 0;
}
