// Coordination without central control (Section 3.2): archers keep the
// knights between themselves and the enemy, each acting on its own
// aggregate queries. We run the battle and report, per side, how often
// the three centroids (enemy — knights — archers) are ordered with the
// knights in the middle along the axis between the armies.
#include <cstdio>

#include "game/battle.h"

using namespace sgl;

namespace {

struct Centroids {
  double knights_x = 0, archers_x = 0, enemy_x = 0;
  int32_t knights = 0, archers = 0, enemy = 0;
};

Centroids Measure(const EnvironmentTable& t, double player) {
  const Schema& s = t.schema();
  AttrId posx = s.Find("posx"), pl = s.Find("player"), ty = s.Find("unittype");
  Centroids c;
  for (RowId r = 0; r < t.NumRows(); ++r) {
    double x = t.Get(r, posx);
    if (t.Get(r, pl) != player) {
      c.enemy_x += x;
      ++c.enemy;
      continue;
    }
    if (t.Get(r, ty) == 0.0) {
      c.knights_x += x;
      ++c.knights;
    } else if (t.Get(r, ty) == 1.0) {
      c.archers_x += x;
      ++c.archers;
    }
  }
  if (c.enemy > 0) c.enemy_x /= c.enemy;
  if (c.knights > 0) c.knights_x /= c.knights;
  if (c.archers > 0) c.archers_x /= c.archers;
  return c;
}

}  // namespace

int main() {
  ScenarioConfig scenario;
  scenario.num_units = 400;
  scenario.density = 0.015;
  scenario.knight_fraction = 0.5;
  scenario.archer_fraction = 0.4;
  scenario.seed = 31;

  auto setup = MakeBattleSim(scenario, EvaluatorMode::kIndexed);
  if (!setup.ok()) {
    std::fprintf(stderr, "%s\n", setup.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = *setup->sim;

  std::printf("Armies start in opposite halves; player 0 attacks east.\n");
  std::printf("%5s %28s %28s\n", "", "player 0 (enemy|knight|archer)",
              "player 1 (enemy|knight|archer)");
  int32_t formed = 0, measured = 0;
  for (int tick = 1; tick <= 48; ++tick) {
    Status st = sim.Tick();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    Centroids c0 = Measure(sim.table(), 0);
    Centroids c1 = Measure(sim.table(), 1);
    // Player 0 fights toward +x: formation means enemy_x > knights_x >
    // archers_x. Player 1 mirrors.
    bool f0 = c0.enemy_x > c0.knights_x && c0.knights_x > c0.archers_x;
    bool f1 = c1.enemy_x < c1.knights_x && c1.knights_x < c1.archers_x;
    ++measured;
    if (f0) ++formed;
    ++measured;
    if (f1) ++formed;
    if (tick % 8 == 0) {
      std::printf("t=%3d  %8.1f |%8.1f |%8.1f  %8.1f |%8.1f |%8.1f  %s%s\n",
                  tick, c0.enemy_x, c0.knights_x, c0.archers_x, c1.enemy_x,
                  c1.knights_x, c1.archers_x, f0 ? "[0 formed]" : "",
                  f1 ? "[1 formed]" : "");
    }
  }
  std::printf("\nknights-in-the-middle held in %d of %d side-ticks "
              "(%.0f%%)\n",
              formed, measured, 100.0 * formed / measured);
  std::printf("No commander issued these orders: each archer independently "
              "probed the knight and enemy centroids and moved toward the "
              "reflected point (archer_reposition in the battle script).\n");
  return 0;
}
