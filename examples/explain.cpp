// EXPLAIN: show what the optimizer does to the battle script.
//
// Prints, for every aggregate declaration, the physical strategy chosen
// by signature extraction (Section 5.3's conjunct classification), the
// multi-query index-family sharing, and the per-action update strategies
// (direct-key vs deferred area-of-effect vs scan fallback, Section 5.4).
#include <cstdio>

#include "algebra/plan.h"
#include "game/battle.h"
#include "opt/action_sink.h"
#include "opt/indexed_provider.h"

using namespace sgl;

int main() {
  auto script = CompileScript(BattleScriptSource(), BattleSchema());
  if (!script.ok()) {
    std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
    return 1;
  }
  Interpreter interp(*script);

  std::printf("schema: %s\n\n", script->schema.ToString().c_str());

  // The logical layer: Figure 6(a) translation and the rewritten plan.
  auto logical = TranslateScript(*script);
  if (logical.ok()) {
    auto optimized = OptimizePlan(*logical);
    if (optimized.ok()) {
      std::printf("--- logical plan (Figure 6(a) translation) ---\n");
      std::printf("operators: %d, aggregate extensions: %d\n\n",
                  logical->NumNodes(), logical->NumAggregateNodes());
      std::printf("--- after rewrites (6(a) -> 6(d)) ---\n");
      std::printf("operators: %d, aggregate extensions: %d, "
                  "shared signatures: %d\n\n",
                  optimized->NumNodes(), optimized->NumAggregateNodes(),
                  optimized->NumSharedSignatures());
      std::printf("%s\n", optimized->ToString().c_str());
    }
  }

  auto provider = IndexedAggregateProvider::Create(*script, interp);
  auto sink = IndexedActionSink::Create(*script, interp);
  if (!provider.ok() || !sink.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  std::printf("%s\n", (*provider)->DescribePlan().c_str());
  std::printf("%s\n", (*sink)->DescribePlan().c_str());

  std::printf("Per-aggregate detail:\n");
  for (size_t a = 0; a < script->program.aggregates.size(); ++a) {
    std::printf("  %s\n",
                DescribeSignature(*script, (*provider)->signature(a)).c_str());
  }

  std::printf(
      "\nEvery unit's script runs unchanged; the optimizer rewrote only\n"
      "how its aggregate calls and performs are evaluated. kNaive entries\n"
      "fall back to reference scans without affecting the others.\n");
  return 0;
}
