// EXPLAIN: show what the optimizer does to the battle script.
//
// Prints the combined Simulation::Explain() — per registered script, the
// Figure 6 logical plan before/after rewrites, the physical strategy
// chosen for every aggregate (Section 5.3's conjunct classification), the
// multi-query index-family sharing, and the per-action update strategies
// (direct-key vs deferred area-of-effect vs scan fallback, Section 5.4).
#include <cstdio>

#include "game/battle.h"
#include "opt/signature.h"

using namespace sgl;

int main() {
  ScenarioConfig scenario;
  scenario.num_units = 100;
  auto setup = MakeBattleSim(scenario, EvaluatorMode::kIndexed);
  if (!setup.ok()) {
    std::fprintf(stderr, "%s\n", setup.status().ToString().c_str());
    return 1;
  }
  const Simulation& sim = *setup->sim;

  std::printf("schema: %s\n\n", sim.table().schema().ToString().c_str());
  std::printf("%s", sim.Explain().c_str());

  const ScriptSession& session = sim.session(0);
  std::printf("Per-aggregate detail:\n");
  for (size_t a = 0; a < session.script.program.aggregates.size(); ++a) {
    std::printf("  %s\n",
                DescribeSignature(session.script,
                                  session.provider->signature(a))
                    .c_str());
  }

  std::printf(
      "\nEvery unit's script runs unchanged; the optimizer rewrote only\n"
      "how its aggregate calls and performs are evaluated. kNaive entries\n"
      "fall back to reference scans without affecting the others.\n");
  return 0;
}
