// Tour of the scenario library: list every registered workload, or run
// one and watch its phase profile.
//
//   scenarios                 # list the library
//   scenarios epidemic        # run one (400 units, 60 ticks)
//   scenarios ctf 1000 100    # scenario, units, ticks
#include <cstdio>
#include <cstdlib>

#include "scenario/scenario.h"

using namespace sgl;

int main(int argc, char** argv) {
  auto& registry = ScenarioRegistry::Global();
  if (argc < 2) {
    std::printf("Registered scenarios (run with: scenarios <name> "
                "[units] [ticks]):\n\n");
    for (const std::string& name : registry.List()) {
      auto def = registry.Get(name);
      std::printf("  %-14s %s\n", name.c_str(), (*def)->description.c_str());
    }
    return 0;
  }

  ScenarioParams params;
  params.units = argc > 2 ? std::atoi(argv[2]) : 400;
  params.density = 0.02;
  params.seed = 11;
  const int64_t ticks = argc > 3 ? std::atoll(argv[3]) : 60;

  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  auto sim = registry.BuildSimulation(argv[1], params, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  Status st = (*sim)->Run(ticks);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %lld ticks over %d rows\n\n", (*sim)->name().c_str(),
              static_cast<long long>(ticks), (*sim)->table().NumRows());
  std::printf("%s\n", (*sim)->stats().ToString().c_str());

  st = registry.CheckInvariants(argv[1], params, **sim);
  if (!st.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("invariants: OK\n");
  return 0;
}
