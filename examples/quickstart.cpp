// Quickstart: define a schema, write an SGL script, run a few ticks.
//
// The world: wolves chase the nearest sheep; each wolf bite costs the
// sheep 5 health. Sheep run from the nearest wolf. Everything here goes
// through the public API: Schema -> CompileScript -> SimulationBuilder
// -> Tick.
#include <cstdio>
#include <memory>

#include "engine/simulation.h"
#include "sgl/analyzer.h"

using namespace sgl;

namespace {

const char* kScript = R"SGL(
  const WOLF = 0;
  const SHEEP = 1;
  const BITE_RANGE = 2;

  aggregate NearestOfSpecies(u, species) {
    select nearest(*) from E e
    where e.species = species and e.key <> u.key;
  }

  action Bite(u, target) {
    update e where e.key = target set damage += 5;
  }
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function wolf(u) {
    let prey = NearestOfSpecies(u, SHEEP);
    if prey.found = 1 and prey.dist2 <= BITE_RANGE * BITE_RANGE then
      perform Bite(u, prey.key);
    else if prey.found = 1 then
      perform Move(u, prey.posx - u.posx, prey.posy - u.posy);
  }

  function sheep(u) {
    let hunter = NearestOfSpecies(u, WOLF);
    if hunter.found = 1 then {
      let away = (u.posx, u.posy) - (hunter.posx, hunter.posy);
      perform Move(u, away.x, away.y);
    }
  }

  function main(u) {
    if u.species = WOLF then perform wolf(u);
    else perform sheep(u);
  }
)SGL";

// Minimal mechanics: damage reduces health; the dead are removed. The
// simulation owns this object (SetMechanics takes a unique_ptr). Schema
// lookups use Require, so a misconfigured schema fails loudly instead of
// corrupting the table.
class Pasture : public GameMechanics {
 public:
  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer&,
                      const TickRandom&) override {
    const Schema& s = table->schema();
    SGL_ASSIGN_OR_RETURN(AttrId health, s.Require("health"));
    SGL_ASSIGN_OR_RETURN(AttrId damage, s.Require("damage"));
    for (RowId r = 0; r < table->NumRows(); ++r) {
      table->Set(r, health, table->Get(r, health) - table->Get(r, damage));
    }
    return Status::OK();
  }
  Status EndTick(EnvironmentTable* table, const TickRandom&) override {
    SGL_ASSIGN_OR_RETURN(AttrId health, table->schema().Require("health"));
    table->RemoveIf([&](RowId r) { return table->Get(r, health) <= 0.0; });
    return Status::OK();
  }
};

}  // namespace

int main() {
  // 1. Schema: state attributes are const; effects carry combine tags.
  Schema schema;
  (void)schema.AddAttribute("species", CombineType::kConst);
  (void)schema.AddAttribute("posx", CombineType::kConst);
  (void)schema.AddAttribute("posy", CombineType::kConst);
  (void)schema.AddAttribute("health", CombineType::kConst);
  (void)schema.AddAttribute("damage", CombineType::kSum);
  (void)schema.AddAttribute("movex", CombineType::kSum);
  (void)schema.AddAttribute("movey", CombineType::kSum);

  // 2. Populate the environment table E.
  EnvironmentTable table(schema);
  //                        species posx posy health dmg mx my
  (void)table.AddRow({0, 0, 0, 99, 0, 0, 0});    // a wolf
  (void)table.AddRow({0, 15, 15, 99, 0, 0, 0});  // another wolf
  (void)table.AddRow({1, 5, 5, 10, 0, 0, 0});    // sheep
  (void)table.AddRow({1, 6, 9, 10, 0, 0, 0});
  (void)table.AddRow({1, 12, 4, 10, 0, 0, 0});

  // 3. Compile the script against the schema.
  auto script = CompileScript(kScript, schema);
  if (!script.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 script.status().ToString().c_str());
    return 1;
  }

  // 4. Assemble the simulation (indexed evaluator; try kNaive — same
  // results, bit for bit).
  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.grid_width = 20;
  config.grid_height = 20;
  config.step_per_tick = 2.0;

  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .SetConfig(config)
      .AddScript("pasture", script.MoveValue())
      .SetMechanics(std::make_unique<Pasture>());
  auto sim = builder.Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "simulation error: %s\n",
                 sim.status().ToString().c_str());
    return 1;
  }

  std::printf("tick  sheep alive\n");
  for (int tick = 0; tick < 30; ++tick) {
    Status st = (*sim)->Tick();
    if (!st.ok()) {
      std::fprintf(stderr, "tick error: %s\n", st.ToString().c_str());
      return 1;
    }
    int32_t sheep = 0;
    const EnvironmentTable& t = (*sim)->table();
    AttrId species = t.schema().Find("species");
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (t.Get(r, species) == 1.0) ++sheep;
    }
    if (tick % 5 == 4) std::printf("%4d  %d\n", tick + 1, sheep);
  }
  std::printf("\nfinal table:\n%s", (*sim)->table().ToString(10).c_str());
  std::printf("\nper-phase statistics:\n%s",
              (*sim)->stats().ToString().c_str());
  return 0;
}
