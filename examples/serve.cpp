// Serving demo: one SessionManager hosting several independent game
// sessions on a shared thread pool, with live action injection.
//
//   serve                     # 3 battle sessions, 40 ticks each
//   serve epidemic 4 60       # scenario, sessions, ticks-per-session
//
// Each session is a full Simulation: same scenario, different seed, so
// the worlds diverge while sharing one executor. Mid-run we inject a
// unit action into session 0 and show the inlet counters move.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/scenario.h"
#include "serve/session_manager.h"

using namespace sgl;

int main(int argc, char** argv) {
  const std::string scenario = argc > 1 ? argv[1] : "battle";
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 3;
  const int64_t ticks = argc > 3 ? std::atoll(argv[3]) : 40;

  serve::SessionManagerOptions options;
  options.threads = 4;
  options.max_sessions = sessions;
  options.tick_budget = 8;  // round-robin granularity
  auto manager = serve::SessionManager::Create(options);
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
    return 1;
  }

  std::vector<serve::SessionId> ids;
  for (int s = 0; s < sessions; ++s) {
    ScenarioParams params;
    params.units = 300;
    params.density = 0.02;
    params.seed = 100 + s;  // distinct worlds
    SimulationConfig config;
    config.eval_mode = EvaluatorMode::kIndexed;
    SimulationBuilder builder;
    Status st = ScenarioRegistry::Global().PrepareBuilder(scenario, params,
                                                          config, &builder);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto id = (*manager)->Open(builder);
    if (!id.ok()) {
      std::fprintf(stderr, "admission refused: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(*id);
  }
  std::printf("serving %d '%s' sessions on %d shared threads\n",
              (int)(*manager)->NumSessions(), scenario.c_str(),
              options.threads);

  // First half of the run, then a live injection, then the rest.
  for (serve::SessionId id : ids) {
    (void)(*manager)->ScheduleTicks(id, ticks / 2);
  }
  Status st = (*manager)->RunUntilIdle();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  serve::InjectedAction nudge;
  nudge.unit_key = 1;
  nudge.attr = "posx";
  nudge.op = serve::InjectedAction::Op::kSet;
  nudge.value = 5;
  auto seq = (*manager)->Inject(ids[0], nudge);
  if (!seq.ok()) {
    std::fprintf(stderr, "%s\n", seq.status().ToString().c_str());
    return 1;
  }
  std::printf("injected posx nudge into session %lld (seq %lld)\n",
              (long long)ids[0], (long long)*seq);

  for (serve::SessionId id : ids) {
    (void)(*manager)->ScheduleTicks(id, ticks - ticks / 2);
  }
  st = (*manager)->RunUntilIdle();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  for (serve::SessionId id : ids) {
    const Simulation* sim = (*manager)->session(id);
    std::printf("  session %lld: %lld ticks, %d rows, inlet applied=%lld\n",
                (long long)id, (long long)sim->tick_count(),
                sim->table().NumRows(), (long long)sim->inlet().applied());
  }
  std::printf("\nserving metrics:\n%s\n", (*manager)->MetricsJson().c_str());

  // Graceful teardown: Close drains any pending ticks and releases the
  // session back to the caller.
  for (serve::SessionId id : ids) {
    auto sim = (*manager)->Close(id);
    if (!sim.ok()) {
      std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("all sessions closed; %lld still open\n",
              (long long)(*manager)->NumSessions());
  return 0;
}
