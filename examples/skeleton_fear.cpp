// The paper's running example (Sections 1 and 3): a unit type that runs
// in fear from a large number of marching skeletons.
//
// Villagers count the skeletons they can see; when the count exceeds
// their morale they flee away from the skeleton centroid. The naive cost
// of this single behaviour is O(n^2) per tick — the motivating example
// for shared aggregate computation.
//
// This example also demonstrates the multi-script session of the
// Simulation facade: the horde and the villagers each run their own SGL
// script (one script per unit class), dispatched by the `species`
// attribute, exactly as the paper's epic-battle scenario implies.
#include <cstdio>
#include <memory>

#include "engine/simulation.h"
#include "sgl/analyzer.h"
#include "util/rng.h"

using namespace sgl;

namespace {

// The horde's whole behaviour: march east.
const char* kHordeScript = R"SGL(
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    perform Move(u, 1, 0);
  }
)SGL";

// Villagers probe two aggregates over the horde and flee when
// outnumbered beyond their morale.
const char* kVillagerScript = R"SGL(
  const SKELETON = 0;
  const SIGHT = 40;

  aggregate SkeletonsInSight(u) {
    select count(*) from E e
    where e.species = SKELETON
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }
  aggregate SkeletonCentroid(u) {
    select avg(e.posx) as x, avg(e.posy) as y from E e
    where e.species = SKELETON
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    let c = SkeletonsInSight(u);
    if c > u.morale then {
      let away = (u.posx, u.posy) - SkeletonCentroid(u);
      perform Move(u, away.x, away.y);
    }
  }
)SGL";

}  // namespace

int main() {
  Schema schema;
  (void)schema.AddAttribute("species", CombineType::kConst);
  (void)schema.AddAttribute("posx", CombineType::kConst);
  (void)schema.AddAttribute("posy", CombineType::kConst);
  (void)schema.AddAttribute("morale", CombineType::kConst);
  (void)schema.AddAttribute("movex", CombineType::kSum);
  (void)schema.AddAttribute("movey", CombineType::kSum);

  EnvironmentTable table(schema);
  Xoshiro256 rng(11);
  // A horde of 60 skeletons on the west edge; 40 villagers with mixed
  // morale scattered mid-map.
  for (int i = 0; i < 60; ++i) {
    (void)table.AddRow({0, double(rng.NextBounded(10)),
                        double(20 + rng.NextBounded(60)), 0, 0, 0});
  }
  for (int i = 0; i < 40; ++i) {
    (void)table.AddRow({1, double(40 + rng.NextBounded(20)),
                        double(20 + rng.NextBounded(60)),
                        double(5 + rng.NextBounded(40)), 0, 0});
  }

  auto horde = CompileScript(kHordeScript, schema);
  auto villagers = CompileScript(kVillagerScript, schema);
  if (!horde.ok() || !villagers.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!horde.ok() ? horde : villagers).status().ToString().c_str());
    return 1;
  }

  SimulationConfig config;
  config.grid_width = 120;
  config.grid_height = 100;
  config.step_per_tick = 2.0;

  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .SetConfig(config)
      .DispatchBy("species")
      .AddScript("horde", horde.MoveValue(), /*dispatch_value=*/0)
      .AddScript("villagers", villagers.MoveValue(), /*dispatch_value=*/1);
  auto sim = builder.Build();
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  const Schema& s = (*sim)->table().schema();
  AttrId species = s.Find("species"), posx = s.Find("posx");
  auto mean_x = [&](double who) {
    double sum = 0;
    int n = 0;
    const EnvironmentTable& t = (*sim)->table();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (t.Get(r, species) == who) {
        sum += t.Get(r, posx);
        ++n;
      }
    }
    return sum / n;
  };

  std::printf("tick   horde mean x   villager mean x\n");
  for (int tick = 0; tick <= 40; ++tick) {
    if (tick % 8 == 0) {
      std::printf("%4d %14.1f %17.1f\n", tick, mean_x(0), mean_x(1));
    }
    Status st = (*sim)->Tick();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nThe horde marches east; villagers with low morale break "
              "and keep their distance. Each villager counted the horde "
              "with one O(log n) index probe per tick instead of an O(n) "
              "scan — and each species ran its own script.\n");
  return 0;
}
