// Durable-world tour: run a battle on disk, crash nothing, travel in
// time anyway.
//
//   timetravel [WORLD_DIR]   # default: ./timetravel_world
//
// The run advances the battle scenario 25 ticks against a disk-backed
// world (buffer-pool pages + write-ahead delta log under WORLD_DIR,
// checkpoint every 20 ticks), then:
//
//   1. re-opens the directory read-only and materializes a past tick
//      straight from checkpoint + WAL replay;
//   2. rewinds the live simulation to that tick with RestoreFrom and
//      re-runs to the end, verifying the future replays bit-exactly.
//
// The same directory survives process death: run this once, kill it
// mid-run, run it again — RestoreFrom picks up the last committed tick.
#include <cstdio>
#include <string>

#include "scenario/scenario.h"
#include "storage/world_store.h"

using namespace sgl;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "./timetravel_world";

  ScenarioParams params;
  params.units = 200;
  params.density = 0.02;
  params.seed = 5;

  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kIndexed;
  config.storage.path = dir;
  config.storage.page_size = 4096;
  config.storage.pool_pages = 64;
  config.storage.checkpoint_every = 20;

  auto& registry = ScenarioRegistry::Global();
  auto sim = registry.BuildSimulation("battle", params, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  // An earlier run left a world here? Resume it instead of restarting.
  // (On a fresh directory this restores the tick-0 image Build just
  // checkpointed, which is a no-op.)
  {
    Status st = (*sim)->RestoreFrom(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if ((*sim)->tick_count() > 0) {
      std::printf("resumed %s at tick %lld\n", dir.c_str(),
                  static_cast<long long>((*sim)->tick_count()));
    }
  }

  // Advance 25 ticks, nudged off checkpoint boundaries: a checkpoint
  // truncates the WAL, and we want a non-empty tail to replay below.
  const int64_t start = (*sim)->tick_count();
  int64_t target = start + 25;
  if (target % config.storage.checkpoint_every == 0) ++target;
  {
    Status st = (*sim)->Run(target - start);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  const EnvironmentTable final_state = (*sim)->table().Clone();
  std::printf("world at tick %lld: %d rows, durable in %s\n",
              static_cast<long long>((*sim)->tick_count()),
              (*sim)->table().NumRows(), dir.c_str());

  // 1. Read-only time travel: a second store on the same directory
  //    materializes any tick the log covers, without touching the run.
  auto store = storage::WorldStore::Open(config.storage, nullptr);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  // The oldest reachable tick is the last checkpoint; anything after it
  // is checkpoint + WAL replay. Aim for the checkpoint itself (or the
  // resume point, if this stretch never crossed a checkpoint boundary).
  int64_t past =
      (target - 1) / config.storage.checkpoint_every *
      config.storage.checkpoint_every;
  if (past < start) past = start;
  auto world = (*store)->Materialize(past);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  std::printf("materialized tick %lld from checkpoint + WAL replay (%d rows)\n",
              static_cast<long long>(world->tick), world->table.NumRows());
  store->reset();

  // 2. Rewind the live simulation and replay the future.
  Status st = (*sim)->RestoreFrom(dir, past);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = (*sim)->Run(target - past);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!(*sim)->table().Equals(final_state)) {
    std::fprintf(stderr, "replayed future diverged:\n%s\n",
                 (*sim)->table().DiffString(final_state).c_str());
    return 1;
  }
  std::printf("rewound to tick %lld and replayed to %lld: bit-exact\n",
              static_cast<long long>(past), static_cast<long long>(target));
  std::printf("\nstorage metrics:\n%s", (*sim)->MetricsJson().c_str());
  return 0;
}
