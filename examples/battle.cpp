// The full Section 3.2 battle simulation with an ASCII map.
//
//   K/k knights, A/a archers, H/h healers (uppercase = player 0).
//
// Usage: battle [units] [ticks] [naive]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "game/battle.h"

using namespace sgl;

namespace {

void Render(const EnvironmentTable& table, int64_t side) {
  const Schema& s = table.schema();
  AttrId posx = s.Find("posx"), posy = s.Find("posy");
  AttrId player = s.Find("player"), type = s.Find("unittype");
  // Downsample the grid to at most 70 columns.
  int64_t cell = std::max<int64_t>(1, side / 70);
  int64_t w = (side + cell - 1) / cell, h = (side + cell - 1) / cell;
  std::vector<std::string> map(h, std::string(w, '.'));
  for (RowId r = 0; r < table.NumRows(); ++r) {
    int64_t x = static_cast<int64_t>(table.Get(r, posx)) / cell;
    int64_t y = static_cast<int64_t>(table.Get(r, posy)) / cell;
    const char* glyphs = table.Get(r, player) == 0 ? "KAH" : "kah";
    map[y][x] = glyphs[static_cast<int32_t>(table.Get(r, type))];
  }
  for (const std::string& row : map) std::printf("%s\n", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig scenario;
  scenario.num_units = argc > 1 ? std::atoi(argv[1]) : 300;
  scenario.density = 0.02;
  scenario.seed = 2007;
  int64_t ticks = argc > 2 ? std::atoll(argv[2]) : 60;
  EvaluatorMode mode = (argc > 3 && std::strcmp(argv[3], "naive") == 0)
                           ? EvaluatorMode::kNaive
                           : EvaluatorMode::kIndexed;

  auto setup = MakeBattleSim(scenario, mode, /*resurrect=*/false);
  if (!setup.ok()) {
    std::fprintf(stderr, "%s\n", setup.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = *setup->sim;
  const int64_t side = scenario.GridSide();

  std::printf("battle: %d units on a %lldx%lld grid, %s evaluator\n\n",
              scenario.num_units, static_cast<long long>(side),
              static_cast<long long>(side),
              mode == EvaluatorMode::kNaive ? "naive" : "indexed");

  for (int64_t t = 0; t < ticks; ++t) {
    Status st = sim.Tick();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (t % (ticks / 3 + 1) == 0 || t == ticks - 1) {
      std::printf("--- tick %lld: %d units alive, %lld deaths so far ---\n",
                  static_cast<long long>(t + 1), sim.table().NumRows(),
                  static_cast<long long>(setup->mechanics->deaths()));
      Render(sim.table(), side);
      std::printf("\n");
    }
  }

  std::printf("per-phase statistics across %lld ticks:\n%s",
              static_cast<long long>(ticks), sim.stats().ToString().c_str());
  return 0;
}
