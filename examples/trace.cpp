// Observability tour: run the battle scenario with every instrument on
// and leave the artifacts behind for inspection.
//
//   trace [--shards N] [OUT_DIR]   # default: shards 1, current directory
//
// With --shards N the battle runs on the multi-shard tick pipeline and
// the trace additionally shows the per-shard worker tracks ("shard" /
// "shard-build" spans at tid 1+shard) inside the decision and
// index-build phases.
//
// Produces in OUT_DIR:
//   trace.json      Chrome trace-event JSON — open in Perfetto
//                   (ui.perfetto.dev) or chrome://tracing to see the
//                   tick → phase → per-chunk worker span hierarchy
//   metrics.jsonl   one metrics snapshot per tick (JSON lines)
//   flight.json     the flight recorder's last-16-ticks ring, dumped
//                   here on demand (normally written only on failure)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/scenario.h"

using namespace sgl;

int main(int argc, char** argv) {
  std::string out_dir = ".";
  int32_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else {
      out_dir = arg;
    }
  }

  ScenarioParams params;
  params.units = 300;
  params.density = 0.02;
  params.seed = 11;

  SimulationConfig config;
  config.eval_mode = EvaluatorMode::kAdaptive;
  config.threads = 4;
  config.shards = shards;
  config.artifacts.trace_path = out_dir + "/trace.json";
  config.artifacts.metrics_path = out_dir + "/metrics.jsonl";
  config.artifacts.flight_recorder_ticks = 16;
  config.artifacts.flight_recorder_path = out_dir + "/flight.json";

  auto& registry = ScenarioRegistry::Global();
  auto sim = registry.BuildSimulation("battle", params, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  const int64_t ticks = 100;
  Status st = (*sim)->Run(ticks);
  if (!st.ok()) {
    // Tick() already dumped the flight recorder on its way out.
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  st = registry.CheckInvariants("battle", params, **sim);
  if (!st.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%s: %lld ticks over %d rows, %d threads, %d shard(s)\n\n",
              (*sim)->name().c_str(), static_cast<long long>(ticks),
              (*sim)->table().NumRows(), (*sim)->threads(),
              (*sim)->config().shards);
  std::printf("%s\n", (*sim)->stats().ToString().c_str());

  // The destructor would write the trace too; writing it now lets us
  // report failures and still dump a healthy flight ring for the tour.
  st = (*sim)->WriteTrace(config.artifacts.trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = (*sim)->DumpFlightRecorder(config.artifacts.flight_recorder_path,
                                  "example dump (no failure)");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("wrote %s (%lld events dropped)\n", config.artifacts.trace_path.c_str(),
              static_cast<long long>((*sim)->tracer()->dropped()));
  std::printf("wrote %s\n", config.artifacts.metrics_path.c_str());
  std::printf("wrote %s (%d-tick ring)\n", config.artifacts.flight_recorder_path.c_str(),
              (*sim)->flight_recorder()->size());
  std::printf("\ndeterministic metrics snapshot:\n%s",
              (*sim)->MetricsJson(/*deterministic_only=*/true).c_str());
  return 0;
}
