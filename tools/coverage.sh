#!/usr/bin/env bash
# Line-coverage gate over src/: build with clang source-based coverage
# (-fprofile-instr-generate -fcoverage-mapping), run the full ctest
# suite, merge the per-process profiles, and fail if line coverage over
# src/ drops below the committed floor in tools/coverage_floor.txt.
# Also renders an HTML report (coverage_html/) that CI uploads as an
# artifact.
#
#   tools/coverage.sh [BUILD_DIR]    # default: build-coverage
#
# Requires clang++ plus the matching llvm-profdata / llvm-cov (override
# with CXX / LLVM_PROFDATA / LLVM_COV).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-coverage}"
CXX="${CXX:-clang++}"
LLVM_PROFDATA="${LLVM_PROFDATA:-llvm-profdata}"
LLVM_COV="${LLVM_COV:-llvm-cov}"
FLOOR_FILE=tools/coverage_floor.txt

for tool in "$CXX" "$LLVM_PROFDATA" "$LLVM_COV"; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "error: $tool not found (clang + llvm tools required)" >&2
    exit 2
  fi
done

# Compiler launcher (ccache in CI) when available: the instrumented
# build is the slowest part of the gate and caches fine.
launcher_flags=()
if command -v ccache >/dev/null 2>&1; then
  launcher_flags+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="$CXX" \
  "${launcher_flags[@]}" \
  -DCMAKE_CXX_FLAGS="-fprofile-instr-generate -fcoverage-mapping" \
  -DCMAKE_EXE_LINKER_FLAGS="-fprofile-instr-generate"
cmake --build "$BUILD_DIR" -j

# %p: one profile per test process, merged below.
mkdir -p "$BUILD_DIR/profiles"
LLVM_PROFILE_FILE="$PWD/$BUILD_DIR/profiles/%p.profraw" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j

"$LLVM_PROFDATA" merge -sparse "$BUILD_DIR"/profiles/*.profraw \
  -o "$BUILD_DIR/coverage.profdata"

# Every test binary contributes mappings; the first is positional, the
# rest ride -object flags. Coverage is restricted to src/ — tests and
# benches instrument too but must not pad the percentage.
mapfile -t binaries < <(find "$BUILD_DIR" -maxdepth 1 -type f -name '*_test' \
  -perm -u+x | sort)
if [[ ${#binaries[@]} -eq 0 ]]; then
  echo "error: no test binaries found in $BUILD_DIR" >&2
  exit 2
fi
object_flags=()
for bin in "${binaries[@]:1}"; do object_flags+=(-object "$bin"); done

"$LLVM_COV" report "${binaries[0]}" "${object_flags[@]}" \
  -instr-profile="$BUILD_DIR/coverage.profdata" "$PWD/src"
"$LLVM_COV" show "${binaries[0]}" "${object_flags[@]}" \
  -instr-profile="$BUILD_DIR/coverage.profdata" \
  -format=html -output-dir=coverage_html "$PWD/src"

percent=$("$LLVM_COV" export "${binaries[0]}" "${object_flags[@]}" \
  -instr-profile="$BUILD_DIR/coverage.profdata" -summary-only "$PWD/src" |
  python3 -c '
import json, sys
totals = json.load(sys.stdin)["data"][0]["totals"]
print("{:.2f}".format(totals["lines"]["percent"]))
')
floor=$(tr -d '[:space:]' < "$FLOOR_FILE")

echo "line coverage over src/: ${percent}% (floor: ${floor}%)"
python3 - "$percent" "$floor" <<'EOF'
import sys
percent, floor = float(sys.argv[1]), float(sys.argv[2])
if percent < floor:
    print(f"FAIL: line coverage {percent:.2f}% is below the committed "
          f"floor {floor:.2f}% (tools/coverage_floor.txt); add tests or, "
          "if the drop is deliberate, lower the floor in the same PR",
          file=sys.stderr)
    sys.exit(1)
print(f"OK: line coverage {percent:.2f}% >= floor {floor:.2f}%")
EOF
