#!/usr/bin/env bash
# Format (or check) every C++ source in the repo with the committed
# .clang-format. CI runs `tools/format.sh --check` with clang-format
# 14.0.6 (pip-pinned, so the result does not depend on the runner image);
# developers run `tools/format.sh` to fix the tree in place.
#
#   tools/format.sh            # rewrite files in place
#   tools/format.sh --check    # exit 1 if any file needs reformatting
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT or install" \
       "clang-format; CI uses 'pip install clang-format==14.0.6')" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cc' '*.h' '*.cpp')
if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
  echo "format check OK (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
