#!/usr/bin/env bash
# Smoke-run every example binary: small fixed arguments, assert exit 0
# and non-empty stdout. CI builds the examples on every PR but used to
# never execute them — a broken demo would ship silently.
#
#   tools/smoke_examples.sh [BUILD_DIR]    # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# Binary -> small fixed arguments (kept tiny: the point is "runs and
# prints", the benchmarks own performance).
declare -A example_args=(
  [quickstart]=""
  [battle]="150 20"
  [explain]=""
  [formation]=""
  [skeleton_fear]=""
  [scenarios]="market 200 20"
  [trace]="$(mktemp -d)"
  [serve]="battle 2 20"
  [timetravel]="$(mktemp -d)/world"
)

failures=0
for example in quickstart battle explain formation skeleton_fear scenarios \
               trace serve timetravel; do
  bin="$BUILD_DIR/$example"
  if [[ ! -x "$bin" ]]; then
    echo "FAIL: $example: binary not found at $bin" >&2
    failures=$((failures + 1))
    continue
  fi
  args=${example_args[$example]}
  echo "== $example $args"
  out_file=$(mktemp)
  # shellcheck disable=SC2086  # word-splitting the args is the point
  if ! "$bin" $args > "$out_file" 2>&1; then
    echo "FAIL: $example exited non-zero; output:" >&2
    cat "$out_file" >&2
    failures=$((failures + 1))
  elif [[ ! -s "$out_file" ]]; then
    echo "FAIL: $example produced no output" >&2
    failures=$((failures + 1))
  else
    head -n 3 "$out_file" | sed 's/^/   /'
    echo "   ... ($(wc -l < "$out_file") lines) OK"
  fi
  rm -f "$out_file"
done

if [[ $failures -gt 0 ]]; then
  echo "$failures example(s) failed" >&2
  exit 1
fi
echo "all examples ran: exit 0, non-empty output"
