#!/usr/bin/env python3
"""Schema-check the observability artifacts a traced run leaves behind.

Validates three files (the latter two optional):

  * a Chrome trace-event JSON (SimulationConfig::trace_path): the
    {"traceEvents": [...]} envelope, per-event required fields, and —
    the part a JSON linter cannot see — the span *hierarchy*: complete
    ("X") events on each track must properly nest, track 0 must hold
    tick spans with the phase spans strictly inside them, and every
    instant must fall inside some tick;
  * a metrics JSON-lines file (SimulationConfig::metrics_path): one
    {"tick": N, "metrics": {...}} object per line, ticks strictly
    increasing, every snapshot carrying the counters/gauges/histograms
    sections;
  * a flight-recorder dump: a "reason" string and a "ticks" ring whose
    entries carry tick/ns/rows and a deltas object.

Exit 0 when everything holds, 1 with one line per violation otherwise.
CI runs this against examples/trace.cpp output, so a change that breaks
the Perfetto-loadable shape fails the examples-smoke job rather than a
human's late-night profiling session.

Usage:
  tools/validate_trace.py TRACE_JSON [METRICS_JSONL] [FLIGHT_JSON]
"""

import json
import sys

errors = []


def fail(msg):
    errors.append(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents envelope")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty")
        return

    spans_by_tid = {}
    instants = []
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                fail(f"{path}: event {i} missing '{field}'")
                return
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{path}: event {i} args is not an object")
        if ev["ph"] == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"{path}: complete event {i} ({ev['name']}) "
                     "missing/negative dur")
                return
            spans_by_tid.setdefault(ev["tid"], []).append(ev)
        elif ev["ph"] == "i":
            if ev.get("s") != "t":
                fail(f"{path}: instant event {i} ({ev['name']}) "
                     "missing thread scope")
            instants.append(ev)
        else:
            fail(f"{path}: event {i} has unknown phase '{ev['ph']}'")

    # Track 0 holds the tick spans with the phase spans inside them.
    ticks = [e for e in spans_by_tid.get(0, []) if e["name"] == "tick"]
    phases = [e for e in spans_by_tid.get(0, []) if e["name"] != "tick"]
    if not ticks:
        fail(f"{path}: no tick spans on track 0")
        return
    if not phases:
        fail(f"{path}: no phase spans on track 0")

    def covering_tick(ts, dur=0.0):
        return any(t["ts"] <= ts and ts + dur <= t["ts"] + t["dur"]
                   for t in ticks)

    for p in phases:
        if not covering_tick(p["ts"], p["dur"]):
            fail(f"{path}: phase span '{p['name']}' at ts={p['ts']} "
                 "outside every tick span")
    for ins in instants:
        if not covering_tick(ins["ts"]):
            fail(f"{path}: instant '{ins['name']}' at ts={ins['ts']} "
                 "outside every tick span")

    # Proper nesting per track: with events sorted (ts asc, dur desc) a
    # child must end before its enclosing span does.
    for tid, spans in spans_by_tid.items():
        spans = sorted(spans, key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in spans:
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack and ev["ts"] + ev["dur"] > (stack[-1]["ts"] +
                                                 stack[-1]["dur"]) + 1e-6:
                fail(f"{path}: tid {tid} span '{ev['name']}' at "
                     f"ts={ev['ts']} overlaps '{stack[-1]['name']}' "
                     "without nesting")
            stack.append(ev)

    # Worker tracks (tid >= 1) hold the per-chunk spans and — under
    # sharded execution — the per-shard worker spans; both track ids are
    # 1 + index, so the args must agree with the track.
    for tid, spans in spans_by_tid.items():
        if tid == 0:
            continue
        for ev in spans:
            chunk = ev.get("args", {}).get("chunk")
            if chunk is not None and chunk != tid - 1:
                fail(f"{path}: chunk span on tid {tid} claims chunk {chunk}")
            shard = ev.get("args", {}).get("shard")
            if shard is not None and shard != tid - 1:
                fail(f"{path}: shard span on tid {tid} claims shard {shard}")

    n_spans = sum(len(s) for s in spans_by_tid.values())
    print(f"{path}: {len(ticks)} ticks, {n_spans} spans, "
          f"{len(instants)} instants, {len(spans_by_tid)} tracks: OK")


def validate_metrics(path):
    prev_tick = None
    lines = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON ({e})")
                return
            if not isinstance(obj.get("tick"), int):
                fail(f"{path}:{lineno}: missing integer 'tick'")
                return
            if prev_tick is not None and obj["tick"] <= prev_tick:
                fail(f"{path}:{lineno}: tick {obj['tick']} not increasing")
            prev_tick = obj["tick"]
            metrics = obj.get("metrics")
            if not isinstance(metrics, dict):
                fail(f"{path}:{lineno}: missing 'metrics' object")
                return
            for section in ("counters", "gauges", "histograms"):
                if section not in metrics:
                    fail(f"{path}:{lineno}: metrics missing '{section}'")
    if lines == 0:
        fail(f"{path}: no snapshots")
    else:
        print(f"{path}: {lines} snapshots: OK")


def validate_flight(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc.get("reason"), str):
        fail(f"{path}: missing 'reason'")
    ticks = doc.get("ticks")
    if not isinstance(ticks, list) or not ticks:
        fail(f"{path}: missing/empty 'ticks' ring")
        return
    for i, rec in enumerate(ticks):
        for field in ("tick", "ns", "rows"):
            if not isinstance(rec.get(field), int):
                fail(f"{path}: ring entry {i} missing integer '{field}'")
        if not isinstance(rec.get("deltas"), dict):
            fail(f"{path}: ring entry {i} missing 'deltas' object")
    print(f"{path}: {len(ticks)}-tick ring: OK")


def main(argv):
    if len(argv) < 2 or len(argv) > 4:
        print(__doc__, file=sys.stderr)
        return 2
    validate_trace(argv[1])
    if len(argv) > 2:
        validate_metrics(argv[2])
    if len(argv) > 3:
        validate_flight(argv[3])
    for msg in errors:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
