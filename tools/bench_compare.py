#!/usr/bin/env python3
"""Compare a bench_suite BENCH_scenarios.json run against a committed baseline.

Both files are JSON lines: a meta object ({"bench": "scenarios", ...})
followed by one object per benchmark cell, keyed by
(scenario, mode, units, threads, shards, sharing, compiled, storage,
sessions) with an
ns_per_tick measurement and a per-phase breakdown
({"phases": [{"name": ..., "ns_per_tick": ...}]}).
Cells recorded before the aggregate-sharing or compiled-evaluation sweeps
existed carry no "sharing" / "compiled" field and default to "on" (the
engine's defaults for both); cells recorded before the shard sweep carry
no "shards" field and default to 1 (the single-table engine); cells
recorded before the multi-tenant serving sweep carry no "sessions" field
and default to 1 (a solo simulation, no SessionManager); cells recorded
before the disk-backed storage sweep carry no "storage" field and
default to "off" (the in-memory engine). Cells may
also carry informational counters (shared_hits, memo_entries) and — when
produced with bench_suite --metrics — a "metrics" object holding the
deterministic metrics-registry snapshot. Both ride along into refreshed
baselines but are never compared as a gate — only ns_per_tick can
regress a cell. When both sides of a regressed cell carry metrics, the
changed deterministic counters (index probes, memo hits, VM lane ops,
...) are printed next to the phase deltas as diagnostic context: "25%
slower, and the probe count doubled" usually names the causal change
outright.

Absolute ns/tick is machine-dependent, so raw ratios against a baseline
recorded on different hardware would trip on machine speed, not code.
The comparator therefore normalizes every cell's current/baseline ratio
by the *median* ratio across cells — and the median is computed over
MATCHED cells only (present in both files). Cells that exist on just one
side must never enter the normalization factor: a newly added mode or
scenario, which has no baseline ratio at all, would otherwise shift the
median and could mask (or fake) regressions in the cells that do have
history. Three guards keep the normalization honest:

  * only matched cells contribute to the median drift factor;
  * drift below 1 is never used to penalize cells — a PR that speeds up
    most of the suite must not fail the cells it left untouched;
  * drift above --max-drift (default 3x) fails the run outright: that
    much uniform slowdown is either a genuinely slower runner class
    (refresh the baseline) or a global regression that normalization
    would otherwise hide.

A >threshold (default 20%) normalized slowdown in any cell, or a cell
that disappeared from the current run, fails the check. Each regressed
cell is reported with its per-phase deltas, so "battle slowed down 25%"
comes annotated with "and it is all in index-build" — the phase
breakdown usually names the culprit subsystem directly.

Usage:
  tools/bench_compare.py CURRENT BASELINE [--threshold 0.20]
  tools/bench_compare.py CURRENT BASELINE --update-baseline
      copies CURRENT over BASELINE (after printing the comparison) and
      exits 0 — the deliberate refresh path, used when a new mode or
      scenario column is introduced or the runner class changes.
"""

import argparse
import json
import shutil
import statistics
import sys


def load_cells(path):
    """Returns (meta, {key: cell}) from a bench_suite JSON-lines file."""
    meta = {}
    cells = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("bench") == "scenarios":
                meta = obj
                continue
            key = (
                obj.get("scenario"),
                obj.get("mode"),
                obj.get("units"),
                obj.get("threads"),
                obj.get("shards", 1),
                obj.get("sharing", "on"),
                obj.get("compiled", "on"),
                obj.get("storage", "off"),
                obj.get("sessions", 1),
            )
            if None in key:
                continue
            cells[key] = obj
    return meta, cells


def phases_of(cell):
    """Phase name -> ns_per_tick for one cell (empty if not recorded)."""
    return {
        p["name"]: p["ns_per_tick"]
        for p in cell.get("phases", [])
        if "name" in p and "ns_per_tick" in p
    }


def phase_deltas(base_cell, cur_cell, drift):
    """Per-phase (name, base, cur, normalized ratio) rows, worst first.

    Phases present on only one side are reported with the other side as 0
    (a new pipeline phase, or one that disappeared).
    """
    base_phases = phases_of(base_cell)
    cur_phases = phases_of(cur_cell)
    rows = []
    for name in sorted(set(base_phases) | set(cur_phases)):
        base = base_phases.get(name, 0)
        cur = cur_phases.get(name, 0)
        norm = (cur / base / drift) if base > 0 else float("inf" if cur else 1)
        rows.append((name, base, cur, norm))
    rows.sort(key=lambda r: -(r[2] - r[1] * drift))
    return rows


def print_phase_deltas(base_cell, cur_cell, drift, indent="    "):
    for name, base, cur, norm in phase_deltas(base_cell, cur_cell, drift):
        flag = "  <<" if base > 0 and norm > 1.0 and (cur - base * drift) > 0 else ""
        norm_str = f"{norm:8.3f}" if norm != float("inf") else "     new"
        print(
            f"{indent}{name:<16} {base:>12} -> {cur:>12} ns/tick"
            f"  norm {norm_str}{flag}"
        )


def metric_deltas(base_cell, cur_cell):
    """Changed deterministic counters as (name, base, cur), biggest first.

    Cells recorded without bench_suite --metrics carry no "metrics"
    object; unless BOTH sides have one there is nothing meaningful to
    diff (every counter would read as new) and the result is empty. The
    snapshot holds only the deterministic counter subset, so any delta
    reflects a code change, never scheduling noise.
    """
    if "metrics" not in base_cell or "metrics" not in cur_cell:
        return []
    base = base_cell["metrics"].get("counters", {})
    cur = cur_cell["metrics"].get("counters", {})
    rows = [
        (name, base.get(name, 0), cur.get(name, 0))
        for name in sorted(set(base) | set(cur))
        if base.get(name, 0) != cur.get(name, 0)
    ]
    rows.sort(key=lambda r: -abs(r[2] - r[1]))
    return rows


def print_metric_deltas(base_cell, cur_cell, indent="    ", limit=12):
    """Diagnostic context only — metric deltas annotate a regression
    report but never affect the exit status."""
    rows = metric_deltas(base_cell, cur_cell)
    if not rows:
        if "metrics" in base_cell and "metrics" in cur_cell:
            print(f"{indent}deterministic counters unchanged")
        return
    for name, base, cur in rows[:limit]:
        print(f"{indent}{name:<36} {base:>14} -> {cur:>14}")
    if len(rows) > limit:
        print(f"{indent}... {len(rows) - limit} more changed counter(s)")


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold ns/tick regression vs a baseline"
    )
    parser.add_argument("current", help="freshly produced BENCH_scenarios.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed per-cell slowdown after drift normalization "
        "(0.20 = 20%%)",
    )
    parser.add_argument(
        "--max-drift",
        type=float,
        default=3.0,
        help="fail outright if the median current/baseline ratio exceeds "
        "this (uniform slowdowns must not hide behind normalization)",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="print per-phase deltas for every matched cell, not just "
        "regressed ones",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="after printing the comparison, overwrite BASELINE with "
        "CURRENT and exit 0 (deliberate refresh)",
    )
    args = parser.parse_args()

    cur_meta, current = load_cells(args.current)
    base_meta, baseline = load_cells(args.baseline)
    if not current:
        print(f"error: no benchmark cells in {args.current}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no benchmark cells in {args.baseline}", file=sys.stderr)
        return 2
    if cur_meta.get("ticks") != base_meta.get("ticks"):
        print(
            f"note: tick counts differ (current {cur_meta.get('ticks')}, "
            f"baseline {base_meta.get('ticks')}); ns/tick comparison is "
            "still meaningful but noisier"
        )

    missing = sorted(k for k in baseline if k not in current)
    new_cells = sorted(k for k in current if k not in baseline)
    # Only cells present in BOTH files may shape the drift factor; see the
    # module docstring for why unmatched cells are excluded.
    matched = sorted(k for k in baseline if k in current)
    if not matched:
        # A deliberate refresh must work precisely when nothing matches
        # any more (renamed scenarios, new cell-key scheme).
        if args.update_baseline:
            shutil.copyfile(args.current, args.baseline)
            print(
                "no cells matched; baseline refreshed: "
                f"{args.current} -> {args.baseline}"
            )
            return 0
        print("error: current and baseline share no cells", file=sys.stderr)
        return 2

    ratios = {
        k: current[k]["ns_per_tick"] / max(1, baseline[k]["ns_per_tick"])
        for k in matched
    }
    median_ratio = statistics.median(ratios.values())
    # Only slowdown drift is normalized out; a mostly-faster run must not
    # turn its untouched cells into "regressions".
    drift = max(1.0, median_ratio)
    print(
        f"{len(matched)} matched cells ({len(new_cells)} current-only "
        f"excluded from normalization); median current/baseline ratio "
        f"{median_ratio:.3f} (drift {drift:.3f} normalized out)"
    )
    if median_ratio > args.max_drift and not args.update_baseline:
        print(
            f"FAIL: median ratio {median_ratio:.2f} exceeds --max-drift "
            f"{args.max_drift:.2f}: either the whole suite regressed or the "
            "runner class changed — investigate, or refresh the baseline "
            "deliberately with --update-baseline",
            file=sys.stderr,
        )
        return 1

    header = f"{'scenario':<14} {'mode':<8} {'units':>6} {'thr':>4} " \
             f"{'shd':>3} {'shr':>3} {'vm':>3} {'dsk':>3} {'ses':>3} " \
             f"{'base ns/tick':>13} " \
             f"{'cur ns/tick':>13} {'norm ratio':>10}"
    print(header)
    failures = []
    for k in matched:
        norm = ratios[k] / drift
        scenario, mode, units, threads, shards, sharing, compiled, \
            storage, sessions = k
        flag = ""
        if norm > 1.0 + args.threshold:
            failures.append((k, norm))
            flag = "  << REGRESSION"
        # Sharing counters are informational: printed when present so the
        # hit-rate trajectory is visible in CI logs, never compared.
        hits = current[k].get("shared_hits")
        info = f"  hits {hits}" if flag == "" and hits else ""
        print(
            f"{scenario:<14} {mode:<8} {units:>6} {threads:>4} "
            f"{shards:>3} {sharing:>3} {compiled:>3} {storage:>3} "
            f"{sessions:>3} "
            f"{baseline[k]['ns_per_tick']:>13} "
            f"{current[k]['ns_per_tick']:>13} {norm:>10.3f}{flag}{info}"
        )
        if args.phases or flag:
            print_phase_deltas(baseline[k], current[k], drift)
            print_metric_deltas(baseline[k], current[k])

    if new_cells:
        print(f"{len(new_cells)} new cell(s) not in the baseline (ok)")

    status = 0
    if missing:
        print(
            f"FAIL: {len(missing)} baseline cell(s) missing from the current "
            f"run: {missing[:5]}{' ...' if len(missing) > 5 else ''}",
            file=sys.stderr,
        )
        status = 1
    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"FAIL: {len(failures)} cell(s) regressed more than "
            f"{args.threshold:.0%} (worst: {worst[0]} at {worst[1]:.2f}x; "
            "per-phase deltas above name the slow subsystem)",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(f"OK: no cell regressed more than {args.threshold:.0%}")

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline refreshed: {args.current} -> {args.baseline}")
        return 0
    return status


if __name__ == "__main__":
    sys.exit(main())
