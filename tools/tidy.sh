#!/usr/bin/env bash
# Run clang-tidy with the committed .clang-tidy over the library sources.
# CI pins the binary (pip install clang-tidy==18.1.8) so the verdict
# never depends on the runner image; developers run it against whatever
# clang-tidy they have (set CLANG_TIDY to override).
#
#   tools/tidy.sh [BUILD_DIR]    # default build dir: build
#
# Requires a compile_commands.json in BUILD_DIR — configure with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# Scope: src/*.cc translation units. Headers under src/ are vetted
# through their includers (HeaderFilterRegex in .clang-tidy); tests,
# benches, and examples follow the library style but are not gated.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "error: $CLANG_TIDY not found (set CLANG_TIDY or install" \
       "clang-tidy; CI uses 'pip install clang-tidy==18.1.8')" >&2
  exit 2
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found; configure with" \
       "cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t files < <(git ls-files 'src/*.cc')
echo "clang-tidy ($("$CLANG_TIDY" --version | grep -o 'version [0-9.]*')):" \
     "${#files[@]} translation units"
# WarningsAsErrors: '*' in .clang-tidy turns any finding into a non-zero
# exit; -quiet suppresses the per-file banner noise in CI logs. One
# process per TU, nproc-wide: each TU re-parses the whole header set, so
# a single serial process would be the long pole of the CI gate.
printf '%s\0' "${files[@]}" |
  xargs -0 -n1 -P"$(nproc)" "$CLANG_TIDY" -p "$BUILD_DIR" -quiet
echo "clang-tidy OK (${#files[@]} files)"
