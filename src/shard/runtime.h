// The shard runtime: N in-process workers ticking one world, bit-exactly.
//
// With SimulationConfig::shards > 1 the engine swaps the first two
// pipeline phases for sharded equivalents driven by this runtime:
//
//   index-build      refresh every worker's local table from the
//                    authoritative table's change log (full repartition
//                    on structural changes or stripe drift, per-dirty-row
//                    deltas otherwise), then build worker-local indexes;
//   decision-action  every worker evaluates the decisions of the rows it
//                    owns against its local table, streaming effects into
//                    a per-worker OpJournal; the journals are k-way
//                    merged by ascending actor row into the tick buffer,
//                    and deferred AOE batches are remapped to global rows,
//                    merged the same way, and re-injected into the driver
//                    sinks for the unchanged deferred-index phase.
//
// Partitioning is chosen at Build() from script reach analysis
// (opt/reach.h): spatial stripes over posx with ghost margins sized to
// the maximum bounded radius when every aggregate probe and action
// footprint is bounded and the evaluator is naive or indexed; replicated
// (full-ghost, contiguous owner blocks) otherwise — including always
// under the adaptive evaluator, where a worker-local table identical to
// the global one guarantees per-family cost decisions (and with them
// probe tallies) match the single-table engine exactly.
//
// The remaining phases (deferred-index, apply, movement, mechanics) run
// unchanged on the authoritative table, whose change tracking feeds the
// next refresh. The net contract, enforced by tests/shard_test.cc: a
// shards=N run is bit-identical to shards=1 for every scenario, evaluator
// mode, thread count, and sharing/compiled toggle.
#ifndef SGL_SHARD_RUNTIME_H_
#define SGL_SHARD_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/phase.h"
#include "engine/simulation.h"
#include "env/partition_map.h"
#include "opt/reach.h"
#include "shard/worker.h"
#include "util/status.h"

namespace sgl {
namespace shard {

class ShardRuntime {
 public:
  /// Validate every session's reach and assemble config().shards workers.
  /// Fails when a script cannot run sharded at all (ScriptReach
  /// supported == false). `sim` must have its sessions and dispatch state
  /// finalized, and must outlive the runtime.
  static Result<std::unique_ptr<ShardRuntime>> Create(Simulation* sim);

  /// The sharded index-build phase body (see file comment).
  Status Refresh(TickContext* ctx);

  /// The sharded decision-action phase body (see file comment).
  Status RunDecisions(TickContext* ctx);

  /// EXPLAIN block: partitioning scheme, margin, per-script reach.
  std::string Describe() const;

  int32_t num_shards() const { return num_shards_; }
  bool replicated() const { return replicated_; }
  double margin() const { return margin_; }

  /// Sharing counters summed across the worker-private contexts (the
  /// driver context sees no decision traffic under sharding).
  int64_t shared_hits() const;
  int64_t memo_entries() const;

 private:
  ShardRuntime(Simulation* sim, int32_t num_shards)
      : sim_(sim), num_shards_(num_shards) {}

  /// Run `fn` once per worker — S ways across the tick pool, or
  /// sequentially without one. Results are independent of the split:
  /// every worker writes only worker-private state and its own metric
  /// shard slots.
  Status ForEachWorker(exec::ThreadPool* pool, exec::ParallelStats* stats,
                       const std::function<Status(ShardWorker*)>& fn);

  Simulation* sim_;
  const int32_t num_shards_;
  bool replicated_ = true;
  double margin_ = 0.0;
  double world_width_ = 0.0;
  AttrId posx_ = Schema::kInvalidAttr;
  std::vector<ScriptReach> reaches_;  // parallel to sim sessions

  ShardAssignment assign_;
  bool assigned_ = false;
  std::vector<std::unique_ptr<ShardWorker>> workers_;

  // Runtime observability ("shard.*", all execution-dependent: they only
  // exist under sharding, so they must stay out of the deterministic
  // snapshot a shards=1 run is compared against).
  obs::Counter* repartitions_ = nullptr;
  obs::Counter* refresh_rows_ = nullptr;
  obs::Counter* drift_rebuilds_ = nullptr;
  obs::Counter* exchange_ops_ = nullptr;
  obs::Counter* exchange_pending_ = nullptr;
  obs::Gauge* workers_gauge_ = nullptr;
};

/// Sharded replacement for IndexBuildPhase (same name, same stats slot).
class ShardIndexBuildPhase : public TickPhase {
 public:
  ShardIndexBuildPhase() : TickPhase(phase_names::kIndexBuild) {}
  Status Run(TickContext* ctx) override;
};

/// Sharded replacement for DecisionActionPhase (same name and stats slot).
class ShardDecisionPhase : public TickPhase {
 public:
  ShardDecisionPhase() : TickPhase(phase_names::kDecisionAction) {}
  Status Run(TickContext* ctx) override;
};

}  // namespace shard
}  // namespace sgl

#endif  // SGL_SHARD_RUNTIME_H_
