// One in-process shard worker: a local slice of the environment table
// plus a full per-script evaluation stack mirroring the driver's.
//
// A worker owns the rows its ShardAssignment says it owns and holds
// read-only ghost copies of every other row its membership mask includes
// (the margin rows its scripts may read, or the whole world under
// replicated partitioning). Local rows are stored in ascending global row
// order with their global keys, so unit-keyed randomness, dispatch, and
// naive scans behave exactly as they would against the authoritative
// table; effect rows are translated back to global ids by the worker's
// OpJournal as they are recorded.
//
// Per session the worker builds its own Interpreter, aggregate provider
// (indexed or adaptive, matching SimulationConfig::eval_mode), action
// sink, sharing decorator, and compiled program. Providers and compiled
// programs bind their counters into the simulation's metrics registry
// under the same names as the driver sessions' — the counters are shared,
// and every worker accumulates into its own shard slot, so totals across
// workers reproduce the single-table tallies (each unit is evaluated by
// exactly one owner).
#ifndef SGL_SHARD_WORKER_H_
#define SGL_SHARD_WORKER_H_

#include <map>
#include <memory>
#include <vector>

#include "engine/simulation.h"
#include "env/partition_map.h"
#include "env/table.h"
#include "exec/exchange.h"
#include "opt/action_sink.h"
#include "opt/indexed_provider.h"
#include "opt/sharing.h"
#include "sgl/interpreter.h"
#include "util/rng.h"
#include "util/status.h"
#include "vm/vm.h"

namespace sgl {
namespace shard {

/// A worker-side mirror of one driver ScriptSession.
struct WorkerSession {
  const ScriptSession* driver = nullptr;
  std::unique_ptr<Interpreter> interp;
  std::unique_ptr<IndexedAggregateProvider> provider;  // null under naive
  std::unique_ptr<IndexedActionSink> sink;             // null under naive
  std::unique_ptr<SharingAggregateProvider> sharing;   // null if per-unit
  std::unique_ptr<vm::CompiledProgram> compiled;       // mirrors driver
};

class ShardWorker {
 public:
  /// Build worker `id` of `num_shards` against `sim`'s registered
  /// sessions and configuration. The simulation must be fully assembled
  /// (sessions, dispatch, metrics registry) and must outlive the worker.
  static Result<std::unique_ptr<ShardWorker>> Create(Simulation* sim,
                                                     int32_t id,
                                                     int32_t num_shards);

  /// Rebuild the local table from scratch: every global row whose
  /// membership mask includes this worker, in ascending global order.
  Status Rebuild(const EnvironmentTable& global, const ShardAssignment& assign);

  /// Delta refresh: re-copy one dirty global row's attributes (no-op when
  /// the row is not held locally) and mirror its dirty mask onto the
  /// local change log so per-worker adaptive decisions see exactly the
  /// churn the single-table engine would.
  void RefreshRow(const EnvironmentTable& global, RowId global_row,
                  uint64_t mask);

  /// RefreshRow with the row's attribute values (attrs 1..k) supplied by
  /// the caller — the durable-storage path, where ghost refresh reads
  /// come back through the buffer pool rather than the live table.
  void RefreshRowValues(RowId global_row, uint64_t mask,
                        const std::vector<double>& values);

  /// Phase-1 work: rebuild (or delta-maintain, per the adaptive cost
  /// model) every session's index families over the local table.
  Status BuildLocalIndexes(const TickRandom& rnd);

  /// Close the local change window (after every session consumed it).
  void ClearLocalChanges();

  /// Tick prologue for the worker-private sharing context (demotions +
  /// memo reset). Called sequentially on the driver thread.
  void BeginTick();

  /// Evaluate the decision phase for every owned row, streaming effects
  /// into the worker's journal (one actor segment per unit, or per
  /// contiguous own-row batch on the VM path).
  Status RunDecisions(const TickRandom& rnd, obs::Tracer* tracer);

  /// Drain session `s`'s deferred-AOE batches, with every recorded actor
  /// remapped local -> global. Empty when the session has no sink.
  IndexedActionSink::PendingBatches TakePendingRemapped(int32_t s);

  exec::OpJournal* journal() { return &journal_; }
  int32_t id() const { return id_; }
  int64_t own_rows() const { return own_rows_; }
  const EnvironmentTable& local_table() const { return local_; }
  SharingContext* sharing_context() { return sharing_ctx_.get(); }

 private:
  ShardWorker(Simulation* sim, int32_t id, int32_t num_shards);

  /// Local-dispatch mirror of Simulation::SessionForRow, resolving to the
  /// worker session index for local row `row`.
  Result<int32_t> SessionIndexForRow(RowId row) const;

  RowId ToGlobal(RowId local) const { return local_to_global_[local]; }

  Simulation* sim_;
  const int32_t id_;
  const int32_t num_shards_;
  bool adaptive_ = false;  // local table tracks changes

  EnvironmentTable local_;
  std::vector<RowId> local_to_global_;
  std::vector<RowId> global_to_local_;  // -1 = not held
  std::vector<uint8_t> is_own_;
  int64_t own_rows_ = 0;

  // Dispatch state copied from the simulation (the local table holds the
  // same dispatch attribute values, so lookups resolve identically).
  AttrId dispatch_attr_ = Schema::kInvalidAttr;
  std::map<double, int32_t> dispatch_map_;
  int32_t default_session_ = -1;

  std::unique_ptr<SharingContext> sharing_ctx_;  // null when sharing off
  std::vector<std::unique_ptr<WorkerSession>> sessions_;
  vm::BatchExecutor executor_;
  exec::OpJournal journal_;
};

}  // namespace shard
}  // namespace sgl

#endif  // SGL_SHARD_WORKER_H_
