#include "shard/runtime.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "exec/exchange.h"
#include "storage/world_store.h"

namespace sgl {
namespace shard {

namespace {

/// Total index probes issued so far, read off the driver sessions'
/// counters. Under sharding the worker providers bind the same counters
/// (one shard slot per worker), so the driver-session read covers every
/// worker's probes.
int64_t TotalProbes(Simulation* sim) {
  int64_t probes = 0;
  for (const auto& session : sim->sessions()) {
    if (session->provider != nullptr) {
      probes += session->provider->probe_count();
    }
  }
  return probes;
}

/// K-way merge of per-worker deferred-AOE batches by ascending actor row.
/// Each worker's per-update list already ascends (owned rows are evaluated
/// in ascending local — hence global — order), and actor sets are disjoint
/// across workers, so the merge reproduces the exact batch order a
/// sequential single-table run would have deferred in.
IndexedActionSink::PendingBatches MergePendingByActor(
    std::vector<IndexedActionSink::PendingBatches> per_worker,
    int64_t* total) {
  IndexedActionSink::PendingBatches merged;
  for (const auto& batches : per_worker) {
    if (batches.empty()) continue;
    merged.resize(batches.size());
    for (size_t a = 0; a < batches.size(); ++a) {
      merged[a].resize(batches[a].size());
    }
    break;
  }
  for (size_t a = 0; a < merged.size(); ++a) {
    for (size_t s = 0; s < merged[a].size(); ++s) {
      std::vector<size_t> cursor(per_worker.size(), 0);
      for (;;) {
        int best = -1;
        RowId best_actor = 0;
        for (size_t w = 0; w < per_worker.size(); ++w) {
          if (per_worker[w].empty()) continue;
          const auto& list = per_worker[w][a][s];
          if (cursor[w] >= list.size()) continue;
          const RowId actor = list[cursor[w]].actor;
          if (best < 0 || actor < best_actor) {
            best = static_cast<int>(w);
            best_actor = actor;
          }
        }
        if (best < 0) break;
        merged[a][s].push_back(
            std::move(per_worker[best][a][s][cursor[best]]));
        ++cursor[best];
        if (total != nullptr) ++*total;
      }
    }
  }
  return merged;
}

}  // namespace

Result<std::unique_ptr<ShardRuntime>> ShardRuntime::Create(Simulation* sim) {
  const SimulationConfig& config = sim->config();
  std::unique_ptr<ShardRuntime> runtime(
      new ShardRuntime(sim, config.shards));

  // Reach analysis decides the partitioning scheme (see runtime.h).
  bool all_bounded = true;
  double max_radius = 0.0;
  for (const auto& session : sim->sessions()) {
    ScriptReach reach = ComputeScriptReach(session->script);
    if (!reach.supported) {
      return Status::Invalid("script '", session->name,
                             "' cannot run with shards > 1: ", reach.note);
    }
    if (reach.bounded) {
      max_radius = std::max(max_radius, reach.radius);
    } else {
      all_bounded = false;
    }
    runtime->reaches_.push_back(std::move(reach));
  }
  runtime->posx_ = sim->table().schema().Find("posx");
  runtime->world_width_ = static_cast<double>(config.grid_width);
  runtime->replicated_ = config.eval_mode == EvaluatorMode::kAdaptive ||
                         !all_bounded ||
                         runtime->posx_ == Schema::kInvalidAttr ||
                         runtime->world_width_ <= 0.0;
  runtime->margin_ = runtime->replicated_ ? 0.0 : max_radius;

  for (int32_t w = 0; w < runtime->num_shards_; ++w) {
    SGL_ASSIGN_OR_RETURN(auto worker,
                         ShardWorker::Create(sim, w, runtime->num_shards_));
    runtime->workers_.push_back(std::move(worker));
  }

  obs::MetricsRegistry* metrics = sim->mutable_metrics();
  const uint32_t exec_dep = obs::kMetricExecDependent;
  runtime->repartitions_ =
      metrics->GetCounter("shard.repartitions", exec_dep);
  runtime->refresh_rows_ =
      metrics->GetCounter("shard.refresh_rows", exec_dep);
  runtime->drift_rebuilds_ =
      metrics->GetCounter("shard.drift_rebuilds", exec_dep);
  runtime->exchange_ops_ =
      metrics->GetCounter("shard.exchange.ops", exec_dep);
  runtime->exchange_pending_ =
      metrics->GetCounter("shard.exchange.pending", exec_dep);
  runtime->workers_gauge_ = metrics->GetGauge("shard.workers", exec_dep);
  runtime->workers_gauge_->Set(runtime->num_shards_);
  return runtime;
}

Status ShardRuntime::ForEachWorker(
    exec::ThreadPool* pool, exec::ParallelStats* stats,
    const std::function<Status(ShardWorker*)>& fn) {
  if (pool == nullptr) {
    for (auto& worker : workers_) SGL_RETURN_NOT_OK(fn(worker.get()));
    if (stats != nullptr) stats->workers = std::max<int64_t>(stats->workers, 1);
    return Status::OK();
  }
  return pool->ParallelFor(
      num_shards_, /*grain=*/1,
      [&](int32_t, int64_t lo, int64_t hi) -> Status {
        for (int64_t w = lo; w < hi; ++w) {
          SGL_RETURN_NOT_OK(fn(workers_[w].get()));
        }
        return Status::OK();
      },
      stats);
}

Status ShardRuntime::Refresh(TickContext* ctx) {
  EnvironmentTable& global = *ctx->table;
  const TableChanges& changes = global.changes();

  const bool full = !assigned_ || changes.structural;
  uint64_t drift_workers = 0;
  if (!full && !replicated_) {
    // Stripe drift: a dirty row whose position left its recorded stripe
    // (or margin band) gets its assignment patched in place, and only
    // the workers whose copy set it touches (old and new owner and
    // members) rebuild — the rest take the cheap per-row delta path.
    // Clean rows cannot drift: the stripe functions depend on nothing
    // but posx, and an unchanged posx maps to the same stripe.
    for (RowId g : changes.dirty_rows) {
      const double x = global.Get(g, posx_);
      const int32_t owner = StripeOwner(x, world_width_, num_shards_);
      const uint64_t member =
          StripeMembership(x, world_width_, num_shards_, margin_);
      if (owner != assign_.owner[g] || member != assign_.member[g]) {
        drift_workers |= assign_.member[g] | member |
                         (1ull << assign_.owner[g]) | (1ull << owner);
        assign_.owner[g] = owner;
        assign_.member[g] = member;
      }
    }
  }

  // With durable storage attached, ghost refresh reads row values back
  // through the buffer pool instead of the live table: one pool sync up
  // front (the mid-tick drain/reset writes), then page reads — the
  // out-of-core read path, and a continuous cross-check that the pages
  // mirror the table bit for bit.
  std::vector<std::vector<double>> staged;
  storage::WorldStore* store = sim_->store();
  if (store != nullptr && !full) {
    SGL_RETURN_NOT_OK(store->FlushPoolDeltas(global));
    staged.resize(changes.dirty_rows.size());
    for (size_t i = 0; i < changes.dirty_rows.size(); ++i) {
      SGL_RETURN_NOT_OK(store->ReadRow(changes.dirty_rows[i], &staged[i]));
    }
  }

  exec::ParallelStats pstats;
  if (full) {
    assign_ = replicated_
                  ? BuildReplicated(global, num_shards_)
                  : BuildSpatialStripes(global, posx_, world_width_,
                                        num_shards_, margin_);
    assigned_ = true;
    repartitions_->Add(1);
  } else {
    refresh_rows_->Add(static_cast<int64_t>(changes.dirty_rows.size()));
    if (drift_workers != 0) {
      int64_t rebuilds = 0;
      for (int32_t w = 0; w < num_shards_; ++w) {
        if ((drift_workers >> w) & 1) ++rebuilds;
      }
      drift_rebuilds_->Add(rebuilds);
    }
  }
  SGL_RETURN_NOT_OK(ForEachWorker(
      ctx->pool, &pstats, [&](ShardWorker* worker) -> Status {
        const bool rebuild =
            full || ((drift_workers >> worker->id()) & 1) != 0;
        obs::SpanScope span(ctx->tracer, "shard-build", 1 + worker->id(),
                            worker->id());
        if (ctx->tracer != nullptr) {
          char args[64];
          std::snprintf(args, sizeof(args), "{\"shard\":%d,\"full\":%d}",
                        worker->id(), rebuild ? 1 : 0);
          span.set_args_json(args);
        }
        if (rebuild) {
          SGL_RETURN_NOT_OK(worker->Rebuild(global, assign_));
        } else {
          for (size_t i = 0; i < changes.dirty_rows.size(); ++i) {
            const RowId g = changes.dirty_rows[i];
            if (staged.empty()) {
              worker->RefreshRow(global, g, changes.attr_mask(g));
            } else {
              worker->RefreshRowValues(g, changes.attr_mask(g), staged[i]);
            }
          }
        }
        SGL_RETURN_NOT_OK(worker->BuildLocalIndexes(*ctx->rnd));
        worker->ClearLocalChanges();
        return Status::OK();
      }));
  // Every worker consumed this change window; open the next one (the
  // single-table IndexBuildPhase does the same after its builds).
  global.ClearChanges();

  // Deterministic stat parity with IndexBuildPhase: one whole-table
  // rows-scanned tally per provider-backed session.
  for (const auto& session : sim_->sessions()) {
    if (session->provider != nullptr) {
      ctx->stats->AddRowsScanned(global.NumRows());
    }
  }
  ctx->stats->NoteWorkers(pstats.workers);
  ctx->stats->AddMaxWorkerNs(pstats.max_worker_ns);
  return Status::OK();
}

Status ShardRuntime::RunDecisions(TickContext* ctx) {
  Simulation* sim = ctx->sim;
  const int64_t probes_before = TotalProbes(sim);
  const RowId n = ctx->table->NumRows();

  // Sharing prologue for the worker-private contexts, sequentially on the
  // driver thread (demotion decisions read cumulative counts).
  for (auto& worker : workers_) worker->BeginTick();

  exec::ParallelStats pstats;
  SGL_RETURN_NOT_OK(ForEachWorker(
      ctx->pool, &pstats, [&](ShardWorker* worker) -> Status {
        obs::SpanScope span(ctx->tracer, "shard", 1 + worker->id(),
                            worker->id());
        if (ctx->tracer != nullptr) {
          char args[80];
          std::snprintf(args, sizeof(args),
                        "{\"shard\":%d,\"own_rows\":%lld}", worker->id(),
                        static_cast<long long>(worker->own_rows()));
          span.set_args_json(args);
        }
        return worker->RunDecisions(*ctx->rnd, ctx->tracer);
      }));

  // Canonical exchange: replay every journal into the tick buffer in
  // ascending-actor order — the single-table call order.
  std::vector<exec::OpJournal*> journals;
  journals.reserve(workers_.size());
  int64_t ops = 0;
  for (auto& worker : workers_) {
    journals.push_back(worker->journal());
    ops += worker->journal()->num_ops();
  }
  exec::MergeJournals(journals, ctx->buffer);
  exchange_ops_->Add(ops);

  // Deferred-AOE exchange: drain every worker's pending batches (actors
  // already remapped to global rows), merge by actor, and hand them to
  // the driver sinks for the unchanged deferred-index phase.
  const size_t num_sessions = sim->sessions().size();
  for (size_t s = 0; s < num_sessions; ++s) {
    auto& session = sim->sessions()[s];
    if (session->sink == nullptr) continue;
    std::vector<IndexedActionSink::PendingBatches> per_worker;
    per_worker.reserve(workers_.size());
    for (auto& worker : workers_) {
      per_worker.push_back(
          worker->TakePendingRemapped(static_cast<int32_t>(s)));
    }
    int64_t pending = 0;
    session->sink->ImportPending(
        MergePendingByActor(std::move(per_worker), &pending));
    exchange_pending_->Add(pending);
  }

  ctx->stats->AddRowsScanned(n);
  ctx->stats->AddIndexProbes(TotalProbes(sim) - probes_before);
  ctx->stats->NoteWorkers(pstats.workers);
  ctx->stats->AddMaxWorkerNs(pstats.max_worker_ns);
  return Status::OK();
}

std::string ShardRuntime::Describe() const {
  std::ostringstream os;
  os << "-- Sharding --\n";
  os << "workers: " << num_shards_ << ", partitioning: ";
  if (replicated_) {
    os << "replicated (full ghosts, contiguous owner blocks)";
  } else {
    os << "spatial stripes over posx, ghost margin " << margin_;
  }
  os << "\n";
  const auto& sessions = sim_->sessions();
  for (size_t i = 0; i < sessions.size() && i < reaches_.size(); ++i) {
    os << "script '" << sessions[i]->name << "': reach "
       << reaches_[i].note << "\n";
  }
  return os.str();
}

int64_t ShardRuntime::shared_hits() const {
  int64_t hits = 0;
  for (const auto& worker : workers_) {
    const SharingContext* ctx = worker->sharing_context();
    if (ctx != nullptr) hits += ctx->shared_hits();
  }
  return hits;
}

int64_t ShardRuntime::memo_entries() const {
  int64_t entries = 0;
  for (const auto& worker : workers_) {
    const SharingContext* ctx = worker->sharing_context();
    if (ctx != nullptr) entries += ctx->memo_entries();
  }
  return entries;
}

Status ShardIndexBuildPhase::Run(TickContext* ctx) {
  return ctx->sim->shard_runtime()->Refresh(ctx);
}

Status ShardDecisionPhase::Run(TickContext* ctx) {
  return ctx->sim->shard_runtime()->RunDecisions(ctx);
}

}  // namespace shard
}  // namespace sgl
