#include "shard/worker.h"

#include <utility>

#include "opt/adaptive_provider.h"
#include "vm/compiler.h"

namespace sgl {
namespace shard {

ShardWorker::ShardWorker(Simulation* sim, int32_t id, int32_t num_shards)
    : sim_(sim),
      id_(id),
      num_shards_(num_shards),
      local_(sim->table().schema()) {}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Create(Simulation* sim,
                                                         int32_t id,
                                                         int32_t num_shards) {
  std::unique_ptr<ShardWorker> worker(new ShardWorker(sim, id, num_shards));
  const SimulationConfig& config = sim->config();
  worker->adaptive_ = config.eval_mode == EvaluatorMode::kAdaptive;
  worker->dispatch_attr_ = sim->dispatch_attr();
  worker->dispatch_map_ = sim->dispatch_map();
  worker->default_session_ = sim->default_session();
  if (config.sharing) {
    // Worker-private context: memo hits stay local to the worker (cross-
    // worker publication would race), and its counters stay in the
    // context's private registry — the driver context's bound "sharing.*"
    // counters are all execution-dependent, so the split is observable
    // only through exec-dependent metrics.
    worker->sharing_ctx_ = std::make_unique<SharingContext>();
  }

  for (auto& driver : sim->sessions()) {
    auto ws = std::make_unique<WorkerSession>();
    ws->driver = driver.get();
    ws->interp = std::make_unique<Interpreter>(driver->script);
    if (config.eval_mode != EvaluatorMode::kNaive) {
      if (config.index_aggregates) {
        if (config.eval_mode == EvaluatorMode::kAdaptive) {
          SGL_ASSIGN_OR_RETURN(auto adaptive,
                               AdaptiveAggregateProvider::Create(
                                   driver->script, *ws->interp));
          adaptive->set_metrics_shard(id);
          ws->provider = std::move(adaptive);
        } else {
          SGL_ASSIGN_OR_RETURN(ws->provider,
                               IndexedAggregateProvider::Create(
                                   driver->script, *ws->interp));
        }
        // Size the counters for this worker's shard slot while they still
        // live in the provider's private registry: set_num_shards resizes
        // whichever registry is currently bound, and the simulation's is
        // sized once by the builder after every worker has bound.
        ws->provider->set_num_shards(num_shards);
        ws->interp->set_aggregate_provider(ws->provider.get());
      }
      if (config.index_actions) {
        SGL_ASSIGN_OR_RETURN(
            ws->sink, IndexedActionSink::Create(driver->script, *ws->interp));
        ws->sink->set_num_shards(num_shards);
        ws->interp->set_action_sink(ws->sink.get());
      }
    }
    if (config.sharing) {
      SGL_ASSIGN_OR_RETURN(
          auto sharing,
          SharingAggregateProvider::Create(driver->script, *ws->interp,
                                           ws->provider.get(),
                                           worker->sharing_ctx_.get(),
                                           driver->name));
      if (sharing->any_shared()) {
        ws->sharing = std::move(sharing);
        ws->interp->set_aggregate_provider(ws->sharing.get());
      }
    }
    if (config.compiled && driver->compiled != nullptr) {
      // The driver compiled this script, so the (deterministic) compiler
      // accepts it here too; the worker runs its own program copy.
      SGL_ASSIGN_OR_RETURN(ws->compiled, vm::CompileProgram(driver->script));
    }

    // Rebind into the simulation's registry under the driver session's
    // names: GetCounter returns the existing counters, so worker tallies
    // accumulate into the same metrics the single-table engine writes —
    // each unit has exactly one owner, so the totals match.
    const uint32_t provider_flags = ws->sharing != nullptr
                                        ? obs::kMetricExecDependent
                                        : obs::kMetricNone;
    if (ws->provider != nullptr) {
      ws->provider->BindMetrics(sim->mutable_metrics(),
                                "script." + driver->name + ".agg.",
                                provider_flags);
    }
    if (ws->compiled != nullptr) {
      ws->compiled->BindMetrics(sim->mutable_metrics(),
                                "script." + driver->name + ".vm.",
                                obs::kMetricNone);
    }
    worker->sessions_.push_back(std::move(ws));
  }
  if (worker->sharing_ctx_ != nullptr) {
    worker->sharing_ctx_->set_num_shards(num_shards);
  }
  return worker;
}

Status ShardWorker::Rebuild(const EnvironmentTable& global,
                            const ShardAssignment& assign) {
  local_ = EnvironmentTable(global.schema());
  const RowId n = global.NumRows();
  local_to_global_.clear();
  is_own_.clear();
  own_rows_ = 0;
  global_to_local_.assign(n, -1);
  const uint64_t bit = uint64_t{1} << id_;
  const int32_t num_attrs = global.schema().NumAttrs();
  std::vector<double> values(static_cast<size_t>(num_attrs) - 1);
  for (RowId g = 0; g < n; ++g) {
    if ((assign.member[g] & bit) == 0) continue;
    for (AttrId a = 1; a < num_attrs; ++a) values[a - 1] = global.Get(g, a);
    SGL_RETURN_NOT_OK(local_.AddRowWithKey(global.KeyAt(g), values));
    global_to_local_[g] = static_cast<RowId>(local_to_global_.size());
    local_to_global_.push_back(g);
    const bool own = assign.owner[g] == id_;
    is_own_.push_back(own ? 1 : 0);
    if (own) ++own_rows_;
  }
  if (adaptive_) {
    // A fresh log opens structural, exactly like the global table's first
    // window (and like every rebuild-triggering window): the adaptive
    // providers full-rebuild next, as the single-table engine would.
    local_.EnableChangeTracking();
  }
  journal_.set_row_map(&local_to_global_);
  return Status::OK();
}

void ShardWorker::RefreshRow(const EnvironmentTable& global, RowId global_row,
                             uint64_t mask) {
  const RowId l = global_to_local_[global_row];
  if (l < 0) return;
  const int32_t num_attrs = global.schema().NumAttrs();
  for (AttrId a = 1; a < num_attrs; ++a) {
    local_.Set(l, a, global.Get(global_row, a));
  }
  // Mirror the authoritative mask even where the local value happened to
  // round-trip back (written and reverted attrs are dirty globally too):
  // adaptive churn signals must match the single-table engine's bit for
  // bit, or cost decisions — and with them probe tallies — could drift.
  local_.MarkRowDirty(l, mask);
}

void ShardWorker::RefreshRowValues(RowId global_row, uint64_t mask,
                                   const std::vector<double>& values) {
  const RowId l = global_to_local_[global_row];
  if (l < 0) return;
  for (size_t a = 0; a < values.size(); ++a) {
    local_.Set(l, static_cast<AttrId>(a) + 1, values[a]);
  }
  local_.MarkRowDirty(l, mask);
}

Status ShardWorker::BuildLocalIndexes(const TickRandom& rnd) {
  for (auto& ws : sessions_) {
    if (ws->provider == nullptr) continue;
    SGL_RETURN_NOT_OK(ws->provider->BuildIndexes(local_, rnd,
                                                 /*pool=*/nullptr,
                                                 /*stats=*/nullptr));
  }
  return Status::OK();
}

void ShardWorker::ClearLocalChanges() {
  if (local_.change_tracking_enabled()) local_.ClearChanges();
}

void ShardWorker::BeginTick() {
  if (sharing_ctx_ != nullptr) sharing_ctx_->BeginTick();
}

Status ShardWorker::RunDecisions(const TickRandom& rnd, obs::Tracer* tracer) {
  journal_.Clear();
  executor_.set_tracer(tracer);
  const RowId n = local_.NumRows();
  RowId r = 0;
  while (r < n) {
    if (is_own_[r] == 0) {
      ++r;
      continue;
    }
    SGL_ASSIGN_OR_RETURN(const int32_t si, SessionIndexForRow(r));
    WorkerSession& ws = *sessions_[si];
    if (ws.compiled != nullptr) {
      // Extend the batch while consecutive local rows are owned here and
      // dispatch to the same session. A dispatch error breaks the run and
      // surfaces on a later iteration, after this run's effects — the
      // interpreter's order.
      RowId end = r + 1;
      while (end < n && is_own_[end] != 0) {
        auto next = SessionIndexForRow(end);
        if (!next.ok() || next.value() != si) break;
        ++end;
      }
      journal_.BeginActor(ToGlobal(r));
      SGL_RETURN_NOT_OK(executor_.Run(*ws.compiled, *ws.interp, local_, r, end,
                                      rnd, &journal_, id_));
      r = end;
    } else {
      journal_.BeginActor(ToGlobal(r));
      SGL_RETURN_NOT_OK(ws.interp->RunUnit(local_, r, rnd, &journal_, id_));
      ++r;
    }
  }
  return Status::OK();
}

IndexedActionSink::PendingBatches ShardWorker::TakePendingRemapped(int32_t s) {
  WorkerSession& ws = *sessions_[s];
  if (ws.sink == nullptr) return {};
  IndexedActionSink::PendingBatches batches = ws.sink->TakePending();
  for (auto& per_action : batches) {
    for (auto& per_update : per_action) {
      for (auto& pending : per_update) {
        pending.actor = local_to_global_[pending.actor];
      }
    }
  }
  return batches;
}

Result<int32_t> ShardWorker::SessionIndexForRow(RowId row) const {
  if (dispatch_attr_ == Schema::kInvalidAttr) return default_session_;
  const double value = local_.Get(row, dispatch_attr_);
  auto it = dispatch_map_.find(value);
  if (it != dispatch_map_.end()) return it->second;
  if (default_session_ >= 0) return default_session_;
  return Status::ExecutionError(
      "no script registered for ", local_.schema().attr(dispatch_attr_).name,
      " = ", value, " (unit key ", local_.KeyAt(row), ")");
}

}  // namespace shard
}  // namespace sgl
