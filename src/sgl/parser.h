// Recursive-descent parser for SGL.
#ifndef SGL_SGL_PARSER_H_
#define SGL_SGL_PARSER_H_

#include <string>

#include "sgl/ast.h"
#include "util/status.h"

namespace sgl {

/// Parse a full SGL compilation unit (declarations and functions).
Result<Program> ParseProgram(const std::string& source);

}  // namespace sgl

#endif  // SGL_SGL_PARSER_H_
