#include "sgl/parser.h"

#include <unordered_map>

#include "sgl/lexer.h"

namespace sgl {

namespace {

/// Parser state: a token cursor with one-token lookahead.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Parse();

 private:
  const Token& Peek(size_t off = 0) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind kind, const char* context) {
    if (Check(kind)) {
      ++pos_;
      return Status::OK();
    }
    return Status::ParseError("expected ", TokenKindName(kind), " ", context,
                              ", found ", Peek().Describe(), " at line ",
                              Peek().line);
  }

  Status ParseConstDecl(Program* program);
  Status ParseAggregateDecl(Program* program);
  Status ParseActionDecl(Program* program);
  Status ParseFunctionDecl(Program* program);
  Result<std::vector<std::string>> ParseParamList();

  Result<StmtPtr> ParseStmt();
  Result<StmtPtr> ParseBlock();
  Result<CondPtr> ParseCond();
  Result<CondPtr> ParseAndCond();
  Result<CondPtr> ParseNotCond();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseMulExpr();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfix();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Program> Parser::Parse() {
  Program program;
  while (!Check(TokenKind::kEnd)) {
    switch (Peek().kind) {
      case TokenKind::kKwConst:
        SGL_RETURN_NOT_OK(ParseConstDecl(&program));
        break;
      case TokenKind::kKwAggregate:
        SGL_RETURN_NOT_OK(ParseAggregateDecl(&program));
        break;
      case TokenKind::kKwAction:
        SGL_RETURN_NOT_OK(ParseActionDecl(&program));
        break;
      case TokenKind::kKwFunction:
        SGL_RETURN_NOT_OK(ParseFunctionDecl(&program));
        break;
      default:
        return Status::ParseError(
            "expected a declaration (const/aggregate/action/function), "
            "found ",
            Peek().Describe(), " at line ", Peek().line);
    }
  }
  return program;
}

Status Parser::ParseConstDecl(Program* program) {
  Advance();  // const
  ConstDecl decl;
  decl.line = Peek().line;
  if (!Check(TokenKind::kIdent)) {
    return Status::ParseError("expected constant name at line ", Peek().line);
  }
  decl.name = Advance().text;
  SGL_RETURN_NOT_OK(Expect(TokenKind::kAssign, "in const declaration"));
  SGL_ASSIGN_OR_RETURN(decl.value, ParseExpr());
  SGL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "after const declaration"));
  program->consts.push_back(std::move(decl));
  return Status::OK();
}

Result<std::vector<std::string>> Parser::ParseParamList() {
  SGL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "before parameter list"));
  std::vector<std::string> params;
  if (!Check(TokenKind::kRParen)) {
    do {
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected parameter name at line ",
                                  Peek().line);
      }
      params.push_back(Advance().text);
    } while (Match(TokenKind::kComma));
  }
  SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after parameter list"));
  return params;
}

Status Parser::ParseAggregateDecl(Program* program) {
  Advance();  // aggregate
  AggregateDecl decl;
  decl.line = Peek().line;
  if (!Check(TokenKind::kIdent)) {
    return Status::ParseError("expected aggregate name at line ", Peek().line);
  }
  decl.name = Advance().text;
  SGL_ASSIGN_OR_RETURN(decl.params, ParseParamList());
  if (decl.params.empty()) {
    return Status::ParseError("aggregate '", decl.name,
                              "' needs at least the probing unit parameter");
  }
  SGL_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "to open aggregate body"));
  SGL_RETURN_NOT_OK(Expect(TokenKind::kKwSelect, "in aggregate body"));

  do {
    AggItem item;
    if (!Check(TokenKind::kIdent)) {
      return Status::ParseError("expected aggregate function at line ",
                                Peek().line);
    }
    std::string fname = Advance().text;
    for (char& ch : fname) ch = static_cast<char>(std::tolower(ch));
    static const std::unordered_map<std::string, AggFunc> kFuncs = {
        {"count", AggFunc::kCount},   {"sum", AggFunc::kSum},
        {"avg", AggFunc::kAvg},       {"min", AggFunc::kMin},
        {"max", AggFunc::kMax},       {"stddev", AggFunc::kStddev},
        {"argmin", AggFunc::kArgmin}, {"argmax", AggFunc::kArgmax},
        {"nearest", AggFunc::kNearest}};
    auto it = kFuncs.find(fname);
    if (it == kFuncs.end()) {
      return Status::ParseError("unknown aggregate function '", fname,
                                "' at line ", Peek().line);
    }
    item.func = it->second;
    SGL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after aggregate function"));
    if (item.func == AggFunc::kCount || item.func == AggFunc::kNearest) {
      Match(TokenKind::kStar);  // count(*) — the '*' is optional sugar
    } else {
      SGL_ASSIGN_OR_RETURN(item.term, ParseExpr());
    }
    SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after aggregate argument"));
    if (Match(TokenKind::kKwAs)) {
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected alias after 'as' at line ",
                                  Peek().line);
      }
      item.alias = Advance().text;
    } else {
      item.alias = fname;  // default alias: the function name
    }
    decl.items.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  SGL_RETURN_NOT_OK(Expect(TokenKind::kKwFrom, "in aggregate body"));
  // FROM E e — the table name is fixed (the environment); the alias names
  // the scanned tuple.
  if (!Check(TokenKind::kIdent)) {
    return Status::ParseError("expected table name after 'from' at line ",
                              Peek().line);
  }
  Advance();  // table name (conventionally "E"); single-table model
  if (Check(TokenKind::kIdent)) {
    decl.row_var = Advance().text;
  } else {
    decl.row_var = "e";
  }
  if (Match(TokenKind::kKwWhere)) {
    SGL_ASSIGN_OR_RETURN(decl.where, ParseCond());
  } else {
    decl.where = MakeTrue();
  }
  SGL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "after select statement"));
  SGL_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "to close aggregate body"));
  program->aggregates.push_back(std::move(decl));
  return Status::OK();
}

Status Parser::ParseActionDecl(Program* program) {
  Advance();  // action
  ActionDecl decl;
  decl.line = Peek().line;
  if (!Check(TokenKind::kIdent)) {
    return Status::ParseError("expected action name at line ", Peek().line);
  }
  decl.name = Advance().text;
  SGL_ASSIGN_OR_RETURN(decl.params, ParseParamList());
  if (decl.params.empty()) {
    return Status::ParseError("action '", decl.name,
                              "' needs at least the performing unit parameter");
  }
  SGL_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "to open action body"));
  while (!Check(TokenKind::kRBrace)) {
    UpdateStmt update;
    update.line = Peek().line;
    SGL_RETURN_NOT_OK(Expect(TokenKind::kKwUpdate, "in action body"));
    if (!Check(TokenKind::kIdent)) {
      return Status::ParseError("expected row alias after 'update' at line ",
                                Peek().line);
    }
    update.row_var = Advance().text;
    if (Match(TokenKind::kKwWhere)) {
      SGL_ASSIGN_OR_RETURN(update.where, ParseCond());
    } else {
      update.where = MakeTrue();
    }
    SGL_RETURN_NOT_OK(Expect(TokenKind::kKwSet, "in update statement"));
    do {
      SetItem item;
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected attribute name at line ",
                                  Peek().line);
      }
      item.attr = Advance().text;
      switch (Peek().kind) {
        case TokenKind::kPlusAssign:
          item.op = SetOp::kAdd;
          Advance();
          break;
        case TokenKind::kMaxAssign:
          item.op = SetOp::kMaxOf;
          Advance();
          break;
        case TokenKind::kMinAssign:
          item.op = SetOp::kMinOf;
          Advance();
          break;
        case TokenKind::kAssign:
          item.op = SetOp::kSetPriority;
          Advance();
          break;
        default:
          return Status::ParseError("expected '+=', 'max=', 'min=' or '=' in "
                                    "set clause at line ",
                                    Peek().line);
      }
      SGL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      if (item.op == SetOp::kSetPriority) {
        SGL_RETURN_NOT_OK(
            Expect(TokenKind::kKwPriority, "after absolute set value"));
        SGL_ASSIGN_OR_RETURN(item.priority, ParseExpr());
      }
      update.sets.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
    SGL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "after update statement"));
    decl.updates.push_back(std::move(update));
  }
  Advance();  // }
  if (decl.updates.empty()) {
    return Status::ParseError("action '", decl.name,
                              "' has no update statements");
  }
  program->actions.push_back(std::move(decl));
  return Status::OK();
}

Status Parser::ParseFunctionDecl(Program* program) {
  Advance();  // function
  FunctionDecl decl;
  decl.line = Peek().line;
  if (!Check(TokenKind::kIdent)) {
    return Status::ParseError("expected function name at line ", Peek().line);
  }
  decl.name = Advance().text;
  SGL_ASSIGN_OR_RETURN(decl.params, ParseParamList());
  if (decl.params.empty()) {
    return Status::ParseError("function '", decl.name,
                              "' needs at least the unit tuple parameter");
  }
  SGL_ASSIGN_OR_RETURN(decl.body, ParseBlock());
  program->functions.push_back(std::move(decl));
  return Status::OK();
}

Result<StmtPtr> Parser::ParseBlock() {
  auto block = std::make_unique<Stmt>();
  block->kind = StmtKind::kBlock;
  block->line = Peek().line;
  SGL_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "to open block"));
  while (!Check(TokenKind::kRBrace)) {
    if (Match(TokenKind::kSemicolon)) continue;  // empty statement
    SGL_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
    block->body.push_back(std::move(stmt));
  }
  Advance();  // }
  return StmtPtr(std::move(block));
}

Result<StmtPtr> Parser::ParseStmt() {
  switch (Peek().kind) {
    case TokenKind::kLBrace:
      return ParseBlock();
    case TokenKind::kKwLet: {
      // Both `let x = t;` and the paper's `(let x = t)` prefix form reach
      // here (the latter via ParsePrimary-like parenthesized handling below).
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kLet;
      stmt->line = Peek().line;
      Advance();  // let
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected name after 'let' at line ",
                                  Peek().line);
      }
      stmt->let_name = Advance().text;
      SGL_RETURN_NOT_OK(Expect(TokenKind::kAssign, "in let statement"));
      SGL_ASSIGN_OR_RETURN(stmt->let_value, ParseExpr());
      SGL_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "after let statement"));
      return StmtPtr(std::move(stmt));
    }
    case TokenKind::kLParen: {
      // Paper-style `(let x = t) stmt`: the let scopes over the following
      // statement; we desugar to a block.
      if (Peek(1).kind != TokenKind::kKwLet) break;
      Advance();  // (
      auto let = std::make_unique<Stmt>();
      let->kind = StmtKind::kLet;
      let->line = Peek().line;
      Advance();  // let
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected name after 'let' at line ",
                                  Peek().line);
      }
      let->let_name = Advance().text;
      SGL_RETURN_NOT_OK(Expect(TokenKind::kAssign, "in let binding"));
      SGL_ASSIGN_OR_RETURN(let->let_value, ParseExpr());
      SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after let binding"));
      SGL_ASSIGN_OR_RETURN(StmtPtr scope, ParseStmt());
      auto block = std::make_unique<Stmt>();
      block->kind = StmtKind::kBlock;
      block->line = let->line;
      block->body.push_back(std::move(let));
      block->body.push_back(std::move(scope));
      return StmtPtr(std::move(block));
    }
    case TokenKind::kKwIf: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kIf;
      stmt->line = Peek().line;
      Advance();  // if
      SGL_ASSIGN_OR_RETURN(stmt->cond, ParseCond());
      SGL_RETURN_NOT_OK(Expect(TokenKind::kKwThen, "after if condition"));
      SGL_ASSIGN_OR_RETURN(stmt->then_branch, ParseStmt());
      if (Match(TokenKind::kKwElse)) {
        SGL_ASSIGN_OR_RETURN(stmt->else_branch, ParseStmt());
      }
      return StmtPtr(std::move(stmt));
    }
    case TokenKind::kKwPerform: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kPerform;
      stmt->line = Peek().line;
      Advance();  // perform
      if (!Check(TokenKind::kIdent)) {
        return Status::ParseError("expected action name after 'perform' at "
                                  "line ",
                                  Peek().line);
      }
      stmt->target = Advance().text;
      SGL_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after action name"));
      if (!Check(TokenKind::kRParen)) {
        do {
          SGL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          stmt->args.push_back(std::move(arg));
        } while (Match(TokenKind::kComma));
      }
      SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after action arguments"));
      SGL_RETURN_NOT_OK(
          Expect(TokenKind::kSemicolon, "after perform statement"));
      return StmtPtr(std::move(stmt));
    }
    default:
      break;
  }
  return Status::ParseError("expected a statement, found ", Peek().Describe(),
                            " at line ", Peek().line);
}

Result<CondPtr> Parser::ParseCond() {
  SGL_ASSIGN_OR_RETURN(CondPtr left, ParseAndCond());
  while (Match(TokenKind::kKwOr)) {
    SGL_ASSIGN_OR_RETURN(CondPtr right, ParseAndCond());
    auto node = std::make_unique<Cond>();
    node->kind = CondKind::kOr;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

Result<CondPtr> Parser::ParseAndCond() {
  SGL_ASSIGN_OR_RETURN(CondPtr left, ParseNotCond());
  while (Match(TokenKind::kKwAnd)) {
    SGL_ASSIGN_OR_RETURN(CondPtr right, ParseNotCond());
    left = MakeAnd(std::move(left), std::move(right));
  }
  return left;
}

Result<CondPtr> Parser::ParseNotCond() {
  if (Match(TokenKind::kKwNot)) {
    SGL_ASSIGN_OR_RETURN(CondPtr inner, ParseNotCond());
    return MakeNot(std::move(inner));
  }
  // A parenthesis can open a nested condition or a parenthesized term;
  // resolve by scanning for a comparison operator at depth 0. Simpler and
  // robust: try a term first, expect a comparison operator after it —
  // except when the parenthesis directly nests a condition, which we
  // detect by attempting the condition parse and backtracking on failure.
  if (Check(TokenKind::kLParen)) {
    size_t saved = pos_;
    Advance();
    auto nested = ParseCond();
    if (nested.ok() && Check(TokenKind::kRParen)) {
      Advance();
      return nested.MoveValue();
    }
    pos_ = saved;  // fall through to comparison
  }
  auto node = std::make_unique<Cond>();
  node->kind = CondKind::kCompare;
  node->line = Peek().line;
  SGL_ASSIGN_OR_RETURN(node->lhs, ParseExpr());
  switch (Peek().kind) {
    case TokenKind::kAssign: node->op = CompareOp::kEq; break;
    case TokenKind::kNotEq: node->op = CompareOp::kNe; break;
    case TokenKind::kLess: node->op = CompareOp::kLt; break;
    case TokenKind::kLessEq: node->op = CompareOp::kLe; break;
    case TokenKind::kGreater: node->op = CompareOp::kGt; break;
    case TokenKind::kGreaterEq: node->op = CompareOp::kGe; break;
    default:
      return Status::ParseError("expected comparison operator, found ",
                                Peek().Describe(), " at line ", Peek().line);
  }
  Advance();
  SGL_ASSIGN_OR_RETURN(node->rhs, ParseExpr());
  return CondPtr(std::move(node));
}

Result<ExprPtr> Parser::ParseExpr() {
  SGL_ASSIGN_OR_RETURN(ExprPtr left, ParseMulExpr());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    BinaryOp op =
        Peek().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    int32_t line = Peek().line;
    Advance();
    SGL_ASSIGN_OR_RETURN(ExprPtr right, ParseMulExpr());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->line = line;
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    left = std::move(node);
  }
  return left;
}

Result<ExprPtr> Parser::ParseMulExpr() {
  SGL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
         Check(TokenKind::kKwMod)) {
    BinaryOp op = Peek().kind == TokenKind::kStar    ? BinaryOp::kMul
                  : Peek().kind == TokenKind::kSlash ? BinaryOp::kDiv
                                                     : BinaryOp::kMod;
    int32_t line = Peek().line;
    Advance();
    SGL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->line = line;
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    left = std::move(node);
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Check(TokenKind::kMinus)) {
    int32_t line = Peek().line;
    Advance();
    SGL_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kUnaryMinus;
    node->line = line;
    node->args.push_back(std::move(inner));
    return ExprPtr(std::move(node));
  }
  return ParsePostfix();
}

Result<ExprPtr> Parser::ParsePostfix() {
  SGL_ASSIGN_OR_RETURN(ExprPtr base, ParsePrimary());
  while (Check(TokenKind::kDot)) {
    int32_t line = Peek().line;
    Advance();
    if (!Check(TokenKind::kIdent)) {
      return Status::ParseError("expected member name after '.' at line ",
                                Peek().line);
    }
    std::string member = Advance().text;
    if (base->kind == ExprKind::kVarRef) {
      // u.posx — possibly a tuple attribute access; the analyzer decides
      // whether `base` names a tuple or a row-valued let-binding.
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kAttrRef;
      node->line = line;
      node->tuple_var = base->name;
      node->attr = member;
      base = std::move(node);
    } else {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kFieldAccess;
      node->line = line;
      node->attr = member;
      node->args.push_back(std::move(base));
      base = std::move(node);
    }
  }
  return base;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kNumber: {
      ExprPtr node = MakeNumber(tok.number, tok.line);
      Advance();
      return node;
    }
    case TokenKind::kIdent: {
      std::string name = Advance().text;
      if (Match(TokenKind::kLParen)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCall;
        node->name = name;
        node->line = tok.line;
        if (!Check(TokenKind::kRParen)) {
          do {
            SGL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            node->args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after call arguments"));
        return ExprPtr(std::move(node));
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kVarRef;
      node->name = name;
      node->line = tok.line;
      return ExprPtr(std::move(node));
    }
    case TokenKind::kLParen: {
      Advance();
      SGL_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
      if (Match(TokenKind::kComma)) {
        // Tuple literal (x, y) — a Vec2.
        SGL_ASSIGN_OR_RETURN(ExprPtr second, ParseExpr());
        SGL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after tuple literal"));
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kTuple;
        node->line = tok.line;
        node->args.push_back(std::move(first));
        node->args.push_back(std::move(second));
        return ExprPtr(std::move(node));
      }
      SGL_RETURN_NOT_OK(
          Expect(TokenKind::kRParen, "after parenthesized expression"));
      return first;
    }
    default:
      return Status::ParseError("expected an expression, found ",
                                tok.Describe(), " at line ", tok.line);
  }
}

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  SGL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace sgl
