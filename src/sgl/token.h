// Token definitions for the SGL lexer.
//
// SGL's surface syntax (Section 4.1) is an imperative-looking functional
// language: let-bindings, conditionals, `perform`, plus SQL-like
// `aggregate` and `action` declaration forms mirroring Figures 4 and 5.
#ifndef SGL_SGL_TOKEN_H_
#define SGL_SGL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sgl {

enum class TokenKind : uint8_t {
  kEnd,
  kIdent,
  kNumber,
  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kDot,
  // Operators.
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kAssign,      // =   (also the equality comparison)
  kPlusAssign,  // +=
  kMaxAssign,   // max=
  kMinAssign,   // min=
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kNotEq,  // <> or !=
  // Keywords.
  kKwConst,
  kKwAggregate,
  kKwAction,
  kKwFunction,
  kKwLet,
  kKwIf,
  kKwThen,
  kKwElse,
  kKwPerform,
  kKwSelect,
  kKwFrom,
  kKwWhere,
  kKwUpdate,
  kKwSet,
  kKwAs,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwMod,
  kKwPriority,
};

/// Printable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier spelling (original case)
  double number = 0.0; // numeric literal value
  int32_t line = 1;
  int32_t column = 1;

  std::string Describe() const;
};

}  // namespace sgl

#endif  // SGL_SGL_TOKEN_H_
