#include "sgl/lexer.h"

#include <cctype>
#include <unordered_map>

namespace sgl {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMaxAssign: return "'max='";
    case TokenKind::kMinAssign: return "'min='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kNotEq: return "'<>'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwAggregate: return "'aggregate'";
    case TokenKind::kKwAction: return "'action'";
    case TokenKind::kKwFunction: return "'function'";
    case TokenKind::kKwLet: return "'let'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwThen: return "'then'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwPerform: return "'perform'";
    case TokenKind::kKwSelect: return "'select'";
    case TokenKind::kKwFrom: return "'from'";
    case TokenKind::kKwWhere: return "'where'";
    case TokenKind::kKwUpdate: return "'update'";
    case TokenKind::kKwSet: return "'set'";
    case TokenKind::kKwAs: return "'as'";
    case TokenKind::kKwAnd: return "'and'";
    case TokenKind::kKwOr: return "'or'";
    case TokenKind::kKwNot: return "'not'";
    case TokenKind::kKwMod: return "'mod'";
    case TokenKind::kKwPriority: return "'priority'";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdent) return "identifier '" + text + "'";
  if (kind == TokenKind::kNumber) return "number";
  return TokenKindName(kind);
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"const", TokenKind::kKwConst},
      {"aggregate", TokenKind::kKwAggregate},
      {"action", TokenKind::kKwAction},
      {"function", TokenKind::kKwFunction},
      {"let", TokenKind::kKwLet},
      {"if", TokenKind::kKwIf},
      {"then", TokenKind::kKwThen},
      {"else", TokenKind::kKwElse},
      {"perform", TokenKind::kKwPerform},
      {"select", TokenKind::kKwSelect},
      {"from", TokenKind::kKwFrom},
      {"where", TokenKind::kKwWhere},
      {"update", TokenKind::kKwUpdate},
      {"set", TokenKind::kKwSet},
      {"as", TokenKind::kKwAs},
      {"and", TokenKind::kKwAnd},
      {"or", TokenKind::kKwOr},
      {"not", TokenKind::kKwNot},
      {"mod", TokenKind::kKwMod},
      {"priority", TokenKind::kKwPriority},
  };
  return *kMap;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int32_t line = 1;
  int32_t col = 1;
  const size_t n = source.size();

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto push = [&](TokenKind kind, std::string text = "", double num = 0.0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = num;
    t.line = line;
    t.column = col;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      int32_t tline = line, tcol = col;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        advance(1);
      }
      std::string word = source.substr(start, i - start);
      auto it = Keywords().find(ToLower(word));
      Token t;
      t.kind = it == Keywords().end() ? TokenKind::kIdent : it->second;
      t.text = word;
      t.line = tline;
      t.column = tcol;
      // `max=` / `min=` compound assignment (whitespace-free).
      if (t.kind == TokenKind::kIdent &&
          (ToLower(word) == "max" || ToLower(word) == "min") && peek() == '=' &&
          peek(1) != '=') {
        t.kind = ToLower(word) == "max" ? TokenKind::kMaxAssign
                                        : TokenKind::kMinAssign;
        advance(1);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      int32_t tline = line, tcol = col;
      bool seen_dot = false;
      while (i < n) {
        char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          advance(1);
        } else if (d == '.' && !seen_dot &&
                   std::isdigit(static_cast<unsigned char>(peek(1)))) {
          seen_dot = true;
          advance(1);
        } else {
          break;
        }
      }
      std::string num = source.substr(start, i - start);
      Token t;
      t.kind = TokenKind::kNumber;
      t.number = std::stod(num);
      t.text = num;
      t.line = tline;
      t.column = tcol;
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(': push(TokenKind::kLParen); advance(1); break;
      case ')': push(TokenKind::kRParen); advance(1); break;
      case '{': push(TokenKind::kLBrace); advance(1); break;
      case '}': push(TokenKind::kRBrace); advance(1); break;
      case ',': push(TokenKind::kComma); advance(1); break;
      case ';': push(TokenKind::kSemicolon); advance(1); break;
      case '.': push(TokenKind::kDot); advance(1); break;
      case '*': push(TokenKind::kStar); advance(1); break;
      case '/': push(TokenKind::kSlash); advance(1); break;
      case '+':
        if (peek(1) == '=') {
          push(TokenKind::kPlusAssign);
          advance(2);
        } else {
          push(TokenKind::kPlus);
          advance(1);
        }
        break;
      case '-': push(TokenKind::kMinus); advance(1); break;
      case '=':
        if (peek(1) == '=') {
          push(TokenKind::kAssign);  // tolerate '==' as equality
          advance(2);
        } else {
          push(TokenKind::kAssign);
          advance(1);
        }
        break;
      case '<':
        if (peek(1) == '=') {
          push(TokenKind::kLessEq);
          advance(2);
        } else if (peek(1) == '>') {
          push(TokenKind::kNotEq);
          advance(2);
        } else {
          push(TokenKind::kLess);
          advance(1);
        }
        break;
      case '>':
        if (peek(1) == '=') {
          push(TokenKind::kGreaterEq);
          advance(2);
        } else {
          push(TokenKind::kGreater);
          advance(1);
        }
        break;
      case '!':
        if (peek(1) == '=') {
          push(TokenKind::kNotEq);
          advance(2);
          break;
        }
        [[fallthrough]];
      default:
        return Status::ParseError("unexpected character '", std::string(1, c),
                                  "' at line ", line, ", column ", col);
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace sgl
