#include "sgl/analyzer.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "sgl/builtins.h"
#include "sgl/parser.h"

namespace sgl {

namespace {

/// What a name in scope refers to inside a function body.
struct Binding {
  enum class Kind {
    kTuple,   // the unit tuple parameter (u)
    kValue,   // scalar/vec local or parameter
    kRowAgg,  // let bound to a row-returning or multi-item aggregate
  };
  Kind kind = Binding::Kind::kValue;
  int32_t agg_index = -1;
};

struct ExprCtx {
  const Schema* schema = nullptr;
  std::string u_name;            // probing/performing unit tuple name
  std::string e_name;            // scanned/affected row name ("" if none)
  const std::unordered_map<std::string, double>* consts = nullptr;
  std::unordered_map<std::string, Binding>* locals = nullptr;  // functions
  const std::vector<std::string>* scalar_params = nullptr;     // decls
  bool allow_aggregates = false;
  bool allow_random = true;
};

void AssignProgramSlots(Program* program);  // stack-slot resolution (below)

class AnalyzerImpl {
 public:
  AnalyzerImpl(Program* program, const Schema* schema)
      : program_(program), schema_(schema) {}

  Status Run(Script* out);

 private:
  Status FoldConsts();
  Result<double> FoldConstExpr(const Expr& e);

  Status AnalyzeAggregates();
  Status AnalyzeActions();
  Status AnalyzeFunctions();
  Status CheckNoRecursion();

  Status AnalyzeExpr(Expr* e, ExprCtx* ctx);
  Status AnalyzeCond(Cond* c, ExprCtx* ctx);
  Status AnalyzeStmt(Stmt* s, std::unordered_map<std::string, Binding>* locals,
                     const std::string& u_name);

  Status NormalizeFunction(FunctionDecl* fn);
  StmtPtr NormalizeStmt(StmtPtr stmt);
  void NormalizeInto(StmtPtr stmt, std::vector<StmtPtr>* out);
  void HoistAggregates(Expr* e, std::vector<StmtPtr>* hoisted);

  bool IsTupleRef(const Expr& e, const ExprCtx& ctx) const {
    if (e.kind != ExprKind::kVarRef) return false;
    if (e.name == ctx.u_name) return true;
    if (ctx.locals != nullptr) {
      auto it = ctx.locals->find(e.name);
      return it != ctx.locals->end() &&
             it->second.kind == Binding::Kind::kTuple;
    }
    return false;
  }

  static bool ContainsAggregate(const Expr& e) {
    if (e.kind == ExprKind::kCall && e.is_aggregate) return true;
    for (const ExprPtr& a : e.args) {
      if (a && ContainsAggregate(*a)) return true;
    }
    return false;
  }

  Program* program_;
  const Schema* schema_;
  std::unordered_map<std::string, double> consts_;
  std::vector<std::shared_ptr<const RowLayout>> agg_layouts_;
  int32_t fresh_counter_ = 0;
};

Status AnalyzerImpl::Run(Script* out) {
  SGL_RETURN_NOT_OK(FoldConsts());
  SGL_RETURN_NOT_OK(AnalyzeAggregates());
  SGL_RETURN_NOT_OK(AnalyzeActions());
  SGL_RETURN_NOT_OK(AnalyzeFunctions());
  SGL_RETURN_NOT_OK(CheckNoRecursion());
  for (FunctionDecl& fn : program_->functions) {
    SGL_RETURN_NOT_OK(NormalizeFunction(&fn));
  }
  // After normalization (hoisted _agg lets are ordinary bindings now),
  // predict LocalStack slots for every variable reference.
  AssignProgramSlots(program_);
  out->schema = *schema_;
  out->agg_layouts = std::move(agg_layouts_);
  out->main_index = program_->FunctionIndex("main");
  return Status::OK();
}

Status AnalyzerImpl::FoldConsts() {
  for (ConstDecl& decl : program_->consts) {
    if (consts_.count(decl.name) > 0) {
      return Status::AnalysisError("duplicate const '", decl.name,
                                   "' at line ", decl.line);
    }
    SGL_ASSIGN_OR_RETURN(decl.folded, FoldConstExpr(*decl.value));
    consts_[decl.name] = decl.folded;
  }
  return Status::OK();
}

Result<double> AnalyzerImpl::FoldConstExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return e.number;
    case ExprKind::kVarRef: {
      auto it = consts_.find(e.name);
      if (it == consts_.end()) {
        return Status::AnalysisError("const expression references unknown "
                                     "constant '",
                                     e.name, "' at line ", e.line);
      }
      return it->second;
    }
    case ExprKind::kUnaryMinus: {
      SGL_ASSIGN_OR_RETURN(double v, FoldConstExpr(*e.args[0]));
      return -v;
    }
    case ExprKind::kBinary: {
      SGL_ASSIGN_OR_RETURN(double l, FoldConstExpr(*e.args[0]));
      SGL_ASSIGN_OR_RETURN(double r, FoldConstExpr(*e.args[1]));
      switch (e.op) {
        case BinaryOp::kAdd: return l + r;
        case BinaryOp::kSub: return l - r;
        case BinaryOp::kMul: return l * r;
        case BinaryOp::kDiv:
          if (r == 0.0) {
            return Status::AnalysisError("division by zero in const "
                                         "expression at line ",
                                         e.line);
          }
          return l / r;
        case BinaryOp::kMod:
          if (r == 0.0) {
            return Status::AnalysisError("mod by zero in const expression "
                                         "at line ",
                                         e.line);
          }
          return std::fmod(l, r);
      }
      return Status::Internal("unreachable");
    }
    default:
      return Status::AnalysisError(
          "const expressions may only use numbers, earlier constants and "
          "arithmetic (line ",
          e.line, ")");
  }
}

Status AnalyzerImpl::AnalyzeExpr(Expr* e, ExprCtx* ctx) {
  switch (e->kind) {
    case ExprKind::kNumber:
      return Status::OK();
    case ExprKind::kVarRef: {
      // Constant?
      auto cit = ctx->consts->find(e->name);
      if (cit != ctx->consts->end()) {
        e->kind = ExprKind::kNumber;
        e->number = cit->second;
        return Status::OK();
      }
      if (e->name == ctx->u_name || e->name == ctx->e_name) {
        return Status::AnalysisError("unit tuple '", e->name,
                                     "' cannot be used as a value (line ",
                                     e->line, ")");
      }
      if (ctx->locals != nullptr) {
        auto it = ctx->locals->find(e->name);
        if (it != ctx->locals->end()) return Status::OK();
      }
      if (ctx->scalar_params != nullptr) {
        for (const std::string& p : *ctx->scalar_params) {
          if (p == e->name) return Status::OK();
        }
      }
      return Status::AnalysisError("unknown name '", e->name, "' at line ",
                                   e->line);
    }
    case ExprKind::kAttrRef: {
      if (e->tuple_var == ctx->u_name ||
          (!ctx->e_name.empty() && e->tuple_var == ctx->e_name)) {
        AttrId id = ctx->schema->Find(e->attr);
        if (id == Schema::kInvalidAttr) {
          return Status::AnalysisError("unknown attribute '", e->attr,
                                       "' of tuple '", e->tuple_var,
                                       "' at line ", e->line,
                                       " (schema is ", ctx->schema->ToString(),
                                       ")");
        }
        e->attr_id = id;
        return Status::OK();
      }
      // Not a tuple: re-interpret as a field access on a local binding.
      if (ctx->locals != nullptr && ctx->locals->count(e->tuple_var) > 0) {
        auto base = std::make_unique<Expr>();
        base->kind = ExprKind::kVarRef;
        base->name = e->tuple_var;
        base->line = e->line;
        e->kind = ExprKind::kFieldAccess;
        e->args.clear();
        e->args.push_back(std::move(base));
        // e->attr already holds the field name.
        return Status::OK();
      }
      return Status::AnalysisError("unknown tuple or binding '", e->tuple_var,
                                   "' at line ", e->line);
    }
    case ExprKind::kFieldAccess:
      return AnalyzeExpr(e->args[0].get(), ctx);
    case ExprKind::kUnaryMinus:
      return AnalyzeExpr(e->args[0].get(), ctx);
    case ExprKind::kBinary: {
      SGL_RETURN_NOT_OK(AnalyzeExpr(e->args[0].get(), ctx));
      return AnalyzeExpr(e->args[1].get(), ctx);
    }
    case ExprKind::kTuple: {
      SGL_RETURN_NOT_OK(AnalyzeExpr(e->args[0].get(), ctx));
      return AnalyzeExpr(e->args[1].get(), ctx);
    }
    case ExprKind::kCall: {
      // Aggregate?
      int32_t agg = program_->AggregateIndex(e->name);
      if (agg >= 0) {
        if (!ctx->allow_aggregates) {
          return Status::AnalysisError(
              "aggregate '", e->name,
              "' may not be called here (only function bodies may call "
              "aggregates) at line ",
              e->line);
        }
        const AggregateDecl& decl = program_->aggregates[agg];
        if (e->args.size() != decl.params.size()) {
          return Status::AnalysisError(
              "aggregate '", e->name, "' expects ", decl.params.size(),
              " arguments, got ", e->args.size(), " at line ", e->line);
        }
        if (!IsTupleRef(*e->args[0], *ctx)) {
          return Status::AnalysisError(
              "first argument of aggregate '", e->name,
              "' must be the unit tuple (line ", e->line, ")");
        }
        for (size_t i = 1; i < e->args.size(); ++i) {
          SGL_RETURN_NOT_OK(AnalyzeExpr(e->args[i].get(), ctx));
          if (ContainsAggregate(*e->args[i])) {
            return Status::AnalysisError(
                "aggregate arguments may not contain aggregate calls (line ",
                e->line, ")");
          }
        }
        e->is_aggregate = true;
        e->call_id = agg;
        return Status::OK();
      }
      // Scalar builtin?
      BuiltinFn fn;
      if (LookupBuiltin(e->name, &fn)) {
        if (fn == BuiltinFn::kRandom && !ctx->allow_random) {
          return Status::AnalysisError(
              "random() is not allowed inside aggregate declarations: "
              "aggregate results are shared across units via indexes and "
              "must be functions of the environment alone (line ",
              e->line, ")");
        }
        if (static_cast<int32_t>(e->args.size()) != BuiltinArity(fn)) {
          return Status::AnalysisError(
              BuiltinName(fn), "() expects ", BuiltinArity(fn),
              " arguments, got ", e->args.size(), " at line ", e->line);
        }
        for (ExprPtr& a : e->args) {
          SGL_RETURN_NOT_OK(AnalyzeExpr(a.get(), ctx));
        }
        e->is_aggregate = false;
        e->call_id = static_cast<int32_t>(fn);
        return Status::OK();
      }
      return Status::AnalysisError("unknown function '", e->name,
                                   "' at line ", e->line);
    }
  }
  return Status::Internal("unreachable expr kind");
}

Status AnalyzerImpl::AnalyzeCond(Cond* c, ExprCtx* ctx) {
  switch (c->kind) {
    case CondKind::kTrue:
      return Status::OK();
    case CondKind::kCompare:
      SGL_RETURN_NOT_OK(AnalyzeExpr(c->lhs.get(), ctx));
      return AnalyzeExpr(c->rhs.get(), ctx);
    case CondKind::kNot:
      return AnalyzeCond(c->left.get(), ctx);
    case CondKind::kAnd:
    case CondKind::kOr:
      SGL_RETURN_NOT_OK(AnalyzeCond(c->left.get(), ctx));
      return AnalyzeCond(c->right.get(), ctx);
  }
  return Status::Internal("unreachable cond kind");
}

Status AnalyzerImpl::AnalyzeAggregates() {
  std::unordered_set<std::string> names;
  for (AggregateDecl& decl : program_->aggregates) {
    if (!names.insert(decl.name).second) {
      return Status::AnalysisError("duplicate aggregate '", decl.name, "'");
    }
    ExprCtx ctx;
    ctx.schema = schema_;
    ctx.u_name = decl.params[0];
    ctx.e_name = decl.row_var;
    ctx.consts = &consts_;
    std::vector<std::string> scalar_params(decl.params.begin() + 1,
                                           decl.params.end());
    ctx.scalar_params = &scalar_params;
    ctx.allow_aggregates = false;
    ctx.allow_random = false;

    if (decl.row_var == decl.params[0]) {
      return Status::AnalysisError("aggregate '", decl.name,
                                   "': row alias shadows the unit parameter");
    }
    bool has_row_func = false;
    for (AggItem& item : decl.items) {
      if (AggFuncReturnsRow(item.func)) has_row_func = true;
      if (item.term != nullptr) {
        SGL_RETURN_NOT_OK(AnalyzeExpr(item.term.get(), &ctx));
      } else if (item.func != AggFunc::kCount &&
                 item.func != AggFunc::kNearest) {
        return Status::AnalysisError("aggregate '", decl.name, "': ",
                                     AggFuncName(item.func),
                                     " requires a term argument");
      }
    }
    if (has_row_func && decl.items.size() != 1) {
      return Status::AnalysisError(
          "aggregate '", decl.name,
          "': argmin/argmax/nearest must be the only select item");
    }
    SGL_RETURN_NOT_OK(AnalyzeCond(decl.where.get(), &ctx));

    // Result layout.
    auto layout = std::make_shared<RowLayout>();
    if (decl.ReturnsRow()) {
      layout->fields.push_back("found");
      layout->fields.push_back("dist2");
      for (AttrId a = 0; a < schema_->NumAttrs(); ++a) {
        layout->fields.push_back(schema_->attr(a).name);
      }
    } else {
      std::unordered_set<std::string> aliases;
      for (const AggItem& item : decl.items) {
        if (!aliases.insert(item.alias).second) {
          return Status::AnalysisError("aggregate '", decl.name,
                                       "': duplicate alias '", item.alias,
                                       "' (use 'as' to disambiguate)");
        }
        layout->fields.push_back(item.alias);
      }
    }
    agg_layouts_.push_back(std::move(layout));
  }
  return Status::OK();
}

Status AnalyzerImpl::AnalyzeActions() {
  std::unordered_set<std::string> names;
  for (ActionDecl& decl : program_->actions) {
    if (!names.insert(decl.name).second) {
      return Status::AnalysisError("duplicate action '", decl.name, "'");
    }
    std::vector<std::string> scalar_params(decl.params.begin() + 1,
                                           decl.params.end());
    for (UpdateStmt& update : decl.updates) {
      if (update.row_var == decl.params[0]) {
        return Status::AnalysisError("action '", decl.name,
                                     "': row alias shadows the unit "
                                     "parameter");
      }
      ExprCtx ctx;
      ctx.schema = schema_;
      ctx.u_name = decl.params[0];
      ctx.e_name = update.row_var;
      ctx.consts = &consts_;
      ctx.scalar_params = &scalar_params;
      ctx.allow_aggregates = false;
      ctx.allow_random = true;
      SGL_RETURN_NOT_OK(AnalyzeCond(update.where.get(), &ctx));
      for (SetItem& item : update.sets) {
        AttrId id = schema_->Find(item.attr);
        if (id == Schema::kInvalidAttr) {
          return Status::AnalysisError("action '", decl.name,
                                       "': unknown attribute '", item.attr,
                                       "'");
        }
        CombineType tag = schema_->attr(id).combine;
        auto tag_matches = [&]() {
          switch (item.op) {
            case SetOp::kAdd: return tag == CombineType::kSum;
            case SetOp::kMaxOf: return tag == CombineType::kMax;
            case SetOp::kMinOf: return tag == CombineType::kMin;
            case SetOp::kSetPriority: return tag == CombineType::kSet;
          }
          return false;
        };
        if (tag == CombineType::kConst) {
          return Status::AnalysisError(
              "action '", decl.name, "': attribute '", item.attr,
              "' is const state and cannot be the subject of an effect "
              "(Section 4.2); effects may only touch sum/max/min/set "
              "attributes");
        }
        if (!tag_matches()) {
          return Status::AnalysisError(
              "action '", decl.name, "': operator on '", item.attr,
              "' does not match its combine tag '", CombineTypeName(tag),
              "' (use += for sum, max= for max, min= for min, '=v priority "
              "p' for set)");
        }
        item.attr_id = id;
        SGL_RETURN_NOT_OK(AnalyzeExpr(item.value.get(), &ctx));
        if (item.priority != nullptr) {
          SGL_RETURN_NOT_OK(AnalyzeExpr(item.priority.get(), &ctx));
        }
      }
    }
  }
  return Status::OK();
}

Status AnalyzerImpl::AnalyzeStmt(
    Stmt* s, std::unordered_map<std::string, Binding>* locals,
    const std::string& u_name) {
  ExprCtx ctx;
  ctx.schema = schema_;
  ctx.u_name = u_name;
  ctx.consts = &consts_;
  ctx.locals = locals;
  ctx.allow_aggregates = true;
  ctx.allow_random = true;

  switch (s->kind) {
    case StmtKind::kLet: {
      if (locals->count(s->let_name) > 0 || s->let_name == u_name) {
        return Status::AnalysisError("'", s->let_name,
                                     "' is already bound (line ", s->line,
                                     "); SGL does not allow shadowing");
      }
      if (consts_.count(s->let_name) > 0) {
        return Status::AnalysisError("'", s->let_name,
                                     "' shadows a constant (line ", s->line,
                                     ")");
      }
      SGL_RETURN_NOT_OK(AnalyzeExpr(s->let_value.get(), &ctx));
      Binding b;
      b.kind = Binding::Kind::kValue;
      if (s->let_value->kind == ExprKind::kCall && s->let_value->is_aggregate) {
        const AggregateDecl& decl =
            program_->aggregates[s->let_value->call_id];
        if (decl.ReturnsRow() || decl.items.size() > 1) {
          b.kind = Binding::Kind::kRowAgg;
          b.agg_index = s->let_value->call_id;
        }
      }
      (*locals)[s->let_name] = b;
      return Status::OK();
    }
    case StmtKind::kIf: {
      SGL_RETURN_NOT_OK(AnalyzeCond(s->cond.get(), &ctx));
      SGL_RETURN_NOT_OK(AnalyzeStmt(s->then_branch.get(), locals, u_name));
      if (s->else_branch != nullptr) {
        SGL_RETURN_NOT_OK(AnalyzeStmt(s->else_branch.get(), locals, u_name));
      }
      return Status::OK();
    }
    case StmtKind::kPerform: {
      int32_t action = program_->ActionIndex(s->target);
      int32_t function = program_->FunctionIndex(s->target);
      if (action < 0 && function < 0) {
        return Status::AnalysisError("perform target '", s->target,
                                     "' is not a declared action or function "
                                     "(line ",
                                     s->line, ")");
      }
      size_t want_arity = action >= 0
                              ? program_->actions[action].params.size()
                              : program_->functions[function].params.size();
      if (s->args.size() != want_arity) {
        return Status::AnalysisError("perform '", s->target, "' expects ",
                                     want_arity, " arguments, got ",
                                     s->args.size(), " (line ", s->line, ")");
      }
      if (s->args.empty() || !IsTupleRef(*s->args[0], ctx)) {
        return Status::AnalysisError(
            "first argument of perform '", s->target,
            "' must be the unit tuple (line ", s->line, ")");
      }
      for (size_t i = 1; i < s->args.size(); ++i) {
        SGL_RETURN_NOT_OK(AnalyzeExpr(s->args[i].get(), &ctx));
      }
      s->target_action = action;
      s->target_function = action >= 0 ? -1 : function;
      return Status::OK();
    }
    case StmtKind::kBlock: {
      // Lets scope to the remainder of the block: analyze in order with a
      // copy of the outer locals, discarding additions at block exit.
      std::unordered_map<std::string, Binding> inner = *locals;
      for (StmtPtr& child : s->body) {
        SGL_RETURN_NOT_OK(AnalyzeStmt(child.get(), &inner, u_name));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable stmt kind");
}

Status AnalyzerImpl::AnalyzeFunctions() {
  std::unordered_set<std::string> names;
  for (FunctionDecl& fn : program_->functions) {
    if (!names.insert(fn.name).second) {
      return Status::AnalysisError("duplicate function '", fn.name, "'");
    }
    if (program_->ActionIndex(fn.name) >= 0 ||
        program_->AggregateIndex(fn.name) >= 0) {
      return Status::AnalysisError("'", fn.name,
                                   "' is declared as both a function and an "
                                   "action/aggregate");
    }
  }
  for (FunctionDecl& fn : program_->functions) {
    std::unordered_map<std::string, Binding> locals;
    for (size_t i = 1; i < fn.params.size(); ++i) {
      locals[fn.params[i]] = Binding{Binding::Kind::kValue, -1};
    }
    SGL_RETURN_NOT_OK(AnalyzeStmt(fn.body.get(), &locals, fn.params[0]));
  }
  const FunctionDecl* main = program_->FindFunction("main");
  if (main != nullptr && main->params.size() != 1) {
    return Status::AnalysisError(
        "main must take exactly one parameter (the unit tuple)");
  }
  return Status::OK();
}

Status AnalyzerImpl::CheckNoRecursion() {
  // DFS over the function -> function perform graph.
  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> marks(program_->functions.size(), Mark::kWhite);
  std::function<Status(int32_t)> visit = [&](int32_t f) -> Status {
    if (marks[f] == Mark::kGray) {
      return Status::AnalysisError("recursive perform cycle through "
                                   "function '",
                                   program_->functions[f].name, "'");
    }
    if (marks[f] == Mark::kBlack) return Status::OK();
    marks[f] = Mark::kGray;
    std::function<Status(const Stmt&)> walk = [&](const Stmt& s) -> Status {
      if (s.kind == StmtKind::kPerform && s.target_function >= 0) {
        SGL_RETURN_NOT_OK(visit(s.target_function));
      }
      if (s.then_branch) SGL_RETURN_NOT_OK(walk(*s.then_branch));
      if (s.else_branch) SGL_RETURN_NOT_OK(walk(*s.else_branch));
      for (const StmtPtr& child : s.body) SGL_RETURN_NOT_OK(walk(*child));
      return Status::OK();
    };
    SGL_RETURN_NOT_OK(walk(*program_->functions[f].body));
    marks[f] = Mark::kBlack;
    return Status::OK();
  };
  for (size_t f = 0; f < program_->functions.size(); ++f) {
    SGL_RETURN_NOT_OK(visit(static_cast<int32_t>(f)));
  }
  return Status::OK();
}

// --------------------------------------------------- aggregate normal form

void AnalyzerImpl::HoistAggregates(Expr* e, std::vector<StmtPtr>* hoisted) {
  // Post-order: hoist nested aggregates first (none exist by the analyzer's
  // "no aggregates in aggregate args" rule, but arithmetic nests freely).
  for (ExprPtr& a : e->args) {
    if (a) HoistAggregates(a.get(), hoisted);
  }
  if (e->kind == ExprKind::kCall && e->is_aggregate) {
    std::string fresh = "_agg" + std::to_string(fresh_counter_++);
    auto let = std::make_unique<Stmt>();
    let->kind = StmtKind::kLet;
    let->line = e->line;
    let->let_name = fresh;
    // Move the call into the let; leave a VarRef behind.
    auto call = std::make_unique<Expr>();
    *call = std::move(*e);
    let->let_value = std::move(call);
    hoisted->push_back(std::move(let));
    e->kind = ExprKind::kVarRef;
    e->name = fresh;
    e->args.clear();
    e->is_aggregate = false;
    e->call_id = -1;
  }
}

StmtPtr AnalyzerImpl::NormalizeStmt(StmtPtr stmt) {
  // Normalizing a statement may hoist fresh lets that must be visible to
  // the statement itself but not restrict any *original* let's scope; so
  // hoisted lets are spliced into the enclosing block right before the
  // statement. NormalizeInto does the splicing; non-block positions (if
  // branches) wrap the result in a block, which is safe because a bare
  // let in branch position scopes over nothing anyway.
  std::vector<StmtPtr> out;
  NormalizeInto(std::move(stmt), &out);
  if (out.size() == 1) return std::move(out[0]);
  auto block = std::make_unique<Stmt>();
  block->kind = StmtKind::kBlock;
  for (StmtPtr& s : out) block->body.push_back(std::move(s));
  return block;
}

void AnalyzerImpl::NormalizeInto(StmtPtr stmt, std::vector<StmtPtr>* out) {
  std::vector<StmtPtr> hoisted;
  switch (stmt->kind) {
    case StmtKind::kLet:
      // `let v = Agg(...)` with the call as the whole RHS is already in
      // normal form; anything else hoists its aggregate subterms.
      if (!(stmt->let_value->kind == ExprKind::kCall &&
            stmt->let_value->is_aggregate)) {
        HoistAggregates(stmt->let_value.get(), &hoisted);
      }
      break;
    case StmtKind::kIf: {
      std::function<void(Cond*)> walk = [&](Cond* c) {
        if (c->lhs) HoistAggregates(c->lhs.get(), &hoisted);
        if (c->rhs) HoistAggregates(c->rhs.get(), &hoisted);
        if (c->left) walk(c->left.get());
        if (c->right) walk(c->right.get());
      };
      walk(stmt->cond.get());
      stmt->then_branch = NormalizeStmt(std::move(stmt->then_branch));
      if (stmt->else_branch) {
        stmt->else_branch = NormalizeStmt(std::move(stmt->else_branch));
      }
      break;
    }
    case StmtKind::kPerform:
      for (ExprPtr& a : stmt->args) HoistAggregates(a.get(), &hoisted);
      break;
    case StmtKind::kBlock: {
      std::vector<StmtPtr> new_body;
      for (StmtPtr& child : stmt->body) {
        NormalizeInto(std::move(child), &new_body);
      }
      stmt->body = std::move(new_body);
      out->push_back(std::move(stmt));
      return;
    }
  }
  for (StmtPtr& let : hoisted) out->push_back(std::move(let));
  out->push_back(std::move(stmt));
}

Status AnalyzerImpl::NormalizeFunction(FunctionDecl* fn) {
  fn->body = NormalizeStmt(std::move(fn->body));
  return Status::OK();
}

// --------------------------------------------------- Stack-slot resolution
//
// Predict, at analysis time, the LocalStack slot each kVarRef will find its
// binding at, so the interpreter's hot-path lookup becomes an indexed load
// with a verifying compare instead of a string scan (interpreter.h). The
// prediction mirrors the interpreter's stack discipline exactly: scalar
// parameters occupy slots 0..k-1, each kLet pushes at the current depth,
// blocks pop back to their mark, and `if` branches never pop — so a branch
// that pushes makes the depth after the `if` run-dependent, where we stop
// predicting (slot -1 = always-correct scan fallback).

/// Slot environment: name -> predicted slot, plus the current stack depth
/// (kUnknownDepth once control flow makes it run-dependent).
constexpr int32_t kUnknownDepth = -1;

void AssignExprSlots(Expr* e,
                     const std::unordered_map<std::string, int32_t>& slots) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVarRef) {
    auto it = slots.find(e->name);
    e->var_slot = it != slots.end() ? it->second : -1;
  }
  for (ExprPtr& a : e->args) AssignExprSlots(a.get(), slots);
}

void AssignCondSlots(Cond* c,
                     const std::unordered_map<std::string, int32_t>& slots) {
  if (c == nullptr) return;
  AssignExprSlots(c->lhs.get(), slots);
  AssignExprSlots(c->rhs.get(), slots);
  AssignCondSlots(c->left.get(), slots);
  AssignCondSlots(c->right.get(), slots);
}

/// Walk a statement with the inherited slot map and depth; returns the
/// stack depth after the statement (kUnknownDepth when not predictable).
int32_t AssignStmtSlots(Stmt* s,
                        std::unordered_map<std::string, int32_t> slots,
                        int32_t depth) {
  switch (s->kind) {
    case StmtKind::kLet:
      AssignExprSlots(s->let_value.get(), slots);
      // Unknowable depth poisons the binding, not the walk: reads of this
      // name verify-and-miss, everything else stays predicted.
      slots[s->let_name] = depth;
      return depth == kUnknownDepth ? kUnknownDepth : depth + 1;
    case StmtKind::kIf: {
      AssignCondSlots(s->cond.get(), slots);
      // Branch bindings leak on the runtime stack (kIf never pops) but go
      // out of scope for name resolution — branch maps are copies.
      const int32_t then_depth =
          AssignStmtSlots(s->then_branch.get(), slots, depth);
      int32_t else_depth = depth;
      if (s->else_branch != nullptr) {
        else_depth = AssignStmtSlots(s->else_branch.get(), slots, depth);
      }
      return then_depth == else_depth ? then_depth : kUnknownDepth;
    }
    case StmtKind::kBlock: {
      int32_t d = depth;
      for (StmtPtr& child : s->body) {
        d = AssignStmtSlots(child.get(), slots, d);
      }
      // The block pops to its mark, restoring the entry depth.
      return depth;
    }
    case StmtKind::kPerform:
      for (ExprPtr& a : s->args) AssignExprSlots(a.get(), slots);
      return depth;
  }
  return depth;
}

/// Map a declaration's scalar parameters to their push-order slots
/// (params[0] is the unit tuple, which lives outside the stack).
std::unordered_map<std::string, int32_t> ParamSlots(
    const std::vector<std::string>& params) {
  std::unordered_map<std::string, int32_t> slots;
  for (size_t i = 1; i < params.size(); ++i) {
    slots[params[i]] = static_cast<int32_t>(i - 1);
  }
  return slots;
}

void AssignProgramSlots(Program* program) {
  for (FunctionDecl& fn : program->functions) {
    AssignStmtSlots(fn.body.get(), ParamSlots(fn.params),
                    static_cast<int32_t>(fn.params.size()) - 1);
  }
  for (AggregateDecl& agg : program->aggregates) {
    const auto slots = ParamSlots(agg.params);
    for (AggItem& item : agg.items) AssignExprSlots(item.term.get(), slots);
    AssignCondSlots(agg.where.get(), slots);
  }
  for (ActionDecl& action : program->actions) {
    const auto slots = ParamSlots(action.params);
    for (UpdateStmt& update : action.updates) {
      AssignCondSlots(update.where.get(), slots);
      for (SetItem& set : update.sets) {
        AssignExprSlots(set.value.get(), slots);
        AssignExprSlots(set.priority.get(), slots);
      }
    }
  }
}

}  // namespace

Result<Script> Analyze(Program program, const Schema& schema) {
  Script script;
  script.program = std::move(program);
  AnalyzerImpl impl(&script.program, &schema);
  SGL_RETURN_NOT_OK(impl.Run(&script));
  return script;
}

Result<Script> CompileScript(const std::string& source, const Schema& schema) {
  SGL_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return Analyze(std::move(program), schema);
}

}  // namespace sgl
