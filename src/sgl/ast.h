// Abstract syntax tree for SGL (Section 4.1).
//
// Terms, conditions, and action statements mirror the paper's grammar:
//
//   action ::= (let a = term) action | action ; action
//            | if cond then action [else action] | perform f(args)
//
// plus the SQL-like declaration forms of Figures 4 and 5:
//
//   aggregate Name(u, p...) { select agg(term) as alias, ... from E e
//                             [where cond]; }
//   action Name(u, p...)    { update e [where cond] set attr += term, ...; }
//
// The analyzer (analyzer.h) resolves names, checks combine-tag discipline,
// folds constants, and rewrites scripts into aggregate normal form.
#ifndef SGL_SGL_AST_H_
#define SGL_SGL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "env/schema.h"

namespace sgl {

// ------------------------------------------------------------------ Terms

enum class ExprKind : uint8_t {
  kNumber,      // literal
  kVarRef,      // let-binding / scalar parameter reference
  kAttrRef,     // tuple.attr (u.posx, e.player)
  kFieldAccess, // row-valued expression .field (resolved by analyzer)
  kUnaryMinus,
  kBinary,      // + - * / mod
  kCall,        // aggregate call, scalar builtin, or random()
  kTuple,       // (x, y) vector literal
};

enum class BinaryOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int32_t line = 0;

  double number = 0.0;           // kNumber
  std::string name;              // kVarRef / kCall (function name)
  std::string tuple_var;         // kAttrRef: "u" or "e" (or alias)
  std::string attr;              // kAttrRef / kFieldAccess: member name
  BinaryOp op = BinaryOp::kAdd;  // kBinary
  std::vector<ExprPtr> args;     // kBinary (2), kUnaryMinus (1), kCall,
                                 // kTuple (2), kFieldAccess (1: base)

  // ---- analysis results ----
  AttrId attr_id = Schema::kInvalidAttr;  // kAttrRef
  int32_t field_index = -1;               // kFieldAccess
  int32_t call_id = -1;   // kCall: builtin id or aggregate decl index
  bool is_aggregate = false;  // kCall resolved to an aggregate declaration
  /// kVarRef: predicted LocalStack slot of the binding, or -1 when the
  /// analyzer could not place it statically (e.g. a binding leaked out of
  /// an if branch). A hint only — LocalStack::Find verifies the name and
  /// falls back to its scan, so -1 is always safe.
  int32_t var_slot = -1;

  ExprPtr Clone() const;
};

ExprPtr MakeNumber(double v, int32_t line = 0);

// ------------------------------------------------------------- Conditions

enum class CondKind : uint8_t { kCompare, kAnd, kOr, kNot, kTrue };
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Cond;
using CondPtr = std::unique_ptr<Cond>;

struct Cond {
  CondKind kind;
  int32_t line = 0;
  CompareOp op = CompareOp::kEq;   // kCompare
  ExprPtr lhs, rhs;                // kCompare
  CondPtr left, right;             // kAnd / kOr (left only for kNot)

  CondPtr Clone() const;
};

CondPtr MakeTrue();
CondPtr MakeNot(CondPtr c);
CondPtr MakeAnd(CondPtr a, CondPtr b);

// ------------------------------------------------------------- Statements

enum class StmtKind : uint8_t { kLet, kIf, kPerform, kBlock };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int32_t line = 0;

  // kLet
  std::string let_name;
  ExprPtr let_value;
  // kIf
  CondPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  // kPerform
  std::string target;            // action or function name
  std::vector<ExprPtr> args;
  int32_t target_action = -1;    // analysis: index into Program::actions
  int32_t target_function = -1;  // analysis: index into Program::functions
  // kBlock
  std::vector<StmtPtr> body;

  StmtPtr Clone() const;
};

// ----------------------------------------------------------- Declarations

struct ConstDecl {
  std::string name;
  ExprPtr value;        // must fold to a scalar constant
  double folded = 0.0;  // analysis result
  int32_t line = 0;
};

/// Names an aggregate function applied in a select item.
enum class AggFunc : uint8_t {
  kCount,   // count(*)
  kSum,
  kAvg,
  kMin,     // scalar minimum of the term
  kMax,
  kStddev,  // population standard deviation (via moments — divisible)
  kArgmin,  // the unit row minimizing the term
  kArgmax,
  kNearest, // the unit row nearest to (u.posx, u.posy); term unused
};

const char* AggFuncName(AggFunc f);
bool AggFuncIsDivisible(AggFunc f);
bool AggFuncReturnsRow(AggFunc f);

struct AggItem {
  AggFunc func = AggFunc::kCount;
  ExprPtr term;       // null for count(*) / nearest
  std::string alias;  // result field name (defaulted by parser if omitted)
};

struct AggregateDecl {
  std::string name;
  std::vector<std::string> params;  // params[0] is the probing unit tuple
  std::string row_var;              // the FROM alias (the scanned unit, "e")
  std::vector<AggItem> items;
  CondPtr where;  // never null after parsing (kTrue if omitted)
  int32_t line = 0;

  /// True if any item returns a unit row (then it must be the only item).
  bool ReturnsRow() const {
    return !items.empty() && AggFuncReturnsRow(items[0].func);
  }
};

enum class SetOp : uint8_t { kAdd, kMaxOf, kMinOf, kSetPriority };

struct SetItem {
  std::string attr;
  SetOp op = SetOp::kAdd;
  ExprPtr value;
  ExprPtr priority;  // kSetPriority only
  AttrId attr_id = Schema::kInvalidAttr;  // analysis
};

struct UpdateStmt {
  std::string row_var;  // the updated tuple alias ("e")
  CondPtr where;        // selects affected units; kTrue = all units
  std::vector<SetItem> sets;
  int32_t line = 0;
};

struct ActionDecl {
  std::string name;
  std::vector<std::string> params;  // params[0] is the performing unit tuple
  std::vector<UpdateStmt> updates;
  int32_t line = 0;
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;  // params[0] is the unit tuple
  StmtPtr body;
  int32_t line = 0;
};

/// A parsed SGL program (compilation unit).
struct Program {
  std::vector<ConstDecl> consts;
  std::vector<AggregateDecl> aggregates;
  std::vector<ActionDecl> actions;
  std::vector<FunctionDecl> functions;

  const FunctionDecl* FindFunction(const std::string& name) const;
  const AggregateDecl* FindAggregate(const std::string& name) const;
  const ActionDecl* FindAction(const std::string& name) const;
  int32_t FunctionIndex(const std::string& name) const;
  int32_t AggregateIndex(const std::string& name) const;
  int32_t ActionIndex(const std::string& name) const;
};

}  // namespace sgl

#endif  // SGL_SGL_AST_H_
