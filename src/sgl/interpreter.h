// Reference interpreter: the denotational semantics of Section 4.3.
//
// Scripts are evaluated tuple-at-a-time: for each unit u, [[main]](u) runs
// against the immutable tick-start environment and streams its effects
// into an EffectBuffer (the incremental ⊕). Aggregate calls scan E
// linearly and built-in actions scan E to find affected rows — the
// faithful O(n^2)-per-tick baseline the paper's Figure 10 calls the
// "naive algorithm". The optimized engine (src/engine) must match this
// interpreter's output bit for bit.
#ifndef SGL_SGL_INTERPRETER_H_
#define SGL_SGL_INTERPRETER_H_

#include <string>
#include <utility>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "env/value.h"
#include "sgl/analyzer.h"
#include "util/rng.h"
#include "util/status.h"

namespace sgl {

/// Bindings visible while evaluating a term: a flat stack of named values
/// (scopes push and pop ranges; lookups scan from the innermost end).
class LocalStack {
 public:
  LocalStack() { entries_.reserve(16); }

  void Push(const std::string& name, Value v) {
    entries_.emplace_back(name, std::move(v));
  }
  size_t Mark() const { return entries_.size(); }
  void PopTo(size_t mark) { entries_.resize(mark); }

  /// Innermost binding of `name`. This is the hot path of expression
  /// evaluation (every identifier lookup lands here). `slot_hint` is the
  /// analyzer's compile-time stack-slot prediction (Expr::var_slot): when
  /// the entry at that depth carries the name, the lookup is one bounds
  /// check and one verifying compare instead of a scan. The hint is just
  /// a hint — callers that build non-standard stacks (or a binding the
  /// analyzer could not place) miss the verify and fall back to the scan,
  /// so the result is always the innermost match. Scan mismatches are
  /// rejected on length and first character before the full compare.
  const Value* Find(const std::string& name, int32_t slot_hint = -1) const {
    if (slot_hint >= 0 &&
        static_cast<size_t>(slot_hint) < entries_.size() &&
        entries_[slot_hint].first == name) {
      return &entries_[slot_hint].second;
    }
    const size_t len = name.size();
    const char first = len > 0 ? name[0] : '\0';
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      const std::string& candidate = it->first;
      if (candidate.size() != len || (len > 0 && candidate[0] != first)) {
        continue;
      }
      if (candidate == name) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// Pluggable aggregate evaluation — the seam between the naive and the
/// indexed engines (Section 6's two "pluggable versions of the aggregate
/// query evaluator"). The interpreter calls Eval for every aggregate;
/// the naive evaluator scans E, the indexed one probes the per-tick index
/// structures of Section 5.3.
///
/// `shard` identifies the caller's ParallelFor chunk (0 when sequential);
/// implementations must route any bookkeeping that Eval mutates (e.g.
/// probe counters) to per-shard storage so concurrent callers on distinct
/// shards never race. Eval must not mutate anything else: the parallel
/// decision phase calls it from many workers against the same frozen
/// pre-tick state.
class AggregateProvider {
 public:
  virtual ~AggregateProvider() = default;
  virtual Result<Value> Eval(int32_t agg_index,
                             const std::vector<Value>& scalar_args,
                             RowId u_row, const EnvironmentTable& table,
                             const TickRandom& rnd, int32_t shard = 0) = 0;
};

/// Pluggable action application. The naive engine scans E per update
/// statement (the literal Eq. (4) semantics); the indexed engine resolves
/// key-equality updates in O(1) and batches area-of-effect actions through
/// the ⊕ indexes of Section 5.4. Return true if the perform was handled;
/// false falls back to the interpreter's naive scan.
///
/// As with AggregateProvider::Eval, `shard` keys all mutable bookkeeping
/// (deferred area-of-effect batches) so concurrent performs on distinct
/// shards are race-free, and per-shard batches can be merged in canonical
/// chunk order to preserve bit-exact determinism.
class ActionSink {
 public:
  virtual ~ActionSink() = default;
  virtual Result<bool> Perform(int32_t action_index,
                               const std::vector<Value>& scalar_args,
                               RowId u_row, const EnvironmentTable& table,
                               const TickRandom& rnd, EffectSink* buffer,
                               int32_t shard = 0) = 0;
};

// Concurrent-caller safety (audited for the parallel decision phase):
// every evaluation entry point below is const and keeps all mutable state
// in stack-local EvalCtx/LocalStack objects, so one Interpreter may run
// many units concurrently as long as each caller supplies its own
// EffectSink (per-worker EffectShard) and a distinct `shard` id. The only
// shared mutable paths are the provider_/sink_ plugins, whose contracts
// (above) require per-shard bookkeeping; TickRandom is a pure function and
// Value's shared RowLayout/RowValue payloads are immutable after
// construction (shared_ptr refcounts are atomic).
class Interpreter {
 public:
  /// `script` must outlive the interpreter.
  explicit Interpreter(const Script& script);

  /// Redirect aggregate calls / performs. Pass nullptr to restore the
  /// naive built-in evaluation. The pointers are not owned.
  void set_aggregate_provider(AggregateProvider* provider) {
    provider_ = provider;
  }
  void set_action_sink(ActionSink* sink) { sink_ = sink; }

  /// The installed plugins (nullptr = naive built-in evaluation). The
  /// batch VM routes its scalar aggregate-probe and perform opcodes
  /// through the same plugins the interpreter would use.
  AggregateProvider* aggregate_provider() const { return provider_; }
  ActionSink* action_sink() const { return sink_; }

  /// Evaluate main for every unit of `table`, folding all effects into
  /// `buffer` (caller calls buffer->Begin(table) first). This is
  /// tick() = main⊕(E) ⊕ E of Eq. (6) without the post-processing step.
  Status Tick(const EnvironmentTable& table, const TickRandom& rnd,
              EffectBuffer* buffer) const;

  /// Evaluate main for a single unit row, streaming effects into `buffer`.
  /// `shard` is forwarded to the aggregate provider and action sink so
  /// concurrent callers (one per ParallelFor chunk) stay race-free.
  Status RunUnit(const EnvironmentTable& table, RowId u_row,
                 const TickRandom& rnd, EffectSink* buffer,
                 int32_t shard = 0) const;

  /// Naive evaluation of aggregate `agg_index` probed by unit `u_row` with
  /// the given scalar arguments (decl params after the unit tuple).
  /// Exposed for tests and as the fallback path of the indexed engine.
  Result<Value> EvalAggregate(int32_t agg_index,
                              const std::vector<Value>& scalar_args,
                              RowId u_row, const EnvironmentTable& table,
                              const TickRandom& rnd) const;

  /// Execute one declared action performed by `u_row` with the given
  /// scalar arguments (naive: scans E per update statement).
  Status ExecAction(int32_t action_index,
                    const std::vector<Value>& scalar_args, RowId u_row,
                    const EnvironmentTable& table, const TickRandom& rnd,
                    EffectSink* buffer) const;

  /// Evaluate an analyzed expression in an explicit binding environment.
  /// Used by the physical planner and the plan executor, which evaluate
  /// declaration sub-expressions outside a script run: `u_name`/`u_row`
  /// bind the probing unit (pass nullptr/-1 for none), `e_name`/`e_row`
  /// the scanned row, `locals` any parameter/let bindings, and
  /// `random_key` the key seeding random(i).
  Result<Value> EvalExprIn(const Expr& e, const EnvironmentTable& table,
                           const std::string* u_name, RowId u_row,
                           const std::string* e_name, RowId e_row,
                           LocalStack* locals, const TickRandom& rnd,
                           int64_t random_key) const;

  /// Condition analogue of EvalExprIn.
  Result<bool> EvalCondIn(const Cond& c, const EnvironmentTable& table,
                          const std::string* u_name, RowId u_row,
                          const std::string* e_name, RowId e_row,
                          LocalStack* locals, const TickRandom& rnd,
                          int64_t random_key) const;

  const Script& script() const { return *script_; }

 private:
  struct EvalCtx {
    const EnvironmentTable* table = nullptr;
    RowId u_row = -1;
    RowId e_row = -1;
    const std::string* u_name = nullptr;
    const std::string* e_name = nullptr;
    LocalStack* locals = nullptr;
    const TickRandom* rnd = nullptr;
    int64_t random_key = 0;  // unit key seeding random(i)
    int32_t shard = 0;       // caller's ParallelFor chunk (0 = sequential)
  };

  Result<Value> EvalExpr(const Expr& e, EvalCtx* ctx) const;
  Result<bool> EvalCond(const Cond& c, EvalCtx* ctx) const;
  Status ExecStmt(const Stmt& s, EvalCtx* ctx, EffectSink* buffer) const;
  Result<Value> EvalBuiltin(const Expr& e, EvalCtx* ctx) const;

  const Script* script_;
  AggregateProvider* provider_ = nullptr;
  ActionSink* sink_ = nullptr;
  AttrId posx_attr_ = Schema::kInvalidAttr;
  AttrId posy_attr_ = Schema::kInvalidAttr;
};

}  // namespace sgl

#endif  // SGL_SGL_INTERPRETER_H_
