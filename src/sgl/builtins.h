// Scalar built-in functions available in SGL terms.
#ifndef SGL_SGL_BUILTINS_H_
#define SGL_SGL_BUILTINS_H_

#include <cstdint>
#include <string>

namespace sgl {

/// Built-in scalar functions. `random(i)` is the paper's Random: within a
/// clock tick it is a pure function of (context unit key, i) — see
/// util/rng.h. Inside a `function` body the context unit is the scripted
/// unit u; inside an `action` update expression it is the affected row e
/// (matching Figure 5's `Random(e, 1)`).
enum class BuiltinFn : uint8_t {
  kAbs,
  kMin,
  kMax,
  kSqrt,
  kFloor,
  kCeil,
  kClamp,   // clamp(v, lo, hi)
  kRandom,  // random(i): uniform integer in [0, 2^31)
};

/// Resolve a builtin by (case-insensitive) name; returns false if unknown.
bool LookupBuiltin(const std::string& name, BuiltinFn* out);

/// Number of arguments the builtin expects.
int32_t BuiltinArity(BuiltinFn fn);

const char* BuiltinName(BuiltinFn fn);

/// Range of SGL's random(): draws are uniform in [0, kRandomRange). The
/// bound is 2^31 so draws and their arithmetic stay exactly representable
/// in doubles.
inline constexpr int64_t kRandomRange = int64_t{1} << 31;

}  // namespace sgl

#endif  // SGL_SGL_BUILTINS_H_
