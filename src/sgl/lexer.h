// Lexer for SGL source text.
#ifndef SGL_SGL_LEXER_H_
#define SGL_SGL_LEXER_H_

#include <string>
#include <vector>

#include "sgl/token.h"
#include "util/status.h"

namespace sgl {

/// Tokenize `source`. Identifiers are case-sensitive; keywords are
/// case-insensitive (SQL heritage: `SELECT` and `select` both work).
/// Comments run from `#` or `//` to end of line.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace sgl

#endif  // SGL_SGL_LEXER_H_
