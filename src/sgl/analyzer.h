// Semantic analysis for SGL programs.
//
// The analyzer performs, in order:
//   1. constant folding of `const` declarations;
//   2. name resolution: attribute references against the environment
//      schema, locals/parameters, calls to aggregates / actions /
//      functions / scalar builtins;
//   3. combine-tag discipline: `set` clauses in actions must use the
//      operator matching the attribute's tag (+= on sum, max= on max,
//      min= on min, `= v priority p` on set) — the Section 4.2 typing rule
//      that makes ⊕ well-defined;
//   4. structural rules: aggregates may not call aggregates, `random` is
//      banned inside aggregate declarations (their results are shared
//      across probing units via indexes, so they must be functions of the
//      environment alone), row-returning aggregate functions must be the
//      only select item, `perform` targets must exist with matching arity,
//      and the user-function call graph must be acyclic;
//   5. rewriting into *aggregate normal form* (Section 5.1): every
//      aggregate call becomes the entire right-hand side of its own
//      let-binding, hoisted immediately before the statement that used it.
//
// Analysis mutates the Program in place and returns it bundled with the
// schema as a Script, the unit of execution for the interpreter, the
// algebra translator, and the engine.
#ifndef SGL_SGL_ANALYZER_H_
#define SGL_SGL_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "env/schema.h"
#include "env/value.h"
#include "sgl/ast.h"
#include "util/status.h"

namespace sgl {

/// An analyzed, normalized SGL program bound to a schema. The Script owns
/// a copy of the schema, so it has no lifetime ties to the caller.
struct Script {
  Program program;
  Schema schema;
  /// Result layouts, one per aggregate declaration (field names exposed to
  /// field accesses on aggregate results).
  std::vector<std::shared_ptr<const RowLayout>> agg_layouts;
  /// Index of the entry function `main` in program.functions.
  int32_t main_index = -1;
};

/// Analyze `program` against `schema`. On success the returned Script owns
/// the (mutated, normalized) program.
Result<Script> Analyze(Program program, const Schema& schema);

/// Convenience: parse + analyze.
Result<Script> CompileScript(const std::string& source, const Schema& schema);

}  // namespace sgl

#endif  // SGL_SGL_ANALYZER_H_
