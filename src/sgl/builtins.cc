#include "sgl/builtins.h"

#include <cctype>

namespace sgl {

bool LookupBuiltin(const std::string& name, BuiltinFn* out) {
  std::string lower = name;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "abs") *out = BuiltinFn::kAbs;
  else if (lower == "min") *out = BuiltinFn::kMin;
  else if (lower == "max") *out = BuiltinFn::kMax;
  else if (lower == "sqrt") *out = BuiltinFn::kSqrt;
  else if (lower == "floor") *out = BuiltinFn::kFloor;
  else if (lower == "ceil") *out = BuiltinFn::kCeil;
  else if (lower == "clamp") *out = BuiltinFn::kClamp;
  else if (lower == "random") *out = BuiltinFn::kRandom;
  else return false;
  return true;
}

int32_t BuiltinArity(BuiltinFn fn) {
  switch (fn) {
    case BuiltinFn::kAbs:
    case BuiltinFn::kSqrt:
    case BuiltinFn::kFloor:
    case BuiltinFn::kCeil:
    case BuiltinFn::kRandom:
      return 1;
    case BuiltinFn::kMin:
    case BuiltinFn::kMax:
      return 2;
    case BuiltinFn::kClamp:
      return 3;
  }
  return 0;
}

const char* BuiltinName(BuiltinFn fn) {
  switch (fn) {
    case BuiltinFn::kAbs: return "abs";
    case BuiltinFn::kMin: return "min";
    case BuiltinFn::kMax: return "max";
    case BuiltinFn::kSqrt: return "sqrt";
    case BuiltinFn::kFloor: return "floor";
    case BuiltinFn::kCeil: return "ceil";
    case BuiltinFn::kClamp: return "clamp";
    case BuiltinFn::kRandom: return "random";
  }
  return "?";
}

}  // namespace sgl
