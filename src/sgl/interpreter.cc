#include "sgl/interpreter.h"

#include <algorithm>
#include <cmath>

#include "sgl/builtins.h"

namespace sgl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Interpreter::Interpreter(const Script& script) : script_(&script) {
  posx_attr_ = script.schema.Find("posx");
  posy_attr_ = script.schema.Find("posy");
}

Status Interpreter::Tick(const EnvironmentTable& table, const TickRandom& rnd,
                         EffectBuffer* buffer) const {
  for (RowId r = 0; r < table.NumRows(); ++r) {
    SGL_RETURN_NOT_OK(RunUnit(table, r, rnd, buffer));
  }
  return Status::OK();
}

Status Interpreter::RunUnit(const EnvironmentTable& table, RowId u_row,
                            const TickRandom& rnd, EffectSink* buffer,
                            int32_t shard) const {
  if (script_->main_index < 0) {
    return Status::ExecutionError("script has no main function");
  }
  const FunctionDecl& main = script_->program.functions[script_->main_index];
  LocalStack locals;
  EvalCtx ctx;
  ctx.table = &table;
  ctx.u_row = u_row;
  ctx.u_name = &main.params[0];
  ctx.locals = &locals;
  ctx.rnd = &rnd;
  ctx.random_key = table.KeyAt(u_row);
  ctx.shard = shard;
  return ExecStmt(*main.body, &ctx, buffer);
}

Result<Value> Interpreter::EvalExpr(const Expr& e, EvalCtx* ctx) const {
  switch (e.kind) {
    case ExprKind::kNumber:
      return Value(e.number);
    case ExprKind::kVarRef: {
      const Value* v = ctx->locals != nullptr
                           ? ctx->locals->Find(e.name, e.var_slot)
                           : nullptr;
      if (v == nullptr) {
        return Status::ExecutionError("unbound name '", e.name, "' (line ",
                                      e.line, ")");
      }
      return *v;
    }
    case ExprKind::kAttrRef: {
      RowId row;
      if (ctx->u_name != nullptr && e.tuple_var == *ctx->u_name) {
        row = ctx->u_row;
      } else if (ctx->e_name != nullptr && e.tuple_var == *ctx->e_name) {
        row = ctx->e_row;
      } else {
        return Status::ExecutionError("unbound tuple '", e.tuple_var,
                                      "' (line ", e.line, ")");
      }
      return Value(ctx->table->Get(row, e.attr_id));
    }
    case ExprKind::kFieldAccess: {
      SGL_ASSIGN_OR_RETURN(Value base, EvalExpr(*e.args[0], ctx));
      if (base.is_vec()) {
        if (e.attr == "x") return Value(base.vec().x);
        if (e.attr == "y") return Value(base.vec().y);
        return Status::ExecutionError("vector has no field '", e.attr,
                                      "' (line ", e.line, ")");
      }
      if (base.is_row()) {
        int32_t idx = base.row().layout->Find(e.attr);
        if (idx < 0) {
          return Status::ExecutionError("aggregate result has no field '",
                                        e.attr, "' (line ", e.line, ")");
        }
        return Value(base.row().vals[idx]);
      }
      return Status::ExecutionError("field access '.", e.attr,
                                    "' on a scalar (line ", e.line, ")");
    }
    case ExprKind::kUnaryMinus: {
      SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[0], ctx));
      if (v.is_scalar()) return Value(-v.scalar());
      if (v.ConvertibleToVec()) return Value(v.AsVec() * -1.0);
      return Status::ExecutionError("cannot negate this value (line ", e.line,
                                    ")");
    }
    case ExprKind::kTuple: {
      SGL_ASSIGN_OR_RETURN(Value x, EvalExpr(*e.args[0], ctx));
      SGL_ASSIGN_OR_RETURN(Value y, EvalExpr(*e.args[1], ctx));
      if (!x.is_scalar() || !y.is_scalar()) {
        return Status::ExecutionError("tuple components must be scalars "
                                      "(line ",
                                      e.line, ")");
      }
      return Value(Vec2{x.scalar(), y.scalar()});
    }
    case ExprKind::kBinary: {
      SGL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.args[0], ctx));
      SGL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.args[1], ctx));
      if (l.is_scalar() && r.is_scalar()) {
        double a = l.scalar(), b = r.scalar();
        switch (e.op) {
          case BinaryOp::kAdd: return Value(a + b);
          case BinaryOp::kSub: return Value(a - b);
          case BinaryOp::kMul: return Value(a * b);
          case BinaryOp::kDiv:
            if (b == 0.0) {
              return Status::ExecutionError("division by zero (line ", e.line,
                                            ")");
            }
            return Value(a / b);
          case BinaryOp::kMod:
            if (b == 0.0) {
              return Status::ExecutionError("mod by zero (line ", e.line, ")");
            }
            return Value(std::fmod(a, b));
        }
      }
      // Vector arithmetic: vec±vec, vec*scalar, scalar*vec, vec/scalar.
      if (l.ConvertibleToVec() && r.ConvertibleToVec() &&
          (e.op == BinaryOp::kAdd || e.op == BinaryOp::kSub)) {
        Vec2 a = l.AsVec(), b = r.AsVec();
        return Value(e.op == BinaryOp::kAdd ? a + b : a - b);
      }
      if (e.op == BinaryOp::kMul) {
        if (l.ConvertibleToVec() && r.is_scalar()) {
          return Value(l.AsVec() * r.scalar());
        }
        if (l.is_scalar() && r.ConvertibleToVec()) {
          return Value(r.AsVec() * l.scalar());
        }
      }
      if (e.op == BinaryOp::kDiv && l.ConvertibleToVec() && r.is_scalar()) {
        if (r.scalar() == 0.0) {
          return Status::ExecutionError("division by zero (line ", e.line,
                                        ")");
        }
        return Value(l.AsVec() / r.scalar());
      }
      return Status::ExecutionError("type error in arithmetic (line ", e.line,
                                    ")");
    }
    case ExprKind::kCall: {
      if (e.is_aggregate) {
        std::vector<Value> args;
        args.reserve(e.args.size() - 1);
        for (size_t i = 1; i < e.args.size(); ++i) {
          SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.args[i], ctx));
          args.push_back(std::move(v));
        }
        if (provider_ != nullptr) {
          return provider_->Eval(e.call_id, args, ctx->u_row, *ctx->table,
                                 *ctx->rnd, ctx->shard);
        }
        return EvalAggregate(e.call_id, args, ctx->u_row, *ctx->table,
                             *ctx->rnd);
      }
      return EvalBuiltin(e, ctx);
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<Value> Interpreter::EvalBuiltin(const Expr& e, EvalCtx* ctx) const {
  BuiltinFn fn = static_cast<BuiltinFn>(e.call_id);
  std::vector<double> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, ctx));
    if (!v.is_scalar()) {
      return Status::ExecutionError(BuiltinName(fn),
                                    "() arguments must be scalars (line ",
                                    e.line, ")");
    }
    args.push_back(v.scalar());
  }
  switch (fn) {
    case BuiltinFn::kAbs: return Value(std::fabs(args[0]));
    case BuiltinFn::kMin: return Value(std::min(args[0], args[1]));
    case BuiltinFn::kMax: return Value(std::max(args[0], args[1]));
    case BuiltinFn::kSqrt:
      if (args[0] < 0.0) {
        return Status::ExecutionError("sqrt of negative value (line ", e.line,
                                      ")");
      }
      return Value(std::sqrt(args[0]));
    case BuiltinFn::kFloor: return Value(std::floor(args[0]));
    case BuiltinFn::kCeil: return Value(std::ceil(args[0]));
    case BuiltinFn::kClamp:
      return Value(std::clamp(args[0], args[1], args[2]));
    case BuiltinFn::kRandom: {
      int64_t i = static_cast<int64_t>(args[0]);
      return Value(static_cast<double>(
          ctx->rnd->DrawBounded(ctx->random_key, i, kRandomRange)));
    }
  }
  return Status::Internal("unreachable builtin");
}

Result<bool> Interpreter::EvalCond(const Cond& c, EvalCtx* ctx) const {
  switch (c.kind) {
    case CondKind::kTrue:
      return true;
    case CondKind::kCompare: {
      SGL_ASSIGN_OR_RETURN(Value l, EvalExpr(*c.lhs, ctx));
      SGL_ASSIGN_OR_RETURN(Value r, EvalExpr(*c.rhs, ctx));
      if (!l.is_scalar() || !r.is_scalar()) {
        return Status::ExecutionError("comparisons require scalars (line ",
                                      c.line, ")");
      }
      double a = l.scalar(), b = r.scalar();
      switch (c.op) {
        case CompareOp::kEq: return a == b;
        case CompareOp::kNe: return a != b;
        case CompareOp::kLt: return a < b;
        case CompareOp::kLe: return a <= b;
        case CompareOp::kGt: return a > b;
        case CompareOp::kGe: return a >= b;
      }
      return Status::Internal("unreachable");
    }
    case CondKind::kNot: {
      SGL_ASSIGN_OR_RETURN(bool v, EvalCond(*c.left, ctx));
      return !v;
    }
    case CondKind::kAnd: {
      SGL_ASSIGN_OR_RETURN(bool l, EvalCond(*c.left, ctx));
      if (!l) return false;
      return EvalCond(*c.right, ctx);
    }
    case CondKind::kOr: {
      SGL_ASSIGN_OR_RETURN(bool l, EvalCond(*c.left, ctx));
      if (l) return true;
      return EvalCond(*c.right, ctx);
    }
  }
  return Status::Internal("unreachable cond kind");
}

Status Interpreter::ExecStmt(const Stmt& s, EvalCtx* ctx,
                             EffectSink* buffer) const {
  switch (s.kind) {
    case StmtKind::kLet: {
      SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*s.let_value, ctx));
      ctx->locals->Push(s.let_name, std::move(v));
      return Status::OK();
    }
    case StmtKind::kIf: {
      SGL_ASSIGN_OR_RETURN(bool cond, EvalCond(*s.cond, ctx));
      if (cond) return ExecStmt(*s.then_branch, ctx, buffer);
      if (s.else_branch != nullptr) {
        return ExecStmt(*s.else_branch, ctx, buffer);
      }
      return Status::OK();
    }
    case StmtKind::kBlock: {
      size_t mark = ctx->locals->Mark();
      for (const StmtPtr& child : s.body) {
        SGL_RETURN_NOT_OK(ExecStmt(*child, ctx, buffer));
      }
      ctx->locals->PopTo(mark);
      return Status::OK();
    }
    case StmtKind::kPerform: {
      std::vector<Value> args;
      args.reserve(s.args.size() - 1);
      for (size_t i = 1; i < s.args.size(); ++i) {
        SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*s.args[i], ctx));
        args.push_back(std::move(v));
      }
      if (s.target_action >= 0) {
        if (sink_ != nullptr) {
          SGL_ASSIGN_OR_RETURN(
              bool handled,
              sink_->Perform(s.target_action, args, ctx->u_row, *ctx->table,
                             *ctx->rnd, buffer, ctx->shard));
          if (handled) return Status::OK();
        }
        return ExecAction(s.target_action, args, ctx->u_row, *ctx->table,
                          *ctx->rnd, buffer);
      }
      // User function: fresh scope with its parameters bound; the callee's
      // tuple parameter aliases the same unit row.
      const FunctionDecl& fn =
          script_->program.functions[s.target_function];
      LocalStack locals;
      for (size_t i = 1; i < fn.params.size(); ++i) {
        locals.Push(fn.params[i], args[i - 1]);
      }
      EvalCtx inner;
      inner.table = ctx->table;
      inner.u_row = ctx->u_row;
      inner.u_name = &fn.params[0];
      inner.locals = &locals;
      inner.rnd = ctx->rnd;
      inner.random_key = ctx->random_key;
      inner.shard = ctx->shard;
      return ExecStmt(*fn.body, &inner, buffer);
    }
  }
  return Status::Internal("unreachable stmt kind");
}

Result<Value> Interpreter::EvalAggregate(int32_t agg_index,
                                         const std::vector<Value>& scalar_args,
                                         RowId u_row,
                                         const EnvironmentTable& table,
                                         const TickRandom& rnd) const {
  const AggregateDecl& decl = script_->program.aggregates[agg_index];
  LocalStack locals;
  for (size_t i = 1; i < decl.params.size(); ++i) {
    locals.Push(decl.params[i], scalar_args[i - 1]);
  }
  EvalCtx ctx;
  ctx.table = &table;
  ctx.u_row = u_row;
  ctx.u_name = &decl.params[0];
  ctx.e_name = &decl.row_var;
  ctx.locals = &locals;
  ctx.rnd = &rnd;

  const bool returns_row = decl.ReturnsRow();
  // Divisible accumulators per item: count plus term sums / sums of squares.
  int64_t count = 0;
  std::vector<double> sums(decl.items.size(), 0.0);
  std::vector<double> sumsq(decl.items.size(), 0.0);
  std::vector<double> mins(decl.items.size(), kInf);
  std::vector<double> maxs(decl.items.size(), -kInf);
  // Row-returning accumulator.
  bool found = false;
  double best_value = 0.0;
  double best_dist2 = 0.0;
  int64_t best_key = 0;
  RowId best_row = -1;

  for (RowId e_row = 0; e_row < table.NumRows(); ++e_row) {
    ctx.e_row = e_row;
    ctx.random_key = table.KeyAt(e_row);
    SGL_ASSIGN_OR_RETURN(bool match, EvalCond(*decl.where, &ctx));
    if (!match) continue;
    ++count;
    if (returns_row) {
      const AggItem& item = decl.items[0];
      double metric;
      if (item.func == AggFunc::kNearest) {
        double dx = table.Get(e_row, posx_attr_) - table.Get(u_row, posx_attr_);
        double dy = table.Get(e_row, posy_attr_) - table.Get(u_row, posy_attr_);
        metric = dx * dx + dy * dy;
      } else {
        SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.term, &ctx));
        if (!v.is_scalar()) {
          return Status::ExecutionError("argmin/argmax term must be scalar");
        }
        metric = item.func == AggFunc::kArgmax ? -v.scalar() : v.scalar();
      }
      int64_t key = table.KeyAt(e_row);
      if (!found || metric < best_value ||
          (metric == best_value && key < best_key)) {
        found = true;
        best_value = metric;
        best_key = key;
        best_row = e_row;
        if (item.func == AggFunc::kNearest) best_dist2 = metric;
      }
      continue;
    }
    for (size_t i = 0; i < decl.items.size(); ++i) {
      const AggItem& item = decl.items[i];
      if (item.func == AggFunc::kCount) continue;
      SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.term, &ctx));
      if (!v.is_scalar()) {
        return Status::ExecutionError("aggregate term must be scalar");
      }
      double t = v.scalar();
      sums[i] += t;
      sumsq[i] += t * t;
      mins[i] = std::min(mins[i], t);
      maxs[i] = std::max(maxs[i], t);
    }
  }

  if (returns_row) {
    auto row = std::make_shared<RowValue>();
    row->layout = script_->agg_layouts[agg_index];
    row->vals.assign(row->layout->fields.size(), 0.0);
    if (found) {
      row->vals[0] = 1.0;
      row->vals[1] = best_dist2;
      for (AttrId a = 0; a < table.schema().NumAttrs(); ++a) {
        row->vals[2 + a] = table.Get(best_row, a);
      }
    }
    return Value(std::shared_ptr<const RowValue>(std::move(row)));
  }

  auto item_value = [&](size_t i) -> double {
    const AggItem& item = decl.items[i];
    switch (item.func) {
      case AggFunc::kCount:
        return static_cast<double>(count);
      case AggFunc::kSum:
        return sums[i];
      case AggFunc::kAvg:
        return count == 0 ? 0.0 : sums[i] / static_cast<double>(count);
      case AggFunc::kMin:
        return count == 0 ? 0.0 : mins[i];
      case AggFunc::kMax:
        return count == 0 ? 0.0 : maxs[i];
      case AggFunc::kStddev: {
        if (count == 0) return 0.0;
        double n = static_cast<double>(count);
        double mean = sums[i] / n;
        double var = sumsq[i] / n - mean * mean;
        return var <= 0.0 ? 0.0 : std::sqrt(var);
      }
      default:
        return 0.0;
    }
  };

  if (decl.items.size() == 1) return Value(item_value(0));
  auto row = std::make_shared<RowValue>();
  row->layout = script_->agg_layouts[agg_index];
  row->vals.resize(decl.items.size());
  for (size_t i = 0; i < decl.items.size(); ++i) row->vals[i] = item_value(i);
  return Value(std::shared_ptr<const RowValue>(std::move(row)));
}

Result<Value> Interpreter::EvalExprIn(const Expr& e,
                                      const EnvironmentTable& table,
                                      const std::string* u_name, RowId u_row,
                                      const std::string* e_name, RowId e_row,
                                      LocalStack* locals,
                                      const TickRandom& rnd,
                                      int64_t random_key) const {
  EvalCtx ctx;
  ctx.table = &table;
  ctx.u_row = u_row;
  ctx.e_row = e_row;
  ctx.u_name = u_name;
  ctx.e_name = e_name;
  ctx.locals = locals;
  ctx.rnd = &rnd;
  ctx.random_key = random_key;
  return EvalExpr(e, &ctx);
}

Result<bool> Interpreter::EvalCondIn(const Cond& c,
                                     const EnvironmentTable& table,
                                     const std::string* u_name, RowId u_row,
                                     const std::string* e_name, RowId e_row,
                                     LocalStack* locals, const TickRandom& rnd,
                                     int64_t random_key) const {
  EvalCtx ctx;
  ctx.table = &table;
  ctx.u_row = u_row;
  ctx.e_row = e_row;
  ctx.u_name = u_name;
  ctx.e_name = e_name;
  ctx.locals = locals;
  ctx.rnd = &rnd;
  ctx.random_key = random_key;
  return EvalCond(c, &ctx);
}

Status Interpreter::ExecAction(int32_t action_index,
                               const std::vector<Value>& scalar_args,
                               RowId u_row, const EnvironmentTable& table,
                               const TickRandom& rnd,
                               EffectSink* buffer) const {
  const ActionDecl& decl = script_->program.actions[action_index];
  LocalStack locals;
  for (size_t i = 1; i < decl.params.size(); ++i) {
    locals.Push(decl.params[i], scalar_args[i - 1]);
  }
  for (const UpdateStmt& update : decl.updates) {
    EvalCtx ctx;
    ctx.table = &table;
    ctx.u_row = u_row;
    ctx.u_name = &decl.params[0];
    ctx.e_name = &update.row_var;
    ctx.locals = &locals;
    ctx.rnd = &rnd;
    for (RowId e_row = 0; e_row < table.NumRows(); ++e_row) {
      ctx.e_row = e_row;
      ctx.random_key = table.KeyAt(e_row);  // Figure 5: Random(e, i)
      SGL_ASSIGN_OR_RETURN(bool match, EvalCond(*update.where, &ctx));
      if (!match) continue;
      for (const SetItem& item : update.sets) {
        SGL_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.value, &ctx));
        if (!v.is_scalar()) {
          return Status::ExecutionError("effect values must be scalars");
        }
        if (item.op == SetOp::kSetPriority) {
          SGL_ASSIGN_OR_RETURN(Value p, EvalExpr(*item.priority, &ctx));
          if (!p.is_scalar()) {
            return Status::ExecutionError("effect priorities must be scalars");
          }
          buffer->AccumulateSet(e_row, item.attr_id, v.scalar(), p.scalar());
        } else {
          buffer->Accumulate(e_row, item.attr_id, v.scalar());
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace sgl
