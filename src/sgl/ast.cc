#include "sgl/ast.h"

namespace sgl {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->line = line;
  out->number = number;
  out->name = name;
  out->tuple_var = tuple_var;
  out->attr = attr;
  out->op = op;
  out->attr_id = attr_id;
  out->field_index = field_index;
  out->call_id = call_id;
  out->is_aggregate = is_aggregate;
  out->var_slot = var_slot;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) out->args.push_back(a->Clone());
  return out;
}

ExprPtr MakeNumber(double v, int32_t line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = v;
  e->line = line;
  return e;
}

CondPtr Cond::Clone() const {
  auto out = std::make_unique<Cond>();
  out->kind = kind;
  out->line = line;
  out->op = op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  return out;
}

CondPtr MakeTrue() {
  auto c = std::make_unique<Cond>();
  c->kind = CondKind::kTrue;
  return c;
}

CondPtr MakeNot(CondPtr c) {
  auto out = std::make_unique<Cond>();
  out->kind = CondKind::kNot;
  out->left = std::move(c);
  return out;
}

CondPtr MakeAnd(CondPtr a, CondPtr b) {
  auto out = std::make_unique<Cond>();
  out->kind = CondKind::kAnd;
  out->left = std::move(a);
  out->right = std::move(b);
  return out;
}

StmtPtr Stmt::Clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->line = line;
  out->let_name = let_name;
  if (let_value) out->let_value = let_value->Clone();
  if (cond) out->cond = cond->Clone();
  if (then_branch) out->then_branch = then_branch->Clone();
  if (else_branch) out->else_branch = else_branch->Clone();
  out->target = target;
  out->target_action = target_action;
  out->target_function = target_function;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) out->args.push_back(a->Clone());
  out->body.reserve(body.size());
  for (const StmtPtr& s : body) out->body.push_back(s->Clone());
  return out;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kStddev: return "stddev";
    case AggFunc::kArgmin: return "argmin";
    case AggFunc::kArgmax: return "argmax";
    case AggFunc::kNearest: return "nearest";
  }
  return "?";
}

bool AggFuncIsDivisible(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
    case AggFunc::kSum:
    case AggFunc::kAvg:
    case AggFunc::kStddev:
      return true;  // expressible in sums of moments (Definition 5.1)
    default:
      return false;
  }
}

bool AggFuncReturnsRow(AggFunc f) {
  return f == AggFunc::kArgmin || f == AggFunc::kArgmax ||
         f == AggFunc::kNearest;
}

const FunctionDecl* Program::FindFunction(const std::string& name) const {
  int32_t i = FunctionIndex(name);
  return i < 0 ? nullptr : &functions[i];
}
const AggregateDecl* Program::FindAggregate(const std::string& name) const {
  int32_t i = AggregateIndex(name);
  return i < 0 ? nullptr : &aggregates[i];
}
const ActionDecl* Program::FindAction(const std::string& name) const {
  int32_t i = ActionIndex(name);
  return i < 0 ? nullptr : &actions[i];
}
int32_t Program::FunctionIndex(const std::string& name) const {
  for (size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}
int32_t Program::AggregateIndex(const std::string& name) const {
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (aggregates[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}
int32_t Program::ActionIndex(const std::string& name) const {
  for (size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}

}  // namespace sgl
