// The RTS battle simulation of Section 3.2.
//
// Two armies of knights, archers and healers on an integer grid:
//
//   * knights — melee range, armored (damage soak), strongest attacks;
//   * archers — long range, unarmored, weaker attacks;
//   * healers — cast a nonstackable healing aura over nearby allies.
//
// Combat constants follow the d20 System Reference Document in spirit:
// an attack rolls d20 + attack bonus against the target's armor class,
// damage rolls a die and is soaked by armor. All arithmetic is integral,
// which keeps every aggregate exactly representable and lets the test
// suite demand bit-identical naive and indexed simulations.
//
// Each unit's per-tick script evaluates about ten aggregate queries
// (counts, centroids, a stddev spread, nearest-neighbour and weakest-in-
// range probes) — the workload profile the paper describes in Section 6.
#ifndef SGL_GAME_BATTLE_H_
#define SGL_GAME_BATTLE_H_

#include <memory>
#include <string>

#include "engine/simulation.h"
#include "env/schema.h"
#include "env/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace sgl {

/// Unit type codes used in the `unittype` attribute.
enum class UnitType : int32_t { kKnight = 0, kArcher = 1, kHealer = 2 };

/// d20-flavoured combat constants (mirrored as `const` declarations in
/// the SGL battle script).
struct D20 {
  static constexpr int kKnightHealth = 60;
  static constexpr int kArcherHealth = 30;
  static constexpr int kHealerHealth = 24;
  static constexpr int kKnightArmorClass = 17;  // plate
  static constexpr int kArcherArmorClass = 12;  // leather
  static constexpr int kHealerArmorClass = 11;
  static constexpr int kKnightArmorSoak = 3;    // damage reduction
  static constexpr int kArcherArmorSoak = 0;
  static constexpr int kHealerArmorSoak = 0;
  static constexpr int kKnightAttackBonus = 5;
  static constexpr int kArcherAttackBonus = 4;
  static constexpr int kSwordDie = 8;   // 1d8 + 2
  static constexpr int kSwordBonus = 2;
  static constexpr int kBowDie = 6;     // 1d6
  static constexpr int kBowBonus = 0;
  static constexpr int kMeleeRange = 2;
  static constexpr int kBowRange = 24;
  static constexpr int kSightRange = 32;
  static constexpr int kHealRange = 8;
  static constexpr int kHealAmount = 4;
  static constexpr int kReloadTicks = 2;
  static constexpr int kMoraleBreak = 8;  // flee when this outnumbered
  static constexpr int kWalkPerTick = 3;
};

/// The battle schema — Eq. (1) extended with the unit-type attributes the
/// case study needs. Attribute order:
///   key, player, unittype, posx, posy, health, maxhealth, cooldown,
///   range, armorclass, armorsoak | weaponused:sum, movex:sum, movey:sum,
///   damage:sum, inaura:max
Schema BattleSchema();

/// The full SGL battle script (aggregates, actions, per-type AI).
const std::string& BattleScriptSource();

/// Game mechanics: Example 4.1's post-processing plus death handling.
class BattleMechanics : public GameMechanics {
 public:
  /// If `resurrect` is true, dead units reappear at a deterministic
  /// pseudo-random grid position with full health — the paper's rule for
  /// keeping benchmark population constant. Otherwise they are removed.
  BattleMechanics(int64_t grid_width, int64_t grid_height, bool resurrect);

  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override;
  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override;

  int64_t deaths() const { return deaths_; }

 private:
  int64_t grid_width_;
  int64_t grid_height_;
  bool resurrect_;
  int64_t deaths_ = 0;
};

/// Workload generator parameters (Section 6's experimental setup).
struct ScenarioConfig {
  int32_t num_units = 500;
  /// Fraction of grid cells occupied; the paper fixes 1% and scales the
  /// grid with the number of units.
  double density = 0.01;
  /// Unit mix within each army.
  double knight_fraction = 0.4;
  double archer_fraction = 0.4;  // remainder are healers
  uint64_t seed = 7;

  /// Grid side length for the requested density (square grid).
  int64_t GridSide() const;
};

/// Populate a battle table: two equal armies placed uniformly at random
/// on distinct cells of the grid.
Result<EnvironmentTable> BuildScenario(const ScenarioConfig& config);

/// Convenience: scenario + script + simulation in one call. The Simulation
/// owns the mechanics; `mechanics` is an observer for test assertions.
struct BattleSimSetup {
  std::unique_ptr<Simulation> sim;
  BattleMechanics* mechanics = nullptr;  // owned by sim
};
Result<BattleSimSetup> MakeBattleSim(const ScenarioConfig& scenario,
                                     EvaluatorMode mode,
                                     bool resurrect = true);

/// As MakeBattleSim, but with full control of the simulation configuration
/// (grid size, seed and step are still derived from the scenario).
Result<BattleSimSetup> MakeBattleSimWithConfig(const ScenarioConfig& scenario,
                                               SimulationConfig config,
                                               bool resurrect = true);

}  // namespace sgl

#endif  // SGL_GAME_BATTLE_H_
