#include "game/battle.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "sgl/analyzer.h"
#include "util/grid.h"

namespace sgl {

Schema BattleSchema() {
  Schema s;
  auto add = [&](const char* name, CombineType type) {
    auto r = s.AddAttribute(name, type);
    (void)r;
  };
  add("player", CombineType::kConst);
  add("unittype", CombineType::kConst);
  add("posx", CombineType::kConst);
  add("posy", CombineType::kConst);
  add("health", CombineType::kConst);
  add("maxhealth", CombineType::kConst);
  add("cooldown", CombineType::kConst);
  add("armorclass", CombineType::kConst);
  add("armorsoak", CombineType::kConst);
  add("weaponused", CombineType::kSum);
  add("movex", CombineType::kSum);
  add("movey", CombineType::kSum);
  add("damage", CombineType::kSum);
  add("inaura", CombineType::kMax);
  return s;
}

const std::string& BattleScriptSource() {
  static const std::string* kSource = new std::string(R"SGL(
# ============================================================ constants ===
# d20-flavoured combat constants (see src/game/battle.h for the C++ mirror).
const KNIGHT = 0;
const ARCHER = 1;
const HEALER = 2;
const MELEE_RANGE = 2;
const BOW_RANGE = 24;
const SIGHT = 32;
const HEAL_RANGE = 8;
const HEAL_AMOUNT = 4;
const MORALE_BREAK = 8;
const KNIGHT_ATK = 5;
const ARCHER_ATK = 4;
const SWORD_DIE = 8;
const SWORD_BONUS = 2;
const BOW_DIE = 6;
const CLOSE_RANKS_SPREAD = 24;

# =========================================================== aggregates ===
# Orthogonal-range counts over the enemy (partition player<>, box SIGHT).
aggregate CountEnemiesInSight(u) {
  select count(*) from E e
  where e.player <> u.player
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

# Same box, restricted to archers — `e.unittype = ARCHER` is a pure-e
# conjunct and is pushed into index construction (Section 5.3's
# "moderately wounded" build-filter case).
aggregate CountEnemyArchersInSight(u) {
  select count(*) from E e
  where e.player <> u.player and e.unittype = ARCHER
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

# Divisible tuple aggregates: centroids (Section 3.2's archer formation).
aggregate EnemyCentroidInSight(u) {
  select avg(e.posx) as x, avg(e.posy) as y from E e
  where e.player <> u.player
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

aggregate AllyCentroid(u) {
  select avg(e.posx) as x, avg(e.posy) as y, count(*) as n from E e
  where e.player = u.player;
}

aggregate KnightCentroid(u) {
  select avg(e.posx) as x, avg(e.posy) as y, count(*) as n from E e
  where e.player = u.player and e.unittype = KNIGHT;
}

# Standard deviation of ally positions — the knights' close-ranks check
# (Section 3.2). Moments are divisible (Definition 5.1).
aggregate AllySpread(u) {
  select stddev(e.posx) as sx, stddev(e.posy) as sy from E e
  where e.player = u.player;
}

aggregate CountAlliesNear(u, r) {
  select count(*) from E e
  where e.player = u.player and e.key <> u.key
    and e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;
}

# Army strengths: weighted sums shared by the morale rule.
aggregate EnemyStrengthInSight(u) {
  select sum(e.health) as total, count(*) as n from E e
  where e.player <> u.player
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

aggregate AllyStrengthInSight(u) {
  select sum(e.health) as total, count(*) as n from E e
  where e.player = u.player
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

# Nearest-neighbour aggregates (Section 5.3.2, kD-tree).
aggregate NearestEnemy(u) {
  select nearest(*) from E e
  where e.player <> u.player
    and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
    and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
}

aggregate NearestWoundedAlly(u) {
  select nearest(*) from E e
  where e.player = u.player and e.key <> u.key
    and e.health < e.maxhealth;
}

# MIN aggregate: the weakest enemy in range ("find the weakest unit in
# range" — answered by the extremum index).
aggregate WeakestEnemyInRange(u, r) {
  select argmin(e.health) from E e
  where e.player <> u.player
    and e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;
}

aggregate CountWoundedAlliesNear(u, r) {
  select count(*) from E e
  where e.player = u.player and e.health < e.maxhealth
    and e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;
}

# ============================================================== actions ===
action Strike(u, target, dmg) {
  update e where e.key = target set damage += dmg;
  update e where e.key = u.key set weaponused += 1;
}

action Fire(u, target, dmg) {
  update e where e.key = target set damage += dmg;
  update e where e.key = u.key set weaponused += 1;
}

action Move(u, dx, dy) {
  update e where e.key = u.key set movex += dx, movey += dy;
}

# The nonstackable healing aura of Section 3.2 / Figure 5: every wounded
# ally in the box is healed once per tick (max over overlapping auras).
action CastHealingAura(u) {
  update e where e.player = u.player
    and e.posx >= u.posx - HEAL_RANGE and e.posx <= u.posx + HEAL_RANGE
    and e.posy >= u.posy - HEAL_RANGE and e.posy <= u.posy + HEAL_RANGE
    set inaura max= HEAL_AMOUNT;
  update e where e.key = u.key set weaponused += 1;
}

# ======================================================== per-type AI ====
function knight_attack(u, target, ac, soak) {
  let roll = random(1) mod 20 + 1;
  if roll + KNIGHT_ATK >= ac then
    perform Strike(u, target,
                   max(1, (random(2) mod SWORD_DIE) + 1 + SWORD_BONUS - soak));
  else
    perform Strike(u, target, 0);  # a miss still spends the attack
}

function knight_move(u) {
  let spread = AllySpread(u);
  let allies = CountAlliesNear(u, 6);
  let enemy = NearestEnemy(u);
  if spread.sx + spread.sy > CLOSE_RANKS_SPREAD and allies < 3 then {
    # Close ranks: converge on the army's centroid (Section 3.2).
    let c = AllyCentroid(u);
    perform Move(u, c.x - u.posx, c.y - u.posy);
  }
  else if enemy.found = 1 then
    perform Move(u, enemy.posx - u.posx, enemy.posy - u.posy);
}

function knight_ai(u) {
  let archers = CountEnemyArchersInSight(u);
  let melee = WeakestEnemyInRange(u, MELEE_RANGE);
  if u.cooldown = 0 and melee.found = 1 then
    perform knight_attack(u, melee.key, melee.armorclass, melee.armorsoak);
  else
    perform knight_move(u);
}

function archer_fire(u, target, ac, soak) {
  let roll = random(3) mod 20 + 1;
  if roll + ARCHER_ATK >= ac then
    perform Fire(u, target, max(1, (random(4) mod BOW_DIE) + 1 - soak));
  else
    perform Fire(u, target, 0);
}

function archer_reposition(u) {
  let kc = KnightCentroid(u);
  let ec = EnemyCentroidInSight(u);
  let enemies = CountEnemiesInSight(u);
  if kc.n > 0 and enemies > 0 then {
    # Keep the knights between us and the enemy: move toward the point
    # reflecting the enemy centroid across the knight centroid, so the
    # three centroids are collinear with the knights in the middle.
    let tx = 2 * kc.x - ec.x;
    let ty = 2 * kc.y - ec.y;
    perform Move(u, tx - u.posx, ty - u.posy);
  }
  else {
    let c = AllyCentroid(u);
    perform Move(u, c.x - u.posx, c.y - u.posy);
  }
}

function archer_ai(u) {
  let enemies = CountEnemiesInSight(u);
  let es = EnemyStrengthInSight(u);
  let as_ = AllyStrengthInSight(u);
  let target = WeakestEnemyInRange(u, BOW_RANGE);
  if enemies > MORALE_BREAK and es.total > 2 * as_.total then {
    # Morale break: flee the enemy centroid (the skeleton-fear rule).
    let ec = EnemyCentroidInSight(u);
    let away = (u.posx, u.posy) - ec;
    perform Move(u, away.x, away.y);
  }
  else if u.cooldown = 0 and target.found = 1 then
    perform archer_fire(u, target.key, target.armorclass, target.armorsoak);
  else
    perform archer_reposition(u);
}

function healer_move(u) {
  let enemies = CountEnemiesInSight(u);
  let w = NearestWoundedAlly(u);
  if enemies > MORALE_BREAK / 2 then {
    let ec = EnemyCentroidInSight(u);
    let away = (u.posx, u.posy) - ec;
    perform Move(u, away.x, away.y);
  }
  else if w.found = 1 then
    perform Move(u, w.posx - u.posx, w.posy - u.posy);
  else {
    let c = AllyCentroid(u);
    perform Move(u, c.x - u.posx, c.y - u.posy);
  }
}

function healer_ai(u) {
  let wounded = CountWoundedAlliesNear(u, HEAL_RANGE);
  if u.cooldown = 0 and wounded > 0 then
    perform CastHealingAura(u);
  else
    perform healer_move(u);
}

function main(u) {
  if u.unittype = KNIGHT then perform knight_ai(u);
  else if u.unittype = ARCHER then perform archer_ai(u);
  else perform healer_ai(u);
}
)SGL");
  return *kSource;
}

BattleMechanics::BattleMechanics(int64_t grid_width, int64_t grid_height,
                                 bool resurrect)
    : grid_width_(grid_width),
      grid_height_(grid_height),
      resurrect_(resurrect) {}

Status BattleMechanics::ApplyEffects(EnvironmentTable* table,
                                     const EffectBuffer& buffer,
                                     const TickRandom& rnd) {
  (void)buffer;
  (void)rnd;
  const Schema& s = table->schema();
  const AttrId health = s.Find("health");
  const AttrId maxhealth = s.Find("maxhealth");
  const AttrId cooldown = s.Find("cooldown");
  const AttrId damage = s.Find("damage");
  const AttrId inaura = s.Find("inaura");
  const AttrId weaponused = s.Find("weaponused");
  // The Example 4.1 post-processing query, row by row.
  for (RowId r = 0; r < table->NumRows(); ++r) {
    double h = table->Get(r, health) - table->Get(r, damage) +
               table->Get(r, inaura);
    h = std::min(h, table->Get(r, maxhealth));
    table->Set(r, health, h);
    double cd = table->Get(r, cooldown) - 1.0 +
                table->Get(r, weaponused) * D20::kReloadTicks;
    table->Set(r, cooldown, std::max(0.0, cd));
  }
  return Status::OK();
}

Status BattleMechanics::EndTick(EnvironmentTable* table,
                                const TickRandom& rnd) {
  const Schema& s = table->schema();
  const AttrId health = s.Find("health");
  const AttrId maxhealth = s.Find("maxhealth");
  const AttrId posx = s.Find("posx");
  const AttrId posy = s.Find("posy");
  const AttrId cooldown = s.Find("cooldown");
  if (resurrect_) {
    // Section 6's rule: the dead reappear at a position chosen uniformly
    // at random, keeping the benchmark population constant. Position
    // draws key on the unit so both evaluators resurrect identically.
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, health) > 0.0) continue;
      ++deaths_;
      int64_t key = table->KeyAt(r);
      table->Set(r, posx,
                 static_cast<double>(rnd.DrawBounded(key, 1001, grid_width_)));
      table->Set(r, posy,
                 static_cast<double>(rnd.DrawBounded(key, 1002, grid_height_)));
      table->Set(r, health, table->Get(r, maxhealth));
      table->Set(r, cooldown, 0.0);
    }
    return Status::OK();
  }
  int32_t removed = table->RemoveIf(
      [&](RowId r) { return table->Get(r, health) <= 0.0; });
  deaths_ += removed;
  return Status::OK();
}

int64_t ScenarioConfig::GridSide() const {
  return GridSideFor(num_units, density);
}

Result<EnvironmentTable> BuildScenario(const ScenarioConfig& config) {
  EnvironmentTable table(BattleSchema());
  Xoshiro256 rng(config.seed);
  const int64_t side = config.GridSide();

  // Distinct random cells; each army spawns in its own half of the grid.
  std::set<std::pair<int64_t, int64_t>> used;
  auto place = [&](int64_t player) -> std::pair<int64_t, int64_t> {
    const int64_t half = side / 2;
    const int64_t x0 = player == 0 ? 0 : side - half;
    while (true) {
      int64_t x = x0 + rng.NextBounded(half);
      int64_t y = rng.NextBounded(side);
      if (used.insert({x, y}).second) return {x, y};
    }
  };

  for (int32_t i = 0; i < config.num_units; ++i) {
    int64_t player = i % 2;
    double mix = rng.NextDouble();
    UnitType type;
    if (mix < config.knight_fraction) {
      type = UnitType::kKnight;
    } else if (mix < config.knight_fraction + config.archer_fraction) {
      type = UnitType::kArcher;
    } else {
      type = UnitType::kHealer;
    }
    auto [x, y] = place(player);
    double hp, ac, soak;
    switch (type) {
      case UnitType::kKnight:
        hp = D20::kKnightHealth;
        ac = D20::kKnightArmorClass;
        soak = D20::kKnightArmorSoak;
        break;
      case UnitType::kArcher:
        hp = D20::kArcherHealth;
        ac = D20::kArcherArmorClass;
        soak = D20::kArcherArmorSoak;
        break;
      case UnitType::kHealer:
        hp = D20::kHealerHealth;
        ac = D20::kHealerArmorClass;
        soak = D20::kHealerArmorSoak;
        break;
    }
    SGL_RETURN_NOT_OK(
        table
            .AddRow({static_cast<double>(player),
                     static_cast<double>(static_cast<int32_t>(type)),
                     static_cast<double>(x), static_cast<double>(y), hp, hp,
                     0.0, ac, soak, 0.0, 0.0, 0.0, 0.0, 0.0})
            .status());
  }
  return table;
}

Result<BattleSimSetup> MakeBattleSim(const ScenarioConfig& scenario,
                                     EvaluatorMode mode, bool resurrect) {
  SimulationConfig config;
  config.eval_mode = mode;
  return MakeBattleSimWithConfig(scenario, config, resurrect);
}

Result<BattleSimSetup> MakeBattleSimWithConfig(const ScenarioConfig& scenario,
                                               SimulationConfig config,
                                               bool resurrect) {
  SGL_ASSIGN_OR_RETURN(EnvironmentTable table, BuildScenario(scenario));
  SGL_ASSIGN_OR_RETURN(Script script,
                       CompileScript(BattleScriptSource(), BattleSchema()));
  const int64_t side = scenario.GridSide();
  auto mechanics = std::make_unique<BattleMechanics>(side, side, resurrect);
  config.seed = scenario.seed;
  config.grid_width = side;
  config.grid_height = side;
  config.step_per_tick = D20::kWalkPerTick;

  BattleSimSetup setup;
  setup.mechanics = mechanics.get();
  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .SetConfig(std::move(config))
      .AddScript("battle", std::move(script))
      .SetMechanics(std::move(mechanics));
  SGL_ASSIGN_OR_RETURN(setup.sim, builder.Build());
  return setup;
}

}  // namespace sgl
