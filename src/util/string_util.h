// Small string helpers shared by the lexer, plan printer, and benches.
#ifndef SGL_UTIL_STRING_UTIL_H_
#define SGL_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace sgl {

/// Join `parts` with `sep`.
inline std::string Join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Printf-free formatting of doubles with fixed precision.
inline std::string FormatDouble(double v, int precision = 3) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

/// True if `s` starts with `prefix`.
inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Repeat a string n times ("  " * depth for plan indentation).
inline std::string Repeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace sgl

#endif  // SGL_UTIL_STRING_UTIL_H_
