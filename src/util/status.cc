#include "util/status.h"

namespace sgl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kAnalysisError:
      return "Analysis error";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sgl
