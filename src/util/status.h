// Status / Result error handling, in the style of Arrow and RocksDB.
//
// SGL is a library embedded in a game loop; failures (bad scripts, schema
// mismatches) are reported as values, never as exceptions, so the engine
// can surface them to the game designer without unwinding the simulation.
#ifndef SGL_UTIL_STATUS_H_
#define SGL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace sgl {

/// Category of failure carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kParseError,        ///< SGL source did not lex/parse
  kAnalysisError,     ///< script failed semantic analysis (names, types, tags)
  kPlanError,         ///< optimizer / physical planner failure
  kExecutionError,    ///< runtime failure while evaluating a plan or script
  kNotFound,          ///< lookup missed (attribute, function, index)
  kAlreadyExists,     ///< duplicate registration
  kUnimplemented,     ///< feature intentionally not supported
  kResourceExhausted, ///< admission control refused: a capacity limit is full
  kInternal,          ///< invariant violation; indicates a library bug
};

/// Human-readable name of a StatusCode ("Invalid argument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus a message. `Status::OK()` is cheap
/// (no allocation). Modeled on arrow::Status.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status Invalid(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AnalysisError(Args&&... args) {
    return Make(StatusCode::kAnalysisError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status PlanError(Args&&... args) {
    return Make(StatusCode::kPlanError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ExecutionError(Args&&... args) {
    return Make(StatusCode::kExecutionError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Parse error: unexpected token ';' at line 3"
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return Status(code, os.str());
  }

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// A value-or-Status, in the style of arrow::Result<T>.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status from an expression.
#define SGL_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::sgl::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluate a Result-returning expression; bind the value or propagate.
#define SGL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = tmp.MoveValue()

#define SGL_CONCAT_INNER(a, b) a##b
#define SGL_CONCAT(a, b) SGL_CONCAT_INNER(a, b)

#define SGL_ASSIGN_OR_RETURN(lhs, rexpr) \
  SGL_ASSIGN_OR_RETURN_IMPL(SGL_CONCAT(_sgl_res_, __COUNTER__), lhs, rexpr)

}  // namespace sgl

#endif  // SGL_UTIL_STATUS_H_
