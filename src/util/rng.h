// Deterministic randomness for SGL scripts and the simulation engine.
//
// Section 4.3 of the paper models randomness as a function
//   r : Env x N -> N
// supplied to each clock tick: within one tick, Random(i) evaluated by unit
// u always returns the same value, but values change across ticks. We
// realize r as a counter-free mix of (tick_seed, unit_key, i). This makes
// every evaluator (naive interpreter, algebraic executor, indexed engine)
// see byte-identical random draws, which is what lets the test suite demand
// bit-exact equivalence between them.
#ifndef SGL_UTIL_RNG_H_
#define SGL_UTIL_RNG_H_

#include <cstdint>

namespace sgl {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one (boost::hash_combine flavored).
inline uint64_t Combine64(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// The per-tick random function r(u, i) of Section 4.3.
///
/// TickRandom is a value object: copying it is free and all draws are pure
/// functions of (seed, key, i). The engine constructs one per clock tick
/// from the simulation seed and the tick number.
class TickRandom {
 public:
  TickRandom() : tick_seed_(0) {}
  TickRandom(uint64_t simulation_seed, uint64_t tick)
      : tick_seed_(Combine64(Mix64(simulation_seed), Mix64(tick))) {}

  /// r(u, i): deterministic within a tick for a given unit key and index.
  uint64_t Draw(int64_t unit_key, int64_t i) const {
    return Mix64(Combine64(tick_seed_,
                           Combine64(static_cast<uint64_t>(unit_key),
                                     static_cast<uint64_t>(i))));
  }

  /// Draw reduced to [0, bound); bound must be > 0.
  int64_t DrawBounded(int64_t unit_key, int64_t i, int64_t bound) const {
    return static_cast<int64_t>(Draw(unit_key, i) %
                                static_cast<uint64_t>(bound));
  }

  uint64_t tick_seed() const { return tick_seed_; }

 private:
  uint64_t tick_seed_;
};

/// A small, fast, seedable PRNG (xoshiro256**) for workload generation and
/// tests. Not used inside script evaluation (TickRandom is).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = Mix64(x);
      s = x;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  int64_t NextBounded(int64_t bound) {
    return static_cast<int64_t>(Next() % static_cast<uint64_t>(bound));
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace sgl

#endif  // SGL_UTIL_RNG_H_
