// Lightweight wall-clock timing for the benchmark harnesses and the
// engine's per-phase instrumentation (Section 6 measures per-tick cost).
#ifndef SGL_UTIL_TIMER_H_
#define SGL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace sgl {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed nanoseconds (per-worker timing feeds PhaseStats as int64).
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations, e.g. per engine phase across many ticks.
class PhaseTimes {
 public:
  void Add(const std::string& phase, double seconds) {
    Add(phase, seconds, 1);
  }

  /// Record `count` invocations totalling `seconds` at once (used when
  /// repackaging aggregated PhaseStats into this legacy view).
  void Add(const std::string& phase, double seconds, int64_t count) {
    totals_[phase] += seconds;
    counts_[phase] += count;
  }

  double Total(const std::string& phase) const {
    auto it = totals_.find(phase);
    return it == totals_.end() ? 0.0 : it->second;
  }

  int64_t Count(const std::string& phase) const {
    auto it = counts_.find(phase);
    return it == counts_.end() ? 0 : it->second;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void Clear() {
    totals_.clear();
    counts_.clear();
  }

 private:
  std::map<std::string, double> totals_;
  std::map<std::string, int64_t> counts_;
};

/// RAII helper: adds elapsed time to a PhaseTimes slot on destruction.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseTimes* sink, std::string phase)
      : sink_(sink), phase_(std::move(phase)) {}
  ~ScopedPhaseTimer() {
    if (sink_ != nullptr) sink_->Add(phase_, timer_.Seconds());
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseTimes* sink_;
  std::string phase_;
  Timer timer_;
};

}  // namespace sgl

#endif  // SGL_UTIL_TIMER_H_
