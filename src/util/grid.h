// Shared workload-generation geometry helpers.
#ifndef SGL_UTIL_GRID_H_
#define SGL_UTIL_GRID_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sgl {

/// Side length of the square grid that holds `units` at occupancy
/// `density` (fraction of cells occupied) — the Section 6 experimental
/// setup's rule, shared by every workload generator so world placement
/// and the movement phase's clamping grid always agree.
inline int64_t GridSideFor(int64_t units, double density) {
  double cells = static_cast<double>(units) / density;
  return std::max<int64_t>(8,
                           static_cast<int64_t>(std::ceil(std::sqrt(cells))));
}

}  // namespace sgl

#endif  // SGL_UTIL_GRID_H_
