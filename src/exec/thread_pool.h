// Deterministic parallel execution primitives (the src/exec/ subsystem).
//
// The paper's state-effect pattern (Sections 2.2 and 4.3) makes a clock
// tick embarrassingly parallel by construction: decisions read only the
// frozen pre-tick environment, randomness is the pure function
// r(tick_seed, unit_key, i) of util/rng.h, and ⊕ effect combination is
// associative and commutative with deterministic tie-breaking. This pool
// exploits that latent parallelism while keeping a hard contract the test
// suite enforces: for any seed, script set and thread count, every tick is
// bit-identical to single-threaded execution.
//
// The pool is deliberately work-stealing-free. ParallelFor splits a range
// into at most num_threads() contiguous, ascending chunks whose bounds
// depend only on (range, grain, num_threads); workers claim chunks from a
// shared ticket counter. Which worker runs which chunk is scheduling noise
// — all per-chunk outputs (effect-log shards, probe tallies, deferred
// action batches) are keyed by chunk index and merged in chunk order, so
// results never depend on the schedule.
#ifndef SGL_EXEC_THREAD_POOL_H_
#define SGL_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace sgl {
namespace exec {

/// Aggregated per-ParallelFor timing, rolled up into PhaseStats
/// (`workers` / `max_worker_ns`) by the phases that opt in.
struct ParallelStats {
  int64_t workers = 0;        ///< max chunks executed by one ParallelFor
  int64_t max_worker_ns = 0;  ///< accumulated slowest-chunk wall time
};

/// A fixed-size pool of worker threads with a chunked ParallelFor.
///
/// Construction spawns num_threads - 1 workers; the calling thread
/// participates in every ParallelFor, so num_threads == 1 means a plain
/// sequential loop with zero threads and zero synchronization. ParallelFor
/// must only be issued from one external thread at a time (the engine's
/// tick loop); calls made *from inside* a chunk body run inline on the
/// calling worker, which makes nested parallelism safe but sequential.
class ThreadPool {
 public:
  /// fn(chunk, begin, end): process the half-open range [begin, end).
  /// Chunk indices are dense, ascending with begin, and stable across
  /// runs; use them to key per-chunk output shards.
  using RangeFn = std::function<Status(int32_t chunk, int64_t begin,
                                       int64_t end)>;

  /// Hardware concurrency, clamped to at least 1 (the value used by
  /// SimulationBuilder::Threads(0) auto-detection).
  static int32_t HardwareThreads();

  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const { return num_threads_; }

  /// Number of chunks ParallelFor(n, grain, ..) will use:
  /// min(num_threads, ceil(n / grain)), at least 1 for n > 0. Exposed so
  /// callers can size per-chunk shards before dispatching.
  int32_t NumChunks(int64_t n, int64_t grain) const;

  /// Run fn over [0, n) split into NumChunks(n, grain) contiguous chunks.
  /// Blocks until every chunk finished; all chunks run even if one fails,
  /// and the error of the lowest-numbered failing chunk is returned (so
  /// error reporting is deterministic too). `stats`, when given,
  /// accumulates the chunk count and the slowest chunk's wall time.
  Status ParallelFor(int64_t n, int64_t grain, const RangeFn& fn,
                     ParallelStats* stats = nullptr);

 private:
  struct Task {
    const RangeFn* fn = nullptr;
    int64_t n = 0;
    int32_t chunks = 0;
    std::atomic<int32_t> next{0};
    std::atomic<int32_t> done{0};
    int32_t active = 0;             // workers inside RunChunks; guarded by mu_
    std::vector<Status> status;     // per chunk
    std::vector<int64_t> chunk_ns;  // per chunk wall time
  };

  void WorkerLoop();
  void RunChunks(Task* task);

  const int32_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task* task_ = nullptr;     // guarded by mu_
  uint64_t generation_ = 0;  // guarded by mu_; bumped per ParallelFor
  bool stop_ = false;        // guarded by mu_
};

}  // namespace exec
}  // namespace sgl

#endif  // SGL_EXEC_THREAD_POOL_H_
