#include "exec/sharded_effect_buffer.h"

namespace sgl {
namespace exec {

void EffectShard::ReplayInto(EffectBuffer* buffer) const {
  for (const Op& op : ops_) {
    if (op.is_set) {
      buffer->AccumulateSet(op.row, op.attr, op.value, op.priority);
    } else {
      buffer->Accumulate(op.row, op.attr, op.value);
    }
  }
}

void ShardedEffectBuffer::MergeInto(EffectBuffer* buffer) const {
  for (const EffectShard& shard : shards_) shard.ReplayInto(buffer);
}

int64_t ShardedEffectBuffer::total_ops() const {
  int64_t total = 0;
  for (const EffectShard& shard : shards_) total += shard.num_ops();
  return total;
}

}  // namespace exec
}  // namespace sgl
