// Cross-shard effect exchange: per-worker operation journals with a
// canonical actor-ordered merge.
//
// Same determinism problem as ShardedEffectBuffer, different geometry.
// There, every worker's chunk covers a contiguous ascending row range, so
// replaying whole logs in chunk order reproduces the sequential call
// sequence. Shard workers own row SETS that may interleave in global row
// order (spatial stripes assign rows by position, not index), so whole-log
// concatenation is wrong. Instead each journal is split into SEGMENTS —
// one per acting unit (interpreter path) or per contiguous own-row batch
// (VM path) — tagged with the global row of the first actor. Within one
// journal segments ascend by actor; across journals actor sets are
// disjoint (each row has one owner). MergeJournals therefore k-way merges
// segments by actor id and replays them in that order, which is exactly
// the order a single-table engine evaluating rows 0..n-1 would have
// issued the calls in. (VM batches group a batch's ops by instruction
// rather than by row, but re-batching at worker boundaries is the same
// reordering the engine already performs between thread counts — covered
// by the integer-valued-aggregate determinism doctrine in env/table.h;
// kMax/kMin/kSet are order-independent outright.)
//
// Journals also translate rows as they record: workers evaluate against
// worker-local tables, so every op's row id is mapped local → global
// through the worker's row map before it is stored. The merged replay
// speaks pure global ids.
#ifndef SGL_EXEC_EXCHANGE_H_
#define SGL_EXEC_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "env/effect_buffer.h"

namespace sgl {
namespace exec {

/// One shard worker's append-only, actor-segmented effect journal.
class OpJournal : public EffectSink {
 public:
  /// Install the worker's local→global row map. Ops recorded afterwards
  /// are translated on the way in. Null means ids are already global
  /// (replicated partitioning, where local row == global row).
  void set_row_map(const std::vector<RowId>* local_to_global) {
    local_to_global_ = local_to_global;
  }

  /// Open a new segment for the unit at `global_actor` (interpreter path:
  /// one per evaluated unit; VM path: one per contiguous own-row batch,
  /// tagged with its first row). Actors must ascend within a journal.
  void BeginActor(RowId global_actor) {
    segments_.push_back(Segment{global_actor, ops_.size()});
  }

  void Accumulate(RowId row, AttrId attr, double value) override {
    ops_.push_back(Op{Translate(row), attr, false, value, 0.0});
  }

  void AccumulateSet(RowId row, AttrId attr, double value,
                     double priority) override {
    ops_.push_back(Op{Translate(row), attr, true, value, priority});
  }

  void Clear() {
    ops_.clear();
    segments_.clear();
  }

  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }

 private:
  friend void MergeJournals(const std::vector<OpJournal*>& journals,
                            EffectSink* sink);

  struct Op {
    RowId row;
    AttrId attr;
    bool is_set;
    double value;
    double priority;  // is_set only
  };
  struct Segment {
    RowId actor;       // global row of the first acting unit
    size_t first_op;   // index into ops_
  };

  RowId Translate(RowId row) const {
    return local_to_global_ == nullptr ? row : (*local_to_global_)[row];
  }

  const std::vector<RowId>* local_to_global_ = nullptr;
  std::vector<Op> ops_;
  std::vector<Segment> segments_;
};

/// Replay every journal's segments into `sink`, k-way merged by ascending
/// actor row — the canonical single-table call order. Actor sets must be
/// disjoint across journals (guaranteed by single-owner partitioning).
void MergeJournals(const std::vector<OpJournal*>& journals, EffectSink* sink);

}  // namespace exec
}  // namespace sgl

#endif  // SGL_EXEC_EXCHANGE_H_
