#include "exec/thread_pool.h"

#include <algorithm>

#include "util/timer.h"

namespace sgl {
namespace exec {

namespace {

/// True while this thread is executing a chunk body; nested ParallelFor
/// calls then run inline instead of deadlocking on the pool.
thread_local bool tl_in_chunk = false;

/// Bounds of chunk `c` when [0, n) is split into `chunks` contiguous
/// near-equal parts (the first n % chunks parts get one extra element).
std::pair<int64_t, int64_t> ChunkBounds(int64_t n, int32_t chunks, int32_t c) {
  const int64_t base = n / chunks;
  const int64_t rem = n % chunks;
  const int64_t lo = c * base + std::min<int64_t>(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

}  // namespace

int32_t ThreadPool::HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int32_t>(hc);
}

ThreadPool::ThreadPool(int32_t num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int32_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int32_t ThreadPool::NumChunks(int64_t n, int64_t grain) const {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  const int64_t by_grain = (n + grain - 1) / grain;
  return static_cast<int32_t>(
      std::max<int64_t>(1, std::min<int64_t>(num_threads_, by_grain)));
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      // Register before releasing the lock: the issuing thread destroys
      // the task only once done == chunks AND active == 0, so a worker
      // that entered late (after all chunks were claimed) still holds the
      // task alive until it leaves RunChunks.
      if (task != nullptr) ++task->active;
    }
    if (task != nullptr) {
      RunChunks(task);
      std::lock_guard<std::mutex> lk(mu_);
      --task->active;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunChunks(Task* task) {
  tl_in_chunk = true;
  for (;;) {
    const int32_t c = task->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= task->chunks) break;
    auto [lo, hi] = ChunkBounds(task->n, task->chunks, c);
    Timer timer;
    task->status[c] = (*task->fn)(c, lo, hi);
    task->chunk_ns[c] = timer.Nanos();
    // Release so the joining thread's acquire load sees status/chunk_ns.
    if (task->done.fetch_add(1, std::memory_order_release) + 1 ==
        task->chunks) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  tl_in_chunk = false;
}

Status ThreadPool::ParallelFor(int64_t n, int64_t grain, const RangeFn& fn,
                               ParallelStats* stats) {
  if (n <= 0) return Status::OK();
  const int32_t chunks = NumChunks(n, grain);

  // Sequential path: one chunk, a single-thread pool, or a nested call
  // from inside a chunk body. Chunk indexing and bounds are identical to
  // the parallel path, so per-chunk outputs merge the same way.
  if (chunks <= 1 || workers_.empty() || tl_in_chunk) {
    int64_t max_ns = 0;
    for (int32_t c = 0; c < chunks; ++c) {
      auto [lo, hi] = ChunkBounds(n, chunks, c);
      Timer timer;
      SGL_RETURN_NOT_OK(fn(c, lo, hi));
      max_ns = std::max(max_ns, timer.Nanos());
    }
    if (stats != nullptr) {
      stats->workers = std::max<int64_t>(stats->workers, chunks);
      stats->max_worker_ns += max_ns;
    }
    return Status::OK();
  }

  Task task;
  task.fn = &fn;
  task.n = n;
  task.chunks = chunks;
  task.status.assign(chunks, Status::OK());
  task.chunk_ns.assign(chunks, 0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = &task;
    ++generation_;
  }
  work_cv_.notify_all();

  RunChunks(&task);  // the caller works too

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return task.done.load(std::memory_order_acquire) == task.chunks &&
             task.active == 0;
    });
    task_ = nullptr;
  }

  if (stats != nullptr) {
    stats->workers = std::max<int64_t>(stats->workers, chunks);
    stats->max_worker_ns +=
        *std::max_element(task.chunk_ns.begin(), task.chunk_ns.end());
  }
  for (int32_t c = 0; c < chunks; ++c) {
    if (!task.status[c].ok()) return task.status[c];
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace sgl
