// ShardedEffectBuffer: per-worker effect shards with a canonical merge.
//
// Why shards are operation LOGS rather than pre-folded EffectBuffers:
// ⊕ is associative and commutative in the paper's exact arithmetic
// (Eq. (3)), but IEEE double addition is not associative — folding a
// kSum attribute's contributions into per-worker partial sums and then
// adding the partials could round differently than the single-threaded
// fold, breaking the subsystem's bit-exactness contract for scripts with
// non-dyadic effect values. Each shard therefore records its chunk's
// Accumulate/AccumulateSet calls verbatim, in program order; MergeInto
// replays the logs in chunk index order. Because the decision phase
// assigns chunk c a contiguous, ascending row range and evaluates its
// rows in ascending order, the concatenated replay is the *exact* call
// sequence single-threaded execution would have issued — the merged
// buffer is bit-identical for any thread count and any chunking, not
// merely equivalent up to reassociation. (kMax/kMin/kSet are fully
// order-independent; kSum is the one that needs this care.)
#ifndef SGL_EXEC_SHARDED_EFFECT_BUFFER_H_
#define SGL_EXEC_SHARDED_EFFECT_BUFFER_H_

#include <cstdint>
#include <vector>

#include "env/effect_buffer.h"

namespace sgl {
namespace exec {

/// One worker's append-only effect log (the EffectSink a chunk writes to).
class EffectShard : public EffectSink {
 public:
  void Accumulate(RowId row, AttrId attr, double value) override {
    ops_.push_back(Op{row, attr, false, value, 0.0});
  }

  void AccumulateSet(RowId row, AttrId attr, double value,
                     double priority) override {
    ops_.push_back(Op{row, attr, true, value, priority});
  }

  /// Re-issue every recorded call against `buffer`, in record order.
  void ReplayInto(EffectBuffer* buffer) const;

  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }
  void Clear() { ops_.clear(); }

 private:
  struct Op {
    RowId row;
    AttrId attr;
    bool is_set;
    double value;
    double priority;  // is_set only
  };

  std::vector<Op> ops_;
};

/// A fixed array of EffectShards, one per ParallelFor chunk, merged into
/// the tick's real EffectBuffer in chunk index order.
class ShardedEffectBuffer {
 public:
  explicit ShardedEffectBuffer(int32_t num_shards)
      : shards_(num_shards > 0 ? num_shards : 1) {}

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }
  EffectShard* shard(int32_t i) { return &shards_[i]; }

  /// Grow to at least `num_shards` shards (chunk counts vary with the
  /// table size; the decision phase keeps one buffer across ticks).
  void EnsureShards(int32_t num_shards) {
    if (num_shards > static_cast<int32_t>(shards_.size())) {
      shards_.resize(num_shards);
    }
  }

  /// Empty every shard's log, keeping its capacity for the next tick.
  void ClearAll() {
    for (EffectShard& shard : shards_) shard.Clear();
  }

  /// Replay shard 0, then shard 1, ... into `buffer`. With chunks covering
  /// contiguous ascending row ranges this reproduces the single-threaded
  /// accumulation sequence exactly (see file comment).
  void MergeInto(EffectBuffer* buffer) const;

  int64_t total_ops() const;

 private:
  std::vector<EffectShard> shards_;
};

}  // namespace exec
}  // namespace sgl

#endif  // SGL_EXEC_SHARDED_EFFECT_BUFFER_H_
