#include "exec/exchange.h"

namespace sgl {
namespace exec {

void MergeJournals(const std::vector<OpJournal*>& journals,
                   EffectSink* sink) {
  const size_t k = journals.size();
  std::vector<size_t> cursor(k, 0);  // next segment per journal
  for (;;) {
    // Pick the journal whose next segment has the smallest actor. Ties
    // cannot happen: every actor row has exactly one owning worker.
    size_t best = k;
    RowId best_actor = 0;
    for (size_t j = 0; j < k; ++j) {
      if (cursor[j] >= journals[j]->segments_.size()) continue;
      RowId actor = journals[j]->segments_[cursor[j]].actor;
      if (best == k || actor < best_actor) {
        best = j;
        best_actor = actor;
      }
    }
    if (best == k) return;  // all journals drained
    const OpJournal& jr = *journals[best];
    const size_t seg = cursor[best]++;
    const size_t lo = jr.segments_[seg].first_op;
    const size_t hi = seg + 1 < jr.segments_.size()
                          ? jr.segments_[seg + 1].first_op
                          : jr.ops_.size();
    for (size_t i = lo; i < hi; ++i) {
      const OpJournal::Op& op = jr.ops_[i];
      if (op.is_set) {
        sink->AccumulateSet(op.row, op.attr, op.value, op.priority);
      } else {
        sink->Accumulate(op.row, op.attr, op.value);
      }
    }
  }
}

}  // namespace exec
}  // namespace sgl
