#include "geom/range_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sgl {

LayeredRangeTree2D::LayeredRangeTree2D(
    const std::vector<PointRef>& points,
    const std::vector<std::vector<double>>& terms) {
  n_ = static_cast<int32_t>(points.size());
  m_ = static_cast<int32_t>(terms.size());
  stride_ = m_ + 1;
  if (n_ == 0) return;

  // Terms are keyed by PointRef::id; flatten them for cache-friendly
  // access during prefix construction.
  if (m_ > 0) {
    int32_t max_id = 0;
    for (const PointRef& p : points) max_id = std::max(max_id, p.id);
    term_of_.assign(static_cast<size_t>(max_id + 1) * m_, 0.0);
    for (int32_t t = 0; t < m_; ++t) {
      assert(static_cast<int32_t>(terms[t].size()) > max_id);
      for (const PointRef& p : points) {
        term_of_[static_cast<size_t>(p.id) * m_ + t] = terms[t][p.id];
      }
    }
  }

  // Sort point positions by (x, y, id) — the secondary keys make the
  // structure (and therefore enumeration order) deterministic.
  std::vector<int32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (points[a].x != points[b].x) return points[a].x < points[b].x;
    if (points[a].y != points[b].y) return points[a].y < points[b].y;
    return points[a].id < points[b].id;
  });
  xs_sorted_.resize(n_);
  ys_of_.resize(n_);
  ids_of_.resize(n_);
  for (int32_t i = 0; i < n_; ++i) {
    const PointRef& p = points[order[i]];
    xs_sorted_[i] = p.x;
    ys_of_[i] = p.y;
    ids_of_[i] = p.id;
  }
  nodes_.reserve(static_cast<size_t>(2 * n_));
  root_ = Build(0, n_);
}

int32_t LayeredRangeTree2D::Build(int32_t lo, int32_t hi) {
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].lo = lo;
  nodes_[node_id].hi = hi;

  if (hi - lo == 1) {
    Node& node = nodes_[node_id];
    node.ys = {ys_of_[lo]};
    node.ids = {ids_of_[lo]};
  } else {
    int32_t mid = lo + (hi - lo) / 2;
    int32_t left = Build(lo, mid);
    int32_t right = Build(mid, hi);
    Node& node = nodes_[node_id];
    node.left = left;
    node.right = right;
    // Merge children's y-lists (a bottom-up mergesort) and record the
    // fractional-cascading bridges: bridge_left[p] = number of left-child
    // entries strictly before merged position p, which equals the
    // lower_bound position of any y value whose root lower_bound is p.
    const Node& ln = nodes_[left];
    const Node& rn = nodes_[right];
    int32_t total = hi - lo;
    node.ys.reserve(total);
    node.ids.reserve(total);
    node.bridge_left.reserve(total + 1);
    node.bridge_right.reserve(total + 1);
    int32_t li = 0, ri = 0;
    const int32_t lsize = static_cast<int32_t>(ln.ys.size());
    const int32_t rsize = static_cast<int32_t>(rn.ys.size());
    while (li < lsize || ri < rsize) {
      node.bridge_left.push_back(li);
      node.bridge_right.push_back(ri);
      bool take_left;
      if (li >= lsize) {
        take_left = false;
      } else if (ri >= rsize) {
        take_left = true;
      } else if (ln.ys[li] != rn.ys[ri]) {
        take_left = ln.ys[li] < rn.ys[ri];
      } else {
        take_left = ln.ids[li] < rn.ids[ri];
      }
      const Node& src = take_left ? ln : rn;
      int32_t& idx = take_left ? li : ri;
      node.ys.push_back(src.ys[idx]);
      node.ids.push_back(src.ids[idx]);
      ++idx;
    }
    node.bridge_left.push_back(li);
    node.bridge_right.push_back(ri);
  }

  // Prefix aggregates over the y-sorted list (Figure 8): prefix[i] holds
  // the aggregate of ys[0..i); slot m_ carries the count.
  Node& node = nodes_[node_id];
  const int32_t len = static_cast<int32_t>(node.ys.size());
  node.prefix.assign(static_cast<size_t>(len + 1) * stride_, 0.0);
  for (int32_t i = 0; i < len; ++i) {
    const double* prev = &node.prefix[static_cast<size_t>(i) * stride_];
    double* dst = &node.prefix[static_cast<size_t>(i + 1) * stride_];
    const double* terms =
        m_ > 0 ? &term_of_[static_cast<size_t>(node.ids[i]) * m_] : nullptr;
    for (int32_t t = 0; t < m_; ++t) dst[t] = prev[t] + terms[t];
    dst[m_] = prev[m_] + 1.0;
  }
  return node_id;
}

AggResult LayeredRangeTree2D::Aggregate(const Rect& rect) const {
  AggResult acc(m_);
  if (n_ > 0) {
    const Node& root = nodes_[root_];
    // One binary search at the root; bridges do the rest (fractional
    // cascading). Closed y interval: [lower_bound(ylo), upper_bound(yhi)).
    int32_t plo = static_cast<int32_t>(
        std::lower_bound(root.ys.begin(), root.ys.end(), rect.ylo) -
        root.ys.begin());
    int32_t phi = static_cast<int32_t>(
        std::upper_bound(root.ys.begin(), root.ys.end(), rect.yhi) -
        root.ys.begin());
    AggregateRec(root_, rect, plo, phi, &acc);
  }
  // Fold in the delta overlay: inserted points add their contribution,
  // removed points retract theirs (divisibility, Definition 5.1).
  for (const DeltaPoint& p : inserted_) {
    if (!rect.Contains(p.x, p.y)) continue;
    acc.count += 1;
    for (int32_t t = 0; t < m_; ++t) acc.sums[t] += p.terms[t];
  }
  for (const DeltaPoint& p : removed_) {
    if (!rect.Contains(p.x, p.y)) continue;
    acc.count -= 1;
    for (int32_t t = 0; t < m_; ++t) acc.sums[t] -= p.terms[t];
  }
  return acc;
}

void LayeredRangeTree2D::ApplyDelta(std::vector<DeltaPoint>* opposite,
                                    std::vector<DeltaPoint>* own, double x,
                                    double y, const double* terms) {
  // A delta that cancels a pending opposite delta of the same point
  // annihilates it instead of growing both lists (the common
  // move-back-and-forth churn); otherwise it joins its own overlay list.
  for (size_t i = opposite->size(); i > 0; --i) {
    const DeltaPoint& p = (*opposite)[i - 1];
    if (p.x != x || p.y != y) continue;
    bool same = true;
    for (int32_t t = 0; t < m_; ++t) {
      if (p.terms[t] != terms[t]) {
        same = false;
        break;
      }
    }
    if (same) {
      opposite->erase(opposite->begin() + static_cast<int64_t>(i - 1));
      return;
    }
  }
  DeltaPoint p{x, y, m_ > 0 ? std::vector<double>(terms, terms + m_)
                            : std::vector<double>()};
  own->push_back(std::move(p));
}

void LayeredRangeTree2D::RemovePoint(double x, double y, const double* terms) {
  ApplyDelta(&inserted_, &removed_, x, y, terms);
}

void LayeredRangeTree2D::InsertPoint(double x, double y, const double* terms) {
  ApplyDelta(&removed_, &inserted_, x, y, terms);
}

void LayeredRangeTree2D::AggregateRec(int32_t node_id, const Rect& rect,
                                      int32_t plo, int32_t phi,
                                      AggResult* acc) const {
  if (plo >= phi) return;
  const Node& node = nodes_[node_id];
  const double node_xlo = xs_sorted_[node.lo];
  const double node_xhi = xs_sorted_[node.hi - 1];
  if (node_xlo > rect.xhi || node_xhi < rect.xlo) return;
  if ((rect.xlo <= node_xlo && node_xhi <= rect.xhi) || node.left < 0) {
    // A leaf that overlaps the x interval is contained in it (its x
    // extent is a single coordinate), so both cases take the O(1)
    // prefix-aggregate slice.
    const double* hi_p = &node.prefix[static_cast<size_t>(phi) * stride_];
    const double* lo_p = &node.prefix[static_cast<size_t>(plo) * stride_];
    acc->count += static_cast<int64_t>(hi_p[m_] - lo_p[m_]);
    for (int32_t t = 0; t < m_; ++t) acc->sums[t] += hi_p[t] - lo_p[t];
    return;
  }
  AggregateRec(node.left, rect, node.bridge_left[plo], node.bridge_left[phi],
               acc);
  AggregateRec(node.right, rect, node.bridge_right[plo],
               node.bridge_right[phi], acc);
}

void LayeredRangeTree2D::Enumerate(const Rect& rect,
                                   std::vector<int32_t>* out) const {
  assert(removed_.empty() && inserted_.empty());
  if (n_ == 0) return;
  const Node& root = nodes_[root_];
  int32_t plo = static_cast<int32_t>(
      std::lower_bound(root.ys.begin(), root.ys.end(), rect.ylo) -
      root.ys.begin());
  int32_t phi = static_cast<int32_t>(
      std::upper_bound(root.ys.begin(), root.ys.end(), rect.yhi) -
      root.ys.begin());
  EnumerateRec(root_, rect, plo, phi, out);
}

void LayeredRangeTree2D::EnumerateRec(int32_t node_id, const Rect& rect,
                                      int32_t plo, int32_t phi,
                                      std::vector<int32_t>* out) const {
  if (plo >= phi) return;
  const Node& node = nodes_[node_id];
  const double node_xlo = xs_sorted_[node.lo];
  const double node_xhi = xs_sorted_[node.hi - 1];
  if (node_xlo > rect.xhi || node_xhi < rect.xlo) return;
  if ((rect.xlo <= node_xlo && node_xhi <= rect.xhi) || node.left < 0) {
    for (int32_t i = plo; i < phi; ++i) out->push_back(node.ids[i]);
    return;
  }
  EnumerateRec(node.left, rect, node.bridge_left[plo], node.bridge_left[phi],
               out);
  EnumerateRec(node.right, rect, node.bridge_right[plo],
               node.bridge_right[phi], out);
}

}  // namespace sgl
