// Sweep-line extremum index (Figure 9): MIN/MAX over constant-extent ranges.
//
// When every probing unit uses the same y half-extent ry — true whenever
// units of one type share a weapon/visibility range, the case the paper
// calls out — MIN/MAX over the box around each unit can be answered by a
// sweep: order probes by their y centre; a data point is "active" exactly
// while the sweep is within ry of it; a segment tree over the x-sorted
// points answers each probe's x-slice in O(log n). All m probes cost
// O((n + m) log n) total, beating the O(log^2 n)-per-probe decomposable
// tree (bench_minmax measures the crossover).
//
// Probes with heterogeneous ry are supported by bucketing: one sweep per
// distinct ry value (SweepBatch groups them). Results are deterministic:
// (value, key) lexicographic ordering breaks ties.
#ifndef SGL_GEOM_SWEEPLINE_H_
#define SGL_GEOM_SWEEPLINE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "geom/geom.h"

namespace sgl {

/// One extremum probe: the box [cx-rx, cx+rx] x [cy-ry, cy+ry], where ry
/// is shared across the whole sweep and rx may vary per probe.
struct SweepProbe {
  double cx = 0.0;
  double cy = 0.0;
  double rx = 0.0;
  int32_t id = 0;  ///< caller slot for the answer
};

/// Answers a batch of constant-ry MIN probes over (x, y, value, key)
/// points. MAX is served by negating values (see SweepBatchMinMax below).
class SweepLineExtremum {
 public:
  enum class Mode { kMin, kMax };

  SweepLineExtremum(const std::vector<PointRef>& points,
                    const std::vector<double>& values,
                    const std::vector<int64_t>& keys, Mode mode);

  /// Run one sweep with shared y half-extent `ry`; `out[probe.id]` receives
  /// each probe's extremum (invalid if its box is empty). `out` must be
  /// sized by the caller. `probes` is taken by value (sorted internally).
  void Run(std::vector<SweepProbe> probes, double ry,
           std::vector<Extremum>* out) const;

  int32_t num_points() const { return n_; }

 private:
  Extremum SegQuery(std::vector<Extremum>& seg, int32_t lo, int32_t hi) const;

  Mode mode_;
  int32_t n_ = 0;
  std::vector<double> xs_;        // x-sorted point coordinates
  std::vector<double> ys_;        // parallel
  std::vector<Extremum> entries_; // parallel (sign-adjusted for kMax)
  std::vector<int32_t> by_y_;     // point slots ordered by y
};

/// Convenience wrapper: groups probes by their ry and runs one sweep per
/// distinct extent, matching the planner's "bucket by extent" strategy.
class SweepBatch {
 public:
  SweepBatch(const std::vector<PointRef>& points,
             const std::vector<double>& values,
             const std::vector<int64_t>& keys, SweepLineExtremum::Mode mode)
      : sweep_(points, values, keys, mode) {}

  void AddProbe(double cx, double cy, double rx, double ry, int32_t id) {
    grouped_[ry].push_back(SweepProbe{cx, cy, rx, id});
  }

  /// Execute all sweeps; `out` must be sized to cover every probe id.
  void Run(std::vector<Extremum>* out);

 private:
  SweepLineExtremum sweep_;
  // std::map keeps extents in deterministic order.
  std::map<double, std::vector<SweepProbe>> grouped_;
};

}  // namespace sgl

#endif  // SGL_GEOM_SWEEPLINE_H_
