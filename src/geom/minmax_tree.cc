#include "geom/minmax_tree.h"

#include <algorithm>
#include <numeric>

namespace sgl {

MinMaxRangeTree2D::MinMaxRangeTree2D(const std::vector<PointRef>& points,
                                     const std::vector<double>& values,
                                     const std::vector<int64_t>& keys,
                                     Mode mode)
    : mode_(mode) {
  n_ = static_cast<int32_t>(points.size());
  if (n_ == 0) return;
  std::vector<int32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (points[a].x != points[b].x) return points[a].x < points[b].x;
    if (points[a].y != points[b].y) return points[a].y < points[b].y;
    return points[a].id < points[b].id;
  });
  xs_sorted_.resize(n_);
  ys_of_.resize(n_);
  entry_of_.resize(n_);
  const double sign = mode_ == Mode::kMin ? 1.0 : -1.0;
  for (int32_t i = 0; i < n_; ++i) {
    const PointRef& p = points[order[i]];
    xs_sorted_[i] = p.x;
    ys_of_[i] = p.y;
    entry_of_[i] = Extremum{sign * values[p.id], keys[p.id]};
  }
  nodes_.reserve(static_cast<size_t>(2 * n_));
  root_ = Build(0, n_);
}

int32_t MinMaxRangeTree2D::Build(int32_t lo, int32_t hi) {
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].lo = lo;
  nodes_[node_id].hi = hi;

  std::vector<Extremum> entries;  // y-ordered entries of this subtree
  if (hi - lo == 1) {
    Node& node = nodes_[node_id];
    node.ys = {ys_of_[lo]};
    entries = {entry_of_[lo]};
  } else {
    int32_t mid = lo + (hi - lo) / 2;
    int32_t left = Build(lo, mid);
    int32_t right = Build(mid, hi);
    Node& node = nodes_[node_id];
    node.left = left;
    node.right = right;
    // Merge children's y-lists. Per-node binary search replaces cascading
    // bridges here; the probe is O(log^2 n) either way because of the
    // per-node segment tree descent.
    const Node& ln = nodes_[left];
    const Node& rn = nodes_[right];
    const int32_t lsize = static_cast<int32_t>(ln.ys.size());
    const int32_t rsize = static_cast<int32_t>(rn.ys.size());
    node.ys.reserve(hi - lo);
    entries.reserve(hi - lo);
    int32_t li = 0, ri = 0;
    while (li < lsize || ri < rsize) {
      bool take_left;
      if (li >= lsize) {
        take_left = false;
      } else if (ri >= rsize) {
        take_left = true;
      } else {
        take_left = ln.ys[li] <= rn.ys[ri];
      }
      if (take_left) {
        node.ys.push_back(ln.ys[li]);
        entries.push_back(ln.seg[lsize + li]);  // child leaf entry
        ++li;
      } else {
        node.ys.push_back(rn.ys[ri]);
        entries.push_back(rn.seg[rsize + ri]);
        ++ri;
      }
    }
  }

  // Bottom-up segment tree over the y-ordered entries: seg[len + i] is
  // leaf i; seg[p] = min(seg[2p], seg[2p+1]).
  Node& node = nodes_[node_id];
  const int32_t len = static_cast<int32_t>(node.ys.size());
  node.seg.assign(static_cast<size_t>(2 * len), Extremum::None());
  for (int32_t i = 0; i < len; ++i) node.seg[len + i] = entries[i];
  for (int32_t p = len - 1; p >= 1; --p) {
    node.seg[p] = Extremum::Min(node.seg[2 * p], node.seg[2 * p + 1]);
  }
  return node_id;
}

Extremum MinMaxRangeTree2D::SegQuery(const Node& node, int32_t lo,
                                     int32_t hi) {
  const int32_t len = static_cast<int32_t>(node.ys.size());
  Extremum best = Extremum::None();
  for (int32_t l = lo + len, r = hi + len; l < r; l >>= 1, r >>= 1) {
    if (l & 1) best = Extremum::Min(best, node.seg[l++]);
    if (r & 1) best = Extremum::Min(best, node.seg[--r]);
  }
  return best;
}

Extremum MinMaxRangeTree2D::Query(const Rect& rect) const {
  Extremum best = Extremum::None();
  if (n_ == 0) return best;
  QueryRec(root_, rect, &best);
  if (best.valid() && mode_ == Mode::kMax) best.value = -best.value;
  return best;
}

void MinMaxRangeTree2D::QueryRec(int32_t node_id, const Rect& rect,
                                 Extremum* best) const {
  const Node& node = nodes_[node_id];
  const double node_xlo = xs_sorted_[node.lo];
  const double node_xhi = xs_sorted_[node.hi - 1];
  if (node_xlo > rect.xhi || node_xhi < rect.xlo) return;
  if ((rect.xlo <= node_xlo && node_xhi <= rect.xhi) || node.left < 0) {
    if (node.left < 0) {
      // Leaf: its x extent is one coordinate, but it may have failed the
      // containment test only because the rect is narrower than the
      // coordinate — the overlap test above already guarantees inclusion.
    }
    int32_t plo = static_cast<int32_t>(
        std::lower_bound(node.ys.begin(), node.ys.end(), rect.ylo) -
        node.ys.begin());
    int32_t phi = static_cast<int32_t>(
        std::upper_bound(node.ys.begin(), node.ys.end(), rect.yhi) -
        node.ys.begin());
    if (plo < phi) *best = Extremum::Min(*best, SegQuery(node, plo, phi));
    return;
  }
  QueryRec(node.left, rect, best);
  QueryRec(node.right, rect, best);
}

}  // namespace sgl
