#include "geom/sweepline.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace sgl {

SweepLineExtremum::SweepLineExtremum(const std::vector<PointRef>& points,
                                     const std::vector<double>& values,
                                     const std::vector<int64_t>& keys,
                                     Mode mode)
    : mode_(mode) {
  n_ = static_cast<int32_t>(points.size());
  if (n_ == 0) return;
  std::vector<int32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  // Leaves are units ordered by (x, key): each unit owns one leaf, so
  // activation and deactivation are single leaf writes even when several
  // units share an x coordinate.
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (points[a].x != points[b].x) return points[a].x < points[b].x;
    return keys[points[a].id] < keys[points[b].id];
  });
  xs_.resize(n_);
  ys_.resize(n_);
  entries_.resize(n_);
  const double sign = mode_ == Mode::kMin ? 1.0 : -1.0;
  for (int32_t i = 0; i < n_; ++i) {
    const PointRef& p = points[order[i]];
    xs_[i] = p.x;
    ys_[i] = p.y;
    entries_[i] = Extremum{sign * values[p.id], keys[p.id]};
  }
  by_y_.resize(n_);
  std::iota(by_y_.begin(), by_y_.end(), 0);
  std::sort(by_y_.begin(), by_y_.end(), [&](int32_t a, int32_t b) {
    if (ys_[a] != ys_[b]) return ys_[a] < ys_[b];
    return entries_[a].key < entries_[b].key;
  });
}

Extremum SweepLineExtremum::SegQuery(std::vector<Extremum>& seg, int32_t lo,
                                     int32_t hi) const {
  Extremum best = Extremum::None();
  for (int32_t l = lo + n_, r = hi + n_; l < r; l >>= 1, r >>= 1) {
    if (l & 1) best = Extremum::Min(best, seg[l++]);
    if (r & 1) best = Extremum::Min(best, seg[--r]);
  }
  return best;
}

void SweepLineExtremum::Run(std::vector<SweepProbe> probes, double ry,
                            std::vector<Extremum>* out) const {
  if (n_ == 0) {
    for (const SweepProbe& p : probes) (*out)[p.id] = Extremum::None();
    return;
  }
  // Sort probes by sweep position (cy), breaking ties by id so the order
  // of segment-tree reads (which do not mutate state) is immaterial but
  // reproducible.
  std::sort(probes.begin(), probes.end(),
            [](const SweepProbe& a, const SweepProbe& b) {
              if (a.cy != b.cy) return a.cy < b.cy;
              return a.id < b.id;
            });

  // Segment tree over unit leaves, all initially inactive (Figure 9's
  // "default value": the identity of MIN).
  std::vector<Extremum> seg(static_cast<size_t>(2 * n_), Extremum::None());
  auto set_leaf = [&](int32_t slot, const Extremum& e) {
    int32_t p = slot + n_;
    seg[p] = e;
    for (p >>= 1; p >= 1; p >>= 1) {
      seg[p] = Extremum::Min(seg[2 * p], seg[2 * p + 1]);
    }
  };

  // A unit at y is active for probe centres cy in [y - ry, y + ry].
  size_t act = 0;    // next unit to activate, in by_y_ order
  size_t deact = 0;  // next unit to deactivate, in by_y_ order
  for (const SweepProbe& probe : probes) {
    while (act < by_y_.size() && ys_[by_y_[act]] - ry <= probe.cy) {
      set_leaf(by_y_[act], entries_[by_y_[act]]);
      ++act;
    }
    while (deact < by_y_.size() && ys_[by_y_[deact]] + ry < probe.cy) {
      set_leaf(by_y_[deact], Extremum::None());
      ++deact;
    }
    int32_t lo = static_cast<int32_t>(
        std::lower_bound(xs_.begin(), xs_.end(), probe.cx - probe.rx) -
        xs_.begin());
    int32_t hi = static_cast<int32_t>(
        std::upper_bound(xs_.begin(), xs_.end(), probe.cx + probe.rx) -
        xs_.begin());
    Extremum best = lo < hi ? SegQuery(seg, lo, hi) : Extremum::None();
    if (best.valid() && mode_ == Mode::kMax) best.value = -best.value;
    (*out)[probe.id] = best;
  }
}

void SweepBatch::Run(std::vector<Extremum>* out) {
  for (auto& [ry, probes] : grouped_) {
    sweep_.Run(std::move(probes), ry, out);
  }
  grouped_.clear();
}

}  // namespace sgl
