#include "geom/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sgl {

KdTree2D::KdTree2D(const std::vector<PointRef>& points,
                   const std::vector<int64_t>& keys) {
  n_ = static_cast<int32_t>(points.size());
  if (n_ == 0) return;
  pts_.resize(n_);
  for (int32_t i = 0; i < n_; ++i) {
    pts_[i] = Pt{points[i].x, points[i].y, keys[points[i].id], points[i].id};
  }
  nodes_.reserve(static_cast<size_t>(2 * n_));
  root_ = Build(0, n_);
}

int32_t KdTree2D::Build(int32_t lo, int32_t hi) {
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  Node local;
  local.lo = lo;
  local.hi = hi;
  local.bxlo = local.bxhi = pts_[lo].x;
  local.bylo = local.byhi = pts_[lo].y;
  for (int32_t i = lo + 1; i < hi; ++i) {
    local.bxlo = std::min(local.bxlo, pts_[i].x);
    local.bxhi = std::max(local.bxhi, pts_[i].x);
    local.bylo = std::min(local.bylo, pts_[i].y);
    local.byhi = std::max(local.byhi, pts_[i].y);
  }
  if (hi - lo > kLeafSize) {
    // Split along the wider box side for balanced pruning; deterministic
    // comparator (coordinate, then key) keeps builds reproducible.
    local.axis = (local.bxhi - local.bxlo >= local.byhi - local.bylo) ? 0 : 1;
    int32_t mid = lo + (hi - lo) / 2;
    auto cmp = [&](const Pt& a, const Pt& b) {
      double av = local.axis == 0 ? a.x : a.y;
      double bv = local.axis == 0 ? b.x : b.y;
      if (av != bv) return av < bv;
      return a.key < b.key;
    };
    std::nth_element(pts_.begin() + lo, pts_.begin() + mid, pts_.begin() + hi,
                     cmp);
    local.split = local.axis == 0 ? pts_[mid].x : pts_[mid].y;
    local.left = Build(lo, mid);
    local.right = Build(mid, hi);
  }
  nodes_[node_id] = local;
  return node_id;
}

Neighbor KdTree2D::Nearest(double qx, double qy, int64_t exclude_key) const {
  Neighbor best;
  if (n_ == 0) return best;
  Search(root_, qx, qy, exclude_key, &best);
  return best;
}

Neighbor KdTree2D::NearestWithin(double qx, double qy, int64_t exclude_key,
                                 double max_dist2) const {
  Neighbor best;
  if (n_ == 0) return best;
  // Seed the bound so pruning kicks in immediately; a just-over boundary
  // epsilon keeps max_dist2 itself inclusive.
  best.dist2 = std::nextafter(max_dist2, std::numeric_limits<double>::max());
  Search(root_, qx, qy, exclude_key, &best);
  if (best.found() && best.dist2 > max_dist2) {
    return Neighbor{};
  }
  return best;
}

void KdTree2D::Search(int32_t node_id, double qx, double qy,
                      int64_t exclude_key, Neighbor* best) const {
  const Node& node = nodes_[node_id];
  // Prune on the bounding box distance.
  double dx =
      qx < node.bxlo ? node.bxlo - qx : (qx > node.bxhi ? qx - node.bxhi : 0.0);
  double dy =
      qy < node.bylo ? node.bylo - qy : (qy > node.byhi ? qy - node.byhi : 0.0);
  double box_d2 = dx * dx + dy * dy;
  if (box_d2 > best->dist2) return;

  if (node.left < 0) {
    for (int32_t i = node.lo; i < node.hi; ++i) {
      const Pt& p = pts_[i];
      if (p.key == exclude_key) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < best->dist2 || (d2 == best->dist2 && p.key < best->key)) {
        best->dist2 = d2;
        best->key = p.key;
        best->id = p.id;
      }
    }
    return;
  }
  // Visit the near side first.
  double q_axis = node.axis == 0 ? qx : qy;
  int32_t first = q_axis < node.split ? node.left : node.right;
  int32_t second = first == node.left ? node.right : node.left;
  Search(first, qx, qy, exclude_key, best);
  Search(second, qx, qy, exclude_key, best);
}

Neighbor KdTree2D::NearestInRect(double qx, double qy, int64_t exclude_key,
                                 const Rect& rect) const {
  Neighbor best;
  if (n_ == 0) return best;
  SearchRect(root_, qx, qy, exclude_key, rect, &best);
  return best;
}

void KdTree2D::SearchRect(int32_t node_id, double qx, double qy,
                          int64_t exclude_key, const Rect& rect,
                          Neighbor* best) const {
  const Node& node = nodes_[node_id];
  // Prune nodes whose box misses the rect entirely.
  if (node.bxlo > rect.xhi || node.bxhi < rect.xlo || node.bylo > rect.yhi ||
      node.byhi < rect.ylo) {
    return;
  }
  double dx = qx < node.bxlo ? node.bxlo - qx
                             : (qx > node.bxhi ? qx - node.bxhi : 0.0);
  double dy = qy < node.bylo ? node.bylo - qy
                             : (qy > node.byhi ? qy - node.byhi : 0.0);
  if (dx * dx + dy * dy > best->dist2) return;

  if (node.left < 0) {
    for (int32_t i = node.lo; i < node.hi; ++i) {
      const Pt& p = pts_[i];
      if (p.key == exclude_key) continue;
      if (!rect.Contains(p.x, p.y)) continue;
      double d2 = SquaredDistance(qx, qy, p.x, p.y);
      if (d2 < best->dist2 || (d2 == best->dist2 && p.key < best->key)) {
        best->dist2 = d2;
        best->key = p.key;
        best->id = p.id;
      }
    }
    return;
  }
  double q_axis = node.axis == 0 ? qx : qy;
  int32_t first = q_axis < node.split ? node.left : node.right;
  int32_t second = first == node.left ? node.right : node.left;
  SearchRect(first, qx, qy, exclude_key, rect, best);
  SearchRect(second, qx, qy, exclude_key, rect, best);
}

LayeredKdForest::LayeredKdForest(const std::vector<PointRef>& points,
                                 const std::vector<int64_t>& keys,
                                 const std::vector<double>& ordered) {
  n_ = static_cast<int32_t>(points.size());
  if (n_ == 0) return;
  // Sort by the layering attribute (ties by key for determinism).
  std::vector<int32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    double av = ordered[points[a].id];
    double bv = ordered[points[b].id];
    if (av != bv) return av < bv;
    return keys[points[a].id] < keys[points[b].id];
  });
  attr_sorted_.resize(n_);
  for (int32_t i = 0; i < n_; ++i) {
    attr_sorted_[i] = ordered[points[order[i]].id];
  }

  // leaves_of[p]: sorted positions covered by segment-tree node p.
  std::vector<std::vector<int32_t>> leaves_of(static_cast<size_t>(2 * n_));
  for (int32_t i = 0; i < n_; ++i) leaves_of[n_ + i] = {i};
  for (int32_t p = n_ - 1; p >= 1; --p) {
    leaves_of[p] = leaves_of[2 * p];
    leaves_of[p].insert(leaves_of[p].end(), leaves_of[2 * p + 1].begin(),
                        leaves_of[2 * p + 1].end());
  }
  seg_trees_.resize(static_cast<size_t>(2 * n_));
  for (int32_t p = 1; p < 2 * n_; ++p) {
    if (leaves_of[p].empty()) continue;
    std::vector<PointRef> subset;
    subset.reserve(leaves_of[p].size());
    for (int32_t pos : leaves_of[p]) subset.push_back(points[order[pos]]);
    seg_trees_[p] = KdTree2D(subset, keys);
  }
}

Neighbor LayeredKdForest::NearestWithAttrAtMost(double qx, double qy,
                                                int64_t exclude_key,
                                                double threshold) const {
  Neighbor best;
  if (n_ == 0) return best;
  int32_t ub = static_cast<int32_t>(
      std::upper_bound(attr_sorted_.begin(), attr_sorted_.end(), threshold) -
      attr_sorted_.begin());
  // Canonical decomposition of [0, ub).
  for (int32_t l = 0 + n_, r = ub + n_; l < r; l >>= 1, r >>= 1) {
    auto consider = [&](int32_t p) {
      Neighbor cand = seg_trees_[p].Nearest(qx, qy, exclude_key);
      if (!cand.found()) return;
      if (cand.dist2 < best.dist2 ||
          (cand.dist2 == best.dist2 && cand.key < best.key)) {
        best = cand;
      }
    };
    if (l & 1) consider(l++);
    if (r & 1) consider(--r);
  }
  return best;
}

}  // namespace sgl
