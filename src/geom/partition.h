// Categorical partition layer for aggregate indexes.
//
// Section 5.3.1: degenerate (categorical) range components — player id,
// unit type — are replaced by a hash layer with O(1) look-up instead of a
// tree level. The experiments in Section 6 build "6 range trees, one per
// player / unit-type combination". PartitionedIndex is that layer: it maps
// a composite categorical value to the index built over that partition's
// points. Probes with an equality predicate touch one partition; probes
// with an inequality (player <> u.player) visit every other partition and
// combine the per-partition answers (all supported aggregates are
// decomposable across disjoint sets).
#ifndef SGL_GEOM_PARTITION_H_
#define SGL_GEOM_PARTITION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "geom/geom.h"

namespace sgl {

/// Groups point ids by a categorical value. Deterministic iteration order
/// (std::map) keeps downstream combination order-independent anyway.
class Partitioner {
 public:
  /// `part_of[i]` is the partition value of point i (i in [0, n)).
  explicit Partitioner(const std::vector<int64_t>& part_of) {
    for (size_t i = 0; i < part_of.size(); ++i) {
      groups_[part_of[i]].push_back(static_cast<int32_t>(i));
    }
  }

  const std::vector<int32_t>* PointsIn(int64_t part) const {
    auto it = groups_.find(part);
    return it == groups_.end() ? nullptr : &it->second;
  }

  /// Invoke fn(partition_value, point_ids) for every partition.
  void ForEach(const std::function<void(int64_t, const std::vector<int32_t>&)>&
                   fn) const {
    for (const auto& [part, ids] : groups_) fn(part, ids);
  }

  size_t NumPartitions() const { return groups_.size(); }

 private:
  std::map<int64_t, std::vector<int32_t>> groups_;
};

/// Owns one index per partition value.
template <typename Index>
class PartitionedIndex {
 public:
  void Add(int64_t part, Index index) {
    indexes_.emplace(part, std::move(index));
  }

  const Index* Get(int64_t part) const {
    auto it = indexes_.find(part);
    return it == indexes_.end() ? nullptr : &it->second;
  }

  /// Invoke fn(partition_value, index) for every partition except `skip`
  /// (pass INT64_MIN to visit all) — the `player <> u.player` probe shape.
  template <typename Fn>
  void ForEachExcept(int64_t skip, Fn&& fn) const {
    for (const auto& [part, index] : indexes_) {
      if (part != skip) fn(part, index);
    }
  }

  size_t NumPartitions() const { return indexes_.size(); }

 private:
  std::map<int64_t, Index> indexes_;
};

/// Encode up to three small categorical values into one partition key.
inline int64_t EncodePartition(int64_t a, int64_t b = 0, int64_t c = 0) {
  return ((a & 0xffff) << 32) | ((b & 0xffff) << 16) | (c & 0xffff);
}

}  // namespace sgl

#endif  // SGL_GEOM_PARTITION_H_
