// Layered range tree with fractional cascading and divisible aggregates.
//
// This is the structure of Section 5.3.1 / Figure 8. A balanced binary tree
// is built over the points in x order; every node stores its subtree's
// points sorted by y. Fractional cascading [Chazelle & Guibas]: the y
// position of the query bounds is binary-searched once at the root, and
// "bridge" arrays map positions into each child in O(1), removing the
// per-node log factor. For *divisible* aggregates (Definition 5.1: sum,
// count, every statistical moment) the y-sorted lists store prefix
// aggregates, so any contiguous y slice of a canonical node is recovered
// as prefix[hi] - prefix[lo].
//
//   Build:      O(n log n)
//   Aggregate:  O(log n) per rectangle probe (fractional cascading)
//   Enumerate:  O(log n + k) reporting k points
//
// The tree supports m payload terms per point and answers all of them in
// one probe (the paper's "list of aggregate tuples" for centroid queries).
// It is a static structure rebuilt every tick, per the paper's observation
// that per-tick rebuilding beats dynamic maintenance for volatile data —
// but for *low-churn* ticks the adaptive evaluator instead applies the
// tick's delta log through RemovePoint/InsertPoint: removed and inserted
// points live in side lists that Aggregate folds in after the tree walk
// (divisibility makes the correction a subtract/add), so a probe costs
// O(log n + d) for d outstanding delta points. When d grows past what the
// cost model tolerates, the owner rebuilds from scratch, which clears the
// overlay — the classic amortized static-to-dynamic transformation.
#ifndef SGL_GEOM_RANGE_TREE_H_
#define SGL_GEOM_RANGE_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/geom.h"

namespace sgl {

/// Result of an aggregate probe: point count plus one sum per payload term.
struct AggResult {
  int64_t count = 0;
  std::vector<double> sums;

  explicit AggResult(int32_t num_terms = 0) : sums(num_terms, 0.0) {}
};

class LayeredRangeTree2D {
 public:
  /// Build over `points`; `terms[t]` is the t-th payload column, indexed by
  /// PointRef::id. Pass an empty terms vector for pure count/enumeration.
  LayeredRangeTree2D(const std::vector<PointRef>& points,
                     const std::vector<std::vector<double>>& terms);

  int32_t num_points() const { return n_; }
  int32_t num_terms() const { return m_; }

  /// Count points and sum every payload term over `rect`, including the
  /// delta overlay (inserted points add, removed points subtract). Exact
  /// for integer-valued terms, the repo's determinism contract.
  AggResult Aggregate(const Rect& rect) const;

  /// Append the ids of all points inside `rect` to `out` (order follows
  /// the canonical decomposition, not input order). Not supported while a
  /// delta overlay is outstanding (removed points cannot be un-reported).
  void Enumerate(const Rect& rect, std::vector<int32_t>* out) const;

  // --- delta maintenance (the adaptive evaluator's incremental path) ------

  /// Record that the point (x, y) with payload `terms` (m() values; null ok
  /// when m() == 0) left the indexed set. The point must have been in the
  /// set (tree or a prior insert); this is not checked — the caller owns
  /// the delta log's integrity.
  void RemovePoint(double x, double y, const double* terms);

  /// Record that the point (x, y) with payload `terms` joined the set.
  void InsertPoint(double x, double y, const double* terms);

  /// Outstanding overlay points (removed + inserted): the per-probe linear
  /// correction cost the cost model charges against incremental upkeep.
  int32_t delta_size() const {
    return static_cast<int32_t>(removed_.size() + inserted_.size());
  }

 private:
  /// One overlay point: coordinates plus its m_ payload values.
  struct DeltaPoint {
    double x, y;
    std::vector<double> terms;
  };

  /// Shared body of RemovePoint/InsertPoint: annihilate a matching point
  /// pending in `opposite`, else append to `own`.
  void ApplyDelta(std::vector<DeltaPoint>* opposite,
                  std::vector<DeltaPoint>* own, double x, double y,
                  const double* terms);
  struct Node {
    int32_t lo = 0, hi = 0;       // x-sorted point range [lo, hi)
    int32_t left = -1, right = -1;
    std::vector<double> ys;       // subtree points sorted by y
    std::vector<int32_t> ids;     // parallel to ys
    // prefix[(i) * stride + t]: sum of term t over ys[0..i); slot m_ is
    // the count (always 1 per point) so count needs no special case.
    std::vector<double> prefix;
    // bridge arrays of length ys.size()+1: position -> position in child.
    std::vector<int32_t> bridge_left;
    std::vector<int32_t> bridge_right;
  };

  int32_t Build(int32_t lo, int32_t hi);
  void AggregateRec(int32_t node_id, const Rect& rect, int32_t plo,
                    int32_t phi, AggResult* acc) const;
  void EnumerateRec(int32_t node_id, const Rect& rect, int32_t plo,
                    int32_t phi, std::vector<int32_t>* out) const;

  int32_t n_ = 0;
  int32_t m_ = 0;       // payload terms
  int32_t stride_ = 1;  // m_ + 1 (terms + count)
  std::vector<double> xs_sorted_;
  std::vector<double> ys_of_;           // y keyed by x-sorted position
  std::vector<int32_t> ids_of_;         // id keyed by x-sorted position
  std::vector<double> term_of_;         // terms keyed by x-sorted position
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  std::vector<DeltaPoint> removed_;
  std::vector<DeltaPoint> inserted_;
};

}  // namespace sgl

#endif  // SGL_GEOM_RANGE_TREE_H_
