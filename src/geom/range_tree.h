// Layered range tree with fractional cascading and divisible aggregates.
//
// This is the structure of Section 5.3.1 / Figure 8. A balanced binary tree
// is built over the points in x order; every node stores its subtree's
// points sorted by y. Fractional cascading [Chazelle & Guibas]: the y
// position of the query bounds is binary-searched once at the root, and
// "bridge" arrays map positions into each child in O(1), removing the
// per-node log factor. For *divisible* aggregates (Definition 5.1: sum,
// count, every statistical moment) the y-sorted lists store prefix
// aggregates, so any contiguous y slice of a canonical node is recovered
// as prefix[hi] - prefix[lo].
//
//   Build:      O(n log n)
//   Aggregate:  O(log n) per rectangle probe (fractional cascading)
//   Enumerate:  O(log n + k) reporting k points
//
// The tree supports m payload terms per point and answers all of them in
// one probe (the paper's "list of aggregate tuples" for centroid queries).
// It is a static structure rebuilt every tick, per the paper's observation
// that per-tick rebuilding beats dynamic maintenance for volatile data.
#ifndef SGL_GEOM_RANGE_TREE_H_
#define SGL_GEOM_RANGE_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/geom.h"

namespace sgl {

/// Result of an aggregate probe: point count plus one sum per payload term.
struct AggResult {
  int64_t count = 0;
  std::vector<double> sums;

  explicit AggResult(int32_t num_terms = 0) : sums(num_terms, 0.0) {}
};

class LayeredRangeTree2D {
 public:
  /// Build over `points`; `terms[t]` is the t-th payload column, indexed by
  /// PointRef::id. Pass an empty terms vector for pure count/enumeration.
  LayeredRangeTree2D(const std::vector<PointRef>& points,
                     const std::vector<std::vector<double>>& terms);

  int32_t num_points() const { return n_; }
  int32_t num_terms() const { return m_; }

  /// Count points and sum every payload term over `rect`.
  AggResult Aggregate(const Rect& rect) const;

  /// Append the ids of all points inside `rect` to `out` (order follows
  /// the canonical decomposition, not input order).
  void Enumerate(const Rect& rect, std::vector<int32_t>* out) const;

 private:
  struct Node {
    int32_t lo = 0, hi = 0;       // x-sorted point range [lo, hi)
    int32_t left = -1, right = -1;
    std::vector<double> ys;       // subtree points sorted by y
    std::vector<int32_t> ids;     // parallel to ys
    // prefix[(i) * stride + t]: sum of term t over ys[0..i); slot m_ is
    // the count (always 1 per point) so count needs no special case.
    std::vector<double> prefix;
    // bridge arrays of length ys.size()+1: position -> position in child.
    std::vector<int32_t> bridge_left;
    std::vector<int32_t> bridge_right;
  };

  int32_t Build(int32_t lo, int32_t hi);
  void AggregateRec(int32_t node_id, const Rect& rect, int32_t plo,
                    int32_t phi, AggResult* acc) const;
  void EnumerateRec(int32_t node_id, const Rect& rect, int32_t plo,
                    int32_t phi, std::vector<int32_t>* out) const;

  int32_t n_ = 0;
  int32_t m_ = 0;       // payload terms
  int32_t stride_ = 1;  // m_ + 1 (terms + count)
  std::vector<double> xs_sorted_;
  std::vector<double> ys_of_;           // y keyed by x-sorted position
  std::vector<int32_t> ids_of_;         // id keyed by x-sorted position
  std::vector<double> term_of_;         // terms keyed by x-sorted position
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace sgl

#endif  // SGL_GEOM_RANGE_TREE_H_
