// Uniform-grid spatial hash: the games-industry baseline index.
//
// Not from the paper's toolbox — included as the ablation comparator for
// what commercial engines of the era actually used (Tozour's spatial
// database, Section 7). Build is O(n); a rectangle probe enumerates the
// candidate points of every overlapping cell, so probe cost degrades to
// O(k) in the result size where the paper's divisible-aggregate range tree
// stays polylogarithmic (bench/bench_indexes compares them).
#ifndef SGL_GEOM_SPATIAL_HASH_H_
#define SGL_GEOM_SPATIAL_HASH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/geom.h"

namespace sgl {

class SpatialHashGrid {
 public:
  /// Build over `points` with square cells of side `cell_size` (> 0).
  SpatialHashGrid(const std::vector<PointRef>& points, double cell_size)
      : cell_(cell_size) {
    if (points.empty()) {
      nx_ = ny_ = 1;
      starts_.assign(2, 0);
      return;
    }
    minx_ = maxx_ = points[0].x;
    miny_ = maxy_ = points[0].y;
    for (const PointRef& p : points) {
      minx_ = std::min(minx_, p.x);
      maxx_ = std::max(maxx_, p.x);
      miny_ = std::min(miny_, p.y);
      maxy_ = std::max(maxy_, p.y);
    }
    nx_ = CellIndex(maxx_, minx_) + 1;
    ny_ = CellIndex(maxy_, miny_) + 1;
    // Counting sort of points into row-major cell buckets.
    int64_t cells = static_cast<int64_t>(nx_) * ny_;
    starts_.assign(cells + 1, 0);
    std::vector<int32_t> cell_of(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      cell_of[i] = CellOf(points[i].x, points[i].y);
      ++starts_[cell_of[i] + 1];
    }
    for (int64_t c = 0; c < cells; ++c) starts_[c + 1] += starts_[c];
    entries_.resize(points.size());
    std::vector<int64_t> cursor(starts_.begin(), starts_.end() - 1);
    for (size_t i = 0; i < points.size(); ++i) {
      entries_[cursor[cell_of[i]]++] = points[i];
    }
  }

  /// Invoke `fn(point)` for every point inside `rect`.
  template <typename Fn>
  void ForEachInRect(const Rect& rect, Fn&& fn) const {
    if (entries_.empty()) return;
    int32_t cx0 = ClampX(CellIndex(rect.xlo, minx_));
    int32_t cx1 = ClampX(CellIndex(rect.xhi, minx_));
    int32_t cy0 = ClampY(CellIndex(rect.ylo, miny_));
    int32_t cy1 = ClampY(CellIndex(rect.yhi, miny_));
    for (int32_t cy = cy0; cy <= cy1; ++cy) {
      for (int32_t cx = cx0; cx <= cx1; ++cx) {
        int64_t c = static_cast<int64_t>(cy) * nx_ + cx;
        for (int64_t i = starts_[c]; i < starts_[c + 1]; ++i) {
          const PointRef& p = entries_[i];
          if (rect.Contains(p.x, p.y)) fn(p);
        }
      }
    }
  }

  /// Count of points inside `rect`.
  int64_t CountInRect(const Rect& rect) const {
    int64_t n = 0;
    ForEachInRect(rect, [&](const PointRef&) { ++n; });
    return n;
  }

 private:
  int32_t CellIndex(double v, double origin) const {
    return static_cast<int32_t>(std::floor((v - origin) / cell_));
  }
  int32_t CellOf(double x, double y) const {
    return CellIndex(y, miny_) * nx_ + CellIndex(x, minx_);
  }
  int32_t ClampX(int32_t c) const { return std::clamp(c, 0, nx_ - 1); }
  int32_t ClampY(int32_t c) const { return std::clamp(c, 0, ny_ - 1); }

  double cell_;
  double minx_ = 0.0, maxx_ = 0.0, miny_ = 0.0, maxy_ = 0.0;
  int32_t nx_ = 0, ny_ = 0;
  std::vector<int64_t> starts_;     // cell -> first entry index
  std::vector<PointRef> entries_;   // bucket-sorted points
};

}  // namespace sgl

#endif  // SGL_GEOM_SPATIAL_HASH_H_
