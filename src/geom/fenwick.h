// Fenwick (binary indexed) tree: 1-D prefix sums with point updates.
//
// Used for the degenerate 1-D cases of divisible aggregates and as a
// self-check structure in the property tests. Divisible aggregates
// (Definition 5.1) recover any range as prefix(hi) - prefix(lo).
#ifndef SGL_GEOM_FENWICK_H_
#define SGL_GEOM_FENWICK_H_

#include <cstdint>
#include <vector>

namespace sgl {

class Fenwick {
 public:
  explicit Fenwick(int32_t n) : tree_(n + 1, 0.0) {}

  int32_t size() const { return static_cast<int32_t>(tree_.size()) - 1; }

  /// Add `delta` at position i (0-based).
  void Add(int32_t i, double delta) {
    for (int32_t p = i + 1; p <= size(); p += p & -p) tree_[p] += delta;
  }

  /// Sum of positions [0, i) (exclusive upper bound).
  double PrefixSum(int32_t i) const {
    double s = 0.0;
    for (int32_t p = i; p > 0; p -= p & -p) s += tree_[p];
    return s;
  }

  /// Sum of positions [lo, hi).
  double RangeSum(int32_t lo, int32_t hi) const {
    return PrefixSum(hi) - PrefixSum(lo);
  }

 private:
  std::vector<double> tree_;
};

}  // namespace sgl

#endif  // SGL_GEOM_FENWICK_H_
