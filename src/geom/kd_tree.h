// Static 2-D kD-tree for nearest-neighbour aggregates (Section 5.3.2).
//
// Spatial aggregates like "find the nearest healer" are answered with a
// kD-tree [Bentley 1990]; the categorical parts of the selection (player,
// unit type) are handled by building one tree per partition (the hash
// layer of Section 5.3.1), and ordered non-spatial attributes by the
// LayeredKdForest below. The tree is static and rebuilt per tick.
//
// Distances are squared Euclidean — exact for integer-valued grid
// coordinates — and ties are broken by smaller key, so results never
// depend on build or traversal order.
#ifndef SGL_GEOM_KD_TREE_H_
#define SGL_GEOM_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/geom.h"

namespace sgl {

/// Result of a nearest-neighbour probe.
struct Neighbor {
  int64_t key = std::numeric_limits<int64_t>::max();
  double dist2 = std::numeric_limits<double>::infinity();
  int32_t id = -1;  ///< PointRef::id of the neighbour, -1 if none

  bool found() const { return id >= 0; }
};

class KdTree2D {
 public:
  /// An empty tree (all probes miss).
  KdTree2D() = default;

  /// Build over `points`; `keys[p.id]` is each point's identity key.
  KdTree2D(const std::vector<PointRef>& points,
           const std::vector<int64_t>& keys);

  /// Nearest point to (qx, qy), excluding any point whose key equals
  /// `exclude_key` (pass a sentinel such as INT64_MIN to exclude nothing).
  Neighbor Nearest(double qx, double qy, int64_t exclude_key) const;

  /// Nearest point within squared distance `max_dist2` (inclusive);
  /// not-found if nothing qualifies.
  Neighbor NearestWithin(double qx, double qy, int64_t exclude_key,
                         double max_dist2) const;

  /// Nearest point lying inside `rect` — the shape of "nearest enemy in
  /// my (rectangular) visibility range" probes.
  Neighbor NearestInRect(double qx, double qy, int64_t exclude_key,
                         const Rect& rect) const;

  int32_t num_points() const { return n_; }

 private:
  static constexpr int32_t kLeafSize = 8;

  struct Node {
    // Points are stored in pts_[lo, hi); internal nodes split at `mid`
    // along `axis` (0 = x, 1 = y).
    int32_t lo = 0, hi = 0;
    int32_t left = -1, right = -1;
    int8_t axis = 0;
    double split = 0.0;
    // Bounding box for pruning.
    double bxlo = 0.0, bxhi = 0.0, bylo = 0.0, byhi = 0.0;
  };

  struct Pt {
    double x, y;
    int64_t key;
    int32_t id;
  };

  int32_t Build(int32_t lo, int32_t hi);
  void Search(int32_t node_id, double qx, double qy, int64_t exclude_key,
              Neighbor* best) const;
  void SearchRect(int32_t node_id, double qx, double qy, int64_t exclude_key,
                  const Rect& rect, Neighbor* best) const;

  int32_t n_ = 0;
  std::vector<Pt> pts_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

/// Layered structure of Section 5.3.2: "the nearest unit whose armor we can
/// penetrate". A balanced tree over an ordered attribute with a kD-tree at
/// every canonical node. A query with threshold t decomposes the prefix
/// {units with attr <= t} into O(log n) canonical kD-trees and takes the
/// best neighbour among them: O(log^2 n) per probe, O(n log^2 n) build.
class LayeredKdForest {
 public:
  /// `ordered[p.id]` is the layering attribute (e.g. armor class).
  LayeredKdForest(const std::vector<PointRef>& points,
                  const std::vector<int64_t>& keys,
                  const std::vector<double>& ordered);

  /// Nearest point with ordered-attribute value <= `threshold`.
  Neighbor NearestWithAttrAtMost(double qx, double qy, int64_t exclude_key,
                                 double threshold) const;

 private:
  // Implicit segment tree over the attr-sorted points: node p >= n_ is the
  // single point at sorted position p - n_, internal node p unions its
  // children. Every node carries its own kD-tree; a threshold query walks
  // the canonical decomposition of the prefix [0, upper_bound(threshold)).
  int32_t n_ = 0;
  std::vector<double> attr_sorted_;
  std::vector<KdTree2D> seg_trees_;
};

}  // namespace sgl

#endif  // SGL_GEOM_KD_TREE_H_
