// Range-extremum tree: MIN/MAX aggregates over orthogonal ranges.
//
// min and max are not divisible (Definition 5.1) — prefix differences do
// not apply — but they are *decomposable*: an orthogonal range splits into
// O(log n) canonical nodes, and each node answers a contiguous y-slice
// with a per-node segment tree over its y-sorted entries. A probe costs
// O(log^2 n); build is O(n log n) time and space. This is the natural
// alternative the paper weighs against the Figure 9 sweep-line (which
// achieves O(log n) per probe but requires constant range extents);
// bench_minmax compares the two.
//
// Entries carry (value, key); ties are broken by smaller key so results
// are order-independent. MAX is served by negating values internally.
#ifndef SGL_GEOM_MINMAX_TREE_H_
#define SGL_GEOM_MINMAX_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/geom.h"

namespace sgl {

class MinMaxRangeTree2D {
 public:
  enum class Mode { kMin, kMax };

  /// Build over `points`; `values[p.id]` is the ordering value and
  /// `keys[p.id]` the tie-break/identity key of each point.
  MinMaxRangeTree2D(const std::vector<PointRef>& points,
                    const std::vector<double>& values,
                    const std::vector<int64_t>& keys, Mode mode);

  /// Extremum over `rect`; `Extremum::valid()` is false if the range is
  /// empty. For kMax the returned `value` is the true (un-negated) max.
  Extremum Query(const Rect& rect) const;

  int32_t num_points() const { return n_; }

 private:
  struct Node {
    int32_t lo = 0, hi = 0;
    int32_t left = -1, right = -1;
    std::vector<double> ys;     // subtree entries sorted by y
    std::vector<Extremum> seg;  // segment tree over the y-sorted entries
  };

  int32_t Build(int32_t lo, int32_t hi);
  void QueryRec(int32_t node_id, const Rect& rect, Extremum* best) const;
  static Extremum SegQuery(const Node& node, int32_t lo, int32_t hi);

  Mode mode_;
  int32_t n_ = 0;
  std::vector<double> xs_sorted_;
  std::vector<double> ys_of_;
  std::vector<Extremum> entry_of_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace sgl

#endif  // SGL_GEOM_MINMAX_TREE_H_
