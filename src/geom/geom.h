// Common geometric types shared by the index structures of Section 5.3.
#ifndef SGL_GEOM_GEOM_H_
#define SGL_GEOM_GEOM_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace sgl {

/// Closed axis-aligned rectangle [xlo, xhi] x [ylo, yhi]. Game scripts
/// probe rectangles because (Section 5.3.1) games use boxes — or L1 circles,
/// which are rotated boxes — for range and area-of-effect tests.
struct Rect {
  double xlo = 0.0;
  double xhi = 0.0;
  double ylo = 0.0;
  double yhi = 0.0;

  bool Contains(double x, double y) const {
    return x >= xlo && x <= xhi && y >= ylo && y <= yhi;
  }

  /// The box of half-extents (rx, ry) centred on (cx, cy).
  static Rect Around(double cx, double cy, double rx, double ry) {
    return Rect{cx - rx, cx + rx, cy - ry, cy + ry};
  }
};

/// A point with an application payload index. All index structures refer
/// to input points by their position `id` in the build arrays, so callers
/// can attach arbitrary per-point data (unit rows, aggregate terms).
struct PointRef {
  double x = 0.0;
  double y = 0.0;
  int32_t id = 0;
};

/// An (ordering value, tie-break key) pair for extremum indexes. Ordering
/// is lexicographic so results never depend on scan or sweep order.
struct Extremum {
  double value = std::numeric_limits<double>::infinity();
  int64_t key = std::numeric_limits<int64_t>::max();

  bool operator<(const Extremum& o) const {
    if (value != o.value) return value < o.value;
    return key < o.key;
  }
  bool valid() const {
    return value != std::numeric_limits<double>::infinity() ||
           key != std::numeric_limits<int64_t>::max();
  }
  static Extremum None() { return Extremum{}; }
  static Extremum Min(const Extremum& a, const Extremum& b) {
    return a < b ? a : b;
  }
};

/// Squared Euclidean distance (exact for integer-valued coordinates).
inline double SquaredDistance(double ax, double ay, double bx, double by) {
  double dx = ax - bx;
  double dy = ay - by;
  return dx * dx + dy * dy;
}

}  // namespace sgl

#endif  // SGL_GEOM_GEOM_H_
