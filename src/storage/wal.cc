#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/page.h"

namespace sgl {
namespace storage {

namespace {
constexpr char kWalMagic[6] = {'S', 'G', 'L', 'W', 'A', 'L'};
constexpr uint16_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 16;
constexpr size_t kWalFrameBytes = 13;  // u32 len + u8 type + u64 checksum
}  // namespace

void WalAppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

WalFile::~WalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalFile::WriteHeader(int64_t checkpoint_tick) {
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  WalAppendLE(&header, kWalVersion, 2);
  WalAppendLE(&header, static_cast<uint64_t>(checkpoint_tick), 8);
  if (::pwrite(fd_, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    return Status::Internal("storage: cannot write WAL header to ", path_,
                            ": ", std::strerror(errno));
  }
  checkpoint_tick_ = checkpoint_tick;
  return Status::OK();
}

Status WalFile::Open(const std::string& path) {
  path_ = path;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("storage: cannot open WAL ", path, ": ",
                            std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) return WriteHeader(0);
  uint8_t header[kWalHeaderBytes];
  if (size < static_cast<off_t>(kWalHeaderBytes) ||
      ::pread(fd_, header, kWalHeaderBytes, 0) !=
          static_cast<ssize_t>(kWalHeaderBytes) ||
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Invalid("storage: ", path, " is not a WAL (bad header)");
  }
  const uint64_t version = LoadLE(header + 6, 2);
  if (version != kWalVersion) {
    return Status::Invalid("storage: WAL ", path, " has unsupported version ",
                           version);
  }
  checkpoint_tick_ = static_cast<int64_t>(LoadLE(header + 8, 8));
  return Status::OK();
}

Status WalFile::Reset(int64_t checkpoint_tick) {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("storage: cannot truncate WAL ", path_, ": ",
                            std::strerror(errno));
  }
  return WriteHeader(checkpoint_tick);
}

Status WalFile::Append(WalRecordType type, const std::string& body,
                       int64_t* bytes) {
  std::string frame;
  frame.reserve(kWalFrameBytes + body.size());
  WalAppendLE(&frame, body.size(), 4);
  frame.push_back(static_cast<char>(type));
  WalAppendLE(&frame,
              Fnv1a(reinterpret_cast<const uint8_t*>(body.data()),
                    body.size()),
              8);
  frame.append(body);
  // One write() per record: the append either lands whole or becomes a
  // short tail the reader drops — never an interleaved half-frame.
  if (::pwrite(fd_, frame.data(), frame.size(),
               ::lseek(fd_, 0, SEEK_END)) !=
      static_cast<ssize_t>(frame.size())) {
    return Status::Internal("storage: WAL append failed on ", path_, ": ",
                            std::strerror(errno));
  }
  if (bytes != nullptr) *bytes += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status WalFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal("storage: fsync failed on WAL ", path_, ": ",
                            std::strerror(errno));
  }
  return Status::OK();
}

Status WalFile::ReadAll(std::vector<WalRecord>* out, bool* torn) const {
  *torn = false;
  out->clear();
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::Internal("storage: cannot reopen WAL ", path_);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < kWalHeaderBytes) {
    return Status::Invalid("storage: WAL ", path_, " lost its header");
  }
  size_t pos = kWalHeaderBytes;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  while (pos < bytes.size()) {
    if (pos + kWalFrameBytes > bytes.size()) {
      *torn = true;  // frame header cut off mid-append
      return Status::OK();
    }
    const uint64_t len = LoadLE(data + pos, 4);
    const auto type = static_cast<WalRecordType>(data[pos + 4]);
    const uint64_t checksum = LoadLE(data + pos + 5, 8);
    if (pos + kWalFrameBytes + len > bytes.size()) {
      *torn = true;  // body cut off mid-append
      return Status::OK();
    }
    if (Fnv1a(data + pos + kWalFrameBytes, len) != checksum) {
      return Status::Invalid("storage: WAL ", path_,
                             " record at byte ", pos,
                             " failed its checksum (corrupt log)");
    }
    out->push_back(WalRecord{
        type, bytes.substr(pos + kWalFrameBytes, len)});
    pos += kWalFrameBytes + len;
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace sgl
