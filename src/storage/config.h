// StorageConfig — the knob block SimulationConfig embeds to put the
// world table on disk (src/storage/). Lives here, not in the engine, so
// the storage layer stays engine-independent; SimulationConfig includes
// this header and delegates to Validate().
#ifndef SGL_STORAGE_CONFIG_H_
#define SGL_STORAGE_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace sgl {

/// Durable-world settings. Leaving `path` empty (the default) keeps the
/// simulation purely in memory with zero storage overhead — no listener
/// on the table, no pages, no log.
struct StorageConfig {
  /// Directory for the world's files (pages.sgl, wal.sgl, MANIFEST.sgl,
  /// inlet.sgl). Created if absent. Empty = storage disabled.
  std::string path;

  /// Bytes per on-disk page (24-byte header + 8-byte cells).
  int32_t page_size = 8192;

  /// Buffer-pool budget in pages. Capping this below the table's page
  /// count gives out-of-core operation (every tick faults and evicts).
  int32_t pool_pages = 256;

  /// Append per-tick delta records to the write-ahead log. Disabling
  /// this keeps checkpoints but loses replay (no crash recovery or
  /// time-travel between checkpoints).
  bool wal = true;

  /// Checkpoint automatically every N ticks (0 = only explicit
  /// Simulation::Checkpoint calls).
  int64_t checkpoint_every = 0;

  bool enabled() const { return !path.empty(); }

  /// Validation with SimulationConfig's message vocabulary.
  Status Validate() const;
};

}  // namespace sgl

#endif  // SGL_STORAGE_CONFIG_H_
