// On-disk page format shared by the page file, the buffer pool, and the
// manifest (src/storage/).
//
// A page is a fixed-size block: a 24-byte little-endian header followed
// by the payload. Every multi-byte field is written byte-by-byte in
// little-endian order — never a struct memcpy — so page files are
// identical across platforms, matching the SimulationSnapshot codec's
// contract. The checksum (FNV-1a over the payload) makes torn or
// bit-rotted pages detectable at read time; the page id in the header
// catches misdirected writes.
#ifndef SGL_STORAGE_PAGE_H_
#define SGL_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sgl {
namespace storage {

/// Logical page number. The world store maps (row chunk, column slot) to
/// page ids densely: id = chunk * num_slots + slot (slot 0 = keys).
using PageId = int64_t;

inline constexpr uint32_t kPageMagic = 0x53475047;  // "SGPG" little-endian
inline constexpr int32_t kPageHeaderBytes = 24;

/// FNV-1a 64-bit over `len` bytes — the storage layer's one checksum.
inline uint64_t Fnv1a(const uint8_t* data, size_t len,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline void StoreLE(uint8_t* dst, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    dst[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
}

inline uint64_t LoadLE(const uint8_t* src, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

/// Doubles travel as their raw IEEE-754 bit pattern (exact round-trip,
/// same convention as the SimulationSnapshot codec).
inline uint64_t PackDouble(double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

inline double UnpackDouble(uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Fill `page` (page_size bytes; payload already in place after the
/// header) with a valid header for `id`.
inline void SealPage(uint8_t* page, int32_t page_size, PageId id) {
  const uint8_t* payload = page + kPageHeaderBytes;
  const size_t payload_len =
      static_cast<size_t>(page_size - kPageHeaderBytes);
  StoreLE(page, kPageMagic, 4);
  StoreLE(page + 4, static_cast<uint64_t>(payload_len), 4);
  StoreLE(page + 8, static_cast<uint64_t>(id), 8);
  StoreLE(page + 16, Fnv1a(payload, payload_len), 8);
}

/// Verify a page read back from disk: magic, id, and payload checksum.
inline bool PageValid(const uint8_t* page, int32_t page_size, PageId id) {
  if (LoadLE(page, 4) != kPageMagic) return false;
  const size_t payload_len =
      static_cast<size_t>(page_size - kPageHeaderBytes);
  if (LoadLE(page + 4, 4) != payload_len) return false;
  if (LoadLE(page + 8, 8) != static_cast<uint64_t>(id)) return false;
  return LoadLE(page + 16, 8) == Fnv1a(page + kPageHeaderBytes, payload_len);
}

}  // namespace storage
}  // namespace sgl

#endif  // SGL_STORAGE_PAGE_H_
