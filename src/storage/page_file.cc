#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sgl {
namespace storage {

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, int32_t page_size) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("storage: cannot open page file ", path, ": ",
                            std::strerror(errno));
  }
  page_size_ = page_size;
  path_ = path;
  return Status::OK();
}

Status PageFile::ReadSlot(PageId page, int32_t slot, uint8_t* buf,
                          bool missing_ok) {
  ssize_t got = ::pread(fd_, buf, static_cast<size_t>(page_size_),
                        SlotOffset(page, slot));
  if (got < 0) {
    return Status::Internal("storage: pread failed on ", path_, ": ",
                            std::strerror(errno));
  }
  if (got == 0 && missing_ok) {
    // Past EOF: a page that was never checkpointed. Serve zeros.
    std::memset(buf, 0, static_cast<size_t>(page_size_));
    SealPage(buf, page_size_, page);
    return Status::OK();
  }
  if (got != page_size_ || !PageValid(buf, page_size_, page)) {
    return Status::Invalid("storage: page ", page, " of ", path_,
                           " failed its checksum (corrupt or torn write)");
  }
  return Status::OK();
}

Status PageFile::WriteSlot(PageId page, int32_t slot, uint8_t* buf) {
  SealPage(buf, page_size_, page);
  ssize_t put = ::pwrite(fd_, buf, static_cast<size_t>(page_size_),
                         SlotOffset(page, slot));
  if (put != page_size_) {
    return Status::Internal("storage: pwrite failed on ", path_, ": ",
                            std::strerror(errno));
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal("storage: fsync failed on ", path_, ": ",
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace sgl
