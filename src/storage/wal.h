// Write-ahead log of per-tick world deltas (src/storage/).
//
// The WAL is an append-only file of framed records; together with the
// page file's latest checkpoint it re-materializes any tick since that
// checkpoint (crash recovery and time-travel are the same replay loop).
// Layout, all little-endian:
//
//   header: "SGLWAL" u16:version u64:checkpoint_tick        (16 bytes)
//   record: u32:body_len u8:type u64:fnv1a(body) body       (13 + len)
//
// One simulation tick t appends, in order: TickBegin(t); the tick's
// structural ops exactly as they happened (AddRow with the assigned key
// and initial values, RemoveRows with the removed keys); one CellDeltas
// record holding the final value of every cell the tick dirtied (keyed
// by unit key, so row compaction cannot skew replay); TickCommit(t)
// carrying the table's next auto-key and row count. Replay applies the
// records of each committed tick in order — a tick whose records stop
// before TickCommit at the file's end is a torn tail (the crash
// interrupted the append) and is dropped; a checksum failure anywhere is
// corruption and rejects the whole log.
//
// Records are written with plain write() syscalls, so a process that
// dies without flushing anything (the kill-recover tests _exit mid-run)
// still leaves every appended record readable. fsync is reserved for
// checkpoints; see StorageConfig.
#ifndef SGL_STORAGE_WAL_H_
#define SGL_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sgl {
namespace storage {

enum class WalRecordType : uint8_t {
  kTickBegin = 1,
  kAddRow = 2,
  kRemoveRows = 3,
  kCellDeltas = 4,
  kTickCommit = 5,
};

/// One parsed record: the type tag plus its raw body bytes (the world
/// store decodes bodies with the same LE helpers that built them).
struct WalRecord {
  WalRecordType type;
  std::string body;
};

/// Append `v`'s low `bytes` bytes little-endian (record-body builder).
void WalAppendLE(std::string* out, uint64_t v, int bytes);

class WalFile {
 public:
  WalFile() = default;
  ~WalFile();

  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  /// Open `path`, creating an empty log (header with checkpoint_tick 0)
  /// when absent. An existing file must start with a valid header.
  Status Open(const std::string& path);

  int64_t checkpoint_tick() const { return checkpoint_tick_; }

  /// Truncate to a fresh header stamped with `checkpoint_tick` — the
  /// checkpoint just published covers everything the log held.
  Status Reset(int64_t checkpoint_tick);

  /// Frame and append one record. Returns bytes appended via `*bytes`.
  Status Append(WalRecordType type, const std::string& body, int64_t* bytes);

  Status Sync();

  /// Re-read the file and parse every complete record. A torn tail (a
  /// frame or header cut off by the file's end) stops the parse and sets
  /// `*torn`; a checksum mismatch on a complete record is an
  /// InvalidArgument (corruption, not a torn append).
  Status ReadAll(std::vector<WalRecord>* out, bool* torn) const;

 private:
  Status WriteHeader(int64_t checkpoint_tick);

  int fd_ = -1;
  std::string path_;
  int64_t checkpoint_tick_ = 0;
};

}  // namespace storage
}  // namespace sgl

#endif  // SGL_STORAGE_WAL_H_
