// WorldStore — the durable world behind EnvironmentTable: buffer-pool
// pages + write-ahead delta log + manifest, one directory per world.
//
// Files under StorageConfig::path:
//   pages.sgl     the table's column chunks, two physical slots per
//                 logical page (shadow paging; see page_file.h)
//   wal.sgl       per-tick delta records since the last checkpoint
//   MANIFEST.sgl  the durable root: checkpoint tick, schema, row count,
//                 next auto-key, and the committed-slot bit per page —
//                 published by atomic rename, so it either names the old
//                 checkpoint or the new one, never a half state
//
// Page mapping: rows are split into chunks of rows_per_page; page id =
// chunk * num_slots + slot, where slot 0 holds the keys column and slot
// a holds attribute a. Cells are 8 bytes (raw IEEE-754 bits for attrs),
// so every table value round-trips exactly.
//
// The store listens to the live table (TableDeltaListener) and keeps
// two delta accumulators over the same events:
//   - the WAL set, harvested once per tick by CommitTick into one
//     CellDeltas record (final end-of-tick values, keyed by unit key)
//     plus the tick's structural ops in occurrence order;
//   - the pool set, drained by FlushPoolDeltas into the page cache.
// They drain at different times because shard ghost refresh reads pages
// mid-tick (after action drain + effect reset, before decisions), so
// the pool must be current then, while WAL records must describe the
// whole tick.
//
// Checkpoint = flush dirty frames to scratch slots, fsync, promote the
// scratch slots, publish the manifest (write-temp + fsync + rename),
// truncate the WAL. Cost is O(pages touched since the last checkpoint),
// not O(table). Recover/Materialize = load the manifest's committed
// image and replay committed WAL ticks; a torn trailing tick (crash
// mid-append) is dropped, a checksum failure anywhere is corruption.
#ifndef SGL_STORAGE_WORLD_STORE_H_
#define SGL_STORAGE_WORLD_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "env/table.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/config.h"
#include "storage/page_file.h"
#include "storage/wal.h"
#include "util/status.h"

namespace sgl {
namespace storage {

/// mkdir -p: create every missing component of `path`.
Status MakeDirs(const std::string& path);

/// A world state rebuilt from disk: the table plus the tick it is at.
struct RecoveredWorld {
  EnvironmentTable table{Schema()};
  int64_t tick = 0;
};

class WorldStore : public TableDeltaListener {
 public:
  /// Open (creating if needed) the world directory. `metrics` may be
  /// null; otherwise storage.* counters are registered on it.
  static Result<std::unique_ptr<WorldStore>> Open(
      const StorageConfig& config, obs::MetricsRegistry* metrics);

  ~WorldStore() override = default;

  const StorageConfig& config() const { return config_; }

  /// True when the directory held a manifest at Open — a recoverable
  /// world exists and CommitTick refuses to run until the simulation
  /// either restores from it or explicitly checkpoints over it.
  bool has_world() const { return has_world_; }
  bool synced() const { return synced_; }

  /// Publish `table` at state `tick` as the new durable checkpoint and
  /// truncate the WAL. On the first checkpoint into a directory (or
  /// over an unrestored world) every page is written; afterwards only
  /// pages touched since the previous checkpoint are.
  Status Checkpoint(const EnvironmentTable& table, int64_t tick);

  /// End-of-tick hook: append tick `tick`'s delta records to the WAL,
  /// sync the page cache with the table, and auto-checkpoint when
  /// checkpoint_every divides the new state tick.
  Status CommitTick(const EnvironmentTable& table, int64_t tick);

  /// Bring cached pages up to date with `table` (applies the pending
  /// pool delta set). Called by CommitTick and, mid-tick, by the shard
  /// runtime before ghost reads.
  Status FlushPoolDeltas(const EnvironmentTable& table);

  /// Read row `row`'s attribute values (attrs 1..k into values[0..k-1])
  /// through the buffer pool. Thread-safe; the page cache must be
  /// current (FlushPoolDeltas) for rows written this tick.
  Status ReadRow(RowId row, std::vector<double>* values);

  /// Rebuild the latest durable state: checkpoint image + full WAL
  /// replay (dropping a torn trailing tick).
  Result<RecoveredWorld> Recover();

  /// Rebuild the exact state at `tick` (checkpoint_tick <= tick <=
  /// latest committed tick) — time travel through the same replay path.
  Result<RecoveredWorld> Materialize(int64_t tick);

  /// The simulation installed a table that matches the durable world
  /// (RestoreFrom) — ticking may proceed, and the next pool flush must
  /// rewrite from row 0 because cached pages predate the install.
  void MarkWorldInstalled();

  // TableDeltaListener — fed by the live table; driver thread only.
  void OnCellWrite(int64_t key, AttrId attr) override;
  void OnAddRow(int64_t key, RowId row,
                const std::vector<double>& values) override;
  void OnRemoveRows(RowId first_row, const std::vector<int64_t>& keys) override;

 private:
  /// One structural table op, replayed in occurrence order.
  struct StructOp {
    bool add = false;
    int64_t key = 0;              // add
    std::vector<double> values;   // add
    std::vector<int64_t> keys;    // remove
  };

  explicit WorldStore(StorageConfig config) : config_(std::move(config)) {}

  void SetLayout(const Schema& schema);
  PageId PageOf(RowId row, int32_t slot) const {
    return static_cast<PageId>(row / rows_per_page_) * num_slots_ + slot;
  }
  int32_t CellOffset(RowId row) const { return (row % rows_per_page_) * 8; }

  /// Append attr ids 1..k selected by a TableChanges-style bit mask
  /// (bit min(a, 63); bit 63 is coarse and expands to all attrs >= 63).
  void ExpandMask(uint64_t mask, std::vector<AttrId>* out) const;

  /// Write one cell through the pool (page must already exist).
  Status WriteCell(RowId row, int32_t slot, uint64_t bits);

  /// Rewrite every page covering rows >= from_row from `table`.
  Status RewriteRows(const EnvironmentTable& table, RowId from_row);

  Status WriteManifest(const EnvironmentTable& table, int64_t tick);
  struct Manifest {
    int64_t tick = 0;
    int64_t next_key = 0;
    int32_t num_rows = 0;
    Schema schema;
    std::vector<uint8_t> committed;
  };
  Result<Manifest> ReadManifest() const;

  /// Shared Recover/Materialize body; `target` < 0 means latest.
  Result<RecoveredWorld> Replay(int64_t target);

  StorageConfig config_;
  std::string manifest_path_;
  PageFile file_;
  WalFile wal_;
  std::unique_ptr<BufferPool> pool_;

  int32_t num_slots_ = 0;      // schema.NumAttrs(); slot 0 = keys
  int32_t rows_per_page_ = 0;  // (page_size - header) / 8
  bool has_world_ = false;
  bool synced_ = false;

  // WAL accumulator (cleared each CommitTick).
  std::map<int64_t, uint64_t> wal_cells_;  // key -> changed-attr mask
  std::vector<StructOp> wal_ops_;

  // Pool accumulator (cleared each FlushPoolDeltas).
  std::map<int64_t, uint64_t> pool_cells_;
  RowId pool_struct_min_ = -1;  // lowest structurally-affected row; -1 = none

  obs::Counter* wal_bytes_ = nullptr;
  obs::Counter* wal_records_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* pool_hits_ = nullptr;
  obs::Counter* pool_misses_ = nullptr;
  obs::Counter* pool_evictions_ = nullptr;
};

}  // namespace storage
}  // namespace sgl

#endif  // SGL_STORAGE_WORLD_STORE_H_
