// BufferPool — a fixed budget of in-memory page frames over a PageFile,
// with pin/unpin discipline and clock (second-chance) eviction.
//
// The pool is the only path to page bytes: readers and writers Pin a
// page (faulting it from its current physical slot on a miss, possibly
// evicting an unpinned frame — dirty victims are written back to the
// page's scratch slot first), operate on the returned payload, and
// Unpin, marking the frame dirty when they wrote. Capping `pool_pages`
// below the table's page count therefore gives genuine out-of-core
// operation: every tick faults and evicts.
//
// The pool also owns the per-page slot state of the shadow-paging
// scheme (see page_file.h): `committed` says which physical slot the
// latest manifest points at, `scratch_valid` says the other slot holds
// newer (uncommitted) bytes. Misses read the newest valid slot;
// evictions and checkpoint flushes write the scratch slot; a checkpoint
// promotes every scratch slot to committed before the manifest rename
// publishes the flip.
//
// Thread safety: Pin/Unpin are serialized by one mutex so parallel
// shard-worker ghost reads are safe; a pinned frame's payload may be
// read outside the lock (pin_count blocks eviction, frames never move).
#ifndef SGL_STORAGE_BUFFER_POOL_H_
#define SGL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace sgl {
namespace storage {

class BufferPool {
 public:
  /// A pinned page: `payload` is the page's data area (payload_size()
  /// bytes, header excluded). Valid until Unpin.
  struct Pinned {
    uint8_t* payload = nullptr;
    int32_t frame = -1;
  };

  /// `file` must outlive the pool. `pool_pages` >= 2.
  BufferPool(PageFile* file, int32_t page_size, int32_t pool_pages);

  /// Optional counters (storage.pool.*); null pointers are skipped.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  int32_t payload_size() const { return page_size_ - kPageHeaderBytes; }

  /// Pin `id`. With `create`, the frame starts zeroed without touching
  /// disk (the caller is about to overwrite the whole page); otherwise a
  /// miss faults the newest valid slot and verifies its checksum.
  Result<Pinned> Pin(PageId id, bool create);

  /// Release a pin; `dirty` records that the payload was modified.
  void Unpin(const Pinned& pinned, bool dirty);

  /// Write every dirty frame to its page's scratch slot (frames stay
  /// resident and become clean). Returns pages written via `*written`.
  Status FlushDirty(int64_t* written);

  /// Checkpoint publication: flip the committed bit of every page whose
  /// scratch slot holds newer bytes. Call only after FlushDirty + fsync.
  void PromoteScratch();

  /// The committed-slot bit per page (index = PageId), for the manifest.
  const std::vector<uint8_t>& committed_bits() const { return committed_; }

  /// Install the committed-slot bits read back from a manifest.
  void LoadCommittedBits(std::vector<uint8_t> bits);

  /// Drop every cached frame (recovery is about to re-read the durable
  /// image, so resident bytes — possibly newer than the checkpoint —
  /// must not satisfy its faults). All frames must be unpinned.
  Status InvalidateAll();

 private:
  struct Frame {
    PageId page = -1;  // -1 = free
    int32_t pin_count = 0;
    bool dirty = false;
    bool ref = false;  // clock second-chance bit
    std::unique_ptr<uint8_t[]> bytes;
  };

  /// Grow the per-page slot-state vectors to cover `id`.
  void EnsurePage(PageId id);

  /// Pick a victim frame by clock sweep, writing it back if dirty.
  Result<int32_t> Evict();

  int32_t ScratchSlot(PageId id) const { return 1 - committed_[id]; }
  int32_t NewestSlot(PageId id) const {
    return scratch_valid_[id] ? ScratchSlot(id) : committed_[id];
  }

  PageFile* file_;
  const int32_t page_size_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int32_t> page_to_frame_;
  int32_t clock_hand_ = 0;
  std::vector<uint8_t> committed_;      // per page: committed slot (0/1)
  std::vector<uint8_t> scratch_valid_;  // per page: scratch newer than committed

  std::mutex mu_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace storage
}  // namespace sgl

#endif  // SGL_STORAGE_BUFFER_POOL_H_
