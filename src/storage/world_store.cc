#include "storage/world_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "storage/page.h"

namespace sgl {

Status StorageConfig::Validate() const {
  if (!enabled()) return Status::OK();
  if (page_size < 64 || page_size > (1 << 22)) {
    return Status::Invalid(
        "SimulationConfig: storage.page_size must be in [64, 4194304], got ",
        page_size);
  }
  if (pool_pages < 4) {
    return Status::Invalid(
        "SimulationConfig: storage.pool_pages must be >= 4, got ", pool_pages);
  }
  if (checkpoint_every < 0) {
    return Status::Invalid(
        "SimulationConfig: storage.checkpoint_every must be >= 0, got ",
        checkpoint_every);
  }
  return Status::OK();
}

namespace storage {

Status MakeDirs(const std::string& path) {
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    partial = path.substr(0, next);
    pos = next + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("storage: cannot create directory ", partial,
                              ": ", std::strerror(errno));
    }
  }
  return Status::OK();
}

namespace {

constexpr char kManifestMagic[6] = {'S', 'G', 'L', 'M', 'A', 'N'};
constexpr uint16_t kManifestVersion = 1;

/// Bounds-checked little-endian cursor over a record body or manifest.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(reinterpret_cast<const uint8_t*>(bytes.data()),
                   bytes.size()) {}

  Status Read(uint64_t* out, int bytes) {
    if (pos_ + static_cast<size_t>(bytes) > size_) {
      return Status::Invalid("storage: record truncated at byte ", pos_);
    }
    *out = LoadLE(data_ + pos_, bytes);
    pos_ += static_cast<size_t>(bytes);
    return Status::OK();
  }

  Status ReadString(std::string* out, size_t len) {
    if (pos_ + len > size_) {
      return Status::Invalid("storage: record truncated at byte ", pos_);
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<WorldStore>> WorldStore::Open(
    const StorageConfig& config, obs::MetricsRegistry* metrics) {
  SGL_RETURN_NOT_OK(config.Validate());
  if (!config.enabled()) {
    return Status::Invalid("storage: WorldStore::Open needs a non-empty path");
  }
  SGL_RETURN_NOT_OK(MakeDirs(config.path));
  std::unique_ptr<WorldStore> store(new WorldStore(config));
  SGL_RETURN_NOT_OK(
      store->file_.Open(config.path + "/pages.sgl", config.page_size));
  SGL_RETURN_NOT_OK(store->wal_.Open(config.path + "/wal.sgl"));
  store->pool_ = std::make_unique<BufferPool>(&store->file_, config.page_size,
                                              config.pool_pages);
  store->manifest_path_ = config.path + "/MANIFEST.sgl";
  store->has_world_ = ::access(store->manifest_path_.c_str(), F_OK) == 0;
  if (metrics != nullptr) {
    // Exec-dependent like shard.*: pool traffic depends on eviction
    // order and whether storage is even on, so the deterministic metric
    // subset stays comparable between storage-backed and in-memory runs.
    const uint32_t exec_dep = obs::kMetricExecDependent;
    store->wal_bytes_ = metrics->GetCounter("storage.wal.bytes", exec_dep);
    store->wal_records_ = metrics->GetCounter("storage.wal.records", exec_dep);
    store->fsyncs_ = metrics->GetCounter("storage.fsyncs", exec_dep);
    store->checkpoints_ = metrics->GetCounter("storage.checkpoints", exec_dep);
    store->pool_hits_ = metrics->GetCounter("storage.pool.hits", exec_dep);
    store->pool_misses_ = metrics->GetCounter("storage.pool.misses", exec_dep);
    store->pool_evictions_ =
        metrics->GetCounter("storage.pool.evictions", exec_dep);
    store->pool_->BindMetrics(store->pool_hits_, store->pool_misses_,
                              store->pool_evictions_);
    metrics->GetGauge("storage.pool.pages", exec_dep)
        ->Set(config.pool_pages);
  }
  return store;
}

void WorldStore::SetLayout(const Schema& schema) {
  num_slots_ = schema.NumAttrs();
  rows_per_page_ = (config_.page_size - kPageHeaderBytes) / 8;
}

void WorldStore::ExpandMask(uint64_t mask, std::vector<AttrId>* out) const {
  out->clear();
  for (AttrId a = 1; a < num_slots_; ++a) {
    if ((mask >> (a < 63 ? a : 63)) & 1) out->push_back(a);
  }
}

// --- TableDeltaListener ----------------------------------------------------

void WorldStore::OnCellWrite(int64_t key, AttrId attr) {
  const uint64_t bit = TableChanges::BitOf(attr);
  wal_cells_[key] |= bit;
  pool_cells_[key] |= bit;
}

void WorldStore::OnAddRow(int64_t key, RowId row,
                          const std::vector<double>& values) {
  StructOp op;
  op.add = true;
  op.key = key;
  op.values = values;
  wal_ops_.push_back(std::move(op));
  // The structural rewrite re-pages every row from `row` up, so the new
  // row's cells need no pool_cells_ entries.
  if (pool_struct_min_ < 0 || row < pool_struct_min_) pool_struct_min_ = row;
}

void WorldStore::OnRemoveRows(RowId first_row,
                              const std::vector<int64_t>& keys) {
  StructOp op;
  op.add = false;
  op.keys = keys;
  wal_ops_.push_back(std::move(op));
  if (pool_struct_min_ < 0 || first_row < pool_struct_min_) {
    pool_struct_min_ = first_row;
  }
}

// --- page-cache maintenance ------------------------------------------------

Status WorldStore::WriteCell(RowId row, int32_t slot, uint64_t bits) {
  SGL_ASSIGN_OR_RETURN(auto pinned, pool_->Pin(PageOf(row, slot),
                                               /*create=*/false));
  StoreLE(pinned.payload + CellOffset(row), bits, 8);
  pool_->Unpin(pinned, /*dirty=*/true);
  return Status::OK();
}

Status WorldStore::RewriteRows(const EnvironmentTable& table, RowId from_row) {
  const RowId n = table.NumRows();
  const int64_t first_chunk = from_row / rows_per_page_;
  const int64_t num_chunks = (n + rows_per_page_ - 1) / rows_per_page_;
  for (int64_t chunk = first_chunk; chunk < num_chunks; ++chunk) {
    const RowId begin = static_cast<RowId>(chunk * rows_per_page_);
    const RowId end = std::min(n, begin + rows_per_page_);
    for (int32_t slot = 0; slot < num_slots_; ++slot) {
      // create=true: the whole payload is about to be overwritten, so a
      // fresh zeroed frame beats a disk read even for existing pages.
      SGL_ASSIGN_OR_RETURN(
          auto pinned, pool_->Pin(chunk * num_slots_ + slot, /*create=*/true));
      for (RowId r = begin; r < end; ++r) {
        const uint64_t bits =
            slot == 0 ? static_cast<uint64_t>(table.KeyAt(r))
                      : PackDouble(table.Get(r, slot));
        StoreLE(pinned.payload + CellOffset(r), bits, 8);
      }
      pool_->Unpin(pinned, /*dirty=*/true);
    }
  }
  return Status::OK();
}

Status WorldStore::FlushPoolDeltas(const EnvironmentTable& table) {
  if (pool_struct_min_ < 0 && pool_cells_.empty()) return Status::OK();
  if (num_slots_ == 0) SetLayout(table.schema());
  RowId rewritten_from = std::numeric_limits<RowId>::max();
  if (pool_struct_min_ >= 0) {
    rewritten_from = pool_struct_min_;
    SGL_RETURN_NOT_OK(RewriteRows(table, pool_struct_min_));
  }
  std::vector<AttrId> attrs;
  for (const auto& entry : pool_cells_) {
    const RowId row = table.RowOf(entry.first);
    // Removed keys and rewritten rows are already on their pages.
    if (row < 0 || row >= rewritten_from) continue;
    ExpandMask(entry.second, &attrs);
    for (AttrId a : attrs) {
      SGL_RETURN_NOT_OK(WriteCell(row, a, PackDouble(table.Get(row, a))));
    }
  }
  pool_cells_.clear();
  pool_struct_min_ = -1;
  return Status::OK();
}

Status WorldStore::ReadRow(RowId row, std::vector<double>* values) {
  values->resize(static_cast<size_t>(num_slots_ - 1));
  for (int32_t slot = 1; slot < num_slots_; ++slot) {
    SGL_ASSIGN_OR_RETURN(auto pinned, pool_->Pin(PageOf(row, slot),
                                                 /*create=*/false));
    (*values)[slot - 1] =
        UnpackDouble(LoadLE(pinned.payload + CellOffset(row), 8));
    pool_->Unpin(pinned, /*dirty=*/false);
  }
  return Status::OK();
}

// --- the per-tick WAL append ----------------------------------------------

Status WorldStore::CommitTick(const EnvironmentTable& table, int64_t tick) {
  if (!synced_) {
    return Status::Internal(
        "storage: the world at ", config_.path,
        " holds a checkpoint this simulation has not restored; call "
        "RestoreFrom to resume it or Checkpoint to overwrite it before "
        "ticking");
  }
  if (num_slots_ == 0) SetLayout(table.schema());
  if (config_.wal) {
    int64_t bytes = 0;
    int64_t records = 0;
    std::string body;
    WalAppendLE(&body, static_cast<uint64_t>(tick), 8);
    SGL_RETURN_NOT_OK(wal_.Append(WalRecordType::kTickBegin, body, &bytes));
    ++records;
    for (const StructOp& op : wal_ops_) {
      body.clear();
      if (op.add) {
        WalAppendLE(&body, static_cast<uint64_t>(op.key), 8);
        WalAppendLE(&body, op.values.size(), 4);
        for (double v : op.values) WalAppendLE(&body, PackDouble(v), 8);
        SGL_RETURN_NOT_OK(wal_.Append(WalRecordType::kAddRow, body, &bytes));
      } else {
        WalAppendLE(&body, op.keys.size(), 4);
        for (int64_t k : op.keys) {
          WalAppendLE(&body, static_cast<uint64_t>(k), 8);
        }
        SGL_RETURN_NOT_OK(
            wal_.Append(WalRecordType::kRemoveRows, body, &bytes));
      }
      ++records;
    }
    // One CellDeltas record: the final value of every surviving cell the
    // tick dirtied, sorted by key (wal_cells_ is an ordered map).
    std::string cells;
    uint32_t count = 0;
    std::vector<AttrId> attrs;
    for (const auto& entry : wal_cells_) {
      const RowId row = table.RowOf(entry.first);
      if (row < 0) continue;  // written then removed within the tick
      ExpandMask(entry.second, &attrs);
      for (AttrId a : attrs) {
        WalAppendLE(&cells, static_cast<uint64_t>(entry.first), 8);
        WalAppendLE(&cells, static_cast<uint64_t>(a), 4);
        WalAppendLE(&cells, PackDouble(table.Get(row, a)), 8);
        ++count;
      }
    }
    body.clear();
    WalAppendLE(&body, count, 4);
    body.append(cells);
    SGL_RETURN_NOT_OK(wal_.Append(WalRecordType::kCellDeltas, body, &bytes));
    ++records;
    body.clear();
    WalAppendLE(&body, static_cast<uint64_t>(tick), 8);
    WalAppendLE(&body, static_cast<uint64_t>(table.next_key()), 8);
    WalAppendLE(&body, static_cast<uint64_t>(table.NumRows()), 4);
    SGL_RETURN_NOT_OK(wal_.Append(WalRecordType::kTickCommit, body, &bytes));
    ++records;
    if (wal_bytes_ != nullptr) wal_bytes_->Add(bytes);
    if (wal_records_ != nullptr) wal_records_->Add(records);
  }
  wal_ops_.clear();
  wal_cells_.clear();
  SGL_RETURN_NOT_OK(FlushPoolDeltas(table));
  if (config_.checkpoint_every > 0 &&
      (tick + 1) % config_.checkpoint_every == 0) {
    SGL_RETURN_NOT_OK(Checkpoint(table, tick + 1));
  }
  return Status::OK();
}

// --- checkpoint ------------------------------------------------------------

Status WorldStore::Checkpoint(const EnvironmentTable& table, int64_t tick) {
  if (num_slots_ == 0) SetLayout(table.schema());
  if (!synced_) {
    // First checkpoint into this directory (or an explicit overwrite of
    // an unrestored world): drop stale accumulators, write a full image.
    wal_ops_.clear();
    wal_cells_.clear();
    pool_cells_.clear();
    pool_struct_min_ = 0;
    synced_ = true;
  }
  SGL_RETURN_NOT_OK(FlushPoolDeltas(table));
  SGL_RETURN_NOT_OK(pool_->FlushDirty(nullptr));
  SGL_RETURN_NOT_OK(file_.Sync());
  if (fsyncs_ != nullptr) fsyncs_->Add(1);
  pool_->PromoteScratch();
  SGL_RETURN_NOT_OK(WriteManifest(table, tick));
  SGL_RETURN_NOT_OK(wal_.Reset(tick));
  SGL_RETURN_NOT_OK(wal_.Sync());
  if (fsyncs_ != nullptr) fsyncs_->Add(1);
  if (checkpoints_ != nullptr) checkpoints_->Add(1);
  has_world_ = true;
  return Status::OK();
}

Status WorldStore::WriteManifest(const EnvironmentTable& table, int64_t tick) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  WalAppendLE(&out, kManifestVersion, 2);
  WalAppendLE(&out, static_cast<uint64_t>(tick), 8);
  WalAppendLE(&out, static_cast<uint64_t>(table.next_key()), 8);
  WalAppendLE(&out, static_cast<uint64_t>(table.NumRows()), 4);
  WalAppendLE(&out, static_cast<uint64_t>(config_.page_size), 4);
  const Schema& schema = table.schema();
  WalAppendLE(&out, static_cast<uint64_t>(schema.NumAttrs()), 4);
  for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
    const Attribute& attr = schema.attr(a);
    WalAppendLE(&out, static_cast<uint64_t>(attr.combine), 1);
    WalAppendLE(&out, attr.name.size(), 4);
    out.append(attr.name);
  }
  const std::vector<uint8_t>& committed = pool_->committed_bits();
  WalAppendLE(&out, committed.size(), 4);
  out.append(reinterpret_cast<const char*>(committed.data()),
             committed.size());
  WalAppendLE(&out,
              Fnv1a(reinterpret_cast<const uint8_t*>(out.data()), out.size()),
              8);

  // Write-temp + fsync + rename: the manifest names either the previous
  // checkpoint or this one, never a torn mixture.
  const std::string tmp = manifest_path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("storage: cannot create ", tmp, ": ",
                            std::strerror(errno));
  }
  const bool wrote =
      ::write(fd, out.data(), out.size()) == static_cast<ssize_t>(out.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    return Status::Internal("storage: cannot write manifest ", tmp, ": ",
                            std::strerror(errno));
  }
  if (fsyncs_ != nullptr) fsyncs_->Add(1);
  if (::rename(tmp.c_str(), manifest_path_.c_str()) != 0) {
    return Status::Internal("storage: cannot publish manifest ",
                            manifest_path_, ": ", std::strerror(errno));
  }
  return Status::OK();
}

Result<WorldStore::Manifest> WorldStore::ReadManifest() const {
  std::ifstream in(manifest_path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("storage: no manifest at ", manifest_path_);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < sizeof(kManifestMagic) + 8 ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Invalid("storage: ", manifest_path_,
                           " is not a world manifest (bad magic)");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint64_t stored = LoadLE(data + bytes.size() - 8, 8);
  if (Fnv1a(data, bytes.size() - 8) != stored) {
    return Status::Invalid("storage: manifest ", manifest_path_,
                           " failed its checksum (corrupt)");
  }
  ByteReader reader(data + sizeof(kManifestMagic),
                    bytes.size() - sizeof(kManifestMagic) - 8);
  uint64_t version = 0;
  SGL_RETURN_NOT_OK(reader.Read(&version, 2));
  if (version != kManifestVersion) {
    return Status::Invalid("storage: manifest ", manifest_path_,
                           " has unsupported version ", version);
  }
  Manifest m;
  uint64_t v = 0;
  SGL_RETURN_NOT_OK(reader.Read(&v, 8));
  m.tick = static_cast<int64_t>(v);
  SGL_RETURN_NOT_OK(reader.Read(&v, 8));
  m.next_key = static_cast<int64_t>(v);
  SGL_RETURN_NOT_OK(reader.Read(&v, 4));
  m.num_rows = static_cast<int32_t>(v);
  SGL_RETURN_NOT_OK(reader.Read(&v, 4));
  if (static_cast<int32_t>(v) != config_.page_size) {
    return Status::Invalid("storage: the world at ", config_.path,
                           " was written with page_size ", v,
                           " but storage.page_size is ", config_.page_size);
  }
  uint64_t num_attrs = 0;
  SGL_RETURN_NOT_OK(reader.Read(&num_attrs, 4));
  if (num_attrs < 1) {
    return Status::Invalid("storage: manifest schema has no key attribute");
  }
  for (uint64_t a = 0; a < num_attrs; ++a) {
    uint64_t combine = 0;
    SGL_RETURN_NOT_OK(reader.Read(&combine, 1));
    if (combine > static_cast<uint64_t>(CombineType::kSet)) {
      return Status::Invalid("storage: manifest attribute ", a,
                             " has unknown combine tag ", combine);
    }
    uint64_t name_len = 0;
    SGL_RETURN_NOT_OK(reader.Read(&name_len, 4));
    std::string name;
    SGL_RETURN_NOT_OK(reader.ReadString(&name, name_len));
    if (a == 0) {
      if (name != m.schema.attr(kKeyAttrId).name ||
          static_cast<CombineType>(combine) != CombineType::kConst) {
        return Status::Invalid("storage: manifest attribute 0 is '", name,
                               "', expected the const key attribute");
      }
      continue;
    }
    SGL_RETURN_NOT_OK(
        m.schema.AddAttribute(name, static_cast<CombineType>(combine))
            .status());
  }
  uint64_t num_pages = 0;
  SGL_RETURN_NOT_OK(reader.Read(&num_pages, 4));
  std::string bits;
  SGL_RETURN_NOT_OK(reader.ReadString(&bits, num_pages));
  m.committed.assign(bits.begin(), bits.end());
  if (reader.remaining() != 0) {
    return Status::Invalid("storage: manifest has ", reader.remaining(),
                           " trailing byte(s)");
  }
  return m;
}

// --- recovery / time travel ------------------------------------------------

Result<RecoveredWorld> WorldStore::Recover() { return Replay(-1); }

Result<RecoveredWorld> WorldStore::Materialize(int64_t tick) {
  if (tick < 0) {
    return Status::Invalid("storage: cannot materialize negative tick ", tick);
  }
  return Replay(tick);
}

Result<RecoveredWorld> WorldStore::Replay(int64_t target) {
  if (!has_world_) {
    return Status::NotFound("storage: no checkpoint in ", config_.path);
  }
  SGL_ASSIGN_OR_RETURN(Manifest m, ReadManifest());
  SetLayout(m.schema);
  // Replay reads the durable image, not whatever the pool cached since,
  // and leaves the cache describing the replayed state rather than the
  // live table — so the store is unsynced until MarkWorldInstalled.
  synced_ = false;
  SGL_RETURN_NOT_OK(pool_->InvalidateAll());
  pool_->LoadCommittedBits(m.committed);
  if (target >= 0 && target < m.tick) {
    return Status::Invalid("storage: tick ", target,
                           " predates the checkpoint at tick ", m.tick,
                           " (earlier states were overwritten)");
  }

  // Rebuild the checkpoint image by reading every column chunk through
  // the pool (page checksums verify on fault).
  EnvironmentTable table{m.schema};
  std::vector<double> values(static_cast<size_t>(num_slots_ - 1));
  for (RowId row = 0; row < m.num_rows; ++row) {
    SGL_ASSIGN_OR_RETURN(auto key_page, pool_->Pin(PageOf(row, 0),
                                                   /*create=*/false));
    const int64_t key =
        static_cast<int64_t>(LoadLE(key_page.payload + CellOffset(row), 8));
    pool_->Unpin(key_page, /*dirty=*/false);
    SGL_RETURN_NOT_OK(ReadRow(row, &values));
    SGL_RETURN_NOT_OK(table.AddRowWithKey(key, values));
  }
  table.SetNextKey(m.next_key);
  int64_t state = m.tick;

  if (target != m.tick) {
    if (wal_.checkpoint_tick() != m.tick) {
      return Status::Invalid("storage: WAL covers ticks from ",
                             wal_.checkpoint_tick(),
                             " but the manifest checkpoint is at tick ",
                             m.tick, " (mismatched files)");
    }
    std::vector<WalRecord> records;
    bool torn = false;
    SGL_RETURN_NOT_OK(wal_.ReadAll(&records, &torn));
    size_t i = 0;
    while (i < records.size() && (target < 0 || state < target)) {
      if (records[i].type != WalRecordType::kTickBegin) {
        return Status::Invalid(
            "storage: WAL replay expected TickBegin, found record type ",
            static_cast<int>(records[i].type));
      }
      ByteReader begin(records[i].body);
      uint64_t t = 0;
      SGL_RETURN_NOT_OK(begin.Read(&t, 8));
      if (static_cast<int64_t>(t) != state) {
        return Status::Invalid("storage: WAL tick ", t,
                               " out of sequence (expected ", state, ")");
      }
      // A tick counts only when its TickCommit landed; records past the
      // last commit are a torn tail (the crash interrupted the append).
      size_t commit = i + 1;
      while (commit < records.size() &&
             records[commit].type != WalRecordType::kTickCommit) {
        if (records[commit].type == WalRecordType::kTickBegin) {
          return Status::Invalid("storage: WAL tick ", t,
                                 " has no commit record (corrupt log)");
        }
        ++commit;
      }
      if (commit == records.size()) break;  // torn tail: drop the tick

      for (size_t r = i + 1; r < commit; ++r) {
        ByteReader body(records[r].body);
        switch (records[r].type) {
          case WalRecordType::kAddRow: {
            uint64_t key = 0;
            uint64_t n = 0;
            SGL_RETURN_NOT_OK(body.Read(&key, 8));
            SGL_RETURN_NOT_OK(body.Read(&n, 4));
            std::vector<double> row_values(n);
            for (uint64_t c = 0; c < n; ++c) {
              uint64_t bits = 0;
              SGL_RETURN_NOT_OK(body.Read(&bits, 8));
              row_values[c] = UnpackDouble(bits);
            }
            SGL_RETURN_NOT_OK(table.AddRowWithKey(static_cast<int64_t>(key),
                                                  row_values));
            break;
          }
          case WalRecordType::kRemoveRows: {
            uint64_t n = 0;
            SGL_RETURN_NOT_OK(body.Read(&n, 4));
            std::unordered_set<int64_t> removed;
            for (uint64_t c = 0; c < n; ++c) {
              uint64_t key = 0;
              SGL_RETURN_NOT_OK(body.Read(&key, 8));
              removed.insert(static_cast<int64_t>(key));
            }
            table.RemoveIf([&](RowId row) {
              return removed.count(table.KeyAt(row)) > 0;
            });
            break;
          }
          case WalRecordType::kCellDeltas: {
            uint64_t count = 0;
            SGL_RETURN_NOT_OK(body.Read(&count, 4));
            for (uint64_t c = 0; c < count; ++c) {
              uint64_t key = 0;
              uint64_t attr = 0;
              uint64_t bits = 0;
              SGL_RETURN_NOT_OK(body.Read(&key, 8));
              SGL_RETURN_NOT_OK(body.Read(&attr, 4));
              SGL_RETURN_NOT_OK(body.Read(&bits, 8));
              const RowId row = table.RowOf(static_cast<int64_t>(key));
              if (row < 0) {
                return Status::Internal(
                    "storage: WAL replay diverged (cell delta for unknown "
                    "key ",
                    key, " at tick ", t, ")");
              }
              table.Set(row, static_cast<AttrId>(attr), UnpackDouble(bits));
            }
            break;
          }
          default:
            return Status::Invalid(
                "storage: WAL tick ", t, " holds unexpected record type ",
                static_cast<int>(records[r].type));
        }
      }

      ByteReader end(records[commit].body);
      uint64_t commit_tick = 0;
      uint64_t next_key = 0;
      uint64_t num_rows = 0;
      SGL_RETURN_NOT_OK(end.Read(&commit_tick, 8));
      SGL_RETURN_NOT_OK(end.Read(&next_key, 8));
      SGL_RETURN_NOT_OK(end.Read(&num_rows, 4));
      if (commit_tick != t) {
        return Status::Invalid("storage: WAL commit for tick ", commit_tick,
                               " closes tick ", t, " (corrupt log)");
      }
      if (static_cast<int32_t>(num_rows) != table.NumRows()) {
        return Status::Internal("storage: WAL replay diverged at tick ", t,
                               " (", table.NumRows(), " rows, log expects ",
                               num_rows, ")");
      }
      table.SetNextKey(static_cast<int64_t>(next_key));
      state = static_cast<int64_t>(t) + 1;
      i = commit + 1;
    }
    if (target >= 0 && state != target) {
      return Status::Invalid("storage: tick ", target,
                             " is not in the log (the world covers ticks ",
                             m.tick, "..", state, ")");
    }
  }

  RecoveredWorld world;
  world.table = std::move(table);
  world.tick = state;
  return world;
}

void WorldStore::MarkWorldInstalled() {
  synced_ = true;
  wal_ops_.clear();
  wal_cells_.clear();
  pool_cells_.clear();
  // Cached pages hold checkpoint-state bytes; the WAL replay that built
  // the installed table never touched them. Resync from row 0.
  pool_struct_min_ = 0;
}

}  // namespace storage
}  // namespace sgl
