#include "storage/buffer_pool.h"

#include <cstring>

namespace sgl {
namespace storage {

BufferPool::BufferPool(PageFile* file, int32_t page_size, int32_t pool_pages)
    : file_(file), page_size_(page_size) {
  frames_.resize(static_cast<size_t>(pool_pages));
  for (Frame& f : frames_) {
    f.bytes = std::make_unique<uint8_t[]>(static_cast<size_t>(page_size_));
  }
}

void BufferPool::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                             obs::Counter* evictions) {
  hits_ = hits;
  misses_ = misses;
  evictions_ = evictions;
}

void BufferPool::EnsurePage(PageId id) {
  if (id >= static_cast<PageId>(committed_.size())) {
    committed_.resize(static_cast<size_t>(id + 1), 0);
    scratch_valid_.resize(static_cast<size_t>(id + 1), 0);
  }
}

Result<int32_t> BufferPool::Evict() {
  // Clock sweep: clear second-chance bits until an unpinned, unreferenced
  // frame comes around. Two sweeps with every frame pinned means the
  // caller holds more pins than the pool has frames — a discipline bug.
  const int32_t n = static_cast<int32_t>(frames_.size());
  for (int32_t step = 0; step < 2 * n; ++step) {
    Frame& f = frames_[clock_hand_];
    const int32_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f.pin_count > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    if (f.page >= 0) {
      if (f.dirty) {
        SGL_RETURN_NOT_OK(
            file_->WriteSlot(f.page, ScratchSlot(f.page), f.bytes.get()));
        scratch_valid_[f.page] = 1;
        f.dirty = false;
      }
      page_to_frame_.erase(f.page);
      if (evictions_ != nullptr) evictions_->Add(1);
      f.page = -1;
    }
    return index;
  }
  return Status::Internal(
      "storage: buffer pool exhausted (every frame pinned; pool_pages too "
      "small for the pin pattern)");
}

Result<BufferPool::Pinned> BufferPool::Pin(PageId id, bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsurePage(id);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.ref = true;
    if (hits_ != nullptr) hits_->Add(1);
    return Pinned{f.bytes.get() + kPageHeaderBytes, it->second};
  }
  if (misses_ != nullptr) misses_->Add(1);
  SGL_ASSIGN_OR_RETURN(int32_t index, Evict());
  Frame& f = frames_[index];
  if (create) {
    std::memset(f.bytes.get(), 0, static_cast<size_t>(page_size_));
  } else {
    SGL_RETURN_NOT_OK(file_->ReadSlot(id, NewestSlot(id), f.bytes.get(),
                                      /*missing_ok=*/false));
  }
  f.page = id;
  f.pin_count = 1;
  f.dirty = false;
  f.ref = true;
  page_to_frame_[id] = index;
  return Pinned{f.bytes.get() + kPageHeaderBytes, index};
}

void BufferPool::Unpin(const Pinned& pinned, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[pinned.frame];
  if (dirty) f.dirty = true;
  --f.pin_count;
}

Status BufferPool::FlushDirty(int64_t* written) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.page < 0 || !f.dirty) continue;
    SGL_RETURN_NOT_OK(
        file_->WriteSlot(f.page, ScratchSlot(f.page), f.bytes.get()));
    scratch_valid_[f.page] = 1;
    f.dirty = false;
    if (written != nullptr) ++*written;
  }
  return Status::OK();
}

void BufferPool::PromoteScratch() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t p = 0; p < scratch_valid_.size(); ++p) {
    if (scratch_valid_[p]) {
      committed_[p] ^= 1;
      scratch_valid_[p] = 0;
    }
  }
}

void BufferPool::LoadCommittedBits(std::vector<uint8_t> bits) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_ = std::move(bits);
  scratch_valid_.assign(committed_.size(), 0);
}

Status BufferPool::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.pin_count > 0) {
      return Status::Internal(
          "storage: cannot invalidate the buffer pool with pages pinned");
    }
    f.page = -1;
    f.dirty = false;
    f.ref = false;
  }
  page_to_frame_.clear();
  return Status::OK();
}

}  // namespace storage
}  // namespace sgl
