// PageFile — positioned POSIX I/O over the world's page file.
//
// Each logical page owns two physical slots (a ping-pong pair): the slot
// the latest manifest committed, and a scratch slot that absorbs every
// write between checkpoints. Physical offset = (page * 2 + slot) *
// page_size. Checkpointing flips the committed bit per touched page and
// publishes the flips atomically through the manifest rename, so a crash
// at any instant leaves the previous checkpoint's image untouched on
// disk — classic shadow paging, sized for exactly two versions.
//
// The file descriptor is used with pread/pwrite (no shared cursor), so
// the buffer pool can serve concurrent shard-worker reads under one
// mutex without seek races.
#ifndef SGL_STORAGE_PAGE_FILE_H_
#define SGL_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "storage/page.h"
#include "util/status.h"

namespace sgl {
namespace storage {

class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Open (creating if absent) the page file at `path`.
  Status Open(const std::string& path, int32_t page_size);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Read the physical slot of `page` into `buf` (page_size bytes) and
  /// verify header + checksum. A slot that was never written reads as a
  /// hole; `missing_ok` turns that into an all-zero valid page instead
  /// of an error (fresh pages past the last checkpointed extent).
  Status ReadSlot(PageId page, int32_t slot, uint8_t* buf, bool missing_ok);

  /// Seal `buf` (writes its header in place) and write it to the
  /// physical slot of `page`.
  Status WriteSlot(PageId page, int32_t slot, uint8_t* buf);

  /// fsync the file.
  Status Sync();

 private:
  int64_t SlotOffset(PageId page, int32_t slot) const {
    return (page * 2 + slot) * static_cast<int64_t>(page_size_);
  }

  int fd_ = -1;
  int32_t page_size_ = 0;
  std::string path_;
};

}  // namespace storage
}  // namespace sgl

#endif  // SGL_STORAGE_PAGE_FILE_H_
