// The indexed aggregate evaluator (Sections 5.3 and 6).
//
// At construction the provider extracts a signature for every aggregate
// declaration the script uses and deduplicates structurally identical
// signatures (the cross-script multi-query optimization: thousands of
// units probing the same aggregate share one index family). Each tick,
// BuildIndexes() rebuilds the per-partition index structures from scratch
// — the paper's choice for volatile data — and Eval() answers each
// aggregate call as an index probe:
//
//   divisible aggregates  -> layered range tree with prefix aggregates
//                            (Figure 8), O(log n) per probe;
//   min/max/argmin/argmax -> canonical range-extremum tree, O(log^2 n);
//   nearest               -> kD-tree per partition;
//   everything else       -> reference scan fallback (kNaive).
//
// Probes yield bit-identical results to the reference interpreter; the
// engine test suite enforces this.
#ifndef SGL_OPT_INDEXED_PROVIDER_H_
#define SGL_OPT_INDEXED_PROVIDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "geom/kd_tree.h"
#include "geom/minmax_tree.h"
#include "geom/range_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/cost.h"
#include "opt/signature.h"
#include "sgl/interpreter.h"
#include "util/timer.h"

namespace sgl {

class IndexedAggregateProvider : public AggregateProvider {
 public:
  /// `script` and `interp` must outlive the provider; `interp` supplies
  /// expression evaluation and the naive fallback.
  static Result<std::unique_ptr<IndexedAggregateProvider>> Create(
      const Script& script, const Interpreter& interp);

  /// Rebuild all index families for the tick (phase 1 of Section 6).
  /// With a pool, independent families build concurrently and each
  /// family's per-row passes split across workers; results are identical
  /// to the sequential build (every write lands in a row- or family-
  /// private slot). `stats`, when given, collects per-worker timing.
  /// The adaptive subclass overrides this with a per-family cost-based
  /// choice between rebuilding, delta maintenance, and scan fallback.
  virtual Status BuildIndexes(const EnvironmentTable& table,
                              const TickRandom& rnd,
                              exec::ThreadPool* pool = nullptr,
                              exec::ParallelStats* stats = nullptr);

  /// Answer an aggregate call with an index probe. Concurrent callers must
  /// pass distinct `shard` ids (see AggregateProvider); all probe
  /// bookkeeping is per-shard.
  Result<Value> Eval(int32_t agg_index, const std::vector<Value>& scalar_args,
                     RowId u_row, const EnvironmentTable& table,
                     const TickRandom& rnd, int32_t shard = 0) override;

  /// Size the per-shard probe counters for up to `num_shards` concurrent
  /// callers (SimulationBuilder sets this to the thread count).
  void set_num_shards(int32_t num_shards);

  /// Rebind the probe counters into `registry` under `prefix` (e.g.
  /// "script.battle.agg."). SimulationBuilder calls this once before any
  /// tick, while all counters are still zero; a standalone provider keeps
  /// the private registry Init() bound. `extra_flags` is OR-ed into every
  /// counter — kMetricExecDependent when a sharing decorator feeds this
  /// provider only memo misses. The adaptive subclass extends the binding
  /// with its decision counters.
  virtual void BindMetrics(obs::MetricsRegistry* registry,
                           const std::string& prefix, uint32_t extra_flags);

  /// Emit adaptive-choice instants to `tracer` (null = off; the base
  /// provider records nothing).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// EXPLAIN: one line per aggregate, plus sharing information.
  virtual std::string DescribePlan() const;

  /// EXPLAIN: the physical strategy serving one aggregate declaration, as
  /// a short annotation the logical-plan renderer attaches to the
  /// aggregate's π∗,agg(∗) operator. The adaptive subclass extends it
  /// with the family's latest cost decision.
  virtual std::string DescribeAggregatePhysical(int32_t agg_index) const;

  /// Number of distinct physical index families (after sharing).
  int32_t NumIndexFamilies() const {
    return static_cast<int32_t>(families_.size());
  }

  /// Aggregate probes answered *by an index* since construction
  /// (PhaseStats feed): the merged "probes" counter. Calls served by a
  /// scan fallback — naive signatures, or a family the adaptive model
  /// put in scan mode — are not probes and are excluded. Not meaningful
  /// mid-ParallelFor; the engine reads it only between phases.
  int64_t probe_count() const { return probes_->value(); }

  /// Aggregate calls routed to family `f` since construction, scan-mode
  /// fallbacks included — the adaptive cost model's demand signal
  /// (thread-count independent by construction: every call increments
  /// exactly one slot).
  int64_t family_probe_count(int32_t f) const {
    return family_calls_[f]->value();
  }

  const AggregateSignature& signature(int32_t agg_index) const {
    return signatures_[agg_index];
  }

 protected:
  IndexedAggregateProvider(const Script& script, const Interpreter& interp)
      : script_(&script), interp_(&interp) {}

  /// Shared post-construction setup: signature extraction and family
  /// deduplication (called by the factory of this class and subclasses).
  Status Init();

  /// One categorical partition (the hash layer of Section 5.3.1): the
  /// tuple of partition-attribute values and the id of its index.
  struct PartitionEntry {
    std::vector<double> comps;
    int64_t id = 0;
  };

  /// One physical index family: the per-partition structures built for a
  /// group of structurally identical signatures.
  struct Family {
    const AggregateSignature* sig = nullptr;  // representative
    std::vector<int32_t> member_aggs;         // aggregate indices served

    // Build products (per tick — or maintained across ticks by the
    // adaptive evaluator's delta path).
    std::vector<char> row_passes;  // build-filter result per row
    std::vector<std::vector<double>> term_cols;  // terms then squares, by row
    std::vector<PartitionEntry> parts;
    std::map<int64_t, LayeredRangeTree2D> div_trees;
    std::map<int64_t, MinMaxRangeTree2D> mm_trees;
    std::map<int64_t, KdTree2D> kd_trees;

    // --- delta-maintenance state (adaptive divisible families only) ----
    // The build snapshots each row's point coordinates and partition
    // components so a later tick can retract exactly the contribution the
    // trees hold for a changed row.
    bool maintain_deltas = false;  // cache xs/ys/comps during builds
    bool tree_valid = false;       // build products match some past tick
    std::vector<double> xs, ys;    // point coords per row (passing rows)
    std::vector<double> comps;     // partition components, row-major
    std::map<std::vector<double>, int64_t> part_id_of;  // comps -> part id
    int64_t next_part_id = 0;
    int64_t overlay_points = 0;    // outstanding delta points, all trees
  };

  Status BuildFamily(Family* family, const EnvironmentTable& table,
                     const TickRandom& rnd, exec::ThreadPool* pool,
                     exec::ParallelStats* stats);

  /// Build `families` with the shared fan-out policy: sequentially when
  /// there is no pool or at most one family (per-row passes then still
  /// parallelize inside BuildFamily), else one ParallelFor chunk per
  /// family with nested row passes running inline. Used by both the
  /// always-rebuild base BuildIndexes and the adaptive rebuild subset.
  Status BuildFamilies(const std::vector<Family*>& families,
                       const EnvironmentTable& table, const TickRandom& rnd,
                       exec::ThreadPool* pool, exec::ParallelStats* stats);

  /// Evaluate probe-side bounds/partition values for unit `u_row`.
  Result<Rect> ProbeRect(const AggregateSignature& sig, RowId u_row,
                         const EnvironmentTable& table, LocalStack* params,
                         const TickRandom& rnd) const;

  Result<Value> MakeUnitRow(const EnvironmentTable& table, RowId row,
                            double dist2, int32_t agg_index) const;
  Result<Value> EmptyRow(int32_t agg_index) const;

  const Script* script_;
  const Interpreter* interp_;
  std::vector<AggregateSignature> signatures_;   // one per aggregate decl
  std::vector<int32_t> family_of_agg_;           // aggregate -> family
  std::vector<Family> families_;
  /// Probe bookkeeping lives in a metrics registry: Init() binds to a
  /// private one so standalone providers work unchanged, and the builder
  /// rebinds into the simulation's via BindMetrics. The counters are
  /// per-shard padded, so concurrent probes never contend on one slot.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* probes_ = nullptr;              // index-served probes
  std::vector<obs::Counter*> family_calls_;     // calls routed per family
  int32_t num_shards_ = 1;
  obs::Tracer* tracer_ = nullptr;
  /// Physical strategy per family this tick. The base provider always
  /// rebuilds (the constructor default); the adaptive subclass re-decides
  /// each tick, and Eval falls back to the reference scan for kScan.
  std::vector<PhysicalChoice> family_mode_;
  AttrId posx_attr_ = Schema::kInvalidAttr;
  AttrId posy_attr_ = Schema::kInvalidAttr;
};

}  // namespace sgl

#endif  // SGL_OPT_INDEXED_PROVIDER_H_
