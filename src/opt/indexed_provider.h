// The indexed aggregate evaluator (Sections 5.3 and 6).
//
// At construction the provider extracts a signature for every aggregate
// declaration the script uses and deduplicates structurally identical
// signatures (the cross-script multi-query optimization: thousands of
// units probing the same aggregate share one index family). Each tick,
// BuildIndexes() rebuilds the per-partition index structures from scratch
// — the paper's choice for volatile data — and Eval() answers each
// aggregate call as an index probe:
//
//   divisible aggregates  -> layered range tree with prefix aggregates
//                            (Figure 8), O(log n) per probe;
//   min/max/argmin/argmax -> canonical range-extremum tree, O(log^2 n);
//   nearest               -> kD-tree per partition;
//   everything else       -> reference scan fallback (kNaive).
//
// Probes yield bit-identical results to the reference interpreter; the
// engine test suite enforces this.
#ifndef SGL_OPT_INDEXED_PROVIDER_H_
#define SGL_OPT_INDEXED_PROVIDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "geom/kd_tree.h"
#include "geom/minmax_tree.h"
#include "geom/range_tree.h"
#include "opt/signature.h"
#include "sgl/interpreter.h"
#include "util/timer.h"

namespace sgl {

class IndexedAggregateProvider : public AggregateProvider {
 public:
  /// `script` and `interp` must outlive the provider; `interp` supplies
  /// expression evaluation and the naive fallback.
  static Result<std::unique_ptr<IndexedAggregateProvider>> Create(
      const Script& script, const Interpreter& interp);

  /// Rebuild all index families for the tick (phase 1 of Section 6).
  /// With a pool, independent families build concurrently and each
  /// family's per-row passes split across workers; results are identical
  /// to the sequential build (every write lands in a row- or family-
  /// private slot). `stats`, when given, collects per-worker timing.
  Status BuildIndexes(const EnvironmentTable& table, const TickRandom& rnd,
                      exec::ThreadPool* pool = nullptr,
                      exec::ParallelStats* stats = nullptr);

  /// Answer an aggregate call with an index probe. Concurrent callers must
  /// pass distinct `shard` ids (see AggregateProvider); all probe
  /// bookkeeping is per-shard.
  Result<Value> Eval(int32_t agg_index, const std::vector<Value>& scalar_args,
                     RowId u_row, const EnvironmentTable& table,
                     const TickRandom& rnd, int32_t shard = 0) override;

  /// Size the per-shard probe tallies for up to `num_shards` concurrent
  /// callers (SimulationBuilder sets this to the thread count).
  void set_num_shards(int32_t num_shards);

  /// EXPLAIN: one line per aggregate, plus sharing information.
  std::string DescribePlan() const;

  /// Number of distinct physical index families (after sharing).
  int32_t NumIndexFamilies() const {
    return static_cast<int32_t>(families_.size());
  }

  /// Aggregate probes answered since construction (PhaseStats feed): the
  /// sum of the per-shard tallies. Not meaningful mid-ParallelFor; the
  /// engine reads it only between phases.
  int64_t probe_count() const {
    int64_t total = 0;
    for (const ShardTally& t : probe_tallies_) total += t.count;
    return total;
  }

  const AggregateSignature& signature(int32_t agg_index) const {
    return signatures_[agg_index];
  }

 private:
  IndexedAggregateProvider(const Script& script, const Interpreter& interp)
      : script_(&script), interp_(&interp) {}

  /// One categorical partition (the hash layer of Section 5.3.1): the
  /// tuple of partition-attribute values and the id of its index.
  struct PartitionEntry {
    std::vector<double> comps;
    int64_t id = 0;
  };

  /// One physical index family: the per-partition structures built for a
  /// group of structurally identical signatures.
  struct Family {
    const AggregateSignature* sig = nullptr;  // representative
    std::vector<int32_t> member_aggs;         // aggregate indices served

    // Build products (per tick).
    std::vector<char> row_passes;  // build-filter result per row
    std::vector<std::vector<double>> term_cols;  // terms then squares, by row
    std::vector<PartitionEntry> parts;
    std::map<int64_t, LayeredRangeTree2D> div_trees;
    std::map<int64_t, MinMaxRangeTree2D> mm_trees;
    std::map<int64_t, KdTree2D> kd_trees;
  };

  /// One cache line per shard: workers bump their own tally without
  /// false sharing (the satellite fix for the old shared probe_count_).
  struct alignas(64) ShardTally {
    int64_t count = 0;
  };

  Status BuildFamily(Family* family, const EnvironmentTable& table,
                     const TickRandom& rnd, exec::ThreadPool* pool,
                     exec::ParallelStats* stats);

  /// Evaluate probe-side bounds/partition values for unit `u_row`.
  Result<Rect> ProbeRect(const AggregateSignature& sig, RowId u_row,
                         const EnvironmentTable& table, LocalStack* params,
                         const TickRandom& rnd) const;

  Result<Value> MakeUnitRow(const EnvironmentTable& table, RowId row,
                            double dist2, int32_t agg_index) const;
  Result<Value> EmptyRow(int32_t agg_index) const;

  const Script* script_;
  const Interpreter* interp_;
  std::vector<AggregateSignature> signatures_;   // one per aggregate decl
  std::vector<int32_t> family_of_agg_;           // aggregate -> family
  std::vector<Family> families_;
  std::vector<ShardTally> probe_tallies_;        // indexed by shard
  AttrId posx_attr_ = Schema::kInvalidAttr;
  AttrId posy_attr_ = Schema::kInvalidAttr;
};

}  // namespace sgl

#endif  // SGL_OPT_INDEXED_PROVIDER_H_
