// The adaptive aggregate evaluator: per-family physical choice by cost.
//
// The paper's Section 6 engine ships "two pluggable versions" of the
// aggregate evaluator — naive scans or per-tick index rebuilds — and the
// simulation picks one globally. This provider makes the choice *per
// physical index family, per tick*, with the cost model of opt/cost.h:
//
//   scan         low-demand families skip the build entirely and answer
//                probes through the reference evaluator;
//   rebuild      hot families rebuild from scratch, exactly like the
//                indexed evaluator;
//   incremental  divisible range-tree families with low churn apply the
//                tick's delta log (EnvironmentTable change tracking) to
//                the existing trees as remove/insert overlays.
//
// The demand signal is the per-family probe tally observed on previous
// ticks (exponentially weighted); the churn signal is the number of
// dirty rows whose changed attributes intersect the family's build-side
// dependency mask. Both are pure counts, so every decision is a
// deterministic function of the simulation state: runs stay bit-exact
// for any worker-thread count, and adaptive mode is bit-exact with the
// naive and indexed evaluators (all three answer every aggregate with
// mathematically identical results; the engine test suite enforces it).
#ifndef SGL_OPT_ADAPTIVE_PROVIDER_H_
#define SGL_OPT_ADAPTIVE_PROVIDER_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/cost.h"
#include "opt/indexed_provider.h"

namespace sgl {

class AdaptiveAggregateProvider : public IndexedAggregateProvider {
 public:
  /// `script` and `interp` must outlive the provider. The table the
  /// provider builds over must have change tracking enabled
  /// (EnvironmentTable::EnableChangeTracking); SimulationBuilder does
  /// this when SimulationConfig::mode == EvaluatorMode::kAdaptive.
  static Result<std::unique_ptr<AdaptiveAggregateProvider>> Create(
      const Script& script, const Interpreter& interp);

  /// Decide each family's physical strategy for this tick from the cost
  /// model, then execute it: rebuild from scratch, apply the table's
  /// change log to the existing trees, or skip the build (scan mode).
  Status BuildIndexes(const EnvironmentTable& table, const TickRandom& rnd,
                      exec::ThreadPool* pool = nullptr,
                      exec::ParallelStats* stats = nullptr) override;

  /// EXPLAIN: the indexed plan plus one decision line per family with
  /// the latest estimated costs and the observed statistics they came
  /// from (estimated vs observed, per family).
  std::string DescribePlan() const override;

  /// EXPLAIN: extends the physical annotation with the family's latest
  /// cost decision, e.g. "divisible-range-tree, family 0 -> rebuild
  /// [scan=1.1e+06 rebuild=9.2e+04 incr=n/a; probes~250 churn 0]".
  std::string DescribeAggregatePhysical(int32_t agg_index) const override;

  /// Test hook: pin every eligible family to one strategy (families for
  /// which the strategy is unavailable fall back to the model's choice).
  /// Pass nullptr to return to cost-based decisions.
  void ForceChoiceForTest(const PhysicalChoice* choice) {
    has_forced_choice_ = choice != nullptr;
    if (choice != nullptr) forced_choice_ = *choice;
  }

  /// Extends the base binding with the per-strategy decision counters
  /// ("decisions.scan" / "decisions.rebuild" / "decisions.incremental").
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix,
                   uint32_t extra_flags) override;

  /// Shard slot the decision counters accumulate into. Shard workers run
  /// BuildIndexes concurrently and bind the same counters; giving each
  /// worker its own slot keeps the adds race-free. Default 0 (the
  /// single-table engine decides on the tick runner).
  void set_metrics_shard(int32_t shard) { metrics_shard_ = shard; }

 private:
  AdaptiveAggregateProvider(const Script& script, const Interpreter& interp)
      : IndexedAggregateProvider(script, interp) {}

  /// Rows of the change log whose attr masks intersect `family`'s build
  /// dependencies, ascending. Valid only for non-structural windows.
  std::vector<RowId> DirtyRowsFor(int32_t family_index,
                                  const TableChanges& changes) const;

  /// Apply one family's delta: re-evaluate build filters, terms, and
  /// partition components for every dirty row, retract the old point
  /// from its tree and insert the new one (creating empty trees for
  /// partitions first seen mid-maintenance). Updates the family's caches
  /// so self-exclusion and later deltas see current values.
  Status ApplyFamilyDelta(Family* family, const EnvironmentTable& table,
                          const TickRandom& rnd,
                          const std::vector<RowId>& dirty);

  /// Per-family adaptive state, parallel to families_.
  struct FamilyState {
    CountEwma probes;            ///< per-tick probe demand estimate
    int64_t tally_at_decision = 0;  ///< family_probe_count at last decision
    uint64_t dep_mask = 0;       ///< build-side attribute dependencies
    CostDecision last;           ///< latest decision, for EXPLAIN
    int64_t last_observed = 0;   ///< probes observed over the last tick
    int64_t last_dirty = 0;      ///< dirty rows at the last decision
  };

  std::vector<FamilyState> states_;
  // Lifetime decision counters (bench/test observability; DescribePlan).
  // Cost decisions are pure count functions, so without a sharing
  // decorator upstream they are deterministic across thread counts; the
  // BindMetrics caller's extra_flags say which case applies.
  obs::Counter* scan_decisions_ = nullptr;
  obs::Counter* rebuild_decisions_ = nullptr;
  obs::Counter* incremental_decisions_ = nullptr;
  CostModel model_;
  int32_t metrics_shard_ = 0;
  bool has_forced_choice_ = false;  // test hook
  PhysicalChoice forced_choice_ = PhysicalChoice::kRebuild;
  bool first_build_done_ = false;
};

}  // namespace sgl

#endif  // SGL_OPT_ADAPTIVE_PROVIDER_H_
