#include "opt/cost.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace sgl {

namespace {

constexpr double kUnavailable = std::numeric_limits<double>::infinity();

/// log2 clamped below at 1: even a tiny tree pays one level of descent,
/// and the clamp keeps the model monotone near empty tables.
double Log2Floor1(int64_t n) {
  return n > 2 ? std::log2(static_cast<double>(n)) : 1.0;
}

}  // namespace

const char* PhysicalChoiceName(PhysicalChoice choice) {
  switch (choice) {
    case PhysicalChoice::kScan: return "scan";
    case PhysicalChoice::kRebuild: return "rebuild";
    case PhysicalChoice::kIncremental: return "incremental";
  }
  return "?";
}

CostDecision CostModel::Choose(const FamilyCostInputs& in) const {
  const double rows = static_cast<double>(in.rows);
  const double probes = in.expected_probes;
  const double log_n = Log2Floor1(in.rows);

  CostDecision d;
  // Per-probe cost of answering through the family's structures. Every
  // probe evaluates its filters and partition values (probe_base), then
  // descends one tree per matching partition.
  const double probe_cost =
      k_.probe_base + k_.probe_log * log_n +
      k_.probe_partition * static_cast<double>(in.partitions - 1);

  d.est.scan = probes * rows * k_.scan_row + k_.probe_base * probes;
  d.est.rebuild =
      rows * static_cast<double>(in.build_passes) * k_.build_row_pass +
      rows * log_n * k_.build_point + probes * probe_cost;
  if (in.divisible && in.maintainable) {
    // The overlay after this tick's delta apply: what probes will pay.
    // Each dirty row contributes up to two delta points (retract + add).
    const double overlay =
        static_cast<double>(in.overlay) + 2.0 * static_cast<double>(in.dirty_rows);
    d.est.incremental = static_cast<double>(in.dirty_rows) *
                            (static_cast<double>(in.build_passes) *
                                 k_.build_row_pass +
                             k_.delta_row) +
                        probes * (probe_cost + k_.probe_overlay * overlay);
  } else {
    d.est.incremental = kUnavailable;
  }

  // Strict-less comparisons make the tie order kRebuild > kScan >
  // kIncremental: equal-cost ties keep the paper's default behavior.
  d.choice = PhysicalChoice::kRebuild;
  double best = d.est.rebuild;
  if (d.est.scan < best) {
    d.choice = PhysicalChoice::kScan;
    best = d.est.scan;
  }
  if (d.est.incremental < best) {
    d.choice = PhysicalChoice::kIncremental;
  }
  return d;
}

std::string DescribeEstimate(const CostEstimate& est) {
  std::ostringstream os;
  os.precision(3);
  os << "scan=" << est.scan << " rebuild=" << est.rebuild << " incr=";
  if (std::isinf(est.incremental)) {
    os << "n/a";
  } else {
    os << est.incremental;
  }
  return os.str();
}

}  // namespace sgl
