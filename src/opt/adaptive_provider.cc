#include "opt/adaptive_provider.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sgl {

Result<std::unique_ptr<AdaptiveAggregateProvider>>
AdaptiveAggregateProvider::Create(const Script& script,
                                  const Interpreter& interp) {
  std::unique_ptr<AdaptiveAggregateProvider> provider(
      new AdaptiveAggregateProvider(script, interp));
  SGL_RETURN_NOT_OK(provider->Init());
  provider->states_.resize(provider->families_.size());
  for (size_t f = 0; f < provider->families_.size(); ++f) {
    Family& family = provider->families_[f];
    if (family.sig->kind == IndexKind::kNaive) continue;
    provider->states_[f].dep_mask = BuildDependencyMask(*family.sig);
    // Divisible families snapshot build inputs so a later tick can apply
    // deltas; extremum and kD families cannot retract contributions.
    family.maintain_deltas =
        family.sig->kind == IndexKind::kDivisibleRangeTree;
  }
  return provider;
}

void AdaptiveAggregateProvider::BindMetrics(obs::MetricsRegistry* registry,
                                            const std::string& prefix,
                                            uint32_t extra_flags) {
  IndexedAggregateProvider::BindMetrics(registry, prefix, extra_flags);
  // Decision counts depend on how evaluation is organized, not just on
  // the simulation: under sharding every worker provider decides each
  // family independently (S deciders instead of one), so the tallies are
  // execution-dependent even though each decision itself is deterministic.
  const uint32_t flags = extra_flags | obs::kMetricExecDependent;
  scan_decisions_ = registry->GetCounter(prefix + "decisions.scan", flags);
  rebuild_decisions_ =
      registry->GetCounter(prefix + "decisions.rebuild", flags);
  incremental_decisions_ =
      registry->GetCounter(prefix + "decisions.incremental", flags);
}

std::vector<RowId> AdaptiveAggregateProvider::DirtyRowsFor(
    int32_t family_index, const TableChanges& changes) const {
  const uint64_t dep = states_[family_index].dep_mask;
  std::vector<RowId> dirty;
  for (RowId r : changes.dirty_rows) {
    if ((changes.attr_mask(r) & dep) != 0) dirty.push_back(r);
  }
  // dirty_rows is in first-write order; canonicalize to ascending rows so
  // the delta log applies in one deterministic order.
  std::sort(dirty.begin(), dirty.end());
  return dirty;
}

Status AdaptiveAggregateProvider::BuildIndexes(const EnvironmentTable& table,
                                               const TickRandom& rnd,
                                               exec::ThreadPool* pool,
                                               exec::ParallelStats* stats) {
  if (!table.change_tracking_enabled()) {
    return Status::Invalid(
        "adaptive evaluation requires EnvironmentTable change tracking "
        "(SimulationBuilder enables it for EvaluatorMode::kAdaptive)");
  }
  const TableChanges& changes = table.changes();
  const bool structural = changes.structural || !first_build_done_;
  const int64_t rows = table.NumRows();

  // --- decision pass: sequential, before any build work, driven only by
  // counts, so the plan for the tick is a deterministic function of the
  // simulation state (never of thread scheduling or wall-clock).
  struct DeltaJob {
    Family* family;
    std::vector<RowId> dirty;
  };
  std::vector<Family*> rebuilds;
  std::vector<DeltaJob> deltas;
  for (size_t f = 0; f < families_.size(); ++f) {
    Family& family = families_[f];
    const AggregateSignature& sig = *family.sig;
    if (sig.kind == IndexKind::kNaive) continue;
    FamilyState& st = states_[f];

    const int64_t tally = family_probe_count(static_cast<int32_t>(f));
    st.last_observed = tally - st.tally_at_decision;
    st.tally_at_decision = tally;
    if (first_build_done_) st.probes.Observe(st.last_observed);

    FamilyCostInputs in;
    in.rows = rows;
    // Until demand has been observed, assume one probe per unit — the
    // common case, and the bias that keeps the first tick indexed.
    in.expected_probes = st.probes.Get(static_cast<double>(rows));
    in.build_passes = static_cast<int64_t>(sig.build_filters.size() +
                                           sig.terms.size() + 1);
    in.partitions =
        std::max<int64_t>(1, static_cast<int64_t>(family.parts.size()));
    in.divisible = sig.kind == IndexKind::kDivisibleRangeTree;
    in.maintainable = in.divisible && family.tree_valid && !structural;
    std::vector<RowId> dirty;
    if (in.maintainable) {
      dirty = DirtyRowsFor(static_cast<int32_t>(f), changes);
      in.dirty_rows = static_cast<int64_t>(dirty.size());
      in.overlay = family.overlay_points;
    }

    CostDecision decision = model_.Choose(in);
    if (has_forced_choice_) {
      // Test hook: pin the choice when it is executable for this family
      // this tick (an unavailable incremental falls back to the model).
      if (forced_choice_ != PhysicalChoice::kIncremental || in.maintainable) {
        decision.choice = forced_choice_;
      }
    }
    // One instant per strategy switch (and per family's first decision):
    // the timeline shows when the cost model re-planned, without a
    // per-tick event flood for stable plans. The decision pass runs on
    // the tick runner before any parallel build, so shard 0 is safe.
    const bool choice_changed =
        !first_build_done_ || st.last.choice != decision.choice;
    st.last = decision;
    st.last_dirty = in.dirty_rows;
    family_mode_[f] = decision.choice;
    if (choice_changed && tracer_ != nullptr) {
      char args[96];
      std::snprintf(args, sizeof(args), "{\"family\":%d,\"choice\":\"%s\"}",
                    static_cast<int32_t>(f),
                    PhysicalChoiceName(decision.choice));
      tracer_->Instant("adaptive.choice", 0, 0, args);
    }
    switch (decision.choice) {
      case PhysicalChoice::kScan:
        // The trees (if any) will be stale after this tick's writes.
        family.tree_valid = false;
        scan_decisions_->Add(1, metrics_shard_);
        break;
      case PhysicalChoice::kRebuild:
        rebuilds.push_back(&family);
        rebuild_decisions_->Add(1, metrics_shard_);
        break;
      case PhysicalChoice::kIncremental:
        deltas.push_back(DeltaJob{&family, std::move(dirty)});
        incremental_decisions_->Add(1, metrics_shard_);
        break;
    }
  }
  first_build_done_ = true;

  // --- execution pass. Delta jobs touch few rows; run them inline. The
  // rebuilt subset uses the same family/row fan-out as the base class.
  for (DeltaJob& job : deltas) {
    SGL_RETURN_NOT_OK(ApplyFamilyDelta(job.family, table, rnd, job.dirty));
  }
  return BuildFamilies(rebuilds, table, rnd, pool, stats);
}

Status AdaptiveAggregateProvider::ApplyFamilyDelta(
    Family* family, const EnvironmentTable& table, const TickRandom& rnd,
    const std::vector<RowId>& dirty) {
  const AggregateSignature& sig = *family->sig;
  const AggregateDecl& decl = script_->program.aggregates[sig.agg_index];
  const std::string* e_name = &decl.row_var;
  const int32_t m = static_cast<int32_t>(sig.terms.size());
  const int32_t p_dims = static_cast<int32_t>(sig.partitions.size());

  LocalStack no_params;
  std::vector<double> old_terms(2 * m), new_terms(2 * m);
  std::vector<double> old_comps(p_dims), new_comps(p_dims);
  for (RowId r : dirty) {
    // Re-evaluate the row's build inputs against the current table.
    bool new_pass = true;
    for (const Cond* filter : sig.build_filters) {
      SGL_ASSIGN_OR_RETURN(
          bool pass, interp_->EvalCondIn(*filter, table, nullptr, -1, e_name,
                                         r, &no_params, rnd, table.KeyAt(r)));
      if (!pass) {
        new_pass = false;
        break;
      }
    }
    double nx = 0.0, ny = 0.0;
    if (new_pass) {
      for (int32_t t = 0; t < m; ++t) {
        SGL_ASSIGN_OR_RETURN(
            Value v, interp_->EvalExprIn(*sig.terms[t], table, nullptr, -1,
                                         e_name, r, &no_params, rnd,
                                         table.KeyAt(r)));
        if (!v.is_scalar()) {
          return Status::ExecutionError("aggregate term must be scalar");
        }
        new_terms[t] = v.scalar();
        new_terms[m + t] = v.scalar() * v.scalar();
      }
      for (int32_t i = 0; i < p_dims; ++i) {
        new_comps[i] = table.Get(r, sig.partitions[i].attr);
      }
      nx = sig.ranges.size() > 0 ? table.Get(r, sig.ranges[0].attr) : 0.0;
      ny = sig.ranges.size() > 1 ? table.Get(r, sig.ranges[1].attr) : 0.0;
    }

    // Retract the contribution the trees hold for this row (snapshotted
    // by the last build or delta apply).
    if (family->row_passes[r]) {
      for (int32_t t = 0; t < 2 * m; ++t) {
        old_terms[t] = family->term_cols[t][r];
      }
      for (int32_t i = 0; i < p_dims; ++i) {
        old_comps[i] = family->comps[static_cast<size_t>(r) * p_dims + i];
      }
      auto it = family->part_id_of.find(old_comps);
      if (it == family->part_id_of.end()) {
        return Status::Internal(
            "adaptive delta apply: stale partition missing for aggregate '",
            decl.name, "'");
      }
      family->div_trees.at(it->second)
          .RemovePoint(family->xs[r], family->ys[r], old_terms.data());
    }

    // Insert the row's new contribution, creating the partition if this
    // is the first time its component tuple appears.
    if (new_pass) {
      auto [it, inserted] =
          family->part_id_of.emplace(new_comps, family->next_part_id);
      if (inserted) {
        ++family->next_part_id;
        family->parts.push_back(PartitionEntry{new_comps, it->second});
        family->div_trees.emplace(
            it->second,
            LayeredRangeTree2D({}, std::vector<std::vector<double>>(2 * m)));
      }
      family->div_trees.at(it->second)
          .InsertPoint(nx, ny, new_terms.data());
    }

    // Refresh the caches: probes' self-exclusion and the next delta both
    // read them as "what the trees currently hold".
    family->row_passes[r] = new_pass ? 1 : 0;
    for (int32_t t = 0; t < 2 * m; ++t) {
      family->term_cols[t][r] = new_pass ? new_terms[t] : 0.0;
    }
    if (new_pass) {
      for (int32_t i = 0; i < p_dims; ++i) {
        family->comps[static_cast<size_t>(r) * p_dims + i] = new_comps[i];
      }
      family->xs[r] = nx;
      family->ys[r] = ny;
    }
  }

  int64_t overlay = 0;
  for (const auto& [id, tree] : family->div_trees) {
    overlay += tree.delta_size();
  }
  family->overlay_points = overlay;
  return Status::OK();
}

std::string AdaptiveAggregateProvider::DescribeAggregatePhysical(
    int32_t agg_index) const {
  const AggregateSignature& sig = signatures_[agg_index];
  std::string base = IndexedAggregateProvider::DescribeAggregatePhysical(
      agg_index);
  if (sig.kind == IndexKind::kNaive) return base;
  const FamilyState& st = states_[family_of_agg_[agg_index]];
  std::ostringstream os;
  os << base << " -> " << PhysicalChoiceName(st.last.choice) << " ["
     << DescribeEstimate(st.last.est) << "; probes~"
     << static_cast<int64_t>(st.probes.Get(0.0)) << " churn "
     << st.last_dirty << "]";
  return os.str();
}

std::string AdaptiveAggregateProvider::DescribePlan() const {
  std::ostringstream os;
  os << IndexedAggregateProvider::DescribePlan();
  os << "Adaptive decisions (cost units; per family, latest tick):\n";
  for (size_t f = 0; f < families_.size(); ++f) {
    const Family& family = families_[f];
    if (family.sig->kind == IndexKind::kNaive) continue;
    const FamilyState& st = states_[f];
    os << "  family " << f << ": " << PhysicalChoiceName(st.last.choice)
       << "  est{" << DescribeEstimate(st.last.est) << "}"
       << "  observed{probes/tick~" << static_cast<int64_t>(st.probes.Get(0.0))
       << " last " << st.last_observed << ", dirty rows " << st.last_dirty
       << ", overlay " << family.overlay_points << "}\n";
  }
  os << "  lifetime decisions: " << rebuild_decisions_->value()
     << " rebuild, " << incremental_decisions_->value() << " incremental, "
     << scan_decisions_->value() << " scan\n";
  return os.str();
}

}  // namespace sgl
