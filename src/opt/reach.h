// Script reach analysis for spatial sharding (ROADMAP item 3).
//
// A shard worker that owns a stripe of the world can evaluate a unit's
// decisions locally only if everything the script reads or writes lies
// within a constant-radius box around the unit: every aggregate probe box
// (the u.pos ± const range dims already extracted by signature.cc) and
// every action footprint (self-targeted direct-key updates, or the
// constant-extent AOE boxes action_sink.cc classifies). The maximum such
// offset is the ghost-margin radius. Anything else — global aggregates,
// nearest-neighbor probes, direct-key updates aimed at arbitrary units —
// can touch any row, so the runtime falls back to replicated (full-ghost)
// partitioning, which is always correct.
#ifndef SGL_OPT_REACH_H_
#define SGL_OPT_REACH_H_

#include <string>

#include "sgl/analyzer.h"
#include "util/status.h"

namespace sgl {

/// How far one unit's tick can see or touch, in world units.
struct ScriptReach {
  /// False when the script cannot run under shards > 1 at all (today:
  /// aggregate calls inside action declarations, whose deferred unit
  /// filters are evaluated driver-side where no indexes exist).
  bool supported = true;
  /// True when every aggregate probe and action footprint fits a constant
  /// box around (u.posx, u.posy); then `radius` bounds all of them.
  bool bounded = false;
  double radius = 0.0;
  /// Why the script is unbounded / unsupported (first reason found), or a
  /// summary of the bounded footprint.
  std::string note;
};

/// Analyze every aggregate and action of `script`. Never fails for
/// analyzable scripts — an inscrutable construct just yields
/// bounded=false; supported=false is reserved for shapes sharding must
/// refuse outright.
ScriptReach ComputeScriptReach(const Script& script);

}  // namespace sgl

#endif  // SGL_OPT_REACH_H_
