// Cross-unit aggregate sharing: the multi-query optimization layer that
// sits *above* the physical aggregate evaluators.
//
// The paper's central observation is that thousands of units issue the
// same or near-identical environment aggregates each tick. The physical
// layer already exploits half of that (structurally identical aggregates
// share one index family); this module exploits the other half: most
// probes against a shared family carry the same *probe values* too, so
// their results can be memoized per tick instead of recomputed per unit.
// Each aggregate declaration is classified once, at build time:
//
//   unit-invariant    no probe-side expression references the probing
//                     unit's attributes or the declaration's scalar
//                     parameters: the result is a pure function of the
//                     frozen tick-start environment. Compute once per
//                     tick, broadcast to every probing unit — across
//                     scripts (market's global supply/demand sums,
//                     epidemic's crowd centroid).
//
//   partition-keyed   the only unit-dependence flows through a small
//                     tuple of scalar probe values (partition values,
//                     range bounds, probe-filter outcomes — or, when the
//                     probe side references no unit attributes at all,
//                     just the scalar arguments). Memoize one result per
//                     distinct key in a per-tick table (market's
//                     poorest-buyer probe: every seller passes the same
//                     tick price).
//
//   per-unit          everything else (self-excluding divisible sums,
//                     nearest-neighbour probes from the unit's own
//                     position): today's path, untouched.
//
// Sharing changes *where* a result comes from, never what it is: every
// aggregate is deterministic in (probe key, environment) — random() is
// banned inside aggregate declarations — so a memo hit returns a value
// bit-identical to what the evaluator below would have produced.
// Concurrent shards fill the per-tick tables race-free through a
// publish-once slot per key: racing shards may compute the same value
// twice, but exactly one copy is published and both are identical, so
// simulations stay bit-exact for any worker-thread count with sharing on
// or off (SimulationConfig::sharing; tests/sharing_test.cc enforces it).
//
// Groups whose keys turn out to be nearly unique per unit (epidemic's
// per-position exposure boxes) are demoted to per-unit as soon as the
// probes prove it. The demotion signal is cumulative (calls, distinct
// keys) totals — pure counts, deterministic for any thread count, same
// rationale as the adaptive cost model's inputs (opt/cost.h); cumulative
// rather than per-tick so a group issuing only a handful of fresh-keyed
// calls per tick is caught too. Demotion also feeds
// the adaptive evaluator the right demand signal for free: the inner
// provider only sees memo *misses*, so a shared aggregate's per-family
// probe tally collapses to ~the distinct-key count and the cost model
// stops building indexes nobody probes.
#ifndef SGL_OPT_SHARING_H_
#define SGL_OPT_SHARING_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/signature.h"
#include "sgl/interpreter.h"

namespace sgl {

/// How one aggregate declaration's probe results may be shared.
enum class SharingClass { kPerUnit, kUnitInvariant, kPartitionKeyed };

const char* SharingClassName(SharingClass cls);

/// The classification verdict for one aggregate, plus the recipe for
/// building its memo key. Expression/condition pointers alias the
/// Script's AST and share its lifetime.
struct SharingPlan {
  SharingClass cls = SharingClass::kPerUnit;
  std::string reason;  // kPerUnit: why the aggregate cannot share

  /// kPartitionKeyed key recipe, in canonical order: probe-side scalar
  /// expressions (partition values, range bounds) evaluated with the
  /// probing unit bound, then probe-filter conditions as 0/1 components,
  /// then raw scalar-argument indices. Unit-invariant plans have an
  /// empty recipe (a single slot per tick).
  std::vector<const Expr*> key_exprs;
  std::vector<const Cond*> key_conds;
  std::vector<int32_t> key_params;  // indices into Eval's scalar_args
};

/// Classify aggregate `sig.agg_index` of `script`. Pure analysis; never
/// fails (anything unanalyzable is kPerUnit with a reason).
SharingPlan ClassifySharing(const Script& script,
                            const AggregateSignature& sig);

/// The per-simulation sharing state: dedup groups of structurally
/// identical aggregates (keyed by CanonicalAggregateFingerprint, so
/// identical declarations in different scripts join one group) and their
/// per-tick memo tables. Owned by Simulation; one instance serves every
/// script session.
///
/// Thread safety: registration and BeginTick are build-time / tick-
/// prologue operations (single-threaded by construction); Lookup and
/// Publish are called concurrently from the decision phase and
/// synchronize per group (shared lock to read, unique lock to publish).
class SharingContext {
 public:
  using Key = std::vector<double>;

  /// A fresh context binds its counters to a private metrics registry so
  /// standalone use (tests, tools) works unchanged; SimulationBuilder
  /// rebinds into the simulation's via BindMetrics.
  SharingContext();

  /// Join (or create) the dedup group for `canonical_key`, recording
  /// `member` ("script.aggregate") for EXPLAIN. All members of a group
  /// share classification by construction (the class is derived from the
  /// same structure the key canonicalizes), so `cls`/`reason` are simply
  /// recorded on first registration. Returns the group id.
  int32_t RegisterAggregate(const std::string& member,
                            const std::string& canonical_key,
                            SharingClass cls, const std::string& reason);

  /// Size per-shard counters for up to `num_shards` concurrent callers
  /// (SimulationBuilder sets this to the thread count after every
  /// session has registered its aggregates).
  void set_num_shards(int32_t num_shards);

  /// Rebind every group's call/hit/entry counters (and the demotion
  /// counter) into `registry` under `prefix` (e.g. "sharing."). Counter
  /// names are "group<g>.calls" / ".hits" / ".entries" plus "demotions".
  /// Hits are flagged execution-dependent: a racing shard may compute a
  /// value another shard published first, so the hit/compute split can
  /// vary by a few counts across thread counts (calls and entries never
  /// do). SimulationBuilder calls this once, after registration and
  /// before any tick, while all counters are still zero.
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix);

  /// Emit "sharing.demote" instants to `tracer` (null = off).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Tick prologue: demote groups whose cumulative counts show
  /// near-unique keys, then clear every memo table (results are only
  /// valid against the frozen state of the tick that computed them).
  void BeginTick();

  /// True if `group` still memoizes (not per-unit, not demoted). Callers
  /// skip all sharing work — including the calls tally — once inactive.
  bool Active(int32_t group) const { return groups_[group]->active; }

  /// Per-tick memo probe. On a hit, *out receives the published value.
  /// Tallies the call (and the hit) on `shard`'s counters.
  bool Lookup(int32_t group, const Key& key, Value* out, int32_t shard);

  /// Publish-once: install `value` for `key` unless another shard beat
  /// us to it (both computed the identical value; the first wins).
  void Publish(int32_t group, const Key& key, Value value);

  int32_t NumGroups() const { return static_cast<int32_t>(groups_.size()); }
  int32_t num_shards() const { return num_shards_; }
  SharingClass GroupClass(int32_t group) const { return groups_[group]->cls; }
  const std::vector<std::string>& GroupMembers(int32_t group) const {
    return groups_[group]->members;
  }

  /// Cumulative memo hits across all groups (bench/test observability).
  /// Deterministic for single-threaded runs; with several workers a
  /// racing shard may compute a value another shard published first, so
  /// the split between hits and computes can vary by a few counts (the
  /// values, and the simulation, never do).
  int64_t shared_hits() const;

  /// Cumulative published memo entries (= distinct keys summed over
  /// ticks; deterministic for any thread count). Like shared_hits(), not
  /// meaningful mid-phase; read between ticks or after a run.
  int64_t memo_entries() const;

  /// The EXPLAIN "Sharing" block: one line per group with its class,
  /// members, call/hit/entry counters, and demotions.
  std::string Describe() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  struct Group {
    SharingClass cls = SharingClass::kPerUnit;
    std::string reason;
    std::vector<std::string> members;
    bool active = false;
    bool demoted = false;

    /// Counter handles into metrics_ (per-shard padded, so concurrent
    /// shards never contend on one slot). `entries` is bumped only under
    /// the group's unique lock, so its single slot 0 never races.
    obs::Counter* calls = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* entries = nullptr;

    std::shared_mutex mu;                       // guards memo
    std::unordered_map<Key, Value, KeyHash> memo;
  };

  /// (Re)bind group `g`'s counters into metrics_ under prefix_.
  void BindGroup(int32_t g);

  int64_t GroupCalls(int32_t group) const;
  int64_t GroupHits(int32_t group) const;
  int64_t GroupEntries(int32_t group) const;

  std::unordered_map<std::string, int32_t> group_by_key_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string prefix_;
  obs::Counter* demotions_ = nullptr;
  /// 0 until set_num_shards: Eval's shard bounds check then bypasses the
  /// memo entirely, preserving the unsized-context behavior.
  int32_t num_shards_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

/// The sharing decorator installed between the interpreter and the
/// session's physical aggregate evaluator: consults the per-tick memo
/// first and only forwards misses to `inner` (or, when `inner` is null —
/// the naive evaluator — to the interpreter's reference scan, which is
/// exactly what makes unit-invariant aggregates O(rows) *per tick*
/// instead of per probe under the naive evaluator too).
class SharingAggregateProvider : public AggregateProvider {
 public:
  /// `script`, `interp`, `inner` (optional), and `ctx` must outlive the
  /// provider. Registers every aggregate of `script` with `ctx` under
  /// `session_name` labels.
  static Result<std::unique_ptr<SharingAggregateProvider>> Create(
      const Script& script, const Interpreter& interp,
      AggregateProvider* inner, SharingContext* ctx,
      const std::string& session_name);

  Result<Value> Eval(int32_t agg_index, const std::vector<Value>& scalar_args,
                     RowId u_row, const EnvironmentTable& table,
                     const TickRandom& rnd, int32_t shard = 0) override;

  const SharingPlan& plan(int32_t agg_index) const {
    return plans_[agg_index];
  }
  int32_t group_of(int32_t agg_index) const { return group_of_[agg_index]; }

  /// True if any aggregate of the script can share (classified better
  /// than per-unit). When false the decorator would forward every call
  /// unchanged, so the builder skips installing it for this session —
  /// the classifications remain registered with the context for EXPLAIN.
  bool any_shared() const {
    for (const SharingPlan& p : plans_) {
      if (p.cls != SharingClass::kPerUnit) return true;
    }
    return false;
  }

 private:
  SharingAggregateProvider(const Script& script, const Interpreter& interp,
                           AggregateProvider* inner, SharingContext* ctx)
      : script_(&script), interp_(&interp), inner_(inner), ctx_(ctx) {}

  Result<Value> InnerEval(int32_t agg_index,
                          const std::vector<Value>& scalar_args, RowId u_row,
                          const EnvironmentTable& table, const TickRandom& rnd,
                          int32_t shard);

  const Script* script_;
  const Interpreter* interp_;
  AggregateProvider* inner_;  // null: fall through to the reference scan
  SharingContext* ctx_;
  std::vector<SharingPlan> plans_;   // one per aggregate declaration
  std::vector<int32_t> group_of_;    // aggregate -> context group id
};

}  // namespace sgl

#endif  // SGL_OPT_SHARING_H_
