#include "opt/action_sink.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <sstream>

#include "geom/minmax_tree.h"
#include "geom/range_tree.h"

namespace sgl {

namespace {

/// Fold an expression containing only numbers and arithmetic (constants
/// were already substituted by the analyzer). Returns false otherwise.
bool FoldPure(const Expr& e, double* out) {
  switch (e.kind) {
    case ExprKind::kNumber:
      *out = e.number;
      return true;
    case ExprKind::kUnaryMinus: {
      double v;
      if (!FoldPure(*e.args[0], &v)) return false;
      *out = -v;
      return true;
    }
    case ExprKind::kBinary: {
      double l, r;
      if (!FoldPure(*e.args[0], &l) || !FoldPure(*e.args[1], &r)) return false;
      switch (e.op) {
        case BinaryOp::kAdd: *out = l + r; return true;
        case BinaryOp::kSub: *out = l - r; return true;
        case BinaryOp::kMul: *out = l * r; return true;
        case BinaryOp::kDiv:
          if (r == 0.0) return false;
          *out = l / r;
          return true;
        case BinaryOp::kMod:
          if (r == 0.0) return false;
          *out = std::fmod(l, r);
          return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Match `u.<pos_attr> + c` / `u.<pos_attr> - c` / plain `u.<pos_attr>`;
/// returns the signed constant offset c.
bool MatchCenterOffset(const Expr& e, const std::string& u_name, AttrId pos,
                       double* offset) {
  AttrId attr;
  if (IsPlainAttrRef(e, u_name, &attr)) {
    if (attr != pos) return false;
    *offset = 0.0;
    return true;
  }
  if (e.kind != ExprKind::kBinary ||
      (e.op != BinaryOp::kAdd && e.op != BinaryOp::kSub)) {
    return false;
  }
  if (!IsPlainAttrRef(*e.args[0], u_name, &attr) || attr != pos) return false;
  double c;
  if (!FoldPure(*e.args[1], &c)) return false;
  *offset = e.op == BinaryOp::kAdd ? c : -c;
  return true;
}

}  // namespace

Result<std::unique_ptr<IndexedActionSink>> IndexedActionSink::Create(
    const Script& script, const Interpreter& interp) {
  std::unique_ptr<IndexedActionSink> sink(
      new IndexedActionSink(script, interp));
  sink->posx_attr_ = script.schema.Find("posx");
  sink->posy_attr_ = script.schema.Find("posy");
  const int32_t num_actions =
      static_cast<int32_t>(script.program.actions.size());
  sink->plans_.resize(num_actions);
  sink->pending_.resize(num_actions);
  for (int32_t a = 0; a < num_actions; ++a) {
    SGL_RETURN_NOT_OK(sink->ClassifyAction(a));
    sink->pending_[a].resize(script.program.actions[a].updates.size());
  }
  sink->set_num_shards(1);
  return sink;
}

void IndexedActionSink::set_num_shards(int32_t num_shards) {
  PendingBatches shape(script_->program.actions.size());
  for (size_t a = 0; a < shape.size(); ++a) {
    shape[a].resize(script_->program.actions[a].updates.size());
  }
  pending_shards_.assign(static_cast<size_t>(std::max(1, num_shards)), shape);
}

void IndexedActionSink::MergePendingShards() {
  for (PendingBatches& shard : pending_shards_) {
    for (size_t a = 0; a < shard.size(); ++a) {
      for (size_t s = 0; s < shard[a].size(); ++s) {
        std::vector<Pending>& src = shard[a][s];
        if (src.empty()) continue;
        std::vector<Pending>& dst = pending_[a][s];
        dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                   std::make_move_iterator(src.end()));
        src.clear();
      }
    }
  }
}

Status IndexedActionSink::ClassifyAction(int32_t action_index) {
  const ActionDecl& decl = script_->program.actions[action_index];
  const std::string& u = decl.params[0];
  const std::vector<std::string> params(decl.params.begin() + 1,
                                        decl.params.end());
  ActionPlans& plans = plans_[action_index];
  plans.all_handled = true;

  for (const UpdateStmt& update : decl.updates) {
    const std::string& e = update.row_var;
    UpdatePlan plan;
    auto fallback = [&](std::string reason) {
      plan.kind = UpdateKind::kFallback;
      plan.reason = std::move(reason);
      plans.all_handled = false;
    };

    std::vector<const Cond*> conjuncts;
    FlattenWhere(*update.where, &conjuncts);

    // Direct-key detection: a conjunct `e.key = expr(u, params)`.
    for (const Cond* c : conjuncts) {
      if (c->kind != CondKind::kCompare || c->op != CompareOp::kEq) continue;
      AttrId attr;
      if (IsPlainAttrRef(*c->lhs, e, &attr) && attr == kKeyAttrId &&
          !AnalyzeExprUse(*c->rhs, u, e, params).uses_e) {
        plan.kind = UpdateKind::kDirectKey;
        plan.key_expr = c->rhs.get();
      } else if (IsPlainAttrRef(*c->rhs, e, &attr) && attr == kKeyAttrId &&
                 !AnalyzeExprUse(*c->lhs, u, e, params).uses_e) {
        plan.kind = UpdateKind::kDirectKey;
        plan.key_expr = c->lhs.get();
      }
      if (plan.kind == UpdateKind::kDirectKey) {
        for (const Cond* other : conjuncts) {
          if (other != c) plan.residual.push_back(other);
        }
        break;
      }
    }

    if (plan.kind == UpdateKind::kDirectKey) {
      plans.updates.push_back(std::move(plan));
      continue;
    }

    // Area-of-effect detection: a closed constant-extent box around the
    // performer's position, optional partition equalities, e-only and
    // performer-only residuals; effect values independent of e.
    bool ok = true;
    std::string why;
    bool has_xlo = false, has_xhi = false, has_ylo = false, has_yhi = false;
    for (const Cond* c : conjuncts) {
      SideUse use = AnalyzeCondUse(*c, u, e, params);
      if (use.uses_random) {
        ok = false;
        why = "random() in where clause";
        break;
      }
      if (!use.uses_e) {
        plan.performer_filters.push_back(c);
        continue;
      }
      if (!use.uses_u) {
        plan.unit_filters.push_back(c);
        continue;
      }
      if (c->kind != CondKind::kCompare) {
        ok = false;
        why = "non-comparison mixes u and e";
        break;
      }
      AttrId attr = Schema::kInvalidAttr;
      const Expr* other = nullptr;
      CompareOp op = c->op;
      if (IsPlainAttrRef(*c->lhs, e, &attr) &&
          !AnalyzeExprUse(*c->rhs, u, e, params).uses_e) {
        other = c->rhs.get();
      } else if (IsPlainAttrRef(*c->rhs, e, &attr) &&
                 !AnalyzeExprUse(*c->lhs, u, e, params).uses_e) {
        other = c->lhs.get();
        switch (op) {
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      } else {
        ok = false;
        why = "conjunct is not e.attr cmp expr(u)";
        break;
      }
      if ((op == CompareOp::kEq || op == CompareOp::kNe) &&
          attr != posx_attr_ && attr != posy_attr_) {
        // Equality selects allies (healing auras); inequality selects
        // enemies (blast damage). Both are categorical partitions.
        plan.partitions.push_back(
            PartitionDim{attr, other, op == CompareOp::kNe});
        continue;
      }
      if ((attr == posx_attr_ || attr == posy_attr_) &&
          (op == CompareOp::kLe || op == CompareOp::kGe)) {
        AttrId pos = attr;
        double off;
        if (!MatchCenterOffset(*other, u, pos, &off)) {
          ok = false;
          why = "bound is not performer position plus a constant";
          break;
        }
        if (op == CompareOp::kGe) {
          // e.pos >= u.pos + off  =>  lo offset = -off.
          if (pos == posx_attr_) {
            plan.lo_x_off = -off;
            has_xlo = true;
          } else {
            plan.lo_y_off = -off;
            has_ylo = true;
          }
        } else {
          if (pos == posx_attr_) {
            plan.hi_x_off = off;
            has_xhi = true;
          } else {
            plan.hi_y_off = off;
            has_yhi = true;
          }
        }
        continue;
      }
      ok = false;
      why = "unsupported mixed conjunct (strict bound or inequality)";
      break;
    }
    if (ok && !(has_xlo && has_xhi && has_ylo && has_yhi)) {
      ok = false;
      why = "area of effect is not a closed box around the performer";
    }
    if (ok) {
      for (const SetItem& item : update.sets) {
        if (item.op == SetOp::kSetPriority) {
          ok = false;
          why = "set-priority effects are not batched";
          break;
        }
        SideUse use = AnalyzeExprUse(*item.value, u, e, params);
        if (use.uses_e || use.uses_random) {
          ok = false;
          why = "effect value depends on the affected unit";
          break;
        }
      }
    }
    if (ok) {
      plan.kind = UpdateKind::kAOE;
      plans.updates.push_back(std::move(plan));
    } else {
      fallback(why);
      plans.updates.push_back(std::move(plan));
    }
  }
  return Status::OK();
}

Result<bool> IndexedActionSink::Perform(int32_t action_index,
                                        const std::vector<Value>& scalar_args,
                                        RowId u_row,
                                        const EnvironmentTable& table,
                                        const TickRandom& rnd,
                                        EffectSink* buffer, int32_t shard) {
  const ActionDecl& decl = script_->program.actions[action_index];
  const ActionPlans& plans = plans_[action_index];
  if (!plans.all_handled) return false;  // interpreter scans instead

  const std::string* u_name = &decl.params[0];
  const int64_t u_key = table.KeyAt(u_row);
  LocalStack params;
  for (size_t i = 1; i < decl.params.size(); ++i) {
    params.Push(decl.params[i], scalar_args[i - 1]);
  }

  for (size_t s = 0; s < decl.updates.size(); ++s) {
    const UpdateStmt& update = decl.updates[s];
    const UpdatePlan& plan = plans.updates[s];
    if (plan.kind == UpdateKind::kDirectKey) {
      SGL_RETURN_NOT_OK(ApplyDirectKey(plan, update, decl, scalar_args, u_row,
                                       table, rnd, buffer));
      continue;
    }
    // AOE: check performer-only filters, then record the deferred effect.
    bool pass = true;
    for (const Cond* c : plan.performer_filters) {
      SGL_ASSIGN_OR_RETURN(
          bool v, interp_->EvalCondIn(*c, table, u_name, u_row, nullptr, -1,
                                      &params, rnd, u_key));
      if (!v) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    Pending pending;
    pending.actor = u_row;
    pending.cx = table.Get(u_row, posx_attr_);
    pending.cy = table.Get(u_row, posy_attr_);
    for (const PartitionDim& p : plan.partitions) {
      SGL_ASSIGN_OR_RETURN(
          Value v, interp_->EvalExprIn(*p.value, table, u_name, u_row,
                                       nullptr, -1, &params, rnd, u_key));
      if (!v.is_scalar()) {
        return Status::ExecutionError("partition value must be scalar");
      }
      pending.part_values.push_back(v.scalar());
    }
    for (const SetItem& item : update.sets) {
      SGL_ASSIGN_OR_RETURN(
          Value v, interp_->EvalExprIn(*item.value, table, u_name, u_row,
                                       nullptr, -1, &params, rnd, u_key));
      if (!v.is_scalar()) {
        return Status::ExecutionError("effect value must be scalar");
      }
      pending.set_values.push_back(v.scalar());
    }
    // An out-of-range shard means the caller skipped set_num_shards —
    // fail deterministically rather than silently race on shard 0.
    if (shard < 0 || shard >= static_cast<int32_t>(pending_shards_.size())) {
      return Status::Internal("deferred perform from shard ", shard,
                              " but only ", pending_shards_.size(),
                              " shards configured (set_num_shards)");
    }
    pending_shards_[shard][action_index][s].push_back(std::move(pending));
  }
  return true;
}

Status IndexedActionSink::ApplyDirectKey(
    const UpdatePlan& plan, const UpdateStmt& update, const ActionDecl& decl,
    const std::vector<Value>& scalar_args, RowId u_row,
    const EnvironmentTable& table, const TickRandom& rnd,
    EffectSink* buffer) const {
  const std::string* u_name = &decl.params[0];
  const std::string* e_name = &update.row_var;
  const int64_t u_key = table.KeyAt(u_row);
  LocalStack params;
  for (size_t i = 1; i < decl.params.size(); ++i) {
    params.Push(decl.params[i], scalar_args[i - 1]);
  }
  SGL_ASSIGN_OR_RETURN(
      Value key_val, interp_->EvalExprIn(*plan.key_expr, table, u_name, u_row,
                                         nullptr, -1, &params, rnd, u_key));
  if (!key_val.is_scalar()) {
    return Status::ExecutionError("key expression must be scalar");
  }
  RowId e_row = table.RowOf(static_cast<int64_t>(key_val.scalar()));
  if (e_row < 0) return Status::OK();  // target died in an earlier tick
  const int64_t e_key = table.KeyAt(e_row);
  for (const Cond* c : plan.residual) {
    SGL_ASSIGN_OR_RETURN(
        bool pass, interp_->EvalCondIn(*c, table, u_name, u_row, e_name,
                                       e_row, &params, rnd, e_key));
    if (!pass) return Status::OK();
  }
  for (const SetItem& item : update.sets) {
    SGL_ASSIGN_OR_RETURN(
        Value v, interp_->EvalExprIn(*item.value, table, u_name, u_row,
                                     e_name, e_row, &params, rnd, e_key));
    if (!v.is_scalar()) {
      return Status::ExecutionError("effect value must be scalar");
    }
    if (item.op == SetOp::kSetPriority) {
      SGL_ASSIGN_OR_RETURN(
          Value p, interp_->EvalExprIn(*item.priority, table, u_name, u_row,
                                       e_name, e_row, &params, rnd, e_key));
      if (!p.is_scalar()) {
        return Status::ExecutionError("effect priority must be scalar");
      }
      buffer->AccumulateSet(e_row, item.attr_id, v.scalar(), p.scalar());
    } else {
      buffer->Accumulate(e_row, item.attr_id, v.scalar());
    }
  }
  return Status::OK();
}

IndexedActionSink::PendingBatches IndexedActionSink::TakePending() {
  MergePendingShards();
  PendingBatches out = std::move(pending_);
  pending_.clear();
  pending_.resize(script_->program.actions.size());
  for (size_t a = 0; a < pending_.size(); ++a) {
    pending_[a].resize(script_->program.actions[a].updates.size());
  }
  return out;
}

void IndexedActionSink::ImportPending(PendingBatches batches) {
  for (size_t a = 0; a < batches.size() && a < pending_.size(); ++a) {
    for (size_t s = 0; s < batches[a].size() && s < pending_[a].size(); ++s) {
      std::vector<Pending>& src = batches[a][s];
      std::vector<Pending>& dst = pending_[a][s];
      if (dst.empty()) {
        dst = std::move(src);
      } else {
        dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                   std::make_move_iterator(src.end()));
      }
    }
  }
}

Status IndexedActionSink::FlushDeferred(const EnvironmentTable& table,
                                        const TickRandom& rnd,
                                        EffectBuffer* buffer) {
  MergePendingShards();
  const int32_t n = table.NumRows();
  for (size_t a = 0; a < pending_.size(); ++a) {
    const ActionDecl& decl = script_->program.actions[a];
    for (size_t s = 0; s < pending_[a].size(); ++s) {
      std::vector<Pending>& batch = pending_[a][s];
      if (batch.empty()) continue;
      const UpdateStmt& update = decl.updates[s];
      const UpdatePlan& plan = plans_[a].updates[s];
      const std::string* e_name = &update.row_var;

      // Group deferred effects by their partition values.
      std::map<std::vector<double>, std::vector<int32_t>> groups;
      for (size_t i = 0; i < batch.size(); ++i) {
        groups[batch[i].part_values].push_back(static_cast<int32_t>(i));
      }

      for (const auto& [part_values, members] : groups) {
        // One point per deferred effect; one index per (group, set-item
        // combine kind): the Section 5.4 construction.
        std::vector<PointRef> centers;
        centers.reserve(members.size());
        std::vector<int64_t> center_keys(batch.size(), 0);
        for (int32_t i : members) {
          centers.push_back(PointRef{batch[i].cx, batch[i].cy, i});
          center_keys[i] = i;
        }
        // Stackable items share one multi-term divisible tree.
        std::vector<int32_t> sum_items;
        std::vector<std::vector<double>> sum_terms;
        for (size_t it = 0; it < update.sets.size(); ++it) {
          if (update.sets[it].op == SetOp::kAdd) {
            sum_items.push_back(static_cast<int32_t>(it));
            std::vector<double> col(batch.size(), 0.0);
            for (int32_t i : members) col[i] = batch[i].set_values[it];
            sum_terms.push_back(std::move(col));
          }
        }
        std::unique_ptr<LayeredRangeTree2D> sum_tree;
        if (!sum_items.empty()) {
          sum_tree = std::make_unique<LayeredRangeTree2D>(centers, sum_terms);
        }
        std::vector<std::pair<int32_t, MinMaxRangeTree2D>> extremum_trees;
        for (size_t it = 0; it < update.sets.size(); ++it) {
          if (update.sets[it].op != SetOp::kMaxOf &&
              update.sets[it].op != SetOp::kMinOf) {
            continue;
          }
          std::vector<double> col(batch.size(), 0.0);
          for (int32_t i : members) col[i] = batch[i].set_values[it];
          auto mode = update.sets[it].op == SetOp::kMaxOf
                          ? MinMaxRangeTree2D::Mode::kMax
                          : MinMaxRangeTree2D::Mode::kMin;
          extremum_trees.emplace_back(
              static_cast<int32_t>(it),
              MinMaxRangeTree2D(centers, col, center_keys, mode));
        }

        // Probe once per unit: a center at c affects the unit at p iff
        // p ∈ box(c) iff c ∈ box'(p) with the offsets flipped.
        LocalStack no_params;
        for (RowId r = 0; r < n; ++r) {
          // Partition check: the affected unit's attribute value must
          // match (or, for negated dims, differ from) the group's
          // evaluated partition expression.
          bool part_ok = true;
          for (size_t pi = 0; pi < plan.partitions.size(); ++pi) {
            bool equal =
                table.Get(r, plan.partitions[pi].attr) == part_values[pi];
            if (plan.partitions[pi].negated ? equal : !equal) {
              part_ok = false;
              break;
            }
          }
          if (!part_ok) continue;
          bool filter_ok = true;
          for (const Cond* c : plan.unit_filters) {
            SGL_ASSIGN_OR_RETURN(
                bool v, interp_->EvalCondIn(*c, table, nullptr, -1, e_name, r,
                                            &no_params, rnd, table.KeyAt(r)));
            if (!v) {
              filter_ok = false;
              break;
            }
          }
          if (!filter_ok) continue;
          const double px = table.Get(r, posx_attr_);
          const double py = table.Get(r, posy_attr_);
          const Rect probe{px - plan.hi_x_off, px + plan.lo_x_off,
                           py - plan.hi_y_off, py + plan.lo_y_off};
          if (sum_tree != nullptr) {
            AggResult res = sum_tree->Aggregate(probe);
            if (res.count > 0) {
              for (size_t t = 0; t < sum_items.size(); ++t) {
                buffer->Accumulate(r, update.sets[sum_items[t]].attr_id,
                                   res.sums[t]);
              }
            }
          }
          for (const auto& [it, tree] : extremum_trees) {
            Extremum best = tree.Query(probe);
            if (best.valid()) {
              buffer->Accumulate(r, update.sets[it].attr_id, best.value);
            }
          }
        }
      }
      batch.clear();
    }
  }
  return Status::OK();
}

std::string IndexedActionSink::DescribePlan() const {
  std::ostringstream os;
  os << "Action plan (" << plans_.size() << " actions):\n";
  for (size_t a = 0; a < plans_.size(); ++a) {
    const ActionDecl& decl = script_->program.actions[a];
    os << "  " << decl.name << ":";
    for (size_t s = 0; s < plans_[a].updates.size(); ++s) {
      const UpdatePlan& plan = plans_[a].updates[s];
      os << " update#" << s << "=";
      switch (plan.kind) {
        case UpdateKind::kDirectKey: os << "direct-key"; break;
        case UpdateKind::kAOE: os << "area-of-effect"; break;
        case UpdateKind::kFallback:
          os << "scan(" << plan.reason << ")";
          break;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sgl
