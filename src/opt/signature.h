// Aggregate signature extraction: the planner's view of an aggregate.
//
// Section 5.3: the index structure for an aggregate depends on both the
// aggregate functions and the selection σφ. Assuming φ is a conjunction
// (true of every aggregate in the paper, its examples, and the AMAI
// corpus), each conjunct is classified as
//
//   * a RANGE constraint   e.A  cmp  expr(u, params)   — one tree
//     dimension with per-probe bounds (the orthogonal range components);
//   * a PARTITION          e.A  =|<>  expr(u, params)  — a degenerate /
//     categorical component, handled by the hash layer of Section 5.3.1
//     (one index per value; <> probes every other partition);
//   * a BUILD FILTER       any conjunct over e alone    — pushed into
//     index construction (the "moderately wounded" example);
//   * a PROBE FILTER       any conjunct over u alone    — evaluated per
//     probing unit (false ⇒ the aggregate of the empty set);
//   * SELF-EXCLUSION       e.key <> u.key               — divisible
//     aggregates subtract the probing unit's own contribution
//     (Definition 5.1); nearest-neighbour probes exclude the key.
//
// Anything else — disjunctions under u∧e mixing, random(), more than two
// u-dependent range attributes — makes the aggregate non-indexable and
// the signature records kNaive with a reason string (surfaced by
// EXPLAIN); the engine then falls back to the reference scan for that
// aggregate only.
#ifndef SGL_OPT_SIGNATURE_H_
#define SGL_OPT_SIGNATURE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "sgl/analyzer.h"
#include "util/status.h"

namespace sgl {

/// Physical strategy chosen for one aggregate declaration.
enum class IndexKind {
  kDivisibleRangeTree,  // Figure 8: prefix aggregates, O(log n)/probe
  kMinMaxTree,          // canonical range-extremum tree, O(log^2 n)/probe
  kKdNearest,           // kD-tree nearest neighbour (Section 5.3.2)
  kNaive,               // linear scan fallback
};

const char* IndexKindName(IndexKind kind);

/// One range dimension: per-probe closed bounds lo(u) <= e.attr <= hi(u).
/// Null bound pointers mean unbounded; `*_strict` marks < / > conjuncts
/// (tightened by one ulp at probe time).
struct RangeDim {
  AttrId attr = Schema::kInvalidAttr;
  const Expr* lo = nullptr;
  const Expr* hi = nullptr;
  bool lo_strict = false;
  bool hi_strict = false;
};

/// One partition dimension: e.attr =/<> value(u).
struct PartitionDim {
  AttrId attr = Schema::kInvalidAttr;
  const Expr* value = nullptr;
  bool negated = false;
};

/// Everything the index builder and prober need to know about an
/// aggregate. Pointers alias the Script's AST and share its lifetime.
struct AggregateSignature {
  int32_t agg_index = -1;
  IndexKind kind = IndexKind::kNaive;
  std::string reason;  // why kNaive, for EXPLAIN

  /// Declaration variable names, recorded so fingerprints can rename them
  /// to canonical placeholders (@u, @e, @p0...) — structural identity must
  /// not depend on what a script called its tuple variables.
  std::string u_name;
  std::string e_name;
  std::vector<std::string> param_names;  // scalar params (after the unit)

  std::vector<RangeDim> ranges;          // at most 2 (x dimension first)
  std::vector<PartitionDim> partitions;  // composite hash layer
  std::vector<const Cond*> build_filters;
  std::vector<const Cond*> probe_filters;
  bool exclude_self = false;

  /// Divisible: e-only term columns to pre-aggregate; items map onto them
  /// via term_of_item (kCount items use -1). Extremum: single term.
  std::vector<const Expr*> terms;
  std::vector<int32_t> term_of_item;

  /// Structural identity for multi-query sharing: two aggregates with the
  /// same fingerprint can share one physical index family. Variable names
  /// are canonicalized, so the identity holds across declarations — and
  /// across scripts — that differ only in spelling.
  std::string Fingerprint() const;
};

/// Extract the signature of aggregate `agg_index` of `script`.
Result<AggregateSignature> ExtractSignature(const Script& script,
                                            int32_t agg_index);

/// Round-trip rendering of a numeric literal for structural keys
/// (%.17g): distinct constants must never print alike, or fingerprint /
/// factoring dedup would merge declarations with different semantics.
/// Shared by the signature fingerprints and plan.cc's canonical keys so
/// the two layers cannot disagree about literal identity.
void PrintCanonicalNumber(double v, std::ostream& os);

/// Canonical structural identity of the *whole* aggregate declaration:
/// select items (function, alias, term), where clause, and parameter
/// count, with tuple variables and parameters renamed to placeholders.
/// Two declarations with equal canonical fingerprints compute the same
/// function of (probing unit, scalar args, environment) — schemas are
/// resolved to attribute ids, and random() is banned inside aggregates —
/// so their probe results are interchangeable. This is the dedup key of
/// the cross-script aggregate-sharing layer (src/opt/sharing.h), which is
/// also why it must cover aliases: memoized row results are looked up by
/// field name against the producing declaration's layout.
std::string CanonicalAggregateFingerprint(const Script& script,
                                          int32_t agg_index);

/// The build-side attribute dependencies of an indexable signature, as a
/// TableChanges-style bitmask (attribute a -> bit min(a, 63)): the range
/// and partition attributes plus every attribute referenced by the build
/// filters and term expressions. A row whose changed-attribute mask does
/// not intersect this mask contributes identically to a rebuild of the
/// family's indexes, which is what lets the adaptive evaluator maintain
/// them from the tick's delta log instead. The key attribute contributes
/// no bit: keys are immutable per row, and row addition/removal is a
/// structural change handled separately.
uint64_t BuildDependencyMask(const AggregateSignature& sig);

/// Which tuples an expression or condition references — shared conjunct
/// classification machinery for the aggregate and action planners.
struct SideUse {
  bool uses_u = false;
  bool uses_e = false;
  bool uses_random = false;
};
/// `params` lists the declaration's scalar parameters: references to them
/// are probe-side (they are bound per probing unit), so they count as
/// uses_u.
SideUse AnalyzeExprUse(const Expr& e, const std::string& u_name,
                       const std::string& e_name,
                       const std::vector<std::string>& params);
SideUse AnalyzeCondUse(const Cond& c, const std::string& u_name,
                       const std::string& e_name,
                       const std::vector<std::string>& params);

/// Flatten the AND-tree of a where clause into conjuncts.
void FlattenWhere(const Cond& c, std::vector<const Cond*>* out);

/// True if `e` is exactly `alias.attr`; sets *attr to the attribute id.
bool IsPlainAttrRef(const Expr& e, const std::string& alias, AttrId* attr);

/// Render a one-line summary ("divisible-range-tree on (posx, posy), "
/// "partition (player<>), 3 terms") for EXPLAIN output.
std::string DescribeSignature(const Script& script,
                              const AggregateSignature& sig);

}  // namespace sgl

#endif  // SGL_OPT_SIGNATURE_H_
