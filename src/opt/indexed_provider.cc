#include "opt/indexed_provider.h"

#include <algorithm>
#include <cmath>

namespace sgl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int64_t kNoExclude = std::numeric_limits<int64_t>::min();

/// Tighten a strict bound by one ulp: no double lies strictly between v
/// and nextafter(v, dir), so closed-interval indexes serve < and > too.
double TightenLo(double v, bool strict) {
  return strict ? std::nextafter(v, kInf) : v;
}
double TightenHi(double v, bool strict) {
  return strict ? std::nextafter(v, -kInf) : v;
}

}  // namespace

Result<std::unique_ptr<IndexedAggregateProvider>>
IndexedAggregateProvider::Create(const Script& script,
                                 const Interpreter& interp) {
  std::unique_ptr<IndexedAggregateProvider> provider(
      new IndexedAggregateProvider(script, interp));
  SGL_RETURN_NOT_OK(provider->Init());
  return provider;
}

Status IndexedAggregateProvider::Init() {
  const Script& script = *script_;
  posx_attr_ = script.schema.Find("posx");
  posy_attr_ = script.schema.Find("posy");

  const int32_t num_aggs =
      static_cast<int32_t>(script.program.aggregates.size());
  signatures_.reserve(num_aggs);
  family_of_agg_.assign(num_aggs, -1);

  // Group aggregates with identical physical signatures into families —
  // the multi-query optimization of Section 3.1 applied across every
  // script in the program. Extremum signatures also key on the aggregate
  // function (a MIN and a MAX over the same term need different trees).
  std::map<std::string, int32_t> family_by_fingerprint;
  for (int32_t a = 0; a < num_aggs; ++a) {
    SGL_ASSIGN_OR_RETURN(AggregateSignature sig, ExtractSignature(script, a));
    std::string fp = sig.Fingerprint();
    if (sig.kind == IndexKind::kMinMaxTree) {
      fp += "#";
      fp += AggFuncName(script.program.aggregates[a].items[0].func);
    }
    if (sig.kind == IndexKind::kNaive) {
      fp += "#naive" + std::to_string(a);  // naive signatures never share
    }
    signatures_.push_back(std::move(sig));
    auto [it, inserted] = family_by_fingerprint.emplace(
        fp, static_cast<int32_t>(families_.size()));
    if (inserted) {
      families_.emplace_back();
      families_.back().sig = &signatures_[a];
    }
    families_[it->second].member_aggs.push_back(a);
    family_of_agg_[a] = it->second;
  }
  // signatures_ vector finished growing; re-point representatives (the
  // vector may have reallocated while we were inserting).
  for (Family& family : families_) {
    family.sig = &signatures_[family.member_aggs[0]];
  }
  family_mode_.assign(families_.size(), PhysicalChoice::kRebuild);
  own_metrics_ = std::make_unique<obs::MetricsRegistry>();
  BindMetrics(own_metrics_.get(), "agg.", obs::kMetricNone);
  set_num_shards(1);
  return Status::OK();
}

void IndexedAggregateProvider::BindMetrics(obs::MetricsRegistry* registry,
                                           const std::string& prefix,
                                           uint32_t extra_flags) {
  metrics_ = registry;
  probes_ = metrics_->GetCounter(prefix + "probes", extra_flags);
  family_calls_.clear();
  family_calls_.reserve(families_.size());
  for (size_t f = 0; f < families_.size(); ++f) {
    family_calls_.push_back(metrics_->GetCounter(
        prefix + "family" + std::to_string(f) + ".calls", extra_flags));
  }
}

void IndexedAggregateProvider::set_num_shards(int32_t num_shards) {
  num_shards_ = std::max(1, num_shards);
  metrics_->SetNumShards(num_shards_);
}

Status IndexedAggregateProvider::BuildIndexes(const EnvironmentTable& table,
                                              const TickRandom& rnd,
                                              exec::ThreadPool* pool,
                                              exec::ParallelStats* stats) {
  std::vector<Family*> active;
  active.reserve(families_.size());
  for (Family& family : families_) {
    if (family.sig->kind != IndexKind::kNaive) active.push_back(&family);
  }
  return BuildFamilies(active, table, rnd, pool, stats);
}

Status IndexedAggregateProvider::BuildFamilies(
    const std::vector<Family*>& families, const EnvironmentTable& table,
    const TickRandom& rnd, exec::ThreadPool* pool,
    exec::ParallelStats* stats) {
  if (pool == nullptr || families.size() <= 1) {
    // Sequential family loop; the per-row passes inside each family still
    // use the pool (when present), so single-family scripts parallelize
    // across row ranges instead — and report their fan-out via `stats`.
    for (Family* family : families) {
      SGL_RETURN_NOT_OK(BuildFamily(family, table, rnd, pool, stats));
    }
    return Status::OK();
  }
  // Families own disjoint build products, so they build concurrently;
  // nested ParallelFor calls inside BuildFamily then run inline.
  return pool->ParallelFor(
      static_cast<int64_t>(families.size()), /*grain=*/1,
      [&](int32_t, int64_t lo, int64_t hi) -> Status {
        for (int64_t f = lo; f < hi; ++f) {
          SGL_RETURN_NOT_OK(
              BuildFamily(families[f], table, rnd, pool, nullptr));
        }
        return Status::OK();
      },
      stats);
}

Status IndexedAggregateProvider::BuildFamily(Family* family,
                                             const EnvironmentTable& table,
                                             const TickRandom& rnd,
                                             exec::ThreadPool* pool,
                                             exec::ParallelStats* stats) {
  const AggregateSignature& sig = *family->sig;
  const AggregateDecl& decl = script_->program.aggregates[sig.agg_index];
  const int32_t n = table.NumRows();
  const std::string* e_name = &decl.row_var;

  // Row ranges split across workers; every write below lands in a
  // row-private slot (row_passes[r], term_cols[..][r]), so the parallel
  // build is trivially identical to the sequential one.
  constexpr int64_t kRowGrain = 512;
  auto for_rows =
      [&](const std::function<Status(RowId, RowId)>& body) -> Status {
    if (pool == nullptr) return body(0, n);
    return pool->ParallelFor(
        n, kRowGrain,
        [&](int32_t, int64_t lo, int64_t hi) {
          return body(static_cast<RowId>(lo), static_cast<RowId>(hi));
        },
        stats);
  };

  // Pass 1: build filters (pure-e conjuncts pushed into construction).
  family->row_passes.assign(n, 1);
  for (const Cond* filter : sig.build_filters) {
    SGL_RETURN_NOT_OK(for_rows([&](RowId lo, RowId hi) -> Status {
      LocalStack no_params;
      for (RowId r = lo; r < hi; ++r) {
        if (!family->row_passes[r]) continue;
        SGL_ASSIGN_OR_RETURN(
            bool pass,
            interp_->EvalCondIn(*filter, table, nullptr, -1, e_name, r,
                                &no_params, rnd, table.KeyAt(r)));
        if (!pass) family->row_passes[r] = 0;
      }
      return Status::OK();
    }));
  }

  // Pass 2: term columns (and their squares, for stddev probes).
  const int32_t m = static_cast<int32_t>(sig.terms.size());
  family->term_cols.assign(2 * m, std::vector<double>(n, 0.0));
  for (int32_t t = 0; t < m; ++t) {
    SGL_RETURN_NOT_OK(for_rows([&](RowId lo, RowId hi) -> Status {
      LocalStack no_params;
      for (RowId r = lo; r < hi; ++r) {
        if (!family->row_passes[r]) continue;
        SGL_ASSIGN_OR_RETURN(
            Value v, interp_->EvalExprIn(*sig.terms[t], table, nullptr, -1,
                                         e_name, r, &no_params, rnd,
                                         table.KeyAt(r)));
        if (!v.is_scalar()) {
          return Status::ExecutionError("aggregate term must be scalar");
        }
        family->term_cols[t][r] = v.scalar();
        family->term_cols[m + t][r] = v.scalar() * v.scalar();
      }
      return Status::OK();
    }));
  }

  // Pass 3: group passing rows by their partition components. When the
  // family is delta-maintained, snapshot each row's partition components
  // and point coordinates too — a later incremental tick retracts exactly
  // this contribution from the trees.
  const int32_t p_dims = static_cast<int32_t>(sig.partitions.size());
  if (family->maintain_deltas) {
    family->comps.assign(static_cast<size_t>(n) * p_dims, 0.0);
    family->xs.assign(n, 0.0);
    family->ys.assign(n, 0.0);
  }
  std::map<std::vector<double>, std::vector<RowId>> groups;
  for (RowId r = 0; r < n; ++r) {
    if (!family->row_passes[r]) continue;
    std::vector<double> comps;
    comps.reserve(sig.partitions.size());
    for (const PartitionDim& p : sig.partitions) {
      comps.push_back(table.Get(r, p.attr));
    }
    if (family->maintain_deltas) {
      for (int32_t i = 0; i < p_dims; ++i) {
        family->comps[static_cast<size_t>(r) * p_dims + i] = comps[i];
      }
      family->xs[r] =
          sig.ranges.size() > 0 ? table.Get(r, sig.ranges[0].attr) : 0.0;
      family->ys[r] =
          sig.ranges.size() > 1 ? table.Get(r, sig.ranges[1].attr) : 0.0;
    }
    groups[std::move(comps)].push_back(r);
  }

  // Pass 4: build one structure per partition.
  family->div_trees.clear();
  family->mm_trees.clear();
  family->kd_trees.clear();
  family->parts.clear();
  family->part_id_of.clear();
  const std::vector<int64_t>& keys = table.Keys();
  int64_t part_id = 0;
  for (auto& [comps, rows] : groups) {
    std::vector<PointRef> points;
    points.reserve(rows.size());
    for (RowId r : rows) {
      PointRef p;
      p.id = r;
      if (sig.kind == IndexKind::kKdNearest) {
        p.x = table.Get(r, posx_attr_);
        p.y = table.Get(r, posy_attr_);
      } else {
        p.x = sig.ranges.size() > 0 ? table.Get(r, sig.ranges[0].attr) : 0.0;
        p.y = sig.ranges.size() > 1 ? table.Get(r, sig.ranges[1].attr) : 0.0;
      }
      points.push_back(p);
    }
    switch (sig.kind) {
      case IndexKind::kDivisibleRangeTree: {
        std::vector<std::vector<double>> terms(family->term_cols.begin(),
                                               family->term_cols.end());
        family->div_trees.emplace(part_id,
                                  LayeredRangeTree2D(points, terms));
        break;
      }
      case IndexKind::kMinMaxTree: {
        const AggItem& item = decl.items[0];
        auto mode = (item.func == AggFunc::kMax ||
                     item.func == AggFunc::kArgmax)
                        ? MinMaxRangeTree2D::Mode::kMax
                        : MinMaxRangeTree2D::Mode::kMin;
        family->mm_trees.emplace(
            part_id,
            MinMaxRangeTree2D(points, family->term_cols[0], keys, mode));
        break;
      }
      case IndexKind::kKdNearest:
        family->kd_trees.emplace(part_id, KdTree2D(points, keys));
        break;
      case IndexKind::kNaive:
        break;
    }
    family->parts.push_back(PartitionEntry{comps, part_id});
    family->part_id_of.emplace(comps, part_id);
    ++part_id;
  }
  family->next_part_id = part_id;
  family->tree_valid = true;
  family->overlay_points = 0;
  return Status::OK();
}

Result<Rect> IndexedAggregateProvider::ProbeRect(
    const AggregateSignature& sig, RowId u_row, const EnvironmentTable& table,
    LocalStack* params, const TickRandom& rnd) const {
  const AggregateDecl& decl = script_->program.aggregates[sig.agg_index];
  const std::string* u_name = &decl.params[0];
  Rect rect{-kInf, kInf, -kInf, kInf};
  auto eval_bound = [&](const Expr* expr) -> Result<double> {
    SGL_ASSIGN_OR_RETURN(
        Value v, interp_->EvalExprIn(*expr, table, u_name, u_row, nullptr, -1,
                                     params, rnd, table.KeyAt(u_row)));
    if (!v.is_scalar()) {
      return Status::ExecutionError("range bound must be scalar");
    }
    return v.scalar();
  };
  for (size_t d = 0; d < sig.ranges.size(); ++d) {
    const RangeDim& r = sig.ranges[d];
    // Tree-based kinds put range dim 0 on the x axis and dim 1 on y; the
    // kD-tree is built over (posx, posy), so bounds map to the axis of
    // the attribute itself.
    bool on_x = sig.kind == IndexKind::kKdNearest ? r.attr == posx_attr_
                                                  : d == 0;
    double* lo = on_x ? &rect.xlo : &rect.ylo;
    double* hi = on_x ? &rect.xhi : &rect.yhi;
    if (r.lo != nullptr) {
      SGL_ASSIGN_OR_RETURN(double v, eval_bound(r.lo));
      *lo = TightenLo(v, r.lo_strict);
    }
    if (r.hi != nullptr) {
      SGL_ASSIGN_OR_RETURN(double v, eval_bound(r.hi));
      *hi = TightenHi(v, r.hi_strict);
    }
  }
  return rect;
}

Result<Value> IndexedAggregateProvider::MakeUnitRow(
    const EnvironmentTable& table, RowId row, double dist2,
    int32_t agg_index) const {
  auto out = std::make_shared<RowValue>();
  out->layout = script_->agg_layouts[agg_index];
  out->vals.assign(out->layout->fields.size(), 0.0);
  out->vals[0] = 1.0;
  out->vals[1] = dist2;
  for (AttrId a = 0; a < table.schema().NumAttrs(); ++a) {
    out->vals[2 + a] = table.Get(row, a);
  }
  return Value(std::shared_ptr<const RowValue>(std::move(out)));
}

Result<Value> IndexedAggregateProvider::EmptyRow(int32_t agg_index) const {
  auto out = std::make_shared<RowValue>();
  out->layout = script_->agg_layouts[agg_index];
  out->vals.assign(out->layout->fields.size(), 0.0);
  return Value(std::shared_ptr<const RowValue>(std::move(out)));
}

Result<Value> IndexedAggregateProvider::Eval(
    int32_t agg_index, const std::vector<Value>& scalar_args, RowId u_row,
    const EnvironmentTable& table, const TickRandom& rnd, int32_t shard) {
  const AggregateSignature& sig = signatures_[agg_index];
  if (sig.kind == IndexKind::kNaive) {
    return interp_->EvalAggregate(agg_index, scalar_args, u_row, table, rnd);
  }
  // Per-shard counters: concurrent probes never contend on one slot. An
  // out-of-range shard means the caller skipped set_num_shards — fail
  // deterministically rather than silently race on a shared slot.
  if (shard < 0 || shard >= num_shards_) {
    return Status::Internal("aggregate probe from shard ", shard,
                            " but only ", num_shards_,
                            " shards configured (set_num_shards)");
  }
  const int32_t family_index = family_of_agg_[agg_index];
  family_calls_[family_index]->Add(1, shard);
  // A family the cost model put in scan mode this tick has no (current)
  // index; answer through the reference evaluator. The demand counter
  // above still counts the call — it is the signal that flips the family
  // back to an index once calls outnumber what a scan justifies — but
  // the externally reported probe_count() does not: no index served it.
  if (family_mode_[family_index] == PhysicalChoice::kScan) {
    return interp_->EvalAggregate(agg_index, scalar_args, u_row, table, rnd);
  }
  probes_->Add(1, shard);
  const AggregateDecl& decl = script_->program.aggregates[agg_index];
  const Family& family = families_[family_index];
  const std::string* u_name = &decl.params[0];
  const int64_t u_key = table.KeyAt(u_row);

  LocalStack params;
  for (size_t i = 1; i < decl.params.size(); ++i) {
    params.Push(decl.params[i], scalar_args[i - 1]);
  }

  // Probe filters (u-only conjuncts): false => aggregate of the empty set.
  bool probe_ok = true;
  for (const Cond* filter : sig.probe_filters) {
    SGL_ASSIGN_OR_RETURN(
        bool pass, interp_->EvalCondIn(*filter, table, u_name, u_row, nullptr,
                                       -1, &params, rnd, u_key));
    if (!pass) {
      probe_ok = false;
      break;
    }
  }

  // Partition probe values.
  std::vector<double> part_values(sig.partitions.size(), 0.0);
  for (size_t i = 0; i < sig.partitions.size(); ++i) {
    SGL_ASSIGN_OR_RETURN(
        Value v,
        interp_->EvalExprIn(*sig.partitions[i].value, table, u_name, u_row,
                            nullptr, -1, &params, rnd, u_key));
    if (!v.is_scalar()) {
      return Status::ExecutionError("partition value must be scalar");
    }
    part_values[i] = v.scalar();
  }
  auto partition_matches = [&](const std::vector<double>& comps) {
    for (size_t i = 0; i < sig.partitions.size(); ++i) {
      bool equal = comps[i] == part_values[i];
      if (sig.partitions[i].negated ? equal : !equal) return false;
    }
    return true;
  };

  SGL_ASSIGN_OR_RETURN(Rect rect, ProbeRect(sig, u_row, table, &params, rnd));

  switch (sig.kind) {
    case IndexKind::kDivisibleRangeTree: {
      const int32_t m = static_cast<int32_t>(sig.terms.size());
      int64_t count = 0;
      std::vector<double> sums(2 * m, 0.0);
      if (probe_ok) {
        for (const PartitionEntry& part : family.parts) {
          if (!partition_matches(part.comps)) continue;
          const LayeredRangeTree2D& tree = family.div_trees.at(part.id);
          AggResult res = tree.Aggregate(rect);
          count += res.count;
          for (int32_t t = 0; t < 2 * m; ++t) sums[t] += res.sums[t];
        }
        if (sig.exclude_self && family.row_passes[u_row]) {
          // Divisibility (Definition 5.1): subtract the probing unit's own
          // contribution if it falls inside its own probe.
          std::vector<double> own_comps;
          for (const PartitionDim& p : sig.partitions) {
            own_comps.push_back(table.Get(u_row, p.attr));
          }
          double ox =
              sig.ranges.size() > 0 ? table.Get(u_row, sig.ranges[0].attr) : 0;
          double oy =
              sig.ranges.size() > 1 ? table.Get(u_row, sig.ranges[1].attr) : 0;
          if (partition_matches(own_comps) && rect.Contains(ox, oy)) {
            count -= 1;
            for (int32_t t = 0; t < 2 * m; ++t) {
              sums[t] -= family.term_cols[t][u_row];
            }
          }
        }
      }
      auto item_value = [&](size_t i) -> double {
        const AggItem& item = decl.items[i];
        int32_t t = sig.term_of_item[i];
        switch (item.func) {
          case AggFunc::kCount:
            return static_cast<double>(count);
          case AggFunc::kSum:
            return sums[t];
          case AggFunc::kAvg:
            return count == 0 ? 0.0 : sums[t] / static_cast<double>(count);
          case AggFunc::kStddev: {
            if (count == 0) return 0.0;
            double n = static_cast<double>(count);
            double mean = sums[t] / n;
            double var = sums[m + t] / n - mean * mean;
            return var <= 0.0 ? 0.0 : std::sqrt(var);
          }
          default:
            return 0.0;
        }
      };
      if (decl.items.size() == 1) return Value(item_value(0));
      auto row = std::make_shared<RowValue>();
      row->layout = script_->agg_layouts[agg_index];
      row->vals.resize(decl.items.size());
      for (size_t i = 0; i < decl.items.size(); ++i) {
        row->vals[i] = item_value(i);
      }
      return Value(std::shared_ptr<const RowValue>(std::move(row)));
    }

    case IndexKind::kMinMaxTree: {
      Extremum best = Extremum::None();
      const AggItem& item = decl.items[0];
      const bool is_max =
          item.func == AggFunc::kMax || item.func == AggFunc::kArgmax;
      if (probe_ok) {
        for (const PartitionEntry& part : family.parts) {
          if (!partition_matches(part.comps)) continue;
          Extremum cand = family.mm_trees.at(part.id).Query(rect);
          if (!cand.valid()) continue;
          // Compare in internal (sign-adjusted) space for MAX trees.
          Extremum adj = cand;
          if (is_max) adj.value = -adj.value;
          Extremum best_adj = best;
          if (is_max && best.valid()) best_adj.value = -best_adj.value;
          if (!best.valid() || adj < best_adj) best = cand;
        }
      }
      if (AggFuncReturnsRow(item.func)) {
        if (!best.valid()) return EmptyRow(agg_index);
        return MakeUnitRow(table, table.RowOf(best.key), 0.0, agg_index);
      }
      return Value(best.valid() ? best.value : 0.0);
    }

    case IndexKind::kKdNearest: {
      Neighbor best;
      const int64_t exclude = sig.exclude_self ? u_key : kNoExclude;
      const double qx = table.Get(u_row, posx_attr_);
      const double qy = table.Get(u_row, posy_attr_);
      const bool bounded = !sig.ranges.empty();
      if (probe_ok) {
        for (const PartitionEntry& part : family.parts) {
          if (!partition_matches(part.comps)) continue;
          const KdTree2D& tree = family.kd_trees.at(part.id);
          Neighbor cand = bounded
                              ? tree.NearestInRect(qx, qy, exclude, rect)
                              : tree.Nearest(qx, qy, exclude);
          if (!cand.found()) continue;
          if (!best.found() || cand.dist2 < best.dist2 ||
              (cand.dist2 == best.dist2 && cand.key < best.key)) {
            best = cand;
          }
        }
      }
      if (!best.found()) return EmptyRow(agg_index);
      return MakeUnitRow(table, table.RowOf(best.key), best.dist2, agg_index);
    }

    case IndexKind::kNaive:
      break;
  }
  return Status::Internal("unreachable index kind");
}

std::string IndexedAggregateProvider::DescribeAggregatePhysical(
    int32_t agg_index) const {
  const AggregateSignature& sig = signatures_[agg_index];
  std::ostringstream os;
  os << IndexKindName(sig.kind);
  if (sig.kind != IndexKind::kNaive) {
    os << ", family " << family_of_agg_[agg_index];
  }
  return os.str();
}

std::string IndexedAggregateProvider::DescribePlan() const {
  std::ostringstream os;
  os << "Aggregate plan (" << signatures_.size() << " aggregates, "
     << families_.size() << " physical index families):\n";
  for (size_t f = 0; f < families_.size(); ++f) {
    const Family& family = families_[f];
    os << "  family " << f << ": "
       << DescribeSignature(*script_, *family.sig);
    if (family.member_aggs.size() > 1) {
      os << "  [shared by";
      for (int32_t a : family.member_aggs) {
        os << " " << script_->program.aggregates[a].name;
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sgl
