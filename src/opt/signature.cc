#include "opt/signature.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

#include "env/table.h"

namespace sgl {

void PrintCanonicalNumber(double v, std::ostream& os) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kDivisibleRangeTree: return "divisible-range-tree";
    case IndexKind::kMinMaxTree: return "minmax-range-tree";
    case IndexKind::kKdNearest: return "kd-nearest";
    case IndexKind::kNaive: return "naive-scan";
  }
  return "?";
}

void CollectUses(const Expr& e, const std::string& u_name,
                 const std::string& e_name,
                 const std::vector<std::string>& params, SideUse* out) {
  if (e.kind == ExprKind::kAttrRef) {
    if (e.tuple_var == u_name) out->uses_u = true;
    if (e.tuple_var == e_name) out->uses_e = true;
  }
  if (e.kind == ExprKind::kVarRef) {
    // Scalar parameters are bound per probing unit: probe-side.
    for (const std::string& p : params) {
      if (e.name == p) out->uses_u = true;
    }
  }
  if (e.kind == ExprKind::kCall && !e.is_aggregate) {
    // random() is the only builtin whose value depends on its context row.
    std::string lower = e.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == "random") out->uses_random = true;
  }
  for (const ExprPtr& a : e.args) {
    if (a) CollectUses(*a, u_name, e_name, params, out);
  }
}

void CollectUsesCond(const Cond& c, const std::string& u_name,
                     const std::string& e_name,
                     const std::vector<std::string>& params, SideUse* out) {
  if (c.lhs) CollectUses(*c.lhs, u_name, e_name, params, out);
  if (c.rhs) CollectUses(*c.rhs, u_name, e_name, params, out);
  if (c.left) CollectUsesCond(*c.left, u_name, e_name, params, out);
  if (c.right) CollectUsesCond(*c.right, u_name, e_name, params, out);
}

SideUse AnalyzeExprUse(const Expr& e, const std::string& u_name,
                       const std::string& e_name,
                       const std::vector<std::string>& params) {
  SideUse use;
  CollectUses(e, u_name, e_name, params, &use);
  return use;
}

SideUse AnalyzeCondUse(const Cond& c, const std::string& u_name,
                       const std::string& e_name,
                       const std::vector<std::string>& params) {
  SideUse use;
  CollectUsesCond(c, u_name, e_name, params, &use);
  return use;
}

void FlattenWhere(const Cond& c, std::vector<const Cond*>* out) {
  switch (c.kind) {
    case CondKind::kTrue:
      return;
    case CondKind::kAnd:
      FlattenWhere(*c.left, out);
      FlattenWhere(*c.right, out);
      return;
    default:
      out->push_back(&c);  // kept whole; classified by side usage only
      return;
  }
}

bool IsPlainAttrRef(const Expr& e, const std::string& alias, AttrId* attr) {
  if (e.kind != ExprKind::kAttrRef || e.tuple_var != alias) return false;
  *attr = e.attr_id;
  return true;
}

namespace {

/// Canonical variable renaming for fingerprints: tuple variables print as
/// @u / @e and scalar parameters as @p<i>, so structural identity is
/// independent of the names a declaration happened to choose. All fields
/// may be null/empty (legacy callers print names verbatim).
struct NameCanon {
  const std::string* u = nullptr;
  const std::string* e = nullptr;
  const std::vector<std::string>* params = nullptr;

  void PrintTupleVar(const std::string& name, std::ostream& os) const {
    if (u != nullptr && name == *u) {
      os << "@u";
    } else if (e != nullptr && name == *e) {
      os << "@e";
    } else {
      os << name;
    }
  }
  void PrintVar(const std::string& name, std::ostream& os) const {
    if (params != nullptr) {
      for (size_t i = 0; i < params->size(); ++i) {
        if ((*params)[i] == name) {
          os << "@p" << i;
          return;
        }
      }
    }
    os << name;
  }
};

/// Fingerprint helpers: a canonical string form of analyzed expressions.
void PrintExpr(const Expr& e, std::ostream& os, const NameCanon& canon) {
  switch (e.kind) {
    case ExprKind::kNumber: PrintCanonicalNumber(e.number, os); break;
    case ExprKind::kVarRef: canon.PrintVar(e.name, os); break;
    case ExprKind::kAttrRef:
      os << "$";
      canon.PrintTupleVar(e.tuple_var, os);
      os << "." << e.attr_id;
      break;
    case ExprKind::kFieldAccess:
      PrintExpr(*e.args[0], os, canon);
      os << "." << e.attr;
      break;
    case ExprKind::kUnaryMinus:
      os << "(-";
      PrintExpr(*e.args[0], os, canon);
      os << ")";
      break;
    case ExprKind::kBinary:
      os << "(";
      PrintExpr(*e.args[0], os, canon);
      os << static_cast<int>(e.op);
      PrintExpr(*e.args[1], os, canon);
      os << ")";
      break;
    case ExprKind::kCall:
      // Builtins print their resolved id, not the source spelling (the
      // lookup is case-insensitive, so "MAX" and "max" are one function).
      if (!e.is_aggregate && e.call_id >= 0) {
        os << "b" << e.call_id;
      } else {
        os << e.name;
      }
      os << "(";
      for (const ExprPtr& a : e.args) {
        if (a) PrintExpr(*a, os, canon);
        os << ",";
      }
      os << ")";
      break;
    case ExprKind::kTuple:
      os << "<";
      PrintExpr(*e.args[0], os, canon);
      os << ",";
      PrintExpr(*e.args[1], os, canon);
      os << ">";
      break;
  }
}

void PrintCond(const Cond& c, std::ostream& os, const NameCanon& canon) {
  switch (c.kind) {
    case CondKind::kTrue: os << "T"; break;
    case CondKind::kCompare:
      os << "[";
      PrintExpr(*c.lhs, os, canon);
      os << static_cast<int>(c.op);
      PrintExpr(*c.rhs, os, canon);
      os << "]";
      break;
    case CondKind::kNot:
      os << "!";
      PrintCond(*c.left, os, canon);
      break;
    case CondKind::kAnd:
    case CondKind::kOr:
      os << (c.kind == CondKind::kAnd ? "&" : "|") << "(";
      PrintCond(*c.left, os, canon);
      PrintCond(*c.right, os, canon);
      os << ")";
      break;
  }
}

}  // namespace

std::string AggregateSignature::Fingerprint() const {
  NameCanon canon{&u_name, &e_name, &param_names};
  std::ostringstream os;
  os << IndexKindName(kind) << "|";
  for (const RangeDim& r : ranges) {
    os << "R" << r.attr << ":";
    if (r.lo) PrintExpr(*r.lo, os, canon);
    os << (r.lo_strict ? "<" : "<=");
    if (r.hi) PrintExpr(*r.hi, os, canon);
    os << (r.hi_strict ? "<" : "<=") << ";";
  }
  for (const PartitionDim& p : partitions) {
    os << "P" << p.attr << (p.negated ? "!" : "=");
    PrintExpr(*p.value, os, canon);
    os << ";";
  }
  for (const Cond* f : build_filters) {
    os << "F";
    PrintCond(*f, os, canon);
  }
  for (const Cond* f : probe_filters) {
    os << "U";
    PrintCond(*f, os, canon);
  }
  os << (exclude_self ? "X" : "-") << "|";
  for (const Expr* t : terms) {
    os << "t";
    PrintExpr(*t, os, canon);
  }
  return os.str();
}

std::string CanonicalAggregateFingerprint(const Script& script,
                                          int32_t agg_index) {
  const AggregateDecl& decl = script.program.aggregates[agg_index];
  const std::vector<std::string> params(decl.params.begin() + 1,
                                        decl.params.end());
  NameCanon canon{&decl.params[0], &decl.row_var, &params};
  std::ostringstream os;
  os << "agg|p" << params.size() << "|";
  for (const AggItem& item : decl.items) {
    os << AggFuncName(item.func) << ":" << item.alias << ":";
    if (item.term) PrintExpr(*item.term, os, canon);
    os << ";";
  }
  os << "where:";
  PrintCond(*decl.where, os, canon);
  return os.str();
}

Result<AggregateSignature> ExtractSignature(const Script& script,
                                            int32_t agg_index) {
  const AggregateDecl& decl = script.program.aggregates[agg_index];
  const Schema& schema = script.schema;
  const std::string& u = decl.params[0];
  const std::string& e = decl.row_var;
  const std::vector<std::string> params(decl.params.begin() + 1,
                                        decl.params.end());

  AggregateSignature sig;
  sig.agg_index = agg_index;
  sig.u_name = u;
  sig.e_name = e;
  sig.param_names = params;

  auto naive = [&](std::string reason) {
    sig.kind = IndexKind::kNaive;
    sig.reason = std::move(reason);
    sig.ranges.clear();
    sig.partitions.clear();
    sig.build_filters.clear();
    sig.probe_filters.clear();
    sig.terms.clear();
    sig.term_of_item.clear();
    sig.exclude_self = false;
    return sig;
  };

  // ---- classify conjuncts ----
  std::vector<const Cond*> conjuncts;
  FlattenWhere(*decl.where, &conjuncts);

  struct Bound {
    const Expr* expr;
    bool strict;
  };
  // Per e-attribute collected bounds (we keep one lo and one hi; a second
  // bound of the same sense forces naive — rare and not worth min/max-ing).
  std::map<AttrId, RangeDim> range_of;

  for (const Cond* c : conjuncts) {
    SideUse use;
    CollectUsesCond(*c, u, e, params, &use);
    if (use.uses_random) {
      return naive("random() in where clause");
    }
    if (!use.uses_e) {
      sig.probe_filters.push_back(c);
      continue;
    }
    if (!use.uses_u) {
      sig.build_filters.push_back(c);
      continue;
    }
    // Mixed conjunct: must be a comparison with a plain e.attr on one side
    // and a u-only expression on the other.
    if (c->kind != CondKind::kCompare) {
      return naive("non-comparison condition mixes u and e");
    }
    AttrId attr = Schema::kInvalidAttr;
    const Expr* probe_side = nullptr;
    CompareOp op = c->op;
    SideUse lhs_use, rhs_use;
    CollectUses(*c->lhs, u, e, params, &lhs_use);
    CollectUses(*c->rhs, u, e, params, &rhs_use);
    if (IsPlainAttrRef(*c->lhs, e, &attr) && !rhs_use.uses_e) {
      probe_side = c->rhs.get();
    } else if (IsPlainAttrRef(*c->rhs, e, &attr) && !lhs_use.uses_e) {
      probe_side = c->lhs.get();
      // Flip: expr op e.attr  ==  e.attr op' expr.
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      return naive("conjunct is not of the form e.attr cmp expr(u)");
    }

    if (attr == kKeyAttrId && op == CompareOp::kNe) {
      // e.key <> u.key — self-exclusion.
      AttrId k;
      if (IsPlainAttrRef(*probe_side, u, &k) && k == kKeyAttrId) {
        sig.exclude_self = true;
        continue;
      }
      return naive("key inequality against a non-key expression");
    }
    switch (op) {
      case CompareOp::kEq:
        sig.partitions.push_back(PartitionDim{attr, probe_side, false});
        break;
      case CompareOp::kNe:
        sig.partitions.push_back(PartitionDim{attr, probe_side, true});
        break;
      case CompareOp::kLt:
      case CompareOp::kLe: {
        RangeDim& r = range_of[attr];
        if (r.hi != nullptr) return naive("duplicate upper bound");
        r.attr = attr;
        r.hi = probe_side;
        r.hi_strict = op == CompareOp::kLt;
        break;
      }
      case CompareOp::kGt:
      case CompareOp::kGe: {
        RangeDim& r = range_of[attr];
        if (r.lo != nullptr) return naive("duplicate lower bound");
        r.attr = attr;
        r.lo = probe_side;
        r.lo_strict = op == CompareOp::kGt;
        break;
      }
    }
  }

  // Order range dimensions: position attributes first (most volatile last
  // per the paper's layering advice — but with 2-D trees rebuilt per tick
  // the choice only fixes which is the x dimension).
  for (auto& [attr, dim] : range_of) sig.ranges.push_back(dim);
  std::stable_sort(sig.ranges.begin(), sig.ranges.end(),
                   [&](const RangeDim& a, const RangeDim& b) {
                     auto rank = [&](AttrId id) {
                       const std::string& n = schema.attr(id).name;
                       if (n == "posx") return 0;
                       if (n == "posy") return 1;
                       return 2;
                     };
                     return rank(a.attr) < rank(b.attr);
                   });
  if (sig.ranges.size() > 2) {
    return naive("more than two probe-dependent range attributes");
  }
  if (sig.partitions.size() > 3) {
    return naive("more than three partition attributes");
  }

  // ---- choose the physical strategy from the aggregate functions ----
  const bool returns_row = decl.ReturnsRow();
  auto term_is_e_only = [&](const Expr& t) {
    SideUse use;
    CollectUses(t, u, e, params, &use);
    return use.uses_e && !use.uses_u && !use.uses_random;
  };
  auto term_is_const = [&](const Expr& t) {
    SideUse use;
    CollectUses(t, u, e, params, &use);
    return !use.uses_e && !use.uses_u && !use.uses_random;
  };

  if (returns_row) {
    const AggItem& item = decl.items[0];
    if (item.func == AggFunc::kNearest) {
      // The kD-tree is built over (posx, posy); range constraints on any
      // other attribute cannot be pushed into the spatial search.
      for (const RangeDim& r : sig.ranges) {
        const std::string& n = schema.attr(r.attr).name;
        if (n != "posx" && n != "posy") {
          return naive("nearest with a range constraint on non-position "
                       "attribute '" + n + "'");
        }
      }
      sig.kind = IndexKind::kKdNearest;
      return sig;
    }
    // argmin / argmax.
    if (sig.exclude_self) {
      return naive("argmin/argmax cannot subtract the probing unit "
                   "(extrema are not divisible)");
    }
    if (!term_is_e_only(*item.term) && !term_is_const(*item.term)) {
      return naive("argmin/argmax term depends on the probing unit");
    }
    sig.kind = IndexKind::kMinMaxTree;
    sig.terms.push_back(item.term.get());
    sig.term_of_item.push_back(0);
    return sig;
  }

  bool any_extremum = false;
  bool all_divisible = true;
  for (const AggItem& item : decl.items) {
    if (item.func == AggFunc::kMin || item.func == AggFunc::kMax) {
      any_extremum = true;
    } else if (!AggFuncIsDivisible(item.func)) {
      all_divisible = false;
    }
  }
  if (any_extremum) {
    if (decl.items.size() != 1) {
      return naive("min/max mixed with other select items");
    }
    if (sig.exclude_self) {
      return naive("min/max cannot subtract the probing unit");
    }
    const AggItem& item = decl.items[0];
    if (!term_is_e_only(*item.term) && !term_is_const(*item.term)) {
      return naive("min/max term depends on the probing unit");
    }
    sig.kind = IndexKind::kMinMaxTree;
    sig.terms.push_back(item.term.get());
    sig.term_of_item.push_back(0);
    return sig;
  }
  if (!all_divisible) {
    return naive("non-divisible aggregate function");
  }

  // Divisible: map items onto shared term columns. stddev needs the term
  // and its square; the square is synthesized at build time (flagged by a
  // negative encoding: term index i plus kSquareBit).
  sig.kind = IndexKind::kDivisibleRangeTree;
  for (const AggItem& item : decl.items) {
    if (item.func == AggFunc::kCount) {
      sig.term_of_item.push_back(-1);
      continue;
    }
    if (!term_is_e_only(*item.term) && !term_is_const(*item.term)) {
      return naive("aggregate term depends on the probing unit");
    }
    sig.term_of_item.push_back(static_cast<int32_t>(sig.terms.size()));
    sig.terms.push_back(item.term.get());
  }
  return sig;
}

namespace {

void CollectExprAttrs(const Expr& e, uint64_t* mask) {
  if (e.kind == ExprKind::kAttrRef && e.attr_id != kKeyAttrId &&
      e.attr_id != Schema::kInvalidAttr) {
    *mask |= TableChanges::BitOf(e.attr_id);
  }
  for (const ExprPtr& a : e.args) {
    if (a) CollectExprAttrs(*a, mask);
  }
}

void CollectCondAttrs(const Cond& c, uint64_t* mask) {
  if (c.lhs) CollectExprAttrs(*c.lhs, mask);
  if (c.rhs) CollectExprAttrs(*c.rhs, mask);
  if (c.left) CollectCondAttrs(*c.left, mask);
  if (c.right) CollectCondAttrs(*c.right, mask);
}

}  // namespace

uint64_t BuildDependencyMask(const AggregateSignature& sig) {
  uint64_t mask = 0;
  for (const RangeDim& r : sig.ranges) {
    if (r.attr != kKeyAttrId) mask |= TableChanges::BitOf(r.attr);
  }
  for (const PartitionDim& p : sig.partitions) {
    if (p.attr != kKeyAttrId) mask |= TableChanges::BitOf(p.attr);
  }
  for (const Cond* f : sig.build_filters) CollectCondAttrs(*f, &mask);
  for (const Expr* t : sig.terms) CollectExprAttrs(*t, &mask);
  return mask;
}

std::string DescribeSignature(const Script& script,
                              const AggregateSignature& sig) {
  const AggregateDecl& decl = script.program.aggregates[sig.agg_index];
  const Schema& schema = script.schema;
  std::ostringstream os;
  os << decl.name << ": " << IndexKindName(sig.kind);
  if (sig.kind == IndexKind::kNaive) {
    os << " (" << sig.reason << ")";
    return os.str();
  }
  if (!sig.ranges.empty()) {
    os << " ranges(";
    for (size_t i = 0; i < sig.ranges.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.attr(sig.ranges[i].attr).name;
    }
    os << ")";
  }
  if (!sig.partitions.empty()) {
    os << " partitions(";
    for (size_t i = 0; i < sig.partitions.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.attr(sig.partitions[i].attr).name
         << (sig.partitions[i].negated ? "<>" : "=");
    }
    os << ")";
  }
  if (!sig.build_filters.empty()) {
    os << " build-filters(" << sig.build_filters.size() << ")";
  }
  if (sig.exclude_self) os << " exclude-self";
  if (!sig.terms.empty()) os << " terms(" << sig.terms.size() << ")";
  return os.str();
}

}  // namespace sgl
