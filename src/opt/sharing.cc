#include "opt/sharing.h"

#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

namespace sgl {

namespace {

/// Probe calls a group must accumulate before its hit rate is judged;
/// below this a scan's worth of memo misses cannot hurt.
constexpr int64_t kDemotionMinCalls = 64;

/// Does the expression/condition reference the tuple variable `name`?
/// Thin wrappers over the signature module's side-use analysis (empty
/// e-alias and param list restrict it to exactly that question), so the
/// sharing classifier and the signature extractor can never drift apart
/// on what counts as a variable reference.
bool ExprUsesTuple(const Expr& e, const std::string& name) {
  return AnalyzeExprUse(e, name, "", {}).uses_u;
}

bool CondUsesTuple(const Cond& c, const std::string& name) {
  return AnalyzeCondUse(c, name, "", {}).uses_u;
}

void CollectParamRefs(const Expr& e, const std::vector<std::string>& params,
                      std::vector<bool>* used) {
  if (e.kind == ExprKind::kVarRef) {
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i] == e.name) (*used)[i] = true;
    }
  }
  for (const ExprPtr& a : e.args) {
    if (a) CollectParamRefs(*a, params, used);
  }
}

void CollectParamRefsCond(const Cond& c,
                          const std::vector<std::string>& params,
                          std::vector<bool>* used) {
  if (c.lhs) CollectParamRefs(*c.lhs, params, used);
  if (c.rhs) CollectParamRefs(*c.rhs, params, used);
  if (c.left) CollectParamRefsCond(*c.left, params, used);
  if (c.right) CollectParamRefsCond(*c.right, params, used);
}

}  // namespace

const char* SharingClassName(SharingClass cls) {
  switch (cls) {
    case SharingClass::kPerUnit: return "per-unit";
    case SharingClass::kUnitInvariant: return "unit-invariant";
    case SharingClass::kPartitionKeyed: return "partition-keyed";
  }
  return "?";
}

SharingPlan ClassifySharing(const Script& script,
                            const AggregateSignature& sig) {
  const AggregateDecl& decl = script.program.aggregates[sig.agg_index];
  const std::string& u = decl.params[0];
  const std::vector<std::string> params(decl.params.begin() + 1,
                                        decl.params.end());
  SharingPlan plan;
  auto per_unit = [&](std::string reason) {
    plan.cls = SharingClass::kPerUnit;
    plan.reason = std::move(reason);
    plan.key_exprs.clear();
    plan.key_conds.clear();
    plan.key_params.clear();
    return plan;
  };
  // Referenced scalar parameters become raw key components; unused ones
  // cannot influence the result and stay out of the key.
  auto params_to_key = [&](const std::vector<bool>& used) {
    for (size_t i = 0; i < used.size(); ++i) {
      if (used[i]) plan.key_params.push_back(static_cast<int32_t>(i));
    }
    plan.cls = plan.key_params.empty() ? SharingClass::kUnitInvariant
                                       : SharingClass::kPartitionKeyed;
    return plan;
  };

  if (sig.kind == IndexKind::kKdNearest) {
    return per_unit("nearest probes from the unit's own position");
  }
  if (sig.exclude_self) {
    return per_unit("self-excluding: subtracts the probing unit's own "
                    "contribution");
  }

  if (sig.kind == IndexKind::kNaive) {
    // No probe/build decomposition exists: the reference scan may use the
    // unit anywhere, so analyze the whole declaration.
    for (const AggItem& item : decl.items) {
      if (item.func == AggFunc::kNearest) {
        return per_unit("nearest probes from the unit's own position");
      }
    }
    bool uses_u = CondUsesTuple(*decl.where, u);
    for (const AggItem& item : decl.items) {
      if (item.term && ExprUsesTuple(*item.term, u)) uses_u = true;
    }
    if (uses_u) {
      return per_unit("references the probing unit's attributes");
    }
    std::vector<bool> used(params.size(), false);
    CollectParamRefsCond(*decl.where, params, &used);
    for (const AggItem& item : decl.items) {
      if (item.term) CollectParamRefs(*item.term, params, &used);
    }
    return params_to_key(used);
  }

  // Indexable kinds: unit-dependence can only flow through the probe side
  // of the signature — build filters and terms are e-only by construction
  // (a u-dependent term already forced the naive fallback).
  bool any_u = false;
  auto check_expr = [&](const Expr* e) {
    if (e != nullptr && ExprUsesTuple(*e, u)) any_u = true;
  };
  for (const PartitionDim& p : sig.partitions) check_expr(p.value);
  for (const RangeDim& r : sig.ranges) {
    check_expr(r.lo);
    check_expr(r.hi);
  }
  for (const Cond* f : sig.probe_filters) {
    if (CondUsesTuple(*f, u)) any_u = true;
  }

  if (any_u) {
    // Key on the evaluated probe values: two units with equal partition
    // values, range bounds, and probe-filter outcomes get equal results
    // (the probe algorithm consumes nothing else once self-exclusion is
    // ruled out above).
    for (const PartitionDim& p : sig.partitions) {
      plan.key_exprs.push_back(p.value);
    }
    for (const RangeDim& r : sig.ranges) {
      if (r.lo != nullptr) plan.key_exprs.push_back(r.lo);
      if (r.hi != nullptr) plan.key_exprs.push_back(r.hi);
    }
    plan.key_conds = sig.probe_filters;
    plan.cls = SharingClass::kPartitionKeyed;
    return plan;
  }

  // No unit attributes anywhere on the probe side: the scalar arguments
  // alone determine the probe, so key on the referenced ones directly
  // (cheaper than re-evaluating bound expressions per call).
  std::vector<bool> used(params.size(), false);
  for (const PartitionDim& p : sig.partitions) {
    CollectParamRefs(*p.value, params, &used);
  }
  for (const RangeDim& r : sig.ranges) {
    if (r.lo != nullptr) CollectParamRefs(*r.lo, params, &used);
    if (r.hi != nullptr) CollectParamRefs(*r.hi, params, &used);
  }
  for (const Cond* f : sig.probe_filters) {
    CollectParamRefsCond(*f, params, &used);
  }
  return params_to_key(used);
}

// ----------------------------------------------------------- SharingContext

size_t SharingContext::KeyHash::operator()(const Key& key) const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (double d : key) {
    uint64_t bits = 0;
    if (d != 0.0) std::memcpy(&bits, &d, sizeof(bits));  // -0.0 == 0.0
    h ^= bits;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

SharingContext::SharingContext()
    : own_metrics_(std::make_unique<obs::MetricsRegistry>()),
      metrics_(own_metrics_.get()),
      prefix_("sharing.") {
  demotions_ =
      metrics_->GetCounter(prefix_ + "demotions", obs::kMetricExecDependent);
}

void SharingContext::BindGroup(int32_t g) {
  const std::string base = prefix_ + "group" + std::to_string(g) + ".";
  Group& group = *groups_[g];
  // All sharing tallies are execution-dependent. Hits obviously race
  // across shards; calls/entries/demotions are deterministic per context,
  // but shard workers keep private contexts (their memo inserts are
  // unsharded), so under sharding the driver context's counters read 0
  // while a single-table run's read nonzero — the counts describe how
  // evaluation was organized, not the simulated world.
  group.calls =
      metrics_->GetCounter(base + "calls", obs::kMetricExecDependent);
  group.hits =
      metrics_->GetCounter(base + "hits", obs::kMetricExecDependent);
  group.entries =
      metrics_->GetCounter(base + "entries", obs::kMetricExecDependent);
}

int32_t SharingContext::RegisterAggregate(const std::string& member,
                                          const std::string& canonical_key,
                                          SharingClass cls,
                                          const std::string& reason) {
  auto [it, inserted] = group_by_key_.emplace(
      canonical_key, static_cast<int32_t>(groups_.size()));
  if (inserted) {
    auto group = std::make_unique<Group>();
    group->cls = cls;
    group->reason = reason;
    group->active = cls != SharingClass::kPerUnit;
    groups_.push_back(std::move(group));
    BindGroup(it->second);
  }
  groups_[it->second]->members.push_back(member);
  return it->second;
}

void SharingContext::set_num_shards(int32_t num_shards) {
  num_shards_ = num_shards < 1 ? 1 : num_shards;
  metrics_->SetNumShards(num_shards_);
}

void SharingContext::BindMetrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  metrics_ = registry;
  prefix_ = prefix;
  demotions_ =
      metrics_->GetCounter(prefix_ + "demotions", obs::kMetricExecDependent);
  for (size_t g = 0; g < groups_.size(); ++g) {
    BindGroup(static_cast<int32_t>(g));
  }
}

int64_t SharingContext::GroupCalls(int32_t group) const {
  return groups_[group]->calls->value();
}

int64_t SharingContext::GroupHits(int32_t group) const {
  return groups_[group]->hits->value();
}

int64_t SharingContext::GroupEntries(int32_t group) const {
  return groups_[group]->entries->value();
}

int64_t SharingContext::shared_hits() const {
  int64_t total = 0;
  for (const auto& group : groups_) total += group->hits->value();
  return total;
}

int64_t SharingContext::memo_entries() const {
  int64_t total = 0;
  for (const auto& group : groups_) total += group->entries->value();
  return total;
}

void SharingContext::BeginTick() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    Group& group = *groups_[g];
    if (!group.active) continue;
    // Demotion: once enough probes prove the keys nearly unique (>75%
    // distinct), memoization costs more than it saves. The counts are
    // cumulative so low-rate groups (a handful of calls per tick, every
    // key fresh) get caught too, and they are pure per-tick totals, so
    // the verdict is identical for any worker-thread count.
    const int64_t calls = GroupCalls(static_cast<int32_t>(g));
    const int64_t entries = group.entries->value();
    if (group.cls == SharingClass::kPartitionKeyed &&
        calls >= kDemotionMinCalls && entries * 4 > calls * 3) {
      group.active = false;
      group.demoted = true;
      std::ostringstream os;
      os << "demoted: keys nearly unique per probe (" << entries
         << " distinct keys over " << calls << " calls)";
      group.reason = os.str();
      demotions_->Add(1);
      if (tracer_ != nullptr) {
        char args[128];
        std::snprintf(args, sizeof(args),
                      "{\"group\":%d,\"entries\":%lld,\"calls\":%lld}",
                      static_cast<int32_t>(g), static_cast<long long>(entries),
                      static_cast<long long>(calls));
        tracer_->Instant("sharing.demote", 0, 0, args);
      }
    }
    // Memoized results are only valid against the frozen state of the
    // tick that computed them. Single-threaded here (tick prologue), so
    // no lock is needed.
    group.memo.clear();
  }
}

bool SharingContext::Lookup(int32_t group_id, const Key& key, Value* out,
                            int32_t shard) {
  Group& group = *groups_[group_id];
  group.calls->Add(1, shard);
  {
    std::shared_lock<std::shared_mutex> lock(group.mu);
    auto it = group.memo.find(key);
    if (it == group.memo.end()) return false;
    *out = it->second;
  }
  group.hits->Add(1, shard);
  return true;
}

void SharingContext::Publish(int32_t group_id, const Key& key, Value value) {
  Group& group = *groups_[group_id];
  std::unique_lock<std::shared_mutex> lock(group.mu);
  // Publish-once: if a racing shard installed this key first, its value
  // is bit-identical (aggregates are deterministic in (key, table)) and
  // this copy is simply dropped.
  auto [it, inserted] = group.memo.emplace(key, std::move(value));
  if (inserted) group.entries->Add(1);
}

std::string SharingContext::Describe() const {
  std::ostringstream os;
  os << "Aggregate sharing (" << groups_.size()
     << " dedup groups, per-tick memoization):\n";
  for (size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = *groups_[g];
    os << "  group " << g << " [" << SharingClassName(group.cls);
    if (group.demoted) os << ", demoted";
    os << "] ";
    for (size_t m = 0; m < group.members.size(); ++m) {
      if (m > 0) os << " = ";
      os << group.members[m];
    }
    if (group.cls == SharingClass::kPerUnit || group.demoted) {
      os << ": " << group.reason;
    }
    if (group.cls != SharingClass::kPerUnit) {
      os << ": calls " << GroupCalls(static_cast<int32_t>(g)) << ", hits "
         << GroupHits(static_cast<int32_t>(g)) << ", entries "
         << GroupEntries(static_cast<int32_t>(g));
    }
    os << "\n";
  }
  return os.str();
}

// -------------------------------------------------- SharingAggregateProvider

Result<std::unique_ptr<SharingAggregateProvider>>
SharingAggregateProvider::Create(const Script& script,
                                 const Interpreter& interp,
                                 AggregateProvider* inner, SharingContext* ctx,
                                 const std::string& session_name) {
  std::unique_ptr<SharingAggregateProvider> provider(
      new SharingAggregateProvider(script, interp, inner, ctx));
  const int32_t num_aggs =
      static_cast<int32_t>(script.program.aggregates.size());
  provider->plans_.reserve(num_aggs);
  provider->group_of_.reserve(num_aggs);
  for (int32_t a = 0; a < num_aggs; ++a) {
    SGL_ASSIGN_OR_RETURN(AggregateSignature sig, ExtractSignature(script, a));
    SharingPlan plan = ClassifySharing(script, sig);
    const std::string member =
        session_name + "." + script.program.aggregates[a].name;
    provider->group_of_.push_back(ctx->RegisterAggregate(
        member, CanonicalAggregateFingerprint(script, a), plan.cls,
        plan.reason));
    provider->plans_.push_back(std::move(plan));
  }
  return provider;
}

Result<Value> SharingAggregateProvider::InnerEval(
    int32_t agg_index, const std::vector<Value>& scalar_args, RowId u_row,
    const EnvironmentTable& table, const TickRandom& rnd, int32_t shard) {
  if (inner_ != nullptr) {
    return inner_->Eval(agg_index, scalar_args, u_row, table, rnd, shard);
  }
  return interp_->EvalAggregate(agg_index, scalar_args, u_row, table, rnd);
}

Result<Value> SharingAggregateProvider::Eval(
    int32_t agg_index, const std::vector<Value>& scalar_args, RowId u_row,
    const EnvironmentTable& table, const TickRandom& rnd, int32_t shard) {
  const int32_t group = group_of_[agg_index];
  // An out-of-range shard means set_num_shards was skipped; bypass the
  // memo (and its per-shard tallies) rather than write past the arrays.
  if (!ctx_->Active(group) || shard < 0 || shard >= ctx_->num_shards()) {
    return InnerEval(agg_index, scalar_args, u_row, table, rnd, shard);
  }
  const SharingPlan& plan = plans_[agg_index];

  SharingContext::Key key;
  key.reserve(plan.key_exprs.size() + plan.key_conds.size() +
              plan.key_params.size());
  if (!plan.key_exprs.empty() || !plan.key_conds.empty()) {
    const AggregateDecl& decl = script_->program.aggregates[agg_index];
    const std::string* u_name = &decl.params[0];
    const int64_t u_key = table.KeyAt(u_row);
    LocalStack locals;
    for (size_t i = 1; i < decl.params.size(); ++i) {
      locals.Push(decl.params[i], scalar_args[i - 1]);
    }
    for (const Expr* e : plan.key_exprs) {
      SGL_ASSIGN_OR_RETURN(
          Value v, interp_->EvalExprIn(*e, table, u_name, u_row, nullptr, -1,
                                       &locals, rnd, u_key));
      if (!v.is_scalar()) {
        return InnerEval(agg_index, scalar_args, u_row, table, rnd, shard);
      }
      key.push_back(v.scalar());
    }
    for (const Cond* c : plan.key_conds) {
      SGL_ASSIGN_OR_RETURN(
          bool pass, interp_->EvalCondIn(*c, table, u_name, u_row, nullptr,
                                         -1, &locals, rnd, u_key));
      key.push_back(pass ? 1.0 : 0.0);
    }
  }
  for (int32_t p : plan.key_params) {
    const Value& v = scalar_args[p];
    if (!v.is_scalar()) {
      return InnerEval(agg_index, scalar_args, u_row, table, rnd, shard);
    }
    key.push_back(v.scalar());
  }

  Value out;
  if (ctx_->Lookup(group, key, &out, shard)) return out;
  SGL_ASSIGN_OR_RETURN(out,
                       InnerEval(agg_index, scalar_args, u_row, table, rnd,
                                 shard));
  ctx_->Publish(group, key, out);
  return out;
}

}  // namespace sgl
