// The per-family cost model behind the adaptive evaluator.
//
// The paper's Section 6 engine always rebuilds every deduplicated index
// family from scratch each tick; its own cost discussion, though, makes
// clear that an index only pays off when the probe savings exceed the
// build cost — which varies per signature (how many passes the build
// evaluates per row), per scenario (a global-sum aggregate is answered by
// one near-free scan; a kD family may be probed thousands of times), and
// per tick (churn rises and falls). This model makes that choice
// explicit: each tick, every physical index family is assigned one of
//
//   kScan        don't build; member aggregates fall back to the
//                reference scan (the naive evaluator, per probe);
//   kRebuild     the paper's default: build the family's per-partition
//                structures from scratch, probe in O(log n);
//   kIncremental divisible range-tree families only: apply the tick's
//                delta log to the existing trees (RemovePoint /
//                InsertPoint overlays) instead of rebuilding.
//
// Estimates are in abstract cost units (calibrated against Release-build
// measurements; only ratios matter). All model inputs are *counts* —
// table rows, per-family probe tallies, dirty-row counts, overlay sizes —
// never wall-clock times, so decisions are a deterministic function of
// the simulation state and stay bit-identical for any worker-thread
// count. Expected probe demand is an exponentially-weighted average of
// the tallies observed on previous ticks, so decisions adapt mid-run
// (classic mid-query re-optimization, tick-granular).
#ifndef SGL_OPT_COST_H_
#define SGL_OPT_COST_H_

#include <cstdint>
#include <string>

namespace sgl {

/// Physical strategy the model assigns to one index family for one tick.
enum class PhysicalChoice : uint8_t { kScan, kRebuild, kIncremental };

const char* PhysicalChoiceName(PhysicalChoice choice);

/// Deterministic exponentially-weighted estimate of a per-tick count.
/// Observe() folds the latest observation in with weight 1/4 — enough
/// inertia that one quiet tick does not drop a hot index, while a real
/// demand shift wins within a few ticks.
class CountEwma {
 public:
  /// Current estimate; `fallback` until the first observation.
  double Get(double fallback) const { return seeded_ ? value_ : fallback; }
  bool seeded() const { return seeded_; }

  void Observe(int64_t count) {
    const double c = static_cast<double>(count);
    value_ = seeded_ ? (3.0 * value_ + c) / 4.0 : c;
    seeded_ = true;
  }

 private:
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Everything the model knows about one family at decision time.
struct FamilyCostInputs {
  int64_t rows = 0;            ///< table rows (index candidates)
  double expected_probes = 0;  ///< EWMA of the family's per-tick probes
  int64_t build_passes = 1;    ///< per-row expressions a build evaluates
  int64_t partitions = 1;      ///< structures probed per aggregate call
  int64_t dirty_rows = 0;      ///< rows whose build inputs changed
  int64_t overlay = 0;         ///< outstanding delta points (pre-tick)
  bool divisible = false;      ///< family supports the incremental path
  bool maintainable = false;   ///< valid tree + non-structural change log
};

/// Per-alternative cost estimates (abstract units), for EXPLAIN.
struct CostEstimate {
  double scan = 0.0;
  double rebuild = 0.0;
  double incremental = 0.0;  ///< +inf when the path is unavailable
};

/// The model's verdict for one family and tick.
struct CostDecision {
  PhysicalChoice choice = PhysicalChoice::kRebuild;
  CostEstimate est;
};

/// Calibrated per-operation constants. The defaults were fit against
/// Release-build bench_suite phase timings (index-build vs decision) on
/// the registered scenarios; they only need to be right within a factor
/// of a few, because the regimes they separate are orders of magnitude
/// apart (probes x rows vs rows log rows).
struct CostConstants {
  double scan_row = 90.0;        ///< naive eval, per probe per table row
  double probe_base = 250.0;     ///< per probe: filters, partition values
  double probe_log = 30.0;       ///< per probe per log2(rows)
  double probe_partition = 60.0; ///< per probe per extra partition
  double probe_overlay = 6.0;    ///< per probe per outstanding delta point
  double build_row_pass = 90.0;  ///< per row per build expression pass
  double build_point = 60.0;     ///< tree construction, per row per log2
  double delta_row = 400.0;      ///< per dirty row: re-eval + tree touch
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostConstants constants) : k_(constants) {}

  const CostConstants& constants() const { return k_; }

  /// Choose the cheapest physical strategy for one family this tick.
  /// Ties break toward kRebuild (the paper's default), then kScan; the
  /// comparison is deterministic because every input is.
  CostDecision Choose(const FamilyCostInputs& in) const;

 private:
  CostConstants k_;
};

/// Render "scan=1.2e6 rebuild=3.4e5 incr=—" for EXPLAIN output.
std::string DescribeEstimate(const CostEstimate& est);

}  // namespace sgl

#endif  // SGL_OPT_COST_H_
