#include "opt/reach.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "opt/signature.h"
#include "sgl/ast.h"

namespace sgl {

namespace {

/// Fold an expression containing only numbers and arithmetic (constants
/// were already substituted by the analyzer). Returns false otherwise.
/// Mirrors action_sink.cc so both analyses agree on what "constant" means.
bool FoldPure(const Expr& e, double* out) {
  switch (e.kind) {
    case ExprKind::kNumber:
      *out = e.number;
      return true;
    case ExprKind::kUnaryMinus: {
      double v;
      if (!FoldPure(*e.args[0], &v)) return false;
      *out = -v;
      return true;
    }
    case ExprKind::kBinary: {
      double l, r;
      if (!FoldPure(*e.args[0], &l) || !FoldPure(*e.args[1], &r)) return false;
      switch (e.op) {
        case BinaryOp::kAdd: *out = l + r; return true;
        case BinaryOp::kSub: *out = l - r; return true;
        case BinaryOp::kMul: *out = l * r; return true;
        case BinaryOp::kDiv:
          if (r == 0.0) return false;
          *out = l / r;
          return true;
        case BinaryOp::kMod:
          if (r == 0.0) return false;
          *out = std::fmod(l, r);
          return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Match `u.<pos> + c` / `u.<pos> - c` / plain `u.<pos>`; returns the
/// signed constant offset c.
bool MatchCenterOffset(const Expr& e, const std::string& u_name, AttrId pos,
                       double* offset) {
  AttrId attr;
  if (IsPlainAttrRef(e, u_name, &attr)) {
    if (attr != pos) return false;
    *offset = 0.0;
    return true;
  }
  if (e.kind != ExprKind::kBinary ||
      (e.op != BinaryOp::kAdd && e.op != BinaryOp::kSub)) {
    return false;
  }
  if (!IsPlainAttrRef(*e.args[0], u_name, &attr) || attr != pos) return false;
  double c;
  if (!FoldPure(*e.args[1], &c)) return false;
  *offset = e.op == BinaryOp::kAdd ? c : -c;
  return true;
}

bool ExprHasAggregate(const Expr& e) {
  if (e.kind == ExprKind::kCall && e.is_aggregate) return true;
  for (const ExprPtr& arg : e.args) {
    if (arg != nullptr && ExprHasAggregate(*arg)) return true;
  }
  return false;
}

bool CondHasAggregate(const Cond& c) {
  switch (c.kind) {
    case CondKind::kCompare:
      return (c.lhs != nullptr && ExprHasAggregate(*c.lhs)) ||
             (c.rhs != nullptr && ExprHasAggregate(*c.rhs));
    case CondKind::kAnd:
    case CondKind::kOr:
      return CondHasAggregate(*c.left) || CondHasAggregate(*c.right);
    case CondKind::kNot:
      return CondHasAggregate(*c.left);
    case CondKind::kTrue:
      return false;
  }
  return false;
}

/// Grow `reach` to cover |offset| world units; keeps it bounded.
void Cover(ScriptReach* reach, double offset) {
  reach->radius = std::max(reach->radius, std::fabs(offset));
}

void MarkUnbounded(ScriptReach* reach, const std::string& why) {
  if (reach->bounded) {
    reach->bounded = false;
    reach->note = why;
  }
}

/// The x-extent of one aggregate probe. Stripes partition on posx alone,
/// so only the x dimension must be a constant-offset interval around
/// u.posx; y may span the world.
void CoverAggregate(const Script& script, int32_t agg_index, AttrId posx,
                    ScriptReach* reach) {
  const AggregateDecl& decl = script.program.aggregates[agg_index];
  auto sig = ExtractSignature(script, agg_index);
  if (!sig.ok()) {
    MarkUnbounded(reach, "aggregate " + decl.name + ": " +
                             sig.status().ToString());
    return;
  }
  if (sig->kind == IndexKind::kKdNearest) {
    MarkUnbounded(reach, "aggregate " + decl.name +
                             ": nearest-neighbour probes have no radius");
    return;
  }
  if (sig->kind == IndexKind::kNaive) {
    MarkUnbounded(reach, "aggregate " + decl.name +
                             ": unindexable shape (" + sig->reason + ")");
    return;
  }
  const std::string& u = sig->u_name;
  for (const RangeDim& dim : sig->ranges) {
    if (dim.attr != posx) continue;
    double lo_off, hi_off;
    if (dim.lo == nullptr || dim.hi == nullptr ||
        !MatchCenterOffset(*dim.lo, u, posx, &lo_off) ||
        !MatchCenterOffset(*dim.hi, u, posx, &hi_off)) {
      break;  // x range exists but is not u.posx ± const
    }
    Cover(reach, lo_off);
    Cover(reach, hi_off);
    return;
  }
  MarkUnbounded(reach, "aggregate " + decl.name +
                           ": no closed u.posx ± const range on posx");
}

/// The x-extent of one action update. Self-targeted direct-key updates
/// reach nothing beyond the performer; AOE-style wheres need a closed
/// constant-offset x interval. Everything else can touch any row.
void CoverUpdate(const ActionDecl& decl, const UpdateStmt& update,
                 AttrId posx, ScriptReach* reach) {
  const std::string& u = decl.params[0];
  const std::string& e = update.row_var;

  std::vector<const Cond*> conjuncts;
  FlattenWhere(*update.where, &conjuncts);

  // Direct-key shape first: `e.key = <expr>` pins one target row.
  for (const Cond* c : conjuncts) {
    if (c->kind != CondKind::kCompare || c->op != CompareOp::kEq) continue;
    AttrId attr;
    const Expr* other = nullptr;
    if (IsPlainAttrRef(*c->lhs, e, &attr) && attr == kKeyAttrId) {
      other = c->rhs.get();
    } else if (IsPlainAttrRef(*c->rhs, e, &attr) && attr == kKeyAttrId) {
      other = c->lhs.get();
    }
    if (other == nullptr) continue;
    AttrId u_attr;
    if (IsPlainAttrRef(*other, u, &u_attr) && u_attr == kKeyAttrId) {
      return;  // e.key = u.key: the performer updates itself, reach 0
    }
    MarkUnbounded(reach, "action " + decl.name +
                             ": direct-key update may target any unit");
    return;
  }

  // AOE shape: hunt for a closed x interval around u.posx. Additional
  // conjuncts (partition equalities, e-only or u-only filters, y bounds)
  // only shrink the affected set, so they never extend reach.
  bool has_lo = false, has_hi = false;
  for (const Cond* c : conjuncts) {
    if (c->kind != CondKind::kCompare) continue;
    CompareOp op = c->op;
    const Expr* e_side = c->lhs.get();
    const Expr* u_side = c->rhs.get();
    AttrId attr;
    if (!IsPlainAttrRef(*e_side, e, &attr) || attr != posx) {
      // Try the mirrored orientation (`u.posx - r <= e.posx`).
      e_side = c->rhs.get();
      u_side = c->lhs.get();
      if (!IsPlainAttrRef(*e_side, e, &attr) || attr != posx) continue;
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    }
    double off;
    if (!MatchCenterOffset(*u_side, u, posx, &off)) continue;
    switch (op) {
      case CompareOp::kEq:
        has_lo = has_hi = true;
        Cover(reach, off);
        break;
      case CompareOp::kLe:
      case CompareOp::kLt:
        has_hi = true;
        Cover(reach, off);
        break;
      case CompareOp::kGe:
      case CompareOp::kGt:
        has_lo = true;
        Cover(reach, off);
        break;
      case CompareOp::kNe:
        break;
    }
  }
  if (!has_lo || !has_hi) {
    MarkUnbounded(reach, "action " + decl.name +
                             ": update has no closed u.posx ± const box");
  }
}

}  // namespace

ScriptReach ComputeScriptReach(const Script& script) {
  ScriptReach reach;
  reach.bounded = true;

  // Aggregates inside action declarations are evaluated by the driver
  // when deferred AOE batches flush, where no shard-local indexes exist;
  // refuse sharding outright rather than answer wrong.
  for (const ActionDecl& action : script.program.actions) {
    for (const UpdateStmt& update : action.updates) {
      bool has_agg = CondHasAggregate(*update.where);
      for (const SetItem& item : update.sets) {
        if (item.value != nullptr) has_agg |= ExprHasAggregate(*item.value);
        if (item.priority != nullptr) {
          has_agg |= ExprHasAggregate(*item.priority);
        }
      }
      if (has_agg) {
        reach.supported = false;
        reach.bounded = false;
        reach.note = "action " + action.name +
                     " nests an aggregate call; sharding cannot replay its "
                     "deferred updates";
        return reach;
      }
    }
  }

  const AttrId posx = script.schema.Find("posx");
  if (posx == Schema::kInvalidAttr) {
    MarkUnbounded(&reach, "schema has no posx: world is not spatial");
  }

  for (size_t a = 0; reach.bounded && a < script.program.aggregates.size();
       ++a) {
    CoverAggregate(script, static_cast<int32_t>(a), posx, &reach);
  }
  for (size_t a = 0; reach.bounded && a < script.program.actions.size();
       ++a) {
    const ActionDecl& decl = script.program.actions[a];
    for (const UpdateStmt& update : decl.updates) {
      if (!reach.bounded) break;
      CoverUpdate(decl, update, posx, &reach);
    }
  }

  if (reach.bounded) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "bounded, radius %.3g", reach.radius);
    reach.note = buf;
  }
  return reach;
}

}  // namespace sgl
