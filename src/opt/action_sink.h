// Indexed action application (Section 5.4: processing the ⊕ operator).
//
// The reference interpreter applies every perform by scanning E (the
// literal Eq. (4) semantics) — O(n) per action, O(n^2) per tick when many
// units act. This sink recognizes the two shapes that cover game actions:
//
//  * DIRECT-KEY updates: the where clause pins `e.key = expr(u)` (attacks
//    on a chosen target, self-moves). Applied with one hash lookup.
//  * AREA-OF-EFFECT updates: the where clause selects a constant-extent
//    box around the performer and the effect value does not depend on the
//    affected unit (the healer aura of Figure 5). Such performs are
//    deferred: the decision phase only records (center, value); then the
//    second index-building phase builds ONE index over the effect centers
//    per action type and every unit probes it once — max (sweep batch)
//    for nonstackable effects, sum (divisible range tree) for stackable
//    ones. Total cost O((n + a) log n) instead of O(n * a).
//
// Updates matching neither shape return unhandled and fall back to the
// interpreter's scan, preserving semantics.
#ifndef SGL_OPT_ACTION_SINK_H_
#define SGL_OPT_ACTION_SINK_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/signature.h"
#include "sgl/interpreter.h"

namespace sgl {

class IndexedActionSink : public ActionSink {
 public:
  static Result<std::unique_ptr<IndexedActionSink>> Create(
      const Script& script, const Interpreter& interp);

  /// Called by the interpreter for each perform during the decision phase.
  /// Concurrent callers pass distinct `shard` ids; each shard owns a
  /// private deferred-AOE batch, merged in shard order by FlushDeferred so
  /// the batch sequence (and hence every deterministic tie-break keyed on
  /// batch position) matches sequential execution exactly.
  Result<bool> Perform(int32_t action_index,
                       const std::vector<Value>& scalar_args, RowId u_row,
                       const EnvironmentTable& table, const TickRandom& rnd,
                       EffectSink* buffer, int32_t shard = 0) override;

  /// Phase "index build 2" + AOE application: build the per-action-type
  /// effect-center indexes and fold every deferred area effect into
  /// `buffer`. Must be called once after the decision phase.
  Status FlushDeferred(const EnvironmentTable& table, const TickRandom& rnd,
                       EffectBuffer* buffer);

  /// Size the per-shard deferred batches for up to `num_shards` concurrent
  /// performers (SimulationBuilder sets this to the thread count).
  void set_num_shards(int32_t num_shards);

  /// One deferred AOE perform. `actor` is the performing row: in-process
  /// the batch order implies it, but shard workers defer against
  /// worker-local tables, so they record it explicitly and the driver
  /// remaps it to a global row before re-injecting the batches.
  struct Pending {
    RowId actor = -1;
    double cx = 0.0, cy = 0.0;
    std::vector<double> part_values;  // evaluated partition expressions
    std::vector<double> set_values;   // evaluated set-item values
    std::vector<double> set_prios;    // parallel (kSetPriority only)
  };

  /// Deferred AOE performs, indexed [action][update].
  using PendingBatches = std::vector<std::vector<std::vector<Pending>>>;

  /// Drain this sink's deferred batches (merged across its shards in
  /// shard order) without flushing them. The shard runtime collects each
  /// worker sink's batches with this, remaps actors local → global, and
  /// injects the actor-ordered merge into the driver sink.
  PendingBatches TakePending();

  /// Append externally merged batches to this sink's pending set. Under
  /// sharding the driver sink performs nothing itself, so the imported
  /// batches are the whole of what FlushDeferred folds. Batch order is the
  /// deterministic tie-break for nonstackable effects — callers must pass
  /// the canonical (ascending-actor) merge.
  void ImportPending(PendingBatches batches);

  /// EXPLAIN: strategy chosen per action update statement.
  std::string DescribePlan() const;

 private:
  IndexedActionSink(const Script& script, const Interpreter& interp)
      : script_(&script), interp_(&interp) {}

  enum class UpdateKind {
    kDirectKey,  // e.key = expr(u): one row lookup
    kAOE,        // constant-extent box around the performer, u-only values
    kFallback,   // interpreter scan
  };

  /// Classification of one update statement of one action.
  struct UpdatePlan {
    UpdateKind kind = UpdateKind::kFallback;
    std::string reason;  // why fallback

    // kDirectKey: the key expression and the residual conjuncts checked
    // against the looked-up row.
    const Expr* key_expr = nullptr;
    std::vector<const Cond*> residual;
    // Conjuncts over the performer alone, checked once per perform.
    std::vector<const Cond*> performer_filters;

    // kAOE: box offsets around (posx, posy) — e.posx in
    // [u.posx - lo_x_off, u.posx + hi_x_off], likewise y; partition
    // equalities e.attr = expr(u); e-only conjuncts checked per affected
    // unit at probe time.
    double lo_x_off = 0.0, hi_x_off = 0.0;
    double lo_y_off = 0.0, hi_y_off = 0.0;
    std::vector<PartitionDim> partitions;
    std::vector<const Cond*> unit_filters;  // e-only residuals
  };

  struct ActionPlans {
    std::vector<UpdatePlan> updates;  // parallel to decl.updates
    bool all_handled = false;         // every update is non-fallback
  };

  Status ClassifyAction(int32_t action_index);
  Status ApplyDirectKey(const UpdatePlan& plan, const UpdateStmt& update,
                        const ActionDecl& decl,
                        const std::vector<Value>& scalar_args, RowId u_row,
                        const EnvironmentTable& table, const TickRandom& rnd,
                        EffectSink* buffer) const;

  /// Concatenate every shard's batches into pending_ in shard index order
  /// (chunks cover ascending row ranges, so this reproduces the
  /// sequential perform order bit for bit).
  void MergePendingShards();

  const Script* script_;
  const Interpreter* interp_;
  std::vector<ActionPlans> plans_;  // per action declaration
  // pending_[action][update] — this tick's merged deferred AOE performs.
  PendingBatches pending_;
  // pending_shards_[shard] — each concurrent performer's private batches.
  std::vector<PendingBatches> pending_shards_;
  AttrId posx_attr_ = Schema::kInvalidAttr;
  AttrId posy_attr_ = Schema::kInvalidAttr;
};

}  // namespace sgl

#endif  // SGL_OPT_ACTION_SINK_H_
