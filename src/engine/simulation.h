// sgl::Simulation — the public facade of the simulation engine.
//
// A Simulation owns the environment table E, one or more compiled SGL
// scripts (a multi-script session: one script per unit class, dispatched
// by a schema attribute, as the paper's epic-battle scenario implies), the
// registered game mechanics, and an ordered pipeline of TickPhase objects
// that reproduces — and generalizes — the fixed phase sequence of
// Section 6. Simulations are assembled with the fluent SimulationBuilder:
//
//   SGL_ASSIGN_OR_RETURN(auto sim, SimulationBuilder()
//       .SetTable(std::move(table))
//       .SetConfig(config)
//       .DispatchBy("species")
//       .AddScript("wolves", std::move(wolf_script), /*dispatch_value=*/0)
//       .AddScript("sheep", std::move(sheep_script), /*dispatch_value=*/1)
//       .SetMechanics(std::make_unique<Pasture>())
//       .Build());
//   SGL_RETURN_NOT_OK(sim->Run(100));
//
// The evaluator is pluggable per config (Section 6: "two pluggable
// versions of our aggregate query evaluator"): kNaive scans E per
// aggregate and per action; kIndexed probes the Section 5.3/5.4 index
// structures; kAdaptive re-plans per index family each tick with the
// cost model of src/opt/cost.h. All modes produce bit-identical
// simulations.
//
// Checkpoint(dir)/RestoreFrom(dir) are the one durability API: they
// persist and rebuild the world (table + tick counter + inlet log), over
// either the disk-backed storage engine (StorageConfig, src/storage/) or
// a plain snapshot file. Because all per-tick randomness derives from
// (seed, tick), a restored world re-runs deterministically.
#ifndef SGL_ENGINE_SIMULATION_H_
#define SGL_ENGINE_SIMULATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/phase.h"
#include "env/effect_buffer.h"
#include "env/table.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/action_sink.h"
#include "opt/indexed_provider.h"
#include "opt/sharing.h"
#include "serve/action_inlet.h"
#include "sgl/analyzer.h"
#include "sgl/interpreter.h"
#include "storage/config.h"
#include "util/rng.h"
#include "util/status.h"
#include "vm/bytecode.h"

namespace sgl {

namespace storage {
class WorldStore;
}  // namespace storage

/// Which aggregate/action evaluator the simulation runs. All modes are
/// bit-exact with each other (the engine and scenario suites enforce it):
///   kNaive    reference scans per aggregate and action;
///   kIndexed  Section 5.3/5.4 index structures, rebuilt every tick;
///   kAdaptive per index family and per tick, a calibrated cost model
///             (src/opt/cost.h) picks scan fallback, full rebuild, or —
///             for divisible range-tree families under low churn —
///             incremental maintenance from the tick's delta log.
enum class EvaluatorMode { kNaive, kIndexed, kAdaptive };

const char* EvaluatorModeName(EvaluatorMode mode);

/// Parse "naive" / "indexed" / "adaptive" (benchmark and tool CLIs).
Result<EvaluatorMode> ParseEvaluatorMode(const std::string& name);

/// Game-specific rules the engine delegates to: how combined effects
/// change unit state (Example 4.1) and what happens at end of tick
/// (death, resurrection, spawning).
class GameMechanics {
 public:
  virtual ~GameMechanics() = default;

  /// Called after ⊕: the table's effect columns hold the combined effects
  /// of the tick; update the const state columns accordingly. `buffer`
  /// additionally answers HasSet() for set-priority effects.
  virtual Status ApplyEffects(EnvironmentTable* table,
                              const EffectBuffer& buffer,
                              const TickRandom& rnd) = 0;

  /// Called after the movement phase; remove/resurrect/spawn units here.
  virtual Status EndTick(EnvironmentTable* table, const TickRandom& rnd) = 0;
};

/// Function-style mechanics registration (alternative to GameMechanics).
using ApplyEffectsHook = std::function<Status(
    EnvironmentTable* table, const EffectBuffer& buffer,
    const TickRandom& rnd)>;
using EndTickHook =
    std::function<Status(EnvironmentTable* table, const TickRandom& rnd)>;

/// Observability artifact outputs — every path the engine writes
/// diagnostics to, in one block (was: loose trace_path / metrics_path /
/// flight_recorder_* fields directly on SimulationConfig).
struct ArtifactConfig {
  /// When non-empty, record span/instant events (tick → phase →
  /// per-chunk worker spans, plus adaptive-choice / memo-demotion /
  /// VM-bail / error instants) and write them as Chrome trace-event
  /// JSON — Perfetto-loadable — to this path when the simulation is
  /// destroyed (or earlier via WriteTrace). Empty disables tracing
  /// entirely: every emit site reduces to one branch on a null pointer.
  std::string trace_path;

  /// When non-empty, append one JSON-lines metrics snapshot
  /// ({"tick":N,"metrics":{...}}) to this path after every tick.
  std::string metrics_path;

  /// Flight recorder: keep summaries (phase timings, row counts, metric
  /// deltas) of the last N ticks and dump them as JSON to
  /// `flight_recorder_path` when Tick() fails or a scenario invariant
  /// trips. 0 disables.
  int32_t flight_recorder_ticks = 0;
  std::string flight_recorder_path = "flight_record.json";

  /// Validation with SimulationConfig's message vocabulary.
  Status Validate() const;
};

struct SimulationConfig {
  /// Evaluator mode (the paper's pluggable evaluators plus kAdaptive).
  EvaluatorMode eval_mode = EvaluatorMode::kIndexed;
  uint64_t seed = 1;

  /// Worker threads for the parallel tick phases (src/exec/). 1 runs the
  /// classic single-threaded pipeline; 0 auto-detects hardware
  /// concurrency. Any value produces bit-identical simulations — the
  /// determinism contract the parallel test suite enforces.
  int32_t threads = 1;

  /// In-process shard workers (src/shard/). 1 runs the classic
  /// single-table engine. N in [2, 64] partitions the environment table
  /// across N workers — spatial stripes with ghost margins sized by
  /// script reach analysis when every probe and action footprint is
  /// bounded, replicated otherwise — each evaluating the decision phase
  /// of the rows it owns against its own local table, with cross-shard
  /// effects exchanged as canonical actor-ordered operation logs. Any
  /// value produces bit-identical simulations for every scenario,
  /// evaluator mode, thread count, and sharing/compiled setting (the
  /// shard test suite enforces it). Orthogonal to `threads`: the same
  /// pool that runs the parallel phases runs the shard workers.
  int32_t shards = 1;

  /// Ablation switches for kIndexed mode: disable the Section 5.3
  /// aggregate indexes or the Section 5.4 action batching independently
  /// (bench_optimizer measures each contribution).
  bool index_aggregates = true;
  bool index_actions = true;

  /// Cross-unit aggregate sharing (src/opt/sharing.h): memoize
  /// unit-invariant and partition-keyed aggregate results per tick and
  /// broadcast them across probing units and scripts. Works under every
  /// evaluator mode (it layers above the physical providers — including
  /// the naive reference scans) and is bit-exact on or off for any
  /// thread count; off reproduces the probe-per-unit behavior exactly.
  bool sharing = true;

  /// Compiled evaluation (src/vm/): lower each script's decision logic to
  /// register bytecode at Build() time and run the decision phase through
  /// the batch VM instead of the AST interpreter. Bit-exact with the
  /// interpreter under every evaluator mode, thread count, and sharing
  /// setting; scripts the conservative compiler declines fall back to the
  /// interpreter automatically (Explain() shows the reason per script).
  bool compiled = true;

  /// Movement phase configuration. Attribute names for the per-tick
  /// movement intent; empty names disable the phase. Positions are kept
  /// on the integer grid [0, grid_width) x [0, grid_height).
  std::string move_x_attr = "movex";
  std::string move_y_attr = "movey";
  int64_t grid_width = 256;
  int64_t grid_height = 256;
  double step_per_tick = 3.0;  // the paper's _WALK_DIST_PER_TICK
  bool collisions = true;

  /// Observability artifact outputs (src/obs/): tracing, per-tick
  /// metrics lines, the flight recorder.
  ArtifactConfig artifacts;

  /// Disk-backed world (src/storage/): buffer-pool pages under the
  /// environment table plus a write-ahead delta log, giving crash
  /// recovery, O(delta) checkpoints, time travel, and out-of-core
  /// tables. Disabled (empty path) by default — the in-memory engine
  /// then runs with zero storage overhead. Storage-backed runs are
  /// bit-exact with in-memory runs for every evaluator mode, thread
  /// count, and shard count (tests/storage_test.cc enforces it).
  StorageConfig storage;

  /// Validate every field against the engine's limits, with one error
  /// vocabulary (every message is an InvalidArgument starting with
  /// "SimulationConfig:"). SimulationBuilder::Build and the serving
  /// layer's SessionManager both call this — a config rejected here is
  /// rejected identically at either entry point.
  Status Validate() const;
};

/// One registered script with its per-script evaluation machinery. With a
/// dispatch attribute configured, a unit whose attribute equals
/// `dispatch_value` runs this session's main; at most one session per
/// simulation may instead be the default (no dispatch value), catching
/// every unmatched unit.
struct ScriptSession {
  std::string name;
  Script script;
  bool has_dispatch_value = false;
  double dispatch_value = 0.0;
  std::unique_ptr<Interpreter> interp;
  /// Indexed/adaptive modes only (an AdaptiveAggregateProvider in the
  /// latter); null under the naive evaluator.
  std::unique_ptr<IndexedAggregateProvider> provider;
  std::unique_ptr<IndexedActionSink> sink;  // indexed/adaptive modes only
  /// With SimulationConfig::sharing: the memoization decorator installed
  /// between the interpreter and `provider` (or the naive fallback when
  /// `provider` is null). All sessions share the Simulation's context.
  std::unique_ptr<SharingAggregateProvider> sharing;
  /// With SimulationConfig::compiled: the script's decision bytecode, run
  /// by the batch VM (src/vm/). Null when compilation is off or declined;
  /// `compile_note` then carries the reason (surfaced by Explain()).
  std::unique_ptr<vm::CompiledProgram> compiled;
  std::string compile_note;
};

/// A checkpoint of the simulation state: the environment table plus the
/// tick counter. Mechanics-internal state (e.g. a deaths counter) is not
/// captured; the simulated world itself replays deterministically.
///
/// Snapshots have a stable byte encoding (SerializeTo / Parse) so a
/// session can be checkpointed over a service boundary: the bytes are a
/// pure function of (schema, rows, tick counter) — two equal snapshots
/// serialize to identical bytes on any platform — and carry a version
/// tag so future encodings can evolve without breaking stored
/// checkpoints.
struct SimulationSnapshot {
  EnvironmentTable table{Schema()};
  int64_t tick_count = 0;

  /// Append the versioned byte encoding to `*out`.
  Status SerializeTo(std::string* out) const;

  /// Decode bytes produced by SerializeTo. Unknown magic, an unsupported
  /// version, or truncated / trailing bytes are InvalidArgument errors.
  static Result<SimulationSnapshot> Parse(const std::string& bytes);
};

class SimulationBuilder;

namespace shard {
class ShardRuntime;
}  // namespace shard

class Simulation {
 public:
  ~Simulation();

  /// Advance the simulation one clock tick through the phase pipeline.
  Status Tick();

  /// Run `ticks` clock ticks.
  Status Run(int64_t ticks);

  /// Human-readable label (SimulationBuilder::SetName; the scenario layer
  /// stamps the scenario name here). Empty when never set.
  const std::string& name() const { return name_; }

  const EnvironmentTable& table() const { return table_; }
  EnvironmentTable* mutable_table() { return &table_; }
  int64_t tick_count() const { return tick_count_; }
  const SimulationConfig& config() const { return config_; }

  /// Per-phase statistics accumulated across ticks.
  const PhaseStatsRegistry& stats() const { return stats_; }
  PhaseStatsRegistry* mutable_stats() { return &stats_; }

  /// The cross-unit aggregate-sharing layer; null when
  /// SimulationConfig::sharing is off.
  const SharingContext* sharing() const { return sharing_.get(); }

  /// Sharing counters for benches/tests (0 with sharing off). Read them
  /// between ticks or after a run, not mid-phase. Under sharding these
  /// sum the worker-private contexts (the driver context sees no
  /// decision traffic when shard workers evaluate).
  int64_t shared_hits() const;
  int64_t memo_entries() const;

  /// Resolved worker-thread count (config threads after auto-detection,
  /// or the shared executor's size when one was injected).
  int32_t threads() const { return threads_; }

  /// The simulation's action inlet: externally injected unit actions,
  /// drained at the start of every tick in sequence order (src/serve/).
  /// Push is thread-safe; everything else follows the engine's
  /// single-driver discipline. Never null.
  serve::ActionInlet* inlet() { return &inlet_; }
  const serve::ActionInlet& inlet() const { return inlet_; }

  /// The executor the parallel phases run on — the injected shared pool
  /// (SimulationBuilder::Executor) or the private pool built from
  /// config().threads. Null when threads() == 1 and no executor was
  /// injected (the classic sequential pipeline).
  const std::shared_ptr<exec::ThreadPool>& executor() const { return pool_; }

  /// The unified metrics registry every subsystem counter lives in
  /// (phase stats, probe tallies, sharing memo counters, adaptive
  /// decisions, VM execution counters). Read between ticks.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry* mutable_metrics() { return &metrics_; }

  /// One-line JSON snapshot of the registry. With `deterministic_only`,
  /// only metrics whose values are bit-identical across thread counts —
  /// the form the determinism tests compare.
  std::string MetricsJson(bool deterministic_only = false) const {
    return metrics_.ToJson(deterministic_only);
  }

  /// The tracer, or null when SimulationConfig::trace_path is empty.
  const obs::Tracer* tracer() const { return tracer_.get(); }

  /// Write the trace collected so far as Chrome trace-event JSON.
  /// Fails unless tracing is enabled. The destructor also writes to
  /// config().trace_path automatically.
  Status WriteTrace(const std::string& path) const;

  /// The flight recorder, or null when flight_recorder_ticks == 0.
  const obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }

  /// Dump the flight recorder ring (scenario invariant checkers call this
  /// on failure; Tick() calls it on error automatically).
  Status DumpFlightRecorder(const std::string& path,
                            const std::string& reason) const;

  /// Pipeline order, by phase name.
  std::vector<std::string> PhaseNames() const;

  int32_t NumScripts() const { return static_cast<int32_t>(sessions_.size()); }
  const ScriptSession& session(int32_t i) const { return *sessions_[i]; }

  /// The session whose script row `row` runs this tick (dispatch-attribute
  /// lookup, falling back to the default session).
  Result<const ScriptSession*> SessionForRow(RowId row) const;

  /// EXPLAIN over every registered script: the logical plan (Figure 6
  /// translation + rewrites) and the physical strategies chosen by the
  /// indexed evaluator.
  std::string Explain() const;

  /// The physical plan description alone (the Engine-era EXPLAIN).
  std::string DescribePlan() const;

  // --- durability (the one checkpoint/restore API) -----------------------

  /// Persist the world into directory `dir` (created if needed). With
  /// disk-backed storage on and `dir` == config().storage.path, this
  /// publishes a storage checkpoint (O(pages touched since the last
  /// one)) and truncates the WAL; otherwise it writes a portable
  /// snapshot file (snapshot.sgl). Either way the applied inlet log is
  /// saved alongside (inlet.sgl), so a restored world replays injected
  /// actions too.
  Status Checkpoint(const std::string& dir);

  /// Rebuild the world from directory `dir` and continue from there.
  /// `tick` selects the state to materialize: -1 (default) the latest
  /// durable state — for a storage directory, checkpoint + full WAL
  /// replay (a torn trailing tick from a crash is dropped); a specific
  /// tick re-materializes exactly that state (time travel; storage
  /// directories cover [checkpoint_tick, latest], snapshot files only
  /// their own tick). Restoring commits to the chosen timeline: with
  /// storage on, a fresh checkpoint is published at the restored tick.
  Status RestoreFrom(const std::string& dir, int64_t tick = -1);

  /// Write every enabled observability artifact into `dir` (created if
  /// needed): trace.json (when tracing is on), metrics.json (always),
  /// flight_record.json (when the recorder is on).
  Status DumpArtifacts(const std::string& dir);

  /// The disk-backed world store, or null when config().storage is
  /// disabled (src/storage/world_store.h).
  storage::WorldStore* store() { return store_.get(); }
  const storage::WorldStore* store() const { return store_.get(); }

  [[deprecated("use Checkpoint(dir); in-memory snapshots remain available "
               "via SimulationSnapshot for one more release")]]
  SimulationSnapshot Snapshot() const;
  [[deprecated("use RestoreFrom(dir)")]]
  Status Restore(const SimulationSnapshot& snapshot);

  // --- accessors used by TickPhase implementations -----------------------
  std::vector<std::unique_ptr<ScriptSession>>& sessions() { return sessions_; }

  /// The shard runtime, or null when config().shards == 1.
  shard::ShardRuntime* shard_runtime() { return shard_runtime_.get(); }
  const shard::ShardRuntime* shard_runtime() const {
    return shard_runtime_.get();
  }

  // Dispatch state, mirrored by shard workers so local tables resolve
  // sessions exactly as SessionForRow would.
  AttrId dispatch_attr() const { return dispatch_attr_; }
  const std::map<double, int32_t>& dispatch_map() const {
    return dispatch_map_;
  }
  int32_t default_session() const { return default_session_; }

  const std::vector<ApplyEffectsHook>& apply_hooks() const {
    return apply_hooks_;
  }
  const std::vector<EndTickHook>& end_tick_hooks() const {
    return end_tick_hooks_;
  }

 private:
  friend class SimulationBuilder;
  // Out of line: members hold unique_ptrs to types fwd-declared here.
  explicit Simulation(EnvironmentTable table);

  /// Append one {"tick":N,"metrics":{...}} line to artifacts.metrics_path.
  Status AppendMetricsLine() const;

  /// The deprecated shims' bodies (and the engine's internal users).
  SimulationSnapshot SnapshotNow() const;
  Status RestoreSnapshot(const SimulationSnapshot& snapshot);

  /// Install a rebuilt table + tick and re-sync every delta consumer
  /// (change tracking, shard repartition, the storage listener).
  Status InstallWorld(EnvironmentTable table, int64_t tick);

  std::string name_;
  SimulationConfig config_;
  EnvironmentTable table_;
  std::vector<std::unique_ptr<ScriptSession>> sessions_;
  AttrId dispatch_attr_ = Schema::kInvalidAttr;
  std::map<double, int32_t> dispatch_map_;  // dispatch value -> session
  int32_t default_session_ = -1;
  std::unique_ptr<GameMechanics> mechanics_;  // owned; may be null
  std::vector<ApplyEffectsHook> apply_hooks_;
  std::vector<EndTickHook> end_tick_hooks_;
  std::vector<std::unique_ptr<TickPhase>> pipeline_;
  std::unique_ptr<shard::ShardRuntime> shard_runtime_;  // null: shards == 1
  std::unique_ptr<SharingContext> sharing_;  // null when sharing is off
  EffectBuffer buffer_;
  PhaseStatsRegistry stats_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;        // null = tracing off
  std::unique_ptr<obs::FlightRecorder> recorder_;  // null = recorder off
  obs::Counter* ticks_counter_ = nullptr;
  obs::Histogram* tick_ns_hist_ = nullptr;
  // This simulation's first metrics write truncates any stale file at
  // metrics_path; later writes append (one line per tick).
  mutable bool metrics_file_started_ = false;
  int64_t tick_count_ = 0;
  int32_t threads_ = 1;
  /// The private pool built from config threads, or the shared executor
  /// injected through SimulationBuilder::Executor (the session layer
  /// runs many simulations on one pool). Null = sequential pipeline.
  std::shared_ptr<exec::ThreadPool> pool_;
  serve::ActionInlet inlet_;
  obs::Counter* inlet_applied_ = nullptr;
  obs::Counter* inlet_dropped_ = nullptr;
  /// The disk-backed world store; null when config storage is disabled.
  std::unique_ptr<storage::WorldStore> store_;
};

/// Fluent assembly of a Simulation. All setters return *this; Build()
/// validates the whole configuration and hands over ownership.
class SimulationBuilder {
 public:
  SimulationBuilder();
  ~SimulationBuilder();

  SimulationBuilder(const SimulationBuilder&) = delete;
  SimulationBuilder& operator=(const SimulationBuilder&) = delete;

  /// The environment table E (required).
  SimulationBuilder& SetTable(EnvironmentTable table);

  SimulationBuilder& SetConfig(SimulationConfig config);

  /// Label the simulation (surfaced by Simulation::name() and Explain();
  /// the scenario registry stamps the scenario name here).
  SimulationBuilder& SetName(std::string name);

  /// In-place access to the configuration accumulated so far. Scenario
  /// hooks use this to adjust workload-specific knobs (grid size, movement
  /// attributes, step) without clobbering caller-chosen evaluator mode,
  /// seed, or thread count via a wholesale SetConfig.
  SimulationConfig& config() { return config_; }

  /// Run a composable configuration hook against this builder right away.
  /// Scenario definitions are expressed as such hooks: each registers its
  /// scripts, mechanics, and config tweaks. A failed hook is remembered
  /// and surfaces as the error of Build(), keeping the fluent chain.
  SimulationBuilder& Apply(
      const std::function<Status(SimulationBuilder&)>& hook);

  /// Worker threads for the parallel tick phases: n == 1 single-threaded,
  /// n == 0 auto-detect hardware concurrency, n > 1 a fixed pool.
  /// Shorthand for config.threads; bit-exact results either way.
  SimulationBuilder& Threads(int32_t n);

  /// Run the parallel phases on an externally owned, shared thread pool
  /// instead of building a private one. The serving layer uses this to
  /// run many sessions on one pool (src/serve/session_manager.h); for a
  /// standalone simulation, config threads keeps working unchanged.
  /// When set, it overrides config.threads and the resolved threads()
  /// becomes the pool's size — results stay bit-identical either way.
  SimulationBuilder& Executor(std::shared_ptr<exec::ThreadPool> pool);

  /// Register the default script: units not matched by any dispatch value
  /// (or all units, when it is the only script) run its main.
  SimulationBuilder& AddScript(std::string name, Script script);

  /// Register a script for units whose dispatch attribute (DispatchBy)
  /// equals `dispatch_value`.
  SimulationBuilder& AddScript(std::string name, Script script,
                               double dispatch_value);

  /// Name of the schema attribute that selects a unit's script.
  /// Required as soon as any script has a dispatch value.
  SimulationBuilder& DispatchBy(std::string attr_name);

  /// Register owned game mechanics. Its ApplyEffects/EndTick run before
  /// any function hooks registered below.
  SimulationBuilder& SetMechanics(std::unique_ptr<GameMechanics> mechanics);

  /// Register function-style mechanics hooks; may be called repeatedly,
  /// hooks run in registration order.
  SimulationBuilder& OnApplyEffects(ApplyEffectsHook hook);
  SimulationBuilder& OnEndTick(EndTickHook hook);

  /// Append a custom phase to the end of the pipeline.
  SimulationBuilder& AddPhase(std::unique_ptr<TickPhase> phase);

  /// Insert a custom phase next to the named phase (built-in or custom).
  SimulationBuilder& InsertPhaseBefore(std::string anchor,
                                       std::unique_ptr<TickPhase> phase);
  SimulationBuilder& InsertPhaseAfter(std::string anchor,
                                      std::unique_ptr<TickPhase> phase);

  /// Drop a built-in phase from the pipeline.
  SimulationBuilder& DisablePhase(std::string name);

  /// Reorder the built-in phases; `order` must be a permutation of the
  /// default pipeline's phase names (after DisablePhase removals).
  SimulationBuilder& SetPhaseOrder(std::vector<std::string> order);

  /// Validate and assemble. The builder is left in a moved-from state.
  Result<std::unique_ptr<Simulation>> Build();

 private:
  struct PhaseEdit {
    enum class Kind { kAppend, kInsertBefore, kInsertAfter } kind;
    std::string anchor;  // insert edits only
    std::unique_ptr<TickPhase> phase;
  };

  bool has_table_ = false;
  std::string name_;
  std::shared_ptr<exec::ThreadPool> executor_;  // null: build a private pool
  Status deferred_error_;  // first Apply() hook failure, surfaced by Build
  EnvironmentTable table_{Schema()};
  SimulationConfig config_;
  std::vector<std::unique_ptr<ScriptSession>> sessions_;
  std::string dispatch_attr_name_;
  std::unique_ptr<GameMechanics> mechanics_;
  std::vector<ApplyEffectsHook> apply_hooks_;
  std::vector<EndTickHook> end_tick_hooks_;
  std::vector<PhaseEdit> phase_edits_;
  std::vector<std::string> disabled_phases_;
  std::vector<std::string> phase_order_;
};

}  // namespace sgl

#endif  // SGL_ENGINE_SIMULATION_H_
