#include "engine/phase.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "engine/simulation.h"
#include "exec/sharded_effect_buffer.h"
#include "util/timer.h"

namespace sgl {

namespace {

/// Occupancy key for integer grid cells.
int64_t CellKey(int64_t x, int64_t y) { return (x << 32) ^ (y & 0xffffffff); }

/// Total index probes issued so far across every session's provider.
int64_t TotalProbes(Simulation* sim) {
  int64_t probes = 0;
  for (const auto& session : sim->sessions()) {
    if (session->provider != nullptr) {
      probes += session->provider->probe_count();
    }
  }
  return probes;
}

}  // namespace

void PhaseStats::Bind(obs::MetricsRegistry* metrics, const std::string& phase,
                      uint32_t probe_flags) {
  const std::string prefix = "phase." + phase + ".";
  ns_ = metrics->GetCounter(prefix + "ns", obs::kMetricExecDependent);
  invocations_ = metrics->GetCounter(prefix + "invocations");
  rows_scanned_ = metrics->GetCounter(prefix + "rows_scanned");
  index_probes_ = metrics->GetCounter(prefix + "index_probes", probe_flags);
  workers_ = metrics->GetGauge(prefix + "workers", obs::kMetricExecDependent);
  max_worker_ns_ =
      metrics->GetCounter(prefix + "max_worker_ns", obs::kMetricExecDependent);
}

void PhaseStats::ResetValues() {
  ns_->Reset();
  invocations_->Reset();
  rows_scanned_->Reset();
  index_probes_->Reset();
  workers_->Reset();
  max_worker_ns_->Reset();
}

void PhaseStatsRegistry::Attach(obs::MetricsRegistry* registry,
                                uint32_t probe_flags) {
  metrics_ = registry;
  probe_flags_ = probe_flags;
}

PhaseStats& PhaseStatsRegistry::Slot(const std::string& phase) {
  for (auto& [name, stats] : stats_) {
    if (name == phase) return stats;
  }
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  stats_.emplace_back(phase, PhaseStats{});
  stats_.back().second.Bind(metrics_, phase, probe_flags_);
  return stats_.back().second;
}

const PhaseStats* PhaseStatsRegistry::Find(const std::string& phase) const {
  for (const auto& [name, stats] : stats_) {
    if (name == phase) return &stats;
  }
  return nullptr;
}

void PhaseStatsRegistry::Clear() {
  for (auto& [name, stats] : stats_) stats.ResetValues();
  stats_.clear();
}

std::string PhaseStatsRegistry::ToString() const {
  std::ostringstream os;
  os << "phase                 ticks   total(s)  ms/tick       rows     probes"
        "  workers  maxw-ms/tick   %time\n";
  double total_seconds = 0.0;
  for (const auto& [name, s] : stats_) total_seconds += s.seconds();
  for (const auto& [name, s] : stats_) {
    char line[200];
    const int64_t invocations = s.invocations();
    const double seconds = s.seconds();
    double per_tick =
        invocations > 0 ? seconds * 1e3 / static_cast<double>(invocations)
                        : 0.0;
    double max_worker_ms =
        invocations > 0 ? static_cast<double>(s.max_worker_ns()) * 1e-6 /
                              static_cast<double>(invocations)
                        : 0.0;
    // Guard the share-of-total divide: a run whose phases all finished in
    // sub-tick-resolution time has total_seconds == 0, which would print
    // nan for every row.
    double pct = total_seconds > 0.0 ? 100.0 * seconds / total_seconds : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-20s %6lld %10.4f %8.3f %10lld %10lld %8lld %13.3f %7.1f\n",
                  name.c_str(), static_cast<long long>(invocations), seconds,
                  per_tick, static_cast<long long>(s.rows_scanned()),
                  static_cast<long long>(s.index_probes()),
                  static_cast<long long>(s.workers()), max_worker_ms, pct);
    os << line;
  }
  return os.str();
}

Status IndexBuildPhase::Run(TickContext* ctx) {
  exec::ParallelStats pstats;
  for (auto& session : ctx->sim->sessions()) {
    if (session->provider == nullptr) continue;
    SGL_RETURN_NOT_OK(session->provider->BuildIndexes(*ctx->table, *ctx->rnd,
                                                      ctx->pool, &pstats));
    ctx->stats->AddRowsScanned(ctx->table->NumRows());
  }
  // All sessions have consumed this change window (the writes since the
  // previous index build); open the next one. No-op unless the adaptive
  // evaluator enabled tracking.
  if (ctx->table->change_tracking_enabled()) ctx->table->ClearChanges();
  ctx->stats->NoteWorkers(pstats.workers);
  ctx->stats->AddMaxWorkerNs(pstats.max_worker_ns);
  return Status::OK();
}

namespace {
/// Rows per decision chunk at minimum: below this, thread fan-out costs
/// more than the scripts it parallelizes (each row runs a whole script,
/// so even 8 rows outweigh a chunk dispatch). Chunking never affects
/// results (shards replay in chunk order), only scheduling.
constexpr int64_t kDecisionGrain = 8;
}  // namespace

Status DecisionActionPhase::RunRange(TickContext* ctx, RowId lo, RowId hi,
                                     EffectSink* sink, int32_t shard) {
  Simulation* sim = ctx->sim;
  vm::BatchExecutor* executor = executors_[shard].get();
  RowId r = lo;
  while (r < hi) {
    SGL_ASSIGN_OR_RETURN(const ScriptSession* session, sim->SessionForRow(r));
    // Extend the run while consecutive rows dispatch to the same session;
    // a dispatch error breaks the run here and surfaces on the next
    // iteration, after this run's effects — the interpreter's order.
    RowId end = r + 1;
    while (end < hi) {
      auto next = sim->SessionForRow(end);
      if (!next.ok() || next.value() != session) break;
      ++end;
    }
    if (session->compiled != nullptr) {
      SGL_RETURN_NOT_OK(executor->Run(*session->compiled, *session->interp,
                                      *ctx->table, r, end, *ctx->rnd, sink,
                                      shard));
    } else {
      for (RowId u = r; u < end; ++u) {
        SGL_RETURN_NOT_OK(
            session->interp->RunUnit(*ctx->table, u, *ctx->rnd, sink, shard));
      }
    }
    r = end;
  }
  return Status::OK();
}

Status DecisionActionPhase::Run(TickContext* ctx) {
  Simulation* sim = ctx->sim;
  const int64_t probes_before = TotalProbes(sim);
  const int32_t n = ctx->table->NumRows();
  exec::ThreadPool* pool = ctx->pool;
  const int32_t chunks =
      pool == nullptr ? (n > 0 ? 1 : 0) : pool->NumChunks(n, kDecisionGrain);

  if (chunks <= 1) {
    // Sequential: stream effects straight into the tick buffer (shard 0).
    EnsureExecutors(1);
    SetExecutorTracers(ctx->tracer);
    SGL_RETURN_NOT_OK(RunRange(ctx, 0, n, ctx->buffer, 0));
    if (n > 0) ctx->stats->NoteWorkers(1);
  } else {
    // Parallel: chunk c evaluates its contiguous row range [lo, hi) in
    // ascending order into its own effect-log shard; replaying shards in
    // chunk order afterwards reproduces the sequential Accumulate call
    // sequence exactly (see sharded_effect_buffer.h), so any thread count
    // yields a bit-identical tick. A batch never crosses a chunk boundary,
    // so compiled and interpreted runs chunk identically.
    sharded_.EnsureShards(chunks);
    sharded_.ClearAll();  // on entry: robust even if a prior tick errored
    EnsureExecutors(chunks);
    SetExecutorTracers(ctx->tracer);
    exec::ShardedEffectBuffer& sharded = sharded_;
    exec::ParallelStats pstats;
    SGL_RETURN_NOT_OK(pool->ParallelFor(
        n, kDecisionGrain,
        [&](int32_t chunk, int64_t lo, int64_t hi) -> Status {
          // Worker span on the chunk's own track and shard sink: chunk c
          // is evaluated by exactly one worker, so shard c never races.
          obs::SpanScope span(ctx->tracer, "chunk", 1 + chunk, chunk);
          if (ctx->tracer != nullptr) {
            char args[96];
            std::snprintf(args, sizeof(args),
                          "{\"chunk\":%d,\"row_lo\":%lld,\"rows\":%lld}",
                          chunk, static_cast<long long>(lo),
                          static_cast<long long>(hi - lo));
            span.set_args_json(args);
          }
          return RunRange(ctx, static_cast<RowId>(lo), static_cast<RowId>(hi),
                          sharded.shard(chunk), chunk);
        },
        &pstats));
    sharded.MergeInto(ctx->buffer);
    ctx->stats->NoteWorkers(pstats.workers);
    ctx->stats->AddMaxWorkerNs(pstats.max_worker_ns);
  }

  ctx->stats->AddRowsScanned(n);
  ctx->stats->AddIndexProbes(TotalProbes(sim) - probes_before);
  return Status::OK();
}

Status DeferredIndexPhase::Run(TickContext* ctx) {
  for (auto& session : ctx->sim->sessions()) {
    if (session->sink == nullptr) continue;
    SGL_RETURN_NOT_OK(
        session->sink->FlushDeferred(*ctx->table, *ctx->rnd, ctx->buffer));
  }
  return Status::OK();
}

Status ApplyPhase::Run(TickContext* ctx) {
  ctx->buffer->ApplyTo(ctx->table);
  for (const ApplyEffectsHook& hook : ctx->sim->apply_hooks()) {
    SGL_RETURN_NOT_OK(hook(ctx->table, *ctx->buffer, *ctx->rnd));
  }
  ctx->stats->AddRowsScanned(ctx->table->NumRows());
  return Status::OK();
}

Status MechanicsPhase::Run(TickContext* ctx) {
  for (const EndTickHook& hook : ctx->sim->end_tick_hooks()) {
    SGL_RETURN_NOT_OK(hook(ctx->table, *ctx->rnd));
  }
  return Status::OK();
}

Status MovementPhase::Run(TickContext* ctx) {
  EnvironmentTable& table = *ctx->table;
  const TickRandom& rnd = *ctx->rnd;
  const int32_t n = table.NumRows();
  ctx->stats->AddRowsScanned(n);

  // Occupancy of every unit's current cell.
  std::unordered_set<int64_t> occupied;
  if (collisions_) {
    occupied.reserve(static_cast<size_t>(n) * 2);
    for (RowId r = 0; r < n; ++r) {
      occupied.insert(CellKey(static_cast<int64_t>(table.Get(r, posx_)),
                              static_cast<int64_t>(table.Get(r, posy_))));
    }
  }

  // Units move in random order (deterministic Fisher–Yates from the tick
  // randomness, so the naive and indexed engines shuffle identically).
  std::vector<RowId> order(n);
  for (RowId r = 0; r < n; ++r) order[r] = r;
  for (int32_t i = n - 1; i > 0; --i) {
    int64_t j = rnd.DrawBounded(-1, i, i + 1);
    std::swap(order[i], order[j]);
  }

  const double step = step_per_tick_;
  for (RowId r : order) {
    double mx = table.Get(r, move_x_);
    double my = table.Get(r, move_y_);
    if (mx == 0.0 && my == 0.0) continue;
    // Example 4.1's norm: advance a full step in the intent direction
    // (shorter intents move at most their own length).
    double len = std::sqrt(mx * mx + my * my);
    double scale = std::min(1.0, step / len);
    int64_t cx = static_cast<int64_t>(table.Get(r, posx_));
    int64_t cy = static_cast<int64_t>(table.Get(r, posy_));
    int64_t tx = cx + static_cast<int64_t>(std::llround(mx * scale));
    int64_t ty = cy + static_cast<int64_t>(std::llround(my * scale));
    tx = std::clamp<int64_t>(tx, 0, grid_width_ - 1);
    ty = std::clamp<int64_t>(ty, 0, grid_height_ - 1);
    if (tx == cx && ty == cy) continue;

    auto try_move = [&](int64_t nx, int64_t ny) {
      if (nx < 0 || nx >= grid_width_ || ny < 0 || ny >= grid_height_) {
        return false;
      }
      if (nx == cx && ny == cy) return false;
      if (collisions_ && occupied.count(CellKey(nx, ny)) > 0) {
        return false;
      }
      if (collisions_) {
        occupied.erase(CellKey(cx, cy));
        occupied.insert(CellKey(nx, ny));
      }
      table.Set(r, posx_, static_cast<double>(nx));
      table.Set(r, posy_, static_cast<double>(ny));
      return true;
    };

    if (try_move(tx, ty)) continue;
    // Very simple pathfinding: try the 8 neighbours of the blocked target,
    // closest to the current position first (deterministic ordering).
    struct Alt {
      int64_t x, y;
      int64_t d2;
    };
    std::vector<Alt> alts;
    alts.reserve(8);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        int64_t ax = tx + dx, ay = ty + dy;
        int64_t ddx = ax - cx, ddy = ay - cy;
        alts.push_back(Alt{ax, ay, ddx * ddx + ddy * ddy});
      }
    }
    std::sort(alts.begin(), alts.end(), [](const Alt& a, const Alt& b) {
      if (a.d2 != b.d2) return a.d2 < b.d2;
      if (a.x != b.x) return a.x < b.x;
      return a.y < b.y;
    });
    for (const Alt& alt : alts) {
      if (try_move(alt.x, alt.y)) break;
    }
  }
  return Status::OK();
}

}  // namespace sgl
