#include "engine/engine.h"

namespace sgl {

namespace {

/// Historical Engine phase keys for the built-in pipeline names.
const char* LegacyPhaseName(const std::string& phase) {
  if (phase == phase_names::kIndexBuild) return "1:index-build";
  if (phase == phase_names::kDecisionAction) return "2:decision";
  if (phase == phase_names::kDeferredIndex) return "3:index-build-2";
  if (phase == phase_names::kApply) return "4:apply";
  if (phase == phase_names::kMovement) return "5:movement";
  if (phase == phase_names::kMechanics) return "6:end-of-tick";
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Create(Script script,
                                               EnvironmentTable table,
                                               GameMechanics* mechanics,
                                               EngineConfig config) {
  SimulationBuilder builder;
  builder.SetTable(std::move(table))
      .SetConfig(std::move(config))
      .AddScript("main", std::move(script));
  if (mechanics != nullptr) {
    // The shim keeps the borrowed-pointer contract: the caller owns the
    // mechanics and must outlive the engine.
    builder
        .OnApplyEffects([mechanics](EnvironmentTable* t,
                                    const EffectBuffer& buffer,
                                    const TickRandom& rnd) {
          return mechanics->ApplyEffects(t, buffer, rnd);
        })
        .OnEndTick([mechanics](EnvironmentTable* t, const TickRandom& rnd) {
          return mechanics->EndTick(t, rnd);
        });
  }
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Simulation> sim, builder.Build());
  return std::unique_ptr<Engine>(new Engine(std::move(sim)));
}

const PhaseTimes& Engine::phase_times() const {
  legacy_times_.Clear();
  for (const auto& [name, stats] : sim_->stats().stats()) {
    const char* legacy = LegacyPhaseName(name);
    legacy_times_.Add(legacy != nullptr ? legacy : name.c_str(),
                      stats.seconds(), stats.invocations());
  }
  return legacy_times_;
}

}  // namespace sgl
