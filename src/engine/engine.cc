#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace sgl {

namespace {

/// Occupancy key for integer grid cells.
int64_t CellKey(int64_t x, int64_t y) { return (x << 32) ^ (y & 0xffffffff); }

}  // namespace

Engine::Engine(Script script, EnvironmentTable table, GameMechanics* mechanics,
               EngineConfig config)
    : script_(std::move(script)),
      table_(std::move(table)),
      mechanics_(mechanics),
      config_(std::move(config)) {}

Result<std::unique_ptr<Engine>> Engine::Create(Script script,
                                               EnvironmentTable table,
                                               GameMechanics* mechanics,
                                               EngineConfig config) {
  if (script.main_index < 0) {
    return Status::PlanError("engine requires a script with a main function");
  }
  std::unique_ptr<Engine> engine(
      new Engine(std::move(script), std::move(table), mechanics, config));
  engine->interp_ = std::make_unique<Interpreter>(engine->script_);
  if (config.mode == EvaluatorMode::kIndexed) {
    if (config.index_aggregates) {
      SGL_ASSIGN_OR_RETURN(engine->provider_,
                           IndexedAggregateProvider::Create(engine->script_,
                                                            *engine->interp_));
      engine->interp_->set_aggregate_provider(engine->provider_.get());
    }
    if (config.index_actions) {
      SGL_ASSIGN_OR_RETURN(
          engine->sink_,
          IndexedActionSink::Create(engine->script_, *engine->interp_));
      engine->interp_->set_action_sink(engine->sink_.get());
    }
  }
  const Schema& schema = engine->table_.schema();
  if (!config.move_x_attr.empty()) {
    engine->move_x_ = schema.Find(config.move_x_attr);
    engine->move_y_ = schema.Find(config.move_y_attr);
    if (engine->move_x_ == Schema::kInvalidAttr ||
        engine->move_y_ == Schema::kInvalidAttr) {
      return Status::PlanError("movement attributes '", config.move_x_attr,
                               "'/'", config.move_y_attr,
                               "' not found in schema");
    }
  }
  engine->posx_ = schema.Find("posx");
  engine->posy_ = schema.Find("posy");
  return engine;
}

Status Engine::Tick() {
  TickRandom rnd(config_.seed, static_cast<uint64_t>(tick_count_));

  // Initialize the auxiliary (effect) attributes for this tick.
  table_.ResetEffects();

  {
    ScopedPhaseTimer t(&phase_times_, "1:index-build");
    if (provider_ != nullptr) {
      SGL_RETURN_NOT_OK(provider_->BuildIndexes(table_, rnd));
    }
  }
  {
    ScopedPhaseTimer t(&phase_times_, "2:decision");
    buffer_.Begin(table_);
    SGL_RETURN_NOT_OK(interp_->Tick(table_, rnd, &buffer_));
  }
  {
    ScopedPhaseTimer t(&phase_times_, "3:index-build-2");
    if (sink_ != nullptr) {
      SGL_RETURN_NOT_OK(sink_->FlushDeferred(table_, rnd, &buffer_));
    }
  }
  {
    ScopedPhaseTimer t(&phase_times_, "4:apply");
    buffer_.ApplyTo(&table_);
    SGL_RETURN_NOT_OK(mechanics_->ApplyEffects(&table_, buffer_, rnd));
  }
  {
    ScopedPhaseTimer t(&phase_times_, "5:movement");
    if (move_x_ != Schema::kInvalidAttr) {
      SGL_RETURN_NOT_OK(MovementPhase(rnd));
    }
  }
  {
    ScopedPhaseTimer t(&phase_times_, "6:end-of-tick");
    SGL_RETURN_NOT_OK(mechanics_->EndTick(&table_, rnd));
  }
  ++tick_count_;
  return Status::OK();
}

Status Engine::Run(int64_t ticks) {
  for (int64_t i = 0; i < ticks; ++i) {
    SGL_RETURN_NOT_OK(Tick());
  }
  return Status::OK();
}

Status Engine::MovementPhase(const TickRandom& rnd) {
  const int32_t n = table_.NumRows();

  // Occupancy of every unit's current cell.
  std::unordered_set<int64_t> occupied;
  if (config_.collisions) {
    occupied.reserve(static_cast<size_t>(n) * 2);
    for (RowId r = 0; r < n; ++r) {
      occupied.insert(CellKey(static_cast<int64_t>(table_.Get(r, posx_)),
                              static_cast<int64_t>(table_.Get(r, posy_))));
    }
  }

  // Units move in random order (deterministic Fisher–Yates from the tick
  // randomness, so the naive and indexed engines shuffle identically).
  std::vector<RowId> order(n);
  for (RowId r = 0; r < n; ++r) order[r] = r;
  for (int32_t i = n - 1; i > 0; --i) {
    int64_t j = rnd.DrawBounded(-1, i, i + 1);
    std::swap(order[i], order[j]);
  }

  const double step = config_.step_per_tick;
  for (RowId r : order) {
    double mx = table_.Get(r, move_x_);
    double my = table_.Get(r, move_y_);
    if (mx == 0.0 && my == 0.0) continue;
    // Example 4.1's norm: advance a full step in the intent direction
    // (shorter intents move at most their own length).
    double len = std::sqrt(mx * mx + my * my);
    double scale = std::min(1.0, step / len);
    int64_t cx = static_cast<int64_t>(table_.Get(r, posx_));
    int64_t cy = static_cast<int64_t>(table_.Get(r, posy_));
    int64_t tx = cx + static_cast<int64_t>(std::llround(mx * scale));
    int64_t ty = cy + static_cast<int64_t>(std::llround(my * scale));
    tx = std::clamp<int64_t>(tx, 0, config_.grid_width - 1);
    ty = std::clamp<int64_t>(ty, 0, config_.grid_height - 1);
    if (tx == cx && ty == cy) continue;

    auto try_move = [&](int64_t nx, int64_t ny) {
      if (nx < 0 || nx >= config_.grid_width || ny < 0 ||
          ny >= config_.grid_height) {
        return false;
      }
      if (nx == cx && ny == cy) return false;
      if (config_.collisions && occupied.count(CellKey(nx, ny)) > 0) {
        return false;
      }
      if (config_.collisions) {
        occupied.erase(CellKey(cx, cy));
        occupied.insert(CellKey(nx, ny));
      }
      table_.Set(r, posx_, static_cast<double>(nx));
      table_.Set(r, posy_, static_cast<double>(ny));
      return true;
    };

    if (try_move(tx, ty)) continue;
    // Very simple pathfinding: try the 8 neighbours of the blocked target,
    // closest to the current position first (deterministic ordering).
    struct Alt {
      int64_t x, y;
      int64_t d2;
    };
    std::vector<Alt> alts;
    alts.reserve(8);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        int64_t ax = tx + dx, ay = ty + dy;
        int64_t ddx = ax - cx, ddy = ay - cy;
        alts.push_back(Alt{ax, ay, ddx * ddx + ddy * ddy});
      }
    }
    std::sort(alts.begin(), alts.end(), [](const Alt& a, const Alt& b) {
      if (a.d2 != b.d2) return a.d2 < b.d2;
      if (a.x != b.x) return a.x < b.x;
      return a.y < b.y;
    });
    for (const Alt& alt : alts) {
      if (try_move(alt.x, alt.y)) break;
    }
  }
  return Status::OK();
}

std::string Engine::DescribePlan() const {
  if (provider_ == nullptr) {
    return "Naive evaluator: every aggregate and action scans E.\n";
  }
  return provider_->DescribePlan() + sink_->DescribePlan();
}

}  // namespace sgl
