#include "engine/simulation.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "algebra/plan.h"
#include "opt/adaptive_provider.h"
#include "shard/runtime.h"
#include "storage/world_store.h"
#include "util/timer.h"
#include "vm/compiler.h"

namespace sgl {

const char* EvaluatorModeName(EvaluatorMode mode) {
  switch (mode) {
    case EvaluatorMode::kNaive: return "naive";
    case EvaluatorMode::kIndexed: return "indexed";
    case EvaluatorMode::kAdaptive: return "adaptive";
  }
  return "?";
}

Result<EvaluatorMode> ParseEvaluatorMode(const std::string& name) {
  if (name == "naive") return EvaluatorMode::kNaive;
  if (name == "indexed") return EvaluatorMode::kIndexed;
  if (name == "adaptive") return EvaluatorMode::kAdaptive;
  return Status::Invalid("unknown evaluator mode '", name,
                         "' (expected naive, indexed, or adaptive)");
}

Status SimulationConfig::Validate() const {
  if (threads < 0) {
    return Status::Invalid(
        "SimulationConfig: threads must be >= 0 (0 = auto-detect), got ",
        threads);
  }
  if (shards < 1 || shards > 64) {
    return Status::Invalid("SimulationConfig: shards must be in [1, 64], got ",
                           shards);
  }
  // Movement is keyed off move_x_attr: empty disables the phase (the
  // historical idiom leaves move_y_attr at its default in that case).
  if (!move_x_attr.empty()) {
    if (move_y_attr.empty()) {
      return Status::Invalid(
          "SimulationConfig: move_x_attr is set but move_y_attr is empty "
          "(movement needs both; clear move_x_attr to disable it)");
    }
    if (grid_width < 1 || grid_height < 1) {
      return Status::Invalid(
          "SimulationConfig: grid dimensions must be >= 1, got ", grid_width,
          " x ", grid_height);
    }
    if (step_per_tick < 0.0) {
      return Status::Invalid(
          "SimulationConfig: step_per_tick must be >= 0, got ", step_per_tick);
    }
  }
  SGL_RETURN_NOT_OK(artifacts.Validate());
  SGL_RETURN_NOT_OK(storage.Validate());
  return Status::OK();
}

Status ArtifactConfig::Validate() const {
  if (flight_recorder_ticks < 0) {
    return Status::Invalid(
        "SimulationConfig: artifacts.flight_recorder_ticks must be >= 0 "
        "(0 = off), got ",
        flight_recorder_ticks);
  }
  return Status::OK();
}

namespace {

/// The physical-plan block of one session, shared by Explain and
/// DescribePlan.
void DescribeSessionPlan(const ScriptSession& session, std::ostream& os) {
  if (session.provider != nullptr) {
    os << session.provider->DescribePlan();
  } else {
    os << "Naive evaluator: every aggregate and action scans E.\n";
  }
  if (session.sink != nullptr) os << session.sink->DescribePlan();
}

/// The compiled-evaluation block of one session: disassembly plus static
/// and executed opcode counts, or the reason the script is interpreted.
void DescribeBytecode(const ScriptSession& session, std::ostream& os) {
  os << "-- Bytecode --\n";
  if (session.compiled == nullptr) {
    os << "compiled: off";
    if (!session.compile_note.empty()) {
      os << " (" << session.compile_note << ")";
    }
    os << "\n";
    return;
  }
  const vm::CompiledProgram& prog = *session.compiled;
  os << "compiled: on: " << prog.code.size() << " instrs ("
     << prog.num_hoisted << " hoisted consts, " << prog.num_batch_ops
     << " batch, " << prog.num_scalar_ops << " scalar), " << prog.num_regs
     << " regs, " << prog.num_masks << " masks\n";
  if (!prog.agg_scans.empty()) {
    int32_t vectorized = 0;
    for (const auto& scan : prog.agg_scans) {
      if (scan != nullptr) ++vectorized;
    }
    os << "aggregates: " << vectorized << " vectorized scan(s), "
       << prog.agg_scans.size() - vectorized << " interpreted probe(s)\n";
  }
  if (!prog.action_scans.empty()) {
    int32_t vectorized = 0;
    for (const auto& scan : prog.action_scans) {
      if (scan != nullptr) ++vectorized;
    }
    os << "actions: " << vectorized << " vectorized update scan(s), "
       << prog.action_scans.size() - vectorized << " interpreted exec(s)\n";
  }
  os << prog.Disassemble();
  const int64_t batches = prog.batches->value();
  if (batches > 0) {
    os << "executed: " << batches << " batches, "
       << prog.batch_dispatches->value() << " batch dispatches, "
       << prog.scalar_lane_ops->value() << " scalar lane-ops, "
       << prog.agg_scan_probes->value() << " vectorized agg probes, "
       << prog.action_scan_execs->value() << " vectorized action execs, "
       << prog.interp_fallbacks->value() << " interpreter fallbacks\n";
  }
}

}  // namespace

// --------------------------------------------------------------- Simulation

Simulation::Simulation(EnvironmentTable table) : table_(std::move(table)) {}

Simulation::~Simulation() {
  // Persist the trace where the config asked for it, even if the caller
  // never called WriteTrace explicitly (best-effort: a destructor cannot
  // surface the status).
  if (tracer_ != nullptr && !config_.artifacts.trace_path.empty()) {
    (void)tracer_->WriteJson(config_.artifacts.trace_path);
  }
}

Status Simulation::Tick() {
  TickRandom rnd(config_.seed, static_cast<uint64_t>(tick_count_));

  obs::SpanScope tick_span(tracer_.get(), "tick", 0, 0);
  if (tracer_ != nullptr) {
    char args[48];
    std::snprintf(args, sizeof(args), "{\"tick\":%lld}",
                  static_cast<long long>(tick_count_));
    tick_span.set_args_json(args);
  }
  Timer tick_timer;

  // Drain externally injected actions first, before any phase observes
  // the table: the inlet's sequence order is the only order, so a live
  // run and a replay of its inlet log see identical pre-tick state. The
  // writes go through EnvironmentTable::Set and therefore land in the
  // change log that adaptive indexes and shard ghost refreshes consume.
  serve::InletDrainStats drain;
  SGL_RETURN_NOT_OK(inlet_.DrainInto(&table_, tick_count_, &drain));
  if (drain.applied > 0) inlet_applied_->Add(drain.applied);
  if (drain.dropped > 0) inlet_dropped_->Add(drain.dropped);

  // Tick prologue: initialize the auxiliary (effect) attributes and
  // snapshot them as the base contribution of the incremental ⊕. The
  // sharing layer's memo tables only describe the frozen state of one
  // tick, so they reset here too (and demotions take effect).
  table_.ResetEffects();
  buffer_.Begin(table_);
  if (sharing_ != nullptr) sharing_->BeginTick();

  TickContext ctx;
  ctx.sim = this;
  ctx.table = &table_;
  ctx.buffer = &buffer_;
  ctx.rnd = &rnd;
  ctx.pool = pool_.get();
  ctx.tick = tick_count_;
  ctx.tracer = tracer_.get();
  for (const std::unique_ptr<TickPhase>& phase : pipeline_) {
    PhaseStats& slot = stats_.Slot(phase->name());
    ctx.stats = &slot;
    Status st;
    {
      obs::SpanScope phase_span(tracer_.get(), phase->name().c_str(), 0, 0);
      Timer timer;
      st = phase->Run(&ctx);
      slot.AddNanos(timer.Nanos());
    }
    slot.AddInvocation();
    if (!st.ok()) {
      if (tracer_ != nullptr) {
        tracer_->Instant("error", 0, 0,
                         "{\"phase\":\"" + obs::JsonEscape(phase->name()) +
                             "\",\"status\":\"" +
                             obs::JsonEscape(st.ToString()) + "\"}");
      }
      if (recorder_ != nullptr) {
        (void)recorder_->Dump(config_.artifacts.flight_recorder_path,
                              "tick " + std::to_string(tick_count_) +
                                  " failed in phase '" + phase->name() +
                                  "': " + st.ToString());
      }
      return st;
    }
  }
  // Durable storage: harvest the tick's delta records into the WAL and
  // sync the page cache (possibly auto-checkpointing) before the tick
  // counter advances — a crash after this point recovers to the state
  // the tick just produced, a crash before it to the previous tick.
  if (store_ != nullptr) {
    SGL_RETURN_NOT_OK(store_->CommitTick(table_, tick_count_));
  }
  ticks_counter_->Add(1);
  tick_ns_hist_->Record(tick_timer.Nanos());
  if (recorder_ != nullptr) {
    recorder_->RecordTick(tick_count_, tick_timer.Nanos(), table_.NumRows());
  }
  if (!config_.artifacts.metrics_path.empty()) {
    SGL_RETURN_NOT_OK(AppendMetricsLine());
  }
  ++tick_count_;
  return Status::OK();
}

int64_t Simulation::shared_hits() const {
  if (shard_runtime_ != nullptr) return shard_runtime_->shared_hits();
  return sharing_ != nullptr ? sharing_->shared_hits() : 0;
}

int64_t Simulation::memo_entries() const {
  if (shard_runtime_ != nullptr) return shard_runtime_->memo_entries();
  return sharing_ != nullptr ? sharing_->memo_entries() : 0;
}

Status Simulation::WriteTrace(const std::string& path) const {
  if (tracer_ == nullptr) {
    return Status::Invalid(
        "tracing is off (set SimulationConfig::artifacts.trace_path)");
  }
  return tracer_->WriteJson(path);
}

Status Simulation::DumpFlightRecorder(const std::string& path,
                                      const std::string& reason) const {
  if (recorder_ == nullptr) {
    return Status::Invalid(
        "flight recorder is off "
        "(set SimulationConfig::artifacts.flight_recorder_ticks)");
  }
  return recorder_->Dump(path, reason);
}

Status Simulation::DumpArtifacts(const std::string& dir) {
  if (dir.empty()) {
    return Status::Invalid("DumpArtifacts: directory must not be empty");
  }
  SGL_RETURN_NOT_OK(storage::MakeDirs(dir));
  if (tracer_ != nullptr) {
    SGL_RETURN_NOT_OK(tracer_->WriteJson(dir + "/trace.json"));
  }
  const std::string metrics_file = dir + "/metrics.json";
  std::ofstream out(metrics_file, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open ", metrics_file);
  }
  out << metrics_.ToJson() << "\n";
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing ", metrics_file);
  }
  if (recorder_ != nullptr) {
    SGL_RETURN_NOT_OK(
        recorder_->Dump(dir + "/flight_record.json", "DumpArtifacts"));
  }
  return Status::OK();
}

Status Simulation::AppendMetricsLine() const {
  std::ofstream out(config_.artifacts.metrics_path,
                    metrics_file_started_ ? std::ios::app : std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open metrics output file: ",
                            config_.artifacts.metrics_path);
  }
  metrics_file_started_ = true;
  out << "{\"tick\":" << tick_count_ << ",\"metrics\":" << metrics_.ToJson()
      << "}\n";
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing metrics output file: ",
                            config_.artifacts.metrics_path);
  }
  return Status::OK();
}

Status Simulation::Run(int64_t ticks) {
  for (int64_t i = 0; i < ticks; ++i) {
    SGL_RETURN_NOT_OK(Tick());
  }
  return Status::OK();
}

std::vector<std::string> Simulation::PhaseNames() const {
  std::vector<std::string> names;
  names.reserve(pipeline_.size());
  for (const auto& phase : pipeline_) names.push_back(phase->name());
  return names;
}

Result<const ScriptSession*> Simulation::SessionForRow(RowId row) const {
  if (dispatch_attr_ == Schema::kInvalidAttr) {
    return sessions_[default_session_].get();
  }
  double value = table_.Get(row, dispatch_attr_);
  auto it = dispatch_map_.find(value);
  if (it != dispatch_map_.end()) return sessions_[it->second].get();
  if (default_session_ >= 0) return sessions_[default_session_].get();
  return Status::ExecutionError(
      "no script registered for ", table_.schema().attr(dispatch_attr_).name,
      " = ", value, " (unit key ", table_.KeyAt(row), ")");
}

std::string Simulation::Explain() const {
  std::ostringstream os;
  if (!name_.empty()) os << "simulation: " << name_ << "\n";
  os << "execution: " << threads_ << (threads_ == 1 ? " thread" : " threads")
     << (pool_ != nullptr ? " (parallel tick pipeline, deterministic)" : "")
     << ", evaluator: " << EvaluatorModeName(config_.eval_mode)
     << ", sharing: " << (sharing_ != nullptr ? "on" : "off")
     << ", compiled: " << (config_.compiled ? "on" : "off")
     << ", shards: " << config_.shards << "\n\n";
  for (const auto& session : sessions_) {
    os << "== script '" << session->name << "'";
    if (dispatch_attr_ != Schema::kInvalidAttr) {
      if (session->has_dispatch_value) {
        os << " (dispatched when " << table_.schema().attr(dispatch_attr_).name
           << " = " << session->dispatch_value << ")";
      } else {
        os << " (default)";
      }
    }
    os << " ==\n";

    auto logical = TranslateScript(session->script);
    if (logical.ok()) {
      auto optimized = OptimizePlan(*logical);
      if (optimized.ok()) {
        // Attach to every aggregate operator the physical strategy the
        // evaluator chose for it (and, in adaptive mode, the cost
        // decision behind the choice).
        PlanAnnotator annotate;
        if (session->provider != nullptr) {
          const IndexedAggregateProvider* provider = session->provider.get();
          annotate = [provider](const PlanNode& n) -> std::string {
            if (n.op != PlanOp::kExtendAgg || n.expr == nullptr ||
                !n.expr->is_aggregate || n.expr->call_id < 0) {
              return "";
            }
            return provider->DescribeAggregatePhysical(n.expr->call_id);
          };
        }
        os << "logical plan: " << logical->NumNodes() << " operators, "
           << logical->NumAggregateNodes() << " aggregate extensions -> "
           << optimized->NumNodes() << " operators, "
           << optimized->NumAggregateNodes() << " aggregate extensions, "
           << optimized->NumSharedSignatures() << " shared signatures\n"
           << optimized->ToString(annotate);
      } else {
        os << "logical plan: " << optimized.status().ToString() << "\n";
      }
    } else {
      os << "logical plan: " << logical.status().ToString() << "\n";
    }

    DescribeSessionPlan(*session, os);
    DescribeBytecode(*session, os);
    os << "\n";
  }
  if (sharing_ != nullptr) os << sharing_->Describe();
  if (shard_runtime_ != nullptr) os << shard_runtime_->Describe();
  return os.str();
}

std::string Simulation::DescribePlan() const {
  std::ostringstream os;
  for (const auto& session : sessions_) {
    if (sessions_.size() > 1) os << "== script '" << session->name << "' ==\n";
    DescribeSessionPlan(*session, os);
  }
  return os.str();
}

namespace {

// Snapshot wire format, version 2. Everything is explicit little-endian
// bytes (never memcpy of structs), so the encoding is identical on any
// platform:
//   "SGLSNP" u16:version u64:tick_count u64:next_key
//   u32:num_attrs { u8:combine u32:name_len name }...   (attr 0 = key)
//   u32:num_rows { u64:key u64:bits(col 1) ... u64:bits(col k) }...
// Version 1 (no next_key field) is still read; it derives next_key as
// max(key) + 1, which can re-issue keys removed at the end of the key
// space — version 2 exists to close that hole.
constexpr char kSnapshotMagic[6] = {'S', 'G', 'L', 'S', 'N', 'P'};
constexpr uint16_t kSnapshotVersion = 2;

void AppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Bounds-checked little-endian cursor over the snapshot bytes.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& bytes) : bytes_(bytes) {}

  Status Read(uint64_t* out, int bytes) {
    if (pos_ + static_cast<size_t>(bytes) > bytes_.size()) {
      return Status::Invalid("snapshot truncated at byte ", pos_);
    }
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<uint8_t>(bytes_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    *out = v;
    return Status::OK();
  }

  Status ReadString(std::string* out, size_t len) {
    if (pos_ + len > bytes_.size()) {
      return Status::Invalid("snapshot truncated at byte ", pos_);
    }
    out->assign(bytes_, pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

Status SimulationSnapshot::SerializeTo(std::string* out) const {
  out->append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendLE(out, kSnapshotVersion, 2);
  AppendLE(out, static_cast<uint64_t>(tick_count), 8);
  AppendLE(out, static_cast<uint64_t>(table.next_key()), 8);
  const Schema& schema = table.schema();
  AppendLE(out, static_cast<uint64_t>(schema.NumAttrs()), 4);
  for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
    const Attribute& attr = schema.attr(a);
    AppendLE(out, static_cast<uint64_t>(attr.combine), 1);
    AppendLE(out, static_cast<uint64_t>(attr.name.size()), 4);
    out->append(attr.name);
  }
  const int32_t rows = table.NumRows();
  AppendLE(out, static_cast<uint64_t>(rows), 4);
  for (RowId row = 0; row < rows; ++row) {
    AppendLE(out, static_cast<uint64_t>(table.KeyAt(row)), 8);
    for (AttrId a = 1; a < schema.NumAttrs(); ++a) {
      AppendLE(out, DoubleBits(table.Get(row, a)), 8);
    }
  }
  return Status::OK();
}

Result<SimulationSnapshot> SimulationSnapshot::Parse(
    const std::string& bytes) {
  SnapshotReader reader(bytes);
  std::string magic;
  SGL_RETURN_NOT_OK(reader.ReadString(&magic, sizeof(kSnapshotMagic)));
  if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Invalid("not a simulation snapshot (bad magic)");
  }
  uint64_t version = 0;
  SGL_RETURN_NOT_OK(reader.Read(&version, 2));
  if (version != 1 && version != kSnapshotVersion) {
    return Status::Invalid("unsupported snapshot version ", version,
                           " (this build reads versions 1..", kSnapshotVersion,
                           ")");
  }
  SimulationSnapshot snapshot;
  uint64_t tick = 0;
  SGL_RETURN_NOT_OK(reader.Read(&tick, 8));
  snapshot.tick_count = static_cast<int64_t>(tick);
  uint64_t next_key = 0;
  if (version >= 2) {
    SGL_RETURN_NOT_OK(reader.Read(&next_key, 8));
  }

  uint64_t num_attrs = 0;
  SGL_RETURN_NOT_OK(reader.Read(&num_attrs, 4));
  if (num_attrs < 1) {
    return Status::Invalid("snapshot schema has no key attribute");
  }
  Schema schema;  // attr 0 (the key) is implicit in a fresh schema
  for (uint64_t a = 0; a < num_attrs; ++a) {
    uint64_t combine = 0;
    SGL_RETURN_NOT_OK(reader.Read(&combine, 1));
    if (combine > static_cast<uint64_t>(CombineType::kSet)) {
      return Status::Invalid("snapshot attribute ", a,
                             " has unknown combine tag ", combine);
    }
    uint64_t name_len = 0;
    SGL_RETURN_NOT_OK(reader.Read(&name_len, 4));
    std::string name;
    SGL_RETURN_NOT_OK(reader.ReadString(&name, name_len));
    if (a == 0) {
      if (name != schema.attr(kKeyAttrId).name ||
          static_cast<CombineType>(combine) != CombineType::kConst) {
        return Status::Invalid("snapshot attribute 0 is '", name,
                               "', expected the const key attribute");
      }
      continue;
    }
    SGL_RETURN_NOT_OK(
        schema.AddAttribute(name, static_cast<CombineType>(combine)).status());
  }

  uint64_t num_rows = 0;
  SGL_RETURN_NOT_OK(reader.Read(&num_rows, 4));
  EnvironmentTable table{schema};
  std::vector<double> values(num_attrs - 1);
  for (uint64_t row = 0; row < num_rows; ++row) {
    uint64_t key = 0;
    SGL_RETURN_NOT_OK(reader.Read(&key, 8));
    for (uint64_t a = 0; a + 1 < num_attrs; ++a) {
      uint64_t bits = 0;
      SGL_RETURN_NOT_OK(reader.Read(&bits, 8));
      values[a] = BitsDouble(bits);
    }
    SGL_RETURN_NOT_OK(
        table.AddRowWithKey(static_cast<int64_t>(key), values));
  }
  if (reader.remaining() != 0) {
    return Status::Invalid("snapshot has ", reader.remaining(),
                           " trailing byte(s)");
  }
  if (version >= 2) {
    table.SetNextKey(static_cast<int64_t>(next_key));
  }
  snapshot.table = std::move(table);
  return snapshot;
}

SimulationSnapshot Simulation::SnapshotNow() const {
  return SimulationSnapshot{table_.Clone(), tick_count_};
}

SimulationSnapshot Simulation::Snapshot() const { return SnapshotNow(); }

Status Simulation::Restore(const SimulationSnapshot& snapshot) {
  return RestoreSnapshot(snapshot);
}

Status Simulation::RestoreSnapshot(const SimulationSnapshot& snapshot) {
  if (!(snapshot.table.schema() == table_.schema())) {
    return Status::Invalid(
        "snapshot schema does not match the simulation's table schema");
  }
  return InstallWorld(snapshot.table.Clone(), snapshot.tick_count);
}

Status Simulation::InstallWorld(EnvironmentTable table, int64_t tick) {
  table_ = std::move(table);
  tick_count_ = tick;
  if (config_.eval_mode == EvaluatorMode::kAdaptive || config_.shards > 1) {
    // The replaced table invalidates every delta-maintained structure —
    // adaptive index families and shard-worker local tables alike; a
    // structural change forces full rebuilds (and a repartition) on the
    // next tick.
    table_.EnableChangeTracking();
    table_.ClearChanges();
    table_.MarkStructuralChange();
  }
  if (store_ != nullptr) {
    // Clone() strips the listener, so every install must re-attach it,
    // then commit the store to this timeline: checkpointing here
    // truncates any WAL suffix beyond `tick` (time travel rewrites
    // history from the restored point) and rewrites cached pages.
    table_.SetDeltaListener(store_.get());
    store_->MarkWorldInstalled();
    SGL_RETURN_NOT_OK(store_->Checkpoint(table_, tick_count_));
  }
  return Status::OK();
}

Status Simulation::Checkpoint(const std::string& dir) {
  if (dir.empty()) {
    return Status::Invalid("Checkpoint: directory must not be empty");
  }
  SGL_RETURN_NOT_OK(storage::MakeDirs(dir));
  if (store_ != nullptr && dir == config_.storage.path) {
    SGL_RETURN_NOT_OK(store_->Checkpoint(table_, tick_count_));
  } else {
    // No store, or a foreign directory: write a self-contained snapshot
    // file instead of pages + WAL.
    std::string bytes;
    SGL_RETURN_NOT_OK(SnapshotNow().SerializeTo(&bytes));
    const std::string path = dir + "/snapshot.sgl";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open ", path);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out.good()) {
      return Status::Internal("failed writing ", path);
    }
  }
  return inlet_.SaveLog(dir + "/inlet.sgl");
}

Status Simulation::RestoreFrom(const std::string& dir, int64_t tick) {
  if (dir.empty()) {
    return Status::Invalid("RestoreFrom: directory must not be empty");
  }
  if (store_ != nullptr && dir == config_.storage.path) {
    storage::RecoveredWorld world;
    if (tick < 0) {
      SGL_ASSIGN_OR_RETURN(world, store_->Recover());
    } else {
      SGL_ASSIGN_OR_RETURN(world, store_->Materialize(tick));
    }
    if (!(world.table.schema() == table_.schema())) {
      return Status::Invalid(
          "stored world schema does not match the simulation's table schema");
    }
    SGL_RETURN_NOT_OK(InstallWorld(std::move(world.table), world.tick));
  } else {
    const std::string path = dir + "/snapshot.sgl";
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::NotFound("no snapshot at ", path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SGL_ASSIGN_OR_RETURN(SimulationSnapshot snapshot,
                         SimulationSnapshot::Parse(buf.str()));
    if (tick >= 0 && snapshot.tick_count != tick) {
      return Status::Invalid("snapshot at ", path, " is at tick ",
                             snapshot.tick_count, ", not the requested tick ",
                             tick);
    }
    SGL_RETURN_NOT_OK(RestoreSnapshot(snapshot));
  }
  return inlet_.RestoreLog(dir + "/inlet.sgl", tick_count_);
}

// ------------------------------------------------------- SimulationBuilder

SimulationBuilder::SimulationBuilder() = default;
SimulationBuilder::~SimulationBuilder() = default;

SimulationBuilder& SimulationBuilder::SetTable(EnvironmentTable table) {
  table_ = std::move(table);
  has_table_ = true;
  return *this;
}

SimulationBuilder& SimulationBuilder::SetConfig(SimulationConfig config) {
  config_ = std::move(config);
  return *this;
}

SimulationBuilder& SimulationBuilder::SetName(std::string name) {
  name_ = std::move(name);
  return *this;
}

SimulationBuilder& SimulationBuilder::Apply(
    const std::function<Status(SimulationBuilder&)>& hook) {
  Status st = hook(*this);
  if (!st.ok() && deferred_error_.ok()) deferred_error_ = std::move(st);
  return *this;
}

SimulationBuilder& SimulationBuilder::Threads(int32_t n) {
  config_.threads = n;
  return *this;
}

SimulationBuilder& SimulationBuilder::Executor(
    std::shared_ptr<exec::ThreadPool> pool) {
  executor_ = std::move(pool);
  return *this;
}

SimulationBuilder& SimulationBuilder::AddScript(std::string name,
                                                Script script) {
  auto session = std::make_unique<ScriptSession>();
  session->name = std::move(name);
  session->script = std::move(script);
  sessions_.push_back(std::move(session));
  return *this;
}

SimulationBuilder& SimulationBuilder::AddScript(std::string name, Script script,
                                                double dispatch_value) {
  AddScript(std::move(name), std::move(script));
  sessions_.back()->has_dispatch_value = true;
  sessions_.back()->dispatch_value = dispatch_value;
  return *this;
}

SimulationBuilder& SimulationBuilder::DispatchBy(std::string attr_name) {
  dispatch_attr_name_ = std::move(attr_name);
  return *this;
}

SimulationBuilder& SimulationBuilder::SetMechanics(
    std::unique_ptr<GameMechanics> mechanics) {
  mechanics_ = std::move(mechanics);
  return *this;
}

SimulationBuilder& SimulationBuilder::OnApplyEffects(ApplyEffectsHook hook) {
  apply_hooks_.push_back(std::move(hook));
  return *this;
}

SimulationBuilder& SimulationBuilder::OnEndTick(EndTickHook hook) {
  end_tick_hooks_.push_back(std::move(hook));
  return *this;
}

SimulationBuilder& SimulationBuilder::AddPhase(
    std::unique_ptr<TickPhase> phase) {
  phase_edits_.push_back(
      PhaseEdit{PhaseEdit::Kind::kAppend, "", std::move(phase)});
  return *this;
}

SimulationBuilder& SimulationBuilder::InsertPhaseBefore(
    std::string anchor, std::unique_ptr<TickPhase> phase) {
  phase_edits_.push_back(PhaseEdit{PhaseEdit::Kind::kInsertBefore,
                                   std::move(anchor), std::move(phase)});
  return *this;
}

SimulationBuilder& SimulationBuilder::InsertPhaseAfter(
    std::string anchor, std::unique_ptr<TickPhase> phase) {
  phase_edits_.push_back(PhaseEdit{PhaseEdit::Kind::kInsertAfter,
                                   std::move(anchor), std::move(phase)});
  return *this;
}

SimulationBuilder& SimulationBuilder::DisablePhase(std::string name) {
  disabled_phases_.push_back(std::move(name));
  return *this;
}

SimulationBuilder& SimulationBuilder::SetPhaseOrder(
    std::vector<std::string> order) {
  phase_order_ = std::move(order);
  return *this;
}

Result<std::unique_ptr<Simulation>> SimulationBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  SGL_RETURN_NOT_OK(config_.Validate());
  if (!has_table_) {
    return Status::Invalid("SimulationBuilder: SetTable was never called");
  }
  if (sessions_.empty()) {
    return Status::Invalid("SimulationBuilder: no script registered");
  }

  std::unique_ptr<Simulation> sim(new Simulation(std::move(table_)));
  sim->name_ = std::move(name_);
  sim->config_ = config_;
  const Schema& schema = sim->table_.schema();
  if (config_.eval_mode == EvaluatorMode::kAdaptive || config_.shards > 1) {
    // The adaptive evaluator consumes the table's delta log each tick
    // (IndexBuildPhase clears it after every session has built), and the
    // shard runtime drives ghost refreshes from the same log.
    sim->table_.EnableChangeTracking();
  }

  // --- worker threads ----------------------------------------------------
  // An injected shared executor (the serving layer's pool) wins over the
  // config thread count; either way the resolved count is surfaced and
  // results are bit-identical — pool chunking depends only on the size.
  if (executor_ != nullptr) {
    sim->threads_ = executor_->num_threads();
    sim->pool_ = std::move(executor_);
  } else {
    sim->threads_ = config_.threads == 0 ? exec::ThreadPool::HardwareThreads()
                                         : config_.threads;
    if (sim->threads_ > 1) {
      sim->pool_ = std::make_shared<exec::ThreadPool>(sim->threads_);
    }
  }
  sim->config_.threads = sim->threads_;  // surface the resolved count

  // --- scripts and dispatch ---------------------------------------------
  bool any_dispatch_value = false;
  std::unordered_set<std::string> session_names;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    ScriptSession& session = *sessions_[i];
    if (!session_names.insert(session.name).second) {
      return Status::AlreadyExists("duplicate script name '", session.name,
                                   "'");
    }
    if (session.script.main_index < 0) {
      return Status::PlanError("script '", session.name,
                               "' has no main function");
    }
    if (!(session.script.schema == schema)) {
      return Status::Invalid("script '", session.name,
                             "' was compiled against a different schema than "
                             "the simulation's table");
    }
    if (session.has_dispatch_value) {
      any_dispatch_value = true;
    } else {
      if (sim->default_session_ >= 0) {
        return Status::Invalid(
            "more than one default script (without a dispatch value): '",
            sessions_[sim->default_session_]->name, "' and '", session.name,
            "'");
      }
      sim->default_session_ = static_cast<int32_t>(i);
    }

    session.interp = std::make_unique<Interpreter>(session.script);
    if (config_.eval_mode != EvaluatorMode::kNaive) {
      if (config_.index_aggregates) {
        if (config_.eval_mode == EvaluatorMode::kAdaptive) {
          SGL_ASSIGN_OR_RETURN(
              auto adaptive,
              AdaptiveAggregateProvider::Create(session.script,
                                                *session.interp));
          session.provider = std::move(adaptive);
        } else {
          SGL_ASSIGN_OR_RETURN(session.provider,
                               IndexedAggregateProvider::Create(
                                   session.script, *session.interp));
        }
        session.provider->set_num_shards(sim->threads_);
        session.interp->set_aggregate_provider(session.provider.get());
      }
      if (config_.index_actions) {
        SGL_ASSIGN_OR_RETURN(
            session.sink,
            IndexedActionSink::Create(session.script, *session.interp));
        session.sink->set_num_shards(sim->threads_);
        session.interp->set_action_sink(session.sink.get());
      }
    }
    if (config_.sharing) {
      // The sharing decorator intercepts the interpreter's aggregate
      // calls: memo hits return immediately, misses flow to the physical
      // provider (or the reference scan under the naive evaluator). One
      // context serves every session, so structurally identical
      // aggregates dedup across scripts.
      if (sim->sharing_ == nullptr) {
        sim->sharing_ = std::make_unique<SharingContext>();
      }
      SGL_ASSIGN_OR_RETURN(
          session.sharing,
          SharingAggregateProvider::Create(
              session.script, *session.interp, session.provider.get(),
              sim->sharing_.get(), session.name));
      // All-per-unit scripts (every probe depends on the probing unit)
      // keep the direct path: the decorator would only add a forwarding
      // hop per call. Classifications stay registered for EXPLAIN.
      if (session.sharing->any_shared()) {
        session.interp->set_aggregate_provider(session.sharing.get());
      }
    }
    if (config_.compiled) {
      // Lower the decision logic to batch bytecode (src/vm/). The
      // compiler is conservative: a declined script simply keeps the
      // interpreter, with the reason surfaced by Explain().
      auto compiled = vm::CompileProgram(session.script);
      if (compiled.ok()) {
        session.compiled = compiled.MoveValue();
      } else {
        session.compile_note = compiled.status().message();
      }
    } else {
      session.compile_note = "disabled by config";
    }

    // Rebind the session's counters into the simulation's registry (all
    // still zero — no tick has run). Behind an active sharing decorator
    // the physical provider only sees memo misses, and which probing unit
    // misses first races across shards, so those counts become
    // execution-dependent.
    const uint32_t provider_flags =
        session.sharing != nullptr && session.sharing->any_shared()
            ? obs::kMetricExecDependent
            : obs::kMetricNone;
    if (session.provider != nullptr) {
      session.provider->BindMetrics(&sim->metrics_,
                                    "script." + session.name + ".agg.",
                                    provider_flags);
    }
    if (session.compiled != nullptr) {
      session.compiled->BindMetrics(&sim->metrics_,
                                    "script." + session.name + ".vm.",
                                    obs::kMetricNone);
    }
  }
  if (sim->sharing_ != nullptr) sim->sharing_->set_num_shards(sim->threads_);
  if (any_dispatch_value) {
    if (dispatch_attr_name_.empty()) {
      return Status::Invalid(
          "scripts with dispatch values require DispatchBy(attr)");
    }
    SGL_ASSIGN_OR_RETURN(sim->dispatch_attr_,
                         schema.Require(dispatch_attr_name_));
    for (size_t i = 0; i < sessions_.size(); ++i) {
      if (!sessions_[i]->has_dispatch_value) continue;
      auto [it, inserted] = sim->dispatch_map_.emplace(
          sessions_[i]->dispatch_value, static_cast<int32_t>(i));
      if (!inserted) {
        return Status::AlreadyExists(
            "scripts '", sessions_[it->second]->name, "' and '",
            sessions_[i]->name, "' share dispatch value ",
            sessions_[i]->dispatch_value);
      }
    }
  } else if (sessions_.size() > 1) {
    return Status::Invalid(
        "multiple scripts require dispatch values and DispatchBy(attr)");
  }
  sim->sessions_ = std::move(sessions_);

  // --- observability -----------------------------------------------------
  // One registry serves every subsystem; phase slots bind lazily on first
  // Tick. With sharing on, the probe totals the decision phase folds in
  // come from decorated providers, so they inherit the same
  // execution-dependence as the provider counters.
  if (sim->sharing_ != nullptr) {
    sim->sharing_->BindMetrics(&sim->metrics_, "sharing.");
  }
  sim->stats_.Attach(&sim->metrics_, config_.sharing
                                         ? obs::kMetricExecDependent
                                         : obs::kMetricNone);
  sim->ticks_counter_ = sim->metrics_.GetCounter("engine.ticks");
  sim->inlet_applied_ = sim->metrics_.GetCounter("inlet.applied");
  sim->inlet_dropped_ = sim->metrics_.GetCounter("inlet.dropped");
  sim->tick_ns_hist_ = sim->metrics_.GetHistogram(
      "engine.tick.ns",
      {10000, 100000, 1000000, 10000000, 100000000, 1000000000},
      obs::kMetricExecDependent);
  // The shard runtime assembles after sessions and dispatch are final
  // (workers mirror both) and before the registry is sized: worker
  // providers and programs rebind into the same counters as the driver
  // sessions', and the sizing below must cover them too.
  if (config_.shards > 1) {
    SGL_ASSIGN_OR_RETURN(sim->shard_runtime_,
                         shard::ShardRuntime::Create(sim.get()));
  }

  // Durable storage attaches before the registry is sized so storage.*
  // counters get their shard slots too. An existing world on disk is
  // never clobbered at build: ticking stays blocked until the caller
  // RestoreFrom()s it or Checkpoint()s over it.
  if (config_.storage.enabled()) {
    SGL_ASSIGN_OR_RETURN(
        sim->store_,
        storage::WorldStore::Open(config_.storage, &sim->metrics_));
    if (!sim->store_->has_world()) {
      SGL_RETURN_NOT_OK(sim->store_->Checkpoint(sim->table_, 0));
    }
    sim->table_.SetDeltaListener(sim->store_.get());
  }

  // Size every sharded metric once, after all bindings: chunk ids of the
  // parallel phases are the shard ids (NumChunks never exceeds the
  // thread count), and shard-worker ids key their own slots.
  const int32_t metric_shards = std::max(sim->threads_, config_.shards);
  sim->metrics_.SetNumShards(metric_shards);
  if (!config_.artifacts.trace_path.empty()) {
    sim->tracer_ = std::make_unique<obs::Tracer>();
    sim->tracer_->SetNumShards(metric_shards);
    if (sim->sharing_ != nullptr) {
      sim->sharing_->set_tracer(sim->tracer_.get());
    }
    for (auto& session : sim->sessions_) {
      if (session->provider != nullptr) {
        session->provider->set_tracer(sim->tracer_.get());
      }
    }
  }
  if (config_.artifacts.flight_recorder_ticks > 0) {
    sim->recorder_ = std::make_unique<obs::FlightRecorder>(
        &sim->metrics_, config_.artifacts.flight_recorder_ticks);
  }

  // --- mechanics ---------------------------------------------------------
  sim->mechanics_ = std::move(mechanics_);
  if (sim->mechanics_ != nullptr) {
    GameMechanics* m = sim->mechanics_.get();
    sim->apply_hooks_.push_back(
        [m](EnvironmentTable* table, const EffectBuffer& buffer,
            const TickRandom& rnd) {
          return m->ApplyEffects(table, buffer, rnd);
        });
    sim->end_tick_hooks_.push_back(
        [m](EnvironmentTable* table, const TickRandom& rnd) {
          return m->EndTick(table, rnd);
        });
  }
  for (auto& hook : apply_hooks_) sim->apply_hooks_.push_back(std::move(hook));
  for (auto& hook : end_tick_hooks_) {
    sim->end_tick_hooks_.push_back(std::move(hook));
  }

  // --- the phase pipeline ------------------------------------------------
  // Under sharding the first two phases are replaced by shard-runtime
  // equivalents with the same names (same stats slots, same anchors for
  // phase edits); the rest of the pipeline runs unchanged against the
  // authoritative table.
  std::vector<std::unique_ptr<TickPhase>> pipeline;
  if (config_.shards > 1) {
    pipeline.push_back(std::make_unique<shard::ShardIndexBuildPhase>());
    pipeline.push_back(std::make_unique<shard::ShardDecisionPhase>());
  } else {
    pipeline.push_back(std::make_unique<IndexBuildPhase>());
    pipeline.push_back(std::make_unique<DecisionActionPhase>());
  }
  pipeline.push_back(std::make_unique<DeferredIndexPhase>());
  pipeline.push_back(std::make_unique<ApplyPhase>());
  if (!config_.move_x_attr.empty()) {
    SGL_ASSIGN_OR_RETURN(AttrId move_x, schema.Require(config_.move_x_attr));
    SGL_ASSIGN_OR_RETURN(AttrId move_y, schema.Require(config_.move_y_attr));
    SGL_ASSIGN_OR_RETURN(AttrId posx, schema.Require("posx"));
    SGL_ASSIGN_OR_RETURN(AttrId posy, schema.Require("posy"));
    pipeline.push_back(std::make_unique<MovementPhase>(
        move_x, move_y, posx, posy, config_.grid_width, config_.grid_height,
        config_.step_per_tick, config_.collisions));
  }
  pipeline.push_back(std::make_unique<MechanicsPhase>());

  // Disable.
  for (const std::string& name : disabled_phases_) {
    auto it = std::find_if(
        pipeline.begin(), pipeline.end(),
        [&](const std::unique_ptr<TickPhase>& p) { return p->name() == name; });
    if (it == pipeline.end()) {
      return Status::NotFound("DisablePhase: no phase named '", name, "'");
    }
    pipeline.erase(it);
  }

  // Reorder.
  if (!phase_order_.empty()) {
    if (phase_order_.size() != pipeline.size()) {
      return Status::Invalid(
          "SetPhaseOrder: order lists ", phase_order_.size(),
          " phases but the pipeline has ", pipeline.size());
    }
    std::vector<std::unique_ptr<TickPhase>> reordered;
    for (const std::string& name : phase_order_) {
      auto it = std::find_if(pipeline.begin(), pipeline.end(),
                             [&](const std::unique_ptr<TickPhase>& p) {
                               return p != nullptr && p->name() == name;
                             });
      if (it == pipeline.end()) {
        return Status::NotFound("SetPhaseOrder: no phase named '", name, "'");
      }
      reordered.push_back(std::move(*it));
    }
    pipeline = std::move(reordered);
  }

  // Insert / append custom phases.
  for (PhaseEdit& edit : phase_edits_) {
    if (edit.kind == PhaseEdit::Kind::kAppend) {
      pipeline.push_back(std::move(edit.phase));
      continue;
    }
    auto it = std::find_if(pipeline.begin(), pipeline.end(),
                           [&](const std::unique_ptr<TickPhase>& p) {
                             return p->name() == edit.anchor;
                           });
    if (it == pipeline.end()) {
      return Status::NotFound("InsertPhase: no phase named '", edit.anchor,
                              "'");
    }
    if (edit.kind == PhaseEdit::Kind::kInsertAfter) ++it;
    pipeline.insert(it, std::move(edit.phase));
  }

  // Phase names key the stats registry; duplicates would silently merge.
  std::unordered_set<std::string> phase_names;
  for (const auto& phase : pipeline) {
    if (!phase_names.insert(phase->name()).second) {
      return Status::AlreadyExists("two pipeline phases named '",
                                   phase->name(), "'");
    }
  }

  sim->pipeline_ = std::move(pipeline);
  return sim;
}

}  // namespace sgl
