// Composable per-tick phases (the pipeline behind sgl::Simulation).
//
// Section 6 presents the engine as a fixed sequence of per-tick phases;
// here each phase is a first-class TickPhase object registered with a
// Simulation. The default pipeline reproduces the paper's order
//
//   index-build -> decision-action -> deferred-index -> apply
//                -> movement -> mechanics
//
// but users can reorder, disable, or extend it with custom phases through
// SimulationBuilder. Every phase reports its own PhaseStats (time, rows
// scanned, index probes) into the simulation's PhaseStatsRegistry, which
// replaces the ad-hoc PhaseTimes of the original Engine.
#ifndef SGL_ENGINE_PHASE_H_
#define SGL_ENGINE_PHASE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "exec/sharded_effect_buffer.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"
#include "vm/vm.h"

namespace sgl {

class Simulation;

/// Canonical names of the built-in phases (stats keys and the anchors for
/// SimulationBuilder::InsertPhaseBefore/After and DisablePhase).
namespace phase_names {
inline constexpr const char kIndexBuild[] = "index-build";
inline constexpr const char kDecisionAction[] = "decision-action";
inline constexpr const char kDeferredIndex[] = "deferred-index";
inline constexpr const char kApply[] = "apply";
inline constexpr const char kMovement[] = "movement";
inline constexpr const char kMechanics[] = "mechanics";
}  // namespace phase_names

/// Counters one phase accumulates across ticks. Each slot is a bundle of
/// handles into a metrics registry ("phase.<name>.*" metrics), so the
/// stats table, Explain(), the flight recorder, and exported snapshots
/// all read the same storage. Timing fields (ns, max_worker_ns, workers)
/// are execution-dependent; invocations and rows_scanned are
/// deterministic counts, and index_probes is deterministic unless
/// aggregate sharing is on (the decorated providers only see memo
/// misses, whose split across shards races).
class PhaseStats {
 public:
  // Writers — called by the tick runner, or with per-worker values folded
  // in after a ParallelFor has joined.
  void AddNanos(int64_t ns) { ns_->Add(ns); }
  void AddInvocation() { invocations_->Add(1); }
  void AddRowsScanned(int64_t rows) { rows_scanned_->Add(rows); }
  void AddIndexProbes(int64_t probes) { index_probes_->Add(probes); }
  void NoteWorkers(int64_t workers) { workers_->SetMax(workers); }
  void AddMaxWorkerNs(int64_t ns) { max_worker_ns_->Add(ns); }

  // Readers.
  double seconds() const {
    return static_cast<double>(ns_->value()) * 1e-9;
  }
  int64_t invocations() const { return invocations_->value(); }
  int64_t rows_scanned() const { return rows_scanned_->value(); }
  int64_t index_probes() const { return index_probes_->value(); }
  int64_t workers() const { return workers_->value(); }
  int64_t max_worker_ns() const { return max_worker_ns_->value(); }

 private:
  friend class PhaseStatsRegistry;

  void Bind(obs::MetricsRegistry* metrics, const std::string& phase,
            uint32_t probe_flags);
  void ResetValues();

  obs::Counter* ns_ = nullptr;
  obs::Counter* invocations_ = nullptr;
  obs::Counter* rows_scanned_ = nullptr;
  obs::Counter* index_probes_ = nullptr;
  obs::Gauge* workers_ = nullptr;
  obs::Counter* max_worker_ns_ = nullptr;
};

/// Per-phase stats, keyed by phase name in first-registration (pipeline)
/// order.
class PhaseStatsRegistry {
 public:
  /// Bind future slots into `registry` (SimulationBuilder calls this with
  /// the simulation's registry before any tick; a detached
  /// PhaseStatsRegistry lazily creates a private one). `probe_flags` is
  /// applied to the index_probes counters — kMetricExecDependent when
  /// aggregate sharing makes probe splits race.
  void Attach(obs::MetricsRegistry* registry, uint32_t probe_flags);

  /// The (created-on-demand) slot for `phase`. References stay valid for
  /// the registry's lifetime (deque storage), so phases may create slots
  /// while the runner holds a reference to another one.
  PhaseStats& Slot(const std::string& phase);

  /// The slot for `phase`, or nullptr if it never ran.
  const PhaseStats* Find(const std::string& phase) const;

  const std::deque<std::pair<std::string, PhaseStats>>& stats() const {
    return stats_;
  }

  /// Zero every slot's metrics and forget the slots.
  void Clear();

  /// Multi-line table: per phase, invocations, total seconds, ms/tick,
  /// rows scanned, index probes, parallelism, and share of total time.
  std::string ToString() const;

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  uint32_t probe_flags_ = obs::kMetricNone;
  std::deque<std::pair<std::string, PhaseStats>> stats_;
};

/// Everything a phase may touch during one clock tick. The pointers stay
/// valid for the duration of the phase's Run call only.
struct TickContext {
  Simulation* sim = nullptr;         ///< owning simulation (scripts, hooks)
  EnvironmentTable* table = nullptr; ///< the environment table E
  EffectBuffer* buffer = nullptr;    ///< this tick's incremental ⊕
  const TickRandom* rnd = nullptr;   ///< the tick's random function r(u, i)
  exec::ThreadPool* pool = nullptr;  ///< worker pool; null = single thread
  int64_t tick = 0;                  ///< tick number being executed
  PhaseStats* stats = nullptr;       ///< the running phase's own slot
  obs::Tracer* tracer = nullptr;     ///< span/instant sink; null = off
};

/// One stage of the per-tick pipeline. Subclass and register through
/// SimulationBuilder to observe or transform the world each tick.
class TickPhase {
 public:
  explicit TickPhase(std::string name) : name_(std::move(name)) {}
  virtual ~TickPhase() = default;

  TickPhase(const TickPhase&) = delete;
  TickPhase& operator=(const TickPhase&) = delete;

  const std::string& name() const { return name_; }

  virtual Status Run(TickContext* ctx) = 0;

 private:
  std::string name_;
};

// ------------------------------------------------------------------------
// Built-in phases. All are constructed by SimulationBuilder::Build; they
// are exposed here so custom pipelines can re-instantiate them.

/// Phase 1: rebuild the Section 5.3 aggregate-index families of every
/// script session (no-op for the naive evaluator).
class IndexBuildPhase : public TickPhase {
 public:
  IndexBuildPhase() : TickPhase(phase_names::kIndexBuild) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 2: every unit evaluates the main function of the script its
/// dispatch-attribute value selects, streaming effects into the buffer.
/// With a thread pool, rows split into contiguous chunks evaluated
/// concurrently — each chunk writes an exec::EffectShard merged back in
/// chunk order, so results are bit-identical to single-threaded runs (the
/// state-effect pattern makes decisions read only frozen pre-tick state).
/// Sessions with compiled bytecode (SimulationConfig::compiled) run
/// through the batch VM — a batch is a same-session row run within a
/// chunk — with the interpreter serving the remaining sessions.
class DecisionActionPhase : public TickPhase {
 public:
  DecisionActionPhase() : TickPhase(phase_names::kDecisionAction) {}
  Status Run(TickContext* ctx) override;

 private:
  /// Evaluate rows [lo, hi) in ascending order into `sink`, batching
  /// same-session runs through the VM where the session is compiled.
  Status RunRange(TickContext* ctx, RowId lo, RowId hi, EffectSink* sink,
                  int32_t shard);

  void EnsureExecutors(int32_t count) {
    while (static_cast<int32_t>(executors_.size()) < count) {
      executors_.push_back(std::make_unique<vm::BatchExecutor>());
    }
  }

  void SetExecutorTracers(obs::Tracer* tracer) {
    for (auto& executor : executors_) executor->set_tracer(tracer);
  }

  // Reused across ticks so shard logs keep their capacity instead of
  // reallocating on the hottest path (cleared after every merge).
  exec::ShardedEffectBuffer sharded_{0};
  /// One batch executor per ParallelFor chunk (index 0 also serves the
  /// sequential path); persistent so register files keep their capacity
  /// and hoisted prologues their values across ticks.
  std::vector<std::unique_ptr<vm::BatchExecutor>> executors_;
};

/// Phase 3: build the value-dependent indexes over deferred area-of-effect
/// actions (Section 5.4) and fold them into the buffer.
class DeferredIndexPhase : public TickPhase {
 public:
  DeferredIndexPhase() : TickPhase(phase_names::kDeferredIndex) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 4: write the combined effects back into the table and run the
/// registered apply-effects hooks (the Example 4.1 post-processing).
class ApplyPhase : public TickPhase {
 public:
  ApplyPhase() : TickPhase(phase_names::kApply) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 5: units move in deterministic random order with grid collision
/// detection and very simple pathfinding.
class MovementPhase : public TickPhase {
 public:
  MovementPhase(AttrId move_x, AttrId move_y, AttrId posx, AttrId posy,
                int64_t grid_width, int64_t grid_height, double step_per_tick,
                bool collisions)
      : TickPhase(phase_names::kMovement),
        move_x_(move_x),
        move_y_(move_y),
        posx_(posx),
        posy_(posy),
        grid_width_(grid_width),
        grid_height_(grid_height),
        step_per_tick_(step_per_tick),
        collisions_(collisions) {}

  Status Run(TickContext* ctx) override;

 private:
  AttrId move_x_;
  AttrId move_y_;
  AttrId posx_;
  AttrId posy_;
  int64_t grid_width_;
  int64_t grid_height_;
  double step_per_tick_;
  bool collisions_;
};

/// Phase 6: run the registered end-of-tick hooks (death, resurrection,
/// spawning).
class MechanicsPhase : public TickPhase {
 public:
  MechanicsPhase() : TickPhase(phase_names::kMechanics) {}
  Status Run(TickContext* ctx) override;
};

}  // namespace sgl

#endif  // SGL_ENGINE_PHASE_H_
